#include "src/reliability/failure_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/units.h"

namespace litegpu {

namespace {

constexpr double kHoursPerYear = 8766.0;

// Erlang-B blocking probability for `servers` servers at offered load rho.
double ErlangB(int servers, double rho) {
  double b = 1.0;
  for (int j = 1; j <= servers; ++j) {
    b = rho * b / (j + rho * b);
  }
  return b;
}

}  // namespace

double GpuAfr(const GpuSpec& gpu, const FailureParams& params) {
  double area_component = (params.reference_afr - params.per_device_floor_afr) *
                          (gpu.die_area_mm2 / params.reference_die_area_mm2);
  return params.per_device_floor_afr + std::max(area_component, 0.0);
}

double GpuFailureRatePerHour(const GpuSpec& gpu, const FailureParams& params) {
  return GpuAfr(gpu, params) / kHoursPerYear;
}

double InstanceFailureRatePerSecond(const GpuSpec& gpu, int gpus_per_instance,
                                    const FailureParams& params) {
  return GpuFailureRatePerHour(gpu, params) * std::max(gpus_per_instance, 0) / 3600.0;
}

double ClusterFailuresPerYear(const GpuSpec& gpu, int num_gpus, const FailureParams& params) {
  return GpuAfr(gpu, params) * num_gpus;
}

double BlastRadiusFraction(int num_gpus) {
  return num_gpus > 0 ? 1.0 / num_gpus : 0.0;
}

double InstanceAvailabilityNoSpares(const GpuSpec& gpu, int gpus_per_instance,
                                    const FailureParams& params) {
  double lambda_per_hour = GpuAfr(gpu, params) / kHoursPerYear;
  double per_gpu = 1.0 / (1.0 + lambda_per_hour * params.mttr_hours);
  return std::pow(per_gpu, gpus_per_instance);
}

double InstanceAvailabilityWithSpares(const GpuSpec& gpu, int gpus_per_instance,
                                      int num_instances, int num_spares,
                                      const FailureParams& params) {
  if (num_spares <= 0) {
    return InstanceAvailabilityNoSpares(gpu, gpus_per_instance, params);
  }
  double lambda_per_hour = GpuAfr(gpu, params) / kHoursPerYear;
  int active_gpus = gpus_per_instance * num_instances;
  // Devices concurrently in repair form an M/G/inf-ish pool; spares block
  // when more than num_spares are in repair.
  double rho = active_gpus * lambda_per_hour * params.mttr_hours;
  double blocked = ErlangB(num_spares, rho);
  double activation_hours = params.spare_activation_minutes / 60.0;
  double effective_downtime = activation_hours + blocked * params.mttr_hours;
  double per_gpu = 1.0 / (1.0 + lambda_per_hour * effective_downtime);
  return std::pow(per_gpu, gpus_per_instance);
}

double ExpectedCapacityFraction(const GpuSpec& gpu, int gpus_per_instance, int num_instances,
                                int num_spares, const FailureParams& params) {
  return InstanceAvailabilityWithSpares(gpu, gpus_per_instance, num_instances, num_spares,
                                        params);
}

}  // namespace litegpu
