// Monte-Carlo availability simulator for model-serving clusters with hot
// spares (paper Section 3, "Fault-tolerance").
//
// The cluster serves `num_instances` model instances, each spanning
// `gpus_per_instance` GPUs (the software blast radius: one member failing
// takes the instance offline, as in today's serving stacks). `num_spares`
// spare GPUs can replace a failed member after an activation delay.
// Failures are exponential per active GPU; repairs are exponential with the
// configured MTTR; repaired devices rejoin the spare pool.

#pragma once

#include <cstdint>

#include "src/hw/gpu_spec.h"
#include "src/reliability/failure_model.h"
#include "src/util/exec_policy.h"
#include "src/util/json.h"

namespace litegpu {

struct McSimConfig {
  int gpus_per_instance = 8;
  int num_instances = 4;
  int num_spares = 0;
  double sim_years = 20.0;
  uint64_t seed = 0x5EEDED;
  FailureParams failure;
  // Independent cluster replicas, each simulated for `sim_years` with its
  // own RNG stream derived from `seed` (trial 0 uses `seed` itself, so the
  // single-trial default reproduces the original serial simulator).
  // Results aggregate over trials in index order.
  int num_trials = 1;
  // Worker threads sharding the trials (see src/util/exec_policy.h).
  // Because every trial owns its RNG stream, results are bit-identical at
  // any thread count.
  ExecPolicy exec;
};

struct McSimResult {
  // Time-weighted fraction of instances up.
  double instance_availability = 0.0;
  // Time-weighted fraction of cluster capacity served (instances up / total).
  double capacity_fraction = 0.0;
  uint64_t num_failures = 0;
  // Failures that found no free spare (suffered full MTTR).
  uint64_t unmasked_failures = 0;
  // Expected failures/year observed (sanity vs closed form).
  double failures_per_year = 0.0;
};

McSimResult SimulateAvailability(const GpuSpec& gpu, const McSimConfig& config);

// Structured form of a simulation result.
Json ToJson(const McSimResult& result);

}  // namespace litegpu
