#include "src/reliability/mc_sim.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace litegpu {

namespace {

constexpr double kHoursPerYear = 8766.0;

enum class EventKind { kRepairDone, kActivationDone };

struct Event {
  double time_h = 0.0;
  EventKind kind = EventKind::kRepairDone;
  int instance = -1;  // for activation events
  bool operator>(const Event& other) const { return time_h > other.time_h; }
};

struct TrialResult {
  double up_time_weighted = 0.0;
  uint64_t num_failures = 0;
  uint64_t unmasked_failures = 0;
};

// One independent cluster replica simulated over the full horizon with its
// own RNG stream. Pure function of (gpu, config, seed): trials can run on
// any worker in any order and aggregate deterministically.
TrialResult RunTrial(const GpuSpec& gpu, const McSimConfig& config, uint64_t seed) {
  TrialResult result;
  Rng rng(seed);

  const double lambda = GpuAfr(gpu, config.failure) / kHoursPerYear;  // per GPU-hour
  const double repair_rate = 1.0 / config.failure.mttr_hours;
  const double activation_h = config.failure.spare_activation_minutes / 60.0;
  const double horizon_h = config.sim_years * kHoursPerYear;

  // Per-instance count of unhealthy member slots (0 == instance up).
  std::vector<int> missing(config.num_instances, 0);
  // Instance indices waiting for a spare (FIFO).
  std::queue<int> waiting;
  int free_spares = config.num_spares;
  int healthy_members = config.gpus_per_instance * config.num_instances;
  int instances_up = config.num_instances;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  double now = 0.0;
  double up_time_weighted = 0.0;

  auto advance_to = [&](double t) {
    up_time_weighted += (t - now) * instances_up;
    now = t;
  };

  auto assign_spare = [&](int instance, double t) {
    --free_spares;
    events.push({t + activation_h, EventKind::kActivationDone, instance});
  };

  while (now < horizon_h) {
    // Next failure among currently healthy members (memoryless resample).
    double next_failure =
        healthy_members > 0 ? now + rng.Exponential(lambda * healthy_members)
                            : horizon_h + 1.0;
    double next_event = events.empty() ? horizon_h + 1.0 : events.top().time_h;

    if (next_failure >= horizon_h && next_event >= horizon_h) {
      advance_to(horizon_h);
      break;
    }

    if (next_failure < next_event) {
      advance_to(next_failure);
      ++result.num_failures;
      // Pick a random healthy member; instance weight = its healthy count.
      int victim = -1;
      uint64_t pick = rng.NextBelow(static_cast<uint64_t>(healthy_members));
      for (int i = 0; i < config.num_instances; ++i) {
        uint64_t healthy_here =
            static_cast<uint64_t>(config.gpus_per_instance - missing[i]);
        if (pick < healthy_here) {
          victim = i;
          break;
        }
        pick -= healthy_here;
      }
      if (missing[victim] == 0) {
        --instances_up;
      }
      ++missing[victim];
      --healthy_members;
      events.push({now + rng.Exponential(repair_rate), EventKind::kRepairDone, -1});
      if (free_spares > 0) {
        assign_spare(victim, now);
      } else {
        ++result.unmasked_failures;
        waiting.push(victim);
      }
    } else {
      Event event = events.top();
      events.pop();
      advance_to(event.time_h);
      if (event.kind == EventKind::kRepairDone) {
        // Repaired device rejoins the spare pool (or goes straight to a
        // waiting instance).
        ++free_spares;
        if (!waiting.empty()) {
          int instance = waiting.front();
          waiting.pop();
          assign_spare(instance, now);
        }
      } else {
        // Spare activated: one missing slot of this instance is healthy.
        --missing[event.instance];
        ++healthy_members;
        if (missing[event.instance] == 0) {
          ++instances_up;
        }
      }
    }
  }

  result.up_time_weighted = up_time_weighted;
  return result;
}

}  // namespace

McSimResult SimulateAvailability(const GpuSpec& gpu, const McSimConfig& config) {
  int num_trials = std::max(config.num_trials, 1);
  // Trial 0 keeps config.seed so the single-trial default matches the
  // original serial simulator bit for bit; later trials re-mix through
  // SplitMix64 (a plain additive step would hand 3 of trial i's 4 xoshiro
  // state words to trial i+1, correlating "independent" replicas).
  std::vector<TrialResult> trials = ParallelMap<TrialResult>(
      EffectiveThreads(config.exec), num_trials, [&](int i) {
        uint64_t seed =
            i == 0 ? config.seed
                   : SplitMix64(config.seed ^ (0xA3EC647659359ACDULL *
                                               static_cast<uint64_t>(i))).Next();
        return RunTrial(gpu, config, seed);
      });

  McSimResult result;
  double up_time_weighted = 0.0;
  for (const TrialResult& trial : trials) {
    up_time_weighted += trial.up_time_weighted;
    result.num_failures += trial.num_failures;
    result.unmasked_failures += trial.unmasked_failures;
  }
  const double horizon_h = config.sim_years * kHoursPerYear;
  double denom = horizon_h * config.num_instances * num_trials;
  result.instance_availability = denom > 0.0 ? up_time_weighted / denom : 0.0;
  result.capacity_fraction = result.instance_availability;
  double total_years = config.sim_years * num_trials;
  result.failures_per_year =
      total_years > 0.0 ? static_cast<double>(result.num_failures) / total_years : 0.0;
  return result;
}

Json ToJson(const McSimResult& result) {
  Json j = Json::Object();
  j.Set("instance_availability", result.instance_availability)
      .Set("capacity_fraction", result.capacity_fraction)
      .Set("num_failures", result.num_failures)
      .Set("unmasked_failures", result.unmasked_failures)
      .Set("failures_per_year", result.failures_per_year);
  return j;
}

}  // namespace litegpu
