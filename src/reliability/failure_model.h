// Failure and blast-radius models (paper Section 3, "Fault-tolerance"):
// smaller GPUs mean a failure takes out less compute/memory, and cheap spare
// Lite-GPUs make hot-sparing affordable — but more devices mean more
// failure events. Closed forms here; the Monte-Carlo simulator in mc_sim.h
// validates them and handles the policies closed forms cannot.

#pragma once

#include "src/hw/gpu_spec.h"

namespace litegpu {

struct FailureParams {
  // Annualized failure rate of one H100-class package (GPU + HBM); public
  // fleet studies land in the 2-9% range for busy training fleets.
  double reference_afr = 0.04;
  double reference_die_area_mm2 = 814.0;
  // Failure rate scales with silicon area (defect-driven) plus a per-device
  // floor (board, connectors, firmware) that does NOT shrink with the die.
  double per_device_floor_afr = 0.005;
  // Mean time to repair/replace a failed device (hours).
  double mttr_hours = 24.0;
  // Mean time to activate a hot spare (minutes matter: reload weights).
  double spare_activation_minutes = 5.0;
};

// AFR of one GPU of the given spec under the area-scaling model.
double GpuAfr(const GpuSpec& gpu, const FailureParams& params = {});

// Failure rate of one GPU in failures/hour (the AFR spread over the year).
double GpuFailureRatePerHour(const GpuSpec& gpu, const FailureParams& params = {});

// Combined failure rate (failures/second) of a model instance spanning
// `gpus_per_instance` GPUs: any member failing takes the instance down, so
// the rates add. This is the per-instance hazard the serve-path fault
// injector (src/serve/faults.h) draws its exponential gaps from.
double InstanceFailureRatePerSecond(const GpuSpec& gpu, int gpus_per_instance,
                                    const FailureParams& params = {});

// Expected failures per year in a cluster of `num_gpus`.
double ClusterFailuresPerYear(const GpuSpec& gpu, int num_gpus,
                              const FailureParams& params = {});

// Fraction of cluster FLOPS lost while one device is down (the paper's
// "blast radius" per failure), for a cluster of `num_gpus`.
double BlastRadiusFraction(int num_gpus);

// Steady-state availability of a model instance spanning `gpus_per_instance`
// GPUs with NO spares: the instance is down while any member is being
// repaired (series system, exponential failures/repairs).
double InstanceAvailabilityNoSpares(const GpuSpec& gpu, int gpus_per_instance,
                                    const FailureParams& params = {});

// Availability with hot spares: failures are masked after the spare
// activation delay as long as a spare is free; with `num_spares` shared
// across `num_instances` instances of `gpus_per_instance` GPUs each.
// Approximation: spare exhaustion treated via Erlang-loss on concurrent
// repairs (validated against the simulator in tests).
double InstanceAvailabilityWithSpares(const GpuSpec& gpu, int gpus_per_instance,
                                      int num_instances, int num_spares,
                                      const FailureParams& params = {});

// Expected serviceable capacity fraction of the whole cluster (GPUs up and
// attached to a complete instance / total non-spare GPUs).
double ExpectedCapacityFraction(const GpuSpec& gpu, int gpus_per_instance, int num_instances,
                                int num_spares, const FailureParams& params = {});

}  // namespace litegpu
