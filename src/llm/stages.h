// Per-stage work accounting for transformer inference under tensor
// parallelism. This is the quantitative core of the paper's methodology:
// "The modeling measures compute stages individually, including projection,
// MLP, and fused FlashAttention" (Section 4).
//
// All quantities are PER GPU for one forward pass over the given token shape.
// Network work is recorded as the logical all-reduce payload; the collectives
// library turns payloads into time for a given cluster.

#pragma once

#include <string>
#include <vector>

#include "src/llm/model.h"
#include "src/llm/parallel.h"

namespace litegpu {

enum class Phase { kPrefill, kDecode };

std::string ToString(Phase phase);

// Work for one named stage on one GPU.
struct StageWork {
  std::string name;
  double flops = 0.0;         // multiply-accumulate FLOPs (2 per MAC)
  double weight_bytes = 0.0;  // parameter bytes streamed from HBM
  double act_bytes = 0.0;     // activation bytes read+written to HBM
  double kv_bytes = 0.0;      // KV-cache bytes read/written
  // Logical payload of the tensor-parallel all-reduce that closes this stage
  // (0 when the stage needs no collective).
  double allreduce_bytes = 0.0;

  double HbmBytes() const { return weight_bytes + act_bytes + kv_bytes; }
  // Arithmetic intensity vs HBM (FLOP per byte); 0 when no HBM traffic.
  double OperationalIntensity() const;
};

// Token shape of one forward pass.
struct PassShape {
  int batch = 1;           // sequences in the batch
  int new_tokens = 1;      // tokens processed per sequence (prompt len or 1)
  int context_tokens = 0;  // KV-cache tokens already present per sequence
};

// The four per-layer stages (qkv_proj, attention, out_proj, mlp) for one
// transformer layer.
std::vector<StageWork> LayerStages(const TransformerSpec& model, const TpPlan& plan,
                                   Phase phase, const PassShape& shape);

// Whole-model work: the per-layer stages (times num_layers) plus embedding
// lookup and LM head.
struct ModelWork {
  std::vector<StageWork> layer_stages;
  int num_layers = 0;
  StageWork embedding;
  StageWork lm_head;

  double TotalFlops() const;
  double TotalHbmBytes() const;
  double TotalAllReduceBytes() const;  // sum of payloads across the pass
  int NumAllReduces() const;           // collective invocations per pass
};

ModelWork BuildModelWork(const TransformerSpec& model, const TpPlan& plan, Phase phase,
                         const PassShape& shape);

}  // namespace litegpu
