// Per-GPU memory footprint under tensor parallelism: weights, KV cache,
// activation workspace — and the largest batch that fits a given HBM.

#pragma once

#include "src/llm/model.h"
#include "src/llm/parallel.h"

namespace litegpu {

// Parameter bytes resident on each GPU. Linear weights shard 1/degree;
// KV projection weights follow the plan's effective KV heads (replication
// keeps whole heads resident).
double WeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan);

// One transformer layer's weights on each GPU (building block for pipeline
// sharding, where a GPU holds only its stage's layers).
double PerLayerWeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan);

// Embedding table (== LM head) shard on each GPU.
double EmbeddingWeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan);

// KV-cache bytes per sequence token on each GPU. Under replication this
// stops shrinking once degree exceeds the KV-head count.
double KvBytesPerTokenPerGpu(const TransformerSpec& model, const TpPlan& plan);

// Activation workspace for one in-flight pass (double-buffered widest
// tensor); small relative to weights/KV but kept for honesty.
double ActWorkspaceBytesPerGpu(const TransformerSpec& model, const TpPlan& plan, int batch,
                               int new_tokens);

struct FootprintParams {
  // Fraction of HBM the allocator may use (framework/fragmentation reserve).
  double usable_fraction = 0.95;
};

// Total per-GPU bytes for serving `batch` sequences of up to `max_context`
// tokens with `new_tokens` processed per pass.
double MemoryNeededPerGpu(const TransformerSpec& model, const TpPlan& plan, int batch,
                          int new_tokens, int max_context);

// Largest batch that fits in `hbm_capacity_bytes`; 0 if even batch 1 does
// not fit (e.g. weights alone exceed capacity).
int MaxBatchForCapacity(const TransformerSpec& model, const TpPlan& plan, int new_tokens,
                        int max_context, double hbm_capacity_bytes,
                        const FootprintParams& params = FootprintParams{});

}  // namespace litegpu
