#include "src/llm/stages.h"

namespace litegpu {

std::string ToString(Phase phase) {
  return phase == Phase::kPrefill ? "prefill" : "decode";
}

double StageWork::OperationalIntensity() const {
  double bytes = HbmBytes();
  return bytes > 0.0 ? flops / bytes : 0.0;
}

std::vector<StageWork> LayerStages(const TransformerSpec& model, const TpPlan& plan,
                                   Phase phase, const PassShape& shape) {
  (void)phase;  // the shape fully determines the work; phase kept for clarity
  double b = shape.batch;
  double s = shape.new_tokens;
  double ctx = shape.context_tokens;
  double h = model.d_model;
  double dh = model.d_head;
  double q = plan.q_heads_per_gpu;
  double kv = plan.kv_heads_per_gpu;
  double ff = static_cast<double>(model.d_ff) / plan.degree;
  double mats = model.ffn_matrices;
  double wb = model.bytes_per_weight;
  double ab = model.bytes_per_act;
  double kb = model.bytes_per_kv;

  std::vector<StageWork> stages;
  stages.reserve(4);

  // --- fused QKV projection (column-parallel) ---
  {
    StageWork w;
    w.name = "qkv_proj";
    double out_dims = dh * (q + 2.0 * kv);
    w.flops = 2.0 * b * s * h * out_dims;
    w.weight_bytes = h * out_dims * wb;
    w.act_bytes = b * s * (h + out_dims) * ab;
    // Newly produced K/V are appended to the cache.
    w.kv_bytes = b * s * kv * dh * 2.0 * kb;
    stages.push_back(w);
  }

  // --- fused FlashAttention ---
  {
    StageWork w;
    w.name = "attention";
    // Each of the s new tokens attends to ctx prior positions plus (causally)
    // an average of (s+1)/2 positions within the new chunk.
    double attended = ctx + (s + 1.0) / 2.0;
    // QK^T and AV: two matmuls, 2 FLOPs per MAC each.
    w.flops = 4.0 * b * s * q * attended * dh;
    // IO-aware kernel: Q read and O written once; K/V streamed from the
    // cache once per pass.
    w.act_bytes = 2.0 * b * s * q * dh * ab;
    w.kv_bytes = b * (ctx + s) * kv * dh * 2.0 * kb;
    stages.push_back(w);
  }

  // --- attention output projection (row-parallel; all-reduce follows) ---
  {
    StageWork w;
    w.name = "out_proj";
    double in_dim = q * dh;  // h / degree
    w.flops = 2.0 * b * s * in_dim * h;
    w.weight_bytes = in_dim * h * wb;
    w.act_bytes = b * s * (in_dim + h) * ab;
    w.allreduce_bytes = b * s * h * ab;
    stages.push_back(w);
  }

  // --- MLP (column- then row-parallel; all-reduce follows) ---
  {
    StageWork w;
    w.name = "mlp";
    w.flops = 2.0 * b * s * h * ff * mats;
    w.weight_bytes = mats * h * ff * wb;
    // Input read, (mats-1) intermediate tensors written+read, output written.
    w.act_bytes = b * s * (2.0 * h + 2.0 * (mats - 1.0) * ff) * ab;
    w.allreduce_bytes = b * s * h * ab;
    stages.push_back(w);
  }

  return stages;
}

double ModelWork::TotalFlops() const {
  double total = embedding.flops + lm_head.flops;
  for (const auto& s : layer_stages) {
    total += s.flops * num_layers;
  }
  return total;
}

double ModelWork::TotalHbmBytes() const {
  double total = embedding.HbmBytes() + lm_head.HbmBytes();
  for (const auto& s : layer_stages) {
    total += s.HbmBytes() * num_layers;
  }
  return total;
}

double ModelWork::TotalAllReduceBytes() const {
  double total = embedding.allreduce_bytes + lm_head.allreduce_bytes;
  for (const auto& s : layer_stages) {
    total += s.allreduce_bytes * num_layers;
  }
  return total;
}

int ModelWork::NumAllReduces() const {
  int per_layer = 0;
  for (const auto& s : layer_stages) {
    if (s.allreduce_bytes > 0.0) {
      ++per_layer;
    }
  }
  int extra = (embedding.allreduce_bytes > 0.0 ? 1 : 0) + (lm_head.allreduce_bytes > 0.0 ? 1 : 0);
  return per_layer * num_layers + extra;
}

ModelWork BuildModelWork(const TransformerSpec& model, const TpPlan& plan, Phase phase,
                         const PassShape& shape) {
  ModelWork work;
  work.layer_stages = LayerStages(model, plan, phase, shape);
  work.num_layers = model.num_layers;

  double b = shape.batch;
  double s = shape.new_tokens;
  double h = model.d_model;
  double v = model.vocab_size;
  double t = plan.degree;
  double wb = model.bytes_per_weight;
  double ab = model.bytes_per_act;

  // Embedding lookup: gather b*s rows of the (vocab-sharded) table.
  work.embedding.name = "embedding";
  work.embedding.weight_bytes = b * s * h * wb / t;
  work.embedding.act_bytes = b * s * h * ab;

  // LM head: logits only for the last position of each sequence (prefill
  // emits the first token; decode emits one token per step).
  work.lm_head.name = "lm_head";
  work.lm_head.flops = 2.0 * b * h * v / t;
  work.lm_head.weight_bytes = h * v * wb / t;
  work.lm_head.act_bytes = b * (h + v / t) * ab;

  return work;
}

}  // namespace litegpu
