#include "src/llm/model.h"

namespace litegpu {

uint64_t TransformerSpec::ParamsPerLayer() const {
  uint64_t h = static_cast<uint64_t>(d_model);
  uint64_t qkv = h * static_cast<uint64_t>(d_head) *
                 (static_cast<uint64_t>(num_heads) + 2ULL * static_cast<uint64_t>(num_kv_heads));
  uint64_t out_proj = static_cast<uint64_t>(num_heads) * static_cast<uint64_t>(d_head) * h;
  uint64_t ffn = static_cast<uint64_t>(ffn_matrices) * h * static_cast<uint64_t>(d_ff);
  return qkv + out_proj + ffn;
}

uint64_t TransformerSpec::ParamCount() const {
  uint64_t embed = static_cast<uint64_t>(vocab_size) * static_cast<uint64_t>(d_model);
  uint64_t lm_head = embed;  // untied
  return embed + lm_head + static_cast<uint64_t>(num_layers) * ParamsPerLayer();
}

double TransformerSpec::WeightBytes() const {
  return static_cast<double>(ParamCount()) * bytes_per_weight;
}

double TransformerSpec::KvBytesPerToken() const {
  return static_cast<double>(num_layers) * static_cast<double>(num_kv_heads) *
         static_cast<double>(d_head) * 2.0 * bytes_per_kv;
}

std::string TransformerSpec::Validate() const {
  if (name.empty()) {
    return "missing name";
  }
  if (num_layers <= 0 || d_model <= 0 || num_heads <= 0 || num_kv_heads <= 0 || d_head <= 0 ||
      d_ff <= 0 || vocab_size <= 0) {
    return "all dimensions must be positive";
  }
  if (num_heads % num_kv_heads != 0) {
    return "num_heads must be a multiple of num_kv_heads";
  }
  if (num_heads * d_head != d_model) {
    return "num_heads * d_head must equal d_model";
  }
  if (ffn_matrices != 2 && ffn_matrices != 3) {
    return "ffn_matrices must be 2 (GELU) or 3 (SwiGLU)";
  }
  if (bytes_per_weight <= 0.0 || bytes_per_kv <= 0.0 || bytes_per_act <= 0.0) {
    return "datatype byte sizes must be positive";
  }
  return "";
}

TransformerSpec Llama3_8B() {
  TransformerSpec m;
  m.name = "Llama3-8B";
  m.num_layers = 32;
  m.d_model = 4096;
  m.num_heads = 32;
  m.num_kv_heads = 8;
  m.d_head = 128;
  m.d_ff = 14336;
  m.ffn_matrices = 3;
  m.vocab_size = 128256;
  return m;
}

TransformerSpec Llama3_70B() {
  TransformerSpec m;
  m.name = "Llama3-70B";
  m.num_layers = 80;
  m.d_model = 8192;
  m.num_heads = 64;
  m.num_kv_heads = 8;
  m.d_head = 128;
  m.d_ff = 28672;
  m.ffn_matrices = 3;
  m.vocab_size = 128256;
  return m;
}

TransformerSpec Gpt3_175B() {
  TransformerSpec m;
  m.name = "GPT3-175B";
  m.num_layers = 96;
  m.d_model = 12288;
  m.num_heads = 96;
  m.num_kv_heads = 96;  // MHA: every head has its own KV
  m.d_head = 128;
  m.d_ff = 49152;
  m.ffn_matrices = 2;
  m.vocab_size = 50257;
  return m;
}

TransformerSpec Llama3_405B() {
  TransformerSpec m;
  m.name = "Llama3-405B";
  m.num_layers = 126;
  m.d_model = 16384;
  m.num_heads = 128;
  m.num_kv_heads = 8;
  m.d_head = 128;
  m.d_ff = 53248;
  m.ffn_matrices = 3;
  m.vocab_size = 128256;
  return m;
}

std::vector<TransformerSpec> CaseStudyModels() {
  return {Llama3_70B(), Gpt3_175B(), Llama3_405B()};
}

std::optional<TransformerSpec> FindModel(const std::string& name) {
  for (const auto& m : {Llama3_8B(), Llama3_70B(), Gpt3_175B(), Llama3_405B()}) {
    if (m.name == name) {
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace litegpu
