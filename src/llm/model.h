// Transformer model descriptions for the paper's case study (Section 4):
// Llama3-70B, GPT3-175B, Llama3-405B (plus Llama3-8B for small-model
// experiments). Architectures are from the public model cards / papers.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace litegpu {

struct TransformerSpec {
  std::string name;
  int num_layers = 0;
  int d_model = 0;
  int num_heads = 0;
  int num_kv_heads = 0;  // == num_heads for MHA (GPT3), < for GQA (Llama3)
  int d_head = 0;
  int d_ff = 0;
  // Feed-forward matrix count: 2 for GELU MLPs (GPT3: up+down), 3 for
  // SwiGLU (Llama3: gate+up+down).
  int ffn_matrices = 2;
  int vocab_size = 0;

  // Datatype sizing. The case study models FP8 end to end (H100's Table-1
  // 2000 TFLOPS is its FP8 rating): 1 byte weights, 1 byte KV cache, and
  // 1 byte activations on the wire.
  double bytes_per_weight = 1.0;
  double bytes_per_kv = 1.0;
  double bytes_per_act = 1.0;

  // Total parameter count (embeddings + per-layer weights + LM head; heads
  // untied, as in Llama3/GPT3).
  uint64_t ParamCount() const;

  // ParamCount() * bytes_per_weight.
  double WeightBytes() const;

  // Bytes of KV cache per sequence token across all layers/KV heads.
  double KvBytesPerToken() const;

  // Parameters in one transformer layer (attention + MLP, no norms/bias —
  // they are < 0.1% and omitted everywhere consistently).
  uint64_t ParamsPerLayer() const;

  // Returns "" when self-consistent, else the first problem found.
  std::string Validate() const;
};

// --- case-study models (paper Section 4) ---
TransformerSpec Llama3_8B();
TransformerSpec Llama3_70B();
TransformerSpec Gpt3_175B();
TransformerSpec Llama3_405B();

// The three models evaluated in Figure 3, in the paper's order.
std::vector<TransformerSpec> CaseStudyModels();

std::optional<TransformerSpec> FindModel(const std::string& name);

}  // namespace litegpu
