// Tensor-parallel execution plans (Megatron-style head sharding).
//
// When the TP degree exceeds the KV-head count (possible for Llama3 GQA on
// large Lite clusters), KV heads must either be replicated across GPUs
// (standard Megatron behaviour; aggregate KV traffic and footprint stop
// shrinking) or the deployment must fall back to sharding along another
// dimension. Both policies are modeled; replication is the default.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/llm/model.h"

namespace litegpu {

enum class KvShardPolicy {
  // KV heads replicated when degree > num_kv_heads (Megatron default).
  kReplicate,
  // Idealized: KV cache shards perfectly at any degree (e.g. sequence-
  // parallel attention); footprint and traffic keep scaling 1/t.
  kIdealShard,
};

// "replicate" / "ideal-shard" (the spellings scenario files use).
std::string ToString(KvShardPolicy policy);
std::optional<KvShardPolicy> ParseKvShardPolicy(const std::string& name);

struct TpPlan {
  int degree = 1;
  double q_heads_per_gpu = 0.0;
  // Effective KV heads stored/streamed per GPU (>= num_kv_heads/degree; the
  // floor of 1 full head under kReplicate encodes the replication).
  double kv_heads_per_gpu = 0.0;
  // How many GPUs hold a copy of each KV head (1 when degree <= kv heads).
  int kv_replication = 1;
  KvShardPolicy policy = KvShardPolicy::kReplicate;

  std::string ToString() const;
};

// Builds a plan for the given degree; nullopt when the degree does not divide
// the attention heads evenly (the sweep in the paper only uses even shards).
std::optional<TpPlan> MakeTpPlan(const TransformerSpec& model, int degree,
                                 KvShardPolicy policy = KvShardPolicy::kReplicate);

// All TP degrees usable for `model` with at most `max_gpus` GPUs: divisors of
// num_heads (and, under kReplicate with degree > kv heads, multiples of the
// KV-head count so each GPU holds whole heads).
std::vector<int> FeasibleTpDegrees(const TransformerSpec& model, int max_gpus,
                                   KvShardPolicy policy = KvShardPolicy::kReplicate);

}  // namespace litegpu
