#include "src/llm/footprint.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

double PerLayerWeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan) {
  double h = model.d_model;
  double dh = model.d_head;
  double wb = model.bytes_per_weight;
  double t = plan.degree;
  double qkv = h * dh * (plan.q_heads_per_gpu + 2.0 * plan.kv_heads_per_gpu) * wb;
  double out_proj = (plan.q_heads_per_gpu * dh) * h * wb;
  double ffn = static_cast<double>(model.ffn_matrices) * h *
               (static_cast<double>(model.d_ff) / t) * wb;
  return qkv + out_proj + ffn;
}

double EmbeddingWeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan) {
  return static_cast<double>(model.vocab_size) * static_cast<double>(model.d_model) *
         model.bytes_per_weight / plan.degree;
}

double WeightBytesPerGpu(const TransformerSpec& model, const TpPlan& plan) {
  double embed = EmbeddingWeightBytesPerGpu(model, plan);
  double lm_head = embed;
  return embed + lm_head +
         static_cast<double>(model.num_layers) * PerLayerWeightBytesPerGpu(model, plan);
}

double KvBytesPerTokenPerGpu(const TransformerSpec& model, const TpPlan& plan) {
  return static_cast<double>(model.num_layers) * plan.kv_heads_per_gpu *
         static_cast<double>(model.d_head) * 2.0 * model.bytes_per_kv;
}

double ActWorkspaceBytesPerGpu(const TransformerSpec& model, const TpPlan& plan, int batch,
                               int new_tokens) {
  double widest = std::max(static_cast<double>(model.d_model),
                           static_cast<double>(model.d_ff) / plan.degree *
                               std::max(1, model.ffn_matrices - 1));
  return 2.0 * static_cast<double>(batch) * static_cast<double>(new_tokens) * widest *
         model.bytes_per_act;
}

double MemoryNeededPerGpu(const TransformerSpec& model, const TpPlan& plan, int batch,
                          int new_tokens, int max_context) {
  double weights = WeightBytesPerGpu(model, plan);
  double kv = static_cast<double>(batch) * static_cast<double>(max_context) *
              KvBytesPerTokenPerGpu(model, plan);
  double acts = ActWorkspaceBytesPerGpu(model, plan, batch, new_tokens);
  return weights + kv + acts;
}

int MaxBatchForCapacity(const TransformerSpec& model, const TpPlan& plan, int new_tokens,
                        int max_context, double hbm_capacity_bytes,
                        const FootprintParams& params) {
  double budget = hbm_capacity_bytes * params.usable_fraction;
  if (MemoryNeededPerGpu(model, plan, 1, new_tokens, max_context) > budget) {
    return 0;
  }
  // Memory is affine in batch: weights + batch * per_seq.
  double weights = WeightBytesPerGpu(model, plan);
  double per_seq = static_cast<double>(max_context) * KvBytesPerTokenPerGpu(model, plan) +
                   ActWorkspaceBytesPerGpu(model, plan, 1, new_tokens);
  if (per_seq <= 0.0) {
    return 1;
  }
  double max_batch = (budget - weights) / per_seq;
  return std::max(1, static_cast<int>(std::floor(max_batch)));
}

}  // namespace litegpu
