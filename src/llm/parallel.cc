#include "src/llm/parallel.h"

#include <cstdio>

namespace litegpu {

std::string ToString(KvShardPolicy policy) {
  return policy == KvShardPolicy::kReplicate ? "replicate" : "ideal-shard";
}

std::optional<KvShardPolicy> ParseKvShardPolicy(const std::string& name) {
  if (name == "replicate") {
    return KvShardPolicy::kReplicate;
  }
  if (name == "ideal-shard") {
    return KvShardPolicy::kIdealShard;
  }
  return std::nullopt;
}

std::string TpPlan::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "tp%d (q=%.2f kv=%.2f rep=%d %s)", degree,
                q_heads_per_gpu, kv_heads_per_gpu, kv_replication,
                policy == KvShardPolicy::kReplicate ? "replicate" : "ideal-shard");
  return buffer;
}

std::optional<TpPlan> MakeTpPlan(const TransformerSpec& model, int degree,
                                 KvShardPolicy policy) {
  if (degree <= 0 || model.num_heads % degree != 0) {
    return std::nullopt;
  }
  TpPlan plan;
  plan.degree = degree;
  plan.policy = policy;
  plan.q_heads_per_gpu = static_cast<double>(model.num_heads) / degree;
  if (degree <= model.num_kv_heads) {
    // KV heads shard evenly only if the degree divides them; with degree
    // dividing num_heads and num_kv_heads dividing num_heads this holds for
    // all power-of-two-style head counts used here, but guard anyway.
    if (model.num_kv_heads % degree != 0) {
      return std::nullopt;
    }
    plan.kv_heads_per_gpu = static_cast<double>(model.num_kv_heads) / degree;
    plan.kv_replication = 1;
  } else if (policy == KvShardPolicy::kReplicate) {
    // More shards than KV heads: each GPU keeps one whole head; groups of
    // degree/num_kv_heads GPUs share (replicate) a head.
    if (degree % model.num_kv_heads != 0) {
      return std::nullopt;
    }
    plan.kv_heads_per_gpu = 1.0;
    plan.kv_replication = degree / model.num_kv_heads;
  } else {
    plan.kv_heads_per_gpu = static_cast<double>(model.num_kv_heads) / degree;
    plan.kv_replication = 1;
  }
  return plan;
}

std::vector<int> FeasibleTpDegrees(const TransformerSpec& model, int max_gpus,
                                   KvShardPolicy policy) {
  std::vector<int> degrees;
  for (int t = 1; t <= max_gpus; ++t) {
    if (MakeTpPlan(model, t, policy).has_value()) {
      degrees.push_back(t);
    }
  }
  return degrees;
}

}  // namespace litegpu
