#include "src/perf/step_table.h"

#include <algorithm>

#include "src/perf/model.h"

namespace litegpu {

StepTimeTable StepTimeTable::Build(const PerfModel& prefill_model,
                                   const PerfModel& decode_model, int max_prefill_batch,
                                   int max_decode_batch) {
  std::vector<double> prefill_s;
  std::vector<double> decode_s;
  prefill_s.reserve(static_cast<size_t>(std::max(0, max_prefill_batch)));
  decode_s.reserve(static_cast<size_t>(std::max(0, max_decode_batch)));
  for (int batch = 1; batch <= max_prefill_batch; ++batch) {
    prefill_s.push_back(prefill_model.Prefill(batch).ttft_s);
  }
  for (int batch = 1; batch <= max_decode_batch; ++batch) {
    decode_s.push_back(decode_model.Decode(batch).tbt_s);
  }
  return StepTimeTable(std::move(prefill_s), std::move(decode_s));
}

}  // namespace litegpu
