// PerfModel: the one analytic cost interface every study consumes.
//
// The library previously had two ways to price the same forward pass: the
// search/designer hot loops called roofline::EvaluatePrefill/Decode directly,
// and the discrete-event serving simulator took hand-wired std::function
// callbacks. A PerfModel binds one (TransformerSpec, GpuSpec, TpPlan,
// WorkloadParams, EngineParams) tuple and exposes every analytic quantity the
// engines need — pass times, per-step decode latency at an arbitrary context,
// collective costs on the part's fabric, and the per-GPU memory footprint —
// behind an internal memoization cache. The same (phase, batch, context)
// evaluation is computed once per model instance; the search's final
// re-evaluation of the chosen batch, the brute-force validators' repeated
// probes, and the serving simulator's millions of identical step queries all
// become cache hits. Values are bit-identical to direct EvaluatePrefill /
// EvaluateDecode calls (tested in perf_model_test).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/collectives/cost.h"
#include "src/hw/gpu_spec.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/inference.h"

namespace litegpu {

struct PerfCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  double HitRate() const {
    uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

// Static (batch-independent) slice of the per-GPU memory footprint.
struct PerfFootprint {
  double weight_bytes_per_gpu = 0.0;
  double embedding_bytes_per_gpu = 0.0;
  double kv_bytes_per_token_per_gpu = 0.0;
};

class PerfModel {
 public:
  // `plan` must be a valid plan for `model` (from MakeTpPlan).
  PerfModel(const TransformerSpec& model, const GpuSpec& gpu, const TpPlan& plan,
            const WorkloadParams& workload, const EngineParams& engine = EngineParams{});

  // Full roofline results at the bound workload's prompt/output lengths;
  // bit-identical to EvaluatePrefill/EvaluateDecode. Memoized.
  PrefillResult Prefill(int batch) const;
  DecodeResult Decode(int batch) const;

  // Context-explicit forms for callers that vary the token shape (the
  // serving simulator): one prefill pass over `batch` prompts of
  // `prompt_tokens` each, and one decode step for `batch` sequences at a
  // total context of `context_tokens`. Share the cache with Prefill/Decode
  // (PrefillTime(b, workload.prompt_tokens) is the same entry as
  // Prefill(b).ttft_s).
  double PrefillTime(int batch, int prompt_tokens) const;
  double DecodeStepTime(int batch, int context_tokens) const;

  // Alpha-beta collective cost on this model's fabric (the GPU's injection
  // bandwidth + the engine's per-step latency) across the plan's TP degree.
  double CollectiveCost(double payload_bytes, CollectiveAlgo algo) const;
  double CollectiveCost(double payload_bytes) const;

  // Per-GPU memory footprint of this (model, plan).
  PerfFootprint Footprint() const;
  double MemoryNeededBytes(int batch, int new_tokens, int max_context) const;

  const TransformerSpec& model() const { return model_; }
  const GpuSpec& gpu() const { return gpu_; }
  const TpPlan& plan() const { return plan_; }
  const WorkloadParams& workload() const { return workload_; }
  const EngineParams& engine() const { return engine_; }

  // This instance's cache effectiveness.
  PerfCacheStats cache_stats() const;

  // Expires when this model is destroyed. MakePerfModelCallbacks captures
  // it in debug builds so a callback outliving its PerfModel trips an
  // assert at the first call instead of dereferencing freed memory (the
  // lifetime contract documented in docs/architecture.md).
  std::weak_ptr<const void> liveness_token() const { return liveness_; }

 private:
  // Key: (batch, token count) — prompt tokens for prefill entries, total
  // context for decode entries.
  using Key = std::pair<int, int>;

  TransformerSpec model_;
  GpuSpec gpu_;
  TpPlan plan_;
  WorkloadParams workload_;
  EngineParams engine_;

  // A PerfModel is shared by reference with simulator callbacks and may be
  // queried from a parallel sweep, so the cache is guarded. The lock is
  // uncontended in the common one-model-per-worker layout and cheap next to
  // a roofline evaluation.
  mutable std::mutex mu_;
  mutable std::map<Key, PrefillResult> prefill_cache_;
  mutable std::map<Key, DecodeResult> decode_cache_;
  mutable PerfCacheStats stats_;

  // Backs liveness_token(): destroyed with the model, so weak_ptr holders
  // can detect a dangling reference.
  std::shared_ptr<const void> liveness_ = std::make_shared<int>(0);
};

// Process-wide cache counters aggregated over every PerfModel instance;
// lets benches and CI assert the hot loops actually hit the cache without
// threading a stats handle through the engines.
PerfCacheStats GlobalPerfCacheStats();
void ResetGlobalPerfCacheStats();

}  // namespace litegpu
