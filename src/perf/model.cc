#include "src/perf/model.h"

#include <atomic>

#include "src/llm/footprint.h"

namespace litegpu {

namespace {

std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_misses{0};

}  // namespace

PerfCacheStats GlobalPerfCacheStats() {
  PerfCacheStats stats;
  stats.hits = g_hits.load(std::memory_order_relaxed);
  stats.misses = g_misses.load(std::memory_order_relaxed);
  return stats;
}

void ResetGlobalPerfCacheStats() {
  g_hits.store(0, std::memory_order_relaxed);
  g_misses.store(0, std::memory_order_relaxed);
}

PerfModel::PerfModel(const TransformerSpec& model, const GpuSpec& gpu, const TpPlan& plan,
                     const WorkloadParams& workload, const EngineParams& engine)
    : model_(model), gpu_(gpu), plan_(plan), workload_(workload), engine_(engine) {}

PrefillResult PerfModel::Prefill(int batch) const {
  Key key{batch, workload_.prompt_tokens};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prefill_cache_.find(key);
  if (it != prefill_cache_.end()) {
    ++stats_.hits;
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  ++stats_.misses;
  g_misses.fetch_add(1, std::memory_order_relaxed);
  PrefillResult result = EvaluatePrefill(model_, gpu_, plan_, batch, workload_, engine_);
  prefill_cache_.emplace(key, result);
  return result;
}

DecodeResult PerfModel::Decode(int batch) const {
  Key key{batch, workload_.prompt_tokens + workload_.output_tokens};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = decode_cache_.find(key);
  if (it != decode_cache_.end()) {
    ++stats_.hits;
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  ++stats_.misses;
  g_misses.fetch_add(1, std::memory_order_relaxed);
  DecodeResult result = EvaluateDecode(model_, gpu_, plan_, batch, workload_, engine_);
  decode_cache_.emplace(key, result);
  return result;
}

double PerfModel::PrefillTime(int batch, int prompt_tokens) const {
  if (prompt_tokens == workload_.prompt_tokens) {
    return Prefill(batch).ttft_s;
  }
  Key key{batch, prompt_tokens};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = prefill_cache_.find(key);
  if (it != prefill_cache_.end()) {
    ++stats_.hits;
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second.ttft_s;
  }
  ++stats_.misses;
  g_misses.fetch_add(1, std::memory_order_relaxed);
  WorkloadParams at_context = workload_;
  at_context.prompt_tokens = prompt_tokens;
  PrefillResult result = EvaluatePrefill(model_, gpu_, plan_, batch, at_context, engine_);
  prefill_cache_.emplace(key, result);
  return result.ttft_s;
}

double PerfModel::DecodeStepTime(int batch, int context_tokens) const {
  if (context_tokens == workload_.prompt_tokens + workload_.output_tokens) {
    return Decode(batch).tbt_s;
  }
  Key key{batch, context_tokens};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = decode_cache_.find(key);
  if (it != decode_cache_.end()) {
    ++stats_.hits;
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second.tbt_s;
  }
  ++stats_.misses;
  g_misses.fetch_add(1, std::memory_order_relaxed);
  // EvaluateDecode only reads prompt + output as the total context, so
  // binding (context_tokens, 0) prices a step at exactly `context_tokens`.
  WorkloadParams at_context = workload_;
  at_context.prompt_tokens = context_tokens;
  at_context.output_tokens = 0;
  DecodeResult result = EvaluateDecode(model_, gpu_, plan_, batch, at_context, engine_);
  decode_cache_.emplace(key, result);
  return result.tbt_s;
}

double PerfModel::CollectiveCost(double payload_bytes, CollectiveAlgo algo) const {
  LinkModel link;
  link.bandwidth_bytes_per_s = gpu_.net_bw_bytes_per_s;
  link.latency_s = engine_.network_latency_s;
  return AllReduceTime(payload_bytes, plan_.degree, link, algo);
}

double PerfModel::CollectiveCost(double payload_bytes) const {
  return CollectiveCost(payload_bytes, engine_.collective_algo);
}

PerfFootprint PerfModel::Footprint() const {
  PerfFootprint fp;
  fp.weight_bytes_per_gpu = WeightBytesPerGpu(model_, plan_);
  fp.embedding_bytes_per_gpu = EmbeddingWeightBytesPerGpu(model_, plan_);
  fp.kv_bytes_per_token_per_gpu = KvBytesPerTokenPerGpu(model_, plan_);
  return fp;
}

double PerfModel::MemoryNeededBytes(int batch, int new_tokens, int max_context) const {
  return MemoryNeededPerGpu(model_, plan_, batch, new_tokens, max_context);
}

PerfCacheStats PerfModel::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace litegpu
