// StepTimeTable: dense, immutable per-batch step-time tables for the
// serving simulator's hot loop.
//
// The callback path prices every simulated step through std::function
// dispatch into PerfModel's mutex-guarded std::map cache. A StepTimeTable
// is built once per (prefill, decode) PerfModel pair up to the batch caps
// and owns flat arrays of the same values, so the simulator's inner loop
// becomes a bounds-checked array load: no indirect call, no lock, no tree
// walk — and, being immutable after Build, a single table is safely shared
// by every worker of a sweep. Entries are bit-identical to the memoized
// PerfModel path (tested in perf_model_test), and because the table owns
// its values it can outlive the models that built it — unlike
// MakePerfModelCallbacks, which captures raw references.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace litegpu {

class PerfModel;

class StepTimeTable {
 public:
  // An empty table; not runnable (the simulator returns empty metrics).
  StepTimeTable() = default;

  // Synthetic shapes for tests: entry b-1 is the time for batch b.
  StepTimeTable(std::vector<double> prefill_s, std::vector<double> decode_s)
      : prefill_s_(std::move(prefill_s)), decode_s_(std::move(decode_s)) {}

  // Prices batches 1..max_*_batch through the models (one memoized
  // roofline evaluation per distinct batch: prefill passes at the
  // workload's prompt length, decode steps at the worst-case final
  // context, exactly like MakePerfModelCallbacks) and copies the results
  // out; the models are free to die afterwards.
  static StepTimeTable Build(const PerfModel& prefill_model, const PerfModel& decode_model,
                             int max_prefill_batch, int max_decode_batch);

  bool empty() const { return prefill_s_.empty() || decode_s_.empty(); }
  int max_prefill_batch() const { return static_cast<int>(prefill_s_.size()); }
  int max_decode_batch() const { return static_cast<int>(decode_s_.size()); }

  // Seconds for one prefill pass over `batch` prompts / one decode step at
  // the given running batch. Out-of-range batches clamp to [1, cap] (the
  // simulator never exceeds the caps by construction). Must not be called
  // on an empty table.
  double PrefillTime(int batch) const { return prefill_s_[ClampIndex(batch, prefill_s_)]; }
  double DecodeStepTime(int batch) const { return decode_s_[ClampIndex(batch, decode_s_)]; }

 private:
  static size_t ClampIndex(int batch, const std::vector<double>& times) {
    if (batch < 1) {
      return 0;
    }
    size_t index = static_cast<size_t>(batch) - 1;
    return index < times.size() ? index : times.size() - 1;
  }

  std::vector<double> prefill_s_;  // entry b-1: pass time at batch b
  std::vector<double> decode_s_;   // entry b-1: step time at batch b
};

}  // namespace litegpu
