// Roofline evaluation engine (Williams et al. [57], as used by the paper):
// each stage's time is the max of its compute, HBM, and network components
// ("Compute, memory I/O, and network I/O can overlap within each stage"),
// plus a small non-overlappable launch overhead.

#pragma once

#include <string>
#include <vector>

#include "src/collectives/cost.h"
#include "src/hw/gpu_spec.h"
#include "src/llm/stages.h"

namespace litegpu {

enum class Bound { kCompute, kMemory, kNetwork, kOverhead };

std::string ToString(Bound bound);

// How aggressively compute, memory I/O, and network I/O hide behind each
// other (paper: "Compute, memory I/O, and network I/O can overlap within
// each stage"; production engines additionally overlap a stage's collective
// with the next stage's GEMMs, which kLayer models).
enum class OverlapScope {
  kNone,   // fully serialized: stage time = c + m + n (ablation A2)
  kStage,  // stage time = max(c, m, n)
  kLayer,  // layer time = max(sum c, sum m, sum n) across the layer's stages
};

std::string ToString(OverlapScope scope);

struct EngineParams {
  // Fraction of peak FLOPS realizable by fused kernels (MFU-style); 1.0
  // reproduces the paper's idealized peaks.
  double compute_efficiency = 1.0;
  // Fraction of peak HBM bandwidth realizable by streaming kernels.
  double memory_efficiency = 1.0;
  // Per-stage launch/serialization overhead that cannot overlap.
  double stage_overhead_s = 2e-6;
  // Collective algorithm for tensor-parallel all-reduces.
  CollectiveAlgo collective_algo = CollectiveAlgo::kAuto;
  // Per-step network latency (alpha) for the GPU-to-GPU fabric.
  double network_latency_s = 1.5e-6;
  // Default kStage is the paper's stated assumption; kLayer additionally
  // hides collectives behind adjacent stages (ablation A2 quantifies both).
  OverlapScope overlap = OverlapScope::kStage;
};

struct StageTiming {
  std::string name;
  double compute_s = 0.0;
  double memory_s = 0.0;
  double network_s = 0.0;
  double overhead_s = 0.0;
  double total_s = 0.0;
  Bound bound = Bound::kCompute;
};

struct PassTiming {
  // Timing of ONE instance of each per-layer stage.
  std::vector<StageTiming> layer_stages;
  int num_layers = 0;
  StageTiming embedding;
  StageTiming lm_head;

  // Whole forward pass: num_layers * sum(layer stages) + embedding + head.
  double total_s = 0.0;
  // Resource aggregates over the whole pass (useful for bound analysis).
  double compute_s = 0.0;
  double memory_s = 0.0;
  double network_s = 0.0;
  double overhead_s = 0.0;

  Bound DominantBound() const;
};

// Times one stage's work on one GPU of `gpu`, with collectives across
// `tp_degree` peers.
StageTiming EvaluateStage(const StageWork& work, const GpuSpec& gpu, int tp_degree,
                          const EngineParams& params);

// Times a whole forward pass.
PassTiming EvaluatePass(const ModelWork& work, const GpuSpec& gpu, int tp_degree,
                        const EngineParams& params);

}  // namespace litegpu
