#include "src/roofline/report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/format.h"
#include "src/util/table.h"

namespace litegpu {

double RidgeIntensity(const GpuSpec& gpu, const EngineParams& params) {
  double flops = gpu.flops * params.compute_efficiency;
  double bw = gpu.mem_bw_bytes_per_s * params.memory_efficiency;
  return bw > 0.0 ? flops / bw : 0.0;
}

std::vector<RooflinePoint> AnalyzePass(const ModelWork& work, const GpuSpec& gpu,
                                       int tp_degree, const EngineParams& params) {
  PassTiming pass = EvaluatePass(work, gpu, tp_degree, params);
  double peak = gpu.flops * params.compute_efficiency;
  double bw = gpu.mem_bw_bytes_per_s * params.memory_efficiency;

  std::vector<RooflinePoint> points;
  auto add = [&](const StageWork& stage, const StageTiming& timing, double repeat) {
    RooflinePoint p;
    p.stage = stage.name;
    p.operational_intensity = stage.OperationalIntensity();
    p.attainable_flops = std::min(peak, p.operational_intensity * bw);
    p.achieved_flops = timing.total_s > 0.0 ? stage.flops / timing.total_s : 0.0;
    p.efficiency = peak > 0.0 ? p.achieved_flops / peak : 0.0;
    p.bound = timing.bound;
    p.time_share = pass.total_s > 0.0 ? timing.total_s * repeat / pass.total_s : 0.0;
    points.push_back(p);
  };

  for (size_t i = 0; i < work.layer_stages.size(); ++i) {
    StageTiming timing = EvaluateStage(work.layer_stages[i], gpu, tp_degree, params);
    add(work.layer_stages[i], timing, work.num_layers);
  }
  add(work.embedding, EvaluateStage(work.embedding, gpu, tp_degree, params), 1.0);
  add(work.lm_head, EvaluateStage(work.lm_head, gpu, tp_degree, params), 1.0);
  return points;
}

std::string RooflineReportToText(const std::vector<RooflinePoint>& points,
                                 const GpuSpec& gpu, const EngineParams& params) {
  std::ostringstream os;
  double ridge = RidgeIntensity(gpu, params);
  os << gpu.name << " roofline (ridge at " << FormatDouble(ridge, 1) << " FLOP/B):\n";

  Table table({"Stage", "OI (FLOP/B)", "Attainable", "Achieved", "Peak eff.", "Bound",
               "Time share"});
  for (const auto& p : points) {
    table.AddRow({p.stage, FormatDouble(p.operational_intensity, 2),
                  HumanFlops(p.attainable_flops, 1), HumanFlops(p.achieved_flops, 1),
                  HumanPercent(p.efficiency, 1), ToString(p.bound),
                  HumanPercent(p.time_share, 1)});
  }
  os << table.ToText();

  // ASCII sketch: stages placed on a log OI axis against the roofline.
  os << "\n  log10(OI) axis, '^'=ridge, letters=stages:\n  ";
  const double lo = -1.0;
  const double hi = 4.0;
  const int width = 64;
  std::string axis(width, '-');
  auto place = [&](double oi, char c) {
    if (oi <= 0.0) {
      return;
    }
    double x = (std::log10(oi) - lo) / (hi - lo);
    int idx = std::clamp(static_cast<int>(x * (width - 1)), 0, width - 1);
    axis[idx] = c;
  };
  place(ridge, '^');
  char label = 'a';
  for (const auto& p : points) {
    place(p.operational_intensity, label);
    ++label;
  }
  os << axis << "\n  ";
  label = 'a';
  for (const auto& p : points) {
    os << label++ << "=" << p.stage << " ";
  }
  os << "(left of ^: memory-bound)\n";
  return os.str();
}

}  // namespace litegpu
