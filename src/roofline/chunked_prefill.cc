#include "src/roofline/chunked_prefill.h"

#include <algorithm>

namespace litegpu {

namespace {

// Merges a prefill-chunk pass and a decode pass into one fused step's work.
// FLOPs, activations, KV traffic, and collective payloads add; weights are
// streamed once and shared by both (the point of piggybacking).
ModelWork FuseWork(const ModelWork& prefill, const ModelWork& decode) {
  ModelWork fused = prefill;
  for (size_t i = 0; i < fused.layer_stages.size() && i < decode.layer_stages.size(); ++i) {
    StageWork& f = fused.layer_stages[i];
    const StageWork& d = decode.layer_stages[i];
    f.flops += d.flops;
    f.act_bytes += d.act_bytes;
    f.kv_bytes += d.kv_bytes;
    f.allreduce_bytes += d.allreduce_bytes;
    f.weight_bytes = std::max(f.weight_bytes, d.weight_bytes);
  }
  fused.embedding.flops += decode.embedding.flops;
  fused.embedding.act_bytes += decode.embedding.act_bytes;
  fused.embedding.weight_bytes += decode.embedding.weight_bytes;
  fused.lm_head.flops += decode.lm_head.flops;
  fused.lm_head.act_bytes += decode.lm_head.act_bytes;
  fused.lm_head.weight_bytes =
      std::max(fused.lm_head.weight_bytes, decode.lm_head.weight_bytes);
  return fused;
}

}  // namespace

FusedStepResult EvaluateFusedStep(const TransformerSpec& model, const GpuSpec& gpu,
                                  const TpPlan& plan, const ChunkedPrefillConfig& config,
                                  int prefill_context, const WorkloadParams& workload,
                                  const EngineParams& engine) {
  FusedStepResult result;
  int max_context = workload.prompt_tokens + workload.output_tokens;

  PassShape decode_shape;
  decode_shape.batch = config.decode_batch;
  decode_shape.new_tokens = 1;
  decode_shape.context_tokens = max_context - 1;
  ModelWork decode = BuildModelWork(model, plan, Phase::kDecode, decode_shape);
  result.decode_only_s = EvaluatePass(decode, gpu, plan.degree, engine).total_s;

  PassShape chunk_shape;
  chunk_shape.batch = 1;
  chunk_shape.new_tokens = config.chunk_tokens;
  chunk_shape.context_tokens = prefill_context;
  ModelWork chunk = BuildModelWork(model, plan, Phase::kPrefill, chunk_shape);

  ModelWork fused = FuseWork(chunk, decode);
  PassTiming timing = EvaluatePass(fused, gpu, plan.degree, engine);
  result.step_s = timing.total_s;
  result.bound = timing.DominantBound();
  result.tbt_inflation =
      result.decode_only_s > 0.0 ? result.step_s / result.decode_only_s : 0.0;
  result.prefill_tokens_per_s =
      result.step_s > 0.0 ? config.chunk_tokens / result.step_s : 0.0;
  return result;
}

int MaxChunkForSlo(const TransformerSpec& model, const GpuSpec& gpu, const TpPlan& plan,
                   int decode_batch, const WorkloadParams& workload,
                   const EngineParams& engine) {
  auto step_meets = [&](int chunk) {
    ChunkedPrefillConfig config;
    config.chunk_tokens = chunk;
    config.decode_batch = decode_batch;
    FusedStepResult r = EvaluateFusedStep(model, gpu, plan, config,
                                          workload.prompt_tokens, workload, engine);
    return r.step_s <= workload.tbt_slo_s;
  };
  if (!step_meets(1)) {
    return 0;
  }
  int lo = 1;
  int hi = workload.prompt_tokens;
  if (step_meets(hi)) {
    return hi;
  }
  while (lo < hi - 1) {
    int mid = lo + (hi - lo) / 2;
    if (step_meets(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ChunkedPrefillLatency(const TransformerSpec& model, const GpuSpec& gpu,
                             const TpPlan& plan, int decode_batch,
                             const WorkloadParams& workload, const EngineParams& engine) {
  int chunk = MaxChunkForSlo(model, gpu, plan, decode_batch, workload, engine);
  if (chunk <= 0) {
    return -1.0;
  }
  double total = 0.0;
  int processed = 0;
  while (processed < workload.prompt_tokens) {
    ChunkedPrefillConfig config;
    config.chunk_tokens = std::min(chunk, workload.prompt_tokens - processed);
    config.decode_batch = decode_batch;
    FusedStepResult r =
        EvaluateFusedStep(model, gpu, plan, config, processed, workload, engine);
    total += r.step_s;
    processed += config.chunk_tokens;
  }
  return total;
}

}  // namespace litegpu
