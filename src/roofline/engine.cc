#include "src/roofline/engine.h"

#include <algorithm>

namespace litegpu {

std::string ToString(OverlapScope scope) {
  switch (scope) {
    case OverlapScope::kNone:
      return "serialized";
    case OverlapScope::kStage:
      return "stage-overlap";
    case OverlapScope::kLayer:
      return "layer-overlap";
  }
  return "unknown";
}

std::string ToString(Bound bound) {
  switch (bound) {
    case Bound::kCompute:
      return "compute";
    case Bound::kMemory:
      return "memory";
    case Bound::kNetwork:
      return "network";
    case Bound::kOverhead:
      return "overhead";
  }
  return "unknown";
}

StageTiming EvaluateStage(const StageWork& work, const GpuSpec& gpu, int tp_degree,
                          const EngineParams& params) {
  StageTiming t;
  t.name = work.name;
  double flops = gpu.flops * params.compute_efficiency;
  double mem_bw = gpu.mem_bw_bytes_per_s * params.memory_efficiency;
  t.compute_s = flops > 0.0 ? work.flops / flops : 0.0;
  t.memory_s = mem_bw > 0.0 ? work.HbmBytes() / mem_bw : 0.0;
  if (work.allreduce_bytes > 0.0 && tp_degree > 1) {
    LinkModel link{gpu.net_bw_bytes_per_s, params.network_latency_s};
    t.network_s = AllReduceTime(work.allreduce_bytes, tp_degree, link, params.collective_algo);
  }
  t.overhead_s = params.stage_overhead_s;
  if (params.overlap == OverlapScope::kNone) {
    t.total_s = t.compute_s + t.memory_s + t.network_s + t.overhead_s;
  } else {
    t.total_s = std::max({t.compute_s, t.memory_s, t.network_s}) + t.overhead_s;
  }
  if (t.compute_s >= t.memory_s && t.compute_s >= t.network_s) {
    t.bound = Bound::kCompute;
  } else if (t.memory_s >= t.network_s) {
    t.bound = Bound::kMemory;
  } else {
    t.bound = Bound::kNetwork;
  }
  if (t.overhead_s > std::max({t.compute_s, t.memory_s, t.network_s})) {
    t.bound = Bound::kOverhead;
  }
  return t;
}

Bound PassTiming::DominantBound() const {
  double best = compute_s;
  Bound bound = Bound::kCompute;
  if (memory_s > best) {
    best = memory_s;
    bound = Bound::kMemory;
  }
  if (network_s > best) {
    best = network_s;
    bound = Bound::kNetwork;
  }
  if (overhead_s > best) {
    bound = Bound::kOverhead;
  }
  return bound;
}

PassTiming EvaluatePass(const ModelWork& work, const GpuSpec& gpu, int tp_degree,
                        const EngineParams& params) {
  PassTiming pass;
  pass.num_layers = work.num_layers;
  pass.layer_stages.reserve(work.layer_stages.size());
  double layer_compute = 0.0;
  double layer_memory = 0.0;
  double layer_network = 0.0;
  double layer_overhead = 0.0;
  double layer_stage_total = 0.0;
  for (const auto& stage : work.layer_stages) {
    StageTiming t = EvaluateStage(stage, gpu, tp_degree, params);
    layer_compute += t.compute_s;
    layer_memory += t.memory_s;
    layer_network += t.network_s;
    layer_overhead += t.overhead_s;
    layer_stage_total += t.total_s;
    pass.compute_s += t.compute_s * work.num_layers;
    pass.memory_s += t.memory_s * work.num_layers;
    pass.network_s += t.network_s * work.num_layers;
    pass.overhead_s += t.overhead_s * work.num_layers;
    pass.layer_stages.push_back(std::move(t));
  }
  double layer_total;
  if (params.overlap == OverlapScope::kLayer) {
    layer_total = std::max({layer_compute, layer_memory, layer_network}) + layer_overhead;
  } else {
    layer_total = layer_stage_total;
  }
  pass.total_s += layer_total * work.num_layers;
  pass.embedding = EvaluateStage(work.embedding, gpu, tp_degree, params);
  pass.lm_head = EvaluateStage(work.lm_head, gpu, tp_degree, params);
  for (const StageTiming* t : {&pass.embedding, &pass.lm_head}) {
    pass.total_s += t->total_s;
    pass.compute_s += t->compute_s;
    pass.memory_s += t->memory_s;
    pass.network_s += t->network_s;
    pass.overhead_s += t->overhead_s;
  }
  return pass;
}

}  // namespace litegpu
