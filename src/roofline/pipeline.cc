#include "src/roofline/pipeline.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

namespace {

int LayersPerStage(const TransformerSpec& model, int pp) {
  return (model.num_layers + pp - 1) / pp;
}

// Activation bytes handed between consecutive stages for a micro-batch of
// `tokens` total tokens (batch * new-tokens).
double StageTransferSeconds(const TransformerSpec& model, const GpuSpec& gpu, double tokens,
                            const EngineParams& engine) {
  if (gpu.net_bw_bytes_per_s <= 0.0) {
    return 0.0;
  }
  double bytes = tokens * model.d_model * model.bytes_per_act;
  return bytes / gpu.net_bw_bytes_per_s + engine.network_latency_s;
}

// Per-stage work for the worst stage: its share of layers plus the LM head
// (the last stage carries it; embeddings are lookup-dominated and cheap).
ModelWork BuildStageWork(const TransformerSpec& model, const PipelinePlan& plan, Phase phase,
                         const PassShape& shape) {
  ModelWork work = BuildModelWork(model, plan.tp, phase, shape);
  work.num_layers = LayersPerStage(model, plan.pp_degree);
  work.embedding = StageWork{};  // this stage does not run the embedding
  work.embedding.name = "embedding";
  return work;
}

}  // namespace

std::optional<PipelinePlan> MakePipelinePlan(const TransformerSpec& model, int tp_degree,
                                             int pp_degree, KvShardPolicy policy) {
  if (pp_degree < 1 || pp_degree > model.num_layers) {
    return std::nullopt;
  }
  auto tp = MakeTpPlan(model, tp_degree, policy);
  if (!tp) {
    return std::nullopt;
  }
  PipelinePlan plan;
  plan.tp = *tp;
  plan.pp_degree = pp_degree;
  return plan;
}

double PipelineWeightBytesPerGpu(const TransformerSpec& model, const PipelinePlan& plan) {
  double per_layer = PerLayerWeightBytesPerGpu(model, plan.tp);
  double embed = EmbeddingWeightBytesPerGpu(model, plan.tp);
  // First stage holds the embedding, last the LM head; worst case one of
  // each (they are the same size here).
  return LayersPerStage(model, plan.pp_degree) * per_layer + embed;
}

double PipelineKvBytesPerTokenPerGpu(const TransformerSpec& model, const PipelinePlan& plan) {
  double full = KvBytesPerTokenPerGpu(model, plan.tp);
  return full * LayersPerStage(model, plan.pp_degree) /
         static_cast<double>(model.num_layers);
}

PipelineDecodeResult EvaluatePipelineDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                            const PipelinePlan& plan, int batch,
                                            const WorkloadParams& workload,
                                            const EngineParams& engine) {
  PipelineDecodeResult result;
  if (batch <= 0) {
    return result;
  }
  int pp = plan.pp_degree;
  int micro_batch = (batch + pp - 1) / pp;
  int max_context = workload.prompt_tokens + workload.output_tokens;

  // Memory: this stage's layers hold KV for ALL batch sequences.
  result.memory_needed_bytes =
      PipelineWeightBytesPerGpu(model, plan) +
      static_cast<double>(batch) * max_context * PipelineKvBytesPerTokenPerGpu(model, plan) +
      ActWorkspaceBytesPerGpu(model, plan.tp, micro_batch, 1);
  if (workload.enforce_memory_capacity &&
      result.memory_needed_bytes > gpu.mem_capacity_bytes * FootprintParams{}.usable_fraction) {
    return result;
  }
  result.feasible = true;

  PassShape shape;
  shape.batch = micro_batch;
  shape.new_tokens = 1;
  shape.context_tokens = max_context - 1;
  ModelWork stage = BuildStageWork(model, plan, Phase::kDecode, shape);
  result.stage_step_s = EvaluatePass(stage, gpu, plan.tp.degree, engine).total_s;
  result.transfer_s = pp > 1 ? StageTransferSeconds(model, gpu, micro_batch, engine) : 0.0;

  // Steady state: pp micro-batches in flight; every sequence emits one
  // token per full rotation. Transfers overlap with the next micro-batch's
  // compute unless overlap is disabled.
  double per_hop = engine.overlap == OverlapScope::kNone
                       ? result.stage_step_s + result.transfer_s
                       : std::max(result.stage_step_s, result.transfer_s);
  result.tbt_s = pp * per_hop;
  result.meets_slo = result.tbt_s <= workload.tbt_slo_s;
  if (result.tbt_s > 0.0) {
    result.tokens_per_s = static_cast<double>(batch) / result.tbt_s;
    result.tokens_per_s_per_sm =
        result.tokens_per_s / (static_cast<double>(plan.TotalGpus()) * gpu.sm_count);
  }
  return result;
}

PipelinePrefillResult EvaluatePipelinePrefill(const TransformerSpec& model,
                                              const GpuSpec& gpu, const PipelinePlan& plan,
                                              int batch, const WorkloadParams& workload,
                                              const EngineParams& engine) {
  PipelinePrefillResult result;
  if (batch <= 0) {
    return result;
  }
  int pp = plan.pp_degree;

  result.memory_needed_bytes =
      PipelineWeightBytesPerGpu(model, plan) +
      static_cast<double>(batch) * workload.prompt_tokens *
          PipelineKvBytesPerTokenPerGpu(model, plan) +
      ActWorkspaceBytesPerGpu(model, plan.tp, 1, workload.prompt_tokens);
  if (workload.enforce_memory_capacity &&
      result.memory_needed_bytes > gpu.mem_capacity_bytes * FootprintParams{}.usable_fraction) {
    return result;
  }
  result.feasible = true;

  // One prompt per micro-batch; the pipeline fills then streams.
  PassShape shape;
  shape.batch = 1;
  shape.new_tokens = workload.prompt_tokens;
  shape.context_tokens = 0;
  ModelWork stage = BuildStageWork(model, plan, Phase::kPrefill, shape);
  double stage_s = EvaluatePass(stage, gpu, plan.tp.degree, engine).total_s;
  double transfer_s =
      pp > 1 ? StageTransferSeconds(model, gpu, workload.prompt_tokens, engine) : 0.0;
  double per_hop = engine.overlap == OverlapScope::kNone ? stage_s + transfer_s
                                                         : std::max(stage_s, transfer_s);
  result.ttft_s = (batch + pp - 1) * per_hop;
  result.meets_slo = result.ttft_s <= workload.ttft_slo_s;
  if (result.ttft_s > 0.0) {
    result.tokens_per_s =
        static_cast<double>(batch) * workload.prompt_tokens / result.ttft_s;
    result.tokens_per_s_per_sm =
        result.tokens_per_s / (static_cast<double>(plan.TotalGpus()) * gpu.sm_count);
  }
  return result;
}

PipelineSearchResult SearchPipelineDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                          const WorkloadParams& workload,
                                          const EngineParams& engine, KvShardPolicy policy,
                                          int max_batch) {
  PipelineSearchResult out;
  for (int tp_degree : FeasibleTpDegrees(model, gpu.max_gpus, policy)) {
    for (int pp = 1; pp <= gpu.max_gpus / tp_degree && pp <= model.num_layers; ++pp) {
      auto plan = MakePipelinePlan(model, tp_degree, pp, policy);
      if (!plan) {
        continue;
      }
      auto meets = [&](int batch) {
        PipelineDecodeResult r =
            EvaluatePipelineDecode(model, gpu, *plan, batch, workload, engine);
        return r.feasible && r.meets_slo;
      };
      if (!meets(1)) {
        continue;
      }
      int lo = 1;
      int hi = 1;
      while (hi < max_batch && meets(std::min(hi * 2, max_batch))) {
        hi = std::min(hi * 2, max_batch);
        lo = hi;
        if (hi == max_batch) {
          break;
        }
      }
      hi = std::min(hi * 2, max_batch);
      while (lo < hi) {
        int mid = lo + (hi - lo + 1) / 2;
        if (meets(mid)) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      PipelineDecodeResult best =
          EvaluatePipelineDecode(model, gpu, *plan, lo, workload, engine);
      if (!out.found || best.tokens_per_s_per_sm > out.result.tokens_per_s_per_sm) {
        out.found = true;
        out.plan = *plan;
        out.batch = lo;
        out.result = best;
      }
    }
  }
  return out;
}

}  // namespace litegpu
