// Chunked prefill with piggybacked decodes (SARATHI-style, paper ref [4]).
//
// The paper's workload-management section argues Lite clusters should mask
// network/memory overheads by exploiting the pipelined, predictable nature
// of LLM inference. Chunked prefill is the canonical instance: split a
// prompt into chunks and run each chunk fused with the ongoing decode batch,
// so the compute-hungry prefill fills the bubbles of the memory-bound
// decode. This models the fused-step roofline and the resulting TBT
// inflation / prefill throughput trade-off.

#pragma once

#include "src/hw/gpu_spec.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"

namespace litegpu {

struct ChunkedPrefillConfig {
  int chunk_tokens = 512;   // prompt tokens processed per fused step
  int decode_batch = 64;    // ongoing decode sequences riding along
};

struct FusedStepResult {
  double step_s = 0.0;           // one fused (chunk + decode) step
  double decode_only_s = 0.0;    // the same decode batch without the chunk
  double tbt_inflation = 0.0;    // step_s / decode_only_s
  double prefill_tokens_per_s = 0.0;  // chunk throughput while decoding
  Bound bound = Bound::kCompute;
};

// One fused step: a prefill chunk (at the given running context) plus a
// decode step for `decode_batch` sequences at full context.
FusedStepResult EvaluateFusedStep(const TransformerSpec& model, const GpuSpec& gpu,
                                  const TpPlan& plan, const ChunkedPrefillConfig& config,
                                  int prefill_context, const WorkloadParams& workload,
                                  const EngineParams& engine);

// Largest chunk that keeps the fused step under the TBT SLO (0 when even a
// minimal chunk breaks it).
int MaxChunkForSlo(const TransformerSpec& model, const GpuSpec& gpu, const TpPlan& plan,
                   int decode_batch, const WorkloadParams& workload,
                   const EngineParams& engine);

// End-to-end time to prefill a whole prompt in SLO-respecting chunks while
// the decode batch keeps running (the "free" prefill capacity of a decode
// cluster).
double ChunkedPrefillLatency(const TransformerSpec& model, const GpuSpec& gpu,
                             const TpPlan& plan, int decode_batch,
                             const WorkloadParams& workload, const EngineParams& engine);

}  // namespace litegpu
