#include "src/roofline/inference.h"

namespace litegpu {

namespace {

double TokensPerSmDenominator(const GpuSpec& gpu, const TpPlan& plan) {
  return static_cast<double>(plan.degree) * static_cast<double>(gpu.sm_count);
}

}  // namespace

PrefillResult EvaluatePrefill(const TransformerSpec& model, const GpuSpec& gpu,
                              const TpPlan& plan, int batch, const WorkloadParams& workload,
                              const EngineParams& engine) {
  PrefillResult result;
  if (batch <= 0) {
    return result;
  }
  result.memory_needed_bytes =
      MemoryNeededPerGpu(model, plan, batch, workload.prompt_tokens, workload.prompt_tokens);
  if (workload.enforce_memory_capacity &&
      result.memory_needed_bytes > gpu.mem_capacity_bytes * FootprintParams{}.usable_fraction) {
    return result;
  }
  result.feasible = true;

  PassShape shape;
  shape.batch = batch;
  shape.new_tokens = workload.prompt_tokens;
  shape.context_tokens = 0;
  ModelWork work = BuildModelWork(model, plan, Phase::kPrefill, shape);
  result.timing = EvaluatePass(work, gpu, plan.degree, engine);
  result.ttft_s = result.timing.total_s;
  result.meets_slo = result.ttft_s <= workload.ttft_slo_s;
  if (result.ttft_s > 0.0) {
    result.tokens_per_s =
        static_cast<double>(batch) * static_cast<double>(workload.prompt_tokens) / result.ttft_s;
    result.tokens_per_s_per_sm = result.tokens_per_s / TokensPerSmDenominator(gpu, plan);
  }
  return result;
}

DecodeResult EvaluateDecode(const TransformerSpec& model, const GpuSpec& gpu,
                            const TpPlan& plan, int batch, const WorkloadParams& workload,
                            const EngineParams& engine) {
  DecodeResult result;
  if (batch <= 0) {
    return result;
  }
  int max_context = workload.prompt_tokens + workload.output_tokens;
  result.memory_needed_bytes = MemoryNeededPerGpu(model, plan, batch, 1, max_context);
  if (workload.enforce_memory_capacity &&
      result.memory_needed_bytes > gpu.mem_capacity_bytes * FootprintParams{}.usable_fraction) {
    return result;
  }
  result.feasible = true;

  PassShape shape;
  shape.batch = batch;
  shape.new_tokens = 1;
  shape.context_tokens = max_context - 1;  // worst-case final step
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
  result.timing = EvaluatePass(work, gpu, plan.degree, engine);
  result.tbt_s = result.timing.total_s;
  result.meets_slo = result.tbt_s <= workload.tbt_slo_s;
  if (result.tbt_s > 0.0) {
    result.tokens_per_s = static_cast<double>(batch) / result.tbt_s;
    result.tokens_per_s_per_sm = result.tokens_per_s / TokensPerSmDenominator(gpu, plan);
  }
  return result;
}

}  // namespace litegpu
