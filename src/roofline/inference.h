// LLM-inference-level evaluation on top of the roofline engine: TTFT for the
// prefill phase, TBT for the decode phase, throughput, and the paper's
// figure-of-merit tokens/s/SM. Phases are evaluated on separate clusters
// (Splitwise-style phase splitting, as the paper assumes in Section 4).

#pragma once

#include "src/hw/gpu_spec.h"
#include "src/llm/footprint.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/engine.h"

namespace litegpu {

struct WorkloadParams {
  // Median production prompt length used by the paper (Splitwise coding).
  int prompt_tokens = 1500;
  // Output tokens generated per request; decode SLO must hold through the
  // final (longest-context) step.
  int output_tokens = 256;
  double ttft_slo_s = 1.0;    // time-to-first-token constraint
  double tbt_slo_s = 0.050;   // time-between-tokens constraint
  // Enforce that weights + KV cache fit in HBM (physical deployments need
  // this; disable to reproduce idealized capacity studies).
  bool enforce_memory_capacity = true;
};

struct PrefillResult {
  bool feasible = false;       // memory fit (when enforced) and valid plan
  bool meets_slo = false;      // ttft <= SLO
  double ttft_s = 0.0;         // one prefill pass over the whole batch
  double tokens_per_s = 0.0;   // batch * prompt_tokens / ttft
  double tokens_per_s_per_sm = 0.0;
  double memory_needed_bytes = 0.0;  // per GPU
  PassTiming timing;
};

struct DecodeResult {
  bool feasible = false;
  bool meets_slo = false;      // worst-case (final-context) TBT <= SLO
  double tbt_s = 0.0;          // per-token step latency at final context
  double tokens_per_s = 0.0;   // batch / tbt
  double tokens_per_s_per_sm = 0.0;
  double memory_needed_bytes = 0.0;  // per GPU
  PassTiming timing;
};

// Prefill: one pass over `batch` prompts of prompt_tokens each.
PrefillResult EvaluatePrefill(const TransformerSpec& model, const GpuSpec& gpu,
                              const TpPlan& plan, int batch, const WorkloadParams& workload,
                              const EngineParams& engine);

// Decode: one token step for `batch` sequences at the worst-case context
// (prompt + output tokens).
DecodeResult EvaluateDecode(const TransformerSpec& model, const GpuSpec& gpu,
                            const TpPlan& plan, int batch, const WorkloadParams& workload,
                            const EngineParams& engine);

}  // namespace litegpu
