// Pipeline parallelism on top of tensor parallelism (TP x PP grids).
//
// The paper's case study is TP-only; its Figure-3b shows plain Lite
// collapsing at 405B because the weights force TP=32 and the collectives
// bill grows with the degree. Pipelining is the standard remedy: shard
// layers across `pp` stages of `tp` GPUs each, shrinking both the per-GPU
// weights (enabling smaller TP) and the collective group size, at the cost
// of inter-stage activation transfers and pipeline latency. This module
// models both phases and lets the search compare TP vs TP x PP (ablation
// bench_ablation_parallelism).

#pragma once

#include "src/hw/gpu_spec.h"
#include "src/llm/footprint.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"

namespace litegpu {

struct PipelinePlan {
  TpPlan tp;           // sharding within each stage
  int pp_degree = 1;   // number of pipeline stages
  int TotalGpus() const { return tp.degree * pp_degree; }
};

// Builds a plan; nullopt when tp is infeasible for the model or pp does not
// divide usefully (pp must be <= num_layers).
std::optional<PipelinePlan> MakePipelinePlan(const TransformerSpec& model, int tp_degree,
                                             int pp_degree,
                                             KvShardPolicy policy = KvShardPolicy::kReplicate);

// Per-GPU memory with layers sharded across stages (the first stage also
// holds the embedding; the last the LM head — we charge the max).
double PipelineWeightBytesPerGpu(const TransformerSpec& model, const PipelinePlan& plan);
double PipelineKvBytesPerTokenPerGpu(const TransformerSpec& model, const PipelinePlan& plan);

struct PipelineDecodeResult {
  bool feasible = false;
  bool meets_slo = false;
  // Steady-state continuous-batching pipeline: micro-batches round-robin
  // through the stages.
  double tbt_s = 0.0;         // per-sequence token interval (full traversal)
  double stage_step_s = 0.0;  // slowest stage's micro-step
  double transfer_s = 0.0;    // per-hop activation transfer
  double tokens_per_s = 0.0;
  double tokens_per_s_per_sm = 0.0;
  double memory_needed_bytes = 0.0;
};

// Decode with `batch` sequences split into pp micro-batches.
PipelineDecodeResult EvaluatePipelineDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                            const PipelinePlan& plan, int batch,
                                            const WorkloadParams& workload,
                                            const EngineParams& engine);

struct PipelinePrefillResult {
  bool feasible = false;
  bool meets_slo = false;
  double ttft_s = 0.0;  // fill + drain of the micro-batch pipeline
  double tokens_per_s = 0.0;
  double tokens_per_s_per_sm = 0.0;
  double memory_needed_bytes = 0.0;
};

// Prefill of `batch` prompts pushed through the pipeline as micro-batches
// of one prompt each (TTFT measured at the last prompt's completion).
PipelinePrefillResult EvaluatePipelinePrefill(const TransformerSpec& model,
                                              const GpuSpec& gpu, const PipelinePlan& plan,
                                              int batch, const WorkloadParams& workload,
                                              const EngineParams& engine);

// Best (tp, pp, batch) decode configuration with tp*pp <= gpu.max_gpus,
// maximizing tokens/s/SM under the SLOs; pure TP is the pp=1 row.
struct PipelineSearchResult {
  bool found = false;
  PipelinePlan plan;
  int batch = 0;
  PipelineDecodeResult result;
};

PipelineSearchResult SearchPipelineDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                          const WorkloadParams& workload,
                                          const EngineParams& engine,
                                          KvShardPolicy policy = KvShardPolicy::kReplicate,
                                          int max_batch = 65536);

}  // namespace litegpu
