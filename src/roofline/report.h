// Roofline reporting: operational-intensity analysis and textual "roofline
// plots" for a pass — the diagnostic view behind Figure 3 (which stages are
// compute/memory/network bound on which GPU, and by how much).

#pragma once

#include <string>
#include <vector>

#include "src/hw/gpu_spec.h"
#include "src/llm/stages.h"
#include "src/roofline/engine.h"

namespace litegpu {

struct RooflinePoint {
  std::string stage;
  double operational_intensity = 0.0;  // FLOP per HBM byte
  double attainable_flops = 0.0;       // min(peak, OI * mem_bw)
  double achieved_flops = 0.0;         // stage FLOPs / stage time
  double efficiency = 0.0;             // achieved / peak
  Bound bound = Bound::kCompute;
  double time_share = 0.0;             // share of the whole pass time
};

// The classic machine-balance point: OI below this is memory-bound.
double RidgeIntensity(const GpuSpec& gpu, const EngineParams& params = {});

// Per-stage roofline placement for a pass.
std::vector<RooflinePoint> AnalyzePass(const ModelWork& work, const GpuSpec& gpu,
                                       int tp_degree, const EngineParams& params = {});

// Renders the analysis as a table plus a log-scale ASCII roofline sketch.
std::string RooflineReportToText(const std::vector<RooflinePoint>& points,
                                 const GpuSpec& gpu, const EngineParams& params = {});

}  // namespace litegpu
