// Splitwise-style phase-split pool sizing (paper Sections 3-4: different
// inference phases run on differently-customized clusters). Given a request
// rate and the measured per-instance capacities, size the prefill and decode
// pools, quantified at H100 vs Lite granularity.

#pragma once

#include <string>

namespace litegpu {

class PerfModel;

struct PoolDemand {
  double requests_per_s = 10.0;
  // Mean tokens per request. Doubles, not ints: a multi-tenant mix plans
  // capacity from the class-weighted mean workload (e.g. 0.7*256 + 0.3*900
  // output tokens), which is fractional.
  double prompt_tokens = 1500.0;
  double output_tokens = 256.0;
  // Headroom multiplier over the mean demand (burst absorption).
  double provisioning_headroom = 1.25;
};

struct InstanceCapacity {
  // Best-config throughput of ONE instance (from core::ConfigSearch).
  double prefill_tokens_per_s = 0.0;
  double decode_tokens_per_s = 0.0;
  int prefill_gpus = 0;  // GPUs per prefill instance
  int decode_gpus = 0;   // GPUs per decode instance
};

struct PoolPlan {
  int prefill_instances = 0;
  int decode_instances = 0;
  int prefill_gpus = 0;
  int decode_gpus = 0;
  int total_gpus = 0;
  // Provisioned / demanded capacity per pool (>= headroom by construction;
  // larger means quantization waste).
  double prefill_overprovision = 0.0;
  double decode_overprovision = 0.0;
  std::string ToString() const;
};

// Sizes both pools for the demand; instance counts round up.
PoolPlan SizePools(const PoolDemand& demand, const InstanceCapacity& capacity);

// Derives the per-instance capacities from the analytic PerfModels of the
// chosen prefill/decode configurations (the searched best batches). This is
// how the serve study and the examples feed SizePools without re-wiring
// roofline calls by hand.
InstanceCapacity CapacityFromPerfModels(const PerfModel& prefill_model, int prefill_batch,
                                        const PerfModel& decode_model, int decode_batch);

// The deployment a serve study actually simulates at one offered load
// point: explicitly requested instance counts are taken as-is, a requested
// count of 0 auto-sizes that pool from the analytic capacities via
// SizePools (never below one instance). Shared by the serve and serve-sweep
// studies so every point of a sweep sizes its prefill pool the same way a
// standalone serve run would. For multi-tenant mixes the token counts are
// the class-weighted means, so the pools are sized for the blended demand.
struct ServeDeployment {
  int prefill_instances = 0;
  int decode_instances = 0;
  // Hot-spare GPUs provisioned alongside the pools (0 without fault
  // injection). Spares are real devices the deployment pays for, so
  // total_gpus includes them.
  int spare_gpus = 0;
  int total_gpus = 0;
};

ServeDeployment PlanServeDeployment(double arrival_rate_per_s, double prompt_tokens,
                                    double output_tokens, const InstanceCapacity& capacity,
                                    int requested_prefill_instances,
                                    int requested_decode_instances);

// Accounts per-pool hot-spare GPUs into the deployment's cost: spare_gpus
// and total_gpus grow by prefill_spares + decode_spares. The serve studies
// call this when fault injection provisions hot spares, so the reported GPU
// count (the denominator of any cost-per-token claim) reflects the idle
// silicon that buys the availability.
ServeDeployment WithHotSpares(ServeDeployment deployment, int prefill_spares,
                              int decode_spares);

}  // namespace litegpu
