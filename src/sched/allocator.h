// Cluster resource allocation at GPU granularity (paper Section 3,
// "Finer-granularity of resource management"): with Lite-GPUs the allocation
// quantum shrinks from one H100-equivalent to a quarter, cutting the
// rounding waste when job demands are not multiples of the quantum, at the
// cost of more devices to track.

#pragma once

#include <string>
#include <vector>

namespace litegpu {

enum class FitPolicy { kFirstFit, kBestFit };

// A request for compute expressed in H100-equivalents (can be fractional:
// a small model may need 0.4 of an H100).
struct AllocationRequest {
  int id = 0;
  double h100_equivalents = 1.0;
};

struct Allocation {
  int request_id = 0;
  int units = 0;  // allocation quanta granted
  bool satisfied = false;
};

// A homogeneous cluster with `total_units` allocation quanta, each worth
// `unit_h100_equiv` H100-equivalents (1.0 for H100 clusters, 0.25 for
// 4x-split Lite clusters).
class ClusterAllocator {
 public:
  ClusterAllocator(int total_units, double unit_h100_equiv);

  // Grants ceil(demand / unit) quanta if available.
  Allocation Allocate(const AllocationRequest& request);

  // Returns quanta of the given request to the pool.
  void Release(const Allocation& allocation);

  int total_units() const { return total_units_; }
  int used_units() const { return used_units_; }
  double unit_h100_equiv() const { return unit_h100_equiv_; }

  // Capacity actually demanded / capacity granted, over current allocations
  // (1.0 = no rounding waste).
  double AllocationEfficiency() const;

  // Fraction of the cluster granted to jobs.
  double Utilization() const;

 private:
  int total_units_;
  double unit_h100_equiv_;
  int used_units_ = 0;
  double demanded_h100_ = 0.0;  // sum of satisfied requests' true demand
  double granted_h100_ = 0.0;   // sum of granted quanta worth
};

struct GranularityComparison {
  double coarse_efficiency = 0.0;  // H100-granularity allocation efficiency
  double fine_efficiency = 0.0;    // Lite-granularity
  int coarse_jobs_packed = 0;
  int fine_jobs_packed = 0;
};

// Packs the same request stream into two equal-capacity clusters that differ
// only in quantum size; used by the Section-3 resource-management bench.
GranularityComparison CompareGranularity(const std::vector<AllocationRequest>& requests,
                                         int h100_count, int split);

}  // namespace litegpu
