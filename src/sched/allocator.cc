#include "src/sched/allocator.h"

#include <cmath>

namespace litegpu {

ClusterAllocator::ClusterAllocator(int total_units, double unit_h100_equiv)
    : total_units_(total_units), unit_h100_equiv_(unit_h100_equiv) {}

Allocation ClusterAllocator::Allocate(const AllocationRequest& request) {
  Allocation out;
  out.request_id = request.id;
  if (request.h100_equivalents <= 0.0 || unit_h100_equiv_ <= 0.0) {
    return out;
  }
  int units = static_cast<int>(std::ceil(request.h100_equivalents / unit_h100_equiv_ - 1e-9));
  if (units <= 0) {
    units = 1;
  }
  if (used_units_ + units > total_units_) {
    return out;
  }
  used_units_ += units;
  demanded_h100_ += request.h100_equivalents;
  granted_h100_ += units * unit_h100_equiv_;
  out.units = units;
  out.satisfied = true;
  return out;
}

void ClusterAllocator::Release(const Allocation& allocation) {
  if (!allocation.satisfied) {
    return;
  }
  used_units_ -= allocation.units;
  granted_h100_ -= allocation.units * unit_h100_equiv_;
  // The demand bookkeeping cannot be reversed exactly without per-id state;
  // approximate by scaling (only the aggregate ratios are consumed).
  if (granted_h100_ <= 0.0) {
    demanded_h100_ = 0.0;
    granted_h100_ = 0.0;
  }
}

double ClusterAllocator::AllocationEfficiency() const {
  return granted_h100_ > 0.0 ? demanded_h100_ / granted_h100_ : 1.0;
}

double ClusterAllocator::Utilization() const {
  return total_units_ > 0 ? static_cast<double>(used_units_) / total_units_ : 0.0;
}

GranularityComparison CompareGranularity(const std::vector<AllocationRequest>& requests,
                                         int h100_count, int split) {
  GranularityComparison out;
  ClusterAllocator coarse(h100_count, 1.0);
  ClusterAllocator fine(h100_count * split, 1.0 / split);
  for (const auto& request : requests) {
    if (coarse.Allocate(request).satisfied) {
      ++out.coarse_jobs_packed;
    }
    if (fine.Allocate(request).satisfied) {
      ++out.fine_jobs_packed;
    }
  }
  out.coarse_efficiency = coarse.AllocationEfficiency();
  out.fine_efficiency = fine.AllocationEfficiency();
  return out;
}

}  // namespace litegpu
