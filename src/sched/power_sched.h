// Power-aware scheduling under a varying load (paper Section 3, power
// management): compare serving a diurnal load on
//   (a) an H100 cluster, down-clocking every (large) GPU together,
//   (b) an H100 cluster, powering whole GPUs off,
//   (c) a Lite cluster, powering quarter-GPUs off + DVFS on the remainder,
// plus the peak-serving question: overclock Lite-GPUs vs spin up more.

#pragma once

#include <string>
#include <vector>

#include "src/hw/gpu_spec.h"
#include "src/power/dvfs.h"

namespace litegpu {

// A normalized load trace: fraction of cluster peak throughput demanded per
// interval (equal-length intervals).
std::vector<double> DiurnalLoadTrace(int intervals_per_day = 24);

enum class PowerPolicy {
  kAllDvfs,       // all devices on, clocks follow load (coarse granularity)
  kPowerOffIdle,  // power off whole devices; the rest run at nominal
  kHybrid,        // power off devices AND down-clock the remainder
};

std::string ToString(PowerPolicy policy);

struct PowerScheduleResult {
  PowerPolicy policy = PowerPolicy::kAllDvfs;
  double average_power_watts = 0.0;
  double peak_power_watts = 0.0;
  double energy_per_day_joules = 0.0;
  // Served / demanded throughput (1.0 = no SLO violations).
  double service_level = 1.0;
};

// Simulates the trace on `num_devices` devices of `gpu`, each contributing
// 1/num_devices of cluster peak throughput at nominal clocks. The idle floor
// models devices that cannot power off (e.g. hosting resident weights):
// at least `min_active_fraction` devices stay on.
PowerScheduleResult RunPowerSchedule(const GpuSpec& gpu, int num_devices,
                                     const std::vector<double>& load_trace,
                                     PowerPolicy policy, const DvfsModel& dvfs,
                                     double min_active_fraction = 0.125);

// Peak handling: serve `peak_fraction` (>1) of nominal capacity either by
// overclocking all devices or by activating `extra_devices` more; returns
// the cluster power for each option (the paper asks which is cheaper).
struct PeakServingComparison {
  double overclock_power_watts = 0.0;
  double extra_devices_power_watts = 0.0;
  bool overclock_feasible = false;  // within the DVFS max frequency
};

PeakServingComparison ComparePeakServing(const GpuSpec& gpu, int num_devices,
                                         double peak_fraction, const DvfsModel& dvfs,
                                         double network_overhead_per_device_watts = 0.0);

}  // namespace litegpu
