#include "src/sched/power_sched.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

std::vector<double> DiurnalLoadTrace(int intervals_per_day) {
  // Smooth day/night curve with a morning ramp and evening peak, floored at
  // 15% (overnight background traffic); peaks at 1.0.
  std::vector<double> trace(intervals_per_day);
  for (int i = 0; i < intervals_per_day; ++i) {
    double hour = 24.0 * i / intervals_per_day;
    double base = 0.575 - 0.425 * std::cos((hour - 3.0) / 24.0 * 2.0 * M_PI);
    double evening_bump = 0.12 * std::exp(-0.5 * std::pow((hour - 20.0) / 2.0, 2.0));
    trace[i] = std::clamp(base + evening_bump, 0.15, 1.0);
  }
  return trace;
}

std::string ToString(PowerPolicy policy) {
  switch (policy) {
    case PowerPolicy::kAllDvfs:
      return "all-on DVFS";
    case PowerPolicy::kPowerOffIdle:
      return "power-off idle devices";
    case PowerPolicy::kHybrid:
      return "power-off + DVFS";
  }
  return "unknown";
}

PowerScheduleResult RunPowerSchedule(const GpuSpec& gpu, int num_devices,
                                     const std::vector<double>& load_trace,
                                     PowerPolicy policy, const DvfsModel& dvfs,
                                     double min_active_fraction) {
  PowerScheduleResult result;
  result.policy = policy;
  if (num_devices <= 0 || load_trace.empty()) {
    return result;
  }
  (void)gpu;  // capacity normalization folds the spec into dvfs.nominal_power

  double total_power = 0.0;
  double served = 0.0;
  double demanded = 0.0;
  int min_active = std::max(1, static_cast<int>(std::ceil(min_active_fraction * num_devices)));

  for (double load : load_trace) {
    load = std::clamp(load, 0.0, 1.0);
    demanded += load;
    double interval_power = 0.0;
    double interval_served = 0.0;
    switch (policy) {
      case PowerPolicy::kAllDvfs: {
        // Every device runs at frequency = load (floored by the DVFS range).
        double f = FrequencyForLoad(dvfs, load);
        interval_power = num_devices * PowerAtFrequency(dvfs, f);
        interval_served = std::min(1.0, f);
        break;
      }
      case PowerPolicy::kPowerOffIdle: {
        // Just enough devices at nominal clocks; the quantum is one device.
        int active =
            std::max(min_active, static_cast<int>(std::ceil(load * num_devices - 1e-9)));
        active = std::min(active, num_devices);
        interval_power = active * PowerAtFrequency(dvfs, 1.0);
        interval_served = std::min(load, static_cast<double>(active) / num_devices);
        break;
      }
      case PowerPolicy::kHybrid: {
        int active =
            std::max(min_active, static_cast<int>(std::ceil(load * num_devices - 1e-9)));
        active = std::min(active, num_devices);
        // The active set down-clocks to exactly meet the load.
        double per_device_load =
            active > 0 ? load * num_devices / active : 0.0;
        double f = FrequencyForLoad(dvfs, per_device_load);
        interval_power = active * PowerAtFrequency(dvfs, f);
        interval_served =
            std::min(load, f * static_cast<double>(active) / num_devices);
        break;
      }
    }
    total_power += interval_power;
    result.peak_power_watts = std::max(result.peak_power_watts, interval_power);
    served += std::min(interval_served, load);
  }

  double intervals = static_cast<double>(load_trace.size());
  result.average_power_watts = total_power / intervals;
  result.energy_per_day_joules = result.average_power_watts * 86400.0;
  result.service_level = demanded > 0.0 ? served / demanded : 1.0;
  return result;
}

PeakServingComparison ComparePeakServing(const GpuSpec& gpu, int num_devices,
                                         double peak_fraction, const DvfsModel& dvfs,
                                         double network_overhead_per_device_watts) {
  (void)gpu;
  PeakServingComparison out;
  out.overclock_feasible = peak_fraction <= dvfs.max_frequency_scale;
  if (out.overclock_feasible) {
    out.overclock_power_watts = num_devices * PowerAtFrequency(dvfs, peak_fraction);
  }
  int total_devices = static_cast<int>(std::ceil(num_devices * peak_fraction - 1e-9));
  out.extra_devices_power_watts =
      total_devices * (PowerAtFrequency(dvfs, 1.0) + network_overhead_per_device_watts);
  return out;
}

}  // namespace litegpu
