#include "src/sched/pools.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/perf/model.h"

namespace litegpu {

InstanceCapacity CapacityFromPerfModels(const PerfModel& prefill_model, int prefill_batch,
                                        const PerfModel& decode_model, int decode_batch) {
  InstanceCapacity capacity;
  capacity.prefill_tokens_per_s = prefill_model.Prefill(prefill_batch).tokens_per_s;
  capacity.prefill_gpus = prefill_model.plan().degree;
  capacity.decode_tokens_per_s = decode_model.Decode(decode_batch).tokens_per_s;
  capacity.decode_gpus = decode_model.plan().degree;
  return capacity;
}

ServeDeployment PlanServeDeployment(double arrival_rate_per_s, double prompt_tokens,
                                    double output_tokens, const InstanceCapacity& capacity,
                                    int requested_prefill_instances,
                                    int requested_decode_instances) {
  ServeDeployment deployment;
  PoolDemand demand;
  demand.requests_per_s = arrival_rate_per_s;
  demand.prompt_tokens = prompt_tokens;
  demand.output_tokens = output_tokens;
  PoolPlan plan = SizePools(demand, capacity);
  deployment.prefill_instances = requested_prefill_instances > 0
                                     ? requested_prefill_instances
                                     : std::max(1, plan.prefill_instances);
  deployment.decode_instances = requested_decode_instances > 0
                                    ? requested_decode_instances
                                    : std::max(1, plan.decode_instances);
  deployment.total_gpus = deployment.prefill_instances * capacity.prefill_gpus +
                          deployment.decode_instances * capacity.decode_gpus;
  return deployment;
}

ServeDeployment WithHotSpares(ServeDeployment deployment, int prefill_spares,
                              int decode_spares) {
  int spares = std::max(prefill_spares, 0) + std::max(decode_spares, 0);
  deployment.spare_gpus += spares;
  deployment.total_gpus += spares;
  return deployment;
}

std::string PoolPlan::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "prefill %d inst (%d GPUs, %.2fx) + decode %d inst (%d GPUs, %.2fx) = %d GPUs",
                prefill_instances, prefill_gpus, prefill_overprovision, decode_instances,
                decode_gpus, decode_overprovision, total_gpus);
  return buffer;
}

PoolPlan SizePools(const PoolDemand& demand, const InstanceCapacity& capacity) {
  PoolPlan plan;
  if (capacity.prefill_tokens_per_s <= 0.0 || capacity.decode_tokens_per_s <= 0.0) {
    return plan;
  }
  double prefill_demand =
      demand.requests_per_s * demand.prompt_tokens * demand.provisioning_headroom;
  double decode_demand =
      demand.requests_per_s * demand.output_tokens * demand.provisioning_headroom;

  plan.prefill_instances =
      std::max(1, static_cast<int>(std::ceil(prefill_demand / capacity.prefill_tokens_per_s)));
  plan.decode_instances =
      std::max(1, static_cast<int>(std::ceil(decode_demand / capacity.decode_tokens_per_s)));
  plan.prefill_gpus = plan.prefill_instances * capacity.prefill_gpus;
  plan.decode_gpus = plan.decode_instances * capacity.decode_gpus;
  plan.total_gpus = plan.prefill_gpus + plan.decode_gpus;
  plan.prefill_overprovision =
      plan.prefill_instances * capacity.prefill_tokens_per_s /
      (demand.requests_per_s * demand.prompt_tokens);
  plan.decode_overprovision = plan.decode_instances * capacity.decode_tokens_per_s /
                              (demand.requests_per_s * demand.output_tokens);
  return plan;
}

}  // namespace litegpu
