#include "src/hw/catalog.h"

#include "src/util/units.h"

namespace litegpu {

GpuSpec H100() {
  GpuSpec g;
  g.name = "H100";
  g.flops = 2000.0 * kTFLOPS;  // Table 1; FP8 dense
  g.sm_count = 132;
  g.clock_ghz = 1.83;
  g.mem_capacity_bytes = 80.0 * kGB;
  g.mem_bw_bytes_per_s = 3352.0 * kGBps;
  g.net_bw_bytes_per_s = 450.0 * kGBps;
  g.max_gpus = 8;
  g.die_area_mm2 = 814.0;
  g.dies_per_package = 1;
  g.tdp_watts = 700.0;
  g.transistors_billion = 80.0;
  g.year = 2022;
  return g;
}

namespace {

// Shared base for all Lite variants: H100 scaled to 1/4 on every axis.
GpuSpec LiteBase() {
  GpuSpec g = H100();
  g.name = "Lite";
  g.flops = 500.0 * kTFLOPS;
  g.sm_count = 33;
  g.mem_capacity_bytes = 20.0 * kGB;
  g.mem_bw_bytes_per_s = 838.0 * kGBps;
  g.net_bw_bytes_per_s = 112.5 * kGBps;
  g.max_gpus = 32;
  g.die_area_mm2 = 814.0 / 4.0;
  // Slightly under a proportional 175 W: small dies run cooler, cutting
  // thermally-driven leakage, and skip the multi-die interface power.
  g.tdp_watts = 165.0;
  g.transistors_billion = 20.0;
  g.year = 0;  // hypothetical part
  return g;
}

}  // namespace

GpuSpec Lite() { return LiteBase(); }

GpuSpec LiteNetBw() {
  GpuSpec g = LiteBase();
  g.name = "Lite+NetBW";
  g.net_bw_bytes_per_s = 225.0 * kGBps;
  return g;
}

GpuSpec LiteNetBwFlops() {
  GpuSpec g = LiteBase();
  g.name = "Lite+NetBW+FLOPS";
  g.flops = 550.0 * kTFLOPS;  // 10% overclock enabled by easier cooling
  g.clock_ghz = 2.01;
  g.mem_bw_bytes_per_s = 419.0 * kGBps;  // Table 1: shoreline traded away from HBM
  g.net_bw_bytes_per_s = 225.0 * kGBps;
  return g;
}

GpuSpec LiteMemBw() {
  GpuSpec g = LiteBase();
  g.name = "Lite+MemBW";
  g.mem_bw_bytes_per_s = 1675.0 * kGBps;  // 2x via the extra shoreline
  return g;
}

GpuSpec LiteMemBwNetBw() {
  GpuSpec g = LiteBase();
  g.name = "Lite+MemBW+NetBW";
  g.mem_bw_bytes_per_s = 1675.0 * kGBps;
  g.net_bw_bytes_per_s = 225.0 * kGBps;
  return g;
}

std::vector<GpuSpec> Table1Configs() {
  return {H100(), Lite(), LiteNetBw(), LiteNetBwFlops(), LiteMemBw(), LiteMemBwNetBw()};
}

GpuSpec V100() {
  GpuSpec g;
  g.name = "V100";
  g.flops = 125.0 * kTFLOPS;  // FP16 tensor
  g.sm_count = 80;
  g.clock_ghz = 1.53;
  g.mem_capacity_bytes = 32.0 * kGB;
  g.mem_bw_bytes_per_s = 900.0 * kGBps;
  g.net_bw_bytes_per_s = 150.0 * kGBps;
  g.max_gpus = 8;
  g.die_area_mm2 = 815.0;
  g.dies_per_package = 1;
  g.tdp_watts = 300.0;
  g.transistors_billion = 21.1;
  g.year = 2017;
  return g;
}

GpuSpec A100() {
  GpuSpec g;
  g.name = "A100";
  g.flops = 312.0 * kTFLOPS;  // FP16 tensor
  g.sm_count = 108;
  g.clock_ghz = 1.41;
  g.mem_capacity_bytes = 80.0 * kGB;
  g.mem_bw_bytes_per_s = 2039.0 * kGBps;
  g.net_bw_bytes_per_s = 300.0 * kGBps;
  g.max_gpus = 8;
  g.die_area_mm2 = 826.0;
  g.dies_per_package = 1;
  g.tdp_watts = 400.0;
  g.transistors_billion = 54.2;
  g.year = 2020;
  return g;
}

GpuSpec B200() {
  GpuSpec g;
  g.name = "B200";
  g.flops = 4500.0 * kTFLOPS;  // FP8 dense
  g.sm_count = 2 * 132;        // two reticle-class dies
  g.clock_ghz = 1.8;
  g.mem_capacity_bytes = 192.0 * kGB;
  g.mem_bw_bytes_per_s = 8000.0 * kGBps;
  g.net_bw_bytes_per_s = 900.0 * kGBps;
  g.max_gpus = 8;
  g.die_area_mm2 = 2.0 * 800.0;
  g.dies_per_package = 2;
  g.tdp_watts = 1000.0;
  g.transistors_billion = 208.0;
  g.year = 2024;
  return g;
}

std::vector<GpuSpec> HistoricalGenerations() { return {V100(), A100(), H100(), B200()}; }

std::optional<GpuSpec> FindGpu(const std::string& name) {
  for (const auto& g : Table1Configs()) {
    if (g.name == name) {
      return g;
    }
  }
  for (const auto& g : HistoricalGenerations()) {
    if (g.name == name) {
      return g;
    }
  }
  return std::nullopt;
}

}  // namespace litegpu
