// Lite-GPU derivation: build a fractional-scale GPU from a base part and
// customize it, validating the result against silicon feasibility.
//
// This is the programmatic form of the paper's Section-2/Table-1 process:
// take H100, scale to 1/split on every axis, then spend the extra shoreline
// on memory bandwidth, network bandwidth, or trade one for the other, and
// optionally overclock (smaller dies cool better).

#pragma once

#include <string>

#include "src/hw/gpu_spec.h"
#include "src/silicon/shoreline.h"
#include "src/util/json.h"

namespace litegpu {

struct LiteDeriveOptions {
  // Replace 1 base GPU with this many Lite-GPUs (area, FLOPS, memory, net
  // all scale by 1/split).
  int split = 4;
  // Multiplier on the scaled memory bandwidth (2.0 -> "Lite+MemBW").
  double mem_bw_multiplier = 1.0;
  // Multiplier on the scaled network bandwidth (2.0 -> "Lite+NetBW").
  double net_bw_multiplier = 1.0;
  // Clock/FLOPS overclock from improved cooling (1.1 -> "+FLOPS").
  double overclock = 1.0;
  // Power scaling exponent for overclocking: P ~ f^alpha (2.2 is a common
  // DVFS fit; exposed for the power studies).
  double overclock_power_exponent = 2.2;
  // Max cluster size for the derived part (Table 1 scales 8 -> 32).
  int max_gpus_multiplier = 4;
};

struct LiteDeriveResult {
  GpuSpec gpu;
  bool shoreline_feasible = false;
  // Shoreline length (mm) demanded vs available at the modeled densities.
  double shoreline_demand_mm = 0.0;
  double shoreline_available_mm = 0.0;
  std::string ToString() const;
  Json ToJson() const;
};

// Derives a Lite-GPU from `base`. The result's name records the options,
// e.g. "H100/4 x1.0mem x2.0net x1.1clk".
LiteDeriveResult DeriveLite(const GpuSpec& base, const LiteDeriveOptions& options,
                            const ShorelineTech& tech = ShorelineTech{});

}  // namespace litegpu
