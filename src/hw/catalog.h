// GPU catalog: the six Table-1 case-study parts plus four historical
// datacenter generations (V100..B200) for the Figure-1 evolution study.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/hw/gpu_spec.h"

namespace litegpu {

// --- Table 1 of the paper (verbatim parameters) ---
GpuSpec H100();
GpuSpec Lite();                 // 1/4-scale H100
GpuSpec LiteNetBw();            // "Lite+NetBW": net 112.5 -> 225 GB/s
GpuSpec LiteNetBwFlops();       // "Lite+NetBW+FLOPS": +10% FLOPS, mem BW 838 -> 419
GpuSpec LiteMemBw();            // "Lite+MemBW": mem 838 -> 1675 GB/s
GpuSpec LiteMemBwNetBw();       // "Lite+MemBW+NetBW": both upgrades

// All six Table-1 rows in the paper's order.
std::vector<GpuSpec> Table1Configs();

// --- historical generations (Figure 1) ---
GpuSpec V100();
GpuSpec A100();
GpuSpec B200();

// V100, A100, H100, B200 in chronological order.
std::vector<GpuSpec> HistoricalGenerations();

// Lookup by name across the full catalog; nullopt if not found.
std::optional<GpuSpec> FindGpu(const std::string& name);

}  // namespace litegpu
