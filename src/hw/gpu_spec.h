// GPU hardware description used throughout the library.
//
// Table 1 of the paper is the canonical source for the case-study entries;
// historical parts (V100..B200) carry extra fields used by the Figure-1
// evolution bench and the silicon/power models.

#pragma once

#include <string>

namespace litegpu {

struct GpuSpec {
  std::string name;

  // --- compute ---
  double flops = 0.0;     // dense FLOP/s at the modeled precision (FP8 here)
  int sm_count = 0;       // streaming multiprocessors
  double clock_ghz = 0.0; // sustained boost clock

  // --- memory ---
  double mem_capacity_bytes = 0.0;
  double mem_bw_bytes_per_s = 0.0;

  // --- network (per-GPU injection bandwidth, unidirectional) ---
  double net_bw_bytes_per_s = 0.0;

  // --- cluster scoping (Table 1 "#Max GPUs": the largest cluster the paper's
  // search sweeps for this part) ---
  int max_gpus = 1;

  // --- physical (silicon/power models) ---
  double die_area_mm2 = 0.0;   // total compute silicon in the package
  int dies_per_package = 1;
  double tdp_watts = 0.0;
  double transistors_billion = 0.0;
  int year = 0;

  // --- derived ratios ---
  double FlopsPerSm() const;
  // Memory bytes/s per FLOP/s: the decode-phase figure of merit.
  double MemBwPerFlop() const;
  // Network bytes/s per FLOP/s: the collective-phase figure of merit.
  double NetBwPerFlop() const;
  // W per mm^2 of compute die: drives the cooling model.
  double PowerDensityWPerMm2() const;

  // Sanity checks (positive capacities, SM count, ...). Returns an empty
  // string when valid, else a description of the first problem.
  std::string Validate() const;
};

}  // namespace litegpu
