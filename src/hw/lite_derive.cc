#include "src/hw/lite_derive.h"

#include <cmath>
#include <cstdio>

#include "src/util/units.h"

namespace litegpu {

std::string LiteDeriveResult::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s: %.0f TFLOPS, %.0f GB, %.0f GB/s mem, %.1f GB/s net, %d SMs, "
                "shoreline %.1f/%.1f mm (%s)",
                gpu.name.c_str(), gpu.flops / kTFLOPS, gpu.mem_capacity_bytes / kGB,
                gpu.mem_bw_bytes_per_s / kGBps, gpu.net_bw_bytes_per_s / kGBps, gpu.sm_count,
                shoreline_demand_mm, shoreline_available_mm,
                shoreline_feasible ? "feasible" : "INFEASIBLE");
  return buffer;
}

Json LiteDeriveResult::ToJson() const {
  Json spec = Json::Object();
  spec.Set("name", gpu.name)
      .Set("flops", gpu.flops)
      .Set("sm_count", gpu.sm_count)
      .Set("clock_ghz", gpu.clock_ghz)
      .Set("mem_capacity_bytes", gpu.mem_capacity_bytes)
      .Set("mem_bw_bytes_per_s", gpu.mem_bw_bytes_per_s)
      .Set("net_bw_bytes_per_s", gpu.net_bw_bytes_per_s)
      .Set("max_gpus", gpu.max_gpus)
      .Set("die_area_mm2", gpu.die_area_mm2)
      .Set("tdp_watts", gpu.tdp_watts);
  Json j = Json::Object();
  j.Set("gpu", std::move(spec))
      .Set("shoreline_feasible", shoreline_feasible)
      .Set("shoreline_demand_mm", shoreline_demand_mm)
      .Set("shoreline_available_mm", shoreline_available_mm);
  return j;
}

LiteDeriveResult DeriveLite(const GpuSpec& base, const LiteDeriveOptions& options,
                            const ShorelineTech& tech) {
  LiteDeriveResult result;
  GpuSpec& g = result.gpu;
  g = base;

  double inv = 1.0 / static_cast<double>(options.split);
  g.flops = base.flops * inv * options.overclock;
  g.sm_count = std::max(1, static_cast<int>(std::lround(base.sm_count * inv)));
  g.clock_ghz = base.clock_ghz * options.overclock;
  g.mem_capacity_bytes = base.mem_capacity_bytes * inv;
  g.mem_bw_bytes_per_s = base.mem_bw_bytes_per_s * inv * options.mem_bw_multiplier;
  g.net_bw_bytes_per_s = base.net_bw_bytes_per_s * inv * options.net_bw_multiplier;
  g.die_area_mm2 = base.die_area_mm2 * inv;
  g.dies_per_package = 1;
  g.transistors_billion = base.transistors_billion * inv;
  g.max_gpus = base.max_gpus * options.max_gpus_multiplier;

  // Power: proportional share of the base TDP, then the DVFS penalty for any
  // overclock (P ~ f^alpha around the nominal point).
  g.tdp_watts =
      base.tdp_watts * inv * std::pow(options.overclock, options.overclock_power_exponent);

  char name[128];
  std::snprintf(name, sizeof(name), "%s/%d x%.1fmem x%.1fnet x%.2fclk", base.name.c_str(),
                options.split, options.mem_bw_multiplier, options.net_bw_multiplier,
                options.overclock);
  g.name = name;

  result.shoreline_available_mm = DiePerimeterMm(g.die_area_mm2) * 0.85;
  result.shoreline_demand_mm = (g.mem_bw_bytes_per_s / kGB) / tech.hbm_gbps_per_mm +
                               (g.net_bw_bytes_per_s / kGB) / tech.cpo_gbps_per_mm;
  result.shoreline_feasible = BandwidthFeasible(g.die_area_mm2, g.mem_bw_bytes_per_s,
                                                g.net_bw_bytes_per_s, tech);
  return result;
}

}  // namespace litegpu
