#include "src/hw/gpu_spec.h"

namespace litegpu {

double GpuSpec::FlopsPerSm() const {
  return sm_count > 0 ? flops / static_cast<double>(sm_count) : 0.0;
}

double GpuSpec::MemBwPerFlop() const { return flops > 0.0 ? mem_bw_bytes_per_s / flops : 0.0; }

double GpuSpec::NetBwPerFlop() const { return flops > 0.0 ? net_bw_bytes_per_s / flops : 0.0; }

double GpuSpec::PowerDensityWPerMm2() const {
  return die_area_mm2 > 0.0 ? tdp_watts / die_area_mm2 : 0.0;
}

std::string GpuSpec::Validate() const {
  if (name.empty()) {
    return "missing name";
  }
  if (flops <= 0.0) {
    return "flops must be positive";
  }
  if (sm_count <= 0) {
    return "sm_count must be positive";
  }
  if (mem_capacity_bytes <= 0.0) {
    return "mem_capacity_bytes must be positive";
  }
  if (mem_bw_bytes_per_s <= 0.0) {
    return "mem_bw_bytes_per_s must be positive";
  }
  if (net_bw_bytes_per_s < 0.0) {
    return "net_bw_bytes_per_s must be non-negative";
  }
  if (max_gpus <= 0) {
    return "max_gpus must be positive";
  }
  return "";
}

}  // namespace litegpu
