// Minimal text table and CSV rendering, used by every bench binary to print
// the paper's tables/figure series in a stable, diff-friendly format.

#pragma once

#include <string>
#include <vector>

namespace litegpu {

enum class Align { kLeft, kRight };

// A simple column-aligned text table. Cells are strings; callers format
// numbers with the helpers in format.h so units stay explicit.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row. Rows shorter than the header are right-padded with "".
  void AddRow(std::vector<std::string> cells);

  // Appends a horizontal separator after the last added row.
  void AddSeparator();

  // Sets alignment for a column (default: kLeft for col 0, kRight otherwise).
  void SetAlign(size_t column, Align align);

  // Renders with box-drawing separators suitable for terminals/logs.
  std::string ToText() const;

  // Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> separator_after_;  // row indices followed by a rule
  std::vector<Align> aligns_;
};

// Escapes a single CSV cell.
std::string CsvEscape(const std::string& cell);

}  // namespace litegpu
