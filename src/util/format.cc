#include "src/util/format.h"

#include <array>
#include <cmath>
#include <cstdio>

namespace litegpu {

namespace {

// Scales `value` into [1, 1000) using the given prefix ladder and returns
// "<scaled> <prefix><suffix>".
std::string ScaleWithPrefixes(double value, const char* const* prefixes, int num_prefixes,
                              const char* suffix, int digits) {
  double magnitude = std::fabs(value);
  int index = 0;
  while (magnitude >= 1000.0 && index < num_prefixes - 1) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++index;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f %s%s", digits, value, prefixes[index], suffix);
  return buffer;
}

}  // namespace

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  std::string result = buffer;
  if (result == "-0" || result.rfind("-0.", 0) == 0) {
    bool all_zero = true;
    for (char c : result) {
      if (c != '-' && c != '0' && c != '.') {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      result.erase(result.begin());  // drop the '-'
    }
  }
  return result;
}

std::string HumanCount(double value, int digits) {
  static const char* kPrefixes[] = {"", "K", "M", "B", "T", "Q"};
  return ScaleWithPrefixes(value, kPrefixes, 6, "", digits);
}

std::string HumanBytes(double bytes, int digits) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T", "P", "E"};
  return ScaleWithPrefixes(bytes, kPrefixes, 7, "B", digits);
}

std::string HumanBandwidth(double bytes_per_second, int digits) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T", "P", "E"};
  return ScaleWithPrefixes(bytes_per_second, kPrefixes, 7, "B/s", digits);
}

std::string HumanFlops(double flops_per_second, int digits) {
  static const char* kPrefixes[] = {"", "K", "M", "G", "T", "P", "E"};
  return ScaleWithPrefixes(flops_per_second, kPrefixes, 7, "FLOPS", digits);
}

std::string HumanTime(double seconds, int digits) {
  char buffer[64];
  double magnitude = std::fabs(seconds);
  if (magnitude >= 1.0 || magnitude == 0.0) {
    std::snprintf(buffer, sizeof(buffer), "%.*f s", digits, seconds);
  } else if (magnitude >= 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.*f ms", digits, seconds * 1e3);
  } else if (magnitude >= 1e-6) {
    std::snprintf(buffer, sizeof(buffer), "%.*f us", digits, seconds * 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f ns", digits, seconds * 1e9);
  }
  return buffer;
}

std::string HumanPower(double watts, int digits) {
  static const char* kPrefixes[] = {"", "k", "M", "G"};
  return ScaleWithPrefixes(watts, kPrefixes, 4, "W", digits);
}

std::string HumanPercent(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, fraction * 100.0);
  return buffer;
}

}  // namespace litegpu
