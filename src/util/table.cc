#include "src/util/table.h"

#include <algorithm>
#include <sstream>

namespace litegpu {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.resize(headers_.size(), Align::kRight);
  if (!aligns_.empty()) {
    aligns_[0] = Align::kLeft;
  }
}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddSeparator() {
  if (!rows_.empty()) {
    separator_after_.push_back(rows_.size() - 1);
  }
}

void Table::SetAlign(size_t column, Align align) {
  if (column < aligns_.size()) {
    aligns_[column] = align;
  }
}

std::string Table::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [&](const std::string& cell, size_t c) {
    std::string out;
    size_t fill = widths[c] - cell.size();
    if (aligns_[c] == Align::kRight) {
      out.append(fill, ' ');
      out += cell;
    } else {
      out += cell;
      out.append(fill, ' ');
    }
    return out;
  };

  auto rule = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      line.append(widths[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };

  std::ostringstream os;
  os << rule();
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << " " << pad(headers_[c], c) << " |";
  }
  os << "\n" << rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << " " << pad(rows_[r][c], c) << " |";
    }
    os << "\n";
    if (std::find(separator_after_.begin(), separator_after_.end(), r) !=
        separator_after_.end()) {
      os << rule();
    }
  }
  os << rule();
  return os.str();
}

std::string CsvEscape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << CsvEscape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << CsvEscape(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace litegpu
