// Human-readable formatting helpers for report/bench output.

#pragma once

#include <string>

namespace litegpu {

// Formats a double with `digits` significant decimal places, trimming noise
// like "-0.00". Examples: FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double value, int digits = 2);

// 1234567 -> "1.23 M", 2.5e12 -> "2.50 T". Uses decimal SI prefixes.
std::string HumanCount(double value, int digits = 2);

// Bytes with decimal prefixes: 3.352e12 -> "3.35 TB".
std::string HumanBytes(double bytes, int digits = 2);

// Bytes/second with decimal prefixes: 4.5e11 -> "450.00 GB/s".
std::string HumanBandwidth(double bytes_per_second, int digits = 2);

// FLOP/s: 2e15 -> "2.00 PFLOPS".
std::string HumanFlops(double flops_per_second, int digits = 2);

// Seconds with an auto-selected unit: 0.00031 -> "310.00 us".
std::string HumanTime(double seconds, int digits = 2);

// Watts with an auto-selected unit: 35000 -> "35.00 kW".
std::string HumanPower(double watts, int digits = 2);

// Percent: 0.1234 -> "12.34%".
std::string HumanPercent(double fraction, int digits = 2);

}  // namespace litegpu
