// Minimal command-line flag parsing for the CLI tool and bench binaries.
// Supports `--key=value`, `--key value`, bare `--switch`, and positional
// arguments (the first positional is conventionally the subcommand).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace litegpu {

// The closest entry in `candidates` within 2 edits of `name` ("" when
// nothing is close). Powers "did you mean" hints for flag typos and for
// enum-like JSON fields (arrival kinds, autoscaler policies).
std::string ClosestCandidate(const std::string& name,
                             const std::vector<std::string>& candidates);

class Flags {
 public:
  // Parses argv (argv[0] skipped). Unknown flags are kept; validation is
  // the caller's job via Has()/typed getters and UnknownFlagCheck.
  // Keys in `switches` are known booleans: they never consume the next
  // token as a value, so `--json file.txt` keeps file.txt positional.
  static Flags Parse(int argc, const char* const* argv,
                     const std::vector<std::string>& switches = {});

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  // Returns fallback (and sets ok=false if provided) on missing/parse error.
  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  uint64_t GetUint64(const std::string& key, uint64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  // Rejects typos: returns "" when every parsed flag key is in `allowed`,
  // else a message naming the first unknown flag — with a "did you mean"
  // suggestion when an allowed spelling is close. Callers print the message
  // and exit nonzero.
  std::string UnknownFlagCheck(const std::vector<std::string>& allowed) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  std::string Subcommand() const {
    return positionals_.empty() ? "" : positionals_.front();
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace litegpu
