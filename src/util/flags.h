// Minimal command-line flag parsing for the CLI tool and bench binaries.
// Supports `--key=value`, `--key value`, bare `--switch`, and positional
// arguments (the first positional is conventionally the subcommand).

#pragma once

#include <map>
#include <string>
#include <vector>

namespace litegpu {

class Flags {
 public:
  // Parses argv (argv[0] skipped). Unknown flags are kept; validation is
  // the caller's job via Has()/typed getters.
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  // Returns fallback (and sets ok=false if provided) on missing/parse error.
  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  std::string Subcommand() const {
    return positionals_.empty() ? "" : positionals_.front();
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace litegpu
