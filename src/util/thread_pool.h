// Fixed-size worker pool powering the design-space sweeps.
//
// The sweep layers (configuration search, catalog studies, Monte-Carlo
// reliability) are embarrassingly parallel over independent indices, so the
// contract here is deliberately narrow: run fn(i) for every i in [0, n),
// write results into per-index slots, and combine them in index order
// afterwards. That makes every sweep bit-identical at any thread count —
// scheduling order never leaks into results.
//
// `threads <= 0` resolves to the hardware concurrency; `threads == 1` (or
// n <= 1) runs inline on the calling thread, restoring the serial path
// exactly.

#pragma once

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

namespace litegpu {

// Resolves a user-facing threads knob: >= 1 is taken literally, <= 0 means
// "use the hardware concurrency" (never less than 1).
int ResolveThreads(int requested);

class ThreadPool {
 public:
  // Spawns `num_threads` workers (resolved via ResolveThreads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task; the future resolves when it finishes (or rethrows the
  // task's exception).
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(i) for every i in [0, n) across the workers; the calling thread
  // blocks until all iterations finish (it does not run iterations itself,
  // so ThreadPool(N) means exactly N compute lanes). Iterations run in
  // unspecified order; callers keep determinism by writing only to
  // per-index state. Every index runs even when some throw; afterwards the
  // exception from the lowest index is rethrown (deterministically,
  // regardless of which worker hit it first).
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  struct Impl;
  void WorkerLoop();
  void Shutdown();  // signal stop and join all spawned workers

  std::vector<std::thread> workers_;
  Impl* impl_;  // queue + synchronization (defined in thread_pool.cc)
};

// One-shot helper: runs fn(i) for i in [0, n) on `threads` workers. Serial
// (inline, no pool) when the resolved thread count is 1 or n <= 1, with the
// same exception semantics as the pooled path (all indices run; lowest-index
// exception rethrown).
void ParallelFor(int threads, int n, const std::function<void(int)>& fn);

// Maps i -> fn(i) into a vector collected in index order. T must be
// default-constructible. Deterministic at any thread count.
template <typename T, typename Fn>
std::vector<T> ParallelMap(int threads, int n, const Fn& fn) {
  // std::vector<bool> packs neighbors into shared bytes, so concurrent
  // per-index writes would race; use std::vector<char> or a wrapper.
  static_assert(!std::is_same<T, bool>::value,
                "ParallelMap<bool> races on vector<bool>'s packed storage");
  std::vector<T> out(static_cast<size_t>(n > 0 ? n : 0));
  ParallelFor(threads, n, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

}  // namespace litegpu
