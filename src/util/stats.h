// Summary statistics used by the Monte-Carlo reliability simulator and the
// discrete-event serving simulator (TTFT/TBT percentiles, utilization, ...).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace litegpu {

// Streaming mean/variance via Welford's algorithm; O(1) memory.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores all samples; supports exact quantiles. Suitable for the sample
// counts our simulators produce (<= millions).
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  // Linear-interpolated quantile, q in [0,1]. Returns 0 for empty sets.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Streaming fixed-bin latency accumulator: O(bins) memory no matter how
// many samples stream through, unlike SampleSet's O(samples) storage. Bins
// are fixed-width over [0, hi); samples at or above `hi` land in an
// overflow bucket whose quantiles report the tracked exact maximum. Count,
// sum/mean, min, and max are exact; Quantile() interpolates inside the
// containing bin, so it is within one bin width of the exact sample
// quantile. Used for the serving simulator's per-step TBT distribution,
// whose sample count is O(simulated tokens).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double hi = 1.0, size_t bins = 16384);

  void Add(double x);
  // Adds `n` identical samples in O(1) — the per-class TBT accounting adds
  // one decode-step duration per active sequence of the class, so a step
  // with k sequences is one weighted add instead of k.
  void Add(double x, size_t n);

  size_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  // The quantile error bound: width of one bin.
  double bin_width() const { return hi_ / static_cast<double>(counts_.size()); }

  // Within bin_width() of the exact sample quantile (SampleSet::Quantile's
  // interpolated-rank convention), q in [0,1]; clamped to the exact
  // [min, max]. Returns 0 for empty histograms.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  // Number of samples at or below `x`, estimated by linear interpolation
  // inside the containing bin (exact at bin boundaries). Used for streamed
  // SLO-attainment checks where the exact sample list is not kept.
  double CountAtOrBelow(double x) const;

  // Folds `other` into this histogram bin-wise. Both must have identical
  // [0, hi) range and bin count — the shard merge path constructs every
  // shard's histogram from the same full-horizon config, so mismatches are
  // programming errors and trip an assert.
  void Merge(const LatencyHistogram& other);

 private:
  // The 0-based order statistic at `rank`, located to within one bin width
  // (overflow ranks report the exact maximum).
  double ValueAtRank(size_t rank) const;

  double hi_ = 1.0;
  std::vector<size_t> counts_;
  size_t overflow_ = 0;  // samples >= hi_
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket. Used for availability and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t bucket_count() const { return counts_.size(); }
  size_t bucket(size_t i) const { return counts_[i]; }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  size_t total() const { return total_; }

  // Renders a one-line-per-bucket ASCII bar chart (max `width` chars of bar).
  std::string ToAscii(size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace litegpu
