#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <string>

namespace litegpu {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  return samples_.back();
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

LatencyHistogram::LatencyHistogram(double hi, size_t bins)
    : hi_(hi > 0.0 ? hi : 1.0), counts_(bins == 0 ? 1 : bins, 0) {}

void LatencyHistogram::Add(double x) { Add(x, 1); }

void LatencyHistogram::Add(double x, size_t n) {
  if (n == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += n;
  sum_ += x * static_cast<double>(n);
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  double clamped = std::max(x, 0.0);
  size_t index = static_cast<size_t>(clamped / hi_ * static_cast<double>(counts_.size()));
  counts_[std::min(index, counts_.size() - 1)] += n;
}

double LatencyHistogram::ValueAtRank(size_t rank) const {
  // Ranks among the overflow samples (>= hi_) report the exact maximum.
  if (rank >= count_ - overflow_) {
    return max_;
  }
  size_t before = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t c = counts_[i];
    if (c == 0) {
      continue;
    }
    if (before + c > rank) {
      // The order statistic lies somewhere in [bin_lo, bin_hi); place it
      // proportionally among the bin's occupants. Any point of the bin is
      // within one bin width of the true value.
      double frac = static_cast<double>(rank - before) / static_cast<double>(c);
      return (static_cast<double>(i) + frac) * bin_width();
    }
    before += c;
  }
  return max_;  // unreachable: the binned counts cover every non-overflow rank
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Same convention as SampleSet: fractional rank over count samples,
  // linear interpolation between the two straddling order statistics. Each
  // order statistic is located within one bin width, so the interpolated
  // quantile is too — even when the two ranks land in distant bins (a
  // bimodal distribution with the quantile in the gap).
  double target = q * static_cast<double>(count_ - 1);
  size_t lo = static_cast<size_t>(target);
  size_t hi = std::min(lo + 1, count_ - 1);
  double frac = target - static_cast<double>(lo);
  double value = ValueAtRank(lo) * (1.0 - frac) + ValueAtRank(hi) * frac;
  return std::clamp(value, min_, max_);
}

double LatencyHistogram::CountAtOrBelow(double x) const {
  if (count_ == 0 || x < min_) {
    return 0.0;
  }
  if (x >= max_) {
    return static_cast<double>(count_);
  }
  if (x >= hi_) {
    // Between hi_ and max_: all binned samples plus an unknown share of the
    // overflow bucket. Attribute the overflow linearly over [hi_, max_].
    double span = max_ - hi_;
    double frac = span > 0.0 ? (x - hi_) / span : 1.0;
    return static_cast<double>(count_ - overflow_) +
           frac * static_cast<double>(overflow_);
  }
  double w = bin_width();
  size_t index = std::min(static_cast<size_t>(std::max(x, 0.0) / w), counts_.size() - 1);
  double below = 0.0;
  for (size_t i = 0; i < index; ++i) {
    below += static_cast<double>(counts_[i]);
  }
  double frac = (x - static_cast<double>(index) * w) / w;
  below += frac * static_cast<double>(counts_[index]);
  return std::min(below, static_cast<double>(count_));
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  assert(hi_ == other.hi_ && counts_.size() == other.counts_.size());
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::Add(double x) {
  double span = hi_ - lo_;
  size_t n = counts_.size();
  size_t index;
  if (span <= 0.0 || x < lo_) {
    index = 0;
  } else if (x >= hi_) {
    index = n - 1;
  } else {
    index = static_cast<size_t>((x - lo_) / span * static_cast<double>(n));
    index = std::min(index, n - 1);
  }
  ++counts_[index];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 0;
  for (size_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t bar = max_count ? counts_[i] * width / max_count : 0;
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8zu ", bucket_lo(i), bucket_hi(i),
                  counts_[i]);
    out += line;
    out.append(bar, '#');
    out += "\n";
  }
  return out;
}

}  // namespace litegpu
