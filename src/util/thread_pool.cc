#include "src/util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <queue>
#include <utility>

namespace litegpu {

int ResolveThreads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::queue<std::packaged_task<void()>> tasks;
  bool stop = false;
};

// Signals stop and joins whatever workers exist. Shared by the destructor
// and the constructor's failure path (spawning can throw std::system_error
// under resource exhaustion; destroying a joinable std::thread would call
// std::terminate).
void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl) {
  int n = ResolveThreads(num_threads);
  try {
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    Shutdown();
    delete impl_;
    throw;
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  delete impl_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait(lock, [this] { return impl_->stop || !impl_->tasks.empty(); });
      if (impl_->tasks.empty()) {
        return;  // stop requested and queue drained
      }
      task = std::move(impl_->tasks.front());
      impl_->tasks.pop();
    }
    task();  // exceptions land in the task's future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->tasks.push(std::move(task));
  }
  impl_->cv.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  // Workers pull indices from a shared counter (dynamic load balancing; the
  // per-degree / per-pair sweep costs are far from uniform). Determinism
  // comes from callers writing per-index slots, not from scheduling.
  std::atomic<int> next{0};
  std::mutex err_mu;
  int first_error_index = n;
  std::exception_ptr first_error;

  auto runner = [&] {
    for (;;) {
      int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  // One runner per worker (never more runners than indices); the calling
  // thread only waits, so ThreadPool(N) means exactly N compute lanes.
  int fanout = static_cast<int>(workers_.size());
  if (fanout > n) {
    fanout = n;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(fanout));
  for (int w = 0; w < fanout; ++w) {
    futures.push_back(Submit(runner));
  }
  for (auto& future : futures) {
    future.get();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void ParallelFor(int threads, int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  int resolved = ResolveThreads(threads);
  if (resolved <= 1 || n == 1) {
    // Same semantics as the pooled path: every index runs even when one
    // throws, and the lowest-index exception is what propagates.
    std::exception_ptr first_error;
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
    return;
  }
  // Never spawn more workers than there are indices: the pool is transient
  // and idle workers would only add spin-up/join overhead.
  ThreadPool pool(resolved < n ? resolved : n);
  pool.ParallelFor(n, fn);
}

}  // namespace litegpu
