// ExecPolicy: the one shared knob for how design-space sweeps execute.
//
// Every parallel surface in the library (per-TP-degree search, the Figure-3
// catalog studies, CompareClusters, the Monte-Carlo trials, and
// RunScenarios batches) takes its worker count from an embedded ExecPolicy
// instead of a per-struct `threads` field. This file is the single place
// that documents the semantics and the deprecated-alias precedence:
//
//   * `threads <= 0`  — use the hardware concurrency (the default).
//   * `threads == 1`  — the exact serial path, no pool.
//   * `threads >= 2`  — that many workers.
//   Results are bit-identical at any thread count (sweeps write only
//   per-index slots and combine in index order).
//
// Nesting: a parallel driver forces the sweeps *inside* its fan-out serial
// (e.g. CompareClusters runs one worker per GPU and pins each inner
// search's threads to 1) — not for determinism, which holds regardless, but
// so nested sweeps don't each spin up a transient hardware-wide pool. So
// for the composite drivers exactly one ExecPolicy governs:
// `ExperimentOptions::exec` for the studies (the embedded
// `SearchOptions::exec` is overridden to serial per pair),
// `DesignInputs::exec` for CompareClusters (`DesignInputs::search.exec`
// only applies when DesignCluster is called directly), and the
// RunScenarios argument for scenario batches.
//
// Migration: the old `int threads` fields on SearchOptions /
// ExperimentOptions / DesignInputs / McSimConfig still compile for one PR
// as deprecated aliases. Precedence: a NON-ZERO legacy `threads` wins over
// `exec.threads` (zero is indistinguishable from "never touched"); new
// code should set only `exec.threads`.

#pragma once

namespace litegpu {

struct ExecPolicy {
  // Worker threads for the sweep fan-out. <= 0 uses the hardware
  // concurrency; 1 restores the serial path.
  int threads = 0;
};

// Resolves an options struct that still carries a deprecated `threads`
// alias next to its ExecPolicy (see precedence note above).
inline int EffectiveThreads(const ExecPolicy& exec, int deprecated_threads) {
  return deprecated_threads != 0 ? deprecated_threads : exec.threads;
}

}  // namespace litegpu
