// ExecPolicy: the one shared knob for how design-space sweeps execute.
//
// Every parallel surface in the library (per-TP-degree search, the Figure-3
// catalog studies, CompareClusters, the Monte-Carlo trials, and
// RunScenarios batches) takes its worker count from an embedded ExecPolicy.
// This file is the single place that documents the semantics:
//
//   * `threads <= 0`  — use the hardware concurrency (the default).
//   * `threads == 1`  — the exact serial path, no pool.
//   * `threads >= 2`  — that many workers.
//   Results are bit-identical at any thread count (sweeps write only
//   per-index slots and combine in index order).
//
// Nesting: a parallel driver forces the sweeps *inside* its fan-out serial
// (e.g. CompareClusters runs one worker per GPU and pins each inner
// search's threads to 1) — not for determinism, which holds regardless, but
// so nested sweeps don't each spin up a transient hardware-wide pool. So
// for the composite drivers exactly one ExecPolicy governs:
// `ExperimentOptions::exec` for the studies (the embedded
// `SearchOptions::exec` is overridden to serial per pair),
// `DesignInputs::exec` for CompareClusters (`DesignInputs::search.exec`
// only applies when DesignCluster is called directly), and the
// RunScenarios argument for scenario batches.
//
// (The PR-2 deprecated `int threads` alias fields on the options structs
// are gone; ExecPolicy is the only spelling.)

#pragma once

namespace litegpu {

struct ExecPolicy {
  // Worker threads for the sweep fan-out. <= 0 uses the hardware
  // concurrency; 1 restores the serial path.
  int threads = 0;
};

// The worker count an options struct's policy resolves to.
inline int EffectiveThreads(const ExecPolicy& exec) { return exec.threads; }

}  // namespace litegpu
