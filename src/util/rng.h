// Deterministic pseudo-random number generation for the simulators.
//
// We implement SplitMix64 (seeding) and xoshiro256** (stream) rather than
// using std::mt19937 so that simulation results are bit-identical across
// standard libraries — reproducibility is a core requirement for the
// reliability and serving experiments.

#pragma once

#include <cstdint>

namespace litegpu {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality, 256-bit state generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double Exponential(double rate);

  // Standard normal via Box-Muller (cached spare value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  uint64_t Poisson(double mean);

  // Bernoulli trial.
  bool Chance(double p);

  // Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace litegpu
