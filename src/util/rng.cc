#include "src/util/rng.h"

#include <cmath>

namespace litegpu {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm.Next();
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Exponential(double rate) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mean + stddev * z0;
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    double x = Normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
  }
  // Knuth's method.
  double limit = std::exp(-mean);
  double product = NextDouble();
  uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

}  // namespace litegpu
