// Unit helpers for the litegpu modeling library.
//
// All quantities in the library are carried as plain doubles in SI base units:
// seconds, bytes, bytes/second, FLOP, FLOP/second, watts, joules, dollars,
// square millimeters (die geometry is the one domain where mm^2 is the natural
// base unit; we keep it to match how the silicon literature reports numbers).
// These constexpr factors keep call sites readable and conversion-bug free.

#pragma once

namespace litegpu {

// --- data sizes (decimal, matching vendor datasheets) ---
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

// --- binary data sizes (used for memory capacity when explicitly binary) ---
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// --- compute ---
inline constexpr double kGFLOPS = 1e9;
inline constexpr double kTFLOPS = 1e12;
inline constexpr double kPFLOPS = 1e15;

// --- time ---
inline constexpr double kNanosecond = 1e-9;
inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kYear = 365.0 * kDay;

// --- bandwidth ---
inline constexpr double kGBps = 1e9;   // bytes per second
inline constexpr double kTBps = 1e12;  // bytes per second
inline constexpr double kGbps = 1e9 / 8.0;
inline constexpr double kTbps = 1e12 / 8.0;
inline constexpr double kPbps = 1e15 / 8.0;

// --- power / energy ---
inline constexpr double kWatt = 1.0;
inline constexpr double kKilowatt = 1e3;
inline constexpr double kMegawatt = 1e6;
inline constexpr double kJoule = 1.0;
inline constexpr double kPicojoule = 1e-12;

}  // namespace litegpu
