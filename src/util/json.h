// Minimal JSON support for scenario files and structured report output.
//
// One value type (`Json`) covers writing (every report's ToJson) and reading
// (scenario files). The writer emits standard JSON with insertion-ordered
// object keys and shortest-round-trip numbers, so Dump() output is stable and
// `Parse(Dump(x)) == x`. The reader is *tolerant*: it accepts `//` and
// `/* */` comments plus trailing commas (scenario files are hand-edited),
// and the typed getters fall back to defaults on missing keys or type
// mismatches instead of failing — schema-level strictness belongs to the
// caller (see Scenario validation).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace litegpu {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Scalars. The default-constructed value is null.
  Json() = default;
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : type_(Type::kNumber), number_(value) {}
  Json(int64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(uint64_t value) : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  // Empty containers (distinct from null).
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // --- object interface (keys keep insertion order; Set replaces) ---
  Json& Set(const std::string& key, Json value);
  // Null when this is not an object or the key is absent.
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  // --- array interface ---
  Json& Append(Json value);
  const std::vector<Json>& elements() const { return elements_; }
  size_t size() const;  // element/member count; 0 for scalars

  // --- scalar extraction (fallback on type mismatch) ---
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int AsInt(int fallback = 0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  std::string AsString(const std::string& fallback = "") const;

  // --- tolerant object lookups: fallback when absent or mismatched ---
  bool GetBool(const std::string& key, bool fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int GetInt(const std::string& key, int fallback) const;
  uint64_t GetUint64(const std::string& key, uint64_t fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback) const;

  // Serializes. indent > 0 pretty-prints with that many spaces per level;
  // indent == 0 emits the compact one-line form.
  std::string Dump(int indent = 2) const;

  // Parses `text`; on failure returns nullopt and, when `error` is non-null,
  // a one-line description with the offending line number.
  static std::optional<Json> Parse(const std::string& text, std::string* error = nullptr);
  // Reads and parses a file (error covers I/O failures too).
  static std::optional<Json> ParseFile(const std::string& path, std::string* error = nullptr);

  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                          // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

}  // namespace litegpu
