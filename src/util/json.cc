#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace litegpu {

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  type_ = Type::kObject;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

Json& Json::Append(Json value) {
  type_ = Type::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return elements_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

bool Json::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double Json::AsDouble(double fallback) const {
  return type_ == Type::kNumber ? number_ : fallback;
}

int Json::AsInt(int fallback) const {
  return type_ == Type::kNumber ? static_cast<int>(std::llround(number_)) : fallback;
}

uint64_t Json::AsUint64(uint64_t fallback) const {
  // The upper bound is 2^64 as a double; casting values at or above it (or
  // negative ones) is UB, so both fall back.
  if (type_ != Type::kNumber || number_ < 0.0 || number_ >= 18446744073709551616.0) {
    return fallback;
  }
  return static_cast<uint64_t>(number_);
}

std::string Json::AsString(const std::string& fallback) const {
  return type_ == Type::kString ? string_ : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

int Json::GetInt(const std::string& key, int fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsInt(fallback) : fallback;
}

uint64_t Json::GetUint64(const std::string& key, uint64_t fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsUint64(fallback) : fallback;
}

std::string Json::GetString(const std::string& key, const std::string& fallback) const {
  const Json* v = Find(key);
  return v != nullptr ? v->AsString(fallback) : fallback;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    return false;
  }
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.elements_ == b.elements_;
    case Json::Type::kObject:
      return a.members_ == b.members_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Shortest decimal form that parses back to exactly the same double.
void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  out += buf;
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  std::optional<Json> Run() {
    SkipWhitespace();
    Json value;
    if (!ParseValue(value)) {
      return std::nullopt;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON value");
    }
    return value;
  }

 private:
  std::optional<Json> Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "line " + std::to_string(line_) + ": " + message;
    }
    return std::nullopt;
  }
  bool FailValue(const std::string& message) {
    Fail(message);
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char Next() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  // Tolerant extras live here: // and /* */ comments are whitespace.
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Next();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && Peek() != '\n') {
          Next();
        }
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        Next();
        Next();
        while (pos_ + 1 < text_.size() && !(Peek() == '*' && text_[pos_ + 1] == '/')) {
          Next();
        }
        if (pos_ + 1 >= text_.size()) {
          return;  // unterminated comment; the value parser will report EOF
        }
        Next();
        Next();
      } else {
        return;
      }
    }
  }

  bool Consume(char expected, const char* what) {
    if (Peek() != expected) {
      return FailValue(std::string("expected ") + what);
    }
    Next();
    return true;
  }

  bool ParseValue(Json& out) {
    switch (Peek()) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      case '\0':
        return FailValue("unexpected end of input");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json& out) {
    Next();  // '{'
    out = Json::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      Next();
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() == '}') {  // tolerant: trailing comma
        Next();
        return true;
      }
      Json key;
      if (Peek() != '"' || !ParseString(key)) {
        return FailValue("expected object key string");
      }
      SkipWhitespace();
      if (!Consume(':', "':' after object key")) {
        return false;
      }
      SkipWhitespace();
      Json value;
      if (!ParseValue(value)) {
        return false;
      }
      out.Set(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        Next();
        continue;
      }
      return Consume('}', "',' or '}' in object");
    }
  }

  bool ParseArray(Json& out) {
    Next();  // '['
    out = Json::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      Next();
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() == ']') {  // tolerant: trailing comma
        Next();
        return true;
      }
      Json value;
      if (!ParseValue(value)) {
        return false;
      }
      out.Append(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        Next();
        continue;
      }
      return Consume(']', "',' or ']' in array");
    }
  }

  bool ParseString(Json& out) {
    Next();  // '"'
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) {
        return FailValue("unterminated string");
      }
      char c = Next();
      if (c == '"') {
        out = Json(std::move(s));
        return true;
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return FailValue("unterminated escape");
      }
      char esc = Next();
      switch (esc) {
        case '"':
          s.push_back('"');
          break;
        case '\\':
          s.push_back('\\');
          break;
        case '/':
          s.push_back('/');
          break;
        case 'n':
          s.push_back('\n');
          break;
        case 'r':
          s.push_back('\r');
          break;
        case 't':
          s.push_back('\t');
          break;
        case 'b':
          s.push_back('\b');
          break;
        case 'f':
          s.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return FailValue("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = Next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return FailValue("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (BMP only; surrogates pass through
          // as replacement — scenario files are ASCII in practice).
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return FailValue("unknown escape character");
      }
    }
  }

  bool ParseKeyword(Json& out) {
    static const struct {
      const char* word;
      Json value;
    } kKeywords[] = {{"true", Json(true)}, {"false", Json(false)}, {"null", Json()}};
    for (const auto& kw : kKeywords) {
      size_t len = std::string(kw.word).size();
      if (text_.compare(pos_, len, kw.word) == 0) {
        pos_ += len;
        out = kw.value;
        return true;
      }
    }
    return FailValue("unrecognized token");
  }

  bool ParseNumber(Json& out) {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) {
      return FailValue("expected a value");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return FailValue("malformed number '" + token + "'");
    }
    out = Json(value);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::optional<Json> Json::Parse(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  return Parser(text, error).Run();
}

std::optional<Json> Json::ParseFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "'";
    }
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), error);
}

}  // namespace litegpu
