#include "src/util/flags.h"

#include <cstdlib>

namespace litegpu {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positionals_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag; else a switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

int Flags::GetInt(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  long value = std::strtol(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<int>(value) : fallback;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return fallback;
}

}  // namespace litegpu
