#include "src/util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace litegpu {

namespace {

// Classic edit distance, small strings only (flag names).
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    prev[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t substitute = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

}  // namespace

std::string ClosestCandidate(const std::string& name,
                             const std::vector<std::string>& candidates) {
  size_t best_distance = 3;  // within 2 edits counts as "plausibly a typo"
  const std::string* best = nullptr;
  for (const auto& candidate : candidates) {
    size_t d = EditDistance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = &candidate;
    }
  }
  return best == nullptr ? "" : *best;
}

Flags Flags::Parse(int argc, const char* const* argv,
                   const std::vector<std::string>& switches) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positionals_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag and the key is
    // not a declared boolean switch; else a bare switch.
    bool is_switch = std::find(switches.begin(), switches.end(), body) != switches.end();
    if (!is_switch && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::UnknownFlagCheck(const std::vector<std::string>& allowed) const {
  for (const auto& entry : values_) {
    const std::string& key = entry.first;
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string message = "unknown flag --" + key;
    // Suggest the closest allowed flag when it is plausibly a typo (within
    // 2 edits, e.g. --thread -> --threads, --mdoel -> --model).
    std::string best = ClosestCandidate(key, allowed);
    if (!best.empty()) {
      message += " (did you mean --" + best + "?)";
    }
    return message;
  }
  return "";
}

std::string Flags::GetString(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

int Flags::GetInt(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  long value = std::strtol(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<int>(value) : fallback;
}

uint64_t Flags::GetUint64(const std::string& key, uint64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty() || it->second[0] == '-') {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<uint64_t>(value) : fallback;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return fallback;
}

}  // namespace litegpu
