#include "src/memory/disagg.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace litegpu {

namespace {

double UsableHbm(const GpuSpec& gpu) {
  return gpu.mem_capacity_bytes * FootprintParams{}.usable_fraction;
}

}  // namespace

DisaggDecodeResult EvaluateDisaggDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                        const TpPlan& plan, int batch,
                                        const MemoryPoolSpec& pool,
                                        const DisaggPlacement& placement,
                                        const WorkloadParams& workload,
                                        const EngineParams& engine) {
  DisaggDecodeResult result;
  if (batch <= 0) {
    return result;
  }
  double f = std::clamp(placement.local_fraction, 0.0, 1.0);
  int max_context = workload.prompt_tokens + workload.output_tokens;
  double kv_per_seq =
      static_cast<double>(max_context) * KvBytesPerTokenPerGpu(model, plan);
  double weights = WeightBytesPerGpu(model, plan);
  double acts = ActWorkspaceBytesPerGpu(model, plan, batch, 1);

  result.local_bytes_per_gpu = weights + acts + f * batch * kv_per_seq;
  result.remote_bytes_per_gpu = (1.0 - f) * batch * kv_per_seq;
  if (workload.enforce_memory_capacity) {
    if (result.local_bytes_per_gpu > UsableHbm(gpu) ||
        result.remote_bytes_per_gpu > pool.capacity_per_gpu_bytes) {
      return result;
    }
  }
  result.feasible = true;

  // Local portion of the step: the attention stage streams only the local
  // slice of the cache from HBM.
  PassShape shape;
  shape.batch = batch;
  shape.new_tokens = 1;
  shape.context_tokens = max_context - 1;
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
  for (auto& stage : work.layer_stages) {
    if (stage.name == "attention") {
      stage.kv_bytes *= f;
    }
  }
  PassTiming pass = EvaluatePass(work, gpu, plan.degree, engine);
  result.local_memory_s = pass.memory_s;
  result.network_s = pass.network_s;

  // Remote portion: the whole remote slice is read once per step; each
  // layer pays one access latency (requests are pipelined within a layer).
  result.remote_memory_s = pool.bw_bytes_per_s > 0.0
                               ? result.remote_bytes_per_gpu / pool.bw_bytes_per_s +
                                     model.num_layers * pool.latency_s
                               : 0.0;
  if (f >= 1.0) {
    result.remote_memory_s = 0.0;
  }

  if (engine.overlap == OverlapScope::kNone || pool.shares_nic) {
    // Sharing the NIC serializes pool traffic behind the collectives (and
    // with no overlap everything serializes anyway).
    result.tbt_s = pass.total_s + result.remote_memory_s;
  } else {
    // Dedicated port: the predictable remote stream prefetches behind the
    // local work (paper: "extra latency can be masked through pre-fetching").
    result.tbt_s = std::max(pass.total_s, result.remote_memory_s);
  }

  result.meets_slo = result.tbt_s <= workload.tbt_slo_s;
  if (result.tbt_s > 0.0) {
    result.tokens_per_s = static_cast<double>(batch) / result.tbt_s;
    result.tokens_per_s_per_sm =
        result.tokens_per_s / (static_cast<double>(plan.degree) * gpu.sm_count);
  }
  return result;
}

int MaxBatchWithPool(const TransformerSpec& model, const TpPlan& plan, const GpuSpec& gpu,
                     const MemoryPoolSpec& pool, const DisaggPlacement& placement,
                     int max_context) {
  double f = std::clamp(placement.local_fraction, 0.0, 1.0);
  double kv_per_seq =
      static_cast<double>(max_context) * KvBytesPerTokenPerGpu(model, plan);
  double weights = WeightBytesPerGpu(model, plan);
  double acts = ActWorkspaceBytesPerGpu(model, plan, 1, 1);
  double local_budget = UsableHbm(gpu) - weights - acts;
  if (local_budget < 0.0 || kv_per_seq <= 0.0) {
    return 0;
  }
  double by_local = f > 0.0 ? local_budget / (f * kv_per_seq)
                            : std::numeric_limits<double>::max();
  double by_remote = f < 1.0 ? pool.capacity_per_gpu_bytes / ((1.0 - f) * kv_per_seq)
                             : std::numeric_limits<double>::max();
  double max_batch = std::min(by_local, by_remote);
  if (max_batch >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return std::max(0, static_cast<int>(std::floor(max_batch)));
}

double MinLocalFractionForSlo(const TransformerSpec& model, const GpuSpec& gpu,
                              const TpPlan& plan, int batch, const MemoryPoolSpec& pool,
                              const WorkloadParams& workload, const EngineParams& engine) {
  DisaggPlacement full;
  full.local_fraction = 1.0;
  DisaggDecodeResult at_full =
      EvaluateDisaggDecode(model, gpu, plan, batch, pool, full, workload, engine);
  if (!at_full.feasible || !at_full.meets_slo) {
    return -1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 40; ++iter) {
    double mid = 0.5 * (lo + hi);
    DisaggPlacement placement;
    placement.local_fraction = mid;
    DisaggDecodeResult r =
        EvaluateDisaggDecode(model, gpu, plan, batch, pool, placement, workload, engine);
    if (r.feasible && r.meets_slo) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace litegpu
