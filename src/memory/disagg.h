// Disaggregated-memory model for Lite-GPU clusters (paper Section 3,
// "Memory management"): each Lite-GPU has only a fraction of a large GPU's
// HBM, so workloads that need capacity (decode KV caches above all) may
// spill into a network-attached memory pool. This model quantifies the
// trade: remote capacity relieves the batch-size ceiling, but every decode
// step must stream the remote slice of the KV cache over the fabric.

#pragma once

#include "src/hw/gpu_spec.h"
#include "src/llm/footprint.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/inference.h"

namespace litegpu {

struct MemoryPoolSpec {
  // Capacity the pool grants each attached GPU.
  double capacity_per_gpu_bytes = 80e9;
  // Per-GPU bandwidth into the pool (shares or extends the NIC; CXL-class
  // or network-attached HBM).
  double bw_bytes_per_s = 50e9;
  // One-way access latency (fabric + controller).
  double latency_s = 2e-6;
  // If true, pool traffic contends with the GPU's collective traffic on the
  // same NIC; if false it rides a dedicated port.
  bool shares_nic = false;
};

struct DisaggPlacement {
  // Fraction of each sequence's KV cache resident in local HBM; the rest
  // lives in the pool. 1.0 = no disaggregation.
  double local_fraction = 1.0;
};

struct DisaggDecodeResult {
  bool feasible = false;
  bool meets_slo = false;
  double tbt_s = 0.0;
  double tokens_per_s = 0.0;
  double tokens_per_s_per_sm = 0.0;
  // Where the step time went.
  double local_memory_s = 0.0;
  double remote_memory_s = 0.0;
  double network_s = 0.0;
  // Footprints.
  double local_bytes_per_gpu = 0.0;
  double remote_bytes_per_gpu = 0.0;
};

// Decode step with the given KV placement. Local HBM must hold weights +
// the local KV slice; the pool must hold the remote slice. The remote slice
// is streamed once per step (decode reads the whole cache).
DisaggDecodeResult EvaluateDisaggDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                        const TpPlan& plan, int batch,
                                        const MemoryPoolSpec& pool,
                                        const DisaggPlacement& placement,
                                        const WorkloadParams& workload,
                                        const EngineParams& engine);

// Largest batch servable at the given placement (local + pool capacity).
int MaxBatchWithPool(const TransformerSpec& model, const TpPlan& plan, const GpuSpec& gpu,
                     const MemoryPoolSpec& pool, const DisaggPlacement& placement,
                     int max_context);

// Smallest local fraction that still meets the TBT SLO at the given batch
// (binary search over placements); returns -1.0 when even fully-local
// placement misses the SLO.
double MinLocalFractionForSlo(const TransformerSpec& model, const GpuSpec& gpu,
                              const TpPlan& plan, int batch, const MemoryPoolSpec& pool,
                              const WorkloadParams& workload, const EngineParams& engine);

}  // namespace litegpu
