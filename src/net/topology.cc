#include "src/net/topology.h"

#include <cmath>
#include <cstdio>

#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace litegpu {

namespace {

// Energy and dollars for one link end moving `bw` bytes/s at `util`.
double LinkEndPower(double bw_bytes_per_s, double util, const LinkTechSpec& link) {
  return bw_bytes_per_s * util * 8.0 * link.pj_per_bit * kPicojoule;
}

double LinkEndCost(double bw_bytes_per_s, const LinkTechSpec& link) {
  return bw_bytes_per_s * 8.0 / 1e9 * link.usd_per_gbps;
}

double SwitchPortPower(double bw_bytes_per_s, double util, const SwitchTechSpec& sw) {
  return bw_bytes_per_s * util * 8.0 * sw.pj_per_bit * kPicojoule;
}

}  // namespace

std::string ToString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDirectConnectGroups:
      return "direct-connect groups";
    case TopologyKind::kTorus2D:
      return "2D torus (switchless)";
    case TopologyKind::kFlatSwitched:
      return "flat packet-switched";
    case TopologyKind::kLeafSpine:
      return "leaf-spine packet-switched";
    case TopologyKind::kFlatCircuitSwitched:
      return "flat circuit-switched";
  }
  return "unknown";
}

TopologyReport BuildDirectConnectGroups(const FabricRequirements& req, int group_size,
                                        const LinkTechSpec& link) {
  TopologyReport r;
  r.kind = TopologyKind::kDirectConnectGroups;
  r.num_gpus = req.num_gpus;
  int groups = (req.num_gpus + group_size - 1) / group_size;
  int links_per_group = group_size * (group_size - 1) / 2;
  r.num_links = groups * links_per_group;
  r.num_switches = 0;
  r.num_switch_ports = 0;
  r.num_transceivers = 2 * r.num_links;
  // Each GPU splits its injection bandwidth across (group_size-1) peers.
  double per_link_bw =
      group_size > 1 ? req.per_gpu_bw_bytes_per_s / (group_size - 1) : 0.0;
  r.capex_usd = 2.0 * r.num_links * LinkEndCost(per_link_bw, link);
  r.power_watts = 2.0 * r.num_links * LinkEndPower(per_link_bw, req.avg_utilization, link);
  r.max_switch_hops = 0;
  r.max_hop_latency_s = 2.0 * 5e-9;  // serialization at both ends only
  r.any_to_any = false;
  r.network_blast_radius_gpus = group_size;
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%d groups of %d, full mesh inside each", groups,
                group_size);
  r.description = buffer;
  return r;
}

TopologyReport BuildTorus2D(const FabricRequirements& req, const LinkTechSpec& link) {
  TopologyReport r;
  r.kind = TopologyKind::kTorus2D;
  r.num_gpus = req.num_gpus;
  int side = std::max(2, static_cast<int>(std::lround(std::sqrt(req.num_gpus))));
  int rows = side;
  int cols = (req.num_gpus + rows - 1) / rows;
  // Torus: every node has 4 links; each link shared by 2 nodes -> 2N links.
  r.num_links = 2 * rows * cols;
  r.num_switches = 0;
  r.num_switch_ports = 0;
  r.num_transceivers = 2 * r.num_links;
  double per_link_bw = req.per_gpu_bw_bytes_per_s / 4.0;
  r.capex_usd = 2.0 * r.num_links * LinkEndCost(per_link_bw, link);
  r.power_watts = 2.0 * r.num_links * LinkEndPower(per_link_bw, req.avg_utilization, link);
  // Worst-case shortest path: half the ring in each dimension.
  int max_hops = rows / 2 + cols / 2;
  r.max_switch_hops = 0;
  r.max_hop_latency_s = max_hops * (link.max_reach_m / 2.0e8 + 50e-9);
  r.any_to_any = true;  // via multi-hop forwarding
  // Bisection: cutting the torus in half severs 2 links per row (wrap +
  // direct), both directions.
  r.bisection_bw_bytes_per_s = 2.0 * rows * per_link_bw;
  r.network_blast_radius_gpus = 1;  // a dead node only strands itself
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%dx%d torus, %d max hops", rows, cols, max_hops);
  r.description = buffer;
  return r;
}

TopologyReport BuildFlatSwitched(const FabricRequirements& req, const SwitchTechSpec& sw,
                                 const LinkTechSpec& link) {
  TopologyReport r;
  r.kind = TopologyKind::kFlatSwitched;
  r.num_gpus = req.num_gpus;
  // Parallel switch planes: each GPU takes one port on every plane; planes
  // added until per-GPU bandwidth is met, switches added per plane until
  // ports suffice.
  int planes = std::max(
      1, static_cast<int>(std::ceil(req.per_gpu_bw_bytes_per_s / sw.port_bw_bytes_per_s)));
  int switches_per_plane =
      std::max(1, static_cast<int>(std::ceil(static_cast<double>(req.num_gpus) / sw.radix)));
  r.num_switches = planes * switches_per_plane;
  r.num_links = planes * req.num_gpus;  // one GPU->switch link per plane
  r.num_switch_ports = r.num_links;     // GPU-facing ports
  // If a plane needs several switches, interconnect them pairwise (small
  // clusters here; modeling a full mesh between plane switches).
  if (switches_per_plane > 1) {
    int inter = planes * switches_per_plane * (switches_per_plane - 1) / 2;
    r.num_links += inter;
    r.num_switch_ports += 2 * inter;
  }
  r.num_transceivers = 2 * r.num_links;
  double per_link_bw = req.per_gpu_bw_bytes_per_s / planes;
  r.capex_usd = 2.0 * r.num_links * LinkEndCost(per_link_bw, link) +
                r.num_switch_ports * sw.usd_per_port;
  r.power_watts =
      2.0 * r.num_links * LinkEndPower(per_link_bw, req.avg_utilization, link) +
      r.num_switch_ports * SwitchPortPower(per_link_bw, req.avg_utilization, sw);
  r.max_switch_hops = switches_per_plane > 1 ? 2 : 1;
  r.max_hop_latency_s = r.max_switch_hops * sw.latency_s;
  r.any_to_any = true;
  r.network_blast_radius_gpus =
      switches_per_plane > 1 ? req.num_gpus / switches_per_plane : req.num_gpus;
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%d plane(s) x %d switch(es), radix %d", planes,
                switches_per_plane, sw.radix);
  r.description = buffer;
  return r;
}

TopologyReport BuildLeafSpine(const FabricRequirements& req, const SwitchTechSpec& sw,
                              const LinkTechSpec& link) {
  TopologyReport r;
  r.kind = TopologyKind::kLeafSpine;
  r.num_gpus = req.num_gpus;
  int planes = std::max(
      1, static_cast<int>(std::ceil(req.per_gpu_bw_bytes_per_s / sw.port_bw_bytes_per_s)));
  int down_per_leaf = sw.radix / 2;
  int leaves = std::max(
      1, static_cast<int>(std::ceil(static_cast<double>(req.num_gpus) / down_per_leaf)));
  int spines =
      std::max(1, static_cast<int>(std::ceil(static_cast<double>(leaves * down_per_leaf) /
                                             sw.radix)));
  leaves *= planes;
  spines *= planes;
  r.num_switches = leaves + spines;
  int gpu_links = planes * req.num_gpus;
  int uplink_links = leaves * down_per_leaf;  // non-blocking: up == down
  r.num_links = gpu_links + uplink_links;
  r.num_switch_ports = gpu_links + 2 * uplink_links;  // leaf-down + leaf-up + spine
  r.num_transceivers = 2 * r.num_links;
  double per_link_bw = req.per_gpu_bw_bytes_per_s / planes;
  r.capex_usd = 2.0 * r.num_links * LinkEndCost(per_link_bw, link) +
                r.num_switch_ports * sw.usd_per_port;
  r.power_watts =
      2.0 * r.num_links * LinkEndPower(per_link_bw, req.avg_utilization, link) +
      r.num_switch_ports * SwitchPortPower(per_link_bw, req.avg_utilization, sw);
  r.max_switch_hops = 3;  // leaf -> spine -> leaf
  r.max_hop_latency_s = 3.0 * sw.latency_s;
  r.any_to_any = true;
  r.network_blast_radius_gpus = std::min(req.num_gpus, down_per_leaf);
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%d leaves + %d spines, radix %d", leaves, spines,
                sw.radix);
  r.description = buffer;
  return r;
}

TopologyReport BuildFlatCircuitSwitched(const FabricRequirements& req,
                                        const SwitchTechSpec& sw, const LinkTechSpec& link) {
  TopologyReport r = BuildFlatSwitched(req, sw, link);
  r.kind = TopologyKind::kFlatCircuitSwitched;
  // Circuit fabric is single-hop by construction (circuits, no multi-switch
  // forwarding); the radix covers the cluster sizes studied here.
  r.max_switch_hops = 1;
  r.max_hop_latency_s = sw.latency_s + sw.reconfig_s;
  return r;
}

std::string TopologyComparisonToText(const std::vector<TopologyReport>& reports) {
  Table table({"Topology", "Layout", "Links", "Switches", "Ports", "Capex $", "Power",
               "Max hops", "Latency", "Any-to-any", "Net blast radius"});
  for (const auto& r : reports) {
    table.AddRow({ToString(r.kind), r.description, std::to_string(r.num_links),
                  std::to_string(r.num_switches), std::to_string(r.num_switch_ports),
                  FormatDouble(r.capex_usd, 0), HumanPower(r.power_watts),
                  std::to_string(r.max_switch_hops), HumanTime(r.max_hop_latency_s),
                  r.any_to_any ? "yes" : "no",
                  std::to_string(r.network_blast_radius_gpus) + " GPUs"});
  }
  return table.ToText();
}

}  // namespace litegpu
