// Link and switch technology parameters for the network-management study
// (paper Section 3, "Network management").
//
// Absolute dollar/pJ figures are parametric with public-estimate defaults;
// the paper's claims are about ratios (e.g. circuit switching's ">50% better
// energy efficiency" than packet switching).

#pragma once

#include <string>

namespace litegpu {

enum class LinkTech {
  kCopper,           // electrical SerDes, in-rack reach
  kPluggableOptics,  // face-plate pluggable modules
  kCpo,              // co-packaged optics (the paper's enabler)
};

std::string ToString(LinkTech tech);

struct LinkTechSpec {
  LinkTech tech = LinkTech::kCpo;
  double max_reach_m = 50.0;
  // Energy per transferred bit, one link end (SerDes/laser/driver).
  double pj_per_bit = 5.0;
  // Cost per Gb/s of unidirectional bandwidth, one link end.
  double usd_per_gbps = 0.5;
};

LinkTechSpec CopperLink();     // ~2 m reach, cheap, power-hungry per meter
LinkTechSpec PluggableLink();  // ~100 m reach, expensive, high pJ/bit
LinkTechSpec CpoLink();        // 10s of m reach, low pJ/bit (paper Section 1)

enum class SwitchTech {
  kPacket,   // electrical packet switch (Ethernet/IB class)
  kCircuit,  // optical circuit switch (Sirius-class, paper ref [6])
};

std::string ToString(SwitchTech tech);

struct SwitchTechSpec {
  SwitchTech tech = SwitchTech::kPacket;
  int radix = 64;                  // ports per switch
  double port_bw_bytes_per_s = 0;  // max per-port bandwidth
  // Switching energy per bit through the fabric (excludes link ends).
  double pj_per_bit = 5.0;
  double usd_per_port = 500.0;
  // Port-to-port forwarding latency.
  double latency_s = 500e-9;
  // Reconfiguration time (circuit switches only; 0 for packet).
  double reconfig_s = 0.0;
};

SwitchTechSpec PacketSwitch();
// Circuit switch per the paper's citation of Sirius [6]: more ports at high
// bandwidth, >50% better energy efficiency, lower latency, but needs
// reconfiguration between circuits.
SwitchTechSpec CircuitSwitch();

}  // namespace litegpu
