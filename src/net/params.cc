#include "src/net/params.h"

#include "src/util/units.h"

namespace litegpu {

std::string ToString(LinkTech tech) {
  switch (tech) {
    case LinkTech::kCopper:
      return "copper";
    case LinkTech::kPluggableOptics:
      return "pluggable-optics";
    case LinkTech::kCpo:
      return "co-packaged-optics";
  }
  return "unknown";
}

LinkTechSpec CopperLink() {
  LinkTechSpec s;
  s.tech = LinkTech::kCopper;
  s.max_reach_m = 2.0;
  s.pj_per_bit = 4.0;
  s.usd_per_gbps = 0.25;
  return s;
}

LinkTechSpec PluggableLink() {
  LinkTechSpec s;
  s.tech = LinkTech::kPluggableOptics;
  s.max_reach_m = 100.0;
  s.pj_per_bit = 18.0;
  s.usd_per_gbps = 1.2;
  return s;
}

LinkTechSpec CpoLink() {
  LinkTechSpec s;
  s.tech = LinkTech::kCpo;
  s.max_reach_m = 50.0;
  s.pj_per_bit = 5.0;
  s.usd_per_gbps = 0.6;
  return s;
}

std::string ToString(SwitchTech tech) {
  switch (tech) {
    case SwitchTech::kPacket:
      return "packet";
    case SwitchTech::kCircuit:
      return "circuit";
  }
  return "unknown";
}

SwitchTechSpec PacketSwitch() {
  SwitchTechSpec s;
  s.tech = SwitchTech::kPacket;
  s.radix = 64;
  s.port_bw_bytes_per_s = 100.0 * kGBps;
  s.pj_per_bit = 6.0;
  s.usd_per_port = 600.0;
  s.latency_s = 500e-9;
  s.reconfig_s = 0.0;
  return s;
}

SwitchTechSpec CircuitSwitch() {
  SwitchTechSpec s;
  s.tech = SwitchTech::kCircuit;
  // "(iii) more ports at high bandwidth, which allows for larger and
  // flatter networks" [6].
  s.radix = 256;
  s.port_bw_bytes_per_s = 200.0 * kGBps;
  // "(i) more than 50% better energy efficiency": passive optical path;
  // only the (amortized) control plane draws power.
  s.pj_per_bit = 2.0;
  s.usd_per_port = 300.0;
  // "(ii) lower latency": no buffering/arbitration in the data path.
  s.latency_s = 50e-9;
  s.reconfig_s = 3.7e-9;  // Sirius-class nanosecond reconfiguration
  return s;
}

}  // namespace litegpu
