// Cluster-network topology models (paper Section 3, "Network management"):
//   1. direct-connect groups ("build a direct-connect topology within that
//      group of Lite-GPUs and leave the remaining network as is")
//   2. flat single-stage switched network
//   3. two-tier (leaf-spine) switched network
//   4. flat optical circuit-switched network (Sirius-class)
// Each model reports component counts, cost, power, latency, and the
// flexibility/blast-radius properties the paper discusses.

#pragma once

#include <string>
#include <vector>

#include "src/net/params.h"

namespace litegpu {

// What the GPUs demand from the fabric.
struct FabricRequirements {
  int num_gpus = 32;
  // Injection bandwidth each GPU must be able to source/sink.
  double per_gpu_bw_bytes_per_s = 0.0;
  // Average utilization of that bandwidth (for energy accounting).
  double avg_utilization = 0.3;
};

enum class TopologyKind {
  kDirectConnectGroups,
  kTorus2D,
  kFlatSwitched,
  kLeafSpine,
  kFlatCircuitSwitched,
};

std::string ToString(TopologyKind kind);

struct TopologyReport {
  TopologyKind kind = TopologyKind::kFlatSwitched;
  std::string description;

  int num_gpus = 0;
  int num_links = 0;          // point-to-point cables/fibers
  int num_switches = 0;
  int num_switch_ports = 0;   // total ports across all switches
  int num_transceivers = 0;   // link ends (GPU side + switch side)

  double capex_usd = 0.0;     // links + switch ports
  double power_watts = 0.0;   // at avg_utilization
  double max_hop_latency_s = 0.0;  // worst-case GPU-to-GPU fabric latency
  int max_switch_hops = 0;

  // Can any GPU talk to any other at full rate (fault-tolerance and
  // flexible placement, Section 3)? Direct-connect groups cannot.
  bool any_to_any = false;
  // GPUs that lose connectivity/capacity together when one group/switch
  // element fails (network blast radius).
  int network_blast_radius_gpus = 0;
  // Worst-case cut bandwidth between cluster halves (filled by topologies
  // where it is meaningful; 0 otherwise).
  double bisection_bw_bytes_per_s = 0.0;
};

// 1. Fully-connected groups of `group_size` GPUs (e.g. the 4 Lite-GPUs that
// replace one H100); inter-group traffic uses the pre-existing scale-out
// network and is out of scope, as in the paper.
TopologyReport BuildDirectConnectGroups(const FabricRequirements& req, int group_size,
                                        const LinkTechSpec& link);

// 1b. Switchless 2D torus (TPU-style): every GPU wires to 4 neighbors; no
// switches, any-to-any via multi-hop forwarding (average ~sqrt(N)/2 hops).
// `bisection_bw_bytes_per_s` is filled for this topology.
TopologyReport BuildTorus2D(const FabricRequirements& req, const LinkTechSpec& link);

// 2. One stage of packet switches; requires num_gpus <= radix per switch
// domain, larger clusters get multiple parallel switch planes.
TopologyReport BuildFlatSwitched(const FabricRequirements& req, const SwitchTechSpec& sw,
                                 const LinkTechSpec& link);

// 3. Non-blocking two-tier leaf-spine packet network.
TopologyReport BuildLeafSpine(const FabricRequirements& req, const SwitchTechSpec& sw,
                              const LinkTechSpec& link);

// 4. Flat optical circuit switch (high radix, passive data path).
TopologyReport BuildFlatCircuitSwitched(const FabricRequirements& req,
                                        const SwitchTechSpec& sw, const LinkTechSpec& link);

// Renders the reports side by side.
std::string TopologyComparisonToText(const std::vector<TopologyReport>& reports);

}  // namespace litegpu
