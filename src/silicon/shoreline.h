// Shoreline (die-perimeter I/O) model.
//
// A die's off-chip bandwidth is limited by its perimeter ("shoreline"):
// HBM PHYs and network SerDes/optical engines all compete for edge length.
// Area grows with side^2 but shoreline with side, so splitting one die of
// area A into N dies of area A/N multiplies aggregate shoreline by sqrt(N) —
// quartering doubles it, which is the paper's "2x bandwidth-to-compute"
// argument and the source of the Lite+MemBW / Lite+NetBW design points.

#pragma once

namespace litegpu {

// Edge length of a square die of the given area, in mm.
double DiePerimeterMm(double die_area_mm2);

// Aggregate perimeter of `split` equal square dies totalling `area_mm2`.
double SplitPerimeterMm(double area_mm2, int split);

// Multiplier on aggregate shoreline from splitting one die into `split`
// (sqrt(split) for square dies).
double ShorelineGain(int split);

// Bandwidth each mm of shoreline can carry, by interface technology. These
// set the *budget*; a GpuSpec chooses how to spend it.
struct ShorelineTech {
  // HBM: an HBM3e site is ~11 mm of beachfront for ~1.2 TB/s -> ~110 GB/s/mm.
  double hbm_gbps_per_mm = 110.0;
  // Co-packaged optics: ~200 Gb/s/lambda, dense fiber coupling; public CPO
  // demos land around 25-50 GB/s per mm of beachfront.
  double cpo_gbps_per_mm = 40.0;
  // Electrical SerDes (NVLink-class): ~20 GB/s per mm.
  double serdes_gbps_per_mm = 20.0;
};

// How a die's shoreline is partitioned. Fractions must sum to <= 1; the
// remainder is reserved (power delivery, test, debug).
struct ShorelineBudget {
  double hbm_fraction = 0.60;
  double network_fraction = 0.25;
  double reserved_fraction = 0.15;
};

struct ShorelineBandwidth {
  double mem_bw_bytes_per_s = 0.0;
  double net_bw_bytes_per_s = 0.0;
  double total_perimeter_mm = 0.0;
};

// Achievable memory and network bandwidth for one die of `die_area_mm2`
// given the budget split and technology densities. Network uses CPO.
ShorelineBandwidth AchievableBandwidth(double die_area_mm2, const ShorelineBudget& budget,
                                       const ShorelineTech& tech);

// True if the requested bandwidths fit on the die's shoreline with the given
// technologies (any split). Used to validate customized Lite-GPU configs.
bool BandwidthFeasible(double die_area_mm2, double mem_bw_bytes_per_s,
                       double net_bw_bytes_per_s, const ShorelineTech& tech,
                       double usable_fraction = 0.85);

}  // namespace litegpu
