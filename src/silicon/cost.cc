#include "src/silicon/cost.h"

#include <cmath>

#include "src/util/units.h"

namespace litegpu {

double KnownGoodDieCost(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                        double die_area_mm2) {
  uint64_t gross = DiesPerWaferSquare(wafer, die_area_mm2);
  if (gross == 0) {
    return 0.0;
  }
  double yield = DieYield(model, defects, die_area_mm2);
  double good = static_cast<double>(gross) * yield;
  if (good <= 0.0) {
    return 0.0;
  }
  return wafer.wafer_cost_usd / good;
}

double PackagedGpuCost(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                       const GpuBillOfMaterials& bom) {
  double die_area_each = bom.die_area_mm2 / static_cast<double>(bom.dies_per_package);
  double silicon = static_cast<double>(bom.dies_per_package) *
                   KnownGoodDieCost(wafer, model, defects, die_area_each);
  double memory = bom.hbm_gb * bom.packaging.hbm_usd_per_gb;
  double package = bom.packaging.base_usd;
  if (bom.packaging.advanced) {
    package += bom.packaging.advanced_usd_per_mm2 * bom.die_area_mm2 *
               bom.packaging.interposer_overhead;
  }
  double yield = bom.packaging.assembly_yield > 0.0 ? bom.packaging.assembly_yield : 1.0;
  return (silicon + memory + package) / yield;
}

SplitCostReport CompareSplitCost(const WaferSpec& wafer, YieldModel model,
                                 const DefectSpec& defects, const GpuBillOfMaterials& big,
                                 int split) {
  SplitCostReport report;
  report.big_gpu_usd = PackagedGpuCost(wafer, model, defects, big);
  report.big_die_yield =
      DieYield(model, defects, big.die_area_mm2 / static_cast<double>(big.dies_per_package));
  report.big_dies_per_wafer = DiesPerWaferSquare(
      wafer, big.die_area_mm2 / static_cast<double>(big.dies_per_package));

  GpuBillOfMaterials lite = big;
  lite.die_area_mm2 = big.die_area_mm2 / static_cast<double>(split);
  lite.dies_per_package = 1;
  lite.hbm_gb = big.hbm_gb / static_cast<double>(split);
  // A single small die does not need a CoWoS-class interposer; it also uses a
  // proportionally cheaper substrate and assembles at higher yield.
  lite.packaging.advanced = false;
  lite.packaging.base_usd = big.packaging.base_usd / static_cast<double>(split);
  lite.packaging.assembly_yield =
      std::min(1.0, big.packaging.assembly_yield + 0.01);

  report.lite_gpu_usd = PackagedGpuCost(wafer, model, defects, lite);
  report.lite_total_usd = report.lite_gpu_usd * static_cast<double>(split);
  report.cost_ratio = report.big_gpu_usd > 0.0 ? report.lite_total_usd / report.big_gpu_usd : 0.0;
  report.lite_die_yield = DieYield(model, defects, lite.die_area_mm2);
  report.yield_gain =
      report.big_die_yield > 0.0 ? report.lite_die_yield / report.big_die_yield : 0.0;
  report.lite_dies_per_wafer = DiesPerWaferSquare(wafer, lite.die_area_mm2);
  return report;
}

GpuBillOfMaterials BomFromGpuSpec(const GpuSpec& gpu, double hbm_usd_per_gb) {
  GpuBillOfMaterials bom;
  bom.die_area_mm2 = gpu.die_area_mm2;
  bom.dies_per_package = gpu.dies_per_package;
  bom.hbm_gb = gpu.mem_capacity_bytes / kGB;
  bom.packaging.hbm_usd_per_gb = hbm_usd_per_gb;
  // Single small dies skip advanced packaging (Section 2).
  bom.packaging.advanced =
      gpu.die_area_mm2 / static_cast<double>(gpu.dies_per_package) > 400.0;
  return bom;
}

double PricedGpuUsd(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                    const GpuSpec& gpu, double hbm_usd_per_gb, double price_multiplier) {
  return PackagedGpuCost(wafer, model, defects, BomFromGpuSpec(gpu, hbm_usd_per_gb)) *
         price_multiplier;
}

}  // namespace litegpu
