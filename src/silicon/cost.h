// Manufacturing-cost model: wafer -> known-good-die -> packaged GPU.
//
// Dollar figures are parametric with documented public-estimate defaults; the
// paper's argument is about *ratios* (Lite vs large-die GPU), which are robust
// to the absolute calibration.

#pragma once

#include <cstdint>

#include "src/hw/gpu_spec.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"

namespace litegpu {

// Packaging/assembly cost parameters.
struct PackagingSpec {
  // Base assembly/substrate cost for a simple single-die package.
  double base_usd = 150.0;
  // Advanced-packaging (CoWoS-class interposer) cost per mm^2 of interposer.
  // Only charged when `advanced` is set; the interposer is sized as
  // die area * interposer_overhead.
  double advanced_usd_per_mm2 = 0.30;
  double interposer_overhead = 2.2;
  // Whether the package needs 2.5D/3D advanced packaging (large multi-die
  // GPUs: yes; Lite-GPU single small die: no).
  bool advanced = true;
  // Packaging/assembly yield (a packaged part can fail test even with good
  // dies); advanced packages run lower.
  double assembly_yield = 0.98;
  // HBM stack cost per GB (public estimates are $8-$15/GB for HBM3).
  double hbm_usd_per_gb = 12.0;
};

struct GpuBillOfMaterials {
  double die_area_mm2 = 814.0;  // compute silicon per package
  int dies_per_package = 1;
  double hbm_gb = 80.0;
  PackagingSpec packaging;
};

// Cost of one known-good compute die of the given area.
double KnownGoodDieCost(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                        double die_area_mm2);

// Full manufacturing cost of one packaged GPU: compute dice + HBM + packaging,
// divided by assembly yield.
double PackagedGpuCost(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                       const GpuBillOfMaterials& bom);

// Cost comparison used by Figure 2 / bench_sec2: replacing one `big` GPU with
// `split` Lite-GPUs, each carrying area/split compute silicon and hbm/split
// memory in a cheap (non-advanced) package.
struct SplitCostReport {
  double big_gpu_usd = 0.0;
  double lite_gpu_usd = 0.0;       // one Lite-GPU
  double lite_total_usd = 0.0;     // `split` Lite-GPUs
  double cost_ratio = 0.0;         // lite_total / big
  double big_die_yield = 0.0;
  double lite_die_yield = 0.0;
  double yield_gain = 0.0;         // lite_die_yield / big_die_yield
  uint64_t big_dies_per_wafer = 0;
  uint64_t lite_dies_per_wafer = 0;
};

SplitCostReport CompareSplitCost(const WaferSpec& wafer, YieldModel model,
                                 const DefectSpec& defects, const GpuBillOfMaterials& big,
                                 int split);

// The one BOM convention for pricing a catalog (or derived) part: compute
// area, package count, and HBM capacity come from the spec; advanced
// packaging is charged iff the per-die area exceeds 400 mm^2 (a single
// small die skips the CoWoS-class interposer, Section 2). The cluster
// designer and the fleet-compare study share it, so the two studies cannot
// price the same part differently.
GpuBillOfMaterials BomFromGpuSpec(const GpuSpec& gpu, double hbm_usd_per_gb);

// One packaged, street-priced GPU: PackagedGpuCost on the spec's BOM times
// the manufacturing-cost-to-price multiplier.
double PricedGpuUsd(const WaferSpec& wafer, YieldModel model, const DefectSpec& defects,
                    const GpuSpec& gpu, double hbm_usd_per_gb, double price_multiplier);

}  // namespace litegpu
