#include "src/silicon/shoreline.h"

#include <cmath>

#include "src/util/units.h"

namespace litegpu {

double DiePerimeterMm(double die_area_mm2) {
  if (die_area_mm2 <= 0.0) {
    return 0.0;
  }
  return 4.0 * std::sqrt(die_area_mm2);
}

double SplitPerimeterMm(double area_mm2, int split) {
  if (split <= 0) {
    return 0.0;
  }
  return static_cast<double>(split) *
         DiePerimeterMm(area_mm2 / static_cast<double>(split));
}

double ShorelineGain(int split) {
  if (split <= 0) {
    return 0.0;
  }
  return std::sqrt(static_cast<double>(split));
}

ShorelineBandwidth AchievableBandwidth(double die_area_mm2, const ShorelineBudget& budget,
                                       const ShorelineTech& tech) {
  ShorelineBandwidth out;
  out.total_perimeter_mm = DiePerimeterMm(die_area_mm2);
  out.mem_bw_bytes_per_s =
      out.total_perimeter_mm * budget.hbm_fraction * tech.hbm_gbps_per_mm * kGB;
  out.net_bw_bytes_per_s =
      out.total_perimeter_mm * budget.network_fraction * tech.cpo_gbps_per_mm * kGB;
  return out;
}

bool BandwidthFeasible(double die_area_mm2, double mem_bw_bytes_per_s,
                       double net_bw_bytes_per_s, const ShorelineTech& tech,
                       double usable_fraction) {
  double perimeter = DiePerimeterMm(die_area_mm2);
  if (perimeter <= 0.0) {
    return false;
  }
  double hbm_mm = (mem_bw_bytes_per_s / kGB) / tech.hbm_gbps_per_mm;
  double net_mm = (net_bw_bytes_per_s / kGB) / tech.cpo_gbps_per_mm;
  return hbm_mm + net_mm <= perimeter * usable_fraction;
}

}  // namespace litegpu
