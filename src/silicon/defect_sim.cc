#include "src/silicon/defect_sim.h"

#include <cmath>
#include <unordered_set>

#include "src/util/rng.h"

namespace litegpu {

namespace {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

// Draws the defect map for one wafer (coordinates centered on the wafer).
std::vector<Point> DrawDefects(const DefectSimConfig& config, Rng& rng) {
  double radius = config.wafer.diameter_mm / 2.0;
  double area_cm2 = M_PI * radius * radius / 100.0;
  double mean_defects = config.defect_density_per_cm2 * area_cm2;

  auto uniform_point = [&]() {
    // Rejection-sample a uniform point in the disk.
    for (;;) {
      double x = rng.Uniform(-radius, radius);
      double y = rng.Uniform(-radius, radius);
      if (x * x + y * y <= radius * radius) {
        return Point{x, y};
      }
    }
  };

  std::vector<Point> defects;
  if (config.cluster_mean_size <= 0.0) {
    uint64_t n = rng.Poisson(mean_defects);
    defects.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      defects.push_back(uniform_point());
    }
    return defects;
  }

  // Clustered: Poisson number of clusters, each a Gaussian clump.
  double mean_clusters = mean_defects / config.cluster_mean_size;
  uint64_t clusters = rng.Poisson(mean_clusters);
  for (uint64_t c = 0; c < clusters; ++c) {
    Point center = uniform_point();
    uint64_t size = 1 + rng.Poisson(config.cluster_mean_size - 1.0);
    for (uint64_t i = 0; i < size; ++i) {
      defects.push_back({center.x + rng.Normal(0.0, config.cluster_radius_mm),
                         center.y + rng.Normal(0.0, config.cluster_radius_mm)});
    }
  }
  return defects;
}

// Counts total and defect-free dies on one wafer for the given die size.
void CountDies(const DefectSimConfig& config, const std::vector<Point>& defects,
               double die_side_mm, uint64_t* total, uint64_t* good) {
  double usable_radius = config.wafer.diameter_mm / 2.0 - config.wafer.edge_exclusion_mm;
  double pitch = die_side_mm + config.wafer.scribe_mm;
  auto inside = [&](double x, double y) {
    return x * x + y * y <= usable_radius * usable_radius;
  };

  // Hash of grid cells containing at least one defect.
  std::unordered_set<long long> dirty;
  auto key = [&](long i, long j) {
    // Shift in unsigned space: i can be negative (left half of the wafer)
    // and shifting a negative value is UB before C++20.
    return static_cast<long long>((static_cast<unsigned long long>(i) << 32) ^
                                  (static_cast<unsigned long long>(j) & 0xffffffffULL));
  };
  for (const auto& d : defects) {
    long i = static_cast<long>(std::floor(d.x / pitch));
    long j = static_cast<long>(std::floor(d.y / pitch));
    dirty.insert(key(i, j));
  }

  long max_index = static_cast<long>(std::ceil(usable_radius / pitch)) + 1;
  for (long i = -max_index; i < max_index; ++i) {
    for (long j = -max_index; j < max_index; ++j) {
      double x0 = i * pitch;
      double y0 = j * pitch;
      double x1 = x0 + pitch;
      double y1 = y0 + pitch;
      if (!(inside(x0, y0) && inside(x1, y0) && inside(x0, y1) && inside(x1, y1))) {
        continue;
      }
      ++*total;
      if (dirty.find(key(i, j)) == dirty.end()) {
        ++*good;
      }
    }
  }
}

}  // namespace

DefectSimResult SimulateWaferYield(const DefectSimConfig& config, double die_area_mm2) {
  DefectSimResult result;
  Rng rng(config.seed);
  double side = std::sqrt(die_area_mm2);
  double total_defects = 0.0;
  for (int w = 0; w < config.num_wafers; ++w) {
    auto defects = DrawDefects(config, rng);
    total_defects += static_cast<double>(defects.size());
    uint64_t total = 0;
    uint64_t good = 0;
    CountDies(config, defects, side, &total, &good);
    result.total_dies += total;
    result.good_dies += good;
    result.per_wafer_yield.push_back(
        total > 0 ? static_cast<double>(good) / static_cast<double>(total) : 0.0);
  }
  result.yield = result.total_dies > 0 ? static_cast<double>(result.good_dies) /
                                             static_cast<double>(result.total_dies)
                                       : 0.0;
  result.defects_per_wafer_mean =
      config.num_wafers > 0 ? total_defects / config.num_wafers : 0.0;
  return result;
}

double SimulatedSplitYieldGain(const DefectSimConfig& config, double die_area_mm2,
                               int split) {
  // Same seed => same defect maps for both die sizes (paired comparison).
  DefectSimResult big = SimulateWaferYield(config, die_area_mm2);
  DefectSimResult small =
      SimulateWaferYield(config, die_area_mm2 / static_cast<double>(split));
  return big.yield > 0.0 ? small.yield / big.yield : 0.0;
}

}  // namespace litegpu
