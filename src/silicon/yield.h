// Defect-limited die yield models.
//
// The paper's Section 2 claim — "the yield rate can be increased by 1.8x when
// a H100-like compute die area is reduced by 1/4th, corresponding to almost
// 50% reduction in manufacturing cost [36]" — rests on classic yield theory
// (refs [19] Gupta/Lathrop 1972, [53] Teets 1996). We implement the four
// standard models so the claim can be checked under each.

#pragma once

#include <string>

namespace litegpu {

enum class YieldModel {
  kPoisson,           // Y = exp(-A*D)
  kMurphy,            // Y = ((1 - exp(-A*D)) / (A*D))^2
  kSeeds,             // Y = 1 / (1 + A*D)
  kNegativeBinomial,  // Y = (1 + A*D/alpha)^(-alpha)
};

std::string ToString(YieldModel model);

// Process defect characteristics.
struct DefectSpec {
  // Defect density in defects per cm^2. Public estimates for mature
  // leading-edge logic nodes are ~0.05-0.15 /cm^2; 0.1 reproduces the
  // paper's 1.8x claim under Murphy's model.
  double density_per_cm2 = 0.1;
  // Clustering parameter for the negative-binomial model (typical 2-5).
  double cluster_alpha = 3.0;
};

// Fraction of dies with zero killer defects, in (0, 1].
// `die_area_mm2` is the compute-die area in mm^2.
double DieYield(YieldModel model, const DefectSpec& defects, double die_area_mm2);

// Yield improvement factor when a die of `area_mm2` is split into
// `split` equal smaller dies: DieYield(area/split) / DieYield(area).
double YieldGainFromSplit(YieldModel model, const DefectSpec& defects, double area_mm2,
                          int split);

}  // namespace litegpu
