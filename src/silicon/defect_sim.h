// Monte-Carlo defect-map wafer simulation.
//
// Validates the analytic yield models: scatter point defects over a wafer
// (uniform Poisson field, or clustered — defects arrive in Gaussian clumps,
// which is what Murphy/negative-binomial approximate), dice it into a grid,
// and count defect-free dies. Also produces the Figure-2 style intuition:
// the SAME defect map yields very differently when diced into large vs
// small dies.

#pragma once

#include <cstdint>
#include <vector>

#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"

namespace litegpu {

struct DefectSimConfig {
  WaferSpec wafer;
  double defect_density_per_cm2 = 0.1;
  // 0 = pure Poisson field; > 0 draws defects in clusters of this mean size
  // scattered with this radius (mm) — models the spatial correlation real
  // fabs see.
  double cluster_mean_size = 0.0;
  double cluster_radius_mm = 5.0;
  uint64_t seed = 0xD1E5;
  int num_wafers = 32;
};

struct DefectSimResult {
  uint64_t total_dies = 0;
  uint64_t good_dies = 0;
  double yield = 0.0;
  double defects_per_wafer_mean = 0.0;
  // Per-wafer yields (for variance analysis).
  std::vector<double> per_wafer_yield;
};

// Simulates dicing the wafers into square dies of `die_area_mm2` and counts
// dies containing zero defects.
DefectSimResult SimulateWaferYield(const DefectSimConfig& config, double die_area_mm2);

// Convenience: yield ratio between quarter dies and full dies measured on
// the SAME simulated defect maps (paired comparison; low variance).
double SimulatedSplitYieldGain(const DefectSimConfig& config, double die_area_mm2,
                               int split);

}  // namespace litegpu
