#include "src/silicon/wafer.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

uint64_t DiesPerWafer(const WaferSpec& wafer, double die_width_mm, double die_height_mm) {
  double usable_diameter = wafer.diameter_mm - 2.0 * wafer.edge_exclusion_mm;
  if (usable_diameter <= 0.0 || die_width_mm <= 0.0 || die_height_mm <= 0.0) {
    return 0;
  }
  double w = die_width_mm + wafer.scribe_mm;
  double h = die_height_mm + wafer.scribe_mm;
  double area = w * h;
  double d = usable_diameter;
  if (w > d || h > d) {
    return 0;
  }
  double gross = (M_PI * d * d / 4.0) / area - (M_PI * d) / std::sqrt(2.0 * area);
  if (gross < 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(gross);
}

uint64_t DiesPerWaferSquare(const WaferSpec& wafer, double die_area_mm2) {
  double side = std::sqrt(std::max(die_area_mm2, 0.0));
  return DiesPerWafer(wafer, side, side);
}

uint64_t DiesPerWaferExactGrid(const WaferSpec& wafer, double die_width_mm,
                               double die_height_mm) {
  double usable_radius = (wafer.diameter_mm - 2.0 * wafer.edge_exclusion_mm) / 2.0;
  if (usable_radius <= 0.0 || die_width_mm <= 0.0 || die_height_mm <= 0.0) {
    return 0;
  }
  double w = die_width_mm + wafer.scribe_mm;
  double h = die_height_mm + wafer.scribe_mm;
  // Grid anchored at wafer center; a die counts if all four corners are
  // within the usable radius.
  auto inside = [&](double x, double y) {
    return x * x + y * y <= usable_radius * usable_radius;
  };
  uint64_t count = 0;
  long max_i = static_cast<long>(std::ceil(usable_radius / w)) + 1;
  long max_j = static_cast<long>(std::ceil(usable_radius / h)) + 1;
  for (long i = -max_i; i < max_i; ++i) {
    for (long j = -max_j; j < max_j; ++j) {
      double x0 = static_cast<double>(i) * w;
      double y0 = static_cast<double>(j) * h;
      double x1 = x0 + w;
      double y1 = y0 + h;
      if (inside(x0, y0) && inside(x1, y0) && inside(x0, y1) && inside(x1, y1)) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace litegpu
