#include "src/silicon/yield.h"

#include <cmath>

namespace litegpu {

std::string ToString(YieldModel model) {
  switch (model) {
    case YieldModel::kPoisson:
      return "poisson";
    case YieldModel::kMurphy:
      return "murphy";
    case YieldModel::kSeeds:
      return "seeds";
    case YieldModel::kNegativeBinomial:
      return "negative-binomial";
  }
  return "unknown";
}

double DieYield(YieldModel model, const DefectSpec& defects, double die_area_mm2) {
  double area_cm2 = die_area_mm2 / 100.0;
  double ad = area_cm2 * defects.density_per_cm2;
  if (ad <= 0.0) {
    return 1.0;
  }
  switch (model) {
    case YieldModel::kPoisson:
      return std::exp(-ad);
    case YieldModel::kMurphy: {
      double term = (1.0 - std::exp(-ad)) / ad;
      return term * term;
    }
    case YieldModel::kSeeds:
      return 1.0 / (1.0 + ad);
    case YieldModel::kNegativeBinomial:
      return std::pow(1.0 + ad / defects.cluster_alpha, -defects.cluster_alpha);
  }
  return 0.0;
}

double YieldGainFromSplit(YieldModel model, const DefectSpec& defects, double area_mm2,
                          int split) {
  if (split <= 0 || area_mm2 <= 0.0) {
    return 1.0;
  }
  double y_full = DieYield(model, defects, area_mm2);
  double y_small = DieYield(model, defects, area_mm2 / static_cast<double>(split));
  return y_small / y_full;
}

}  // namespace litegpu
