// Wafer geometry: how many die candidates fit on a wafer.
//
// Used by the Section-2 / Figure-2 economics: quartering an H100-class die
// yields MORE than 4x the dies per wafer because smaller dies waste less area
// at the wafer edge and to the "squares in a circle" packing loss.

#pragma once

#include <cstdint>

namespace litegpu {

// A manufacturing wafer. Defaults model a standard 300 mm leading-edge wafer.
struct WaferSpec {
  double diameter_mm = 300.0;
  // Ring at the wafer edge unusable for full dies.
  double edge_exclusion_mm = 3.0;
  // Scribe-line (saw street) width added around each die.
  double scribe_mm = 0.2;
  // Dollar cost of one processed wafer (leading-edge logic node, public
  // estimates for N4/N5 are in the $14k-$18k range).
  double wafer_cost_usd = 16000.0;
};

// Number of whole die candidates (good + bad) on the wafer, for a rectangular
// die of the given dimensions, using the standard analytical approximation
//   DPW = pi*(d/2)^2 / A  -  pi*d / sqrt(2*A)
// adjusted for edge exclusion and scribe overhead. Returns 0 when the die
// does not fit at all.
uint64_t DiesPerWafer(const WaferSpec& wafer, double die_width_mm, double die_height_mm);

// Convenience overload for a square die of the given area (mm^2).
uint64_t DiesPerWaferSquare(const WaferSpec& wafer, double die_area_mm2);

// Exact count by exhaustively placing rectangles on a grid; slower but used
// in tests to bound the analytic approximation.
uint64_t DiesPerWaferExactGrid(const WaferSpec& wafer, double die_width_mm,
                               double die_height_mm);

}  // namespace litegpu
