#include "src/collectives/hierarchical.h"

#include <algorithm>

namespace litegpu {

double HierarchicalAllReduceTime(double payload_bytes, int n,
                                 const HierarchicalFabric& fabric, CollectiveAlgo algo) {
  if (n <= 1 || payload_bytes <= 0.0) {
    return 0.0;
  }
  int g = fabric.group_size;
  if (g <= 1 || n % g != 0 || n / g < 1) {
    return AllReduceTime(payload_bytes, n, fabric.global_link, algo);
  }
  int groups = n / g;
  if (groups == 1) {
    // Single group: the whole collective runs on local links.
    return AllReduceTime(payload_bytes, g, fabric.local_link, algo);
  }
  double phase1 = ReduceScatterTime(payload_bytes, g, fabric.local_link, algo);
  double phase2 =
      AllReduceTime(payload_bytes / g, groups, fabric.global_link, algo);
  double phase3 = AllGatherTime(payload_bytes, g, fabric.local_link, algo);
  return phase1 + phase2 + phase3;
}

double BestAllReduceTime(double payload_bytes, int n, const HierarchicalFabric& fabric,
                         CollectiveAlgo algo) {
  double flat = AllReduceTime(payload_bytes, n, fabric.global_link, algo);
  double hier = HierarchicalAllReduceTime(payload_bytes, n, fabric, algo);
  return std::min(flat, hier);
}

}  // namespace litegpu
