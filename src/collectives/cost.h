// Alpha-beta cost models for the collectives used by tensor-parallel
// inference. The paper's Lite clusters move previously in-silicon traffic
// onto the optical network; these models price that move.
//
// Conventions: `payload_bytes` is the full logical vector size S (the tensor
// being reduced/gathered); `n` is the number of participating GPUs; the link
// model is the per-GPU injection bandwidth (unidirectional) plus a per-step
// latency alpha that covers serialization, switching, and flight time.

#pragma once

#include <string>

namespace litegpu {

struct LinkModel {
  double bandwidth_bytes_per_s = 0.0;
  // Per-algorithm-step latency: NVLink-class ~0.7us; optical circuit +
  // transceiver ~1-2us. Default models the paper's co-packaged-optics
  // fabric.
  double latency_s = 1.5e-6;
};

enum class CollectiveAlgo {
  kRing,
  kRecursiveHalvingDoubling,
  // Pick the cheaper of the two for the given payload/n (NCCL-style).
  kAuto,
};

std::string ToString(CollectiveAlgo algo);

// Time for an all-reduce of a payload of S bytes across n GPUs.
//   ring:              2(n-1) steps, 2(n-1)/n * S bytes on the wire per GPU
//   halving-doubling:  2*ceil(log2 n) steps (+1 round if n not a power of
//                      two), same 2(n-1)/n * S bandwidth term
double AllReduceTime(double payload_bytes, int n, const LinkModel& link,
                     CollectiveAlgo algo = CollectiveAlgo::kAuto);

// All-gather where each GPU contributes S/n and ends with all S bytes.
double AllGatherTime(double payload_bytes, int n, const LinkModel& link,
                     CollectiveAlgo algo = CollectiveAlgo::kAuto);

// Reduce-scatter of S bytes (each GPU ends with S/n reduced bytes).
double ReduceScatterTime(double payload_bytes, int n, const LinkModel& link,
                         CollectiveAlgo algo = CollectiveAlgo::kAuto);

// Binomial-tree broadcast of S bytes from one root.
double BroadcastTime(double payload_bytes, int n, const LinkModel& link);

// All-to-all personalized exchange: each GPU holds S bytes destined in S/n
// slices to every peer.
double AllToAllTime(double payload_bytes, int n, const LinkModel& link);

// Effective bus bandwidth achieved by an all-reduce (the NCCL "busbw"
// metric): algorithm-payload bytes / time, normalized so a perfect ring at
// alpha=0 reports the link bandwidth.
double AllReduceBusBandwidth(double payload_bytes, int n, const LinkModel& link,
                             CollectiveAlgo algo = CollectiveAlgo::kAuto);

}  // namespace litegpu
