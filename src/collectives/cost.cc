#include "src/collectives/cost.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

namespace {

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int CeilLog2(int n) {
  int log = 0;
  int value = 1;
  while (value < n) {
    value <<= 1;
    ++log;
  }
  return log;
}

double RingAllReduce(double payload, int n, const LinkModel& link) {
  if (n <= 1) {
    return 0.0;
  }
  double steps = 2.0 * (n - 1);
  double wire_bytes = 2.0 * (n - 1) / n * payload;
  return steps * link.latency_s + wire_bytes / link.bandwidth_bytes_per_s;
}

double HalvingDoublingAllReduce(double payload, int n, const LinkModel& link) {
  if (n <= 1) {
    return 0.0;
  }
  double steps = 2.0 * CeilLog2(n);
  if (!IsPowerOfTwo(n)) {
    steps += 2.0;  // pre/post rounds folding the non-power-of-two remainder
  }
  double wire_bytes = 2.0 * (n - 1) / n * payload;
  return steps * link.latency_s + wire_bytes / link.bandwidth_bytes_per_s;
}

}  // namespace

std::string ToString(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kRecursiveHalvingDoubling:
      return "halving-doubling";
    case CollectiveAlgo::kAuto:
      return "auto";
  }
  return "unknown";
}

double AllReduceTime(double payload_bytes, int n, const LinkModel& link, CollectiveAlgo algo) {
  if (n <= 1 || payload_bytes <= 0.0) {
    return 0.0;
  }
  switch (algo) {
    case CollectiveAlgo::kRing:
      return RingAllReduce(payload_bytes, n, link);
    case CollectiveAlgo::kRecursiveHalvingDoubling:
      return HalvingDoublingAllReduce(payload_bytes, n, link);
    case CollectiveAlgo::kAuto:
      return std::min(RingAllReduce(payload_bytes, n, link),
                      HalvingDoublingAllReduce(payload_bytes, n, link));
  }
  return 0.0;
}

double AllGatherTime(double payload_bytes, int n, const LinkModel& link, CollectiveAlgo algo) {
  if (n <= 1 || payload_bytes <= 0.0) {
    return 0.0;
  }
  double wire_bytes = (n - 1.0) / n * payload_bytes;
  double ring = (n - 1.0) * link.latency_s + wire_bytes / link.bandwidth_bytes_per_s;
  double steps = CeilLog2(n) + (IsPowerOfTwo(n) ? 0 : 1);
  double tree = steps * link.latency_s + wire_bytes / link.bandwidth_bytes_per_s;
  switch (algo) {
    case CollectiveAlgo::kRing:
      return ring;
    case CollectiveAlgo::kRecursiveHalvingDoubling:
      return tree;
    case CollectiveAlgo::kAuto:
      return std::min(ring, tree);
  }
  return 0.0;
}

double ReduceScatterTime(double payload_bytes, int n, const LinkModel& link,
                         CollectiveAlgo algo) {
  // Symmetric to all-gather under alpha-beta.
  return AllGatherTime(payload_bytes, n, link, algo);
}

double BroadcastTime(double payload_bytes, int n, const LinkModel& link) {
  if (n <= 1 || payload_bytes <= 0.0) {
    return 0.0;
  }
  double steps = CeilLog2(n);
  return steps * (link.latency_s + payload_bytes / link.bandwidth_bytes_per_s);
}

double AllToAllTime(double payload_bytes, int n, const LinkModel& link) {
  if (n <= 1 || payload_bytes <= 0.0) {
    return 0.0;
  }
  double wire_bytes = (n - 1.0) / n * payload_bytes;
  return (n - 1.0) * link.latency_s + wire_bytes / link.bandwidth_bytes_per_s;
}

double AllReduceBusBandwidth(double payload_bytes, int n, const LinkModel& link,
                             CollectiveAlgo algo) {
  double time = AllReduceTime(payload_bytes, n, link, algo);
  if (time <= 0.0 || n <= 1) {
    return 0.0;
  }
  return 2.0 * (n - 1.0) / n * payload_bytes / time;
}

}  // namespace litegpu
