// Hierarchical all-reduce for grouped fabrics.
//
// The paper's direct-connect option wires the Lite-GPUs that replace one
// large GPU into a full mesh and keeps the pre-existing network between
// groups. The natural collective is then hierarchical: reduce-scatter
// inside the group (fast local links), all-reduce across group leaders
// (slow global links), all-gather inside the group.

#pragma once

#include "src/collectives/cost.h"

namespace litegpu {

struct HierarchicalFabric {
  int group_size = 4;       // GPUs per direct-connect group
  LinkModel local_link;     // intra-group links (short-reach, cheap)
  LinkModel global_link;    // inter-group links (the scale-out network)
};

// All-reduce of `payload_bytes` across `n` GPUs organized in groups of
// `fabric.group_size` (n must be a multiple of the group size; n not a
// multiple falls back to a flat all-reduce on the global link).
//   phase 1: reduce-scatter within each group  (payload, group links)
//   phase 2: all-reduce of payload/group_size across the n/group leaders
//   phase 3: all-gather within each group
double HierarchicalAllReduceTime(double payload_bytes, int n,
                                 const HierarchicalFabric& fabric,
                                 CollectiveAlgo algo = CollectiveAlgo::kAuto);

// Best-of(flat on global links, hierarchical): what a tuned communication
// library would pick on this fabric.
double BestAllReduceTime(double payload_bytes, int n, const HierarchicalFabric& fabric,
                         CollectiveAlgo algo = CollectiveAlgo::kAuto);

}  // namespace litegpu
