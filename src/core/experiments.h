// Figure-3 experiment drivers: run the configuration search for every
// (model, GPU type) pair and produce the normalized tokens/s/SM series the
// paper plots. Shared by the bench binaries, the integration tests, and the
// examples.

#pragma once

#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/hw/gpu_spec.h"
#include "src/llm/model.h"

namespace litegpu {

struct ExperimentOptions {
  SearchOptions search;
  // Worker threads for the (model, GPU) fan-out; per-pair searches run
  // serially inside it regardless of search.exec (see the nesting note in
  // src/util/exec_policy.h).
  ExecPolicy exec;
};

struct Fig3Entry {
  std::string model_name;
  std::string gpu_name;
  bool found = false;
  int tp_degree = 0;
  int batch = 0;
  double latency_s = 0.0;            // TTFT (3a) or worst-case TBT (3b)
  double tokens_per_s = 0.0;
  double tokens_per_s_per_sm = 0.0;
  double normalized_vs_h100 = 0.0;   // the plotted bar height
  Bound dominant_bound = Bound::kCompute;
  double memory_needed_bytes = 0.0;  // per GPU at the chosen point
};

// Prefill study (Figure 3a). `gpus` defaults in the bench to
// {H100, Lite, Lite+NetBW, Lite+NetBW+FLOPS}; entries normalize per model
// against the gpu named `baseline_name`.
std::vector<Fig3Entry> RunPrefillStudy(const std::vector<TransformerSpec>& models,
                                       const std::vector<GpuSpec>& gpus,
                                       const ExperimentOptions& options,
                                       const std::string& baseline_name = "H100");

// Decode study (Figure 3b): {H100, Lite, Lite+MemBW, Lite+MemBW+NetBW}.
std::vector<Fig3Entry> RunDecodeStudy(const std::vector<TransformerSpec>& models,
                                      const std::vector<GpuSpec>& gpus,
                                      const ExperimentOptions& options,
                                      const std::string& baseline_name = "H100");

// Convenience overloads: wrap SearchOptions, inheriting its ExecPolicy for
// the pair fan-out.
std::vector<Fig3Entry> RunPrefillStudy(const std::vector<TransformerSpec>& models,
                                       const std::vector<GpuSpec>& gpus,
                                       const SearchOptions& options,
                                       const std::string& baseline_name = "H100");
std::vector<Fig3Entry> RunDecodeStudy(const std::vector<TransformerSpec>& models,
                                      const std::vector<GpuSpec>& gpus,
                                      const SearchOptions& options,
                                      const std::string& baseline_name = "H100");

// Renders a study as the paper-style table (one row per model x GPU).
std::string Fig3ToText(const std::vector<Fig3Entry>& entries, const std::string& title);

// Structured form of a study: {"title": ..., "entries": [...]} with one
// object per (model, GPU) pair.
Json Fig3ToJson(const std::vector<Fig3Entry>& entries, const std::string& title);

}  // namespace litegpu
