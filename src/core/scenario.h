// Scenario: the declarative front door to every study the library runs.
//
// The paper's whole-cluster argument spans five engine surfaces (search,
// Figure-3 studies, cluster designer, Monte-Carlo reliability, yield/derive
// helpers). A Scenario describes WHAT to run — study kind, model(s), GPU
// list, workload/SLOs, KV policy, silicon/power/reliability knobs — as a
// value that can be built fluently in code or loaded from a JSON file, the
// way simulation platforms describe platforms+workloads as data. The Runner
// (src/core/runner.h) executes it and returns a uniform RunReport.
//
// Scenario files are plain JSON (comments and trailing commas tolerated);
// every field is optional and defaults to the paper's setup. See
// examples/scenarios/*.json for one file per study kind.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/hw/gpu_spec.h"
#include "src/serve/faults.h"
#include "src/serve/workload.h"
#include "src/hw/lite_derive.h"
#include "src/llm/model.h"
#include "src/reliability/mc_sim.h"
#include "src/silicon/yield.h"
#include "src/util/exec_policy.h"
#include "src/util/json.h"

namespace litegpu {

// The studies a Scenario can request, mirroring the CLI subcommands.
enum class StudyKind {
  kSearch,  // best config per (model, GPU) pair, prefill + decode
  kFig3a,   // paper Figure 3a prefill study
  kFig3b,   // paper Figure 3b decode study
  kDesign,  // Table-1 cluster comparison (perf/cost/power/reliability)
  kMcSim,   // Monte-Carlo availability simulation
  kYield,   // Section-2 die-yield / known-good-die economics
  kDerive,  // custom Lite-GPU derivation + shoreline feasibility
  kServe,   // end-to-end discrete-event serving vs the analytic capacity
  kServeSweep,  // one serve deployment swept over a load grid as one study
  kFleetCompare,  // knee-vs-knee $/Mtoken + joules/token across a fleet catalog
};

std::string ToString(StudyKind kind);
std::optional<StudyKind> ParseStudyKind(const std::string& name);

// Knobs only the design study reads (subset of DesignInputs the scenario
// layer exposes; the rest keep their documented defaults).
struct DesignKnobs {
  double hbm_usd_per_gb = 12.0;
  double gpu_price_multiplier = 8.0;
  double amortization_years = 4.0;
  YieldModel yield_model = YieldModel::kMurphy;
};

// Knobs only the mcsim study reads (the sweep shape of McSimConfig; failure
// parameters keep their defaults).
struct McSimKnobs {
  int gpus_per_instance = 8;
  int num_instances = 4;
  int num_spares = 0;
  double sim_years = 20.0;
  uint64_t seed = 0x5EEDED;
  int num_trials = 1;
};

// Knobs only the yield study reads.
struct YieldKnobs {
  double defect_density_per_cm2 = 0.1;
  double cluster_alpha = 3.0;
  double die_area_mm2 = 814.0;
  int split = 4;
};

// Knobs only the derive study reads (mirrors LiteDeriveOptions plus the
// base part's catalog name).
struct DeriveKnobs {
  std::string base_gpu = "H100";
  int split = 4;
  double mem_bw_multiplier = 1.0;
  double net_bw_multiplier = 1.0;
  double overclock = 1.0;
};

// One request class of a multi-tenant serving mix (chat, batch
// summarization, long-context RAG, ... sharing the same phase-split
// pools). Each class has its own share of the offered arrival rate, its
// own prompt/output length distributions (its SplitMix64 workload
// substream is independent of every other class's), and its own SLOs.
// ttft_slo_s / tbt_slo_s of 0 inherit the scenario workload's SLOs.
struct RequestClass {
  std::string name;         // required, unique within the mix
  double weight = 1.0;      // relative share of arrivals (> 0; normalized)
  int prompt_tokens = 1500;  // median prompt length
  double prompt_sigma = 0.0;
  int output_tokens = 256;   // median output length
  double output_sigma = 0.0;
  double ttft_slo_s = 0.0;  // 0 = inherit workload.ttft_slo_s
  double tbt_slo_s = 0.0;   // 0 = inherit workload.tbt_slo_s
};

// The normalized view of a class mix used for planning: weights scaled to
// shares summing to 1, and the class-weighted mean prompt/output lengths
// that size the phase-split pools and convert load fractions to request
// rates. Empty mixes report zero shares and the caller's fallbacks.
struct ClassMixSummary {
  std::vector<double> shares;        // per class, sums to 1
  double mean_prompt_tokens = 0.0;
  double mean_output_tokens = 0.0;
};
ClassMixSummary SummarizeClassMix(const std::vector<RequestClass>& classes);

// Returns "" when `classes` is a valid mix (possibly empty = single-class
// mode), else the first problem: empty/duplicate names, non-positive or
// non-finite weights, non-positive lengths, negative sigmas or SLOs.
// `where` names the owning JSON block in the message ("serve"/"sweep").
std::string ValidateRequestClasses(const std::vector<RequestClass>& classes,
                                   const std::string& where);

// Parses a standalone class mix: a JSON array of class objects, or
// {"classes": [...]}. Same strict key/type checking as scenario files.
// Backs `litegpu serve/sweep --classes <file>`; structural validity only —
// run ValidateRequestClasses (or Scenario::Validate) on the result.
std::optional<std::vector<RequestClass>> ParseRequestClasses(const Json& json,
                                                             std::string* error = nullptr);

// The inverse: the class mix as the JSON array ParseRequestClasses (and
// the scenario reader) accept. The one RequestClass serializer — scenario
// files and the `config.classes` echo in serve/sweep reports both use it,
// so a report's config can always be fed back in as a scenario.
Json RequestClassesToJson(const std::vector<RequestClass>& classes);

// Autoscaler policy for the serve studies. kNone keeps the fixed pools;
// kReactive scales on observed queue backlog and pool utilization;
// kPredictive forecasts per-class demand from recent arrivals and sizes
// the pools ahead of the curve (falling back to the backlog trigger).
enum class AutoscalerPolicy {
  kNone,
  kReactive,
  kPredictive,
};

std::string ToString(AutoscalerPolicy policy);
std::optional<AutoscalerPolicy> ParseAutoscalerPolicy(const std::string& name);

// Mid-horizon pool autoscaling knobs. Decisions happen every `interval_s`
// of simulated time; a granted scale-up only adds capacity after `delay_s`
// (instance provisioning is not free), while scale-downs drain: the
// instance stops accepting work and retires when its in-flight requests
// finish. Per-pool instance counts stay inside [min, max].
struct AutoscalerKnobs {
  AutoscalerPolicy policy = AutoscalerPolicy::kNone;
  double interval_s = 5.0;   // decision cadence (simulated seconds)
  double delay_s = 10.0;     // provisioning delay before an instance is live
  int min_prefill_instances = 1;
  int max_prefill_instances = 64;
  int min_decode_instances = 1;
  int max_decode_instances = 64;
  // Reactive triggers: scale up when the queued work in front of a pool
  // exceeds this many seconds at the pool's analytic throughput, or when
  // the pool's utilization over the last interval crosses the up
  // threshold; scale down when utilization falls below the down threshold
  // with an empty queue.
  double scale_up_backlog_s = 2.0;
  double scale_up_utilization = 0.9;
  double scale_down_utilization = 0.35;
  // Predictive: per-class arrival demand over the last `forecast_window_s`
  // is linearly extrapolated half a window ahead; pools are sized to the
  // forecast times `headroom`.
  double forecast_window_s = 30.0;
  double headroom = 1.1;

  bool enabled() const { return policy != AutoscalerPolicy::kNone; }
};

// Returns "" when the autoscaler block is usable, else the first problem
// (non-positive interval, negative delay, inverted bounds or thresholds).
// `where` labels the block in messages ("serve.autoscaler" from scenario
// validation, "autoscaler file" from the CLI flag).
std::string ValidateAutoscalerKnobs(const AutoscalerKnobs& knobs, const std::string& where);

// Returns "" when the arrival process is generatable, else the first
// problem (empty or negative diurnal curve, non-positive phase means,
// unsorted trace times, ...). `where` as above ("serve.arrival"/"arrival
// file").
std::string ValidateArrivalProcess(const ArrivalProcess& process, const std::string& where);

// Arrival-kind names as they appear in scenario JSON ("poisson",
// "diurnal", "onoff", "trace").
std::string ToString(ArrivalKind kind);
std::optional<ArrivalKind> ParseArrivalKind(const std::string& name);

// Parses a standalone arrival block — the tagged-union object itself, or
// {"arrival": {...}} — with the same strict key/type checks as scenario
// files (unknown `kind` values get a did-you-mean hint). Backs `litegpu
// serve/sweep --arrival <file>`; run ValidateArrivalProcess on the result.
std::optional<ArrivalProcess> ParseArrivalProcess(const Json& json,
                                                  std::string* error = nullptr);
// The inverse; scenario files and report config echoes share it.
Json ArrivalProcessToJson(const ArrivalProcess& process);

// Standalone autoscaler block: the object itself or {"autoscaler": {...}}.
// Backs `litegpu serve/sweep --autoscaler <file>`.
std::optional<AutoscalerKnobs> ParseAutoscalerKnobs(const Json& json,
                                                    std::string* error = nullptr);
Json AutoscalerKnobsToJson(const AutoscalerKnobs& knobs);

// Fault-injection knobs for the serve studies (src/serve/faults.h). `afr`
// is the annualized failure rate of one reference-area (H100-class)
// package; 0 — the default — disables injection entirely, keeping reports
// byte-identical to the fault-free engine. Per-GPU rates area-scale from
// it (smaller dies fail less, down to the device floor), and each
// instance's hazard is its GPU count times the per-GPU rate, so H100-sized
// and Lite-sized pools churn differently from the same knobs.
struct FaultKnobs {
  double afr = 0.0;                       // reference AFR; 0 = no faults
  double floor_afr = 0.005;               // per-device floor (board, firmware)
  double mttr_hours = 24.0;               // mean time to repair/replace
  double spare_activation_minutes = 5.0;  // hot-spare activation delay
  int hot_spares = 0;                     // hot-spare GPUs per pool
  FaultRetryPolicy retry_policy = FaultRetryPolicy::kRetry;
  int retry_budget = 3;  // retry_with_budget: kills tolerated before dropping
  // Attainment percentile the sweep's SLO verdicts (and so the knee) are
  // judged at under churn; 0.99 matches the fault-free p99 criterion.
  double target_attainment = 0.99;
  // --- correlated failure domains (rack / switch / rollout) ---
  // Domain size in reference-area (H100-class) GPU equivalents: each
  // instance occupies tp x (die area / reference area) of a domain, so the
  // same silicon budget packs more small-die instances per domain. 0 (the
  // default) disables domains.
  double domain_gpus = 0.0;
  double domain_afr = 0.0;        // annualized outage rate of one domain
  double domain_mttr_hours = 0.0; // domain repair time; 0 = inherit mttr_hours
  // --- transient degraded states (ECC storms, thermal throttling) ---
  double degrade_afr = 0.0;        // annualized degrade-event rate per GPU
  double degrade_multiplier = 1.0; // step-time multiplier while degraded
  double degrade_minutes = 0.0;    // mean throttled-window length
  // --- overload protection / load shedding ---
  int shed_queue_depth = 0;          // shed past this prefill-queue depth
  double shed_ttft_deadline_s = 0.0; // shed when estimated TTFT exceeds this

  bool enabled() const {
    return afr > 0.0 || domain_afr > 0.0 || degrade_afr > 0.0;
  }
};

// Returns "" when the faults block is usable, else the first problem
// (negative rates/delays, bad attainment percentile, ...). `where` labels
// the block in messages ("serve.faults" / "faults file").
std::string ValidateFaultKnobs(const FaultKnobs& knobs, const std::string& where);

// Standalone faults block: the object itself or {"faults": {...}}. Backs
// `litegpu serve/sweep --faults <file>`.
std::optional<FaultKnobs> ParseFaultKnobs(const Json& json, std::string* error = nullptr);
Json FaultKnobsToJson(const FaultKnobs& knobs);

// True when every field still has its default value — the serialization
// gate: scenario round-trips and report config echoes emit no `faults` key
// for a default block, keeping fault-free output byte-identical.
bool FaultKnobsAreDefault(const FaultKnobs& knobs);

// The per-point simulation shape shared by the serve and serve-sweep
// studies — declared once so knobs like the arrival process and the
// autoscaler exist in exactly one place, read by one strict-JSON
// reader/validator for both blocks.
struct ServeCommonKnobs {
  // Admission horizon: arrivals are generated (and admitted) up to this
  // simulated time; admitted-but-unfinished requests drain and are counted
  // as in_flight_at_horizon.
  double horizon_s = 60.0;
  int prefill_instances = 0;  // 0 = auto-size from the analytic capacities
  int decode_instances = 1;
  double prompt_sigma = 0.0;  // lognormal sigma; 0 = constant lengths
  double output_sigma = 0.0;
  uint64_t seed = 0xC0FFEE;
  // Arrival process shape. The default (stationary Poisson) serializes to
  // nothing, so pre-existing scenarios round-trip byte-identically.
  ArrivalProcess arrival;
  // Mid-horizon autoscaling. Disabled by default (fixed pools); like
  // `arrival`, the disabled block serializes to nothing.
  AutoscalerKnobs autoscaler;
  // Fault injection. Disabled by default (afr 0, instances never die);
  // like `autoscaler`, the default block serializes to nothing.
  FaultKnobs faults;
  // Multi-tenant request mix. Empty (the default) keeps the single-class
  // workload shaped by the scenario's shared workload block — reports are
  // bit-identical to the pre-class engine. Non-empty replaces the length
  // knobs above with per-class distributions and adds per-class metrics,
  // goodput, and SLO attainment to the report.
  std::vector<RequestClass> classes;
  // Split a long single-point horizon into this many independent
  // sub-horizon replications (each horizon_s / shards long, with its own
  // deterministic RNG substream via ShardSubstreamSeed) and merge their
  // metrics deterministically — the same result at any thread count. 0 or
  // 1 (the default, which serializes to nothing) runs the single serial
  // horizon with byte-identical reports. Sharded points stream TTFT into
  // fixed-bin histograms, so TTFT percentiles are within one bin width of
  // exact. Only statistically homogeneous runs may shard: validation
  // rejects shards >= 2 combined with the autoscaler, faults, diurnal
  // curves, or trace replays, whose behavior depends on absolute time.
  int shards = 0;
};

// Knobs only the serve study reads. The request mix takes its median
// prompt/output lengths from the scenario's shared workload block (or from
// per-class distributions when `classes` is non-empty); these knobs shape
// arrivals, pool sizes, and the admission horizon. The study runs one
// model on one GPU type (like mcsim); prefill/decode instance
// configurations come from the PerfModel-backed search.
struct ServeKnobs : ServeCommonKnobs {
  // Offered load as a fraction of the decode pool's analytic capacity;
  // ignored when arrival_rate_per_s is set explicitly. A trace arrival
  // process overrides both: the trace fixes the offered rate.
  double load = 0.8;
  double arrival_rate_per_s = 0.0;  // requests/s; 0 = derive from `load`
};

// Knobs only the serve-sweep study reads: one serve deployment driven over
// a grid of offered load points as a single study (the
// bench_validation_serve load table as a scenario). The grid is either an
// explicit list — `loads` as fractions of the decode pool's analytic
// capacity, or `rates` as absolute requests/s — or the inclusive
// lo:hi:step range. The search and the step-time table are shared across
// points; each point gets its own deterministic RNG stream derived from
// `seed`, so the sweep is bit-identical at any thread count. The knee
// generalizes to the highest load where EVERY class meets its SLOs; with
// an autoscaler the sweep also reports the cheapest SLO-meeting point by
// goodput per GPU-hour.
struct ServeSweepKnobs : ServeCommonKnobs {
  std::vector<double> loads;  // explicit load fractions; overrides lo:hi:step
  std::vector<double> rates;  // explicit requests/s; overrides `loads` too
  double load_lo = 0.1;
  double load_hi = 1.0;
  double load_step = 0.1;

  // True when the grid is absolute arrival rates rather than load
  // fractions.
  bool IsRateGrid() const { return !rates.empty(); }
  // The expanded grid: rates, else loads, else lo..hi inclusive by step.
  std::vector<double> GridPoints() const;
};

// Expands lo..hi inclusive by step (empty when step <= 0, hi < lo, any
// bound is non-finite, or the range would exceed 1e6 points). The one
// grid-range expansion — ServeSweepKnobs and the CLI's lo:hi:step specs
// share it so they can't drift.
std::vector<double> ExpandGridRange(double lo, double hi, double step);

// One fleet candidate: a catalog base part, optionally split into Lite-style
// small dies (split > 1 runs DeriveLite with the multipliers below, exactly
// like the derive study), plus its pool shape. `name` labels the candidate
// in the report and seeds its RNG stream — reordering the catalog never
// changes any candidate's simulated points.
struct FleetCandidate {
  std::string name;          // required, unique within the catalog
  std::string gpu = "H100";  // catalog base part
  int split = 1;             // 1 = the part as-is; >1 = DeriveLite split
  double mem_bw_multiplier = 1.0;
  double net_bw_multiplier = 1.0;
  double overclock = 1.0;
  int prefill_instances = 0;  // 0 = auto-size from the analytic capacities
  int decode_instances = 1;
};

// Knobs only the fleet-compare study reads: a catalog of candidates, the
// shared load grid each candidate's serve sweep runs over, and the
// economics that turn each knee into $/Mtoken-at-SLO — silicon cost
// (src/silicon/cost) amortized over `depreciation_months`, plus cluster
// power (src/power/cluster_energy) priced at `electricity_usd_per_kwh`
// (PUE rides in the cooling model). Fleet sweeps are stationary
// single-class Poisson on purpose: the study compares hardware, not
// traffic shapes.
struct FleetKnobs {
  std::vector<FleetCandidate> candidates;
  std::vector<double> loads;  // explicit load fractions; overrides lo:hi:step
  double load_lo = 0.1;
  double load_hi = 1.0;
  double load_step = 0.1;
  double horizon_s = 60.0;
  double prompt_sigma = 0.0;  // lognormal sigma; 0 = constant lengths
  double output_sigma = 0.0;
  uint64_t seed = 0xC0FFEE;
  // Economics. hbm_usd_per_gb / gpu_price_multiplier mirror DesignKnobs;
  // gpu_utilization is the power-model activity factor, not the serve
  // pools' occupancy.
  double hbm_usd_per_gb = 12.0;
  double gpu_price_multiplier = 8.0;
  double depreciation_months = 48.0;
  double electricity_usd_per_kwh = 0.08;
  double gpu_utilization = 0.7;

  // The expanded grid: loads, else lo..hi inclusive by step.
  std::vector<double> GridPoints() const;
};

// The one FleetKnobs serializer — scenario files and the fleet-compare
// report's config echo both use it, so a report's config can always be fed
// back in as a scenario.
Json FleetKnobsToJson(const FleetKnobs& knobs);

struct Scenario {
  // Optional label echoed into the RunReport (handy for batches).
  std::string name;
  StudyKind study = StudyKind::kSearch;

  // Model/GPU catalog names. Empty lists mean the study's canonical set:
  // the three case-study models; fig3a/fig3b use the paper's four-GPU
  // lineups, design uses the full Table 1, search/mcsim use {H100}.
  std::vector<std::string> models;
  std::vector<std::string> gpus;
  // Fig3 normalization baseline (must be in the resolved GPU list).
  std::string baseline_gpu = "H100";

  // Shared workload/engine knobs (search, fig3*, design).
  WorkloadParams workload;
  KvShardPolicy kv_policy = KvShardPolicy::kReplicate;
  int max_batch = 65536;

  // Study-specific knobs.
  DesignKnobs design;
  McSimKnobs mcsim;
  YieldKnobs yield;
  DeriveKnobs derive;
  ServeKnobs serve;
  ServeSweepKnobs sweep;
  FleetKnobs fleet;

  ExecPolicy exec;

  // Returns "" when the scenario is runnable, else a description of the
  // first problem (unknown model/GPU name, non-positive SLO, ...).
  std::string Validate() const;

  // The model/GPU lists with study defaults applied (still names; the
  // Runner resolves them against the catalog).
  std::vector<std::string> ResolvedModels() const;
  std::vector<std::string> ResolvedGpus() const;

  // The SearchOptions this scenario implies for the perf studies.
  SearchOptions MakeSearchOptions() const;
};

// Scenarios compare equal iff they serialize identically.
bool operator==(const Scenario& a, const Scenario& b);
inline bool operator!=(const Scenario& a, const Scenario& b) { return !(a == b); }

// JSON round trip. ScenarioFromJson is tolerant of missing fields (they
// default) but rejects unknown top-level keys, bad enum spellings, and
// mistyped values, so typos in scenario files fail loudly.
Json ScenarioToJson(const Scenario& scenario);
std::optional<Scenario> ScenarioFromJson(const Json& json, std::string* error = nullptr);

// Parses scenario text: a single scenario object, a top-level array of
// them, or {"scenarios": [...]}.
std::optional<std::vector<Scenario>> ParseScenarios(const std::string& text,
                                                    std::string* error = nullptr);
std::optional<std::vector<Scenario>> LoadScenarioFile(const std::string& path,
                                                      std::string* error = nullptr);

// Fluent builder. Setters return *this for chaining; Build() validates and
// returns nullopt (with `error` describing why) for unrunnable scenarios.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(StudyKind study) { scenario_.study = study; }

  ScenarioBuilder& Name(const std::string& name);
  ScenarioBuilder& Model(const std::string& model);  // appends
  ScenarioBuilder& Gpu(const std::string& gpu);      // appends
  ScenarioBuilder& Baseline(const std::string& gpu);
  ScenarioBuilder& PromptTokens(int n);
  ScenarioBuilder& OutputTokens(int n);
  ScenarioBuilder& TtftSlo(double seconds);
  ScenarioBuilder& TbtSlo(double seconds);
  ScenarioBuilder& EnforceMemoryCapacity(bool on);
  ScenarioBuilder& KvPolicy(KvShardPolicy policy);
  ScenarioBuilder& MaxBatch(int n);
  ScenarioBuilder& Threads(int n);
  ScenarioBuilder& Design(const DesignKnobs& knobs);
  ScenarioBuilder& McSim(const McSimKnobs& knobs);
  ScenarioBuilder& Yield(const YieldKnobs& knobs);
  ScenarioBuilder& Derive(const DeriveKnobs& knobs);
  ScenarioBuilder& Serve(const ServeKnobs& knobs);
  ScenarioBuilder& ServeSweep(const ServeSweepKnobs& knobs);
  ScenarioBuilder& Fleet(const FleetKnobs& knobs);

  // The scenario built so far, unvalidated.
  const Scenario& Peek() const { return scenario_; }
  // Validates; nullopt + error message when Scenario::Validate fails.
  std::optional<Scenario> Build(std::string* error = nullptr) const;

 private:
  Scenario scenario_;
};

}  // namespace litegpu
