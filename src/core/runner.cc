#include "src/core/runner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "src/hw/catalog.h"
#include "src/perf/model.h"
#include "src/perf/step_table.h"
#include "src/reliability/failure_model.h"
#include "src/power/cluster_energy.h"
#include "src/sched/pools.h"
#include "src/serve/knee.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"
#include "src/silicon/cost.h"
#include "src/silicon/wafer.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace litegpu {

namespace {

RunReport ErrorReport(const Scenario& scenario, std::string message) {
  RunReport report;
  report.scenario_name = scenario.name;
  report.study = scenario.study;
  report.ok = false;
  report.error = std::move(message);
  return report;
}

SearchStudyReport RunSearchStudy(const Scenario& s) {
  SearchStudyReport out;
  SearchOptions options = s.MakeSearchOptions();
  for (const std::string& model_name : s.ResolvedModels()) {
    for (const std::string& gpu_name : s.ResolvedGpus()) {
      // Names were validated before dispatch.
      TransformerSpec model = *FindModel(model_name);
      GpuSpec gpu = *FindGpu(gpu_name);
      SearchStudyReport::Pair pair;
      pair.model = model_name;
      pair.gpu = gpu_name;
      pair.prefill = SearchPrefill(model, gpu, options);
      pair.decode = SearchDecode(model, gpu, options);
      out.pairs.push_back(std::move(pair));
    }
  }
  return out;
}

Fig3StudyReport RunFig3Study(const Scenario& s, bool prefill) {
  Fig3StudyReport out;
  out.title = prefill ? "Figure 3a: prefill" : "Figure 3b: decode";
  std::vector<TransformerSpec> models;
  for (const std::string& name : s.ResolvedModels()) {
    models.push_back(*FindModel(name));
  }
  std::vector<GpuSpec> gpus;
  for (const std::string& name : s.ResolvedGpus()) {
    gpus.push_back(*FindGpu(name));
  }
  ExperimentOptions options;
  options.search = s.MakeSearchOptions();
  options.exec = s.exec;
  out.entries = prefill ? RunPrefillStudy(models, gpus, options, s.baseline_gpu)
                        : RunDecodeStudy(models, gpus, options, s.baseline_gpu);
  return out;
}

DesignStudyReport RunDesignStudy(const Scenario& s) {
  DesignStudyReport out;
  std::vector<GpuSpec> gpus;
  for (const std::string& name : s.ResolvedGpus()) {
    gpus.push_back(*FindGpu(name));
  }
  for (const std::string& model_name : s.ResolvedModels()) {
    DesignInputs inputs;
    inputs.model = *FindModel(model_name);
    inputs.search = s.MakeSearchOptions();
    inputs.hbm_usd_per_gb = s.design.hbm_usd_per_gb;
    inputs.gpu_price_multiplier = s.design.gpu_price_multiplier;
    inputs.amortization_years = s.design.amortization_years;
    inputs.yield_model = s.design.yield_model;
    inputs.exec = s.exec;
    DesignStudyReport::PerModel per_model;
    per_model.model = model_name;
    per_model.clusters = CompareClusters(gpus, inputs);
    out.per_model.push_back(std::move(per_model));
  }
  return out;
}

McSimStudyReport RunMcSimStudy(const Scenario& s) {
  McSimStudyReport out;
  out.gpu = s.ResolvedGpus().front();
  out.knobs = s.mcsim;
  McSimConfig config;
  config.gpus_per_instance = s.mcsim.gpus_per_instance;
  config.num_instances = s.mcsim.num_instances;
  config.num_spares = s.mcsim.num_spares;
  config.sim_years = s.mcsim.sim_years;
  config.seed = s.mcsim.seed;
  config.num_trials = s.mcsim.num_trials;
  config.exec = s.exec;
  out.result = SimulateAvailability(*FindGpu(out.gpu), config);
  return out;
}

YieldStudyReport RunYieldStudy(const Scenario& s) {
  YieldStudyReport out;
  out.knobs = s.yield;
  WaferSpec wafer;
  DefectSpec defects;
  defects.density_per_cm2 = s.yield.defect_density_per_cm2;
  defects.cluster_alpha = s.yield.cluster_alpha;
  double area = s.yield.die_area_mm2;
  int split = s.yield.split;
  for (auto model : {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                     YieldModel::kNegativeBinomial}) {
    YieldStudyReport::Row row;
    row.model = model;
    row.yield_full = DieYield(model, defects, area);
    row.yield_split = DieYield(model, defects, area / split);
    row.gain = YieldGainFromSplit(model, defects, area, split);
    double big = KnownGoodDieCost(wafer, model, defects, area);
    double small = KnownGoodDieCost(wafer, model, defects, area / split);
    row.kgd_cost_ratio = big > 0.0 ? split * small / big : 0.0;
    out.rows.push_back(row);
  }
  return out;
}

// The searched serving deployment both serve studies simulate: best phase
// configurations, their analytic per-instance capacities, and the owning
// step-time table the simulator's fast path reads. Built once per study —
// a sweep shares one platform (and one immutable, lock-free table) across
// every load point and worker.
struct ServePlatform {
  bool ok = false;
  std::string error;
  int prefill_tp = 0;
  int prefill_batch = 0;
  double prefill_capacity_tok_s = 0.0;
  int decode_tp = 0;
  int decode_batch = 0;
  double decode_capacity_tok_s = 0.0;
  InstanceCapacity capacity;
  StepTimeTable table;
  // The resolved GPU spec, kept so fault injection can area-scale its AFR.
  GpuSpec gpu;
};

// Spec-accepting overload: fleet candidates derive parts that are not in
// the catalog, so the platform builder takes the resolved GpuSpec directly;
// the name-based wrapper below keeps the serve/sweep call sites unchanged.
ServePlatform BuildServePlatform(const TransformerSpec& model, const GpuSpec& gpu,
                                 const SearchOptions& options) {
  ServePlatform platform;
  platform.gpu = gpu;
  PrefillSearchResult prefill = SearchPrefill(model, gpu, options);
  DecodeSearchResult decode = SearchDecode(model, gpu, options);
  if (!prefill.found || !decode.found) {
    platform.error = "no feasible " + std::string(!prefill.found ? "prefill" : "decode") +
                     " configuration for " + model.name + " on " + gpu.name +
                     " under the scenario's SLOs";
    return platform;
  }
  platform.prefill_tp = prefill.best.tp_degree;
  platform.prefill_batch = prefill.best.batch;
  platform.prefill_capacity_tok_s = prefill.best.result.tokens_per_s;
  platform.decode_tp = decode.best.tp_degree;
  platform.decode_batch = decode.best.batch;
  platform.decode_capacity_tok_s = decode.best.result.tokens_per_s;

  TpPlan prefill_plan = MakeTpPlan(model, platform.prefill_tp, options.kv_policy).value();
  TpPlan decode_plan = MakeTpPlan(model, platform.decode_tp, options.kv_policy).value();
  PerfModel prefill_model(model, gpu, prefill_plan, options.workload, options.engine);
  PerfModel decode_model(model, gpu, decode_plan, options.workload, options.engine);
  platform.capacity = CapacityFromPerfModels(prefill_model, platform.prefill_batch,
                                             decode_model, platform.decode_batch);
  // The table copies the step times out, so the PerfModels can die here.
  platform.table = StepTimeTable::Build(prefill_model, decode_model,
                                        platform.prefill_batch, platform.decode_batch);
  platform.ok = true;
  return platform;
}

ServePlatform BuildServePlatform(const std::string& model_name, const std::string& gpu_name,
                                 const SearchOptions& options) {
  return BuildServePlatform(*FindModel(model_name), *FindGpu(gpu_name), options);
}

// The class-weighted mean prompt/output lengths a serve study plans
// capacity with: the scenario workload's lengths in single-class mode, the
// mix's weighted means otherwise.
struct MeanWorkload {
  double prompt_tokens = 0.0;
  double output_tokens = 0.0;
};

MeanWorkload MeanFromMix(const WorkloadParams& workload,
                         const std::vector<RequestClass>& classes,
                         const ClassMixSummary& mix) {
  MeanWorkload mean;
  if (classes.empty()) {
    mean.prompt_tokens = workload.prompt_tokens;
    mean.output_tokens = workload.output_tokens;
  } else {
    mean.prompt_tokens = mix.mean_prompt_tokens;
    mean.output_tokens = mix.mean_output_tokens;
  }
  return mean;
}

MeanWorkload MeanWorkloadFor(const Scenario& s, const std::vector<RequestClass>& classes) {
  return MeanFromMix(s.workload, classes, SummarizeClassMix(classes));
}

// Builds the simulator's resolved autoscaler config from the scenario's
// knobs plus the platform's analytic per-instance throughputs.
ServeAutoscalerConfig MakeAutoscalerConfig(const AutoscalerKnobs& knobs,
                                           const InstanceCapacity& capacity) {
  ServeAutoscalerConfig config;
  config.enabled = knobs.enabled();
  config.predictive = knobs.policy == AutoscalerPolicy::kPredictive;
  config.interval_s = knobs.interval_s;
  config.delay_s = knobs.delay_s;
  config.min_prefill_instances = knobs.min_prefill_instances;
  config.max_prefill_instances = knobs.max_prefill_instances;
  config.min_decode_instances = knobs.min_decode_instances;
  config.max_decode_instances = knobs.max_decode_instances;
  config.scale_up_backlog_s = knobs.scale_up_backlog_s;
  config.scale_up_utilization = knobs.scale_up_utilization;
  config.scale_down_utilization = knobs.scale_down_utilization;
  config.forecast_window_s = knobs.forecast_window_s;
  config.headroom = knobs.headroom;
  config.prefill_tokens_per_s = capacity.prefill_tokens_per_s;
  config.decode_tokens_per_s = capacity.decode_tokens_per_s;
  return config;
}

// The reliability-model parameters a faults block implies; shared by the
// injected rates and the closed-form availability prediction so the
// cross-check compares like against like.
FailureParams FaultFailureParams(const FaultKnobs& knobs) {
  FailureParams params;
  params.reference_afr = knobs.afr;
  params.per_device_floor_afr = knobs.floor_afr;
  params.mttr_hours = knobs.mttr_hours;
  params.spare_activation_minutes = knobs.spare_activation_minutes;
  return params;
}

// Builds the simulator's resolved fault config from the scenario's knobs
// plus the platform's GPU spec and per-instance GPU counts: the per-pool
// hazard is the area-scaled per-GPU rate times the instances' GPU count, so
// H100-sized and Lite-sized pools churn differently from the same knobs.
// The fault RNG substream derives from the point's workload seed with a
// distinct mix, so enabling faults never perturbs arrivals or lengths.
ServeFaultConfig MakeFaultConfig(const FaultKnobs& knobs, const GpuSpec& gpu,
                                 const InstanceCapacity& capacity, uint64_t seed) {
  ServeFaultConfig config;
  config.enabled = knobs.enabled();
  if (!config.enabled) {
    return config;
  }
  FailureParams params = FaultFailureParams(knobs);
  config.prefill_failure_rate_per_s =
      InstanceFailureRatePerSecond(gpu, capacity.prefill_gpus, params);
  config.decode_failure_rate_per_s =
      InstanceFailureRatePerSecond(gpu, capacity.decode_gpus, params);
  config.repair_s = knobs.mttr_hours * 3600.0;
  config.spare_activation_s = knobs.spare_activation_minutes * 60.0;
  config.prefill_spares = knobs.hot_spares;
  config.decode_spares = knobs.hot_spares;
  config.retry_policy = knobs.retry_policy;
  config.retry_budget = knobs.retry_budget;
  constexpr double kSecondsPerYear = 365.0 * 24.0 * 3600.0;
  if (knobs.domain_afr > 0.0 && knobs.domain_gpus > 0.0) {
    // Silicon-normalized domain shape: domain_gpus is a budget in
    // reference-area (H100-class) dies, and an instance occupies
    // tp x (die area / reference area) of it — so the same domain packs
    // more small-die instances, which is exactly the correlated-blast-radius
    // asymmetry the study measures.
    double ref_per_gpu =
        params.reference_die_area_mm2 > 0.0
            ? gpu.die_area_mm2 / params.reference_die_area_mm2
            : 1.0;
    auto per_domain = [&](int gpus_per_instance) {
      double per_instance = std::max(1, gpus_per_instance) * ref_per_gpu;
      return std::max(1, static_cast<int>(std::floor(knobs.domain_gpus / per_instance)));
    };
    config.domains.prefill_instances_per_domain = per_domain(capacity.prefill_gpus);
    config.domains.decode_instances_per_domain = per_domain(capacity.decode_gpus);
    config.domains.failure_rate_per_s = knobs.domain_afr / kSecondsPerYear;
    config.domains.repair_s =
        (knobs.domain_mttr_hours > 0.0 ? knobs.domain_mttr_hours : knobs.mttr_hours) *
        3600.0;
  }
  if (knobs.degrade_afr > 0.0) {
    // Degrade hazard scales with instance GPU count like failures do (any
    // member device can start throttling the whole instance).
    config.degraded.prefill_rate_per_s =
        knobs.degrade_afr * std::max(1, capacity.prefill_gpus) / kSecondsPerYear;
    config.degraded.decode_rate_per_s =
        knobs.degrade_afr * std::max(1, capacity.decode_gpus) / kSecondsPerYear;
    config.degraded.multiplier = knobs.degrade_multiplier;
    config.degraded.mean_duration_s = knobs.degrade_minutes * 60.0;
  }
  config.seed = FaultSubstreamSeed(seed);
  return config;
}

// Global request-level TTFT SLO attainment: the fraction of completed
// requests whose TTFT met their (per-class effective) SLO. The transient
// counterpart of the p99 pass/fail — an autoscaled day can pass the
// steady-state percentiles while a burst misses 10% of requests.
// TTFT accessors that dispatch on how the run recorded first-token
// latencies: the exact SampleSet normally, the streamed fixed-bin
// histogram when the point ran sharded (O(bins) memory; quantiles within
// one bin width). Keeping the dispatch here means every consumer — the
// report percentiles, the SLO verdicts, the attainment fractions — reads
// one code path regardless of execution mode.
double TtftQuantile(const ServeMetrics& m, double q) {
  return m.ttft_streamed ? m.ttft_hist.Quantile(q) : m.ttft_s.Quantile(q);
}

double ClassTtftQuantile(const ServeMetrics& m, const ServeClassMetrics& cm,
                         double q) {
  return m.ttft_streamed ? cm.ttft_hist.Quantile(q) : cm.ttft_s.Quantile(q);
}

size_t ClassTtftCount(const ServeMetrics& m, const ServeClassMetrics& cm) {
  return m.ttft_streamed ? cm.ttft_hist.count() : cm.ttft_s.count();
}

// Number of recorded TTFTs at or below `slo` — exact in sample mode,
// bin-interpolated in streamed mode.
double ClassTtftWithin(const ServeMetrics& m, const ServeClassMetrics& cm,
                       double slo) {
  if (m.ttft_streamed) {
    return cm.ttft_hist.CountAtOrBelow(slo);
  }
  size_t within = 0;
  for (double ttft : cm.ttft_s.samples()) {
    if (ttft <= slo) {
      ++within;
    }
  }
  return static_cast<double>(within);
}

double GlobalTtftAttainment(const ServeMetrics& metrics, const Scenario& s,
                            const std::vector<RequestClass>& classes) {
  double total = 0.0;
  double within = 0.0;
  if (classes.empty()) {
    if (metrics.ttft_streamed) {
      total = static_cast<double>(metrics.ttft_hist.count());
      within = metrics.ttft_hist.CountAtOrBelow(s.workload.ttft_slo_s);
    } else {
      total = static_cast<double>(metrics.ttft_s.count());
      size_t n = 0;
      for (double ttft : metrics.ttft_s.samples()) {
        if (ttft <= s.workload.ttft_slo_s) {
          ++n;
        }
      }
      within = static_cast<double>(n);
    }
  } else {
    for (size_t c = 0; c < classes.size(); ++c) {
      const ServeClassMetrics& cm = metrics.per_class[c];
      double slo =
          classes[c].ttft_slo_s > 0.0 ? classes[c].ttft_slo_s : s.workload.ttft_slo_s;
      total += static_cast<double>(ClassTtftCount(metrics, cm));
      within += ClassTtftWithin(metrics, cm, slo);
    }
  }
  return total > 0.0 ? within / total : 0.0;
}

// Simulates one offered-load point on the platform's step-time table: plan
// the deployment (from the class-weighted mean workload), generate the
// point's workload from its own seed — one substream per request class,
// shaped by the scenario's arrival process — run the fast-path simulation
// (with the autoscaler when the knobs enable one), and summarize globally
// and per class. The single shared body for the serve study and every
// point of a sweep — a load simulated standalone and inside a sweep cannot
// drift apart. `load` is left to the caller; `seed` is the point's own
// stream (a sweep derives one per point), not common.seed.
ServeSweepReport::Point SimulateServePoint(const ServePlatform& platform,
                                           const Scenario& s,
                                           const ServeCommonKnobs& common,
                                           double arrival_rate_per_s, uint64_t seed) {
  const std::vector<RequestClass>& classes = common.classes;
  ServeSweepReport::Point p;
  p.arrival_rate_per_s = arrival_rate_per_s;
  p.seed = seed;
  ClassMixSummary mix = SummarizeClassMix(classes);
  MeanWorkload mean = MeanFromMix(s.workload, classes, mix);
  p.analytic_tokens_per_s = arrival_rate_per_s * mean.output_tokens;

  ServeDeployment deployment = PlanServeDeployment(
      arrival_rate_per_s, mean.prompt_tokens, mean.output_tokens, platform.capacity,
      common.prefill_instances, common.decode_instances);
  if (common.autoscaler.enabled()) {
    // The planned deployment is only the initial pool; clamp it into the
    // policy's bounds and recompute the GPU count accordingly.
    deployment.prefill_instances =
        std::min(std::max(deployment.prefill_instances,
                          common.autoscaler.min_prefill_instances),
                 common.autoscaler.max_prefill_instances);
    deployment.decode_instances =
        std::min(std::max(deployment.decode_instances,
                          common.autoscaler.min_decode_instances),
                 common.autoscaler.max_decode_instances);
    deployment.total_gpus =
        deployment.prefill_instances * platform.capacity.prefill_gpus +
        deployment.decode_instances * platform.capacity.decode_gpus;
  }
  if (common.faults.enabled()) {
    // Hot spares are real devices the deployment pays for.
    deployment = WithHotSpares(deployment, common.faults.hot_spares,
                               common.faults.hot_spares);
  }
  p.prefill_instances = deployment.prefill_instances;
  p.decode_instances = deployment.decode_instances;
  p.total_gpus = deployment.total_gpus;

  // One generator for both execution modes: the serial path draws the full
  // horizon from the point's seed; a shard draws its sub-horizon from its
  // own SplitMix64 substream.
  auto generate = [&](double duration_s, uint64_t wl_seed) -> std::vector<Request> {
    if (classes.empty()) {
      WorkloadSpec spec;
      spec.arrival_rate_per_s = arrival_rate_per_s;
      spec.duration_s = duration_s;
      spec.median_prompt_tokens = s.workload.prompt_tokens;
      spec.prompt_sigma = common.prompt_sigma;
      spec.median_output_tokens = s.workload.output_tokens;
      spec.output_sigma = common.output_sigma;
      spec.seed = wl_seed;
      spec.arrival = common.arrival;
      return GenerateWorkload(spec);
    }
    MultiClassWorkloadSpec spec;
    spec.duration_s = duration_s;
    spec.seed = wl_seed;
    spec.arrival = common.arrival;
    for (size_t c = 0; c < classes.size(); ++c) {
      ClassWorkload cls;
      cls.arrival_rate_per_s = arrival_rate_per_s * mix.shares[c];
      cls.median_prompt_tokens = classes[c].prompt_tokens;
      cls.prompt_sigma = classes[c].prompt_sigma;
      cls.median_output_tokens = classes[c].output_tokens;
      cls.output_sigma = classes[c].output_sigma;
      spec.classes.push_back(cls);
    }
    return GenerateMultiClassWorkload(spec);
  };

  ServeClusterConfig cluster;
  cluster.prefill_instances = deployment.prefill_instances;
  cluster.decode_instances = deployment.decode_instances;
  cluster.horizon_s = common.horizon_s;
  cluster.num_classes = static_cast<int>(classes.size());
  cluster.autoscaler = MakeAutoscalerConfig(common.autoscaler, platform.capacity);
  cluster.faults =
      MakeFaultConfig(common.faults, platform.gpu, platform.capacity, seed);
  // Admission control works with or without fault injection (overload can
  // be purely traffic-driven), so it lives on the cluster, not the fault
  // config.
  cluster.shedding.max_queue_depth = common.faults.shed_queue_depth;
  cluster.shedding.ttft_deadline_s = common.faults.shed_ttft_deadline_s;

  ServeMetrics metrics;
  std::vector<Request> requests;
  if (common.shards >= 2) {
    // Sharded execution: split the horizon into `shards` independent
    // sub-horizon replications of the same stationary process, run them
    // across the thread pool, and merge in shard-index order. Scenario
    // validation already rejected everything time-inhomogeneous
    // (autoscaler, faults, diurnal/trace arrivals). TTFTs stream into
    // fixed-bin histograms so a shard's memory is O(bins), not
    // O(requests); every shard uses the same full-horizon histogram range
    // so the merged bins line up.
    const int n = common.shards;
    cluster.horizon_s = common.horizon_s / static_cast<double>(n);
    cluster.stream_ttft = true;
    std::vector<ServeMetrics> shard_metrics = ParallelMap<ServeMetrics>(
        s.exec.threads, n, [&](int i) {
          std::vector<Request> shard_requests = generate(
              cluster.horizon_s, ShardSubstreamSeed(seed, static_cast<size_t>(i)));
          return RunServeSimulation(shard_requests, cluster, platform.table);
        });
    metrics = MergeServeShardMetrics(cluster, shard_metrics);
  } else {
    requests = generate(common.horizon_s, seed);
    metrics = RunServeSimulation(requests, cluster, platform.table);
  }

  const bool shedding_on = cluster.shedding.enabled();
  if (common.faults.enabled() || shedding_on) {
    ServeFaultReport& f = p.faults;
    f.enabled = common.faults.enabled();
    f.domains_enabled = cluster.faults.domains.enabled();
    f.degraded_enabled = cluster.faults.degraded.enabled();
    f.shedding_enabled = shedding_on;
    f.retry_policy = ToString(common.faults.retry_policy);
    f.retried_requests = metrics.retried_requests;
    f.dropped_requests = metrics.dropped_requests;
    f.lost_tokens = metrics.lost_tokens;
    f.goodput_tokens_per_s = metrics.decode_tokens_per_s;
    if (shedding_on) {
      f.shed_requests = metrics.shed_requests;
      f.shed_events = std::move(metrics.shed_events);
    }
    // Stability verdict: the largest outage's backlog drained inside the
    // horizon (vacuously stable when nothing was lost). A metastable retry
    // storm keeps the queues non-empty to the end of the run and fails it.
    f.time_to_drain_s = metrics.time_to_drain_s;
    f.stable = metrics.largest_outage_time_s < 0.0 ||
               (metrics.time_to_drain_s >= 0.0 &&
                metrics.largest_outage_time_s + metrics.time_to_drain_s <=
                    common.horizon_s);
  }
  if (common.faults.enabled()) {
    // Goodput under churn needs a fault-free yardstick: the same requests
    // on the same (initial) pools with injection off (shedding kept, so
    // the comparison isolates the faults).
    ServeClusterConfig baseline_cluster = cluster;
    baseline_cluster.faults = ServeFaultConfig{};
    ServeMetrics baseline = RunServeSimulation(requests, baseline_cluster, platform.table);

    ServeFaultReport& f = p.faults;
    f.baseline_goodput_tokens_per_s = baseline.decode_tokens_per_s;
    f.goodput_ratio = f.baseline_goodput_tokens_per_s > 0.0
                          ? f.goodput_tokens_per_s / f.baseline_goodput_tokens_per_s
                          : 0.0;
    // One pass over the time-ordered fault log fills the per-pool counters
    // and the correlated-domain aggregates. A domain outage appears as
    // consecutive kFailure entries sharing (time, pool, domain); the group
    // is ONE event for the worst-single-event and per-domain columns.
    std::map<int, ServeFaultDomainReport> prefill_domains, decode_domains;
    double group_lost = 0.0;
    double group_time = -1.0;
    int group_domain = -1;
    ScalePool group_pool = ScalePool::kPrefill;
    auto flush_group = [&]() {
      if (group_domain < 0) {
        return;
      }
      ServeFaultPoolReport& pool =
          group_pool == ScalePool::kPrefill ? f.prefill : f.decode;
      pool.domain_failures += 1;
      if (group_lost > pool.worst_event_lost_tokens) {
        pool.worst_event_lost_tokens = group_lost;
      }
      auto& dmap =
          group_pool == ScalePool::kPrefill ? prefill_domains : decode_domains;
      ServeFaultDomainReport& dr = dmap[group_domain];
      dr.domain = group_domain;
      dr.failures += 1;
      dr.lost_tokens += group_lost;
      group_domain = -1;
      group_lost = 0.0;
    };
    for (const FaultEvent& e : metrics.fault_events) {
      ServeFaultPoolReport& pool =
          e.pool == ScalePool::kPrefill ? f.prefill : f.decode;
      if (e.kind == FaultEventKind::kFailure) {
        pool.failures += 1;
        pool.lost_tokens += e.lost_tokens;
        if (e.domain >= 0) {
          if (e.domain != group_domain || e.time_s != group_time ||
              e.pool != group_pool) {
            flush_group();
            group_domain = e.domain;
            group_time = e.time_s;
            group_pool = e.pool;
          }
          group_lost += e.lost_tokens;
          auto& dmap =
              e.pool == ScalePool::kPrefill ? prefill_domains : decode_domains;
          ServeFaultDomainReport& dr = dmap[e.domain];
          dr.domain = e.domain;
          dr.instance_failures += 1;
        } else {
          flush_group();
          if (e.lost_tokens > pool.worst_event_lost_tokens) {
            pool.worst_event_lost_tokens = e.lost_tokens;
          }
        }
      } else {
        if (e.kind == FaultEventKind::kSpareActivation) {
          pool.spare_activations += 1;
        } else if (e.kind == FaultEventKind::kDegradeStart) {
          pool.degrade_events += 1;
        }
        flush_group();
      }
    }
    flush_group();
    f.prefill.downtime_s = metrics.prefill_fault_downtime_s;
    f.decode.downtime_s = metrics.decode_fault_downtime_s;
    // Blast radius: mean tokens of in-flight work one failure destroys,
    // as a fraction of the output tokens the run actually served.
    for (ServeFaultPoolReport* pool : {&f.prefill, &f.decode}) {
      if (pool->failures > 0 && metrics.output_tokens > 0.0) {
        pool->blast_radius_fraction =
            pool->lost_tokens / pool->failures / metrics.output_tokens;
      }
      if (metrics.output_tokens > 0.0) {
        pool->worst_event_fraction =
            pool->worst_event_lost_tokens / metrics.output_tokens;
      }
    }
    if (f.domains_enabled && metrics.output_tokens > 0.0) {
      for (auto* dmap : {&prefill_domains, &decode_domains}) {
        ServeFaultPoolReport& pool =
            dmap == &prefill_domains ? f.prefill : f.decode;
        for (auto& [id, dr] : *dmap) {
          dr.blast_radius_fraction = dr.lost_tokens / metrics.output_tokens;
          pool.domains.push_back(dr);
        }
      }
    }
    f.prefill.availability_measured =
        metrics.prefill_instance_seconds > 0.0
            ? 1.0 - f.prefill.downtime_s / metrics.prefill_instance_seconds
            : 1.0;
    f.decode.availability_measured =
        metrics.decode_instance_seconds > 0.0
            ? 1.0 - f.decode.downtime_s / metrics.decode_instance_seconds
            : 1.0;
    FailureParams params = FaultFailureParams(common.faults);
    f.prefill.availability_predicted = InstanceAvailabilityWithSpares(
        platform.gpu, platform.capacity.prefill_gpus, p.prefill_instances,
        common.faults.hot_spares, params);
    f.decode.availability_predicted = InstanceAvailabilityWithSpares(
        platform.gpu, platform.capacity.decode_gpus, p.decode_instances,
        common.faults.hot_spares, params);
    if (f.domains_enabled) {
      // Correlated availability: the independent-churn closed form times
      // the steady-state up fraction of a domain member,
      // 1 / (1 + rate * repair) per the usual M/M availability argument.
      double ratio = cluster.faults.domains.failure_rate_per_s *
                     cluster.faults.domains.repair_s;
      double domain_up = 1.0 / (1.0 + ratio);
      f.prefill.availability_correlated = f.prefill.availability_predicted * domain_up;
      f.decode.availability_correlated = f.decode.availability_predicted * domain_up;
    }
    if (f.degraded_enabled) {
      f.prefill.degraded_instance_s = metrics.prefill_degraded_instance_s;
      f.decode.degraded_instance_s = metrics.decode_degraded_instance_s;
      f.degraded_goodput_tokens_per_s =
          metrics.decode_degraded_instance_s > 0.0
              ? metrics.degraded_output_tokens / metrics.decode_degraded_instance_s
              : 0.0;
    }
    f.events = std::move(metrics.fault_events);
  }

  if (common.autoscaler.enabled()) {
    p.scale.enabled = true;
    p.scale.policy = ToString(common.autoscaler.policy);
    for (const ScaleEvent& event : metrics.scale_events) {
      (event.delta > 0 ? p.scale.scale_ups : p.scale.scale_downs) += 1;
    }
    p.scale.prefill_instance_hours = metrics.prefill_instance_seconds / 3600.0;
    p.scale.decode_instance_hours = metrics.decode_instance_seconds / 3600.0;
    p.scale.gpu_hours =
        (metrics.prefill_instance_seconds * platform.capacity.prefill_gpus +
         metrics.decode_instance_seconds * platform.capacity.decode_gpus) /
        3600.0;
    p.scale.peak_prefill_instances = metrics.peak_prefill_instances;
    p.scale.peak_decode_instances = metrics.peak_decode_instances;
    p.scale.final_prefill_instances = metrics.final_prefill_instances;
    p.scale.final_decode_instances = metrics.final_decode_instances;
    p.scale.ttft_attainment = GlobalTtftAttainment(metrics, s, classes);
    p.scale.events = metrics.scale_events;
  }

  p.admitted_requests = metrics.admitted_requests;
  p.completed_requests = metrics.completed_requests;
  p.in_flight_at_horizon = metrics.in_flight_at_horizon;
  p.ttft_p50_s = TtftQuantile(metrics, 0.5);
  p.ttft_p95_s = TtftQuantile(metrics, 0.95);
  p.ttft_p99_s = TtftQuantile(metrics, 0.99);
  p.tbt_p50_s = metrics.tbt_s.Median();
  p.tbt_p95_s = metrics.tbt_s.P95();
  p.tbt_p99_s = metrics.tbt_s.P99();
  p.goodput_tokens_per_s = metrics.decode_tokens_per_s;
  p.capacity_agreement = p.analytic_tokens_per_s > 0.0
                             ? p.goodput_tokens_per_s / p.analytic_tokens_per_s
                             : 0.0;
  p.prefill_utilization = metrics.prefill_utilization;
  p.decode_utilization = metrics.decode_utilization;
  p.mean_decode_batch = metrics.mean_decode_batch;
  p.makespan_s = metrics.makespan_s;

  // SLO verdicts are judged at p99 normally; under fault injection, at the
  // faults block's target_attainment quantile — "meets the SLOs under
  // churn" at the declared percentile. The default 0.99 makes the two
  // criteria coincide, so fault-free sweeps are unchanged bit-for-bit.
  const double slo_q =
      common.faults.enabled() ? common.faults.target_attainment : 0.99;
  if (classes.empty()) {
    // A point that served nothing proves nothing: vacuously zero
    // percentiles must not count as meeting the SLOs (or an empty point
    // could be the knee).
    p.slo_ok = p.completed_requests > 0 &&
               TtftQuantile(metrics, slo_q) <= s.workload.ttft_slo_s &&
               metrics.tbt_s.Quantile(slo_q) <= s.workload.tbt_slo_s;
    return p;
  }

  // Per-class summaries; the point meets its SLOs only when EVERY class
  // does (each class must have completed at least one request — a class
  // the horizon never served proves nothing).
  bool all_classes_ok = true;
  for (size_t c = 0; c < classes.size(); ++c) {
    const ServeClassMetrics& cm = metrics.per_class[c];
    ServeClassReport cls;
    cls.name = classes[c].name;
    cls.share = mix.shares[c];
    cls.arrival_rate_per_s = arrival_rate_per_s * mix.shares[c];
    cls.ttft_slo_s =
        classes[c].ttft_slo_s > 0.0 ? classes[c].ttft_slo_s : s.workload.ttft_slo_s;
    cls.tbt_slo_s =
        classes[c].tbt_slo_s > 0.0 ? classes[c].tbt_slo_s : s.workload.tbt_slo_s;
    cls.admitted_requests = cm.admitted_requests;
    cls.completed_requests = cm.completed_requests;
    cls.in_flight_at_horizon = cm.in_flight_at_horizon;
    cls.ttft_p50_s = ClassTtftQuantile(metrics, cm, 0.5);
    cls.ttft_p95_s = ClassTtftQuantile(metrics, cm, 0.95);
    cls.ttft_p99_s = ClassTtftQuantile(metrics, cm, 0.99);
    cls.tbt_p50_s = cm.tbt_s.Median();
    cls.tbt_p95_s = cm.tbt_s.P95();
    cls.tbt_p99_s = cm.tbt_s.P99();
    cls.goodput_tokens_per_s =
        metrics.makespan_s > 0.0 ? cm.output_tokens / metrics.makespan_s : 0.0;
    size_t ttft_count = ClassTtftCount(metrics, cm);
    cls.ttft_attainment = ttft_count > 0
                              ? ClassTtftWithin(metrics, cm, cls.ttft_slo_s) /
                                    static_cast<double>(ttft_count)
                              : 0.0;
    cls.slo_ok = cls.completed_requests > 0 &&
                 ClassTtftQuantile(metrics, cm, slo_q) <= cls.ttft_slo_s &&
                 cm.tbt_s.Quantile(slo_q) <= cls.tbt_slo_s;
    all_classes_ok = all_classes_ok && cls.slo_ok;
    p.classes.push_back(std::move(cls));
  }
  p.slo_ok = p.completed_requests > 0 && all_classes_ok;
  return p;
}

// Runs the end-to-end serving simulation for the scenario's (model, GPU)
// pair: search the best phase configurations, build the step-time table,
// size the pools, generate the Poisson workload, and drive the discrete-
// event simulator on the table-driven fast path. Fails (non-empty *error)
// when no feasible configuration exists under the SLOs.
ServeStudyReport RunServeStudy(const Scenario& s, std::string* error) {
  ServeStudyReport out;
  out.model = s.ResolvedModels().front();
  out.gpu = s.ResolvedGpus().front();
  out.knobs = s.serve;

  ServePlatform platform = BuildServePlatform(out.model, out.gpu, s.MakeSearchOptions());
  if (!platform.ok) {
    *error = platform.error;
    return out;
  }
  out.prefill_tp = platform.prefill_tp;
  out.prefill_batch = platform.prefill_batch;
  out.prefill_capacity_tok_s = platform.prefill_capacity_tok_s;
  out.decode_tp = platform.decode_tp;
  out.decode_batch = platform.decode_batch;
  out.decode_capacity_tok_s = platform.decode_capacity_tok_s;

  out.decode_instances = s.serve.decode_instances;
  // Offered load: explicit rate, or `load` x the decode pool's analytic
  // capacity converted to requests/s via the (class-weighted) mean output
  // length. A trace replay's effective rate comes from the trace itself —
  // arrivals over the horizon — so planning and reporting see the demand
  // the replay actually offers.
  if (s.serve.arrival_rate_per_s > 0.0) {
    out.arrival_rate_per_s = s.serve.arrival_rate_per_s;
  } else if (s.serve.arrival.kind == ArrivalKind::kTrace) {
    out.arrival_rate_per_s = MeanTraceRatePerS(s.serve.arrival, s.serve.horizon_s);
  } else {
    out.arrival_rate_per_s = s.serve.load * out.decode_capacity_tok_s *
                             out.decode_instances /
                             MeanWorkloadFor(s, s.serve.classes).output_tokens;
  }

  ServeSweepReport::Point point =
      SimulateServePoint(platform, s, s.serve, out.arrival_rate_per_s, s.serve.seed);
  out.analytic_tokens_per_s = point.analytic_tokens_per_s;
  out.prefill_instances = point.prefill_instances;
  out.total_gpus = point.total_gpus;
  out.admitted_requests = point.admitted_requests;
  out.completed_requests = point.completed_requests;
  out.in_flight_at_horizon = point.in_flight_at_horizon;
  out.ttft_p50_s = point.ttft_p50_s;
  out.ttft_p95_s = point.ttft_p95_s;
  out.ttft_p99_s = point.ttft_p99_s;
  out.tbt_p50_s = point.tbt_p50_s;
  out.tbt_p95_s = point.tbt_p95_s;
  out.tbt_p99_s = point.tbt_p99_s;
  out.goodput_tokens_per_s = point.goodput_tokens_per_s;
  out.capacity_agreement = point.capacity_agreement;
  out.prefill_utilization = point.prefill_utilization;
  out.decode_utilization = point.decode_utilization;
  out.mean_decode_batch = point.mean_decode_batch;
  out.makespan_s = point.makespan_s;
  out.scale = std::move(point.scale);
  out.faults = std::move(point.faults);
  out.classes = std::move(point.classes);
  return out;
}

// Runs the serve-sweep study: one BuildServePlatform, then every grid point
// as an independent simulation fanned across the thread pool. Per-point
// workload seeds come from one SplitMix64 stream expanded serially up
// front, and workers write only their own Point slot, so the report is
// bit-identical at any thread count.
ServeSweepReport RunServeSweepStudy(const Scenario& s, std::string* error) {
  ServeSweepReport out;
  out.model = s.ResolvedModels().front();
  out.gpu = s.ResolvedGpus().front();
  out.knobs = s.sweep;
  out.ttft_slo_s = s.workload.ttft_slo_s;
  out.tbt_slo_s = s.workload.tbt_slo_s;

  ServePlatform platform = BuildServePlatform(out.model, out.gpu, s.MakeSearchOptions());
  if (!platform.ok) {
    *error = platform.error;
    return out;
  }
  out.prefill_tp = platform.prefill_tp;
  out.prefill_batch = platform.prefill_batch;
  out.prefill_capacity_tok_s = platform.prefill_capacity_tok_s;
  out.decode_tp = platform.decode_tp;
  out.decode_batch = platform.decode_batch;
  out.decode_capacity_tok_s = platform.decode_capacity_tok_s;

  const std::vector<double> grid = s.sweep.GridPoints();
  std::vector<uint64_t> seeds;
  seeds.reserve(grid.size());
  SplitMix64 seed_stream(s.sweep.seed);
  for (size_t i = 0; i < grid.size(); ++i) {
    // Masked to 53 bits so the reported seed survives JSON's double-backed
    // numbers exactly — `litegpu serve --seed <reported>` must reproduce
    // the point's workload bit-for-bit.
    seeds.push_back(seed_stream.Next() & ((uint64_t{1} << 53) - 1));
  }

  double pool_capacity_tok_s = platform.decode_capacity_tok_s * s.sweep.decode_instances;
  double mean_output_tokens = MeanWorkloadFor(s, s.sweep.classes).output_tokens;
  out.points = ParallelMap<ServeSweepReport::Point>(
      s.exec.threads, static_cast<int>(grid.size()), [&](int i) {
        double value = grid[static_cast<size_t>(i)];
        double rate, load;
        if (s.sweep.IsRateGrid()) {
          rate = value;
          load = pool_capacity_tok_s > 0.0
                     ? value * mean_output_tokens / pool_capacity_tok_s
                     : 0.0;
        } else {
          load = value;
          rate = value * pool_capacity_tok_s / mean_output_tokens;
        }
        ServeSweepReport::Point p = SimulateServePoint(platform, s, s.sweep, rate,
                                                       seeds[static_cast<size_t>(i)]);
        p.load = load;
        return p;
      });

  // Knee + (autoscaled) cheapest selection via the shared helper, so the
  // sweep report and the fleet-compare study pick by the same rule.
  std::vector<KneePoint> knee_view;
  knee_view.reserve(out.points.size());
  for (const auto& p : out.points) {
    KneePoint kp;
    kp.arrival_rate_per_s = p.arrival_rate_per_s;
    kp.load = p.load;
    kp.slo_ok = p.slo_ok;
    kp.goodput_tokens_per_s = p.goodput_tokens_per_s;
    kp.makespan_s = p.makespan_s;
    kp.gpu_hours = p.scale.gpu_hours;
    knee_view.push_back(kp);
  }
  KneeSelection selection =
      SelectKneeAndCheapest(knee_view, s.sweep.autoscaler.enabled());
  out.knee_index = selection.knee_index;
  out.knee_load = selection.knee_load;
  out.knee_goodput_tokens_per_s = selection.knee_goodput_tokens_per_s;
  out.cheapest_index = selection.cheapest_index;
  out.cheapest_tokens_per_gpu_hour = selection.cheapest_tokens_per_gpu_hour;
  return out;
}

DeriveStudyReport RunDeriveStudy(const Scenario& s) {
  DeriveStudyReport out;
  LiteDeriveOptions options;
  options.split = s.derive.split;
  options.mem_bw_multiplier = s.derive.mem_bw_multiplier;
  options.net_bw_multiplier = s.derive.net_bw_multiplier;
  options.overclock = s.derive.overclock;
  options.max_gpus_multiplier = s.derive.split;
  out.result = DeriveLite(*FindGpu(s.derive.base_gpu), options);
  return out;
}

// A candidate's sweep-stream base: the study seed mixed with an FNV-1a
// hash of the candidate's (unique) name. Name-derived, not index-derived,
// so reordering the catalog leaves every candidate's points bit-identical
// — the Pareto set cannot depend on catalog order.
uint64_t FleetCandidateSeed(uint64_t study_seed, const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return SplitMix64(study_seed ^ h).Next();
}

// The candidate's resolved part: the catalog base as-is, or the DeriveLite
// derivation the candidate's split/multipliers describe (the derive
// study's exact recipe, max cluster size scaling with the split).
GpuSpec ResolveFleetGpu(const FleetCandidate& c) {
  GpuSpec base = *FindGpu(c.gpu);
  if (c.split <= 1 && c.mem_bw_multiplier == 1.0 && c.net_bw_multiplier == 1.0 &&
      c.overclock == 1.0) {
    return base;
  }
  LiteDeriveOptions options;
  options.split = c.split;
  options.mem_bw_multiplier = c.mem_bw_multiplier;
  options.net_bw_multiplier = c.net_bw_multiplier;
  options.overclock = c.overclock;
  options.max_gpus_multiplier = c.split;
  return DeriveLite(base, options).gpu;
}

// Runs the fleet-compare study: one serve sweep per candidate on the
// shared load grid (candidates sharing a resolved part share one platform
// build), each knee joined with the silicon-cost and cluster-power models,
// then the Pareto frontier over ($/Mtok, J/token, goodput). Candidates run
// serially; each sweep fans its points with the serve-sweep determinism
// contract, so the report is bit-identical at any thread count.
FleetCompareReport RunFleetCompareStudy(const Scenario& s) {
  FleetCompareReport out;
  out.model = s.ResolvedModels().front();
  out.knobs = s.fleet;
  out.ttft_slo_s = s.workload.ttft_slo_s;
  out.tbt_slo_s = s.workload.tbt_slo_s;

  const TransformerSpec model = *FindModel(out.model);
  const std::vector<double> grid = s.fleet.GridPoints();
  const WaferSpec wafer;
  const DefectSpec defects;
  const double depreciation_hours = s.fleet.depreciation_months * 730.0;

  // Candidates naming the same resolved part share one search + step-time
  // table; the report counts the builds so tests and the bench can gate
  // the sharing.
  std::map<std::string, ServePlatform> platforms;

  for (const FleetCandidate& c : s.fleet.candidates) {
    FleetCompareReport::Candidate row;
    row.name = c.name;
    row.base_gpu = c.gpu;
    row.split = c.split;
    row.seed = FleetCandidateSeed(s.fleet.seed, c.name);

    GpuSpec gpu = ResolveFleetGpu(c);
    row.gpu = gpu.name;
    auto it = platforms.find(gpu.name);
    if (it == platforms.end()) {
      it = platforms
               .emplace(gpu.name, BuildServePlatform(model, gpu, s.MakeSearchOptions()))
               .first;
      ++out.platform_builds;
    }
    const ServePlatform& platform = it->second;
    if (!platform.ok) {
      row.error = platform.error;
      out.candidates.push_back(std::move(row));
      continue;
    }
    row.prefill_tp = platform.prefill_tp;
    row.decode_tp = platform.decode_tp;
    row.decode_capacity_tok_s = platform.decode_capacity_tok_s;

    // The candidate's sweep shape: stationary single-class Poisson with
    // fixed pools — the study compares hardware, not traffic.
    ServeCommonKnobs common;
    common.horizon_s = s.fleet.horizon_s;
    common.prefill_instances = c.prefill_instances;
    common.decode_instances = c.decode_instances;
    common.prompt_sigma = s.fleet.prompt_sigma;
    common.output_sigma = s.fleet.output_sigma;
    common.seed = row.seed;

    std::vector<uint64_t> seeds;
    seeds.reserve(grid.size());
    SplitMix64 seed_stream(row.seed);
    for (size_t i = 0; i < grid.size(); ++i) {
      // Masked to 53 bits like the sweep's, so `litegpu serve --seed
      // <reported>` reproduces any point exactly.
      seeds.push_back(seed_stream.Next() & ((uint64_t{1} << 53) - 1));
    }
    double pool_capacity_tok_s = platform.decode_capacity_tok_s * c.decode_instances;
    double mean_output_tokens = static_cast<double>(s.workload.output_tokens);
    std::vector<ServeSweepReport::Point> points =
        ParallelMap<ServeSweepReport::Point>(
            s.exec.threads, static_cast<int>(grid.size()), [&](int i) {
              double load = grid[static_cast<size_t>(i)];
              double rate = load * pool_capacity_tok_s / mean_output_tokens;
              ServeSweepReport::Point p = SimulateServePoint(
                  platform, s, common, rate, seeds[static_cast<size_t>(i)]);
              p.load = load;
              return p;
            });

    std::vector<KneePoint> view;
    view.reserve(points.size());
    for (const auto& p : points) {
      KneePoint kp;
      kp.arrival_rate_per_s = p.arrival_rate_per_s;
      kp.load = p.load;
      kp.slo_ok = p.slo_ok;
      kp.goodput_tokens_per_s = p.goodput_tokens_per_s;
      kp.makespan_s = p.makespan_s;
      view.push_back(kp);
    }
    KneeSelection selection = SelectKneeAndCheapest(view, /*autoscaled=*/false);
    if (selection.knee_index < 0) {
      row.error = "no grid point meets the SLOs";
      out.candidates.push_back(std::move(row));
      continue;
    }
    const ServeSweepReport::Point& knee =
        points[static_cast<size_t>(selection.knee_index)];
    row.feasible = true;
    row.knee_index = selection.knee_index;
    row.knee_load = knee.load;
    row.knee_arrival_rate_per_s = knee.arrival_rate_per_s;
    row.knee_goodput_tokens_per_s = knee.goodput_tokens_per_s;
    row.knee_total_gpus = knee.total_gpus;
    row.analytic_capacity_tok_s = pool_capacity_tok_s;

    // The economics join: price the knee pool's silicon, amortize it, add
    // the knee pool's power priced at the grid rate.
    row.gpu_price_usd = PricedGpuUsd(wafer, YieldModel::kMurphy, defects, gpu,
                                     s.fleet.hbm_usd_per_gb, s.fleet.gpu_price_multiplier);
    row.capex_usd = row.gpu_price_usd * knee.total_gpus;
    row.capex_usd_per_hour = row.capex_usd / depreciation_hours;
    FleetEnergyReport energy = FleetEnergyAtKnee(
        gpu, knee.total_gpus, s.fleet.gpu_utilization, knee.goodput_tokens_per_s,
        s.fleet.electricity_usd_per_kwh);
    row.power_watts = energy.power.TotalWatts();
    row.opex_usd_per_hour = energy.opex_usd_per_hour;
    row.joules_per_token = energy.joules_per_token;
    row.usd_per_mtoken = UsdPerMtokenAtKnee(row.capex_usd_per_hour,
                                            row.opex_usd_per_hour,
                                            knee.goodput_tokens_per_s);
    out.candidates.push_back(std::move(row));
  }

  // Pareto frontier among feasible candidates: i is dominated when some j
  // is no worse on all of ($/Mtok, J/token, goodput) and strictly better
  // on at least one. Identical candidates co-exist on the frontier.
  for (size_t i = 0; i < out.candidates.size(); ++i) {
    const auto& a = out.candidates[i];
    if (!a.feasible) {
      continue;
    }
    bool dominated = false;
    for (size_t j = 0; j < out.candidates.size() && !dominated; ++j) {
      const auto& b = out.candidates[j];
      if (i == j || !b.feasible) {
        continue;
      }
      bool no_worse = b.usd_per_mtoken <= a.usd_per_mtoken &&
                      b.joules_per_token <= a.joules_per_token &&
                      b.knee_goodput_tokens_per_s >= a.knee_goodput_tokens_per_s;
      bool strictly_better = b.usd_per_mtoken < a.usd_per_mtoken ||
                             b.joules_per_token < a.joules_per_token ||
                             b.knee_goodput_tokens_per_s > a.knee_goodput_tokens_per_s;
      dominated = no_worse && strictly_better;
    }
    if (!dominated) {
      out.candidates[i].on_frontier = true;
      out.frontier.push_back(static_cast<int>(i));
    }
  }
  for (int idx : out.frontier) {
    if (out.winner_index < 0 ||
        out.candidates[static_cast<size_t>(idx)].usd_per_mtoken <
            out.candidates[static_cast<size_t>(out.winner_index)].usd_per_mtoken) {
      out.winner_index = idx;
    }
  }
  return out;
}

}  // namespace

RunReport Runner::Run(const Scenario& scenario) const {
  Scenario s = scenario;
  if (override_exec_) {
    s.exec = exec_;
  }
  std::string problem = s.Validate();
  if (!problem.empty()) {
    return ErrorReport(s, problem);
  }
  RunReport report;
  report.scenario_name = s.name;
  report.study = s.study;
  report.ok = true;
  switch (s.study) {
    case StudyKind::kSearch:
      report.payload = RunSearchStudy(s);
      break;
    case StudyKind::kFig3a:
      report.payload = RunFig3Study(s, /*prefill=*/true);
      break;
    case StudyKind::kFig3b:
      report.payload = RunFig3Study(s, /*prefill=*/false);
      break;
    case StudyKind::kDesign:
      report.payload = RunDesignStudy(s);
      break;
    case StudyKind::kMcSim:
      report.payload = RunMcSimStudy(s);
      break;
    case StudyKind::kYield:
      report.payload = RunYieldStudy(s);
      break;
    case StudyKind::kDerive:
      report.payload = RunDeriveStudy(s);
      break;
    case StudyKind::kServe: {
      std::string serve_error;
      ServeStudyReport serve = RunServeStudy(s, &serve_error);
      if (!serve_error.empty()) {
        return ErrorReport(s, serve_error);
      }
      report.payload = std::move(serve);
      break;
    }
    case StudyKind::kServeSweep: {
      std::string sweep_error;
      ServeSweepReport sweep = RunServeSweepStudy(s, &sweep_error);
      if (!sweep_error.empty()) {
        return ErrorReport(s, sweep_error);
      }
      report.payload = std::move(sweep);
      break;
    }
    case StudyKind::kFleetCompare:
      // Per-candidate failures become infeasible rows, not study errors —
      // one broken derivation must not hide the rest of the catalog.
      report.payload = RunFleetCompareStudy(s);
      break;
  }
  return report;
}

std::vector<RunReport> RunScenarios(const std::vector<Scenario>& scenarios,
                                    const ExecPolicy& exec) {
  // One worker per scenario; sweeps inside each scenario run serial so
  // nested fan-outs don't each spin up a hardware-wide pool (see the
  // nesting note in src/util/exec_policy.h). Reports collect in scenario
  // order, so the batch is bit-identical at any thread count.
  return ParallelMap<RunReport>(
      exec.threads, static_cast<int>(scenarios.size()), [&](int i) {
        Scenario serial = scenarios[static_cast<size_t>(i)];
        serial.exec.threads = 1;
        return Runner().Run(serial);
      });
}

// --- rendering --------------------------------------------------------------

namespace {

std::string SearchStudyToText(const SearchStudyReport& report) {
  std::ostringstream os;
  for (const auto& pair : report.pairs) {
    os << pair.model << " on " << pair.gpu << ":\n";
    if (pair.prefill.found) {
      os << "  prefill: TP=" << pair.prefill.best.tp_degree
         << " batch=" << pair.prefill.best.batch
         << " TTFT=" << HumanTime(pair.prefill.best.result.ttft_s) << " -> "
         << FormatDouble(pair.prefill.best.result.tokens_per_s_per_sm, 2)
         << " tokens/s/SM\n";
    } else {
      os << "  prefill: no feasible configuration\n";
    }
    if (pair.decode.found) {
      os << "  decode:  TP=" << pair.decode.best.tp_degree
         << " batch=" << pair.decode.best.batch
         << " TBT=" << HumanTime(pair.decode.best.result.tbt_s) << " -> "
         << FormatDouble(pair.decode.best.result.tokens_per_s_per_sm, 2)
         << " tokens/s/SM\n";
      os << "  per-degree frontier:\n";
      for (const auto& p : pair.decode.per_degree) {
        os << "    TP=" << p.tp_degree << " batch=" << p.batch
           << " TBT=" << HumanTime(p.result.tbt_s) << " "
           << FormatDouble(p.result.tokens_per_s_per_sm, 2) << " tokens/s/SM\n";
      }
    } else {
      os << "  decode:  no feasible configuration\n";
    }
  }
  return os.str();
}

Json SearchStudyToJson(const SearchStudyReport& report) {
  Json pairs = Json::Array();
  for (const auto& pair : report.pairs) {
    Json j = Json::Object();
    j.Set("model", pair.model)
        .Set("gpu", pair.gpu)
        .Set("prefill", ToJson(pair.prefill))
        .Set("decode", ToJson(pair.decode));
    pairs.Append(std::move(j));
  }
  Json j = Json::Object();
  j.Set("pairs", std::move(pairs));
  return j;
}

std::string DesignStudyToText(const DesignStudyReport& report) {
  std::ostringstream os;
  for (const auto& per_model : report.per_model) {
    os << "=== " << per_model.model << " decode serving ===\n"
       << ClusterComparisonToText(per_model.clusters);
  }
  return os.str();
}

Json DesignStudyToJson(const DesignStudyReport& report) {
  Json models = Json::Array();
  for (const auto& per_model : report.per_model) {
    Json j = ClusterComparisonToJson(per_model.clusters);
    j.Set("model", per_model.model);
    models.Append(std::move(j));
  }
  Json j = Json::Object();
  j.Set("models", std::move(models));
  return j;
}

std::string McSimStudyToText(const McSimStudyReport& report) {
  std::ostringstream os;
  os << "Monte-Carlo availability: " << report.gpu << ", "
     << report.knobs.num_instances << " instances x " << report.knobs.gpus_per_instance
     << " GPUs, " << report.knobs.num_spares << " spares, "
     << FormatDouble(report.knobs.sim_years, 1) << " years x " << report.knobs.num_trials
     << " trials\n";
  os << "  instance availability: " << FormatDouble(report.result.instance_availability, 6)
     << "\n  capacity fraction:     " << FormatDouble(report.result.capacity_fraction, 6)
     << "\n  failures:              " << report.result.num_failures << " ("
     << report.result.unmasked_failures << " unmasked, "
     << FormatDouble(report.result.failures_per_year, 3) << "/year)\n";
  return os.str();
}

Json McSimStudyToJson(const McSimStudyReport& report) {
  Json config = Json::Object();
  config.Set("gpus_per_instance", report.knobs.gpus_per_instance)
      .Set("num_instances", report.knobs.num_instances)
      .Set("num_spares", report.knobs.num_spares)
      .Set("sim_years", report.knobs.sim_years)
      .Set("seed", report.knobs.seed)
      .Set("num_trials", report.knobs.num_trials);
  Json j = Json::Object();
  j.Set("gpu", report.gpu)
      .Set("config", std::move(config))
      .Set("result", ToJson(report.result));
  return j;
}

std::string YieldStudyToText(const YieldStudyReport& report) {
  const auto& k = report.knobs;
  Table table({"Model", "Yield(full)", "Yield(1/" + std::to_string(k.split) + ")", "Gain",
               "KGD cost ratio"});
  for (const auto& row : report.rows) {
    table.AddRow({ToString(row.model), FormatDouble(row.yield_full, 3),
                  FormatDouble(row.yield_split, 3), FormatDouble(row.gain, 2) + "x",
                  row.kgd_cost_ratio > 0.0 ? FormatDouble(row.kgd_cost_ratio, 3) : "-"});
  }
  std::ostringstream os;
  os << "die " << FormatDouble(k.die_area_mm2, 1) << " mm^2, d0 "
     << FormatDouble(k.defect_density_per_cm2, 2) << "/cm^2, split " << k.split << "\n"
     << table.ToText();
  return os.str();
}

Json YieldStudyToJson(const YieldStudyReport& report) {
  const auto& k = report.knobs;
  Json rows = Json::Array();
  for (const auto& row : report.rows) {
    Json r = Json::Object();
    r.Set("model", ToString(row.model))
        .Set("yield_full", row.yield_full)
        .Set("yield_split", row.yield_split)
        .Set("gain", row.gain)
        .Set("kgd_cost_ratio", row.kgd_cost_ratio);
    rows.Append(std::move(r));
  }
  Json j = Json::Object();
  j.Set("die_area_mm2", k.die_area_mm2)
      .Set("defect_density_per_cm2", k.defect_density_per_cm2)
      .Set("split", k.split)
      .Set("rows", std::move(rows));
  return j;
}

// Per-class rendering shared by the serve report and the sweep's knee
// summary. Only called for multi-tenant runs.
std::string ClassTableToText(const std::vector<ServeClassReport>& classes) {
  Table table({"Class", "Share", "Req/s", "TTFT p50/p99", "TBT p50/p99",
               "Goodput tok/s", "Attain", "SLO"});
  for (const auto& c : classes) {
    table.AddRow({c.name, HumanPercent(c.share, 0), FormatDouble(c.arrival_rate_per_s, 2),
                  HumanTime(c.ttft_p50_s) + " / " + HumanTime(c.ttft_p99_s),
                  HumanTime(c.tbt_p50_s) + " / " + HumanTime(c.tbt_p99_s),
                  FormatDouble(c.goodput_tokens_per_s, 0),
                  HumanPercent(c.ttft_attainment, 1), c.slo_ok ? "ok" : "MISS"});
  }
  return table.ToText();
}

Json ClassReportsToJson(const std::vector<ServeClassReport>& classes) {
  Json arr = Json::Array();
  for (const auto& c : classes) {
    Json latency = Json::Object();
    latency.Set("ttft_p50_s", c.ttft_p50_s)
        .Set("ttft_p95_s", c.ttft_p95_s)
        .Set("ttft_p99_s", c.ttft_p99_s)
        .Set("tbt_p50_s", c.tbt_p50_s)
        .Set("tbt_p95_s", c.tbt_p95_s)
        .Set("tbt_p99_s", c.tbt_p99_s);
    Json slo = Json::Object();
    slo.Set("ttft_p99_s", c.ttft_slo_s).Set("tbt_p99_s", c.tbt_slo_s);
    Json j = Json::Object();
    j.Set("name", c.name)
        .Set("share", c.share)
        .Set("arrival_rate_per_s", c.arrival_rate_per_s)
        .Set("slo", std::move(slo))
        .Set("admitted_requests", c.admitted_requests)
        .Set("completed_requests", c.completed_requests)
        .Set("in_flight_at_horizon", c.in_flight_at_horizon)
        .Set("latency", std::move(latency))
        .Set("goodput_tokens_per_s", c.goodput_tokens_per_s)
        .Set("ttft_attainment", c.ttft_attainment)
        .Set("slo_ok", c.slo_ok);
    arr.Append(std::move(j));
  }
  return arr;
}

// Config-echo keys shared by the serve and sweep reports: the arrival
// process when it is not the stationary Poisson default, the autoscaler
// block when one is enabled, the faults block when it moved off its
// defaults. Gated so fixed-pool fault-free Poisson reports stay
// byte-identical to the pre-autoscaler renderer.
void EchoArrivalAndAutoscaler(Json& config, const ServeCommonKnobs& knobs) {
  if (knobs.arrival.kind != ArrivalKind::kPoisson) {
    config.Set("arrival", ArrivalProcessToJson(knobs.arrival));
  }
  if (knobs.autoscaler.enabled()) {
    config.Set("autoscaler", AutoscalerKnobsToJson(knobs.autoscaler));
  }
  if (!FaultKnobsAreDefault(knobs.faults)) {
    config.Set("faults", FaultKnobsToJson(knobs.faults));
  }
}

Json ScaleReportToJson(const ServeScaleReport& scale) {
  Json events = Json::Array();
  for (const ScaleEvent& e : scale.events) {
    Json event = Json::Object();
    event.Set("time_s", e.time_s)
        .Set("pool", std::string(ToString(e.pool)))
        .Set("delta", e.delta)
        .Set("instances_after", e.instances_after)
        .Set("reason", e.reason);
    events.Append(std::move(event));
  }
  Json j = Json::Object();
  j.Set("policy", scale.policy)
      .Set("scale_ups", scale.scale_ups)
      .Set("scale_downs", scale.scale_downs)
      .Set("prefill_instance_hours", scale.prefill_instance_hours)
      .Set("decode_instance_hours", scale.decode_instance_hours)
      .Set("gpu_hours", scale.gpu_hours)
      .Set("peak_prefill_instances", scale.peak_prefill_instances)
      .Set("peak_decode_instances", scale.peak_decode_instances)
      .Set("final_prefill_instances", scale.final_prefill_instances)
      .Set("final_decode_instances", scale.final_decode_instances)
      .Set("ttft_attainment", scale.ttft_attainment)
      .Set("events", std::move(events));
  return j;
}

// New PR-9 keys (domains, degradation, shedding) are gated on their axis's
// enabled flag so reports from scenarios that predate them stay byte-identical.
Json FaultPoolToJson(const ServeFaultPoolReport& pool, bool domains_enabled,
                     bool degraded_enabled) {
  Json j = Json::Object();
  j.Set("failures", pool.failures)
      .Set("spare_activations", pool.spare_activations)
      .Set("downtime_s", pool.downtime_s)
      .Set("lost_tokens", pool.lost_tokens)
      .Set("blast_radius_fraction", pool.blast_radius_fraction)
      .Set("availability_measured", pool.availability_measured)
      .Set("availability_predicted", pool.availability_predicted);
  if (domains_enabled) {
    Json domains = Json::Array();
    for (const ServeFaultDomainReport& d : pool.domains) {
      Json dj = Json::Object();
      dj.Set("domain", d.domain)
          .Set("failures", d.failures)
          .Set("instance_failures", d.instance_failures)
          .Set("lost_tokens", d.lost_tokens)
          .Set("blast_radius_fraction", d.blast_radius_fraction);
      domains.Append(std::move(dj));
    }
    j.Set("domain_failures", pool.domain_failures)
        .Set("worst_event_lost_tokens", pool.worst_event_lost_tokens)
        .Set("worst_event_fraction", pool.worst_event_fraction)
        .Set("availability_correlated", pool.availability_correlated)
        .Set("domains", std::move(domains));
  }
  if (degraded_enabled) {
    j.Set("degrade_events", pool.degrade_events)
        .Set("degraded_instance_s", pool.degraded_instance_s);
  }
  return j;
}

Json FaultReportToJson(const ServeFaultReport& f) {
  Json events = Json::Array();
  for (const FaultEvent& e : f.events) {
    Json event = Json::Object();
    event.Set("time_s", e.time_s)
        .Set("kind", std::string(ToString(e.kind)))
        .Set("pool", std::string(ToString(e.pool)))
        .Set("instance", e.instance);
    if (e.domain >= 0) {
      event.Set("domain", e.domain);
    }
    event.Set("killed_requests", e.killed_requests)
        .Set("lost_tokens", e.lost_tokens)
        .Set("spares_free", e.spares_free);
    events.Append(std::move(event));
  }
  Json j = Json::Object();
  j.Set("retry_policy", f.retry_policy)
      .Set("prefill", FaultPoolToJson(f.prefill, f.domains_enabled, f.degraded_enabled))
      .Set("decode", FaultPoolToJson(f.decode, f.domains_enabled, f.degraded_enabled))
      .Set("retried_requests", f.retried_requests)
      .Set("dropped_requests", f.dropped_requests)
      .Set("lost_tokens", f.lost_tokens)
      .Set("goodput_tokens_per_s", f.goodput_tokens_per_s)
      .Set("baseline_goodput_tokens_per_s", f.baseline_goodput_tokens_per_s)
      .Set("goodput_ratio", f.goodput_ratio);
  if (f.degraded_enabled) {
    j.Set("degraded_goodput_tokens_per_s", f.degraded_goodput_tokens_per_s);
  }
  if (f.shedding_enabled) {
    Json shed = Json::Array();
    for (const ShedEvent& e : f.shed_events) {
      Json ev = Json::Object();
      ev.Set("time_s", e.time_s)
          .Set("request", e.request)
          .Set("reason", std::string(ToString(e.reason)));
      shed.Append(std::move(ev));
    }
    j.Set("shed_requests", f.shed_requests).Set("shed_events", std::move(shed));
  }
  if (f.domains_enabled || f.degraded_enabled || f.shedding_enabled) {
    j.Set("time_to_drain_s", f.time_to_drain_s).Set("stable", f.stable);
  }
  j.Set("events", std::move(events));
  return j;
}

std::string FaultSummaryToText(const ServeFaultReport& f) {
  std::ostringstream os;
  if (!f.enabled) {
    // Shedding can run without fault injection; report just that slice.
    if (f.shedding_enabled) {
      os << "shedding: " << f.shed_requests << " requests shed, "
         << (f.stable ? "stable" : "UNSTABLE") << "\n";
    }
    return os.str();
  }
  os << "faults (" << f.retry_policy << "): " << f.prefill.failures << "p+"
     << f.decode.failures << "d failures ("
     << f.prefill.spare_activations + f.decode.spare_activations
     << " spare-masked), " << f.retried_requests << " retried / "
     << f.dropped_requests << " dropped requests, "
     << FormatDouble(f.lost_tokens, 0) << " tokens lost\n"
     << "  availability: prefill "
     << HumanPercent(f.prefill.availability_measured, 2) << " measured / "
     << HumanPercent(f.prefill.availability_predicted, 2)
     << " predicted, decode " << HumanPercent(f.decode.availability_measured, 2)
     << " measured / " << HumanPercent(f.decode.availability_predicted, 2)
     << " predicted\n"
     << "  blast radius: prefill "
     << HumanPercent(f.prefill.blast_radius_fraction, 3) << " / decode "
     << HumanPercent(f.decode.blast_radius_fraction, 3)
     << " of served tokens per failure\n"
     << "  goodput under churn: " << HumanPercent(f.goodput_ratio, 1)
     << " of the fault-free baseline ("
     << FormatDouble(f.goodput_tokens_per_s, 0) << " vs "
     << FormatDouble(f.baseline_goodput_tokens_per_s, 0) << " tok/s)\n";
  if (f.domains_enabled) {
    os << "  domains: " << f.prefill.domain_failures << "p+"
       << f.decode.domain_failures << "d correlated outages, worst single event "
       << HumanPercent(std::max(f.prefill.worst_event_fraction,
                                f.decode.worst_event_fraction),
                       3)
       << " of served tokens, correlated availability prefill "
       << HumanPercent(f.prefill.availability_correlated, 2) << " / decode "
       << HumanPercent(f.decode.availability_correlated, 2) << "\n";
  }
  if (f.degraded_enabled) {
    os << "  degraded: " << f.prefill.degrade_events + f.decode.degrade_events
       << " slowdown windows, "
       << FormatDouble(f.prefill.degraded_instance_s + f.decode.degraded_instance_s, 0)
       << " instance-s throttled, goodput while degraded "
       << FormatDouble(f.degraded_goodput_tokens_per_s, 0) << " tok/s/inst\n";
  }
  if (f.shedding_enabled) {
    os << "  shedding: " << f.shed_requests << " requests shed\n";
  }
  if (f.domains_enabled || f.degraded_enabled || f.shedding_enabled) {
    os << "  stability: ";
    if (f.time_to_drain_s >= 0.0) {
      os << "backlog drained " << HumanTime(f.time_to_drain_s)
         << " after the largest outage, ";
    }
    os << (f.stable ? "stable" : "UNSTABLE (backlog never drained)") << "\n";
  }
  return os.str();
}

std::string ScaleSummaryToText(const ServeScaleReport& scale) {
  std::ostringstream os;
  os << "autoscaler (" << scale.policy << "): " << scale.scale_ups << " up / "
     << scale.scale_downs << " down, peak " << scale.peak_prefill_instances << "p+"
     << scale.peak_decode_instances << "d, final " << scale.final_prefill_instances
     << "p+" << scale.final_decode_instances << "d, "
     << FormatDouble(scale.gpu_hours, 3) << " GPU-hours, TTFT attainment "
     << HumanPercent(scale.ttft_attainment, 1) << "\n";
  return os.str();
}

std::string ServeStudyToText(const ServeStudyReport& r) {
  std::ostringstream os;
  os << "Serving simulation: " << r.model << " on " << r.gpu << "\n"
     << "  prefill: TP=" << r.prefill_tp << " batch<=" << r.prefill_batch << " ("
     << FormatDouble(r.prefill_capacity_tok_s, 0) << " tok/s/inst) x "
     << r.prefill_instances << " instances\n"
     << "  decode:  TP=" << r.decode_tp << " batch<=" << r.decode_batch << " ("
     << FormatDouble(r.decode_capacity_tok_s, 0) << " tok/s/inst) x "
     << r.decode_instances << " instances  [" << r.total_gpus << " GPUs total]\n"
     << "  offered: " << FormatDouble(r.arrival_rate_per_s, 2) << " req/s over "
     << HumanTime(r.knobs.horizon_s) << " horizon ("
     << FormatDouble(r.analytic_tokens_per_s, 0) << " decode tok/s analytic)\n";
  Table table({"Requests", "Completed", "In-flight@H", "TTFT p50/p99", "TBT p50/p99",
               "Goodput tok/s", "Analytic", "Ratio", "Util p/d", "Mean batch"});
  table.AddRow({std::to_string(r.admitted_requests), std::to_string(r.completed_requests),
                std::to_string(r.in_flight_at_horizon),
                HumanTime(r.ttft_p50_s) + " / " + HumanTime(r.ttft_p99_s),
                HumanTime(r.tbt_p50_s) + " / " + HumanTime(r.tbt_p99_s),
                FormatDouble(r.goodput_tokens_per_s, 0),
                FormatDouble(r.analytic_tokens_per_s, 0),
                FormatDouble(r.capacity_agreement, 3),
                FormatDouble(r.prefill_utilization, 2) + " / " +
                    FormatDouble(r.decode_utilization, 2),
                FormatDouble(r.mean_decode_batch, 0)});
  os << table.ToText();
  if (r.scale.enabled) {
    os << ScaleSummaryToText(r.scale);
  }
  if (r.faults.enabled || r.faults.shedding_enabled) {
    os << FaultSummaryToText(r.faults);
  }
  if (!r.classes.empty()) {
    os << "per-class (" << r.classes.size() << " request classes):\n"
       << ClassTableToText(r.classes);
  }
  return os.str();
}

Json ServeStudyToJson(const ServeStudyReport& r) {
  Json config = Json::Object();
  config.Set("load", r.knobs.load)
      .Set("arrival_rate_per_s", r.arrival_rate_per_s)
      .Set("horizon_s", r.knobs.horizon_s)
      .Set("prompt_sigma", r.knobs.prompt_sigma)
      .Set("output_sigma", r.knobs.output_sigma)
      .Set("seed", r.knobs.seed);
  EchoArrivalAndAutoscaler(config, r.knobs);
  if (!r.knobs.classes.empty()) {
    config.Set("classes", RequestClassesToJson(r.knobs.classes));
  }
  Json prefill = Json::Object();
  prefill.Set("tp_degree", r.prefill_tp)
      .Set("batch", r.prefill_batch)
      .Set("capacity_tokens_per_s", r.prefill_capacity_tok_s)
      .Set("instances", r.prefill_instances)
      .Set("utilization", r.prefill_utilization);
  Json decode = Json::Object();
  decode.Set("tp_degree", r.decode_tp)
      .Set("batch", r.decode_batch)
      .Set("capacity_tokens_per_s", r.decode_capacity_tok_s)
      .Set("instances", r.decode_instances)
      .Set("utilization", r.decode_utilization)
      .Set("mean_batch", r.mean_decode_batch);
  Json latency = Json::Object();
  latency.Set("ttft_p50_s", r.ttft_p50_s)
      .Set("ttft_p95_s", r.ttft_p95_s)
      .Set("ttft_p99_s", r.ttft_p99_s)
      .Set("tbt_p50_s", r.tbt_p50_s)
      .Set("tbt_p95_s", r.tbt_p95_s)
      .Set("tbt_p99_s", r.tbt_p99_s);
  Json j = Json::Object();
  j.Set("model", r.model)
      .Set("gpu", r.gpu)
      .Set("config", std::move(config))
      .Set("prefill", std::move(prefill))
      .Set("decode", std::move(decode))
      .Set("total_gpus", r.total_gpus)
      .Set("admitted_requests", r.admitted_requests)
      .Set("completed_requests", r.completed_requests)
      .Set("in_flight_at_horizon", r.in_flight_at_horizon)
      .Set("latency", std::move(latency))
      .Set("goodput_tokens_per_s", r.goodput_tokens_per_s)
      .Set("analytic_tokens_per_s", r.analytic_tokens_per_s)
      .Set("capacity_agreement", r.capacity_agreement)
      .Set("makespan_s", r.makespan_s);
  if (r.scale.enabled) {
    j.Set("autoscaler", ScaleReportToJson(r.scale));
  }
  if (r.faults.enabled || r.faults.shedding_enabled) {
    j.Set("faults", FaultReportToJson(r.faults));
  }
  if (!r.classes.empty()) {
    j.Set("classes", ClassReportsToJson(r.classes));
  }
  return j;
}

std::string ServeSweepToText(const ServeSweepReport& r) {
  std::ostringstream os;
  os << "Serve sweep: " << r.model << " on " << r.gpu << " — " << r.points.size()
     << " load points over " << HumanTime(r.knobs.horizon_s) << " horizon\n"
     << "  prefill: TP=" << r.prefill_tp << " batch<=" << r.prefill_batch << " ("
     << FormatDouble(r.prefill_capacity_tok_s, 0) << " tok/s/inst)\n"
     << "  decode:  TP=" << r.decode_tp << " batch<=" << r.decode_batch << " ("
     << FormatDouble(r.decode_capacity_tok_s, 0) << " tok/s/inst) x "
     << r.knobs.decode_instances << " instances\n"
     << "  SLOs: TTFT p99 <= " << HumanTime(r.ttft_slo_s) << ", TBT p99 <= "
     << HumanTime(r.tbt_slo_s) << "\n";
  Table table({"Load", "Req/s", "Prefill inst", "TTFT p50/p99", "TBT p50/p99",
               "Goodput tok/s", "Ratio", "Util p/d", "SLO"});
  for (const auto& p : r.points) {
    table.AddRow({HumanPercent(p.load, 0), FormatDouble(p.arrival_rate_per_s, 2),
                  std::to_string(p.prefill_instances),
                  HumanTime(p.ttft_p50_s) + " / " + HumanTime(p.ttft_p99_s),
                  HumanTime(p.tbt_p50_s) + " / " + HumanTime(p.tbt_p99_s),
                  FormatDouble(p.goodput_tokens_per_s, 0),
                  FormatDouble(p.capacity_agreement, 3),
                  FormatDouble(p.prefill_utilization, 2) + " / " +
                      FormatDouble(p.decode_utilization, 2),
                  p.slo_ok ? "ok" : "MISS"});
  }
  os << table.ToText();
  bool multi_class = !r.knobs.classes.empty();
  // Under fault injection the verdicts behind the knee are judged at the
  // target attainment quantile, so say so.
  std::string churn_suffix =
      r.knobs.faults.enabled()
          ? " at the p" +
                FormatDouble(r.knobs.faults.target_attainment * 100.0, 0) +
                " attainment target under churn"
          : "";
  if (r.knee_index >= 0) {
    const auto& knee = r.points[static_cast<size_t>(r.knee_index)];
    os << "knee: " << HumanPercent(knee.load, 0) << " load ("
       << FormatDouble(knee.arrival_rate_per_s, 2) << " req/s, "
       << FormatDouble(knee.goodput_tokens_per_s, 0) << " tok/s goodput) — "
       << (multi_class ? "highest load where every class meets its SLOs"
                       : "highest load meeting both SLOs")
       << churn_suffix << "\n";
    if (knee.faults.enabled || knee.faults.shedding_enabled) {
      os << FaultSummaryToText(knee.faults);
    }
    if (multi_class) {
      os << "per-class at the knee:\n" << ClassTableToText(knee.classes);
    }
  } else {
    os << (multi_class ? "knee: no load point lets every class meet its SLOs\n"
                       : "knee: no load point meets the SLOs\n");
  }
  if (r.knobs.autoscaler.enabled()) {
    if (r.cheapest_index >= 0) {
      const auto& cheapest = r.points[static_cast<size_t>(r.cheapest_index)];
      os << "cheapest: " << HumanPercent(cheapest.load, 0) << " load ("
         << FormatDouble(r.cheapest_tokens_per_gpu_hour, 0)
         << " tok/GPU-hour) — cheapest autoscaled point meeting the SLOs\n";
      os << ScaleSummaryToText(cheapest.scale);
    } else {
      os << "cheapest: no autoscaled point meets the SLOs\n";
    }
  }
  return os.str();
}

Json ServeSweepToJson(const ServeSweepReport& r) {
  Json config = Json::Object();
  if (!r.knobs.loads.empty()) {
    Json arr = Json::Array();
    for (double load : r.knobs.loads) {
      arr.Append(load);
    }
    config.Set("loads", std::move(arr));
  }
  if (!r.knobs.rates.empty()) {
    Json arr = Json::Array();
    for (double rate : r.knobs.rates) {
      arr.Append(rate);
    }
    config.Set("rates", std::move(arr));
  }
  config.Set("load_lo", r.knobs.load_lo)
      .Set("load_hi", r.knobs.load_hi)
      .Set("load_step", r.knobs.load_step)
      .Set("horizon_s", r.knobs.horizon_s)
      .Set("prompt_sigma", r.knobs.prompt_sigma)
      .Set("output_sigma", r.knobs.output_sigma)
      .Set("seed", r.knobs.seed);
  EchoArrivalAndAutoscaler(config, r.knobs);
  if (!r.knobs.classes.empty()) {
    config.Set("classes", RequestClassesToJson(r.knobs.classes));
  }
  Json prefill = Json::Object();
  prefill.Set("tp_degree", r.prefill_tp)
      .Set("batch", r.prefill_batch)
      .Set("capacity_tokens_per_s", r.prefill_capacity_tok_s);
  Json decode = Json::Object();
  decode.Set("tp_degree", r.decode_tp)
      .Set("batch", r.decode_batch)
      .Set("capacity_tokens_per_s", r.decode_capacity_tok_s)
      .Set("instances", r.knobs.decode_instances);
  Json slo = Json::Object();
  slo.Set("ttft_p99_s", r.ttft_slo_s).Set("tbt_p99_s", r.tbt_slo_s);
  Json points = Json::Array();
  for (const auto& p : r.points) {
    Json latency = Json::Object();
    latency.Set("ttft_p50_s", p.ttft_p50_s)
        .Set("ttft_p95_s", p.ttft_p95_s)
        .Set("ttft_p99_s", p.ttft_p99_s)
        .Set("tbt_p50_s", p.tbt_p50_s)
        .Set("tbt_p95_s", p.tbt_p95_s)
        .Set("tbt_p99_s", p.tbt_p99_s);
    Json point = Json::Object();
    point.Set("load", p.load)
        .Set("arrival_rate_per_s", p.arrival_rate_per_s)
        .Set("seed", p.seed)
        .Set("prefill_instances", p.prefill_instances)
        .Set("decode_instances", p.decode_instances)
        .Set("total_gpus", p.total_gpus)
        .Set("admitted_requests", p.admitted_requests)
        .Set("completed_requests", p.completed_requests)
        .Set("in_flight_at_horizon", p.in_flight_at_horizon)
        .Set("latency", std::move(latency))
        .Set("goodput_tokens_per_s", p.goodput_tokens_per_s)
        .Set("analytic_tokens_per_s", p.analytic_tokens_per_s)
        .Set("capacity_agreement", p.capacity_agreement)
        .Set("prefill_utilization", p.prefill_utilization)
        .Set("decode_utilization", p.decode_utilization)
        .Set("mean_decode_batch", p.mean_decode_batch)
        .Set("makespan_s", p.makespan_s)
        .Set("slo_ok", p.slo_ok);
    if (p.scale.enabled) {
      point.Set("autoscaler", ScaleReportToJson(p.scale));
    }
    if (p.faults.enabled || p.faults.shedding_enabled) {
      point.Set("faults", FaultReportToJson(p.faults));
    }
    if (!p.classes.empty()) {
      point.Set("classes", ClassReportsToJson(p.classes));
    }
    points.Append(std::move(point));
  }
  Json knee = Json::Object();
  knee.Set("found", r.knee_index >= 0)
      .Set("index", r.knee_index)
      .Set("load", r.knee_load)
      .Set("goodput_tokens_per_s", r.knee_goodput_tokens_per_s);
  Json j = Json::Object();
  j.Set("model", r.model)
      .Set("gpu", r.gpu)
      .Set("config", std::move(config))
      .Set("prefill", std::move(prefill))
      .Set("decode", std::move(decode))
      .Set("slo", std::move(slo))
      .Set("points", std::move(points))
      .Set("knee", std::move(knee));
  if (r.knobs.autoscaler.enabled()) {
    Json cheapest = Json::Object();
    cheapest.Set("found", r.cheapest_index >= 0)
        .Set("index", r.cheapest_index)
        .Set("load",
             r.cheapest_index >= 0
                 ? r.points[static_cast<size_t>(r.cheapest_index)].load
                 : 0.0)
        .Set("tokens_per_gpu_hour", r.cheapest_tokens_per_gpu_hour);
    j.Set("cheapest", std::move(cheapest));
  }
  return j;
}

std::string FleetCompareToText(const FleetCompareReport& r) {
  std::ostringstream os;
  os << "Fleet compare: " << r.model << " — " << r.candidates.size()
     << " candidates, " << r.knobs.GridPoints().size() << " load points over "
     << HumanTime(r.knobs.horizon_s) << " horizon\n"
     << "  SLOs: TTFT p99 <= " << HumanTime(r.ttft_slo_s) << ", TBT p99 <= "
     << HumanTime(r.tbt_slo_s) << "\n"
     << "  economics: " << FormatDouble(r.knobs.depreciation_months, 0)
     << "-month depreciation, $" << FormatDouble(r.knobs.electricity_usd_per_kwh, 2)
     << "/kWh, " << HumanPercent(r.knobs.gpu_utilization, 0) << " utilization\n";
  Table table({"Candidate", "GPU", "Knee load", "Req/s", "Goodput tok/s", "GPUs",
               "Capex $/h", "Opex $/h", "$ / Mtok", "J/token", "Frontier"});
  for (const auto& c : r.candidates) {
    if (!c.feasible) {
      table.AddRow({c.name, c.gpu, "-", "-", "-", "-", "-", "-", "-", "-",
                    "infeasible"});
      continue;
    }
    table.AddRow({c.name, c.gpu, HumanPercent(c.knee_load, 0),
                  FormatDouble(c.knee_arrival_rate_per_s, 2),
                  FormatDouble(c.knee_goodput_tokens_per_s, 0),
                  std::to_string(c.knee_total_gpus),
                  FormatDouble(c.capex_usd_per_hour, 2),
                  FormatDouble(c.opex_usd_per_hour, 2),
                  FormatDouble(c.usd_per_mtoken, 3),
                  FormatDouble(c.joules_per_token, 2),
                  c.on_frontier ? "yes" : "-"});
  }
  os << table.ToText();
  if (r.winner_index >= 0) {
    const auto& w = r.candidates[static_cast<size_t>(r.winner_index)];
    os << "winner: " << w.name << " ($" << FormatDouble(w.usd_per_mtoken, 3)
       << "/Mtok at the knee) — cheapest frontier candidate\n";
  } else {
    os << "winner: none (no candidate meets the SLOs)\n";
  }
  for (const auto& c : r.candidates) {
    if (!c.feasible) {
      os << "  " << c.name << ": " << c.error << "\n";
    }
  }
  return os.str();
}

Json FleetCompareToJson(const FleetCompareReport& r) {
  Json slo = Json::Object();
  slo.Set("ttft_p99_s", r.ttft_slo_s).Set("tbt_p99_s", r.tbt_slo_s);
  Json candidates = Json::Array();
  for (const auto& c : r.candidates) {
    Json row = Json::Object();
    row.Set("name", c.name)
        .Set("gpu", c.gpu)
        .Set("base_gpu", c.base_gpu)
        .Set("split", c.split)
        .Set("seed", c.seed)
        .Set("feasible", c.feasible);
    if (!c.feasible) {
      row.Set("error", c.error);
      candidates.Append(std::move(row));
      continue;
    }
    Json knee = Json::Object();
    knee.Set("index", c.knee_index)
        .Set("load", c.knee_load)
        .Set("arrival_rate_per_s", c.knee_arrival_rate_per_s)
        .Set("goodput_tokens_per_s", c.knee_goodput_tokens_per_s)
        .Set("total_gpus", c.knee_total_gpus)
        .Set("analytic_capacity_tokens_per_s", c.analytic_capacity_tok_s);
    Json economics = Json::Object();
    economics.Set("gpu_price_usd", c.gpu_price_usd)
        .Set("capex_usd", c.capex_usd)
        .Set("capex_usd_per_hour", c.capex_usd_per_hour)
        .Set("power_watts", c.power_watts)
        .Set("opex_usd_per_hour", c.opex_usd_per_hour)
        .Set("usd_per_mtoken", c.usd_per_mtoken)
        .Set("joules_per_token", c.joules_per_token);
    row.Set("prefill_tp", c.prefill_tp)
        .Set("decode_tp", c.decode_tp)
        .Set("decode_capacity_tokens_per_s", c.decode_capacity_tok_s)
        .Set("knee", std::move(knee))
        .Set("economics", std::move(economics))
        .Set("on_frontier", c.on_frontier);
    candidates.Append(std::move(row));
  }
  Json frontier = Json::Array();
  for (int idx : r.frontier) {
    frontier.Append(idx);
  }
  Json j = Json::Object();
  j.Set("model", r.model)
      .Set("config", FleetKnobsToJson(r.knobs))
      .Set("slo", std::move(slo))
      .Set("candidates", std::move(candidates))
      .Set("frontier", std::move(frontier))
      .Set("winner_index", r.winner_index)
      .Set("platform_builds", r.platform_builds);
  return j;
}

}  // namespace

std::string RunReport::ToText() const {
  std::ostringstream os;
  if (!scenario_name.empty()) {
    os << "# scenario: " << scenario_name << " (" << litegpu::ToString(study) << ")\n";
  }
  if (!ok) {
    os << "error: " << error << "\n";
    return os.str();
  }
  switch (study) {
    case StudyKind::kSearch:
      os << SearchStudyToText(std::get<SearchStudyReport>(payload));
      break;
    case StudyKind::kFig3a:
    case StudyKind::kFig3b: {
      const auto& fig3 = std::get<Fig3StudyReport>(payload);
      os << Fig3ToText(fig3.entries, fig3.title);
      break;
    }
    case StudyKind::kDesign:
      os << DesignStudyToText(std::get<DesignStudyReport>(payload));
      break;
    case StudyKind::kMcSim:
      os << McSimStudyToText(std::get<McSimStudyReport>(payload));
      break;
    case StudyKind::kYield:
      os << YieldStudyToText(std::get<YieldStudyReport>(payload));
      break;
    case StudyKind::kDerive:
      os << std::get<DeriveStudyReport>(payload).result.ToString() << "\n";
      break;
    case StudyKind::kServe:
      os << ServeStudyToText(std::get<ServeStudyReport>(payload));
      break;
    case StudyKind::kServeSweep:
      os << ServeSweepToText(std::get<ServeSweepReport>(payload));
      break;
    case StudyKind::kFleetCompare:
      os << FleetCompareToText(std::get<FleetCompareReport>(payload));
      break;
  }
  return os.str();
}

Json RunReport::ToJson() const {
  Json j = Json::Object();
  j.Set("scenario", scenario_name).Set("study", litegpu::ToString(study)).Set("ok", ok);
  if (!ok) {
    j.Set("error", error);
    return j;
  }
  switch (study) {
    case StudyKind::kSearch:
      j.Set("report", SearchStudyToJson(std::get<SearchStudyReport>(payload)));
      break;
    case StudyKind::kFig3a:
    case StudyKind::kFig3b: {
      const auto& fig3 = std::get<Fig3StudyReport>(payload);
      j.Set("report", Fig3ToJson(fig3.entries, fig3.title));
      break;
    }
    case StudyKind::kDesign:
      j.Set("report", DesignStudyToJson(std::get<DesignStudyReport>(payload)));
      break;
    case StudyKind::kMcSim:
      j.Set("report", McSimStudyToJson(std::get<McSimStudyReport>(payload)));
      break;
    case StudyKind::kYield:
      j.Set("report", YieldStudyToJson(std::get<YieldStudyReport>(payload)));
      break;
    case StudyKind::kDerive:
      j.Set("report", std::get<DeriveStudyReport>(payload).result.ToJson());
      break;
    case StudyKind::kServe:
      j.Set("report", ServeStudyToJson(std::get<ServeStudyReport>(payload)));
      break;
    case StudyKind::kServeSweep:
      j.Set("report", ServeSweepToJson(std::get<ServeSweepReport>(payload)));
      break;
    case StudyKind::kFleetCompare:
      j.Set("report", FleetCompareToJson(std::get<FleetCompareReport>(payload)));
      break;
  }
  return j;
}

}  // namespace litegpu
