#include "src/core/scenario.h"

#include <algorithm>
#include <cmath>

#include "src/hw/catalog.h"

namespace litegpu {

std::string ToString(StudyKind kind) {
  switch (kind) {
    case StudyKind::kSearch:
      return "search";
    case StudyKind::kFig3a:
      return "fig3a";
    case StudyKind::kFig3b:
      return "fig3b";
    case StudyKind::kDesign:
      return "design";
    case StudyKind::kMcSim:
      return "mcsim";
    case StudyKind::kYield:
      return "yield";
    case StudyKind::kDerive:
      return "derive";
    case StudyKind::kServe:
      return "serve";
    case StudyKind::kServeSweep:
      return "serve-sweep";
  }
  return "unknown";
}

std::optional<StudyKind> ParseStudyKind(const std::string& name) {
  for (StudyKind kind : {StudyKind::kSearch, StudyKind::kFig3a, StudyKind::kFig3b,
                         StudyKind::kDesign, StudyKind::kMcSim, StudyKind::kYield,
                         StudyKind::kDerive, StudyKind::kServe, StudyKind::kServeSweep}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

namespace {

std::optional<YieldModel> ParseYieldModel(const std::string& name) {
  for (YieldModel model : {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                           YieldModel::kNegativeBinomial}) {
    if (name == ToString(model)) {
      return model;
    }
  }
  return std::nullopt;
}

bool UsesPerfSearch(StudyKind study) {
  return study == StudyKind::kSearch || study == StudyKind::kFig3a ||
         study == StudyKind::kFig3b || study == StudyKind::kDesign ||
         study == StudyKind::kServe || study == StudyKind::kServeSweep;
}

}  // namespace

std::vector<double> ExpandGridRange(double lo, double hi, double step) {
  std::vector<double> grid;
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(step) || step <= 0.0 ||
      hi < lo) {
    return grid;
  }
  // Integer stepping avoids accumulated float drift dropping the endpoint;
  // the epsilon admits hi itself when (hi - lo) is a near-exact multiple.
  // The cap keeps a degenerate step from expanding into a multi-GB vector
  // (or overflowing the int cast, which is UB); 1e6 points is far past any
  // sweep a study could run, so over-cap ranges report as an empty grid.
  double count_minus_one = (hi - lo) / step + 1e-9;
  if (count_minus_one >= 1e6) {
    return grid;
  }
  int count = static_cast<int>(count_minus_one) + 1;
  grid.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    grid.push_back(lo + i * step);
  }
  return grid;
}

ClassMixSummary SummarizeClassMix(const std::vector<RequestClass>& classes) {
  ClassMixSummary mix;
  double total_weight = 0.0;
  for (const RequestClass& cls : classes) {
    total_weight += cls.weight;
  }
  if (total_weight <= 0.0) {
    mix.shares.assign(classes.size(), 0.0);
    return mix;
  }
  mix.shares.reserve(classes.size());
  for (const RequestClass& cls : classes) {
    double share = cls.weight / total_weight;
    mix.shares.push_back(share);
    mix.mean_prompt_tokens += share * cls.prompt_tokens;
    mix.mean_output_tokens += share * cls.output_tokens;
  }
  return mix;
}

std::string ValidateRequestClasses(const std::vector<RequestClass>& classes,
                                   const std::string& where) {
  for (size_t i = 0; i < classes.size(); ++i) {
    const RequestClass& cls = classes[i];
    std::string label = where + ".classes[" + std::to_string(i) + "]";
    if (cls.name.empty()) {
      return label + " needs a non-empty name";
    }
    for (size_t j = 0; j < i; ++j) {
      if (classes[j].name == cls.name) {
        return where + ".classes has duplicate name '" + cls.name + "'";
      }
    }
    if (!(cls.weight > 0.0) || !std::isfinite(cls.weight)) {
      return label + " ('" + cls.name + "') weight must be positive and finite";
    }
    if (cls.prompt_tokens <= 0 || cls.output_tokens <= 0) {
      return label + " ('" + cls.name + "') prompt/output tokens must be positive";
    }
    if (cls.prompt_sigma < 0.0 || cls.output_sigma < 0.0 ||
        !std::isfinite(cls.prompt_sigma) || !std::isfinite(cls.output_sigma)) {
      return label + " ('" + cls.name + "') sigmas must be >= 0 and finite";
    }
    if (cls.ttft_slo_s < 0.0 || cls.tbt_slo_s < 0.0 || !std::isfinite(cls.ttft_slo_s) ||
        !std::isfinite(cls.tbt_slo_s)) {
      return label + " ('" + cls.name + "') SLOs must be >= 0 (0 = inherit) and finite";
    }
  }
  return "";
}

std::vector<double> ServeSweepKnobs::GridPoints() const {
  if (!rates.empty()) {
    return rates;
  }
  if (!loads.empty()) {
    return loads;
  }
  return ExpandGridRange(load_lo, load_hi, load_step);
}

std::vector<std::string> Scenario::ResolvedModels() const {
  if (!models.empty()) {
    return models;
  }
  switch (study) {
    case StudyKind::kMcSim:
    case StudyKind::kYield:
    case StudyKind::kDerive:
      return {};
    case StudyKind::kServe:
    case StudyKind::kServeSweep:
      // The serving simulations run one model end-to-end.
      return {Llama3_70B().name};
    default: {
      std::vector<std::string> names;
      for (const auto& m : CaseStudyModels()) {
        names.push_back(m.name);
      }
      return names;
    }
  }
}

std::vector<std::string> Scenario::ResolvedGpus() const {
  if (!gpus.empty()) {
    return gpus;
  }
  switch (study) {
    case StudyKind::kFig3a:
      return {H100().name, Lite().name, LiteNetBw().name, LiteNetBwFlops().name};
    case StudyKind::kFig3b:
      return {H100().name, Lite().name, LiteMemBw().name, LiteMemBwNetBw().name};
    case StudyKind::kDesign: {
      std::vector<std::string> names;
      for (const auto& g : Table1Configs()) {
        names.push_back(g.name);
      }
      return names;
    }
    case StudyKind::kSearch:
    case StudyKind::kMcSim:
    case StudyKind::kServe:
    case StudyKind::kServeSweep:
      return {H100().name};
    case StudyKind::kYield:
    case StudyKind::kDerive:
      return {};
  }
  return {};
}

SearchOptions Scenario::MakeSearchOptions() const {
  SearchOptions options;
  options.workload = workload;
  options.kv_policy = kv_policy;
  options.max_batch = max_batch;
  options.exec = exec;
  return options;
}

std::string Scenario::Validate() const {
  if (UsesPerfSearch(study)) {
    if (workload.prompt_tokens <= 0) {
      return "workload.prompt_tokens must be positive";
    }
    if (workload.output_tokens <= 0) {
      return "workload.output_tokens must be positive";
    }
    if (workload.ttft_slo_s <= 0.0) {
      return "workload.ttft_slo_s must be positive";
    }
    if (workload.tbt_slo_s <= 0.0) {
      return "workload.tbt_slo_s must be positive";
    }
    if (max_batch < 1) {
      return "max_batch must be >= 1";
    }
    for (const std::string& name : ResolvedModels()) {
      if (!FindModel(name)) {
        return "unknown model '" + name + "' (try `litegpu list`)";
      }
    }
  }
  if (study == StudyKind::kYield || study == StudyKind::kDerive) {
    // These studies read their own knob blocks; accepting models/gpus here
    // would silently ignore them (derive targets derive.base_gpu).
    if (!models.empty() || !gpus.empty()) {
      return "study '" + litegpu::ToString(study) + "' does not take models/gpus lists";
    }
  } else {
    std::vector<std::string> resolved = ResolvedGpus();
    if (resolved.empty()) {
      return "scenario needs at least one GPU";
    }
    for (const std::string& name : resolved) {
      if (!FindGpu(name)) {
        return "unknown GPU '" + name + "' (try `litegpu list`)";
      }
    }
    if ((study == StudyKind::kFig3a || study == StudyKind::kFig3b) &&
        std::find(resolved.begin(), resolved.end(), baseline_gpu) == resolved.end()) {
      return "baseline_gpu '" + baseline_gpu + "' is not in the scenario's GPU list";
    }
  }
  switch (study) {
    case StudyKind::kMcSim:
      if (!models.empty()) {
        return "study 'mcsim' does not take a models list";
      }
      if (gpus.size() > 1) {
        return "study 'mcsim' simulates exactly one GPU type (got " +
               std::to_string(gpus.size()) + ")";
      }
      if (mcsim.gpus_per_instance < 1 || mcsim.num_instances < 1) {
        return "mcsim instance shape must be positive";
      }
      if (mcsim.num_spares < 0) {
        return "mcsim.num_spares must be >= 0";
      }
      if (mcsim.sim_years <= 0.0) {
        return "mcsim.sim_years must be positive";
      }
      if (mcsim.num_trials < 1) {
        return "mcsim.num_trials must be >= 1";
      }
      break;
    case StudyKind::kYield:
      if (yield.die_area_mm2 <= 0.0) {
        return "yield.die_area_mm2 must be positive";
      }
      if (yield.defect_density_per_cm2 < 0.0) {
        return "yield.defect_density_per_cm2 must be >= 0";
      }
      if (yield.split < 1) {
        return "yield.split must be >= 1";
      }
      break;
    case StudyKind::kDerive:
      if (!FindGpu(derive.base_gpu)) {
        return "unknown derive.base_gpu '" + derive.base_gpu + "'";
      }
      if (derive.split < 1) {
        return "derive.split must be >= 1";
      }
      if (derive.mem_bw_multiplier <= 0.0 || derive.net_bw_multiplier <= 0.0 ||
          derive.overclock <= 0.0) {
        return "derive multipliers must be positive";
      }
      break;
    case StudyKind::kDesign:
      if (design.hbm_usd_per_gb < 0.0 || design.gpu_price_multiplier <= 0.0 ||
          design.amortization_years <= 0.0) {
        return "design economics knobs must be positive";
      }
      break;
    case StudyKind::kServe:
      if (ResolvedModels().size() != 1) {
        return "study 'serve' simulates exactly one model (got " +
               std::to_string(ResolvedModels().size()) + ")";
      }
      if (ResolvedGpus().size() != 1) {
        return "study 'serve' simulates exactly one GPU type (got " +
               std::to_string(ResolvedGpus().size()) + ")";
      }
      if (serve.load <= 0.0 && serve.arrival_rate_per_s <= 0.0) {
        return "serve needs a positive load fraction or arrival_rate_per_s";
      }
      if (serve.arrival_rate_per_s < 0.0) {
        return "serve.arrival_rate_per_s must be >= 0";
      }
      if (!std::isfinite(serve.load) || !std::isfinite(serve.arrival_rate_per_s)) {
        return "serve load/arrival_rate_per_s must be finite";
      }
      // NaN fails the > comparison, so non-finite horizons are rejected too
      // (a NaN/inf horizon would spin the workload generator forever).
      if (!(serve.horizon_s > 0.0) || !std::isfinite(serve.horizon_s)) {
        return "serve.horizon_s must be positive and finite";
      }
      if (serve.prefill_instances < 0) {
        return "serve.prefill_instances must be >= 0 (0 = auto-size)";
      }
      if (serve.decode_instances < 1) {
        return "serve.decode_instances must be >= 1";
      }
      if (serve.prompt_sigma < 0.0 || serve.output_sigma < 0.0) {
        return "serve length sigmas must be >= 0";
      }
      if (std::string problem = ValidateRequestClasses(serve.classes, "serve");
          !problem.empty()) {
        return problem;
      }
      break;
    case StudyKind::kServeSweep: {
      if (ResolvedModels().size() != 1) {
        return "study 'serve-sweep' simulates exactly one model (got " +
               std::to_string(ResolvedModels().size()) + ")";
      }
      if (ResolvedGpus().size() != 1) {
        return "study 'serve-sweep' simulates exactly one GPU type (got " +
               std::to_string(ResolvedGpus().size()) + ")";
      }
      if (sweep.loads.empty() && sweep.rates.empty() && sweep.load_step <= 0.0) {
        return "sweep.load_step must be positive";
      }
      std::vector<double> grid = sweep.GridPoints();
      if (grid.empty()) {
        return "sweep grid is empty (check loads/rates or load_lo:load_hi:load_step)";
      }
      for (double point : grid) {
        // NaN fails both comparisons, so it is rejected here too.
        if (!(point > 0.0) || !std::isfinite(point)) {
          return "sweep grid points must be positive and finite";
        }
      }
      if (!(sweep.horizon_s > 0.0) || !std::isfinite(sweep.horizon_s)) {
        return "sweep.horizon_s must be positive and finite";
      }
      if (sweep.prefill_instances < 0) {
        return "sweep.prefill_instances must be >= 0 (0 = auto-size)";
      }
      if (sweep.decode_instances < 1) {
        return "sweep.decode_instances must be >= 1";
      }
      if (sweep.prompt_sigma < 0.0 || sweep.output_sigma < 0.0) {
        return "sweep length sigmas must be >= 0";
      }
      if (std::string problem = ValidateRequestClasses(sweep.classes, "sweep");
          !problem.empty()) {
        return problem;
      }
      break;
    }
    default:
      break;
  }
  return "";
}

// --- JSON serialization -----------------------------------------------------

// The serve and sweep blocks (and the reports' config echo) share this.
// Only invoked for non-empty mixes, so classless scenarios serialize
// byte-identically to the pre-class format.
Json RequestClassesToJson(const std::vector<RequestClass>& classes) {
  Json arr = Json::Array();
  for (const RequestClass& cls : classes) {
    Json c = Json::Object();
    c.Set("name", cls.name)
        .Set("weight", cls.weight)
        .Set("prompt_tokens", cls.prompt_tokens)
        .Set("prompt_sigma", cls.prompt_sigma)
        .Set("output_tokens", cls.output_tokens)
        .Set("output_sigma", cls.output_sigma)
        .Set("ttft_slo_s", cls.ttft_slo_s)
        .Set("tbt_slo_s", cls.tbt_slo_s);
    arr.Append(std::move(c));
  }
  return arr;
}

Json ScenarioToJson(const Scenario& s) {
  Json j = Json::Object();
  if (!s.name.empty()) {
    j.Set("name", s.name);
  }
  j.Set("study", ToString(s.study));
  if (!s.models.empty()) {
    Json arr = Json::Array();
    for (const auto& m : s.models) {
      arr.Append(m);
    }
    j.Set("models", std::move(arr));
  }
  if (!s.gpus.empty()) {
    Json arr = Json::Array();
    for (const auto& g : s.gpus) {
      arr.Append(g);
    }
    j.Set("gpus", std::move(arr));
  }
  j.Set("baseline_gpu", s.baseline_gpu);

  Json workload = Json::Object();
  workload.Set("prompt_tokens", s.workload.prompt_tokens)
      .Set("output_tokens", s.workload.output_tokens)
      .Set("ttft_slo_s", s.workload.ttft_slo_s)
      .Set("tbt_slo_s", s.workload.tbt_slo_s)
      .Set("enforce_memory_capacity", s.workload.enforce_memory_capacity);
  j.Set("workload", std::move(workload));
  j.Set("kv_policy", ToString(s.kv_policy));
  j.Set("max_batch", s.max_batch);

  switch (s.study) {
    case StudyKind::kDesign: {
      Json design = Json::Object();
      design.Set("hbm_usd_per_gb", s.design.hbm_usd_per_gb)
          .Set("gpu_price_multiplier", s.design.gpu_price_multiplier)
          .Set("amortization_years", s.design.amortization_years)
          .Set("yield_model", ToString(s.design.yield_model));
      j.Set("design", std::move(design));
      break;
    }
    case StudyKind::kMcSim: {
      Json mcsim = Json::Object();
      mcsim.Set("gpus_per_instance", s.mcsim.gpus_per_instance)
          .Set("num_instances", s.mcsim.num_instances)
          .Set("num_spares", s.mcsim.num_spares)
          .Set("sim_years", s.mcsim.sim_years)
          .Set("seed", s.mcsim.seed)
          .Set("num_trials", s.mcsim.num_trials);
      j.Set("mcsim", std::move(mcsim));
      break;
    }
    case StudyKind::kYield: {
      Json yield = Json::Object();
      yield.Set("defect_density_per_cm2", s.yield.defect_density_per_cm2)
          .Set("cluster_alpha", s.yield.cluster_alpha)
          .Set("die_area_mm2", s.yield.die_area_mm2)
          .Set("split", s.yield.split);
      j.Set("yield", std::move(yield));
      break;
    }
    case StudyKind::kDerive: {
      Json derive = Json::Object();
      derive.Set("base_gpu", s.derive.base_gpu)
          .Set("split", s.derive.split)
          .Set("mem_bw_multiplier", s.derive.mem_bw_multiplier)
          .Set("net_bw_multiplier", s.derive.net_bw_multiplier)
          .Set("overclock", s.derive.overclock);
      j.Set("derive", std::move(derive));
      break;
    }
    case StudyKind::kServe: {
      Json serve = Json::Object();
      serve.Set("load", s.serve.load)
          .Set("arrival_rate_per_s", s.serve.arrival_rate_per_s)
          .Set("horizon_s", s.serve.horizon_s)
          .Set("prefill_instances", s.serve.prefill_instances)
          .Set("decode_instances", s.serve.decode_instances)
          .Set("prompt_sigma", s.serve.prompt_sigma)
          .Set("output_sigma", s.serve.output_sigma)
          .Set("seed", s.serve.seed);
      if (!s.serve.classes.empty()) {
        serve.Set("classes", RequestClassesToJson(s.serve.classes));
      }
      j.Set("serve", std::move(serve));
      break;
    }
    case StudyKind::kServeSweep: {
      Json sweep = Json::Object();
      if (!s.sweep.loads.empty()) {
        Json arr = Json::Array();
        for (double load : s.sweep.loads) {
          arr.Append(load);
        }
        sweep.Set("loads", std::move(arr));
      }
      if (!s.sweep.rates.empty()) {
        Json arr = Json::Array();
        for (double rate : s.sweep.rates) {
          arr.Append(rate);
        }
        sweep.Set("rates", std::move(arr));
      }
      sweep.Set("load_lo", s.sweep.load_lo)
          .Set("load_hi", s.sweep.load_hi)
          .Set("load_step", s.sweep.load_step)
          .Set("horizon_s", s.sweep.horizon_s)
          .Set("prefill_instances", s.sweep.prefill_instances)
          .Set("decode_instances", s.sweep.decode_instances)
          .Set("prompt_sigma", s.sweep.prompt_sigma)
          .Set("output_sigma", s.sweep.output_sigma)
          .Set("seed", s.sweep.seed);
      if (!s.sweep.classes.empty()) {
        sweep.Set("classes", RequestClassesToJson(s.sweep.classes));
      }
      j.Set("sweep", std::move(sweep));
      break;
    }
    default:
      break;
  }

  Json exec = Json::Object();
  exec.Set("threads", s.exec.threads);
  j.Set("exec", std::move(exec));
  return j;
}

namespace {

// Fails on keys outside `allowed`, so scenario-file typos surface instead of
// silently falling back to defaults (the same contract as
// Flags::UnknownFlagCheck on the CLI).
bool CheckKeys(const Json& obj, const std::vector<std::string>& allowed,
               const std::string& where, std::string* error) {
  for (const auto& member : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), member.first) == allowed.end()) {
      if (error != nullptr) {
        *error = "unknown key '" + member.first + "' in " + where;
      }
      return false;
    }
  }
  return true;
}

// Strict field readers: absent keys keep the caller's default, but a
// present key with the wrong JSON type is an error — a mistyped value must
// not silently fall back (same fail-loudly contract as CheckKeys).
bool TypeError(const std::string& key, const std::string& where, const char* expected,
               std::string* error) {
  if (error != nullptr) {
    *error = "'" + key + "' in " + where + " must be " + expected;
  }
  return false;
}

bool ReadDouble(const Json& obj, const std::string& key, const std::string& where,
                double& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsDouble();
  return true;
}

bool ReadInt(const Json& obj, const std::string& key, const std::string& where, int& out,
             std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsInt();
  return true;
}

bool ReadUint64(const Json& obj, const std::string& key, const std::string& where,
                uint64_t& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsUint64(out);
  return true;
}

bool ReadBool(const Json& obj, const std::string& key, const std::string& where, bool& out,
              std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kBool) {
    return TypeError(key, where, "true or false", error);
  }
  out = v->AsBool();
  return true;
}

bool ReadString(const Json& obj, const std::string& key, const std::string& where,
                std::string& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kString) {
    return TypeError(key, where, "a string", error);
  }
  out = v->AsString();
  return true;
}

bool ReadDoubleList(const Json& obj, const std::string& key, const std::string& where,
                    std::vector<double>& out, std::string* error) {
  const Json* arr = obj.Find(key);
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    return TypeError(key, where, "an array of numbers", error);
  }
  for (const Json& e : arr->elements()) {
    if (e.type() != Json::Type::kNumber) {
      return TypeError(key, where, "an array of numbers", error);
    }
    out.push_back(e.AsDouble());
  }
  return true;
}

// Strict reader for a `classes` array value: every entry must be an
// object, unknown or mistyped keys fail loudly like every other block.
bool ReadClassList(const Json& arr, const std::string& where,
                   std::vector<RequestClass>& out, std::string* error) {
  size_t index = 0;
  for (const Json& entry : arr.elements()) {
    std::string label = where + ".classes[" + std::to_string(index++) + "]";
    if (!entry.is_object()) {
      if (error != nullptr) {
        *error = label + " must be an object";
      }
      return false;
    }
    RequestClass cls;
    if (!CheckKeys(entry,
                   {"name", "weight", "prompt_tokens", "prompt_sigma", "output_tokens",
                    "output_sigma", "ttft_slo_s", "tbt_slo_s"},
                   label, error) ||
        !ReadString(entry, "name", label, cls.name, error) ||
        !ReadDouble(entry, "weight", label, cls.weight, error) ||
        !ReadInt(entry, "prompt_tokens", label, cls.prompt_tokens, error) ||
        !ReadDouble(entry, "prompt_sigma", label, cls.prompt_sigma, error) ||
        !ReadInt(entry, "output_tokens", label, cls.output_tokens, error) ||
        !ReadDouble(entry, "output_sigma", label, cls.output_sigma, error) ||
        !ReadDouble(entry, "ttft_slo_s", label, cls.ttft_slo_s, error) ||
        !ReadDouble(entry, "tbt_slo_s", label, cls.tbt_slo_s, error)) {
      return false;
    }
    out.push_back(std::move(cls));
  }
  return true;
}

// The in-scenario form: an optional "classes" key on the serve/sweep block.
bool ReadClasses(const Json& obj, const std::string& where,
                 std::vector<RequestClass>& out, std::string* error) {
  const Json* arr = obj.Find("classes");
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    return TypeError("classes", where, "an array of class objects", error);
  }
  return ReadClassList(*arr, where, out, error);
}

bool ReadNames(const Json& obj, const std::string& key, std::vector<std::string>& out,
               std::string* error) {
  const Json* arr = obj.Find(key);
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    if (error != nullptr) {
      *error = "'" + key + "' must be an array of names";
    }
    return false;
  }
  for (const Json& e : arr->elements()) {
    if (e.type() != Json::Type::kString) {
      if (error != nullptr) {
        *error = "'" + key + "' entries must be strings";
      }
      return false;
    }
    out.push_back(e.AsString());
  }
  return true;
}

}  // namespace

std::optional<Scenario> ScenarioFromJson(const Json& json, std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) {
      *error = "scenario must be a JSON object";
    }
    return std::nullopt;
  }
  if (!CheckKeys(json,
                 {"name", "study", "models", "gpus", "baseline_gpu", "workload",
                  "kv_policy", "max_batch", "design", "mcsim", "yield", "derive", "serve",
                  "sweep", "exec"},
                 "scenario", error)) {
    return std::nullopt;
  }

  Scenario s;
  if (!ReadString(json, "name", "scenario", s.name, error)) {
    return std::nullopt;
  }
  std::string study_name;
  if (!ReadString(json, "study", "scenario", study_name, error)) {
    return std::nullopt;
  }
  if (study_name.empty()) {
    if (error != nullptr) {
      *error = "scenario is missing required key 'study'";
    }
    return std::nullopt;
  }
  auto study = ParseStudyKind(study_name);
  if (!study) {
    if (error != nullptr) {
      *error = "unknown study '" + study_name +
               "' (expected search|fig3a|fig3b|design|mcsim|yield|derive|serve|serve-sweep)";
    }
    return std::nullopt;
  }
  s.study = *study;

  if (!ReadNames(json, "models", s.models, error) ||
      !ReadNames(json, "gpus", s.gpus, error) ||
      !ReadString(json, "baseline_gpu", "scenario", s.baseline_gpu, error)) {
    return std::nullopt;
  }

  if (const Json* workload = json.Find("workload")) {
    if (!CheckKeys(*workload,
                   {"prompt_tokens", "output_tokens", "ttft_slo_s", "tbt_slo_s",
                    "enforce_memory_capacity"},
                   "workload", error) ||
        !ReadInt(*workload, "prompt_tokens", "workload", s.workload.prompt_tokens, error) ||
        !ReadInt(*workload, "output_tokens", "workload", s.workload.output_tokens, error) ||
        !ReadDouble(*workload, "ttft_slo_s", "workload", s.workload.ttft_slo_s, error) ||
        !ReadDouble(*workload, "tbt_slo_s", "workload", s.workload.tbt_slo_s, error) ||
        !ReadBool(*workload, "enforce_memory_capacity", "workload",
                  s.workload.enforce_memory_capacity, error)) {
      return std::nullopt;
    }
  }

  if (const Json* policy = json.Find("kv_policy")) {
    auto parsed = ParseKvShardPolicy(policy->AsString());
    if (!parsed) {
      if (error != nullptr) {
        *error = "unknown kv_policy '" + policy->AsString() +
                 "' (expected replicate|ideal-shard)";
      }
      return std::nullopt;
    }
    s.kv_policy = *parsed;
  }
  if (!ReadInt(json, "max_batch", "scenario", s.max_batch, error)) {
    return std::nullopt;
  }

  if (const Json* design = json.Find("design")) {
    if (!CheckKeys(*design,
                   {"hbm_usd_per_gb", "gpu_price_multiplier", "amortization_years",
                    "yield_model"},
                   "design", error) ||
        !ReadDouble(*design, "hbm_usd_per_gb", "design", s.design.hbm_usd_per_gb, error) ||
        !ReadDouble(*design, "gpu_price_multiplier", "design",
                    s.design.gpu_price_multiplier, error) ||
        !ReadDouble(*design, "amortization_years", "design", s.design.amortization_years,
                    error)) {
      return std::nullopt;
    }
    if (const Json* ym = design->Find("yield_model")) {
      auto parsed = ParseYieldModel(ym->AsString());
      if (!parsed) {
        if (error != nullptr) {
          *error = "unknown yield_model '" + ym->AsString() + "'";
        }
        return std::nullopt;
      }
      s.design.yield_model = *parsed;
    }
  }

  if (const Json* mcsim = json.Find("mcsim")) {
    if (!CheckKeys(*mcsim,
                   {"gpus_per_instance", "num_instances", "num_spares", "sim_years",
                    "seed", "num_trials"},
                   "mcsim", error) ||
        !ReadInt(*mcsim, "gpus_per_instance", "mcsim", s.mcsim.gpus_per_instance, error) ||
        !ReadInt(*mcsim, "num_instances", "mcsim", s.mcsim.num_instances, error) ||
        !ReadInt(*mcsim, "num_spares", "mcsim", s.mcsim.num_spares, error) ||
        !ReadDouble(*mcsim, "sim_years", "mcsim", s.mcsim.sim_years, error) ||
        !ReadUint64(*mcsim, "seed", "mcsim", s.mcsim.seed, error) ||
        !ReadInt(*mcsim, "num_trials", "mcsim", s.mcsim.num_trials, error)) {
      return std::nullopt;
    }
  }

  if (const Json* yield = json.Find("yield")) {
    if (!CheckKeys(*yield,
                   {"defect_density_per_cm2", "cluster_alpha", "die_area_mm2", "split"},
                   "yield", error) ||
        !ReadDouble(*yield, "defect_density_per_cm2", "yield",
                    s.yield.defect_density_per_cm2, error) ||
        !ReadDouble(*yield, "cluster_alpha", "yield", s.yield.cluster_alpha, error) ||
        !ReadDouble(*yield, "die_area_mm2", "yield", s.yield.die_area_mm2, error) ||
        !ReadInt(*yield, "split", "yield", s.yield.split, error)) {
      return std::nullopt;
    }
  }

  if (const Json* derive = json.Find("derive")) {
    if (!CheckKeys(*derive,
                   {"base_gpu", "split", "mem_bw_multiplier", "net_bw_multiplier",
                    "overclock"},
                   "derive", error) ||
        !ReadString(*derive, "base_gpu", "derive", s.derive.base_gpu, error) ||
        !ReadInt(*derive, "split", "derive", s.derive.split, error) ||
        !ReadDouble(*derive, "mem_bw_multiplier", "derive", s.derive.mem_bw_multiplier,
                    error) ||
        !ReadDouble(*derive, "net_bw_multiplier", "derive", s.derive.net_bw_multiplier,
                    error) ||
        !ReadDouble(*derive, "overclock", "derive", s.derive.overclock, error)) {
      return std::nullopt;
    }
  }

  if (const Json* serve = json.Find("serve")) {
    if (!CheckKeys(*serve,
                   {"load", "arrival_rate_per_s", "horizon_s", "prefill_instances",
                    "decode_instances", "prompt_sigma", "output_sigma", "seed", "classes"},
                   "serve", error) ||
        !ReadDouble(*serve, "load", "serve", s.serve.load, error) ||
        !ReadDouble(*serve, "arrival_rate_per_s", "serve", s.serve.arrival_rate_per_s,
                    error) ||
        !ReadDouble(*serve, "horizon_s", "serve", s.serve.horizon_s, error) ||
        !ReadInt(*serve, "prefill_instances", "serve", s.serve.prefill_instances, error) ||
        !ReadInt(*serve, "decode_instances", "serve", s.serve.decode_instances, error) ||
        !ReadDouble(*serve, "prompt_sigma", "serve", s.serve.prompt_sigma, error) ||
        !ReadDouble(*serve, "output_sigma", "serve", s.serve.output_sigma, error) ||
        !ReadUint64(*serve, "seed", "serve", s.serve.seed, error) ||
        !ReadClasses(*serve, "serve", s.serve.classes, error)) {
      return std::nullopt;
    }
  }

  if (const Json* sweep = json.Find("sweep")) {
    if (!CheckKeys(*sweep,
                   {"loads", "rates", "load_lo", "load_hi", "load_step", "horizon_s",
                    "prefill_instances", "decode_instances", "prompt_sigma",
                    "output_sigma", "seed", "classes"},
                   "sweep", error) ||
        !ReadDoubleList(*sweep, "loads", "sweep", s.sweep.loads, error) ||
        !ReadDoubleList(*sweep, "rates", "sweep", s.sweep.rates, error) ||
        !ReadDouble(*sweep, "load_lo", "sweep", s.sweep.load_lo, error) ||
        !ReadDouble(*sweep, "load_hi", "sweep", s.sweep.load_hi, error) ||
        !ReadDouble(*sweep, "load_step", "sweep", s.sweep.load_step, error) ||
        !ReadDouble(*sweep, "horizon_s", "sweep", s.sweep.horizon_s, error) ||
        !ReadInt(*sweep, "prefill_instances", "sweep", s.sweep.prefill_instances, error) ||
        !ReadInt(*sweep, "decode_instances", "sweep", s.sweep.decode_instances, error) ||
        !ReadDouble(*sweep, "prompt_sigma", "sweep", s.sweep.prompt_sigma, error) ||
        !ReadDouble(*sweep, "output_sigma", "sweep", s.sweep.output_sigma, error) ||
        !ReadUint64(*sweep, "seed", "sweep", s.sweep.seed, error) ||
        !ReadClasses(*sweep, "sweep", s.sweep.classes, error)) {
      return std::nullopt;
    }
  }

  if (const Json* exec = json.Find("exec")) {
    if (!CheckKeys(*exec, {"threads"}, "exec", error) ||
        !ReadInt(*exec, "threads", "exec", s.exec.threads, error)) {
      return std::nullopt;
    }
  }
  return s;
}

std::optional<std::vector<RequestClass>> ParseRequestClasses(const Json& json,
                                                             std::string* error) {
  std::vector<RequestClass> classes;
  if (json.is_array()) {
    if (!ReadClassList(json, "classes", classes, error)) {
      return std::nullopt;
    }
    return classes;
  }
  if (json.is_object()) {
    if (!CheckKeys(json, {"classes"}, "class mix", error)) {
      return std::nullopt;
    }
    const Json* arr = json.Find("classes");
    if (arr == nullptr || !arr->is_array()) {
      if (error != nullptr) {
        *error = "class mix needs a 'classes' array";
      }
      return std::nullopt;
    }
    if (!ReadClassList(*arr, "classes", classes, error)) {
      return std::nullopt;
    }
    return classes;
  }
  if (error != nullptr) {
    *error = "class mix must be a JSON array or {\"classes\": [...]}";
  }
  return std::nullopt;
}

bool operator==(const Scenario& a, const Scenario& b) {
  return ScenarioToJson(a) == ScenarioToJson(b);
}

namespace {

// Accepts one scenario object, a top-level array, or {"scenarios": [...]}.
std::optional<std::vector<Scenario>> ScenariosFromJson(const Json& json,
                                                       std::string* error) {
  const Json* list = nullptr;
  if (json.is_array()) {
    list = &json;
  } else if (json.is_object() && json.Find("scenarios") != nullptr) {
    if (!CheckKeys(json, {"scenarios"}, "scenario batch", error)) {
      return std::nullopt;
    }
    list = json.Find("scenarios");
    if (!list->is_array()) {
      if (error != nullptr) {
        *error = "'scenarios' must be an array";
      }
      return std::nullopt;
    }
  }

  std::vector<Scenario> scenarios;
  if (list == nullptr) {
    auto one = ScenarioFromJson(json, error);
    if (!one) {
      return std::nullopt;
    }
    scenarios.push_back(std::move(*one));
  } else {
    for (const Json& entry : list->elements()) {
      auto one = ScenarioFromJson(entry, error);
      if (!one) {
        return std::nullopt;
      }
      scenarios.push_back(std::move(*one));
    }
  }
  if (scenarios.empty()) {
    if (error != nullptr) {
      *error = "no scenarios in input";
    }
    return std::nullopt;
  }
  return scenarios;
}

}  // namespace

std::optional<std::vector<Scenario>> ParseScenarios(const std::string& text,
                                                    std::string* error) {
  auto json = Json::Parse(text, error);
  if (!json) {
    return std::nullopt;
  }
  return ScenariosFromJson(*json, error);
}

std::optional<std::vector<Scenario>> LoadScenarioFile(const std::string& path,
                                                      std::string* error) {
  auto json = Json::ParseFile(path, error);
  if (!json) {
    return std::nullopt;
  }
  return ScenariosFromJson(*json, error);
}

// --- builder ----------------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::Name(const std::string& name) {
  scenario_.name = name;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Model(const std::string& model) {
  scenario_.models.push_back(model);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Gpu(const std::string& gpu) {
  scenario_.gpus.push_back(gpu);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Baseline(const std::string& gpu) {
  scenario_.baseline_gpu = gpu;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::PromptTokens(int n) {
  scenario_.workload.prompt_tokens = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::OutputTokens(int n) {
  scenario_.workload.output_tokens = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::TtftSlo(double seconds) {
  scenario_.workload.ttft_slo_s = seconds;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::TbtSlo(double seconds) {
  scenario_.workload.tbt_slo_s = seconds;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::EnforceMemoryCapacity(bool on) {
  scenario_.workload.enforce_memory_capacity = on;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::KvPolicy(KvShardPolicy policy) {
  scenario_.kv_policy = policy;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::MaxBatch(int n) {
  scenario_.max_batch = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Threads(int n) {
  scenario_.exec.threads = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Design(const DesignKnobs& knobs) {
  scenario_.design = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::McSim(const McSimKnobs& knobs) {
  scenario_.mcsim = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Yield(const YieldKnobs& knobs) {
  scenario_.yield = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Derive(const DeriveKnobs& knobs) {
  scenario_.derive = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Serve(const ServeKnobs& knobs) {
  scenario_.serve = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::ServeSweep(const ServeSweepKnobs& knobs) {
  scenario_.sweep = knobs;
  return *this;
}

std::optional<Scenario> ScenarioBuilder::Build(std::string* error) const {
  std::string problem = scenario_.Validate();
  if (!problem.empty()) {
    if (error != nullptr) {
      *error = problem;
    }
    return std::nullopt;
  }
  return scenario_;
}

}  // namespace litegpu
