#include "src/core/scenario.h"

#include <algorithm>
#include <cmath>

#include "src/hw/catalog.h"
#include "src/util/flags.h"

namespace litegpu {

std::string ToString(StudyKind kind) {
  switch (kind) {
    case StudyKind::kSearch:
      return "search";
    case StudyKind::kFig3a:
      return "fig3a";
    case StudyKind::kFig3b:
      return "fig3b";
    case StudyKind::kDesign:
      return "design";
    case StudyKind::kMcSim:
      return "mcsim";
    case StudyKind::kYield:
      return "yield";
    case StudyKind::kDerive:
      return "derive";
    case StudyKind::kServe:
      return "serve";
    case StudyKind::kServeSweep:
      return "serve-sweep";
    case StudyKind::kFleetCompare:
      return "fleet-compare";
  }
  return "unknown";
}

std::optional<StudyKind> ParseStudyKind(const std::string& name) {
  for (StudyKind kind : {StudyKind::kSearch, StudyKind::kFig3a, StudyKind::kFig3b,
                         StudyKind::kDesign, StudyKind::kMcSim, StudyKind::kYield,
                         StudyKind::kDerive, StudyKind::kServe, StudyKind::kServeSweep,
                         StudyKind::kFleetCompare}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string ToString(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kOnOff:
      return "onoff";
    case ArrivalKind::kTrace:
      return "trace";
  }
  return "unknown";
}

std::optional<ArrivalKind> ParseArrivalKind(const std::string& name) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kDiurnal,
                           ArrivalKind::kOnOff, ArrivalKind::kTrace}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string ToString(AutoscalerPolicy policy) {
  switch (policy) {
    case AutoscalerPolicy::kNone:
      return "none";
    case AutoscalerPolicy::kReactive:
      return "reactive";
    case AutoscalerPolicy::kPredictive:
      return "predictive";
  }
  return "unknown";
}

std::optional<AutoscalerPolicy> ParseAutoscalerPolicy(const std::string& name) {
  for (AutoscalerPolicy policy : {AutoscalerPolicy::kNone, AutoscalerPolicy::kReactive,
                                  AutoscalerPolicy::kPredictive}) {
    if (name == ToString(policy)) {
      return policy;
    }
  }
  return std::nullopt;
}

namespace {

std::optional<YieldModel> ParseYieldModel(const std::string& name) {
  for (YieldModel model : {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                           YieldModel::kNegativeBinomial}) {
    if (name == ToString(model)) {
      return model;
    }
  }
  return std::nullopt;
}

bool UsesPerfSearch(StudyKind study) {
  return study == StudyKind::kSearch || study == StudyKind::kFig3a ||
         study == StudyKind::kFig3b || study == StudyKind::kDesign ||
         study == StudyKind::kServe || study == StudyKind::kServeSweep ||
         study == StudyKind::kFleetCompare;
}

}  // namespace

std::vector<double> ExpandGridRange(double lo, double hi, double step) {
  std::vector<double> grid;
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(step) || step <= 0.0 ||
      hi < lo) {
    return grid;
  }
  // Integer stepping avoids accumulated float drift dropping the endpoint;
  // the epsilon admits hi itself when (hi - lo) is a near-exact multiple.
  // The cap keeps a degenerate step from expanding into a multi-GB vector
  // (or overflowing the int cast, which is UB); 1e6 points is far past any
  // sweep a study could run, so over-cap ranges report as an empty grid.
  double count_minus_one = (hi - lo) / step + 1e-9;
  if (count_minus_one >= 1e6) {
    return grid;
  }
  int count = static_cast<int>(count_minus_one) + 1;
  grid.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    grid.push_back(lo + i * step);
  }
  return grid;
}

ClassMixSummary SummarizeClassMix(const std::vector<RequestClass>& classes) {
  ClassMixSummary mix;
  double total_weight = 0.0;
  for (const RequestClass& cls : classes) {
    total_weight += cls.weight;
  }
  if (total_weight <= 0.0) {
    mix.shares.assign(classes.size(), 0.0);
    return mix;
  }
  mix.shares.reserve(classes.size());
  for (const RequestClass& cls : classes) {
    double share = cls.weight / total_weight;
    mix.shares.push_back(share);
    mix.mean_prompt_tokens += share * cls.prompt_tokens;
    mix.mean_output_tokens += share * cls.output_tokens;
  }
  return mix;
}

std::string ValidateRequestClasses(const std::vector<RequestClass>& classes,
                                   const std::string& where) {
  for (size_t i = 0; i < classes.size(); ++i) {
    const RequestClass& cls = classes[i];
    std::string label = where + ".classes[" + std::to_string(i) + "]";
    if (cls.name.empty()) {
      return label + " needs a non-empty name";
    }
    for (size_t j = 0; j < i; ++j) {
      if (classes[j].name == cls.name) {
        return where + ".classes has duplicate name '" + cls.name + "'";
      }
    }
    if (!(cls.weight > 0.0) || !std::isfinite(cls.weight)) {
      return label + " ('" + cls.name + "') weight must be positive and finite";
    }
    if (cls.prompt_tokens <= 0 || cls.output_tokens <= 0) {
      return label + " ('" + cls.name + "') prompt/output tokens must be positive";
    }
    if (cls.prompt_sigma < 0.0 || cls.output_sigma < 0.0 ||
        !std::isfinite(cls.prompt_sigma) || !std::isfinite(cls.output_sigma)) {
      return label + " ('" + cls.name + "') sigmas must be >= 0 and finite";
    }
    if (cls.ttft_slo_s < 0.0 || cls.tbt_slo_s < 0.0 || !std::isfinite(cls.ttft_slo_s) ||
        !std::isfinite(cls.tbt_slo_s)) {
      return label + " ('" + cls.name + "') SLOs must be >= 0 (0 = inherit) and finite";
    }
  }
  return "";
}

std::string ValidateArrivalProcess(const ArrivalProcess& process, const std::string& where) {
  const std::string& label = where;
  switch (process.kind) {
    case ArrivalKind::kPoisson:
      return "";
    case ArrivalKind::kDiurnal: {
      if (process.multipliers.empty()) {
        return label + ".multipliers must be a non-empty rate curve";
      }
      double peak = 0.0;
      for (double m : process.multipliers) {
        if (!(m >= 0.0) || !std::isfinite(m)) {
          return label + ".multipliers must be >= 0 and finite";
        }
        peak = std::max(peak, m);
      }
      if (peak <= 0.0) {
        return label + ".multipliers must contain at least one positive point";
      }
      if (process.period_s < 0.0 || !std::isfinite(process.period_s)) {
        return label + ".period_s must be >= 0 (0 = one period per horizon) and finite";
      }
      return "";
    }
    case ArrivalKind::kOnOff: {
      if (!(process.on_mean_s > 0.0) || !std::isfinite(process.on_mean_s) ||
          !(process.off_mean_s > 0.0) || !std::isfinite(process.off_mean_s)) {
        return label + " phase means (on_mean_s/off_mean_s) must be positive and finite";
      }
      if (!(process.on_multiplier >= 0.0) || !std::isfinite(process.on_multiplier) ||
          !(process.off_multiplier >= 0.0) || !std::isfinite(process.off_multiplier)) {
        return label + " phase multipliers must be >= 0 and finite";
      }
      if (process.on_multiplier <= 0.0 && process.off_multiplier <= 0.0) {
        return label + " needs a positive on_multiplier or off_multiplier";
      }
      return "";
    }
    case ArrivalKind::kTrace: {
      if (process.times_s.empty()) {
        return label + ".times_s must be a non-empty ascending list of arrival times";
      }
      double prev = 0.0;
      for (double t : process.times_s) {
        if (!(t >= 0.0) || !std::isfinite(t)) {
          return label + ".times_s must be >= 0 and finite";
        }
        if (t < prev) {
          return label + ".times_s must be ascending";
        }
        prev = t;
      }
      return "";
    }
  }
  return "";
}

std::string ValidateAutoscalerKnobs(const AutoscalerKnobs& knobs, const std::string& where) {
  if (!knobs.enabled()) {
    return "";
  }
  const std::string& label = where;
  if (!(knobs.interval_s > 0.0) || !std::isfinite(knobs.interval_s)) {
    return label + ".interval_s must be positive and finite";
  }
  if (knobs.delay_s < 0.0 || !std::isfinite(knobs.delay_s)) {
    return label + ".delay_s must be >= 0 and finite";
  }
  if (knobs.min_prefill_instances < 1 || knobs.min_decode_instances < 1) {
    return label + " min instance counts must be >= 1";
  }
  if (knobs.max_prefill_instances < knobs.min_prefill_instances ||
      knobs.max_decode_instances < knobs.min_decode_instances) {
    return label + " instance bounds need max >= min";
  }
  if (!(knobs.scale_up_backlog_s > 0.0) || !std::isfinite(knobs.scale_up_backlog_s)) {
    return label + ".scale_up_backlog_s must be positive and finite";
  }
  if (!(knobs.scale_up_utilization > 0.0) || !std::isfinite(knobs.scale_up_utilization)) {
    return label + ".scale_up_utilization must be positive and finite";
  }
  if (knobs.scale_down_utilization < 0.0 || !std::isfinite(knobs.scale_down_utilization)) {
    return label + ".scale_down_utilization must be >= 0 and finite";
  }
  if (knobs.scale_down_utilization >= knobs.scale_up_utilization) {
    return label + ".scale_down_utilization must be below scale_up_utilization";
  }
  if (!(knobs.forecast_window_s > 0.0) || !std::isfinite(knobs.forecast_window_s)) {
    return label + ".forecast_window_s must be positive and finite";
  }
  if (!(knobs.headroom > 0.0) || !std::isfinite(knobs.headroom)) {
    return label + ".headroom must be positive and finite";
  }
  return "";
}

std::string ValidateFaultKnobs(const FaultKnobs& knobs, const std::string& where) {
  // Validated even at afr 0: a disabled block with a nonsense MTTR is a
  // latent mistake that would only surface when someone turns faults on.
  if (knobs.afr < 0.0 || !std::isfinite(knobs.afr)) {
    return where + ".afr must be >= 0 and finite";
  }
  if (knobs.floor_afr < 0.0 || !std::isfinite(knobs.floor_afr)) {
    return where + ".floor_afr must be >= 0 and finite";
  }
  if (!(knobs.mttr_hours > 0.0) || !std::isfinite(knobs.mttr_hours)) {
    return where + ".mttr_hours must be positive and finite";
  }
  if (knobs.spare_activation_minutes < 0.0 ||
      !std::isfinite(knobs.spare_activation_minutes)) {
    return where + ".spare_activation_minutes must be >= 0 and finite";
  }
  if (knobs.hot_spares < 0) {
    return where + ".hot_spares must be >= 0";
  }
  if (knobs.hot_spares > 0 &&
      knobs.spare_activation_minutes >= knobs.mttr_hours * 60.0) {
    // Activation at or beyond the repair time silently degenerates to the
    // no-spare path (the spare never saves any downtime); reject it as a
    // latent mistake rather than letting the knob read as a no-op.
    return where + ".spare_activation_minutes must be < mttr_hours * 60 "
                   "(a slower-than-repair spare never activates)";
  }
  if (knobs.retry_budget < 0) {
    return where + ".retry_budget must be >= 0";
  }
  if (knobs.retry_policy == FaultRetryPolicy::kRetryWithBudget &&
      knobs.retry_budget < 1) {
    return where + ".retry_budget must be >= 1 under retry_with_budget";
  }
  if (!(knobs.target_attainment > 0.0) || knobs.target_attainment > 1.0) {
    return where + ".target_attainment must be in (0, 1]";
  }
  if (knobs.domain_gpus < 0.0 || !std::isfinite(knobs.domain_gpus)) {
    return where + ".domain_gpus must be >= 0 and finite";
  }
  if (knobs.domain_afr < 0.0 || !std::isfinite(knobs.domain_afr)) {
    return where + ".domain_afr must be >= 0 and finite";
  }
  if (knobs.domain_afr > 0.0 && !(knobs.domain_gpus > 0.0)) {
    return where + ".domain_afr requires domain_gpus > 0 (the domain size)";
  }
  if (knobs.domain_mttr_hours < 0.0 || !std::isfinite(knobs.domain_mttr_hours)) {
    return where + ".domain_mttr_hours must be >= 0 and finite (0 = inherit mttr_hours)";
  }
  if (knobs.degrade_afr < 0.0 || !std::isfinite(knobs.degrade_afr)) {
    return where + ".degrade_afr must be >= 0 and finite";
  }
  if (knobs.degrade_multiplier < 1.0 || !std::isfinite(knobs.degrade_multiplier)) {
    return where + ".degrade_multiplier must be >= 1 and finite";
  }
  if (knobs.degrade_minutes < 0.0 || !std::isfinite(knobs.degrade_minutes)) {
    return where + ".degrade_minutes must be >= 0 and finite";
  }
  if (knobs.degrade_afr > 0.0 &&
      (!(knobs.degrade_multiplier > 1.0) || !(knobs.degrade_minutes > 0.0))) {
    return where + ".degrade_afr requires degrade_multiplier > 1 and degrade_minutes > 0";
  }
  if (knobs.shed_queue_depth < 0) {
    return where + ".shed_queue_depth must be >= 0";
  }
  if (knobs.shed_ttft_deadline_s < 0.0 || !std::isfinite(knobs.shed_ttft_deadline_s)) {
    return where + ".shed_ttft_deadline_s must be >= 0 and finite";
  }
  return "";
}

namespace {

// The per-point knobs shared by the serve and sweep blocks validate once,
// here — `where` picks the block name in messages, keeping them identical
// to the pre-unification wording.
std::string ValidateServeCommonKnobs(const ServeCommonKnobs& knobs,
                                     const std::string& where) {
  // NaN fails the > comparison, so non-finite horizons are rejected too
  // (a NaN/inf horizon would spin the workload generator forever).
  if (!(knobs.horizon_s > 0.0) || !std::isfinite(knobs.horizon_s)) {
    return where + ".horizon_s must be positive and finite";
  }
  if (knobs.prefill_instances < 0) {
    return where + ".prefill_instances must be >= 0 (0 = auto-size)";
  }
  if (knobs.decode_instances < 1) {
    return where + ".decode_instances must be >= 1";
  }
  if (knobs.prompt_sigma < 0.0 || knobs.output_sigma < 0.0) {
    return where + " length sigmas must be >= 0";
  }
  if (std::string problem = ValidateArrivalProcess(knobs.arrival, where + ".arrival");
      !problem.empty()) {
    return problem;
  }
  if (std::string problem =
          ValidateAutoscalerKnobs(knobs.autoscaler, where + ".autoscaler");
      !problem.empty()) {
    return problem;
  }
  if (std::string problem = ValidateFaultKnobs(knobs.faults, where + ".faults");
      !problem.empty()) {
    return problem;
  }
  if (knobs.shards < 0 || knobs.shards > 1024) {
    return where + ".shards must be in [0, 1024]";
  }
  if (knobs.shards >= 2) {
    // Shards are independent replications of the same stationary process;
    // anything whose behavior depends on absolute time across the horizon
    // would be distorted by splitting it.
    if (knobs.autoscaler.enabled()) {
      return where + ".shards requires the autoscaler to be disabled";
    }
    if (knobs.faults.enabled()) {
      return where + ".shards requires faults to be disabled";
    }
    if (knobs.faults.shed_queue_depth > 0 || knobs.faults.shed_ttft_deadline_s > 0.0) {
      // Shedding reacts to the instantaneous queue depth, which splitting
      // the horizon would reset at every shard boundary.
      return where + ".shards requires load shedding to be disabled";
    }
    if (knobs.arrival.kind == ArrivalKind::kDiurnal ||
        knobs.arrival.kind == ArrivalKind::kTrace) {
      return where + ".shards requires a stationary arrival process (poisson or onoff)";
    }
  }
  return ValidateRequestClasses(knobs.classes, where);
}

}  // namespace

std::vector<double> ServeSweepKnobs::GridPoints() const {
  if (!rates.empty()) {
    return rates;
  }
  if (!loads.empty()) {
    return loads;
  }
  return ExpandGridRange(load_lo, load_hi, load_step);
}

std::vector<double> FleetKnobs::GridPoints() const {
  if (!loads.empty()) {
    return loads;
  }
  return ExpandGridRange(load_lo, load_hi, load_step);
}

std::vector<std::string> Scenario::ResolvedModels() const {
  if (!models.empty()) {
    return models;
  }
  switch (study) {
    case StudyKind::kMcSim:
    case StudyKind::kYield:
    case StudyKind::kDerive:
      return {};
    case StudyKind::kServe:
    case StudyKind::kServeSweep:
    case StudyKind::kFleetCompare:
      // The serving simulations run one model end-to-end.
      return {Llama3_70B().name};
    default: {
      std::vector<std::string> names;
      for (const auto& m : CaseStudyModels()) {
        names.push_back(m.name);
      }
      return names;
    }
  }
}

std::vector<std::string> Scenario::ResolvedGpus() const {
  if (!gpus.empty()) {
    return gpus;
  }
  switch (study) {
    case StudyKind::kFig3a:
      return {H100().name, Lite().name, LiteNetBw().name, LiteNetBwFlops().name};
    case StudyKind::kFig3b:
      return {H100().name, Lite().name, LiteMemBw().name, LiteMemBwNetBw().name};
    case StudyKind::kDesign: {
      std::vector<std::string> names;
      for (const auto& g : Table1Configs()) {
        names.push_back(g.name);
      }
      return names;
    }
    case StudyKind::kSearch:
    case StudyKind::kMcSim:
    case StudyKind::kServe:
    case StudyKind::kServeSweep:
      return {H100().name};
    case StudyKind::kFleetCompare: {
      // The candidates carry their own base parts; the resolved list is the
      // distinct bases, so the generic unknown-GPU check covers them.
      std::vector<std::string> names;
      for (const FleetCandidate& c : fleet.candidates) {
        if (std::find(names.begin(), names.end(), c.gpu) == names.end()) {
          names.push_back(c.gpu);
        }
      }
      return names;
    }
    case StudyKind::kYield:
    case StudyKind::kDerive:
      return {};
  }
  return {};
}

SearchOptions Scenario::MakeSearchOptions() const {
  SearchOptions options;
  options.workload = workload;
  options.kv_policy = kv_policy;
  options.max_batch = max_batch;
  options.exec = exec;
  return options;
}

std::string Scenario::Validate() const {
  if (UsesPerfSearch(study)) {
    if (workload.prompt_tokens <= 0) {
      return "workload.prompt_tokens must be positive";
    }
    if (workload.output_tokens <= 0) {
      return "workload.output_tokens must be positive";
    }
    if (workload.ttft_slo_s <= 0.0) {
      return "workload.ttft_slo_s must be positive";
    }
    if (workload.tbt_slo_s <= 0.0) {
      return "workload.tbt_slo_s must be positive";
    }
    if (max_batch < 1) {
      return "max_batch must be >= 1";
    }
    for (const std::string& name : ResolvedModels()) {
      if (!FindModel(name)) {
        return "unknown model '" + name + "' (try `litegpu list`)";
      }
    }
  }
  if (study == StudyKind::kYield || study == StudyKind::kDerive) {
    // These studies read their own knob blocks; accepting models/gpus here
    // would silently ignore them (derive targets derive.base_gpu).
    if (!models.empty() || !gpus.empty()) {
      return "study '" + litegpu::ToString(study) + "' does not take models/gpus lists";
    }
  } else {
    std::vector<std::string> resolved = ResolvedGpus();
    if (resolved.empty()) {
      return study == StudyKind::kFleetCompare
                 ? "fleet.candidates must be non-empty"
                 : "scenario needs at least one GPU";
    }
    for (const std::string& name : resolved) {
      if (!FindGpu(name)) {
        return "unknown GPU '" + name + "' (try `litegpu list`)";
      }
    }
    if ((study == StudyKind::kFig3a || study == StudyKind::kFig3b) &&
        std::find(resolved.begin(), resolved.end(), baseline_gpu) == resolved.end()) {
      return "baseline_gpu '" + baseline_gpu + "' is not in the scenario's GPU list";
    }
  }
  switch (study) {
    case StudyKind::kMcSim:
      if (!models.empty()) {
        return "study 'mcsim' does not take a models list";
      }
      if (gpus.size() > 1) {
        return "study 'mcsim' simulates exactly one GPU type (got " +
               std::to_string(gpus.size()) + ")";
      }
      if (mcsim.gpus_per_instance < 1 || mcsim.num_instances < 1) {
        return "mcsim instance shape must be positive";
      }
      if (mcsim.num_spares < 0) {
        return "mcsim.num_spares must be >= 0";
      }
      if (mcsim.sim_years <= 0.0) {
        return "mcsim.sim_years must be positive";
      }
      if (mcsim.num_trials < 1) {
        return "mcsim.num_trials must be >= 1";
      }
      break;
    case StudyKind::kYield:
      if (yield.die_area_mm2 <= 0.0) {
        return "yield.die_area_mm2 must be positive";
      }
      if (yield.defect_density_per_cm2 < 0.0) {
        return "yield.defect_density_per_cm2 must be >= 0";
      }
      if (yield.split < 1) {
        return "yield.split must be >= 1";
      }
      break;
    case StudyKind::kDerive:
      if (!FindGpu(derive.base_gpu)) {
        return "unknown derive.base_gpu '" + derive.base_gpu + "'";
      }
      if (derive.split < 1) {
        return "derive.split must be >= 1";
      }
      if (derive.mem_bw_multiplier <= 0.0 || derive.net_bw_multiplier <= 0.0 ||
          derive.overclock <= 0.0) {
        return "derive multipliers must be positive";
      }
      break;
    case StudyKind::kDesign:
      if (design.hbm_usd_per_gb < 0.0 || design.gpu_price_multiplier <= 0.0 ||
          design.amortization_years <= 0.0) {
        return "design economics knobs must be positive";
      }
      break;
    case StudyKind::kServe:
      if (ResolvedModels().size() != 1) {
        return "study 'serve' simulates exactly one model (got " +
               std::to_string(ResolvedModels().size()) + ")";
      }
      if (ResolvedGpus().size() != 1) {
        return "study 'serve' simulates exactly one GPU type (got " +
               std::to_string(ResolvedGpus().size()) + ")";
      }
      if (serve.load <= 0.0 && serve.arrival_rate_per_s <= 0.0 &&
          serve.arrival.kind != ArrivalKind::kTrace) {
        // A trace needs neither: the recorded times fix the offered rate.
        return "serve needs a positive load fraction or arrival_rate_per_s";
      }
      if (serve.arrival_rate_per_s < 0.0) {
        return "serve.arrival_rate_per_s must be >= 0";
      }
      if (!std::isfinite(serve.load) || !std::isfinite(serve.arrival_rate_per_s)) {
        return "serve load/arrival_rate_per_s must be finite";
      }
      if (std::string problem = ValidateServeCommonKnobs(serve, "serve");
          !problem.empty()) {
        return problem;
      }
      break;
    case StudyKind::kServeSweep: {
      if (ResolvedModels().size() != 1) {
        return "study 'serve-sweep' simulates exactly one model (got " +
               std::to_string(ResolvedModels().size()) + ")";
      }
      if (ResolvedGpus().size() != 1) {
        return "study 'serve-sweep' simulates exactly one GPU type (got " +
               std::to_string(ResolvedGpus().size()) + ")";
      }
      if (sweep.loads.empty() && sweep.rates.empty() && sweep.load_step <= 0.0) {
        return "sweep.load_step must be positive";
      }
      std::vector<double> grid = sweep.GridPoints();
      if (grid.empty()) {
        return "sweep grid is empty (check loads/rates or load_lo:load_hi:load_step)";
      }
      for (double point : grid) {
        // NaN fails both comparisons, so it is rejected here too.
        if (!(point > 0.0) || !std::isfinite(point)) {
          return "sweep grid points must be positive and finite";
        }
      }
      if (sweep.arrival.kind == ArrivalKind::kTrace) {
        // The trace fixes the offered rate, so there is nothing to sweep.
        return "sweep.arrival.kind 'trace' is not supported (use study 'serve')";
      }
      if (std::string problem = ValidateServeCommonKnobs(sweep, "sweep");
          !problem.empty()) {
        return problem;
      }
      break;
    }
    case StudyKind::kFleetCompare: {
      if (ResolvedModels().size() != 1) {
        return "study 'fleet-compare' simulates exactly one model (got " +
               std::to_string(ResolvedModels().size()) + ")";
      }
      if (!gpus.empty()) {
        return "study 'fleet-compare' takes its GPUs from fleet.candidates "
               "(drop the gpus list)";
      }
      std::vector<std::string> seen;
      for (size_t i = 0; i < fleet.candidates.size(); ++i) {
        const FleetCandidate& c = fleet.candidates[i];
        std::string label = "fleet.candidates[" + std::to_string(i) + "]";
        if (c.name.empty()) {
          return label + ".name must be non-empty";
        }
        if (std::find(seen.begin(), seen.end(), c.name) != seen.end()) {
          // Names seed the per-candidate RNG streams, so duplicates would
          // silently alias two candidates onto the same points.
          return "duplicate fleet candidate name '" + c.name + "'";
        }
        seen.push_back(c.name);
        if (c.split < 1) {
          return label + ".split must be >= 1";
        }
        if (c.mem_bw_multiplier <= 0.0 || c.net_bw_multiplier <= 0.0 ||
            c.overclock <= 0.0) {
          return label + " multipliers must be positive";
        }
        if (c.prefill_instances < 0) {
          return label + ".prefill_instances must be >= 0";
        }
        if (c.decode_instances < 1) {
          return label + ".decode_instances must be >= 1";
        }
      }
      if (fleet.loads.empty() && fleet.load_step <= 0.0) {
        return "fleet.load_step must be positive";
      }
      std::vector<double> grid = fleet.GridPoints();
      if (grid.empty()) {
        return "fleet grid is empty (check loads or load_lo:load_hi:load_step)";
      }
      for (double point : grid) {
        if (!(point > 0.0) || !std::isfinite(point)) {
          return "fleet grid points must be positive and finite";
        }
      }
      if (fleet.horizon_s <= 0.0) {
        return "fleet.horizon_s must be positive";
      }
      if (fleet.prompt_sigma < 0.0 || fleet.output_sigma < 0.0) {
        return "fleet sigmas must be >= 0";
      }
      if (fleet.hbm_usd_per_gb < 0.0 || fleet.gpu_price_multiplier <= 0.0) {
        return "fleet economics knobs must be positive";
      }
      if (fleet.depreciation_months <= 0.0) {
        return "fleet.depreciation_months must be positive";
      }
      if (fleet.electricity_usd_per_kwh < 0.0) {
        return "fleet.electricity_usd_per_kwh must be >= 0";
      }
      if (fleet.gpu_utilization <= 0.0 || fleet.gpu_utilization > 1.0) {
        return "fleet.gpu_utilization must be in (0, 1]";
      }
      break;
    }
    default:
      break;
  }
  return "";
}

// --- JSON serialization -----------------------------------------------------

// The serve and sweep blocks (and the reports' config echo) share this.
// Only invoked for non-empty mixes, so classless scenarios serialize
// byte-identically to the pre-class format.
Json RequestClassesToJson(const std::vector<RequestClass>& classes) {
  Json arr = Json::Array();
  for (const RequestClass& cls : classes) {
    Json c = Json::Object();
    c.Set("name", cls.name)
        .Set("weight", cls.weight)
        .Set("prompt_tokens", cls.prompt_tokens)
        .Set("prompt_sigma", cls.prompt_sigma)
        .Set("output_tokens", cls.output_tokens)
        .Set("output_sigma", cls.output_sigma)
        .Set("ttft_slo_s", cls.ttft_slo_s)
        .Set("tbt_slo_s", cls.tbt_slo_s);
    arr.Append(std::move(c));
  }
  return arr;
}

Json ArrivalProcessToJson(const ArrivalProcess& process) {
  Json j = Json::Object();
  j.Set("kind", ToString(process.kind));
  switch (process.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kDiurnal: {
      j.Set("period_s", process.period_s);
      Json arr = Json::Array();
      for (double m : process.multipliers) {
        arr.Append(m);
      }
      j.Set("multipliers", std::move(arr));
      break;
    }
    case ArrivalKind::kOnOff:
      j.Set("on_mean_s", process.on_mean_s)
          .Set("off_mean_s", process.off_mean_s)
          .Set("on_multiplier", process.on_multiplier)
          .Set("off_multiplier", process.off_multiplier);
      break;
    case ArrivalKind::kTrace: {
      Json arr = Json::Array();
      for (double t : process.times_s) {
        arr.Append(t);
      }
      j.Set("times_s", std::move(arr));
      break;
    }
  }
  return j;
}

Json AutoscalerKnobsToJson(const AutoscalerKnobs& knobs) {
  Json j = Json::Object();
  j.Set("policy", ToString(knobs.policy))
      .Set("interval_s", knobs.interval_s)
      .Set("delay_s", knobs.delay_s)
      .Set("min_prefill_instances", knobs.min_prefill_instances)
      .Set("max_prefill_instances", knobs.max_prefill_instances)
      .Set("min_decode_instances", knobs.min_decode_instances)
      .Set("max_decode_instances", knobs.max_decode_instances)
      .Set("scale_up_backlog_s", knobs.scale_up_backlog_s)
      .Set("scale_up_utilization", knobs.scale_up_utilization)
      .Set("scale_down_utilization", knobs.scale_down_utilization)
      .Set("forecast_window_s", knobs.forecast_window_s)
      .Set("headroom", knobs.headroom);
  return j;
}

Json FaultKnobsToJson(const FaultKnobs& knobs) {
  const FaultKnobs defaults;
  Json j = Json::Object();
  j.Set("afr", knobs.afr)
      .Set("floor_afr", knobs.floor_afr)
      .Set("mttr_hours", knobs.mttr_hours)
      .Set("spare_activation_minutes", knobs.spare_activation_minutes)
      .Set("hot_spares", knobs.hot_spares)
      .Set("retry_policy", ToString(knobs.retry_policy))
      .Set("retry_budget", knobs.retry_budget)
      .Set("target_attainment", knobs.target_attainment);
  // Post-domain keys emit only when set: a pre-domain faults block (and
  // every report echoing one) serializes byte-identically to before the
  // keys existed.
  if (knobs.domain_gpus != defaults.domain_gpus) {
    j.Set("domain_gpus", knobs.domain_gpus);
  }
  if (knobs.domain_afr != defaults.domain_afr) {
    j.Set("domain_afr", knobs.domain_afr);
  }
  if (knobs.domain_mttr_hours != defaults.domain_mttr_hours) {
    j.Set("domain_mttr_hours", knobs.domain_mttr_hours);
  }
  if (knobs.degrade_afr != defaults.degrade_afr) {
    j.Set("degrade_afr", knobs.degrade_afr);
  }
  if (knobs.degrade_multiplier != defaults.degrade_multiplier) {
    j.Set("degrade_multiplier", knobs.degrade_multiplier);
  }
  if (knobs.degrade_minutes != defaults.degrade_minutes) {
    j.Set("degrade_minutes", knobs.degrade_minutes);
  }
  if (knobs.shed_queue_depth != defaults.shed_queue_depth) {
    j.Set("shed_queue_depth", knobs.shed_queue_depth);
  }
  if (knobs.shed_ttft_deadline_s != defaults.shed_ttft_deadline_s) {
    j.Set("shed_ttft_deadline_s", knobs.shed_ttft_deadline_s);
  }
  return j;
}

// Compared field-by-field — not merely enabled() — so an afr-0 block with,
// say, hot spares set still round-trips instead of silently vanishing.
bool FaultKnobsAreDefault(const FaultKnobs& knobs) {
  const FaultKnobs defaults;
  return knobs.afr == defaults.afr && knobs.floor_afr == defaults.floor_afr &&
         knobs.mttr_hours == defaults.mttr_hours &&
         knobs.spare_activation_minutes == defaults.spare_activation_minutes &&
         knobs.hot_spares == defaults.hot_spares &&
         knobs.retry_policy == defaults.retry_policy &&
         knobs.retry_budget == defaults.retry_budget &&
         knobs.target_attainment == defaults.target_attainment &&
         knobs.domain_gpus == defaults.domain_gpus &&
         knobs.domain_afr == defaults.domain_afr &&
         knobs.domain_mttr_hours == defaults.domain_mttr_hours &&
         knobs.degrade_afr == defaults.degrade_afr &&
         knobs.degrade_multiplier == defaults.degrade_multiplier &&
         knobs.degrade_minutes == defaults.degrade_minutes &&
         knobs.shed_queue_depth == defaults.shed_queue_depth &&
         knobs.shed_ttft_deadline_s == defaults.shed_ttft_deadline_s;
}

Json FleetKnobsToJson(const FleetKnobs& knobs) {
  Json fleet = Json::Object();
  Json cands = Json::Array();
  for (const FleetCandidate& c : knobs.candidates) {
    Json cand = Json::Object();
    cand.Set("name", c.name)
        .Set("gpu", c.gpu)
        .Set("split", c.split)
        .Set("mem_bw_multiplier", c.mem_bw_multiplier)
        .Set("net_bw_multiplier", c.net_bw_multiplier)
        .Set("overclock", c.overclock)
        .Set("prefill_instances", c.prefill_instances)
        .Set("decode_instances", c.decode_instances);
    cands.Append(std::move(cand));
  }
  fleet.Set("candidates", std::move(cands));
  if (!knobs.loads.empty()) {
    Json arr = Json::Array();
    for (double load : knobs.loads) {
      arr.Append(load);
    }
    fleet.Set("loads", std::move(arr));
  }
  fleet.Set("load_lo", knobs.load_lo)
      .Set("load_hi", knobs.load_hi)
      .Set("load_step", knobs.load_step)
      .Set("horizon_s", knobs.horizon_s)
      .Set("prompt_sigma", knobs.prompt_sigma)
      .Set("output_sigma", knobs.output_sigma)
      .Set("seed", knobs.seed)
      .Set("hbm_usd_per_gb", knobs.hbm_usd_per_gb)
      .Set("gpu_price_multiplier", knobs.gpu_price_multiplier)
      .Set("depreciation_months", knobs.depreciation_months)
      .Set("electricity_usd_per_kwh", knobs.electricity_usd_per_kwh)
      .Set("gpu_utilization", knobs.gpu_utilization);
  return fleet;
}

namespace {

// The shared tail of the serve/sweep blocks. Key order matches the
// pre-unification writers exactly; the new `arrival`/`autoscaler` keys are
// emitted only when non-default, so pre-existing scenarios (and report
// config echoes) serialize byte-identically.
void WriteServeCommonKnobs(Json& block, const ServeCommonKnobs& knobs) {
  block.Set("horizon_s", knobs.horizon_s)
      .Set("prefill_instances", knobs.prefill_instances)
      .Set("decode_instances", knobs.decode_instances)
      .Set("prompt_sigma", knobs.prompt_sigma)
      .Set("output_sigma", knobs.output_sigma)
      .Set("seed", knobs.seed);
  if (knobs.arrival.kind != ArrivalKind::kPoisson) {
    block.Set("arrival", ArrivalProcessToJson(knobs.arrival));
  }
  if (knobs.autoscaler.enabled()) {
    block.Set("autoscaler", AutoscalerKnobsToJson(knobs.autoscaler));
  }
  if (!FaultKnobsAreDefault(knobs.faults)) {
    block.Set("faults", FaultKnobsToJson(knobs.faults));
  }
  if (!knobs.classes.empty()) {
    block.Set("classes", RequestClassesToJson(knobs.classes));
  }
  if (knobs.shards >= 2) {
    block.Set("shards", knobs.shards);
  }
}

}  // namespace

Json ScenarioToJson(const Scenario& s) {
  Json j = Json::Object();
  if (!s.name.empty()) {
    j.Set("name", s.name);
  }
  j.Set("study", ToString(s.study));
  if (!s.models.empty()) {
    Json arr = Json::Array();
    for (const auto& m : s.models) {
      arr.Append(m);
    }
    j.Set("models", std::move(arr));
  }
  if (!s.gpus.empty()) {
    Json arr = Json::Array();
    for (const auto& g : s.gpus) {
      arr.Append(g);
    }
    j.Set("gpus", std::move(arr));
  }
  j.Set("baseline_gpu", s.baseline_gpu);

  Json workload = Json::Object();
  workload.Set("prompt_tokens", s.workload.prompt_tokens)
      .Set("output_tokens", s.workload.output_tokens)
      .Set("ttft_slo_s", s.workload.ttft_slo_s)
      .Set("tbt_slo_s", s.workload.tbt_slo_s)
      .Set("enforce_memory_capacity", s.workload.enforce_memory_capacity);
  j.Set("workload", std::move(workload));
  j.Set("kv_policy", ToString(s.kv_policy));
  j.Set("max_batch", s.max_batch);

  switch (s.study) {
    case StudyKind::kDesign: {
      Json design = Json::Object();
      design.Set("hbm_usd_per_gb", s.design.hbm_usd_per_gb)
          .Set("gpu_price_multiplier", s.design.gpu_price_multiplier)
          .Set("amortization_years", s.design.amortization_years)
          .Set("yield_model", ToString(s.design.yield_model));
      j.Set("design", std::move(design));
      break;
    }
    case StudyKind::kMcSim: {
      Json mcsim = Json::Object();
      mcsim.Set("gpus_per_instance", s.mcsim.gpus_per_instance)
          .Set("num_instances", s.mcsim.num_instances)
          .Set("num_spares", s.mcsim.num_spares)
          .Set("sim_years", s.mcsim.sim_years)
          .Set("seed", s.mcsim.seed)
          .Set("num_trials", s.mcsim.num_trials);
      j.Set("mcsim", std::move(mcsim));
      break;
    }
    case StudyKind::kYield: {
      Json yield = Json::Object();
      yield.Set("defect_density_per_cm2", s.yield.defect_density_per_cm2)
          .Set("cluster_alpha", s.yield.cluster_alpha)
          .Set("die_area_mm2", s.yield.die_area_mm2)
          .Set("split", s.yield.split);
      j.Set("yield", std::move(yield));
      break;
    }
    case StudyKind::kDerive: {
      Json derive = Json::Object();
      derive.Set("base_gpu", s.derive.base_gpu)
          .Set("split", s.derive.split)
          .Set("mem_bw_multiplier", s.derive.mem_bw_multiplier)
          .Set("net_bw_multiplier", s.derive.net_bw_multiplier)
          .Set("overclock", s.derive.overclock);
      j.Set("derive", std::move(derive));
      break;
    }
    case StudyKind::kServe: {
      Json serve = Json::Object();
      serve.Set("load", s.serve.load)
          .Set("arrival_rate_per_s", s.serve.arrival_rate_per_s);
      WriteServeCommonKnobs(serve, s.serve);
      j.Set("serve", std::move(serve));
      break;
    }
    case StudyKind::kServeSweep: {
      Json sweep = Json::Object();
      if (!s.sweep.loads.empty()) {
        Json arr = Json::Array();
        for (double load : s.sweep.loads) {
          arr.Append(load);
        }
        sweep.Set("loads", std::move(arr));
      }
      if (!s.sweep.rates.empty()) {
        Json arr = Json::Array();
        for (double rate : s.sweep.rates) {
          arr.Append(rate);
        }
        sweep.Set("rates", std::move(arr));
      }
      sweep.Set("load_lo", s.sweep.load_lo)
          .Set("load_hi", s.sweep.load_hi)
          .Set("load_step", s.sweep.load_step);
      WriteServeCommonKnobs(sweep, s.sweep);
      j.Set("sweep", std::move(sweep));
      break;
    }
    case StudyKind::kFleetCompare:
      j.Set("fleet", FleetKnobsToJson(s.fleet));
      break;
    default:
      break;
  }

  Json exec = Json::Object();
  exec.Set("threads", s.exec.threads);
  j.Set("exec", std::move(exec));
  return j;
}

namespace {

// Fails on keys outside `allowed`, so scenario-file typos surface instead of
// silently falling back to defaults (the same contract as
// Flags::UnknownFlagCheck on the CLI).
bool CheckKeys(const Json& obj, const std::vector<std::string>& allowed,
               const std::string& where, std::string* error) {
  for (const auto& member : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), member.first) == allowed.end()) {
      if (error != nullptr) {
        *error = "unknown key '" + member.first + "' in " + where;
      }
      return false;
    }
  }
  return true;
}

// CheckKeys plus a did-you-mean hint for near-miss spellings, the same
// treatment unknown CLI flags get. The fleet block uses it; the older
// blocks keep CheckKeys so their pinned error strings stay stable.
bool CheckKeysSuggest(const Json& obj, const std::vector<std::string>& allowed,
                      const std::string& where, std::string* error) {
  for (const auto& member : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), member.first) == allowed.end()) {
      if (error != nullptr) {
        *error = "unknown key '" + member.first + "' in " + where;
        std::string best = ClosestCandidate(member.first, allowed);
        if (!best.empty()) {
          *error += " (did you mean '" + best + "'?)";
        }
      }
      return false;
    }
  }
  return true;
}

// Strict field readers: absent keys keep the caller's default, but a
// present key with the wrong JSON type is an error — a mistyped value must
// not silently fall back (same fail-loudly contract as CheckKeys).
bool TypeError(const std::string& key, const std::string& where, const char* expected,
               std::string* error) {
  if (error != nullptr) {
    *error = "'" + key + "' in " + where + " must be " + expected;
  }
  return false;
}

bool ReadDouble(const Json& obj, const std::string& key, const std::string& where,
                double& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsDouble();
  return true;
}

bool ReadInt(const Json& obj, const std::string& key, const std::string& where, int& out,
             std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsInt();
  return true;
}

bool ReadUint64(const Json& obj, const std::string& key, const std::string& where,
                uint64_t& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kNumber) {
    return TypeError(key, where, "a number", error);
  }
  out = v->AsUint64(out);
  return true;
}

bool ReadBool(const Json& obj, const std::string& key, const std::string& where, bool& out,
              std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kBool) {
    return TypeError(key, where, "true or false", error);
  }
  out = v->AsBool();
  return true;
}

bool ReadString(const Json& obj, const std::string& key, const std::string& where,
                std::string& out, std::string* error) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return true;
  }
  if (v->type() != Json::Type::kString) {
    return TypeError(key, where, "a string", error);
  }
  out = v->AsString();
  return true;
}

bool ReadDoubleList(const Json& obj, const std::string& key, const std::string& where,
                    std::vector<double>& out, std::string* error) {
  const Json* arr = obj.Find(key);
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    return TypeError(key, where, "an array of numbers", error);
  }
  for (const Json& e : arr->elements()) {
    if (e.type() != Json::Type::kNumber) {
      return TypeError(key, where, "an array of numbers", error);
    }
    out.push_back(e.AsDouble());
  }
  return true;
}

// Strict reader for a `classes` array value: every entry must be an
// object, unknown or mistyped keys fail loudly like every other block.
bool ReadClassList(const Json& arr, const std::string& where,
                   std::vector<RequestClass>& out, std::string* error) {
  size_t index = 0;
  for (const Json& entry : arr.elements()) {
    std::string label = where + ".classes[" + std::to_string(index++) + "]";
    if (!entry.is_object()) {
      if (error != nullptr) {
        *error = label + " must be an object";
      }
      return false;
    }
    RequestClass cls;
    if (!CheckKeys(entry,
                   {"name", "weight", "prompt_tokens", "prompt_sigma", "output_tokens",
                    "output_sigma", "ttft_slo_s", "tbt_slo_s"},
                   label, error) ||
        !ReadString(entry, "name", label, cls.name, error) ||
        !ReadDouble(entry, "weight", label, cls.weight, error) ||
        !ReadInt(entry, "prompt_tokens", label, cls.prompt_tokens, error) ||
        !ReadDouble(entry, "prompt_sigma", label, cls.prompt_sigma, error) ||
        !ReadInt(entry, "output_tokens", label, cls.output_tokens, error) ||
        !ReadDouble(entry, "output_sigma", label, cls.output_sigma, error) ||
        !ReadDouble(entry, "ttft_slo_s", label, cls.ttft_slo_s, error) ||
        !ReadDouble(entry, "tbt_slo_s", label, cls.tbt_slo_s, error)) {
      return false;
    }
    out.push_back(std::move(cls));
  }
  return true;
}

// The in-scenario form: an optional "classes" key on the serve/sweep block.
bool ReadClasses(const Json& obj, const std::string& where,
                 std::vector<RequestClass>& out, std::string* error) {
  const Json* arr = obj.Find("classes");
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    return TypeError("classes", where, "an array of class objects", error);
  }
  return ReadClassList(*arr, where, out, error);
}

// Strict reader for an arrival-process object: a tagged union on `kind`.
// Each kind accepts only its own keys, and an unknown kind fails with a
// did-you-mean hint (same contract as unknown CLI flags). `label` names
// the block in messages ("serve.arrival", "arrival file", ...).
bool ReadArrivalObject(const Json& obj, const std::string& label, ArrivalProcess& out,
                       std::string* error) {
  if (!obj.is_object()) {
    if (error != nullptr) {
      *error = label + " must be an object";
    }
    return false;
  }
  std::string kind_name = ToString(ArrivalKind::kPoisson);  // omitted = stationary
  if (!ReadString(obj, "kind", label, kind_name, error)) {
    return false;
  }
  auto kind = ParseArrivalKind(kind_name);
  if (!kind) {
    if (error != nullptr) {
      *error = "unknown arrival kind '" + kind_name +
               "' in " + label + " (expected poisson|diurnal|onoff|trace";
      std::string best =
          ClosestCandidate(kind_name, {"poisson", "diurnal", "onoff", "trace"});
      if (!best.empty()) {
        *error += "; did you mean '" + best + "'?";
      }
      *error += ")";
    }
    return false;
  }
  out.kind = *kind;
  switch (out.kind) {
    case ArrivalKind::kPoisson:
      return CheckKeys(obj, {"kind"}, label, error);
    case ArrivalKind::kDiurnal:
      return CheckKeys(obj, {"kind", "period_s", "multipliers"}, label, error) &&
             ReadDouble(obj, "period_s", label, out.period_s, error) &&
             ReadDoubleList(obj, "multipliers", label, out.multipliers, error);
    case ArrivalKind::kOnOff:
      return CheckKeys(obj,
                       {"kind", "on_mean_s", "off_mean_s", "on_multiplier",
                        "off_multiplier"},
                       label, error) &&
             ReadDouble(obj, "on_mean_s", label, out.on_mean_s, error) &&
             ReadDouble(obj, "off_mean_s", label, out.off_mean_s, error) &&
             ReadDouble(obj, "on_multiplier", label, out.on_multiplier, error) &&
             ReadDouble(obj, "off_multiplier", label, out.off_multiplier, error);
    case ArrivalKind::kTrace:
      return CheckKeys(obj, {"kind", "times_s"}, label, error) &&
             ReadDoubleList(obj, "times_s", label, out.times_s, error);
  }
  return true;
}

// Strict reader for an autoscaler object. An unknown policy gets the same
// did-you-mean treatment as arrival kinds.
bool ReadAutoscalerObject(const Json& obj, const std::string& label, AutoscalerKnobs& out,
                          std::string* error) {
  if (!obj.is_object()) {
    if (error != nullptr) {
      *error = label + " must be an object";
    }
    return false;
  }
  if (!CheckKeys(obj,
                 {"policy", "interval_s", "delay_s", "min_prefill_instances",
                  "max_prefill_instances", "min_decode_instances",
                  "max_decode_instances", "scale_up_backlog_s", "scale_up_utilization",
                  "scale_down_utilization", "forecast_window_s", "headroom"},
                 label, error)) {
    return false;
  }
  // Writing an autoscaler block at all means you want one: the policy
  // defaults to reactive here (an explicit "none" still turns it off).
  std::string policy_name = ToString(AutoscalerPolicy::kReactive);
  if (!ReadString(obj, "policy", label, policy_name, error)) {
    return false;
  }
  auto policy = ParseAutoscalerPolicy(policy_name);
  if (!policy) {
    if (error != nullptr) {
      *error = "unknown autoscaler policy '" + policy_name +
               "' in " + label + " (expected none|reactive|predictive";
      std::string best =
          ClosestCandidate(policy_name, {"none", "reactive", "predictive"});
      if (!best.empty()) {
        *error += "; did you mean '" + best + "'?";
      }
      *error += ")";
    }
    return false;
  }
  out.policy = *policy;
  return ReadDouble(obj, "interval_s", label, out.interval_s, error) &&
         ReadDouble(obj, "delay_s", label, out.delay_s, error) &&
         ReadInt(obj, "min_prefill_instances", label, out.min_prefill_instances, error) &&
         ReadInt(obj, "max_prefill_instances", label, out.max_prefill_instances, error) &&
         ReadInt(obj, "min_decode_instances", label, out.min_decode_instances, error) &&
         ReadInt(obj, "max_decode_instances", label, out.max_decode_instances, error) &&
         ReadDouble(obj, "scale_up_backlog_s", label, out.scale_up_backlog_s, error) &&
         ReadDouble(obj, "scale_up_utilization", label, out.scale_up_utilization,
                    error) &&
         ReadDouble(obj, "scale_down_utilization", label, out.scale_down_utilization,
                    error) &&
         ReadDouble(obj, "forecast_window_s", label, out.forecast_window_s, error) &&
         ReadDouble(obj, "headroom", label, out.headroom, error);
}

// Strict reader for a faults object. An unknown retry policy gets the same
// did-you-mean treatment as arrival kinds and autoscaler policies.
bool ReadFaultsObject(const Json& obj, const std::string& label, FaultKnobs& out,
                      std::string* error) {
  if (!obj.is_object()) {
    if (error != nullptr) {
      *error = label + " must be an object";
    }
    return false;
  }
  if (!CheckKeys(obj,
                 {"afr", "floor_afr", "mttr_hours", "spare_activation_minutes",
                  "hot_spares", "retry_policy", "retry_budget",
                  "target_attainment", "domain_gpus", "domain_afr",
                  "domain_mttr_hours", "degrade_afr", "degrade_multiplier",
                  "degrade_minutes", "shed_queue_depth", "shed_ttft_deadline_s"},
                 label, error)) {
    return false;
  }
  std::string policy_name = ToString(out.retry_policy);
  if (!ReadString(obj, "retry_policy", label, policy_name, error)) {
    return false;
  }
  if (!ParseFaultRetryPolicy(policy_name, &out.retry_policy)) {
    if (error != nullptr) {
      *error = "unknown retry policy '" + policy_name + "' in " + label +
               " (expected retry|drop|retry_with_budget";
      std::string best =
          ClosestCandidate(policy_name, {"retry", "drop", "retry_with_budget"});
      if (!best.empty()) {
        *error += "; did you mean '" + best + "'?";
      }
      *error += ")";
    }
    return false;
  }
  return ReadDouble(obj, "afr", label, out.afr, error) &&
         ReadDouble(obj, "floor_afr", label, out.floor_afr, error) &&
         ReadDouble(obj, "mttr_hours", label, out.mttr_hours, error) &&
         ReadDouble(obj, "spare_activation_minutes", label,
                    out.spare_activation_minutes, error) &&
         ReadInt(obj, "hot_spares", label, out.hot_spares, error) &&
         ReadInt(obj, "retry_budget", label, out.retry_budget, error) &&
         ReadDouble(obj, "target_attainment", label, out.target_attainment, error) &&
         ReadDouble(obj, "domain_gpus", label, out.domain_gpus, error) &&
         ReadDouble(obj, "domain_afr", label, out.domain_afr, error) &&
         ReadDouble(obj, "domain_mttr_hours", label, out.domain_mttr_hours, error) &&
         ReadDouble(obj, "degrade_afr", label, out.degrade_afr, error) &&
         ReadDouble(obj, "degrade_multiplier", label, out.degrade_multiplier, error) &&
         ReadDouble(obj, "degrade_minutes", label, out.degrade_minutes, error) &&
         ReadInt(obj, "shed_queue_depth", label, out.shed_queue_depth, error) &&
         ReadDouble(obj, "shed_ttft_deadline_s", label, out.shed_ttft_deadline_s,
                    error);
}

// Strict reader for one fleet-candidate object.
bool ReadFleetCandidate(const Json& entry, const std::string& label,
                        FleetCandidate& out, std::string* error) {
  if (!entry.is_object()) {
    if (error != nullptr) {
      *error = label + " must be an object";
    }
    return false;
  }
  return CheckKeysSuggest(entry,
                          {"name", "gpu", "split", "mem_bw_multiplier",
                           "net_bw_multiplier", "overclock", "prefill_instances",
                           "decode_instances"},
                          label, error) &&
         ReadString(entry, "name", label, out.name, error) &&
         ReadString(entry, "gpu", label, out.gpu, error) &&
         ReadInt(entry, "split", label, out.split, error) &&
         ReadDouble(entry, "mem_bw_multiplier", label, out.mem_bw_multiplier, error) &&
         ReadDouble(entry, "net_bw_multiplier", label, out.net_bw_multiplier, error) &&
         ReadDouble(entry, "overclock", label, out.overclock, error) &&
         ReadInt(entry, "prefill_instances", label, out.prefill_instances, error) &&
         ReadInt(entry, "decode_instances", label, out.decode_instances, error);
}

// Strict reader for the fleet block.
bool ReadFleetObject(const Json& obj, const std::string& label, FleetKnobs& out,
                     std::string* error) {
  if (!obj.is_object()) {
    if (error != nullptr) {
      *error = label + " must be an object";
    }
    return false;
  }
  if (!CheckKeysSuggest(obj,
                        {"candidates", "loads", "load_lo", "load_hi", "load_step",
                         "horizon_s", "prompt_sigma", "output_sigma", "seed",
                         "hbm_usd_per_gb", "gpu_price_multiplier",
                         "depreciation_months", "electricity_usd_per_kwh",
                         "gpu_utilization"},
                        label, error)) {
    return false;
  }
  if (const Json* cands = obj.Find("candidates")) {
    if (!cands->is_array()) {
      return TypeError("candidates", label, "an array of candidate objects", error);
    }
    size_t index = 0;
    for (const Json& entry : cands->elements()) {
      FleetCandidate candidate;
      if (!ReadFleetCandidate(
              entry, label + ".candidates[" + std::to_string(index++) + "]",
              candidate, error)) {
        return false;
      }
      out.candidates.push_back(std::move(candidate));
    }
  }
  return ReadDoubleList(obj, "loads", label, out.loads, error) &&
         ReadDouble(obj, "load_lo", label, out.load_lo, error) &&
         ReadDouble(obj, "load_hi", label, out.load_hi, error) &&
         ReadDouble(obj, "load_step", label, out.load_step, error) &&
         ReadDouble(obj, "horizon_s", label, out.horizon_s, error) &&
         ReadDouble(obj, "prompt_sigma", label, out.prompt_sigma, error) &&
         ReadDouble(obj, "output_sigma", label, out.output_sigma, error) &&
         ReadUint64(obj, "seed", label, out.seed, error) &&
         ReadDouble(obj, "hbm_usd_per_gb", label, out.hbm_usd_per_gb, error) &&
         ReadDouble(obj, "gpu_price_multiplier", label, out.gpu_price_multiplier,
                    error) &&
         ReadDouble(obj, "depreciation_months", label, out.depreciation_months,
                    error) &&
         ReadDouble(obj, "electricity_usd_per_kwh", label,
                    out.electricity_usd_per_kwh, error) &&
         ReadDouble(obj, "gpu_utilization", label, out.gpu_utilization, error);
}

// The keys ReadServeCommonKnobs consumes; the serve/sweep CheckKeys lists
// are built from this so the two blocks can't drift.
std::vector<std::string> ServeCommonKeys(std::vector<std::string> own) {
  for (const char* key : {"horizon_s", "prefill_instances", "decode_instances",
                          "prompt_sigma", "output_sigma", "seed", "arrival",
                          "autoscaler", "faults", "classes", "shards"}) {
    own.push_back(key);
  }
  return own;
}

// The one strict reader for the per-point knobs shared by the serve and
// sweep blocks. Absent keys keep their defaults (stationary Poisson, no
// autoscaler), so pre-existing scenario files parse unchanged.
bool ReadServeCommonKnobs(const Json& obj, const std::string& where,
                          ServeCommonKnobs& out, std::string* error) {
  if (!ReadDouble(obj, "horizon_s", where, out.horizon_s, error) ||
      !ReadInt(obj, "prefill_instances", where, out.prefill_instances, error) ||
      !ReadInt(obj, "decode_instances", where, out.decode_instances, error) ||
      !ReadDouble(obj, "prompt_sigma", where, out.prompt_sigma, error) ||
      !ReadDouble(obj, "output_sigma", where, out.output_sigma, error) ||
      !ReadUint64(obj, "seed", where, out.seed, error) ||
      !ReadInt(obj, "shards", where, out.shards, error)) {
    return false;
  }
  if (const Json* arrival = obj.Find("arrival")) {
    if (!ReadArrivalObject(*arrival, where + ".arrival", out.arrival, error)) {
      return false;
    }
  }
  if (const Json* autoscaler = obj.Find("autoscaler")) {
    if (!ReadAutoscalerObject(*autoscaler, where + ".autoscaler", out.autoscaler,
                              error)) {
      return false;
    }
  }
  if (const Json* faults = obj.Find("faults")) {
    if (!ReadFaultsObject(*faults, where + ".faults", out.faults, error)) {
      return false;
    }
  }
  return ReadClasses(obj, where, out.classes, error);
}

bool ReadNames(const Json& obj, const std::string& key, std::vector<std::string>& out,
               std::string* error) {
  const Json* arr = obj.Find(key);
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    if (error != nullptr) {
      *error = "'" + key + "' must be an array of names";
    }
    return false;
  }
  for (const Json& e : arr->elements()) {
    if (e.type() != Json::Type::kString) {
      if (error != nullptr) {
        *error = "'" + key + "' entries must be strings";
      }
      return false;
    }
    out.push_back(e.AsString());
  }
  return true;
}

}  // namespace

std::optional<Scenario> ScenarioFromJson(const Json& json, std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) {
      *error = "scenario must be a JSON object";
    }
    return std::nullopt;
  }
  if (!CheckKeys(json,
                 {"name", "study", "models", "gpus", "baseline_gpu", "workload",
                  "kv_policy", "max_batch", "design", "mcsim", "yield", "derive", "serve",
                  "sweep", "fleet", "exec"},
                 "scenario", error)) {
    return std::nullopt;
  }

  Scenario s;
  if (!ReadString(json, "name", "scenario", s.name, error)) {
    return std::nullopt;
  }
  std::string study_name;
  if (!ReadString(json, "study", "scenario", study_name, error)) {
    return std::nullopt;
  }
  if (study_name.empty()) {
    if (error != nullptr) {
      *error = "scenario is missing required key 'study'";
    }
    return std::nullopt;
  }
  auto study = ParseStudyKind(study_name);
  if (!study) {
    if (error != nullptr) {
      *error = "unknown study '" + study_name +
               "' (expected search|fig3a|fig3b|design|mcsim|yield|derive|serve|"
               "serve-sweep|fleet-compare)";
    }
    return std::nullopt;
  }
  s.study = *study;

  if (!ReadNames(json, "models", s.models, error) ||
      !ReadNames(json, "gpus", s.gpus, error) ||
      !ReadString(json, "baseline_gpu", "scenario", s.baseline_gpu, error)) {
    return std::nullopt;
  }

  if (const Json* workload = json.Find("workload")) {
    if (!CheckKeys(*workload,
                   {"prompt_tokens", "output_tokens", "ttft_slo_s", "tbt_slo_s",
                    "enforce_memory_capacity"},
                   "workload", error) ||
        !ReadInt(*workload, "prompt_tokens", "workload", s.workload.prompt_tokens, error) ||
        !ReadInt(*workload, "output_tokens", "workload", s.workload.output_tokens, error) ||
        !ReadDouble(*workload, "ttft_slo_s", "workload", s.workload.ttft_slo_s, error) ||
        !ReadDouble(*workload, "tbt_slo_s", "workload", s.workload.tbt_slo_s, error) ||
        !ReadBool(*workload, "enforce_memory_capacity", "workload",
                  s.workload.enforce_memory_capacity, error)) {
      return std::nullopt;
    }
  }

  if (const Json* policy = json.Find("kv_policy")) {
    auto parsed = ParseKvShardPolicy(policy->AsString());
    if (!parsed) {
      if (error != nullptr) {
        *error = "unknown kv_policy '" + policy->AsString() +
                 "' (expected replicate|ideal-shard)";
      }
      return std::nullopt;
    }
    s.kv_policy = *parsed;
  }
  if (!ReadInt(json, "max_batch", "scenario", s.max_batch, error)) {
    return std::nullopt;
  }

  if (const Json* design = json.Find("design")) {
    if (!CheckKeys(*design,
                   {"hbm_usd_per_gb", "gpu_price_multiplier", "amortization_years",
                    "yield_model"},
                   "design", error) ||
        !ReadDouble(*design, "hbm_usd_per_gb", "design", s.design.hbm_usd_per_gb, error) ||
        !ReadDouble(*design, "gpu_price_multiplier", "design",
                    s.design.gpu_price_multiplier, error) ||
        !ReadDouble(*design, "amortization_years", "design", s.design.amortization_years,
                    error)) {
      return std::nullopt;
    }
    if (const Json* ym = design->Find("yield_model")) {
      auto parsed = ParseYieldModel(ym->AsString());
      if (!parsed) {
        if (error != nullptr) {
          *error = "unknown yield_model '" + ym->AsString() + "'";
        }
        return std::nullopt;
      }
      s.design.yield_model = *parsed;
    }
  }

  if (const Json* mcsim = json.Find("mcsim")) {
    if (!CheckKeys(*mcsim,
                   {"gpus_per_instance", "num_instances", "num_spares", "sim_years",
                    "seed", "num_trials"},
                   "mcsim", error) ||
        !ReadInt(*mcsim, "gpus_per_instance", "mcsim", s.mcsim.gpus_per_instance, error) ||
        !ReadInt(*mcsim, "num_instances", "mcsim", s.mcsim.num_instances, error) ||
        !ReadInt(*mcsim, "num_spares", "mcsim", s.mcsim.num_spares, error) ||
        !ReadDouble(*mcsim, "sim_years", "mcsim", s.mcsim.sim_years, error) ||
        !ReadUint64(*mcsim, "seed", "mcsim", s.mcsim.seed, error) ||
        !ReadInt(*mcsim, "num_trials", "mcsim", s.mcsim.num_trials, error)) {
      return std::nullopt;
    }
  }

  if (const Json* yield = json.Find("yield")) {
    if (!CheckKeys(*yield,
                   {"defect_density_per_cm2", "cluster_alpha", "die_area_mm2", "split"},
                   "yield", error) ||
        !ReadDouble(*yield, "defect_density_per_cm2", "yield",
                    s.yield.defect_density_per_cm2, error) ||
        !ReadDouble(*yield, "cluster_alpha", "yield", s.yield.cluster_alpha, error) ||
        !ReadDouble(*yield, "die_area_mm2", "yield", s.yield.die_area_mm2, error) ||
        !ReadInt(*yield, "split", "yield", s.yield.split, error)) {
      return std::nullopt;
    }
  }

  if (const Json* derive = json.Find("derive")) {
    if (!CheckKeys(*derive,
                   {"base_gpu", "split", "mem_bw_multiplier", "net_bw_multiplier",
                    "overclock"},
                   "derive", error) ||
        !ReadString(*derive, "base_gpu", "derive", s.derive.base_gpu, error) ||
        !ReadInt(*derive, "split", "derive", s.derive.split, error) ||
        !ReadDouble(*derive, "mem_bw_multiplier", "derive", s.derive.mem_bw_multiplier,
                    error) ||
        !ReadDouble(*derive, "net_bw_multiplier", "derive", s.derive.net_bw_multiplier,
                    error) ||
        !ReadDouble(*derive, "overclock", "derive", s.derive.overclock, error)) {
      return std::nullopt;
    }
  }

  if (const Json* serve = json.Find("serve")) {
    if (!CheckKeys(*serve, ServeCommonKeys({"load", "arrival_rate_per_s"}), "serve",
                   error) ||
        !ReadDouble(*serve, "load", "serve", s.serve.load, error) ||
        !ReadDouble(*serve, "arrival_rate_per_s", "serve", s.serve.arrival_rate_per_s,
                    error) ||
        !ReadServeCommonKnobs(*serve, "serve", s.serve, error)) {
      return std::nullopt;
    }
  }

  if (const Json* sweep = json.Find("sweep")) {
    if (!CheckKeys(*sweep,
                   ServeCommonKeys({"loads", "rates", "load_lo", "load_hi", "load_step"}),
                   "sweep", error) ||
        !ReadDoubleList(*sweep, "loads", "sweep", s.sweep.loads, error) ||
        !ReadDoubleList(*sweep, "rates", "sweep", s.sweep.rates, error) ||
        !ReadDouble(*sweep, "load_lo", "sweep", s.sweep.load_lo, error) ||
        !ReadDouble(*sweep, "load_hi", "sweep", s.sweep.load_hi, error) ||
        !ReadDouble(*sweep, "load_step", "sweep", s.sweep.load_step, error) ||
        !ReadServeCommonKnobs(*sweep, "sweep", s.sweep, error)) {
      return std::nullopt;
    }
  }

  if (const Json* fleet = json.Find("fleet")) {
    if (!ReadFleetObject(*fleet, "fleet", s.fleet, error)) {
      return std::nullopt;
    }
  }

  if (const Json* exec = json.Find("exec")) {
    if (!CheckKeys(*exec, {"threads"}, "exec", error) ||
        !ReadInt(*exec, "threads", "exec", s.exec.threads, error)) {
      return std::nullopt;
    }
  }
  return s;
}

std::optional<std::vector<RequestClass>> ParseRequestClasses(const Json& json,
                                                             std::string* error) {
  std::vector<RequestClass> classes;
  if (json.is_array()) {
    if (!ReadClassList(json, "classes", classes, error)) {
      return std::nullopt;
    }
    return classes;
  }
  if (json.is_object()) {
    if (!CheckKeys(json, {"classes"}, "class mix", error)) {
      return std::nullopt;
    }
    const Json* arr = json.Find("classes");
    if (arr == nullptr || !arr->is_array()) {
      if (error != nullptr) {
        *error = "class mix needs a 'classes' array";
      }
      return std::nullopt;
    }
    if (!ReadClassList(*arr, "classes", classes, error)) {
      return std::nullopt;
    }
    return classes;
  }
  if (error != nullptr) {
    *error = "class mix must be a JSON array or {\"classes\": [...]}";
  }
  return std::nullopt;
}

std::optional<ArrivalProcess> ParseArrivalProcess(const Json& json, std::string* error) {
  const Json* obj = &json;
  if (json.is_object() && json.Find("arrival") != nullptr) {
    if (!CheckKeys(json, {"arrival"}, "arrival file", error)) {
      return std::nullopt;
    }
    obj = json.Find("arrival");
  }
  ArrivalProcess process;
  if (!ReadArrivalObject(*obj, "arrival file", process, error)) {
    return std::nullopt;
  }
  return process;
}

std::optional<AutoscalerKnobs> ParseAutoscalerKnobs(const Json& json, std::string* error) {
  const Json* obj = &json;
  if (json.is_object() && json.Find("autoscaler") != nullptr) {
    if (!CheckKeys(json, {"autoscaler"}, "autoscaler file", error)) {
      return std::nullopt;
    }
    obj = json.Find("autoscaler");
  }
  AutoscalerKnobs knobs;
  if (!ReadAutoscalerObject(*obj, "autoscaler file", knobs, error)) {
    return std::nullopt;
  }
  return knobs;
}

std::optional<FaultKnobs> ParseFaultKnobs(const Json& json, std::string* error) {
  const Json* obj = &json;
  if (json.is_object() && json.Find("faults") != nullptr) {
    if (!CheckKeys(json, {"faults"}, "faults file", error)) {
      return std::nullopt;
    }
    obj = json.Find("faults");
  }
  FaultKnobs knobs;
  if (!ReadFaultsObject(*obj, "faults file", knobs, error)) {
    return std::nullopt;
  }
  return knobs;
}

bool operator==(const Scenario& a, const Scenario& b) {
  return ScenarioToJson(a) == ScenarioToJson(b);
}

namespace {

// Accepts one scenario object, a top-level array, or {"scenarios": [...]}.
std::optional<std::vector<Scenario>> ScenariosFromJson(const Json& json,
                                                       std::string* error) {
  const Json* list = nullptr;
  if (json.is_array()) {
    list = &json;
  } else if (json.is_object() && json.Find("scenarios") != nullptr) {
    if (!CheckKeys(json, {"scenarios"}, "scenario batch", error)) {
      return std::nullopt;
    }
    list = json.Find("scenarios");
    if (!list->is_array()) {
      if (error != nullptr) {
        *error = "'scenarios' must be an array";
      }
      return std::nullopt;
    }
  }

  std::vector<Scenario> scenarios;
  if (list == nullptr) {
    auto one = ScenarioFromJson(json, error);
    if (!one) {
      return std::nullopt;
    }
    scenarios.push_back(std::move(*one));
  } else {
    for (const Json& entry : list->elements()) {
      auto one = ScenarioFromJson(entry, error);
      if (!one) {
        return std::nullopt;
      }
      scenarios.push_back(std::move(*one));
    }
  }
  if (scenarios.empty()) {
    if (error != nullptr) {
      *error = "no scenarios in input";
    }
    return std::nullopt;
  }
  return scenarios;
}

}  // namespace

std::optional<std::vector<Scenario>> ParseScenarios(const std::string& text,
                                                    std::string* error) {
  auto json = Json::Parse(text, error);
  if (!json) {
    return std::nullopt;
  }
  return ScenariosFromJson(*json, error);
}

std::optional<std::vector<Scenario>> LoadScenarioFile(const std::string& path,
                                                      std::string* error) {
  auto json = Json::ParseFile(path, error);
  if (!json) {
    return std::nullopt;
  }
  return ScenariosFromJson(*json, error);
}

// --- builder ----------------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::Name(const std::string& name) {
  scenario_.name = name;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Model(const std::string& model) {
  scenario_.models.push_back(model);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Gpu(const std::string& gpu) {
  scenario_.gpus.push_back(gpu);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Baseline(const std::string& gpu) {
  scenario_.baseline_gpu = gpu;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::PromptTokens(int n) {
  scenario_.workload.prompt_tokens = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::OutputTokens(int n) {
  scenario_.workload.output_tokens = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::TtftSlo(double seconds) {
  scenario_.workload.ttft_slo_s = seconds;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::TbtSlo(double seconds) {
  scenario_.workload.tbt_slo_s = seconds;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::EnforceMemoryCapacity(bool on) {
  scenario_.workload.enforce_memory_capacity = on;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::KvPolicy(KvShardPolicy policy) {
  scenario_.kv_policy = policy;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::MaxBatch(int n) {
  scenario_.max_batch = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Threads(int n) {
  scenario_.exec.threads = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Design(const DesignKnobs& knobs) {
  scenario_.design = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::McSim(const McSimKnobs& knobs) {
  scenario_.mcsim = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Yield(const YieldKnobs& knobs) {
  scenario_.yield = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Derive(const DeriveKnobs& knobs) {
  scenario_.derive = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Serve(const ServeKnobs& knobs) {
  scenario_.serve = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::ServeSweep(const ServeSweepKnobs& knobs) {
  scenario_.sweep = knobs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::Fleet(const FleetKnobs& knobs) {
  scenario_.fleet = knobs;
  return *this;
}

std::optional<Scenario> ScenarioBuilder::Build(std::string* error) const {
  std::string problem = scenario_.Validate();
  if (!problem.empty()) {
    if (error != nullptr) {
      *error = problem;
    }
    return std::nullopt;
  }
  return scenario_;
}

}  // namespace litegpu
