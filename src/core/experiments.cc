#include "src/core/experiments.h"

#include <sstream>

#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace litegpu {

namespace {

void NormalizeAgainstBaseline(std::vector<Fig3Entry>& entries, size_t num_gpus,
                              const std::string& baseline_name) {
  // Entries are ordered model-major: [model][gpu].
  for (size_t base = 0; base < entries.size(); base += num_gpus) {
    double baseline = 0.0;
    for (size_t i = base; i < base + num_gpus && i < entries.size(); ++i) {
      if (entries[i].gpu_name == baseline_name && entries[i].found) {
        baseline = entries[i].tokens_per_s_per_sm;
      }
    }
    for (size_t i = base; i < base + num_gpus && i < entries.size(); ++i) {
      entries[i].normalized_vs_h100 =
          baseline > 0.0 ? entries[i].tokens_per_s_per_sm / baseline : 0.0;
    }
  }
}

// Shared driver for both studies: fan out one worker per (model, gpu) pair,
// collect entries in pair order (model-major, matching the serial loops),
// then normalize. Per-pair searches run serially inside the fan-out — not
// for determinism (they are bit-identical at any thread count by contract)
// but so each pair doesn't spin up its own transient hw-wide pool under an
// already-parallel fan-out.
template <typename RunPair>
std::vector<Fig3Entry> RunStudy(const std::vector<TransformerSpec>& models,
                                const std::vector<GpuSpec>& gpus,
                                const ExperimentOptions& options,
                                const std::string& baseline_name, const RunPair& run_pair) {
  SearchOptions per_pair = options.search;
  per_pair.exec.threads = 1;
  int num_pairs = static_cast<int>(models.size() * gpus.size());
  std::vector<Fig3Entry> entries =
      ParallelMap<Fig3Entry>(EffectiveThreads(options.exec), num_pairs,
                             [&](int i) {
        const auto& model = models[static_cast<size_t>(i) / gpus.size()];
        const auto& gpu = gpus[static_cast<size_t>(i) % gpus.size()];
        Fig3Entry e;
        e.model_name = model.name;
        e.gpu_name = gpu.name;
        run_pair(model, gpu, per_pair, e);
        return e;
      });
  NormalizeAgainstBaseline(entries, gpus.size(), baseline_name);
  return entries;
}

}  // namespace

std::vector<Fig3Entry> RunPrefillStudy(const std::vector<TransformerSpec>& models,
                                       const std::vector<GpuSpec>& gpus,
                                       const ExperimentOptions& options,
                                       const std::string& baseline_name) {
  return RunStudy(models, gpus, options, baseline_name,
                  [](const TransformerSpec& model, const GpuSpec& gpu,
                     const SearchOptions& search_options, Fig3Entry& e) {
                    PrefillSearchResult search = SearchPrefill(model, gpu, search_options);
                    if (!search.found) {
                      return;
                    }
                    e.found = true;
                    e.tp_degree = search.best.tp_degree;
                    e.batch = search.best.batch;
                    e.latency_s = search.best.result.ttft_s;
                    e.tokens_per_s = search.best.result.tokens_per_s;
                    e.tokens_per_s_per_sm = search.best.result.tokens_per_s_per_sm;
                    e.dominant_bound = search.best.result.timing.DominantBound();
                    e.memory_needed_bytes = search.best.result.memory_needed_bytes;
                  });
}

std::vector<Fig3Entry> RunDecodeStudy(const std::vector<TransformerSpec>& models,
                                      const std::vector<GpuSpec>& gpus,
                                      const ExperimentOptions& options,
                                      const std::string& baseline_name) {
  return RunStudy(models, gpus, options, baseline_name,
                  [](const TransformerSpec& model, const GpuSpec& gpu,
                     const SearchOptions& search_options, Fig3Entry& e) {
                    DecodeSearchResult search = SearchDecode(model, gpu, search_options);
                    if (!search.found) {
                      return;
                    }
                    e.found = true;
                    e.tp_degree = search.best.tp_degree;
                    e.batch = search.best.batch;
                    e.latency_s = search.best.result.tbt_s;
                    e.tokens_per_s = search.best.result.tokens_per_s;
                    e.tokens_per_s_per_sm = search.best.result.tokens_per_s_per_sm;
                    e.dominant_bound = search.best.result.timing.DominantBound();
                    e.memory_needed_bytes = search.best.result.memory_needed_bytes;
                  });
}

std::vector<Fig3Entry> RunPrefillStudy(const std::vector<TransformerSpec>& models,
                                       const std::vector<GpuSpec>& gpus,
                                       const SearchOptions& options,
                                       const std::string& baseline_name) {
  ExperimentOptions experiment;
  experiment.search = options;
  experiment.exec = options.exec;
  return RunPrefillStudy(models, gpus, experiment, baseline_name);
}

std::vector<Fig3Entry> RunDecodeStudy(const std::vector<TransformerSpec>& models,
                                      const std::vector<GpuSpec>& gpus,
                                      const SearchOptions& options,
                                      const std::string& baseline_name) {
  ExperimentOptions experiment;
  experiment.search = options;
  experiment.exec = options.exec;
  return RunDecodeStudy(models, gpus, experiment, baseline_name);
}

std::string Fig3ToText(const std::vector<Fig3Entry>& entries, const std::string& title) {
  Table table({"Model", "GPU type", "TP", "Batch", "Latency", "Tokens/s", "Tok/s/SM",
               "Normalized", "Bound", "HBM/GPU"});
  std::string last_model;
  for (const auto& e : entries) {
    if (!last_model.empty() && e.model_name != last_model) {
      table.AddSeparator();
    }
    last_model = e.model_name;
    if (!e.found) {
      table.AddRow({e.model_name, e.gpu_name, "-", "-", "-", "-", "-", "infeasible", "-", "-"});
      continue;
    }
    table.AddRow({e.model_name, e.gpu_name, std::to_string(e.tp_degree),
                  std::to_string(e.batch), HumanTime(e.latency_s),
                  FormatDouble(e.tokens_per_s, 0), FormatDouble(e.tokens_per_s_per_sm, 2),
                  FormatDouble(e.normalized_vs_h100, 3), ToString(e.dominant_bound),
                  HumanBytes(e.memory_needed_bytes, 1)});
  }
  std::ostringstream os;
  os << title << "\n" << table.ToText();
  return os.str();
}

Json Fig3ToJson(const std::vector<Fig3Entry>& entries, const std::string& title) {
  Json rows = Json::Array();
  for (const auto& e : entries) {
    Json row = Json::Object();
    row.Set("model", e.model_name).Set("gpu", e.gpu_name).Set("found", e.found);
    if (e.found) {
      row.Set("tp_degree", e.tp_degree)
          .Set("batch", e.batch)
          .Set("latency_s", e.latency_s)
          .Set("tokens_per_s", e.tokens_per_s)
          .Set("tokens_per_s_per_sm", e.tokens_per_s_per_sm)
          .Set("normalized", e.normalized_vs_h100)
          .Set("bound", ToString(e.dominant_bound))
          .Set("memory_needed_bytes", e.memory_needed_bytes);
    }
    rows.Append(std::move(row));
  }
  Json j = Json::Object();
  j.Set("title", title).Set("entries", std::move(rows));
  return j;
}

}  // namespace litegpu
