#include "src/core/search.h"

#include <algorithm>
#include <optional>

#include "src/llm/footprint.h"
#include "src/perf/model.h"
#include "src/util/thread_pool.h"

namespace litegpu {

namespace {

// Largest batch in [1, upper] with predicate(batch) true, assuming the
// predicate is monotone (true then false as batch grows). Returns 0 when
// even batch 1 fails.
template <typename Pred>
int LargestFeasibleBatch(int upper, const Pred& predicate) {
  if (upper <= 0 || !predicate(1)) {
    return 0;
  }
  // Exponential probe.
  int lo = 1;
  int hi = 1;
  while (hi < upper && predicate(std::min(hi * 2, upper))) {
    hi = std::min(hi * 2, upper);
    lo = hi;
    if (hi == upper) {
      return upper;
    }
  }
  hi = std::min(hi * 2, upper);
  // Invariant: predicate(lo) true; predicate(hi+1 side) false or hi==upper.
  while (lo < hi) {
    int mid = lo + (hi - lo + 1) / 2;
    if (predicate(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

// Best prefill point for one TP degree, or nullopt when no batch is feasible.
// Pure function of its arguments: safe to run for different degrees on
// different workers. Evaluations go through a per-degree PerfModel, so the
// final re-evaluation of the chosen batch is a cache hit instead of a third
// full roofline pass.
std::optional<PrefillPoint> PrefillBestForDegree(const TransformerSpec& model,
                                                 const GpuSpec& gpu,
                                                 const SearchOptions& options, int degree) {
  auto plan = MakeTpPlan(model, degree, options.kv_policy);
  if (!plan) {
    return std::nullopt;
  }
  int upper = options.max_batch;
  if (options.workload.enforce_memory_capacity) {
    upper = std::min(upper, MaxBatchForCapacity(model, *plan, options.workload.prompt_tokens,
                                                options.workload.prompt_tokens,
                                                gpu.mem_capacity_bytes));
  }
  PerfModel perf(model, gpu, *plan, options.workload, options.engine);
  auto meets = [&](int batch) {
    PrefillResult r = perf.Prefill(batch);
    return r.feasible && r.meets_slo;
  };
  int best_batch = LargestFeasibleBatch(upper, meets);
  if (best_batch == 0) {
    return std::nullopt;
  }
  PrefillPoint point;
  point.tp_degree = degree;
  point.batch = best_batch;
  point.result = perf.Prefill(best_batch);
  return point;
}

std::optional<DecodePoint> DecodeBestForDegree(const TransformerSpec& model, const GpuSpec& gpu,
                                               const SearchOptions& options, int degree) {
  auto plan = MakeTpPlan(model, degree, options.kv_policy);
  if (!plan) {
    return std::nullopt;
  }
  int max_context = options.workload.prompt_tokens + options.workload.output_tokens;
  int upper = options.max_batch;
  if (options.workload.enforce_memory_capacity) {
    upper = std::min(upper,
                     MaxBatchForCapacity(model, *plan, 1, max_context, gpu.mem_capacity_bytes));
  }
  PerfModel perf(model, gpu, *plan, options.workload, options.engine);
  auto meets = [&](int batch) {
    DecodeResult r = perf.Decode(batch);
    return r.feasible && r.meets_slo;
  };
  int best_batch = LargestFeasibleBatch(upper, meets);
  if (best_batch == 0) {
    return std::nullopt;
  }
  DecodePoint point;
  point.tp_degree = degree;
  point.batch = best_batch;
  point.result = perf.Decode(best_batch);
  return point;
}

}  // namespace

PrefillSearchResult SearchPrefill(const TransformerSpec& model, const GpuSpec& gpu,
                                  const SearchOptions& options) {
  PrefillSearchResult out;
  std::vector<int> degrees = FeasibleTpDegrees(model, gpu.max_gpus, options.kv_policy);
  // Fan out per degree; combine in degree order so the result is identical
  // to the serial sweep at any thread count.
  auto points = ParallelMap<std::optional<PrefillPoint>>(
      EffectiveThreads(options.exec), static_cast<int>(degrees.size()),
      [&](int i) { return PrefillBestForDegree(model, gpu, options, degrees[i]); });
  for (const auto& point : points) {
    if (!point) {
      continue;
    }
    out.per_degree.push_back(*point);
    if (!out.found ||
        point->result.tokens_per_s_per_sm > out.best.result.tokens_per_s_per_sm) {
      out.best = *point;
      out.found = true;
    }
  }
  return out;
}

DecodeSearchResult SearchDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                const SearchOptions& options) {
  DecodeSearchResult out;
  std::vector<int> degrees = FeasibleTpDegrees(model, gpu.max_gpus, options.kv_policy);
  auto points = ParallelMap<std::optional<DecodePoint>>(
      EffectiveThreads(options.exec), static_cast<int>(degrees.size()),
      [&](int i) { return DecodeBestForDegree(model, gpu, options, degrees[i]); });
  for (const auto& point : points) {
    if (!point) {
      continue;
    }
    out.per_degree.push_back(*point);
    if (!out.found ||
        point->result.tokens_per_s_per_sm > out.best.result.tokens_per_s_per_sm) {
      out.best = *point;
      out.found = true;
    }
  }
  return out;
}

std::optional<PrefillPoint> BruteForcePrefillBest(const TransformerSpec& model,
                                                  const GpuSpec& gpu,
                                                  const SearchOptions& options,
                                                  int batch_limit) {
  std::vector<int> degrees = FeasibleTpDegrees(model, gpu.max_gpus, options.kv_policy);
  // Each worker exhaustively scans one degree; the serial tie-breaking
  // (earlier degree wins, then earlier batch) is preserved by combining the
  // per-degree bests in degree order with a strict comparison.
  auto points = ParallelMap<std::optional<PrefillPoint>>(
      EffectiveThreads(options.exec), static_cast<int>(degrees.size()),
      [&](int i) {
        std::optional<PrefillPoint> best;
        auto plan = MakeTpPlan(model, degrees[i], options.kv_policy);
        if (!plan) {
          return best;
        }
        for (int batch = 1; batch <= batch_limit; ++batch) {
          PrefillResult r =
              EvaluatePrefill(model, gpu, *plan, batch, options.workload, options.engine);
          if (!r.feasible || !r.meets_slo) {
            continue;
          }
          if (!best || r.tokens_per_s_per_sm > best->result.tokens_per_s_per_sm) {
            best = PrefillPoint{degrees[i], batch, r};
          }
        }
        return best;
      });
  std::optional<PrefillPoint> best;
  for (const auto& point : points) {
    if (point &&
        (!best || point->result.tokens_per_s_per_sm > best->result.tokens_per_s_per_sm)) {
      best = point;
    }
  }
  return best;
}

std::optional<DecodePoint> BruteForceDecodeBest(const TransformerSpec& model,
                                                const GpuSpec& gpu,
                                                const SearchOptions& options,
                                                int batch_limit) {
  std::vector<int> degrees = FeasibleTpDegrees(model, gpu.max_gpus, options.kv_policy);
  auto points = ParallelMap<std::optional<DecodePoint>>(
      EffectiveThreads(options.exec), static_cast<int>(degrees.size()),
      [&](int i) {
        std::optional<DecodePoint> best;
        auto plan = MakeTpPlan(model, degrees[i], options.kv_policy);
        if (!plan) {
          return best;
        }
        for (int batch = 1; batch <= batch_limit; ++batch) {
          DecodeResult r =
              EvaluateDecode(model, gpu, *plan, batch, options.workload, options.engine);
          if (!r.feasible || !r.meets_slo) {
            continue;
          }
          if (!best || r.tokens_per_s_per_sm > best->result.tokens_per_s_per_sm) {
            best = DecodePoint{degrees[i], batch, r};
          }
        }
        return best;
      });
  std::optional<DecodePoint> best;
  for (const auto& point : points) {
    if (point &&
        (!best || point->result.tokens_per_s_per_sm > best->result.tokens_per_s_per_sm)) {
      best = point;
    }
  }
  return best;
}

namespace {

Json PointToJson(const PrefillPoint& p) {
  Json j = Json::Object();
  j.Set("tp_degree", p.tp_degree)
      .Set("batch", p.batch)
      .Set("ttft_s", p.result.ttft_s)
      .Set("tokens_per_s", p.result.tokens_per_s)
      .Set("tokens_per_s_per_sm", p.result.tokens_per_s_per_sm)
      .Set("memory_needed_bytes", p.result.memory_needed_bytes)
      .Set("bound", ToString(p.result.timing.DominantBound()));
  return j;
}

Json PointToJson(const DecodePoint& p) {
  Json j = Json::Object();
  j.Set("tp_degree", p.tp_degree)
      .Set("batch", p.batch)
      .Set("tbt_s", p.result.tbt_s)
      .Set("tokens_per_s", p.result.tokens_per_s)
      .Set("tokens_per_s_per_sm", p.result.tokens_per_s_per_sm)
      .Set("memory_needed_bytes", p.result.memory_needed_bytes)
      .Set("bound", ToString(p.result.timing.DominantBound()));
  return j;
}

template <typename Result>
Json SearchResultToJson(const Result& result) {
  Json j = Json::Object();
  j.Set("found", result.found);
  if (result.found) {
    j.Set("best", PointToJson(result.best));
  }
  Json frontier = Json::Array();
  for (const auto& point : result.per_degree) {
    frontier.Append(PointToJson(point));
  }
  j.Set("per_degree", std::move(frontier));
  return j;
}

}  // namespace

Json ToJson(const PrefillSearchResult& result) { return SearchResultToJson(result); }

Json ToJson(const DecodeSearchResult& result) { return SearchResultToJson(result); }

}  // namespace litegpu
