// Runner: executes Scenarios against the existing engines and returns a
// uniform RunReport — the second half of the Scenario -> Runner -> RunReport
// pipeline. One entry point covers every study the paper's argument spans;
// the CLI, the examples, and future workload backends all plug in here
// instead of hand-wiring per-engine option structs.

#pragma once

#include <string>
#include <variant>
#include <vector>

#include "src/core/designer.h"
#include "src/core/experiments.h"
#include "src/core/scenario.h"
#include "src/core/search.h"
#include "src/hw/lite_derive.h"
#include "src/reliability/mc_sim.h"
#include "src/serve/simulator.h"
#include "src/util/exec_policy.h"
#include "src/util/json.h"

namespace litegpu {

// --- per-study payloads -----------------------------------------------------

struct SearchStudyReport {
  struct Pair {
    std::string model;
    std::string gpu;
    PrefillSearchResult prefill;
    DecodeSearchResult decode;
  };
  std::vector<Pair> pairs;
};

struct Fig3StudyReport {
  std::string title;
  std::vector<Fig3Entry> entries;
};

struct DesignStudyReport {
  // One Table-1 comparison per model in the scenario's (resolved) list.
  struct PerModel {
    std::string model;
    std::vector<ClusterDesignReport> clusters;
  };
  std::vector<PerModel> per_model;
};

struct McSimStudyReport {
  std::string gpu;
  McSimKnobs knobs;
  McSimResult result;
};

struct YieldStudyReport {
  struct Row {
    YieldModel model = YieldModel::kMurphy;
    double yield_full = 0.0;
    double yield_split = 0.0;
    double gain = 0.0;
    // split * KGD(area/split) / KGD(area); 0 when the full die doesn't fit.
    double kgd_cost_ratio = 0.0;
  };
  YieldKnobs knobs;
  std::vector<Row> rows;
};

struct DeriveStudyReport {
  LiteDeriveResult result;
};

// Per-class slice of a multi-tenant serving result: the class's share of
// the mix, its measured latency percentiles, goodput, and whether it met
// its (possibly inherited) SLOs. Present only when the scenario declares
// request classes — single-class reports are unchanged.
struct ServeClassReport {
  std::string name;
  double share = 0.0;               // normalized weight, sums to 1 over the mix
  double arrival_rate_per_s = 0.0;  // this class's slice of the offered rate
  double ttft_slo_s = 0.0;          // effective (inherited when the class's is 0)
  double tbt_slo_s = 0.0;
  int admitted_requests = 0;
  int completed_requests = 0;
  int in_flight_at_horizon = 0;
  double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
  double tbt_p50_s = 0.0, tbt_p95_s = 0.0, tbt_p99_s = 0.0;
  double goodput_tokens_per_s = 0.0;  // class decode tokens/s over the makespan
  // Fraction of the class's completed requests whose TTFT met the SLO
  // (request-level attainment; TBT attainment is judged at the p99).
  double ttft_attainment = 0.0;
  bool slo_ok = false;  // completed > 0 && ttft_p99 <= slo && tbt_p99 <= slo
};

// Autoscaler outcome of one simulated serve point, filled only when the
// scenario's autoscaler block is enabled (reports without one are
// byte-identical to the fixed-pool reports). Instance-hours integrate each
// instance's provisioned lifetime — the cost side of "cheapest policy
// meeting the SLOs" — and ttft_attainment is the global request-level SLO
// attainment through the transients (per-class SLOs in a mix).
struct ServeScaleReport {
  bool enabled = false;
  std::string policy;  // "reactive" | "predictive"
  int scale_ups = 0;
  int scale_downs = 0;
  double prefill_instance_hours = 0.0;
  double decode_instance_hours = 0.0;
  double gpu_hours = 0.0;  // instance-hours weighted by GPUs per instance
  int peak_prefill_instances = 0;
  int peak_decode_instances = 0;
  int final_prefill_instances = 0;
  int final_decode_instances = 0;
  double ttft_attainment = 0.0;
  std::vector<ScaleEvent> events;  // in the order they took effect
};

// Per-pool slice of the fault outcome: how often the pool's instances
// failed, how long they stayed down, how much in-flight work each failure
// destroyed (the paper's blast radius, measured on live traffic), and the
// measured availability next to the closed-form prediction from
// src/reliability/failure_model.h — the cross-check the fault engine's
// credibility rests on.
// Per-domain slice of a pool's correlated outages (domains enabled only).
struct ServeFaultDomainReport {
  int domain = 0;
  int failures = 0;           // domain-level outage events
  int instance_failures = 0;  // member instances downed by those outages
  double lost_tokens = 0.0;
  double blast_radius_fraction = 0.0;  // lost / served output tokens
};

struct ServeFaultPoolReport {
  int failures = 0;
  int spare_activations = 0;  // failures masked by a hot spare
  double downtime_s = 0.0;    // summed instance downtime, clipped to the makespan
  double lost_tokens = 0.0;   // in-flight work destroyed by this pool's failures
  // Mean tokens lost per failure over the run's served output tokens: the
  // fraction of the horizon's work one failure destroys. H100-sized and
  // Lite-sized instances differ here even at matched availability.
  double blast_radius_fraction = 0.0;
  double availability_measured = 0.0;   // 1 - downtime / instance-seconds
  double availability_predicted = 0.0;  // InstanceAvailabilityWithSpares
  // --- correlated-domain columns (domains enabled only) ---
  int domain_failures = 0;  // domain-level outage events in this pool
  // Worst single failure event (one independent failure or one domain
  // outage's members at one timestamp): tokens destroyed, and as a
  // fraction of the run's served output tokens. Same domain size in GPUs
  // => more small-die instances per domain => larger worst-event loss.
  double worst_event_lost_tokens = 0.0;
  double worst_event_fraction = 0.0;
  // availability_predicted times the closed-form domain availability
  // (1 - rate*repair / (1 + rate*repair)): what correlated outages cost on
  // top of independent churn.
  double availability_correlated = 0.0;
  // --- degraded-state columns (degraded enabled only) ---
  int degrade_events = 0;
  double degraded_instance_s = 0.0;
  std::vector<ServeFaultDomainReport> domains;  // by domain id
};

// Fault outcome of one simulated serve point, filled only when the
// scenario's faults block is enabled (reports without one are byte-identical
// to the fault-free renderer). goodput_ratio compares against a second
// simulation of the same workload with faults disabled — goodput under
// churn as a fraction of the fault-free baseline.
struct ServeFaultReport {
  bool enabled = false;
  std::string retry_policy;  // "retry" | "drop" | "retry_with_budget"
  // Which robustness axes ran (serialization gates for the new columns:
  // pre-domain reports stay byte-identical when all three are off).
  bool domains_enabled = false;
  bool degraded_enabled = false;
  bool shedding_enabled = false;
  ServeFaultPoolReport prefill;
  ServeFaultPoolReport decode;
  int retried_requests = 0;
  int dropped_requests = 0;
  double lost_tokens = 0.0;
  double goodput_tokens_per_s = 0.0;
  double baseline_goodput_tokens_per_s = 0.0;  // same workload, no faults
  double goodput_ratio = 0.0;
  // --- degraded-state outcome (degraded enabled only) ---
  // Tokens served per degraded decode-instance-second: goodput while
  // throttled, next to the healthy goodput above.
  double degraded_goodput_tokens_per_s = 0.0;
  // --- overload-protection outcome (shedding enabled only) ---
  int shed_requests = 0;
  // Seconds from the largest single outage (by lost tokens) until both
  // queues were empty again; -1 when no outage occurred.
  double time_to_drain_s = -1.0;
  // Stable iff the largest outage's backlog drained within the horizon:
  // largest_outage_time + time_to_drain <= horizon (vacuously true with no
  // outage). A metastable retry storm never drains and fails this.
  bool stable = true;
  std::vector<FaultEvent> events;      // simulated-time order
  std::vector<ShedEvent> shed_events;  // simulated-time order
};

// End-to-end serving study: the PerfModel-backed discrete-event simulation
// of the searched best prefill/decode configurations, with the analytic
// capacity cross-check the paper's claim rests on.
struct ServeStudyReport {
  std::string model;
  std::string gpu;
  ServeKnobs knobs;

  // Chosen analytic configurations (from the PerfModel-backed search).
  int prefill_tp = 0;
  int prefill_batch = 0;
  double prefill_capacity_tok_s = 0.0;  // per instance
  int decode_tp = 0;
  int decode_batch = 0;
  double decode_capacity_tok_s = 0.0;   // per instance

  // Deployment actually simulated.
  int prefill_instances = 0;
  int decode_instances = 0;
  int total_gpus = 0;
  double arrival_rate_per_s = 0.0;

  // Measured end-to-end.
  int admitted_requests = 0;
  int completed_requests = 0;
  int in_flight_at_horizon = 0;  // admitted but unfinished when the horizon passed
  double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
  double tbt_p50_s = 0.0, tbt_p95_s = 0.0, tbt_p99_s = 0.0;
  double goodput_tokens_per_s = 0.0;   // decode tokens/s over the makespan
  double analytic_tokens_per_s = 0.0;  // offered decode-token demand
  double capacity_agreement = 0.0;     // goodput / analytic (the cross-check)
  double prefill_utilization = 0.0;
  double decode_utilization = 0.0;
  double mean_decode_batch = 0.0;
  double makespan_s = 0.0;
  // Autoscaler outcome (scale.enabled false for fixed-pool runs).
  ServeScaleReport scale;
  // Fault outcome (faults.enabled false for fault-free runs).
  ServeFaultReport faults;
  // One entry per declared request class (empty in single-class mode).
  std::vector<ServeClassReport> classes;
};

// Serve-sweep study: one searched deployment driven over a whole load grid
// as a single study — the bench_validation_serve table as an interactive
// scenario. The search and the step-time table are shared; each point is an
// independent simulation with its own RNG stream, fanned across the thread
// pool with bit-identical results at any thread count.
struct ServeSweepReport {
  std::string model;
  std::string gpu;
  ServeSweepKnobs knobs;

  // Chosen analytic configurations (shared by every point).
  int prefill_tp = 0;
  int prefill_batch = 0;
  double prefill_capacity_tok_s = 0.0;  // per instance
  int decode_tp = 0;
  int decode_batch = 0;
  double decode_capacity_tok_s = 0.0;   // per instance

  // The SLOs the knee is judged against (from the scenario's workload).
  double ttft_slo_s = 0.0;
  double tbt_slo_s = 0.0;

  struct Point {
    double load = 0.0;  // fraction of the decode pool's analytic capacity
    double arrival_rate_per_s = 0.0;
    uint64_t seed = 0;  // this point's derived workload RNG stream
    int prefill_instances = 0;
    int decode_instances = 0;
    int total_gpus = 0;
    int admitted_requests = 0;
    int completed_requests = 0;
    int in_flight_at_horizon = 0;
    double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
    double tbt_p50_s = 0.0, tbt_p95_s = 0.0, tbt_p99_s = 0.0;
    double goodput_tokens_per_s = 0.0;
    double analytic_tokens_per_s = 0.0;
    double capacity_agreement = 0.0;
    double prefill_utilization = 0.0;
    double decode_utilization = 0.0;
    double mean_decode_batch = 0.0;
    double makespan_s = 0.0;
    // Single-class: ttft_p99 <= ttft_slo && tbt_p99 <= tbt_slo. With a
    // class mix: EVERY class meets its own (possibly inherited) SLOs.
    bool slo_ok = false;
    // Autoscaler outcome (scale.enabled false for fixed-pool runs).
    ServeScaleReport scale;
    // Fault outcome (faults.enabled false for fault-free runs).
    ServeFaultReport faults;
    // One entry per declared request class (empty in single-class mode).
    std::vector<ServeClassReport> classes;
  };
  std::vector<Point> points;  // grid order

  // Knee: the highest-load point still meeting the SLOs (-1 when none
  // does) — with a class mix, the highest load where every class meets its
  // SLOs. "Highest" by offered arrival rate, so rate grids work too. Under
  // fault injection the verdicts are judged at the faults block's
  // target_attainment quantile instead of the fixed p99, so this
  // generalizes to the highest load still meeting the SLOs under churn.
  int knee_index = -1;
  double knee_load = 0.0;
  double knee_goodput_tokens_per_s = 0.0;

  // With the autoscaler enabled the knee generalizes to cost: the cheapest
  // SLO-meeting point, judged by served tokens per GPU-hour (-1 when no
  // point meets the SLOs). Only computed for autoscaled sweeps.
  int cheapest_index = -1;
  double cheapest_tokens_per_gpu_hour = 0.0;
};

// Fleet-compare study: one serve sweep per catalog candidate on the shared
// load grid, each knee joined with the silicon cost and cluster power
// models into $/Mtoken-at-SLO and joules/token — the paper's headline
// knee-vs-knee economics as one report. Candidates run in catalog order
// with name-derived RNG streams, so reordering the catalog (or changing
// the thread count) never changes a candidate's numbers.
struct FleetCompareReport {
  std::string model;
  FleetKnobs knobs;
  // The SLOs every candidate's knee is judged against.
  double ttft_slo_s = 0.0;
  double tbt_slo_s = 0.0;

  struct Candidate {
    std::string name;      // catalog label (also seeds the RNG stream)
    std::string gpu;       // resolved part name (derived parts record the recipe)
    std::string base_gpu;  // catalog base part
    int split = 1;
    uint64_t seed = 0;  // this candidate's derived sweep stream
    // Feasible = a searched config exists AND some grid point met the SLOs.
    bool feasible = false;
    std::string error;  // why infeasible ("" when feasible)
    // Searched per-instance config.
    int prefill_tp = 0;
    int decode_tp = 0;
    double decode_capacity_tok_s = 0.0;  // per instance
    // Knee operating point (valid only when feasible).
    int knee_index = -1;
    double knee_load = 0.0;
    double knee_arrival_rate_per_s = 0.0;
    double knee_goodput_tokens_per_s = 0.0;
    int knee_total_gpus = 0;
    // Analytic decode capacity of the knee's pool — the differential-test
    // anchor the simulated knee goodput is checked against.
    double analytic_capacity_tok_s = 0.0;
    // Economics at the knee (valid only when feasible).
    double gpu_price_usd = 0.0;       // one packaged, street-priced GPU
    double capex_usd = 0.0;           // knee_total_gpus x gpu_price_usd
    double capex_usd_per_hour = 0.0;  // capex / depreciation hours
    double power_watts = 0.0;         // knee pool cluster power (GPU+net+cooling)
    double opex_usd_per_hour = 0.0;   // power priced at the grid rate
    double joules_per_token = 0.0;
    double usd_per_mtoken = 0.0;
    bool on_frontier = false;
  };
  std::vector<Candidate> candidates;  // catalog order

  // Non-dominated feasible candidates over (usd_per_mtoken min,
  // joules_per_token min, knee goodput max), as indices in catalog order.
  std::vector<int> frontier;
  // Frontier member with the lowest $/Mtoken (-1 when nothing is feasible).
  int winner_index = -1;
  // Distinct (model, resolved GPU) serve platforms actually built —
  // candidates sharing a part share one search + step-time table, and the
  // bench gates on this staying equal to the distinct-part count.
  int platform_builds = 0;
};

// --- the uniform result -----------------------------------------------------

struct RunReport {
  std::string scenario_name;
  StudyKind study = StudyKind::kSearch;
  bool ok = false;
  std::string error;  // set when !ok (validation or lookup failure)

  // Tagged union: exactly the alternative matching `study` is engaged when
  // ok (monostate otherwise).
  std::variant<std::monostate, SearchStudyReport, Fig3StudyReport, DesignStudyReport,
               McSimStudyReport, YieldStudyReport, DeriveStudyReport, ServeStudyReport,
               ServeSweepReport, FleetCompareReport>
      payload;

  // Human-readable rendering (the paper-style tables the CLI prints).
  std::string ToText() const;
  // Structured rendering: {"scenario": ..., "study": ..., "ok": ...,
  // "report": {study-specific body}}.
  Json ToJson() const;
};

// --- the runner -------------------------------------------------------------

class Runner {
 public:
  // Runs with each scenario's own ExecPolicy.
  Runner() = default;
  // Overrides every scenario's ExecPolicy (the CLI's --threads).
  explicit Runner(const ExecPolicy& exec) : exec_(exec), override_exec_(true) {}

  // Validates and dispatches. Never throws; failures come back as
  // ok == false with `error` set.
  RunReport Run(const Scenario& scenario) const;

 private:
  ExecPolicy exec_;
  bool override_exec_ = false;
};

// Runs a batch, fanning the scenarios out across `exec` workers on the
// thread pool (each scenario's inner sweeps run serial inside the fan-out).
// Reports come back in scenario order, bit-identical at any thread count.
std::vector<RunReport> RunScenarios(const std::vector<Scenario>& scenarios,
                                    const ExecPolicy& exec = {});

}  // namespace litegpu
