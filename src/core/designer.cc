#include "src/core/designer.h"

#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"
#include "src/util/units.h"

namespace litegpu {

ClusterDesignReport DesignCluster(const GpuSpec& gpu, const DesignInputs& inputs) {
  ClusterDesignReport report;
  report.gpu_name = gpu.name;

  DecodeSearchResult search = SearchDecode(inputs.model, gpu, inputs.search);
  if (!search.found) {
    return report;
  }
  report.feasible = true;
  report.tp_degree = search.best.tp_degree;
  report.batch = search.best.batch;
  report.tokens_per_s = search.best.result.tokens_per_s;
  report.tokens_per_s_per_sm = search.best.result.tokens_per_s_per_sm;

  // --- economics ---
  double per_gpu_cost = PricedGpuUsd(inputs.wafer, inputs.yield_model, inputs.defects, gpu,
                                     inputs.hbm_usd_per_gb, inputs.gpu_price_multiplier);
  report.gpu_capex_usd = per_gpu_cost * report.tp_degree;

  FabricRequirements fabric;
  fabric.num_gpus = report.tp_degree;
  fabric.per_gpu_bw_bytes_per_s = gpu.net_bw_bytes_per_s;
  const LinkTechSpec& link =
      report.tp_degree <= inputs.copper_reach_max_gpus ? inputs.scale_up_link : inputs.link;
  TopologyReport topo =
      report.tp_degree > 1
          ? BuildFlatCircuitSwitched(fabric, inputs.fabric_switch, link)
          : TopologyReport{};
  report.network_capex_usd = topo.capex_usd;
  report.total_capex_usd = report.gpu_capex_usd + report.network_capex_usd;

  // --- power ---
  report.power = ClusterPower(gpu, report.tp_degree, inputs.power);
  report.power.network_watts += topo.power_watts;
  report.joules_per_token = EnergyPerToken(report.power, report.tokens_per_s);

  // --- reliability ---
  report.instance_afr =
      ClusterFailuresPerYear(gpu, report.tp_degree, inputs.failure);
  report.blast_radius_fraction = BlastRadiusFraction(report.tp_degree);
  report.availability_no_spares =
      InstanceAvailabilityNoSpares(gpu, report.tp_degree, inputs.failure);
  report.availability_one_spare =
      InstanceAvailabilityWithSpares(gpu, report.tp_degree, 1, 1, inputs.failure);

  // --- $/Mtok ---
  double seconds = inputs.amortization_years * kYear;
  double lifetime_tokens = report.tokens_per_s * seconds * report.availability_no_spares;
  if (lifetime_tokens > 0.0) {
    report.usd_per_mtok = report.total_capex_usd / (lifetime_tokens / 1e6);
  }
  return report;
}

std::vector<ClusterDesignReport> CompareClusters(const std::vector<GpuSpec>& gpus,
                                                 const DesignInputs& inputs) {
  // One worker per GPU type. Inner searches are forced serial not for
  // determinism (they are bit-identical at any thread count by contract)
  // but to avoid each one spinning up a transient hw-wide pool under an
  // already-parallel fan-out.
  DesignInputs per_design = inputs;
  per_design.search.exec.threads = 1;
  return ParallelMap<ClusterDesignReport>(
      EffectiveThreads(inputs.exec), static_cast<int>(gpus.size()),
      [&](int i) { return DesignCluster(gpus[static_cast<size_t>(i)], per_design); });
}

std::string ClusterComparisonToText(const std::vector<ClusterDesignReport>& reports) {
  Table table({"GPU type", "TP", "Batch", "Tokens/s", "Tok/s/SM", "Capex $", "Net $",
               "Power", "J/token", "AFR/inst", "Avail (0/1 spare)", "$ / Mtok"});
  for (const auto& r : reports) {
    if (!r.feasible) {
      table.AddRow({r.gpu_name, "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({r.gpu_name, std::to_string(r.tp_degree), std::to_string(r.batch),
                  FormatDouble(r.tokens_per_s, 0), FormatDouble(r.tokens_per_s_per_sm, 2),
                  FormatDouble(r.total_capex_usd, 0), FormatDouble(r.network_capex_usd, 0),
                  HumanPower(r.power.TotalWatts()), FormatDouble(r.joules_per_token, 3),
                  FormatDouble(r.instance_afr, 3),
                  FormatDouble(r.availability_no_spares, 5) + " / " +
                      FormatDouble(r.availability_one_spare, 5),
                  FormatDouble(r.usd_per_mtok, 3)});
  }
  return table.ToText();
}

Json ToJson(const ClusterDesignReport& r) {
  Json j = Json::Object();
  j.Set("gpu", r.gpu_name).Set("feasible", r.feasible);
  if (!r.feasible) {
    return j;
  }
  j.Set("tp_degree", r.tp_degree)
      .Set("batch", r.batch)
      .Set("tokens_per_s", r.tokens_per_s)
      .Set("tokens_per_s_per_sm", r.tokens_per_s_per_sm)
      .Set("gpu_capex_usd", r.gpu_capex_usd)
      .Set("network_capex_usd", r.network_capex_usd)
      .Set("total_capex_usd", r.total_capex_usd);
  Json power = Json::Object();
  power.Set("gpu_watts", r.power.gpu_watts)
      .Set("network_watts", r.power.network_watts)
      .Set("cooling_watts", r.power.cooling_watts)
      .Set("total_watts", r.power.TotalWatts());
  j.Set("power", std::move(power))
      .Set("joules_per_token", r.joules_per_token)
      .Set("instance_afr", r.instance_afr)
      .Set("blast_radius_fraction", r.blast_radius_fraction)
      .Set("availability_no_spares", r.availability_no_spares)
      .Set("availability_one_spare", r.availability_one_spare)
      .Set("usd_per_mtok", r.usd_per_mtok);
  return j;
}

Json ClusterComparisonToJson(const std::vector<ClusterDesignReport>& reports) {
  Json rows = Json::Array();
  for (const auto& r : reports) {
    rows.Append(ToJson(r));
  }
  Json j = Json::Object();
  j.Set("clusters", std::move(rows));
  return j;
}

}  // namespace litegpu
