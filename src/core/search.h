// Configuration search, as in the paper: "The search sweeps all possible
// batch sizes and number of GPUs for each GPU type... we normalize the
// throughput for each configuration using the number of SMs... For each GPU
// type, we plot the configuration with the highest throughput per SM."
//
// Throughput/SM is monotone increasing in batch for a fixed TP degree (step
// latency is affine in batch with a positive intercept), so per degree the
// optimum is the largest batch that satisfies memory capacity and the SLO;
// we find it by exponential + binary search and verify against brute force
// in tests.

#pragma once

#include <optional>
#include <vector>

#include "src/hw/gpu_spec.h"
#include "src/llm/model.h"
#include "src/llm/parallel.h"
#include "src/roofline/inference.h"
#include "src/util/exec_policy.h"
#include "src/util/json.h"

namespace litegpu {

struct SearchOptions {
  WorkloadParams workload;
  EngineParams engine;
  KvShardPolicy kv_policy = KvShardPolicy::kReplicate;
  // Upper bound on swept batch size (safety net when capacity enforcement
  // is off; real searches terminate on SLO first).
  int max_batch = 65536;
  // Worker threads for the per-degree fan-out (see src/util/exec_policy.h).
  ExecPolicy exec;
};

struct PrefillPoint {
  int tp_degree = 0;
  int batch = 0;
  PrefillResult result;
};

struct DecodePoint {
  int tp_degree = 0;
  int batch = 0;
  DecodeResult result;
};

struct PrefillSearchResult {
  bool found = false;
  PrefillPoint best;
  // Best point per TP degree (degrees with no feasible batch are omitted).
  std::vector<PrefillPoint> per_degree;
};

struct DecodeSearchResult {
  bool found = false;
  DecodePoint best;
  std::vector<DecodePoint> per_degree;
};

PrefillSearchResult SearchPrefill(const TransformerSpec& model, const GpuSpec& gpu,
                                  const SearchOptions& options);

DecodeSearchResult SearchDecode(const TransformerSpec& model, const GpuSpec& gpu,
                                const SearchOptions& options);

// Structured forms of the search results (best + per-degree frontier).
Json ToJson(const PrefillSearchResult& result);
Json ToJson(const DecodeSearchResult& result);

// Reference implementations that exhaustively sweep every batch in
// [1, limit]; used by tests to validate the fast search.
std::optional<PrefillPoint> BruteForcePrefillBest(const TransformerSpec& model,
                                                  const GpuSpec& gpu,
                                                  const SearchOptions& options,
                                                  int batch_limit);
std::optional<DecodePoint> BruteForceDecodeBest(const TransformerSpec& model,
                                                const GpuSpec& gpu,
                                                const SearchOptions& options,
                                                int batch_limit);

}  // namespace litegpu
