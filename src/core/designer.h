// ClusterDesigner: the whole-paper roll-up. For a GPU type and a workload,
// combine the Figure-3 performance search with the silicon cost model,
// the network topology model, the power/cooling model, and the reliability
// model into one comparable report — the "performance per $-cost, which is
// the primary metric for cloud operators" analysis the paper sketches in
// Section 4.

#pragma once

#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/hw/gpu_spec.h"
#include "src/net/topology.h"
#include "src/power/cluster_energy.h"
#include "src/reliability/failure_model.h"
#include "src/silicon/cost.h"

namespace litegpu {

struct DesignInputs {
  TransformerSpec model;
  SearchOptions search;
  // Silicon economics.
  WaferSpec wafer;
  DefectSpec defects;
  YieldModel yield_model = YieldModel::kMurphy;
  double hbm_usd_per_gb = 12.0;
  // Market price over manufacturing cost. Vendor gross margins put street
  // prices ~8x the silicon+memory+packaging BOM (H100 BOM ~$2.4k vs ~$20k
  // street); the paper's "networking is a small fraction of GPU costs"
  // claim is about market prices, so the designer compares at that level.
  double gpu_price_multiplier = 8.0;
  // Network: instances small enough to sit in one chassis use copper
  // (today's NVLink domain); larger Lite instances exceed copper reach and
  // use this optical link technology over the configured switch.
  LinkTechSpec link = CpoLink();
  LinkTechSpec scale_up_link = CopperLink();
  int copper_reach_max_gpus = 8;
  SwitchTechSpec fabric_switch = CircuitSwitch();
  // Power & reliability.
  ClusterPowerParams power;
  FailureParams failure;
  // Deployment horizon for amortizing capex into $/token.
  double amortization_years = 4.0;
  // Worker threads for CompareClusters' per-GPU fan-out. search.exec only
  // governs the per-degree fan-out when DesignCluster is called directly —
  // CompareClusters forces the inner searches serial (see the nesting note
  // in src/util/exec_policy.h).
  ExecPolicy exec;
};

struct ClusterDesignReport {
  std::string gpu_name;
  bool feasible = false;

  // Performance (decode phase, the serving-capacity driver).
  int tp_degree = 0;
  int batch = 0;
  double tokens_per_s = 0.0;
  double tokens_per_s_per_sm = 0.0;

  // Economics (per serving instance of tp_degree GPUs).
  double gpu_capex_usd = 0.0;      // all GPUs in the instance
  double network_capex_usd = 0.0;  // fabric share for the instance
  double total_capex_usd = 0.0;

  // Power.
  ClusterPowerBreakdown power;
  double joules_per_token = 0.0;

  // Reliability.
  double instance_afr = 0.0;            // failures/year hitting the instance
  double blast_radius_fraction = 0.0;   // capacity lost per single failure
  double availability_no_spares = 0.0;
  double availability_one_spare = 0.0;

  // Headline: amortized $ per million tokens (capex only; energy priced
  // separately via joules_per_token).
  double usd_per_mtok = 0.0;
};

// Designs a decode-serving instance of `gpu` for the workload in `inputs`.
ClusterDesignReport DesignCluster(const GpuSpec& gpu, const DesignInputs& inputs);

// Runs DesignCluster for several GPU types and renders a comparison.
std::vector<ClusterDesignReport> CompareClusters(const std::vector<GpuSpec>& gpus,
                                                 const DesignInputs& inputs);
std::string ClusterComparisonToText(const std::vector<ClusterDesignReport>& reports);

// Structured forms of the designer output.
Json ToJson(const ClusterDesignReport& report);
Json ClusterComparisonToJson(const std::vector<ClusterDesignReport>& reports);

}  // namespace litegpu
