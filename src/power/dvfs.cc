#include "src/power/dvfs.h"

#include <algorithm>
#include <cmath>

namespace litegpu {

double PowerAtFrequency(const DvfsModel& model, double frequency_scale) {
  double f = std::clamp(frequency_scale, model.min_frequency_scale, model.max_frequency_scale);
  double dynamic = (1.0 - model.static_fraction) * std::pow(f, model.frequency_exponent);
  return model.nominal_power_watts * (model.static_fraction + dynamic);
}

double ThroughputAtFrequency(double nominal_throughput, double frequency_scale) {
  return nominal_throughput * frequency_scale;
}

double FrequencyForLoad(const DvfsModel& model, double load_fraction) {
  return std::clamp(load_fraction, model.min_frequency_scale, model.max_frequency_scale);
}

double RelativeEfficiency(const DvfsModel& model, double frequency_scale) {
  double f = std::clamp(frequency_scale, model.min_frequency_scale, model.max_frequency_scale);
  double power = PowerAtFrequency(model, f);
  double nominal = PowerAtFrequency(model, 1.0);
  if (power <= 0.0 || f <= 0.0) {
    return 0.0;
  }
  return (f / 1.0) / (power / nominal);
}

}  // namespace litegpu
