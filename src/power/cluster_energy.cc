#include "src/power/cluster_energy.h"

#include "src/util/units.h"

namespace litegpu {

ClusterPowerBreakdown ClusterPower(const GpuSpec& gpu, int num_gpus,
                                   const ClusterPowerParams& params) {
  ClusterPowerBreakdown out;
  DvfsModel dvfs = params.MakeDvfs(gpu);
  // Utilization maps to effective frequency demand for dynamic power.
  out.gpu_watts = PowerAtFrequency(dvfs, params.gpu_utilization) * num_gpus;
  out.network_watts = gpu.net_bw_bytes_per_s * params.network_utilization * 8.0 *
                      params.network_pj_per_bit * kPicojoule * num_gpus;
  out.cooling_watts = CoolingOverheadWatts(gpu, num_gpus, params.cooling);
  return out;
}

double EnergyPerToken(const ClusterPowerBreakdown& power, double tokens_per_s) {
  if (tokens_per_s <= 0.0) {
    return 0.0;
  }
  return power.TotalWatts() / tokens_per_s;
}

FleetEnergyReport FleetEnergyAtKnee(const GpuSpec& gpu, int num_gpus,
                                    double gpu_utilization,
                                    double goodput_tokens_per_s,
                                    double electricity_usd_per_kwh) {
  FleetEnergyReport out;
  ClusterPowerParams params;
  params.gpu_utilization = gpu_utilization;
  out.power = ClusterPower(gpu, num_gpus, params);
  out.opex_usd_per_hour = out.power.TotalWatts() / 1000.0 * electricity_usd_per_kwh;
  out.joules_per_token = EnergyPerToken(out.power, goodput_tokens_per_s);
  return out;
}

double UsdPerMtokenAtKnee(double capex_usd_per_hour, double opex_usd_per_hour,
                          double goodput_tokens_per_s) {
  if (goodput_tokens_per_s <= 0.0) {
    return -1.0;
  }
  double tokens_per_hour = goodput_tokens_per_s * 3600.0;
  return (capex_usd_per_hour + opex_usd_per_hour) / (tokens_per_hour / 1e6);
}

}  // namespace litegpu
