#include "src/power/cluster_energy.h"

#include "src/util/units.h"

namespace litegpu {

ClusterPowerBreakdown ClusterPower(const GpuSpec& gpu, int num_gpus,
                                   const ClusterPowerParams& params) {
  ClusterPowerBreakdown out;
  DvfsModel dvfs = params.MakeDvfs(gpu);
  // Utilization maps to effective frequency demand for dynamic power.
  out.gpu_watts = PowerAtFrequency(dvfs, params.gpu_utilization) * num_gpus;
  out.network_watts = gpu.net_bw_bytes_per_s * params.network_utilization * 8.0 *
                      params.network_pj_per_bit * kPicojoule * num_gpus;
  out.cooling_watts = CoolingOverheadWatts(gpu, num_gpus, params.cooling);
  return out;
}

double EnergyPerToken(const ClusterPowerBreakdown& power, double tokens_per_s) {
  if (tokens_per_s <= 0.0) {
    return 0.0;
  }
  return power.TotalWatts() / tokens_per_s;
}

}  // namespace litegpu
