#include "src/power/cooling.h"

#include <algorithm>

namespace litegpu {

std::string ToString(CoolingRegime regime) {
  switch (regime) {
    case CoolingRegime::kPassiveAir:
      return "passive-air";
    case CoolingRegime::kForcedAir:
      return "forced-air";
    case CoolingRegime::kLiquidCold:
      return "liquid-cold-plate";
    case CoolingRegime::kImmersion:
      return "immersion";
  }
  return "unknown";
}

CoolingRegime RequiredRegime(const GpuSpec& gpu, const CoolingThresholds& thresholds) {
  if (gpu.tdp_watts <= thresholds.passive_air_max_w) {
    return CoolingRegime::kPassiveAir;
  }
  if (gpu.tdp_watts <= thresholds.forced_air_max_w) {
    return CoolingRegime::kForcedAir;
  }
  if (gpu.tdp_watts <= thresholds.liquid_max_w) {
    return CoolingRegime::kLiquidCold;
  }
  return CoolingRegime::kImmersion;
}

bool RackStaysOnAir(const GpuSpec& gpu, int gpus_per_rack,
                    const CoolingThresholds& thresholds) {
  CoolingRegime regime = RequiredRegime(gpu, thresholds);
  if (regime != CoolingRegime::kPassiveAir && regime != CoolingRegime::kForcedAir) {
    return false;
  }
  return gpu.tdp_watts * gpus_per_rack <= thresholds.air_rack_max_w;
}

double CoolingOverheadWatts(const GpuSpec& gpu, int num_gpus,
                            const CoolingThresholds& thresholds) {
  double it_power = gpu.tdp_watts * num_gpus;
  switch (RequiredRegime(gpu, thresholds)) {
    case CoolingRegime::kPassiveAir:
    case CoolingRegime::kForcedAir:
      return it_power * thresholds.air_overhead;
    case CoolingRegime::kLiquidCold:
      return it_power * thresholds.liquid_overhead;
    case CoolingRegime::kImmersion:
      return it_power * thresholds.immersion_overhead;
  }
  return 0.0;
}

double SustainableClockMultiplier(const GpuSpec& gpu, const CoolingThresholds& thresholds) {
  // Headroom against the forced-air envelope maps linearly to extra clock,
  // capped: a part at half the envelope can hold ~+15%; a part at or above
  // it holds nominal only.
  double headroom = 1.0 - gpu.tdp_watts / thresholds.forced_air_max_w;
  double bonus = std::clamp(headroom, 0.0, 0.5) * 0.3;
  return 1.0 + std::min(bonus, 0.15);
}

}  // namespace litegpu
