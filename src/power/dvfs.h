// DVFS (dynamic voltage and frequency scaling) power model.
//
// Supports the paper's Section-3 power-management arguments: down-clocking
// granularity (whole large GPU vs individual Lite-GPUs) and overclocking
// headroom from easier cooling. Dynamic power scales ~f*V^2 with V roughly
// linear in f over the usable range, i.e. P_dyn ~ f^3; static (leakage)
// power does not scale with f.

#pragma once

namespace litegpu {

struct DvfsModel {
  double nominal_power_watts = 700.0;  // at frequency_scale = 1
  // Fraction of nominal power that is static (leakage, HBM refresh, fans).
  double static_fraction = 0.25;
  // Dynamic-power exponent in frequency (3.0 = classic fV^2; silicon fits
  // land between 2 and 3).
  double frequency_exponent = 3.0;
  double min_frequency_scale = 0.4;  // below this, clock gating/off only
  double max_frequency_scale = 1.25;
};

// Power at the given frequency scale (clamped to the model's range):
//   P = P_nom * (static + (1-static) * f^exponent)
double PowerAtFrequency(const DvfsModel& model, double frequency_scale);

// Throughput is ~linear in frequency for compute-bound phases.
double ThroughputAtFrequency(double nominal_throughput, double frequency_scale);

// Frequency scale that serves `load_fraction` of nominal throughput
// (clamped to the model range; load 0 returns min frequency).
double FrequencyForLoad(const DvfsModel& model, double load_fraction);

// Energy efficiency (throughput per watt) relative to nominal, at the given
// frequency scale; > 1 below nominal because of the super-linear power law.
double RelativeEfficiency(const DvfsModel& model, double frequency_scale);

}  // namespace litegpu
