// Cooling-regime model (paper Sections 2-3: "Smaller single-die GPUs can be
// air-cooled separately and even sustain higher clock frequencies without
// requiring advanced cooling"; Section 3 datacenter management: lighter rack
// cooling "can eliminate the need for liquid cooling racks").

#pragma once

#include <string>

#include "src/hw/gpu_spec.h"

namespace litegpu {

enum class CoolingRegime {
  kPassiveAir,    // heatsink + chassis airflow
  kForcedAir,     // dedicated high-static-pressure airflow
  kLiquidCold,    // direct-to-chip cold plates
  kImmersion,     // immersion / rear-door liquid at rack scale
};

std::string ToString(CoolingRegime regime);

struct CoolingThresholds {
  // Per-package TDP limits for each regime (W).
  double passive_air_max_w = 150.0;
  double forced_air_max_w = 400.0;
  double liquid_max_w = 1200.0;
  // Rack-level heat limit before the rack itself needs liquid (W).
  double air_rack_max_w = 40000.0;
  // Cooling overhead (PUE-like multiplier on IT power) per regime.
  double air_overhead = 0.15;
  double liquid_overhead = 0.08;
  double immersion_overhead = 0.05;
};

// Regime required by one GPU package.
CoolingRegime RequiredRegime(const GpuSpec& gpu, const CoolingThresholds& thresholds = {});

// Whether a rack holding `gpus_per_rack` such GPUs can stay on air cooling.
bool RackStaysOnAir(const GpuSpec& gpu, int gpus_per_rack,
                    const CoolingThresholds& thresholds = {});

// Cooling power overhead (W) for a cluster of `num_gpus` of `gpu`.
double CoolingOverheadWatts(const GpuSpec& gpu, int num_gpus,
                            const CoolingThresholds& thresholds = {});

// Sustainable clock multiplier from thermal headroom: packages well below
// the forced-air limit can hold boost clocks ("sustain higher clock
// frequencies"); a simple linear headroom model capped at +15%.
double SustainableClockMultiplier(const GpuSpec& gpu,
                                  const CoolingThresholds& thresholds = {});

}  // namespace litegpu
