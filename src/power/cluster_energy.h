// Cluster-level energy accounting: GPUs + network + cooling, and the
// energy-per-token figure the paper's efficiency arguments turn on.

#pragma once

#include "src/hw/gpu_spec.h"
#include "src/power/cooling.h"
#include "src/power/dvfs.h"

namespace litegpu {

struct ClusterPowerBreakdown {
  double gpu_watts = 0.0;
  double network_watts = 0.0;
  double cooling_watts = 0.0;
  double TotalWatts() const { return gpu_watts + network_watts + cooling_watts; }
};

struct ClusterPowerParams {
  // Average utilization of GPU compute (scales dynamic power).
  double gpu_utilization = 0.7;
  // Network energy per bit (link ends + fabric), J/bit.
  double network_pj_per_bit = 10.0;
  // Average fraction of per-GPU network bandwidth in use.
  double network_utilization = 0.3;
  CoolingThresholds cooling;
  DvfsModel MakeDvfs(const GpuSpec& gpu) const {
    DvfsModel m;
    m.nominal_power_watts = gpu.tdp_watts;
    return m;
  }
};

// Power of `num_gpus` GPUs serving at the given utilization, including their
// fabric and cooling overhead.
ClusterPowerBreakdown ClusterPower(const GpuSpec& gpu, int num_gpus,
                                   const ClusterPowerParams& params = {});

// Joules per token for a deployment producing `tokens_per_s`.
double EnergyPerToken(const ClusterPowerBreakdown& power, double tokens_per_s);

// The energy/opex side of one fleet candidate's knee operating point: the
// cluster power of its knee-sized pool (PUE rides in the cooling model's
// cooling_watts), that power priced at the grid rate, and joules/token at
// the knee's measured goodput.
struct FleetEnergyReport {
  ClusterPowerBreakdown power;
  double opex_usd_per_hour = 0.0;
  double joules_per_token = 0.0;
};
FleetEnergyReport FleetEnergyAtKnee(const GpuSpec& gpu, int num_gpus,
                                    double gpu_utilization,
                                    double goodput_tokens_per_s,
                                    double electricity_usd_per_kwh);

// $/Mtoken at an operating point: hourly capex amortization plus hourly
// energy, over the tokens an hour serves. Returns -1 when
// goodput_tokens_per_s <= 0 — a candidate with no SLO-meeting point must
// report as infeasible, never as $0/Mtok.
double UsdPerMtokenAtKnee(double capex_usd_per_hour, double opex_usd_per_hour,
                          double goodput_tokens_per_s);

}  // namespace litegpu
