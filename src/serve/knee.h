// Knee extraction for swept serving studies: given one SLO verdict per
// load point, pick the knee (the highest offered rate still meeting the
// SLOs) and, for autoscaled sweeps, the cheapest SLO-meeting point by
// served tokens per GPU-hour.
//
// Factored out of the serve-sweep runner so every consumer — the sweep
// report, the fleet-compare study's per-candidate knees — selects by the
// same rule and cannot drift. The view is deliberately tiny: callers copy
// the five fields out of whatever point struct they carry.

#pragma once

#include <vector>

namespace litegpu {

// One swept point as the knee selector sees it.
struct KneePoint {
  double arrival_rate_per_s = 0.0;
  double load = 0.0;  // fraction of the pool's analytic capacity
  bool slo_ok = false;
  double goodput_tokens_per_s = 0.0;
  double makespan_s = 0.0;
  // Autoscaled GPU-hours over the horizon; <= 0 excludes the point from
  // the cheapest selection (fixed-pool points don't integrate one).
  double gpu_hours = 0.0;
};

struct KneeSelection {
  // Highest offered arrival rate among slo_ok points (-1 when none is).
  // Rate ties break toward the lowest load, then the earliest index.
  int knee_index = -1;
  double knee_load = 0.0;
  double knee_goodput_tokens_per_s = 0.0;
  // Cheapest slo_ok point by goodput * makespan / gpu_hours; only computed
  // when the caller asks (autoscaled sweeps), -1 otherwise or when no
  // point qualifies.
  int cheapest_index = -1;
  double cheapest_tokens_per_gpu_hour = 0.0;
};

KneeSelection SelectKneeAndCheapest(const std::vector<KneePoint>& points,
                                    bool autoscaled);

}  // namespace litegpu
