// Discrete-event simulator for a phase-split LLM serving cluster.
//
// Prefill instances batch queued prompts and run one prefill pass at a time;
// completed prompts hand off to decode instances, which run continuous
// batching: every step emits one token per active sequence, new sequences
// join at step boundaries, finished sequences leave. Step/pass latencies
// come from the analytic PerfModel layer via MakePerfModelCallbacks (the
// production path — how the Figure-3 capacities get validated end-to-end in
// bench_validation_serve and the `serve` study), or from raw callbacks
// (kept for tests that need synthetic latency shapes).

#pragma once

#include <functional>

#include "src/serve/workload.h"
#include "src/util/stats.h"

namespace litegpu {

class PerfModel;

struct ServeCallbacks {
  // Seconds for one prefill pass over `batch` prompts.
  std::function<double(int batch)> prefill_time;
  // Seconds for one decode step at the given running batch.
  std::function<double(int batch)> decode_step_time;
  int max_prefill_batch = 8;
  int max_decode_batch = 256;
};

// Callbacks backed by the analytic PerfModels of the chosen prefill and
// decode configurations (batch caps default to the searched best points'
// batches at the call site). Decode steps are priced at the models' worst-
// case (final) context, matching the search's SLO accounting, and both
// models memoize, so the simulator's millions of identical step queries
// cost one roofline evaluation per distinct batch. The PerfModels must
// outlive the returned callbacks.
ServeCallbacks MakePerfModelCallbacks(const PerfModel& prefill_model,
                                      const PerfModel& decode_model,
                                      int max_prefill_batch, int max_decode_batch);

struct ServeClusterConfig {
  int prefill_instances = 1;
  int decode_instances = 1;
  // Stop admitting new work after this simulated time; in-flight requests
  // drain (and are counted in ServeMetrics::in_flight_at_horizon so goodput
  // accounting stays honest).
  double horizon_s = 1e9;
};

struct ServeMetrics {
  SampleSet ttft_s;            // queue wait + prefill pass, per request
  SampleSet tbt_s;             // decode step durations (per step sample)
  int completed_requests = 0;
  int admitted_requests = 0;
  // Admitted before the horizon but still unfinished when it passed (they
  // drain and appear in completed_requests, but their tail tokens landed
  // after the horizon).
  int in_flight_at_horizon = 0;
  double output_tokens = 0.0;
  double makespan_s = 0.0;     // last completion time
  double decode_tokens_per_s = 0.0;
  double prefill_utilization = 0.0;  // busy time / (instances * makespan)
  double decode_utilization = 0.0;
  double mean_decode_batch = 0.0;    // time-weighted
};

ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks);

}  // namespace litegpu
