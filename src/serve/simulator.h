// Discrete-event simulator for a phase-split LLM serving cluster.
//
// Prefill instances batch queued prompts and run one prefill pass at a time;
// completed prompts hand off to decode instances, which run continuous
// batching: every step emits one token per active sequence, new sequences
// join at step boundaries, finished sequences leave. Step/pass latencies
// come from a StepTimeTable (the production fast path — a flat array load
// per simulated step, built once from the analytic PerfModel layer) or from
// raw callbacks (the compatibility/testing layer for synthetic latency
// shapes). Both run the same event loop and produce bit-identical metrics
// when fed the same per-batch times.
//
// Event ordering is fully specified: simultaneous events process in
// (time, kind, instance) order — prefill completions before decode step
// completions, then provisioned instances coming up, then autoscaler
// decision ticks (which read the post-completion state), lower instance /
// sequence number first — so results never depend on the event heap's
// internal layout.
//
// With ServeAutoscalerConfig::enabled the pools grow and shrink
// mid-horizon: scale-ups take effect after a provisioning delay, and
// scale-downs drain (the instance stops taking work and retires when its
// in-flight requests finish). Everything stays single-threaded and
// deterministic — autoscaled runs are bit-identical at any thread count
// just like fixed-pool runs.

#pragma once

#include <functional>
#include <string>

#include "src/perf/step_table.h"
#include "src/serve/faults.h"
#include "src/serve/workload.h"
#include "src/util/stats.h"

namespace litegpu {

class PerfModel;

struct ServeCallbacks {
  // Seconds for one prefill pass over `batch` prompts.
  std::function<double(int batch)> prefill_time;
  // Seconds for one decode step at the given running batch.
  std::function<double(int batch)> decode_step_time;
  int max_prefill_batch = 8;
  int max_decode_batch = 256;
};

// Callbacks backed by the analytic PerfModels of the chosen prefill and
// decode configurations. Decode steps are priced at the models' worst-case
// (final) context, matching the search's SLO accounting.
//
// Lifetime contract (see docs/architecture.md): the returned callbacks
// capture raw references — the PerfModels MUST outlive every call through
// them, or the callbacks dangle. Debug builds assert the models are still
// alive on every call (via PerfModel::liveness_token), so a dangling model
// fails loudly instead of reading freed memory. This is the
// compatibility/testing layer; production paths (the Runner's serve and
// serve-sweep studies, bench_validation_serve) build an owning
// StepTimeTable via StepTimeTable::Build instead, which copies the step
// times out of the models and has no lifetime coupling.
ServeCallbacks MakePerfModelCallbacks(const PerfModel& prefill_model,
                                      const PerfModel& decode_model,
                                      int max_prefill_batch, int max_decode_batch);

// One autoscaler action, in the order it took effect. Scale-ups are
// recorded when the provisioned instance comes online (after the delay);
// scale-downs when the drained instance actually retires.
struct ScaleEvent {
  double time_s = 0.0;
  ScalePool pool = ScalePool::kPrefill;
  int delta = 0;            // +1 instance added, -1 instance retired
  int instances_after = 0;  // provisioned count in the pool afterwards
  std::string reason;       // "backlog" | "utilization" | "forecast"
};

// Mid-horizon autoscaling, resolved from the scenario's AutoscalerKnobs
// plus the platform's analytic per-instance throughputs (which convert
// queued tokens and forecast demand into instance counts). Disabled (the
// default) runs none of the autoscaler code: fixed-pool metrics stay
// bit-identical to the pre-autoscaler simulator.
struct ServeAutoscalerConfig {
  bool enabled = false;
  bool predictive = false;  // false = reactive thresholds only
  double interval_s = 5.0;  // decision cadence
  double delay_s = 10.0;    // provisioning delay for scale-ups
  int min_prefill_instances = 1;
  int max_prefill_instances = 64;
  int min_decode_instances = 1;
  int max_decode_instances = 64;
  double scale_up_backlog_s = 2.0;
  double scale_up_utilization = 0.9;
  double scale_down_utilization = 0.35;
  double forecast_window_s = 30.0;
  double headroom = 1.1;
  // Analytic per-instance throughputs (tokens/s), from the planned
  // deployment's InstanceCapacity.
  double prefill_tokens_per_s = 0.0;
  double decode_tokens_per_s = 0.0;
};

struct ServeClusterConfig {
  int prefill_instances = 1;
  int decode_instances = 1;
  // Stop admitting new work after this simulated time; in-flight requests
  // drain (and are counted in ServeMetrics::in_flight_at_horizon so goodput
  // accounting stays honest).
  double horizon_s = 1e9;
  // Number of request classes to track per-class metrics for. 0 (the
  // default) keeps the classless fast path: no per-class bookkeeping is
  // allocated or updated, and metrics are bit-identical to the pre-class
  // simulator. With N >= 1 (even a declared single-class mix), requests'
  // class_id values (expected in [0, N)) index ServeMetrics::per_class.
  int num_classes = 0;
  // Mid-horizon pool autoscaling; prefill_instances/decode_instances above
  // are the initial pool sizes.
  ServeAutoscalerConfig autoscaler;
  // Fault injection (src/serve/faults.h): instances fail mid-batch over
  // [0, horizon_s], recover via hot spares or repairs, and in-flight work
  // is retried or dropped per the retry policy. Disabled (the default)
  // skips every fault branch: metrics stay bit-identical to the pre-fault
  // simulator.
  ServeFaultConfig faults;
  // Overload protection (src/serve/faults.h): arrivals are shed when the
  // prefill queue is over the depth cap or the estimated TTFT misses the
  // deadline. Works with or without fault injection; disabled (the
  // default) skips the admission check entirely, so metrics stay
  // bit-identical to the pre-shedding simulator.
  SheddingPolicy shedding;
  // Stream TTFT samples into a fixed-bin LatencyHistogram (ttft_hist)
  // instead of the exact SampleSet, making per-point memory O(bins) rather
  // than O(requests). Off by default: exact samples keep every report
  // byte-identical. The Runner forces it on for sharded points (histograms
  // merge deterministically; sample sets would need O(requests) memory per
  // shard anyway) and callers may opt in for million-request horizons.
  // This is an internal execution knob, not a scenario field.
  bool stream_ttft = false;
  // Histogram range for streamed TTFT, [0, hi): samples at or above land
  // in the overflow bucket (count/mean/max stay exact; quantiles there
  // report the max). Sharded runs must all use the FULL horizon's value so
  // shard histograms share bins and merge exactly.
  double ttft_hist_hi_s = 60.0;
};

// Per-class slice of a multi-tenant simulation. TTFT keeps exact samples
// like the global set; TBT streams into a LatencyHistogram where each
// decode step contributes one sample per active sequence of the class (a
// class's tokens all experience the shared step's duration).
struct ServeClassMetrics {
  SampleSet ttft_s;
  LatencyHistogram tbt_s;
  // Streamed TTFT (ServeClusterConfig::stream_ttft); 1-bin placeholder
  // until the simulator arms it, so unstreamed runs don't pay the bins.
  LatencyHistogram ttft_hist{1.0, 1};
  int admitted_requests = 0;
  int completed_requests = 0;
  int in_flight_at_horizon = 0;
  double output_tokens = 0.0;
};

struct ServeMetrics {
  // Queue wait + prefill pass, per request. Exact samples: the count is
  // O(requests), cheap enough to keep.
  SampleSet ttft_s;
  // Decode step durations. One sample per simulated step — O(tokens) of
  // them — so this streams into a fixed-bin histogram: count/min/max/mean
  // are exact, percentiles are within one bin width (~61 us at the default
  // 16384 bins over [0, 1s)) of the exact sample quantile.
  LatencyHistogram tbt_s;
  int completed_requests = 0;
  int admitted_requests = 0;
  // Admitted before the horizon but still unfinished when it passed (they
  // drain and appear in completed_requests, but their tail tokens landed
  // after the horizon).
  int in_flight_at_horizon = 0;
  double output_tokens = 0.0;
  double makespan_s = 0.0;     // last completion time
  double decode_tokens_per_s = 0.0;
  double prefill_utilization = 0.0;  // busy time / (instances * makespan)
  double decode_utilization = 0.0;
  double mean_decode_batch = 0.0;    // time-weighted
  // One entry per class when ServeClusterConfig::num_classes >= 1; empty
  // for classless runs.
  std::vector<ServeClassMetrics> per_class;
  // Autoscaler outcome, filled only when the autoscaler is enabled (all
  // zero/empty otherwise). Instance-seconds integrate each instance's
  // provisioned lifetime over [0, makespan] — the cost side of the
  // "cheapest policy meeting SLOs" question — and utilization denominators
  // switch from instances*makespan to these integrals.
  std::vector<ScaleEvent> scale_events;
  double prefill_instance_seconds = 0.0;
  double decode_instance_seconds = 0.0;
  int peak_prefill_instances = 0;
  int peak_decode_instances = 0;
  int final_prefill_instances = 0;
  int final_decode_instances = 0;
  // Fault outcome, filled only when ServeFaultConfig::enabled (all
  // zero/empty otherwise). The event log is ordered by simulated time and
  // bit-identical across table/callback paths and thread counts. Downtime
  // is per pool, clipped to [0, makespan]; lost_tokens counts discarded
  // work (generated-so-far decode tokens, which are also subtracted from
  // output_tokens so goodput stays honest, plus killed prompt tokens).
  // When faults are enabled the instance-seconds integrals above are
  // filled even without the autoscaler, so availability can be measured
  // as 1 - downtime / provisioned instance-seconds.
  std::vector<FaultEvent> fault_events;
  int retried_requests = 0;
  int dropped_requests = 0;
  double lost_tokens = 0.0;
  double prefill_fault_downtime_s = 0.0;
  double decode_fault_downtime_s = 0.0;
  // Degraded-state outcome (ServeFaultConfig::degraded): instance-seconds
  // spent throttled per pool, the number of degrade windows entered, and
  // the decode tokens emitted by steps completing on a degraded instance.
  double prefill_degraded_instance_s = 0.0;
  double decode_degraded_instance_s = 0.0;
  int degrade_windows = 0;
  double degraded_output_tokens = 0.0;
  // Shedding outcome (ServeClusterConfig::shedding): shed arrivals count as
  // admitted but never enter the prefill queue. The log is ordered by
  // simulated time and bit-identical across table/callback paths and
  // thread counts, like fault_events.
  int shed_requests = 0;
  std::vector<ShedEvent> shed_events;
  // Recovery tracking (fault runs only): the largest single outage is the
  // failure event group — one independent failure, or one domain outage's
  // members — that discarded the most tokens; time_to_drain_s measures
  // from that instant until both queues next become empty (so a backlog
  // that only drains because admissions ended shows up as a drain time
  // reaching past the horizon). -1 when no in-flight work was ever killed.
  double largest_outage_time_s = -1.0;
  double largest_outage_lost_tokens = 0.0;
  double time_to_drain_s = -1.0;
  // Raw busy-time aggregates behind the utilization / mean-batch ratios.
  // Ratios of sums are not sums of ratios, so the shard merge needs the
  // numerators and denominators separately.
  double prefill_busy_s = 0.0;
  double decode_busy_s = 0.0;
  double decode_batch_time_product = 0.0;
  // Streamed TTFT (ServeClusterConfig::stream_ttft): ttft_streamed says
  // which of ttft_s / ttft_hist carries the distribution. The placeholder
  // histogram has one bin so unstreamed metrics don't allocate 16k bins.
  bool ttft_streamed = false;
  LatencyHistogram ttft_hist{1.0, 1};
  // High-water mark of the predictive autoscaler's pruned demand window —
  // the regression guard that long horizons keep O(rate * window) entries,
  // not O(admitted requests). 0 unless the predictive path ran.
  size_t peak_demand_entries = 0;
};

// Compatibility/testing path: every step query pays std::function dispatch
// (and, for PerfModel-backed callbacks, a mutex + map lookup).
ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks);

// Fast path: the same event loop with step times served from the dense
// table — a bounds-checked array load per query, lock-free, so one
// immutable table can drive any number of concurrent sweep workers.
// Metrics are bit-identical to the callback path fed the same per-batch
// times (tested in serve_test and gated in bench_serve_scale).
ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const StepTimeTable& table);

// SoA entry points: the simulator's hot loops read arrival times and token
// counts column-wise, so callers that already hold a RequestSoA skip the
// AoS conversion. The vector<Request> overloads above convert and
// delegate — both produce bit-identical metrics.
ServeMetrics RunServeSimulation(const RequestSoA& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks);
ServeMetrics RunServeSimulation(const RequestSoA& requests,
                                const ServeClusterConfig& config,
                                const StepTimeTable& table);

// Deterministically folds per-shard metrics (independent sub-horizon
// replications of `config`, shard i seeded with ShardSubstreamSeed) into
// one ServeMetrics, in shard-index order regardless of completion order or
// thread count. Counts, token totals, and busy-time integrals sum;
// makespan is the summed sub-horizon makespan; rates and utilizations are
// recomputed as ratios of the summed aggregates; TTFT/TBT histograms merge
// bin-wise (every shard must use the same histogram configuration — the
// Runner arms them all with the full horizon's range). Shards must be
// single-pool-shape runs: the Runner's validation rejects shards with the
// autoscaler, faults, or time-inhomogeneous arrivals, so scale/fault event
// logs are empty by construction.
ServeMetrics MergeServeShardMetrics(const ServeClusterConfig& config,
                                    const std::vector<ServeMetrics>& shards);

}  // namespace litegpu
