#include "src/serve/faults.h"

#include <algorithm>
#include <queue>

namespace litegpu {

const char* ToString(ScalePool pool) {
  return pool == ScalePool::kPrefill ? "prefill" : "decode";
}

const char* ToString(FaultRetryPolicy policy) {
  switch (policy) {
    case FaultRetryPolicy::kRetry:
      return "retry";
    case FaultRetryPolicy::kDrop:
      return "drop";
    case FaultRetryPolicy::kRetryWithBudget:
      return "retry_with_budget";
  }
  return "retry";
}

bool ParseFaultRetryPolicy(const std::string& text, FaultRetryPolicy* out) {
  for (FaultRetryPolicy policy : {FaultRetryPolicy::kRetry, FaultRetryPolicy::kDrop,
                                  FaultRetryPolicy::kRetryWithBudget}) {
    if (text == ToString(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

const char* ToString(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kFailure:
      return "failure";
    case FaultEventKind::kSpareActivation:
      return "spare_activation";
    case FaultEventKind::kRepair:
      return "repair";
    case FaultEventKind::kSpareReturn:
      return "spare_return";
    case FaultEventKind::kDegradeStart:
      return "degrade_start";
    case FaultEventKind::kDegradeEnd:
      return "degrade_end";
  }
  return "failure";
}

const char* ToString(ShedReason reason) {
  return reason == ShedReason::kQueueDepth ? "queue_depth" : "deadline";
}

uint64_t FaultSubstreamSeed(uint64_t seed) {
  // A constant XOR before the SplitMix64 walk lands this stream away from
  // ClassSubstreamSeed's (which draws consecutive values from
  // SplitMix64(seed)), so fault gaps and workload draws never collide.
  return SplitMix64(seed ^ 0xFA17C0DEFA17C0DEULL).Next();
}

namespace {
// Tags land each substream family away from the others (and from
// ClassSubstreamSeed / ShardSubstreamSeed): per-slot failure gaps, per-domain
// outage gaps, and per-slot degrade gap+duration pairs never collide.
constexpr uint64_t kFailPrefillTag = 0x9E6BB5F86BDCF4ULL;
constexpr uint64_t kFailDecodeTag = 0xD1B54A32D192EDULL;
constexpr uint64_t kDomainPrefillTag = 0xB4C7A9E2D15F31ULL;
constexpr uint64_t kDomainDecodeTag = 0xC8D3B7F4E26A42ULL;
constexpr uint64_t kDegradePrefillTag = 0xD9E4C8A5F37B53ULL;
constexpr uint64_t kDegradeDecodeTag = 0xEAF5D9B6A48C64ULL;
}  // namespace

Rng& FaultStreams::Slot(std::vector<Rng>& slots, uint64_t tag, int slot) {
  while (static_cast<int>(slots.size()) <= slot) {
    // Seed depends only on (seed_, tag, slot index): two mixing rounds so
    // neighbouring slots land far apart in SplitMix64 space.
    uint64_t base = SplitMix64(seed_ ^ tag).Next();
    slots.emplace_back(
        SplitMix64(base + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(slots.size() + 1))
            .Next());
  }
  return slots[static_cast<size_t>(slot)];
}

double FaultStreams::NextFailureGap(ScalePool pool, int slot, double rate_per_s) {
  std::vector<Rng>& slots =
      pool == ScalePool::kPrefill ? prefill_slots_ : decode_slots_;
  uint64_t tag = pool == ScalePool::kPrefill ? kFailPrefillTag : kFailDecodeTag;
  return Slot(slots, tag, slot).Exponential(rate_per_s);
}

double FaultStreams::NextDomainFailureGap(ScalePool pool, int domain,
                                          double rate_per_s) {
  std::vector<Rng>& slots =
      pool == ScalePool::kPrefill ? prefill_domains_ : decode_domains_;
  uint64_t tag = pool == ScalePool::kPrefill ? kDomainPrefillTag : kDomainDecodeTag;
  return Slot(slots, tag, domain).Exponential(rate_per_s);
}

double FaultStreams::NextDegradeGap(ScalePool pool, int slot, double rate_per_s) {
  std::vector<Rng>& slots =
      pool == ScalePool::kPrefill ? prefill_degrade_ : decode_degrade_;
  uint64_t tag = pool == ScalePool::kPrefill ? kDegradePrefillTag : kDegradeDecodeTag;
  return Slot(slots, tag, slot).Exponential(rate_per_s);
}

double FaultStreams::NextDegradeDuration(ScalePool pool, int slot, double mean_s) {
  std::vector<Rng>& slots =
      pool == ScalePool::kPrefill ? prefill_degrade_ : decode_degrade_;
  uint64_t tag = pool == ScalePool::kPrefill ? kDegradePrefillTag : kDegradeDecodeTag;
  return Slot(slots, tag, slot).Exponential(1.0 / mean_s);
}

FaultAvailabilityStats SimulateFaultAvailability(double failure_rate_per_s,
                                                 double repair_s,
                                                 double spare_activation_s,
                                                 int num_spares, int num_instances,
                                                 double duration_s, uint64_t seed) {
  FaultAvailabilityStats stats;
  if (failure_rate_per_s <= 0.0 || num_instances <= 0 || duration_s <= 0.0) {
    stats.availability = 1.0;
    return stats;
  }
  // Same mechanics as the serve loop's injection, minus traffic: each
  // instance alternates exponential up-gaps with a downtime of either the
  // spare-activation delay (spare free: consume it, device returns to the
  // spare set once repaired) or the full repair.
  enum class Kind { kFail, kRecover, kSpareReturn };
  struct Ev {
    double t;
    Kind kind;
    int instance;
    bool operator>(const Ev& other) const {
      if (t != other.t) {
        return t > other.t;
      }
      if (kind != other.kind) {
        return kind > other.kind;
      }
      return instance > other.instance;
    }
  };
  FaultStreams streams(seed);
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> events;
  int spares_free = std::max(num_spares, 0);
  double downtime = 0.0;
  std::vector<double> down_since(static_cast<size_t>(num_instances), -1.0);
  for (int i = 0; i < num_instances; ++i) {
    double t = streams.NextFailureGap(ScalePool::kPrefill, i, failure_rate_per_s);
    if (t <= duration_s) {
      events.push({t, Kind::kFail, i});
    }
  }
  while (!events.empty()) {
    Ev ev = events.top();
    events.pop();
    if (ev.kind == Kind::kSpareReturn) {
      ++spares_free;
      continue;
    }
    if (ev.kind == Kind::kFail) {
      ++stats.failures;
      down_since[static_cast<size_t>(ev.instance)] = ev.t;
      double delay = repair_s;
      if (spares_free > 0) {
        --spares_free;
        ++stats.spare_masked;
        delay = spare_activation_s;
        events.push({ev.t + repair_s, Kind::kSpareReturn, ev.instance});
      }
      events.push({ev.t + delay, Kind::kRecover, ev.instance});
      continue;
    }
    // kRecover: accumulate the down interval clipped to the horizon, then
    // draw the next gap.
    double& since = down_since[static_cast<size_t>(ev.instance)];
    downtime += std::min(ev.t, duration_s) - std::min(since, duration_s);
    since = -1.0;
    double next =
        ev.t + streams.NextFailureGap(ScalePool::kPrefill, ev.instance, failure_rate_per_s);
    if (next <= duration_s) {
      events.push({next, Kind::kFail, ev.instance});
    }
  }
  for (double since : down_since) {
    if (since >= 0.0) {
      downtime += duration_s - std::min(since, duration_s);
    }
  }
  stats.availability = 1.0 - downtime / (static_cast<double>(num_instances) * duration_s);
  return stats;
}

}  // namespace litegpu
