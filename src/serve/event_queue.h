// Event queue for the serving simulator's discrete-event loop.
//
// The simulator pops the earliest pending event millions of times per
// point, and a binary heap pays O(log n) comparator-driven pointer chasing
// per operation. CalendarEventQueue is a classic calendar/bucket queue:
// time is quantized into fixed-width buckets covering a rotating window;
// pushes append to the containing bucket in O(1), pops scan the earliest
// non-empty bucket for its minimum. Because buckets partition time into
// disjoint ascending ranges, the bucket scan's minimum IS the global
// minimum, and ties (equal time) always land in the same bucket — so the
// pop order is exactly the fully-specified (time, kind, instance) order of
// ServeEvent's comparator, independent of the bucket width. Width only
// affects performance; correctness is golden-checked against the reference
// heap (tests/event_queue_test.cc, bench_serve_scale).
//
// The queue exploits the simulator's monotonicity: every push is at or
// after the time of the last pop (events are always scheduled at now + a
// non-negative delay), so the window only ever rotates forward. Pushes
// beyond the window land in an overflow min-heap and are re-bucketed when
// the window advances past them.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace litegpu {

// Simultaneous events process in a fully specified order: domain outages
// first (they expand to member failures at one timestamp), then independent
// failures (a completion at the same instant loses the race and is killed),
// then degrade transitions (a dispatch at the same instant sees the new
// multiplier), then completions, then instances coming up
// (autoscaler-provisioned capacity, fault recoveries, spare returns), then
// autoscaler decision ticks — so a decision at time T sees every completion
// and recovery at T, and results never depend on the event container's
// internal layout. With faults disabled no fault kinds are ever scheduled,
// so the relative order of the pre-fault kinds (and every metric) is
// unchanged.
enum class ServeEventKind : uint8_t {
  kPrefillDomainFail,
  kDecodeDomainFail,
  kPrefillFail,
  kDecodeFail,
  kPrefillDegradeStart,
  kDecodeDegradeStart,
  kPrefillDegradeEnd,
  kDecodeDegradeEnd,
  kPrefillDone,
  kDecodeStepDone,
  kPrefillUp,
  kDecodeUp,
  kPrefillRecover,
  kDecodeRecover,
  kPrefillSpareReturn,
  kDecodeSpareReturn,
  kAutoscaleTick,
};

struct ServeEvent {
  double time_s = 0.0;
  ServeEventKind kind = ServeEventKind::kPrefillDone;
  int instance = 0;
  // Instance lifecycle epoch at scheduling time (fault runs only): a
  // failure bumps its instance's epoch, so completion and failure events
  // scheduled before it are discarded as stale on pop. Always 0 with
  // faults disabled; deliberately not part of the ordering.
  int epoch = 0;
  // Full ordering so simultaneous events pop in a specified order —
  // (time, kind, instance/sequence) — instead of any container's internal
  // layout.
  bool operator>(const ServeEvent& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    if (kind != other.kind) {
      return kind > other.kind;
    }
    return instance > other.instance;
  }
  bool operator<(const ServeEvent& other) const { return other > *this; }
};

class CalendarEventQueue {
 public:
  // `bucket_width` is the time quantum; ~one expected event per bucket is
  // ideal but any positive width is correct. `buckets` is the window size
  // in buckets (the window spans buckets * width seconds).
  explicit CalendarEventQueue(double bucket_width = 1e-3, size_t buckets = 1024);

  // Re-arms an existing queue for a new run, keeping allocated bucket
  // capacity (the per-point scratch arena reuses one queue across points).
  // Requires the queue to be empty.
  void Reset(double bucket_width);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Push/PeekTime/Pop are defined inline below: the simulator calls each
  // millions of times per point and the call overhead is measurable.
  void Push(const ServeEvent& e);
  // Time of the earliest event; undefined on an empty queue.
  double PeekTime();
  // Removes and returns the minimum by the full (time, kind, instance)
  // comparator; undefined on an empty queue.
  ServeEvent Pop();

 private:
  void PushOverflow(const ServeEvent& e);
  // Index of the earliest non-empty bucket at or after cursor_, advancing
  // cursor_ (rotating the window over the overflow heap when the in-window
  // buckets drain). Requires size_ > 0.
  void AdvanceCursor();
  // Position of the minimum event within bucket `b` (full comparator).
  size_t MinInBucket(size_t b) const;
  size_t BucketIndex(double t) const;

  double width_ = 1e-3;
  double window_start_ = 0.0;  // time at bucket 0 of the current window
  size_t cursor_ = 0;          // first possibly-non-empty bucket
  std::vector<std::vector<ServeEvent>> buckets_;
  std::vector<ServeEvent> overflow_;  // min-heap, events >= window end
  size_t in_window_ = 0;              // events currently bucketed
  size_t size_ = 0;
  // Cached location of the minimum, valid between a PeekTime and the next
  // Pop (a Push can only move it to the pushed event). Saves the bucket
  // re-scan on the ubiquitous peek-then-pop sequence.
  bool min_valid_ = false;
  size_t min_bucket_ = 0;
  size_t min_pos_ = 0;
};

inline size_t CalendarEventQueue::BucketIndex(double t) const {
  double rel = (t - window_start_) / width_;
  if (rel <= 0.0) {
    return 0;
  }
  // Compare in double before casting: a far-future event (failure times can
  // sit at the full horizon) would overflow the size_t cast.
  if (rel >= static_cast<double>(buckets_.size())) {
    return buckets_.size();  // == size() means "past the window"
  }
  return static_cast<size_t>(rel);
}

inline void CalendarEventQueue::Push(const ServeEvent& e) {
  ++size_;
  size_t idx = BucketIndex(e.time_s);
  if (idx >= buckets_.size()) {
    PushOverflow(e);
    return;
  }
  // The simulator only pushes at or after the last popped time, but an
  // arrival between two events may schedule work into a bucket the cursor
  // already skimmed past (it was empty then) — walk the cursor back so the
  // next scan sees it.
  if (idx < cursor_) {
    cursor_ = idx;
  }
  buckets_[idx].push_back(e);
  ++in_window_;
  if (min_valid_ && e < buckets_[min_bucket_][min_pos_]) {
    min_bucket_ = idx;
    min_pos_ = buckets_[idx].size() - 1;
  }
}

inline double CalendarEventQueue::PeekTime() {
  if (!min_valid_) {
    AdvanceCursor();
    min_bucket_ = cursor_;
    min_pos_ = MinInBucket(cursor_);
    min_valid_ = true;
  }
  return buckets_[min_bucket_][min_pos_].time_s;
}

inline ServeEvent CalendarEventQueue::Pop() {
  if (!min_valid_) {
    PeekTime();
  }
  std::vector<ServeEvent>& bucket = buckets_[min_bucket_];
  ServeEvent e = bucket[min_pos_];
  // Swap-remove: the order of the survivors inside a bucket is irrelevant —
  // every lookup scans the bucket with the full comparator.
  bucket[min_pos_] = bucket.back();
  bucket.pop_back();
  --in_window_;
  --size_;
  min_valid_ = false;
  return e;
}

// Reference implementation with the exact container the simulator used
// before the calendar queue: a binary min-heap over the same comparator.
// Kept as the ground truth for the randomized property test and the bench
// identity gates.
class HeapEventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void Push(const ServeEvent& e);
  double PeekTime() const { return heap_.front().time_s; }
  ServeEvent Pop();

 private:
  std::vector<ServeEvent> heap_;  // min-heap via std::greater
};

}  // namespace litegpu
