// Synthetic request workload generator. Substitutes for the production
// traces the paper's SLOs come from (Splitwise [40]): Poisson arrivals and
// lognormal prompt/output lengths with the paper's median prompt of 1500
// tokens. Multi-tenant mixes generate one independent Poisson substream per
// request class and merge them into a single arrival-ordered trace.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace litegpu {

struct Request {
  int id = 0;
  // Index into the generating mix's class list; 0 for single-class
  // workloads. The simulator threads it through to per-class metrics.
  int class_id = 0;
  double arrival_s = 0.0;
  int prompt_tokens = 1500;
  int output_tokens = 256;
};

struct WorkloadSpec {
  double arrival_rate_per_s = 10.0;
  double duration_s = 300.0;
  int median_prompt_tokens = 1500;   // paper: reported production median
  double prompt_sigma = 0.0;         // lognormal sigma; 0 = constant (paper)
  int median_output_tokens = 256;
  double output_sigma = 0.0;
  uint64_t seed = 0xC0FFEE;
};

// Requests sorted by arrival time.
std::vector<Request> GenerateWorkload(const WorkloadSpec& spec);

// One request class of a multi-tenant mix: its own absolute arrival rate
// and prompt/output length distributions. Rates are absolute (requests/s),
// not shares — the caller splits the offered load across classes, so a
// class's arrival process is fully determined by its own entry.
struct ClassWorkload {
  double arrival_rate_per_s = 10.0;
  int median_prompt_tokens = 1500;
  double prompt_sigma = 0.0;
  int median_output_tokens = 256;
  double output_sigma = 0.0;
};

struct MultiClassWorkloadSpec {
  std::vector<ClassWorkload> classes;
  double duration_s = 300.0;
  uint64_t seed = 0xC0FFEE;
};

// The RNG seed for class `index`'s substream. Class 0 inherits the base
// seed, so a one-class mix is bit-identical to GenerateWorkload with the
// same spec; later classes draw consecutive values from one SplitMix64
// stream over the base seed. Seeds depend only on (seed, index), so
// APPENDING a class never perturbs an existing class's arrivals or lengths.
uint64_t ClassSubstreamSeed(uint64_t seed, size_t index);

// Generates every class's substream independently and merges by arrival
// time (ties break by class index, then per-class order). Request ids are
// assigned in merged order; class_id is the index into spec.classes.
std::vector<Request> GenerateMultiClassWorkload(const MultiClassWorkloadSpec& spec);

// Totals used for capacity planning.
double TotalPromptTokens(const std::vector<Request>& requests);
double TotalOutputTokens(const std::vector<Request>& requests);

}  // namespace litegpu
