// Synthetic request workload generator. Substitutes for the production
// traces the paper's SLOs come from (Splitwise [40]): Poisson arrivals and
// lognormal prompt/output lengths with the paper's median prompt of 1500
// tokens.

#pragma once

#include <cstdint>
#include <vector>

namespace litegpu {

struct Request {
  int id = 0;
  double arrival_s = 0.0;
  int prompt_tokens = 1500;
  int output_tokens = 256;
};

struct WorkloadSpec {
  double arrival_rate_per_s = 10.0;
  double duration_s = 300.0;
  int median_prompt_tokens = 1500;   // paper: reported production median
  double prompt_sigma = 0.0;         // lognormal sigma; 0 = constant (paper)
  int median_output_tokens = 256;
  double output_sigma = 0.0;
  uint64_t seed = 0xC0FFEE;
};

// Requests sorted by arrival time.
std::vector<Request> GenerateWorkload(const WorkloadSpec& spec);

// Totals used for capacity planning.
double TotalPromptTokens(const std::vector<Request>& requests);
double TotalOutputTokens(const std::vector<Request>& requests);

}  // namespace litegpu
