// Synthetic request workload generator. Substitutes for the production
// traces the paper's SLOs come from (Splitwise [40]): Poisson arrivals and
// lognormal prompt/output lengths with the paper's median prompt of 1500
// tokens. Multi-tenant mixes generate one independent Poisson substream per
// request class and merge them into a single arrival-ordered trace.
//
// Arrivals need not be stationary: an ArrivalProcess modulates the Poisson
// rate over time (diurnal curve, on/off bursts) or replays a recorded
// trace. Non-stationary kinds reuse the same per-class substreams, so a
// scenario that omits the block is bit-identical to the legacy generator.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace litegpu {

struct Request {
  int id = 0;
  // Index into the generating mix's class list; 0 for single-class
  // workloads. The simulator threads it through to per-class metrics.
  int class_id = 0;
  double arrival_s = 0.0;
  int prompt_tokens = 1500;
  int output_tokens = 256;
};

// Structure-of-arrays mirror of a Request stream. The simulator's hot loop
// touches arrival times, token counts, and class ids in separate passes, so
// splitting them into parallel vectors keeps each pass within a contiguous
// stride instead of jumping Request-sized records. Index i across all four
// vectors is request i in arrival order (ties already resolved by the
// generator), which is also its id.
struct RequestSoA {
  std::vector<double> arrival_s;
  std::vector<int> prompt_tokens;
  std::vector<int> output_tokens;
  std::vector<int> class_id;

  size_t size() const { return arrival_s.size(); }
  bool empty() const { return arrival_s.empty(); }
  void Reserve(size_t n);
  void Clear();
  void PushBack(double arrival, int prompt, int output, int cls);

  static RequestSoA FromRequests(const std::vector<Request>& requests);
};

// How request arrivals are distributed over the horizon. kPoisson is the
// stationary legacy process; the other kinds modulate or replace it:
//   kDiurnal — inhomogeneous Poisson whose rate is the base rate times a
//     piecewise-linear multiplier curve (thinning keeps substreams stable).
//   kOnOff   — MMPP-style bursts: alternating exponentially-distributed on
//     and off phases, each scaling the base rate by its own multiplier.
//   kTrace   — replay of recorded arrival times; lengths are still sampled
//     from the class's distributions.
enum class ArrivalKind {
  kPoisson,
  kDiurnal,
  kOnOff,
  kTrace,
};

struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // diurnal: multiplier curve control points, evenly spaced over one
  // period and interpolated linearly (wrapping back to the first point).
  // period_s of 0 stretches one period over the whole horizon.
  double period_s = 0.0;
  std::vector<double> multipliers;
  // onoff: mean phase durations and the rate multiplier inside each phase.
  // The process starts in the on phase.
  double on_mean_s = 30.0;
  double off_mean_s = 30.0;
  double on_multiplier = 2.0;
  double off_multiplier = 0.25;
  // trace: ascending arrival timestamps (seconds from horizon start).
  std::vector<double> times_s;
};

// The diurnal rate multiplier at time t (1.0 for every other kind).
// duration_s substitutes for period_s when the latter is 0.
double ArrivalRateMultiplier(const ArrivalProcess& process, double duration_s, double t);

// The peak rate multiplier over the horizon — the thinning envelope for
// diurnal, max(on, off) for onoff, 1.0 otherwise.
double PeakRateMultiplier(const ArrivalProcess& process);

// Mean arrival rate of a trace over [0, horizon): replayed-count / horizon.
// Used to plan pools and report loads for trace scenarios; 0 for an empty
// window.
double MeanTraceRatePerS(const ArrivalProcess& process, double horizon_s);

struct WorkloadSpec {
  double arrival_rate_per_s = 10.0;
  double duration_s = 300.0;
  int median_prompt_tokens = 1500;   // paper: reported production median
  double prompt_sigma = 0.0;         // lognormal sigma; 0 = constant (paper)
  int median_output_tokens = 256;
  double output_sigma = 0.0;
  uint64_t seed = 0xC0FFEE;
  ArrivalProcess arrival;            // default: stationary Poisson
};

// Requests sorted by arrival time.
std::vector<Request> GenerateWorkload(const WorkloadSpec& spec);

// One request class of a multi-tenant mix: its own absolute arrival rate
// and prompt/output length distributions. Rates are absolute (requests/s),
// not shares — the caller splits the offered load across classes, so a
// class's arrival process is fully determined by its own entry.
struct ClassWorkload {
  double arrival_rate_per_s = 10.0;
  int median_prompt_tokens = 1500;
  double prompt_sigma = 0.0;
  int median_output_tokens = 256;
  double output_sigma = 0.0;
};

struct MultiClassWorkloadSpec {
  std::vector<ClassWorkload> classes;
  double duration_s = 300.0;
  uint64_t seed = 0xC0FFEE;
  // Shared arrival process shape; each class modulates its own rate by it.
  // For kTrace the recorded times are split across classes by rate share,
  // which couples the split to the full rate vector — appending a class
  // redistributes trace arrivals (unlike the independent-substream kinds,
  // which never perturb existing classes).
  ArrivalProcess arrival;
};

// The RNG seed for class `index`'s substream. Class 0 inherits the base
// seed, so a one-class mix is bit-identical to GenerateWorkload with the
// same spec; later classes draw consecutive values from one SplitMix64
// stream over the base seed. Seeds depend only on (seed, index), so
// APPENDING a class never perturbs an existing class's arrivals or lengths.
uint64_t ClassSubstreamSeed(uint64_t seed, size_t index);

// The RNG seed for sub-horizon shard `shard` of a sharded serve point.
// Shard 0 inherits the base seed, so a one-shard run is bit-identical to
// the unsharded path; later shards draw from a SplitMix64 walk over a
// tagged mix of the base seed, landing far from both ClassSubstreamSeed's
// stream (consecutive values of SplitMix64(seed)) and FaultSubstreamSeed's.
// Seeds depend only on (seed, shard), so raising the shard count never
// perturbs an existing shard's workload.
uint64_t ShardSubstreamSeed(uint64_t seed, size_t shard);

// Generates every class's substream independently and merges by arrival
// time (ties break by class index, then per-class order). Request ids are
// assigned in merged order; class_id is the index into spec.classes.
std::vector<Request> GenerateMultiClassWorkload(const MultiClassWorkloadSpec& spec);

// Totals used for capacity planning.
double TotalPromptTokens(const std::vector<Request>& requests);
double TotalOutputTokens(const std::vector<Request>& requests);

}  // namespace litegpu
