#include "src/serve/simulator.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "src/perf/model.h"

namespace litegpu {

ServeCallbacks MakePerfModelCallbacks(const PerfModel& prefill_model,
                                      const PerfModel& decode_model,
                                      int max_prefill_batch, int max_decode_batch) {
  ServeCallbacks callbacks;
  callbacks.max_prefill_batch = max_prefill_batch;
  callbacks.max_decode_batch = max_decode_batch;
  const PerfModel* prefill = &prefill_model;
  const PerfModel* decode = &decode_model;
#ifndef NDEBUG
  // Debug builds carry each model's liveness token so a dangling PerfModel
  // trips an assert at the first call instead of reading freed memory (the
  // lifetime contract in the header / docs/architecture.md).
  std::weak_ptr<const void> prefill_alive = prefill_model.liveness_token();
  std::weak_ptr<const void> decode_alive = decode_model.liveness_token();
  callbacks.prefill_time = [prefill, prefill_alive](int batch) {
    assert(!prefill_alive.expired() &&
           "MakePerfModelCallbacks: prefill PerfModel destroyed before the callbacks");
    return prefill->Prefill(batch).ttft_s;
  };
  callbacks.decode_step_time = [decode, decode_alive](int batch) {
    assert(!decode_alive.expired() &&
           "MakePerfModelCallbacks: decode PerfModel destroyed before the callbacks");
    return decode->Decode(batch).tbt_s;
  };
#else
  callbacks.prefill_time = [prefill](int batch) { return prefill->Prefill(batch).ttft_s; };
  callbacks.decode_step_time = [decode](int batch) { return decode->Decode(batch).tbt_s; };
#endif
  return callbacks;
}

namespace {

enum class EventKind { kPrefillDone, kDecodeStepDone };

struct Event {
  double time_s = 0.0;
  EventKind kind = EventKind::kPrefillDone;
  int instance = 0;
  // Full ordering so simultaneous completions pop in a specified order —
  // prefill completions before decode steps, lower instance first — instead
  // of the heap's internal layout (which standard libraries are free to
  // differ on).
  bool operator>(const Event& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    if (kind != other.kind) {
      return kind > other.kind;
    }
    return instance > other.instance;
  }
};

struct PrefillInstance {
  bool busy = false;
  std::vector<int> batch;  // request indices being prefilled
  double busy_time = 0.0;
};

struct DecodeInstance {
  std::vector<int> remaining;      // output tokens left per active sequence
  std::vector<int> request_index;  // parallel array for bookkeeping
  double current_step_started = 0.0;
  double current_step_duration = 0.0;
  bool stepping = false;
  double busy_time = 0.0;
  double batch_time_product = 0.0;  // integral of batch over busy time
};

// Step-time providers for the shared event loop. Both answer the same two
// questions; the table one compiles down to an array load, the callback one
// pays std::function dispatch (and whatever the callback itself does).
struct TableStepper {
  const StepTimeTable& table;
  double PrefillTime(int batch) const { return table.PrefillTime(batch); }
  double DecodeStepTime(int batch) const { return table.DecodeStepTime(batch); }
  int MaxPrefillBatch() const { return table.max_prefill_batch(); }
  int MaxDecodeBatch() const { return table.max_decode_batch(); }
  bool Valid() const { return !table.empty(); }
};

struct CallbackStepper {
  const ServeCallbacks& callbacks;
  double PrefillTime(int batch) const { return callbacks.prefill_time(batch); }
  double DecodeStepTime(int batch) const { return callbacks.decode_step_time(batch); }
  int MaxPrefillBatch() const { return callbacks.max_prefill_batch; }
  int MaxDecodeBatch() const { return callbacks.max_decode_batch; }
  bool Valid() const {
    return static_cast<bool>(callbacks.prefill_time) &&
           static_cast<bool>(callbacks.decode_step_time);
  }
};

template <typename Stepper>
ServeMetrics RunSimulation(const std::vector<Request>& requests,
                           const ServeClusterConfig& config, const Stepper& stepper) {
  ServeMetrics metrics;
  if (!stepper.Valid() || config.prefill_instances <= 0 || config.decode_instances <= 0) {
    return metrics;
  }

  std::vector<PrefillInstance> prefill(config.prefill_instances);
  std::vector<DecodeInstance> decode(config.decode_instances);
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::deque<int> prefill_queue;  // request indices
  std::deque<int> decode_queue;   // request indices (prefilled, awaiting decode)

  // Per-class bookkeeping only exists when the caller asked for it, so
  // single-class runs pay nothing and stay bit-identical to the pre-class
  // simulator. Out-of-range class ids fold into class 0 rather than
  // indexing out of bounds (the Runner validates them upstream).
  const bool track_classes = config.num_classes > 0;
  if (track_classes) {
    metrics.per_class.resize(static_cast<size_t>(config.num_classes));
  }
  std::vector<size_t> step_class_counts(track_classes ? config.num_classes : 0, 0);
  auto class_of = [&](int req) {
    int cid = requests[static_cast<size_t>(req)].class_id;
    return (cid >= 0 && cid < config.num_classes) ? cid : 0;
  };

  size_t next_arrival = 0;
  double now = 0.0;

  auto try_start_prefill = [&](double t) {
    for (int i = 0; i < config.prefill_instances; ++i) {
      if (prefill[i].busy || prefill_queue.empty()) {
        continue;
      }
      int batch = std::min<int>(stepper.MaxPrefillBatch(),
                                static_cast<int>(prefill_queue.size()));
      prefill[i].batch.clear();
      for (int b = 0; b < batch; ++b) {
        prefill[i].batch.push_back(prefill_queue.front());
        prefill_queue.pop_front();
      }
      double duration = stepper.PrefillTime(batch);
      prefill[i].busy = true;
      prefill[i].busy_time += duration;
      events.push({t + duration, EventKind::kPrefillDone, i});
    }
  };

  auto try_start_decode_step = [&](double t) {
    for (int i = 0; i < config.decode_instances; ++i) {
      DecodeInstance& inst = decode[i];
      if (inst.stepping) {
        continue;
      }
      // Admit waiting sequences at the step boundary.
      while (!decode_queue.empty() &&
             static_cast<int>(inst.remaining.size()) < stepper.MaxDecodeBatch()) {
        int req = decode_queue.front();
        decode_queue.pop_front();
        inst.remaining.push_back(std::max(1, requests[req].output_tokens));
        inst.request_index.push_back(req);
      }
      if (inst.remaining.empty()) {
        continue;
      }
      int batch = static_cast<int>(inst.remaining.size());
      double duration = stepper.DecodeStepTime(batch);
      inst.stepping = true;
      inst.current_step_started = t;
      inst.current_step_duration = duration;
      inst.busy_time += duration;
      inst.batch_time_product += batch * duration;
      events.push({t + duration, EventKind::kDecodeStepDone, i});
    }
  };

  for (;;) {
    double arrival_t = next_arrival < requests.size() ? requests[next_arrival].arrival_s
                                                      : std::numeric_limits<double>::max();
    double event_t =
        events.empty() ? std::numeric_limits<double>::max() : events.top().time_s;
    if (arrival_t == std::numeric_limits<double>::max() &&
        event_t == std::numeric_limits<double>::max()) {
      break;
    }

    if (arrival_t <= event_t) {
      now = arrival_t;
      if (now <= config.horizon_s) {
        prefill_queue.push_back(static_cast<int>(next_arrival));
        ++metrics.admitted_requests;
        if (track_classes) {
          ++metrics.per_class[static_cast<size_t>(class_of(static_cast<int>(next_arrival)))]
                .admitted_requests;
        }
      }
      ++next_arrival;
      try_start_prefill(now);
      continue;
    }

    Event event = events.top();
    events.pop();
    now = event.time_s;

    if (event.kind == EventKind::kPrefillDone) {
      PrefillInstance& inst = prefill[event.instance];
      for (int req : inst.batch) {
        metrics.ttft_s.Add(now - requests[req].arrival_s);
        if (track_classes) {
          metrics.per_class[static_cast<size_t>(class_of(req))].ttft_s.Add(
              now - requests[req].arrival_s);
        }
        decode_queue.push_back(req);
      }
      inst.batch.clear();
      inst.busy = false;
      try_start_prefill(now);
      try_start_decode_step(now);
    } else {
      DecodeInstance& inst = decode[event.instance];
      metrics.tbt_s.Add(inst.current_step_duration);
      inst.stepping = false;
      // Every active sequence emitted one token this step.
      metrics.output_tokens += static_cast<double>(inst.remaining.size());
      if (track_classes) {
        // Each active sequence of a class experienced this step's duration
        // as one inter-token gap: one weighted histogram add per class.
        std::fill(step_class_counts.begin(), step_class_counts.end(), 0);
        for (int req : inst.request_index) {
          ++step_class_counts[static_cast<size_t>(class_of(req))];
        }
        for (size_t c = 0; c < step_class_counts.size(); ++c) {
          if (step_class_counts[c] > 0) {
            metrics.per_class[c].tbt_s.Add(inst.current_step_duration,
                                           step_class_counts[c]);
            metrics.per_class[c].output_tokens +=
                static_cast<double>(step_class_counts[c]);
          }
        }
      }
      for (size_t s = 0; s < inst.remaining.size();) {
        if (--inst.remaining[s] == 0) {
          ++metrics.completed_requests;
          if (track_classes) {
            ++metrics.per_class[static_cast<size_t>(class_of(inst.request_index[s]))]
                  .completed_requests;
          }
          if (now > config.horizon_s) {
            // Admitted before the horizon, finished after it: the request
            // drains but its tail tokens are not horizon goodput.
            ++metrics.in_flight_at_horizon;
            if (track_classes) {
              ++metrics.per_class[static_cast<size_t>(class_of(inst.request_index[s]))]
                    .in_flight_at_horizon;
            }
          }
          metrics.makespan_s = now;
          inst.remaining[s] = inst.remaining.back();
          inst.remaining.pop_back();
          inst.request_index[s] = inst.request_index.back();
          inst.request_index.pop_back();
        } else {
          ++s;
        }
      }
      try_start_decode_step(now);
    }
  }

  metrics.makespan_s = std::max(metrics.makespan_s, now);
  if (metrics.makespan_s > 0.0) {
    metrics.decode_tokens_per_s = metrics.output_tokens / metrics.makespan_s;
    double prefill_busy = 0.0;
    for (const auto& p : prefill) {
      prefill_busy += p.busy_time;
    }
    metrics.prefill_utilization =
        prefill_busy / (config.prefill_instances * metrics.makespan_s);
    double decode_busy = 0.0;
    double batch_product = 0.0;
    for (const auto& d : decode) {
      decode_busy += d.busy_time;
      batch_product += d.batch_time_product;
    }
    metrics.decode_utilization = decode_busy / (config.decode_instances * metrics.makespan_s);
    metrics.mean_decode_batch = decode_busy > 0.0 ? batch_product / decode_busy : 0.0;
  }
  return metrics;
}

}  // namespace

ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks) {
  return RunSimulation(requests, config, CallbackStepper{callbacks});
}

ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const StepTimeTable& table) {
  return RunSimulation(requests, config, TableStepper{table});
}

}  // namespace litegpu
