// The million-request serving core. Three structural changes over the
// reference implementation (simulator_reference.cc, kept for identity and
// speedup gates), none of which may change any metric:
//
//  * Calendar event queue (src/serve/event_queue.h) instead of a binary
//    heap. Pop order is the same fully-specified (time, kind, instance)
//    order by construction — buckets partition time, ties share a bucket
//    and are resolved by the full comparator.
//
//  * Structure-of-arrays hot state. Requests arrive as a RequestSoA
//    (column per field), per-instance state is split into a hot status
//    byte per instance (the scheduling scans test one byte) plus parallel
//    cold arrays, and all per-point scratch lives in a thread-local arena
//    reused across sweep points, so points stop churning the allocator.
//
//  * O(completions) decode bookkeeping. The reference decrements every
//    active sequence's remaining-token counter each step — O(batch) per
//    step, O(total tokens) per run, the dominant cost at 1M requests. A
//    sequence joining with R tokens left when its instance has completed S
//    steps finishes exactly when the step counter reaches S + R, so a
//    per-instance min-heap of packed (finish_step, class) completions does
//    the same accounting in O(log batch) per request. Per-step metrics
//    (tokens emitted, per-class TBT) come from incrementally maintained
//    active counts — integer arithmetic, so the sums are bit-identical to
//    the reference's recomputation. Fault runs keep the reference's exact
//    slot arrays and decrement loop instead: a failure's requeue order
//    depends on the historical swap-remove permutation, which the heap
//    does not preserve.

#include "src/serve/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/perf/model.h"
#include "src/serve/event_queue.h"

namespace litegpu {

ServeCallbacks MakePerfModelCallbacks(const PerfModel& prefill_model,
                                      const PerfModel& decode_model,
                                      int max_prefill_batch, int max_decode_batch) {
  ServeCallbacks callbacks;
  callbacks.max_prefill_batch = max_prefill_batch;
  callbacks.max_decode_batch = max_decode_batch;
  const PerfModel* prefill = &prefill_model;
  const PerfModel* decode = &decode_model;
#ifndef NDEBUG
  // Debug builds carry each model's liveness token so a dangling PerfModel
  // trips an assert at the first call instead of reading freed memory (the
  // lifetime contract in the header / docs/architecture.md).
  std::weak_ptr<const void> prefill_alive = prefill_model.liveness_token();
  std::weak_ptr<const void> decode_alive = decode_model.liveness_token();
  callbacks.prefill_time = [prefill, prefill_alive](int batch) {
    assert(!prefill_alive.expired() &&
           "MakePerfModelCallbacks: prefill PerfModel destroyed before the callbacks");
    return prefill->Prefill(batch).ttft_s;
  };
  callbacks.decode_step_time = [decode, decode_alive](int batch) {
    assert(!decode_alive.expired() &&
           "MakePerfModelCallbacks: decode PerfModel destroyed before the callbacks");
    return decode->Decode(batch).tbt_s;
  };
#else
  callbacks.prefill_time = [prefill](int batch) { return prefill->Prefill(batch).ttft_s; };
  callbacks.decode_step_time = [decode](int batch) { return decode->Decode(batch).tbt_s; };
#endif
  return callbacks;
}

namespace {

// Step-time providers for the shared event loop. Both answer the same two
// questions; the table one compiles down to an array load, the callback one
// pays std::function dispatch (and whatever the callback itself does).
// HintWidth suggests a calendar-queue bucket width near the typical
// inter-event gap — a pure performance hint, pop order never depends on it.
struct TableStepper {
  const StepTimeTable& table;
  double PrefillTime(int batch) const { return table.PrefillTime(batch); }
  double DecodeStepTime(int batch) const { return table.DecodeStepTime(batch); }
  int MaxPrefillBatch() const { return table.max_prefill_batch(); }
  int MaxDecodeBatch() const { return table.max_decode_batch(); }
  bool Valid() const { return !table.empty(); }
  double HintWidth(int decode_instances) const {
    // Decode step completions dominate the event stream; with every
    // instance busy their spacing is about one step over the pool.
    return table.DecodeStepTime(table.max_decode_batch()) /
           static_cast<double>(std::max(1, decode_instances));
  }
};

struct CallbackStepper {
  const ServeCallbacks& callbacks;
  double PrefillTime(int batch) const { return callbacks.prefill_time(batch); }
  double DecodeStepTime(int batch) const { return callbacks.decode_step_time(batch); }
  int MaxPrefillBatch() const { return callbacks.max_prefill_batch; }
  int MaxDecodeBatch() const { return callbacks.max_decode_batch; }
  bool Valid() const {
    return static_cast<bool>(callbacks.prefill_time) &&
           static_cast<bool>(callbacks.decode_step_time);
  }
  double HintWidth(int) const {
    // Probing a user callback here would change its observable call count;
    // a fixed width is always correct and close enough for the
    // compatibility path.
    return 1e-3;
  }
};

// Instance status bits, one byte per instance — the only state the
// scheduling scans read. An instance takes new work iff its byte is 0
// (prefill) / has none of kStepping|kDown|kInactive set (decode).
constexpr uint8_t kBusy = 1;      // prefill pass in flight / decode stepping
constexpr uint8_t kDraining = 2;  // autoscaler drain: finish, then retire
constexpr uint8_t kDown = 4;      // failed, awaiting spare/repair
constexpr uint8_t kInactive = 8;  // retired (indices stay stable)

// FIFO of request indices backed by a flat vector with a head cursor:
// push/pop are array writes, and the buffer compacts itself so memory stays
// O(live entries) on million-request horizons.
class IndexQueue {
 public:
  void Clear() {
    buf_.clear();
    head_ = 0;
  }
  bool empty() const { return head_ == buf_.size(); }
  size_t size() const { return buf_.size() - head_; }
  int front() const { return buf_[head_]; }
  void push_back(int v) { buf_.push_back(v); }
  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<int> buf_;
  size_t head_ = 0;
};

// Packed decode completion: (finish_step << 16) | class. finish_step is
// the instance step count at which the sequence emits its last token;
// class rides along for per-class completion accounting. Plain uint64
// ordering puts the earliest finish first (ties tie on class, which is
// fine — all per-completion metric updates commute within a step).
constexpr int kCompletionClassBits = 16;
constexpr uint64_t kCompletionClassMask = (1ULL << kCompletionClassBits) - 1;

// Per-point scratch, reused across runs on the same thread so sweep points
// and shards stop churning the allocator: vectors are cleared, not freed.
struct SimScratch {
  CalendarEventQueue events;
  IndexQueue prefill_queue;
  IndexQueue decode_queue;

  // Prefill pool, SoA: status byte (hot) + parallel cold arrays.
  std::vector<uint8_t> p_state;
  std::vector<double> p_busy_time, p_up_time, p_down_time;
  std::vector<double> p_pass_started, p_pass_duration;
  std::vector<int> p_epoch;
  std::vector<uint8_t> p_via_spare;
  std::vector<const char*> p_drain_reason;
  // Degraded state: current step-time multiplier (1.0 = healthy) and the
  // time the open throttled window started (-1 = none).
  std::vector<double> p_degrade_mult, p_degrade_since;
  std::vector<std::vector<int>> p_batch;  // request indices being prefilled

  // Decode pool, SoA.
  std::vector<uint8_t> d_state;
  std::vector<double> d_busy_time, d_batch_time_product;
  std::vector<double> d_step_started, d_step_duration;
  std::vector<double> d_up_time, d_down_time;
  std::vector<int> d_epoch;
  std::vector<uint8_t> d_via_spare;
  std::vector<const char*> d_drain_reason;
  std::vector<double> d_degrade_mult, d_degrade_since;
  // Fast mode (faults off): completion min-heaps + incremental counts.
  std::vector<uint64_t> d_step_count;
  std::vector<int> d_active_count;
  std::vector<std::vector<uint64_t>> d_heap;
  std::vector<int> class_active;  // [instance * num_classes + class]
  // Exact-slot mode (faults on): the reference's parallel slot arrays,
  // preserved verbatim because failure requeue order depends on the
  // swap-remove permutation they accumulate.
  std::vector<std::vector<int>> d_remaining;
  std::vector<std::vector<int>> d_request_index;

  std::vector<uint8_t> ttft_recorded;
  std::vector<int> retry_counts;
  std::vector<size_t> step_class_counts;

  // Ready bitmasks: bit i set iff instance i currently passes the
  // try_start_* status check (prefill: state byte zero; decode: neither
  // busy, down, nor inactive). The dispatch loops scan set bits instead of
  // walking every instance, turning the per-event cost from O(pool size)
  // into O(instances actually dispatched) — at a million arrivals against
  // a hundred-instance prefill pool that scan is the simulator's single
  // largest cost.
  std::vector<uint64_t> p_ready, d_ready;

  void AddPrefill(double up_time) {
    size_t i = p_state.size();
    if (p_ready.size() <= (i >> 6)) {
      p_ready.push_back(0);
    }
    p_ready[i >> 6] |= 1ull << (i & 63);
    p_state.push_back(0);
    p_busy_time.push_back(0.0);
    p_up_time.push_back(up_time);
    p_down_time.push_back(-1.0);
    p_pass_started.push_back(0.0);
    p_pass_duration.push_back(0.0);
    p_epoch.push_back(0);
    p_via_spare.push_back(0);
    p_drain_reason.push_back("");
    p_degrade_mult.push_back(1.0);
    p_degrade_since.push_back(-1.0);
    if (p_batch.size() < p_state.size()) {
      p_batch.emplace_back();
    }
  }

  void AddDecode(double up_time, int num_classes) {
    size_t i = d_state.size();
    if (d_ready.size() <= (i >> 6)) {
      d_ready.push_back(0);
    }
    d_ready[i >> 6] |= 1ull << (i & 63);
    d_state.push_back(0);
    d_busy_time.push_back(0.0);
    d_batch_time_product.push_back(0.0);
    d_step_started.push_back(0.0);
    d_step_duration.push_back(0.0);
    d_up_time.push_back(up_time);
    d_down_time.push_back(-1.0);
    d_epoch.push_back(0);
    d_via_spare.push_back(0);
    d_drain_reason.push_back("");
    d_degrade_mult.push_back(1.0);
    d_degrade_since.push_back(-1.0);
    d_step_count.push_back(0);
    d_active_count.push_back(0);
    if (d_heap.size() < d_state.size()) {
      d_heap.emplace_back();
    }
    if (d_remaining.size() < d_state.size()) {
      d_remaining.emplace_back();
      d_request_index.emplace_back();
    }
    if (num_classes > 0) {
      class_active.resize(d_state.size() * static_cast<size_t>(num_classes), 0);
    }
  }

  void Reset(int n_prefill, int n_decode, int num_classes, double bucket_width) {
    events.Reset(bucket_width);
    prefill_queue.Clear();
    decode_queue.Clear();
    p_state.clear();
    p_busy_time.clear();
    p_up_time.clear();
    p_down_time.clear();
    p_pass_started.clear();
    p_pass_duration.clear();
    p_epoch.clear();
    p_via_spare.clear();
    p_drain_reason.clear();
    p_degrade_mult.clear();
    p_degrade_since.clear();
    // Nested per-instance vectors keep their slots (and inner capacity);
    // only the entries a previous larger run left behind are dropped.
    p_batch.resize(static_cast<size_t>(n_prefill));
    for (auto& b : p_batch) {
      b.clear();
    }
    d_state.clear();
    d_busy_time.clear();
    d_batch_time_product.clear();
    d_step_started.clear();
    d_step_duration.clear();
    d_up_time.clear();
    d_down_time.clear();
    d_epoch.clear();
    d_via_spare.clear();
    d_drain_reason.clear();
    d_degrade_mult.clear();
    d_degrade_since.clear();
    d_step_count.clear();
    d_active_count.clear();
    d_heap.resize(static_cast<size_t>(n_decode));
    for (auto& h : d_heap) {
      h.clear();
    }
    d_remaining.resize(static_cast<size_t>(n_decode));
    d_request_index.resize(static_cast<size_t>(n_decode));
    for (auto& r : d_remaining) {
      r.clear();
    }
    for (auto& r : d_request_index) {
      r.clear();
    }
    class_active.clear();
    p_ready.clear();
    d_ready.clear();
    ttft_recorded.clear();
    retry_counts.clear();
    step_class_counts.assign(num_classes > 0 ? static_cast<size_t>(num_classes) : 0, 0);
    for (int i = 0; i < n_prefill; ++i) {
      AddPrefill(0.0);
    }
    for (int i = 0; i < n_decode; ++i) {
      AddDecode(0.0, num_classes);
    }
  }
};

SimScratch& TlsScratch() {
  static thread_local SimScratch scratch;
  return scratch;
}

template <typename Stepper>
ServeMetrics RunSimulation(const RequestSoA& requests, const ServeClusterConfig& config,
                           const Stepper& stepper) {
  ServeMetrics metrics;
  if (!stepper.Valid() || config.prefill_instances <= 0 || config.decode_instances <= 0) {
    return metrics;
  }

  const size_t nreq = requests.size();
  const bool faults_enabled = config.faults.enabled;
  // Fault runs keep the reference's exact slot arrays: the requeue order of
  // a killed batch is the slot order, which earlier swap-removes permuted.
  const bool exact_slots = faults_enabled;
  const bool stream_ttft = config.stream_ttft;
  // The three robustness axes (all dormant by default): correlated failure
  // domains and degraded states ride on the fault engine; shedding guards
  // the admission door and works with or without faults.
  const FaultDomainConfig& domains = config.faults.domains;
  const bool domains_enabled = faults_enabled && domains.enabled();
  const DegradedStateConfig& degraded = config.faults.degraded;
  const bool degrade_enabled = faults_enabled && degraded.enabled();
  const SheddingPolicy& shedding = config.shedding;
  const bool shed_enabled = shedding.enabled();
  // Full-batch prefill pass time for the TTFT-deadline estimate, probed
  // lazily so runs without the deadline policy never make the extra
  // callback query.
  double shed_pass_s = -1.0;

  SimScratch& S = TlsScratch();
  S.Reset(config.prefill_instances, config.decode_instances, config.num_classes,
          stepper.HintWidth(config.decode_instances));
  CalendarEventQueue& events = S.events;
  IndexQueue& prefill_queue = S.prefill_queue;
  IndexQueue& decode_queue = S.decode_queue;

  if (stream_ttft) {
    metrics.ttft_streamed = true;
    metrics.ttft_hist = LatencyHistogram(config.ttft_hist_hi_s);
  }

  // --- autoscaler state (dormant unless cfg.enabled) ---
  const ServeAutoscalerConfig& scaler = config.autoscaler;
  int active_prefill = config.prefill_instances;  // provisioned (incl. draining)
  int active_decode = config.decode_instances;
  int pending_prefill_ups = 0;
  int pending_decode_ups = 0;
  std::deque<const char*> prefill_up_reasons;  // FIFO-matched to up events
  std::deque<const char*> decode_up_reasons;
  int up_seq = 0;    // ordering sequence for simultaneous up events
  int tick_seq = 0;  // and for ticks
  double prev_tick_time = 0.0;
  double prev_prefill_busy = 0.0;
  double prev_decode_busy = 0.0;
  // Incrementally maintained queued-token totals, read by autoscaler
  // ticks. Token counts are integers, so the running sums stay exactly
  // integer-valued in double and equal the reference's per-tick
  // re-summation bit for bit.
  const bool track_qsums = scaler.enabled;
  double queued_prompt_tokens = 0.0;
  double queued_output_tokens = 0.0;
  // Admitted demand for the predictive forecast: (time, class, tokens).
  // Pruned to the forecast window as arrivals stream in (not just at
  // ticks), so a long horizon holds O(rate * window) entries rather than
  // every admitted request; the tick-time prune would have discarded the
  // same entries anyway, so forecasts are unchanged.
  struct Demand {
    double t;
    double prompt_tokens;
    double output_tokens;
    int cls;
  };
  std::deque<Demand> demand_history;
  size_t peak_demand_entries = 0;
  if (scaler.enabled) {
    metrics.peak_prefill_instances = active_prefill;
    metrics.peak_decode_instances = active_decode;
    events.Push({scaler.interval_s, ServeEventKind::kAutoscaleTick, tick_seq++});
  }

  // --- fault-injection state (dormant unless faults.enabled) ---
  const ServeFaultConfig& faults = config.faults;
  std::optional<FaultStreams> fault_streams;
  int prefill_spares_free = faults.prefill_spares;
  int decode_spares_free = faults.decode_spares;
  auto schedule_next_failure = [&](ScalePool pool, int slot, double from_t, int epoch) {
    double rate = pool == ScalePool::kPrefill ? faults.prefill_failure_rate_per_s
                                              : faults.decode_failure_rate_per_s;
    if (rate <= 0.0) {
      return;
    }
    // Failures are injected over the admission horizon only; the drain
    // tail past it runs fault-free, which also bounds the event stream.
    double t = from_t + fault_streams->NextFailureGap(pool, slot, rate);
    if (t <= config.horizon_s) {
      events.Push({t,
                   pool == ScalePool::kPrefill ? ServeEventKind::kPrefillFail
                                               : ServeEventKind::kDecodeFail,
                   slot, epoch});
    }
  };
  // Domain outage streams: one per failure domain, keyed by (seed, pool,
  // domain), injected over the admission horizon like instance failures.
  // Domains are discovered as the pool grows — domain d covers instances
  // [d*ipd, (d+1)*ipd) — and each domain's gap sequence depends only on its
  // id, never on when its first member appeared.
  int prefill_domains_scheduled = 0;
  int decode_domains_scheduled = 0;
  auto schedule_next_domain_failure = [&](ScalePool pool, int domain, double from_t) {
    double t =
        from_t + fault_streams->NextDomainFailureGap(pool, domain, domains.failure_rate_per_s);
    if (t <= config.horizon_s) {
      events.Push({t,
                   pool == ScalePool::kPrefill ? ServeEventKind::kPrefillDomainFail
                                               : ServeEventKind::kDecodeDomainFail,
                   domain});
    }
  };
  auto schedule_new_domains = [&](ScalePool pool, double from_t) {
    if (!domains_enabled) {
      return;
    }
    bool is_prefill = pool == ScalePool::kPrefill;
    int ipd = is_prefill ? domains.prefill_instances_per_domain
                         : domains.decode_instances_per_domain;
    if (ipd <= 0) {
      return;
    }
    int n = static_cast<int>(is_prefill ? S.p_state.size() : S.d_state.size());
    int want = (n + ipd - 1) / ipd;
    int& scheduled = is_prefill ? prefill_domains_scheduled : decode_domains_scheduled;
    while (scheduled < want) {
      schedule_next_domain_failure(pool, scheduled++, from_t);
    }
  };
  // Degrade streams: per (pool, slot) like failures; a failure clears the
  // degraded state (epoch bump stales the pending end event) and the
  // recovery reschedules the slot's stream.
  auto schedule_next_degrade = [&](ScalePool pool, int slot, double from_t, int epoch) {
    double rate = pool == ScalePool::kPrefill ? degraded.prefill_rate_per_s
                                              : degraded.decode_rate_per_s;
    if (rate <= 0.0) {
      return;
    }
    double t = from_t + fault_streams->NextDegradeGap(pool, slot, rate);
    if (t <= config.horizon_s) {
      events.Push({t,
                   pool == ScalePool::kPrefill ? ServeEventKind::kPrefillDegradeStart
                                               : ServeEventKind::kDecodeDegradeStart,
                   slot, epoch});
    }
  };
  if (faults_enabled) {
    fault_streams.emplace(faults.seed);
    for (int i = 0; i < static_cast<int>(S.p_state.size()); ++i) {
      schedule_next_failure(ScalePool::kPrefill, i, 0.0, 0);
    }
    for (int i = 0; i < static_cast<int>(S.d_state.size()); ++i) {
      schedule_next_failure(ScalePool::kDecode, i, 0.0, 0);
    }
    schedule_new_domains(ScalePool::kPrefill, 0.0);
    schedule_new_domains(ScalePool::kDecode, 0.0);
    if (degrade_enabled) {
      for (int i = 0; i < static_cast<int>(S.p_state.size()); ++i) {
        schedule_next_degrade(ScalePool::kPrefill, i, 0.0, 0);
      }
      for (int i = 0; i < static_cast<int>(S.d_state.size()); ++i) {
        schedule_next_degrade(ScalePool::kDecode, i, 0.0, 0);
      }
    }
    S.ttft_recorded.assign(nreq, 0);
  }

  // Per-class bookkeeping only exists when the caller asked for it, so
  // single-class runs pay nothing and stay bit-identical to the pre-class
  // simulator. Out-of-range class ids fold into class 0 rather than
  // indexing out of bounds (the Runner validates them upstream).
  const bool track_classes = config.num_classes > 0;
  const size_t ncls = track_classes ? static_cast<size_t>(config.num_classes) : 0;
  if (track_classes) {
    metrics.per_class.resize(ncls);
    if (stream_ttft) {
      for (ServeClassMetrics& pc : metrics.per_class) {
        pc.ttft_hist = LatencyHistogram(config.ttft_hist_hi_s);
      }
    }
  }
  auto class_of = [&](int req) {
    int cid = requests.class_id[static_cast<size_t>(req)];
    return (cid >= 0 && cid < config.num_classes) ? cid : 0;
  };
  if (!stream_ttft) {
    // Every admitted request records exactly one TTFT sample; reserving up
    // front spares a million-request run the repeated reallocation copies.
    metrics.ttft_s.Reserve(nreq);
  }
  auto record_ttft = [&](int req, double value) {
    if (stream_ttft) {
      metrics.ttft_hist.Add(value);
    } else {
      metrics.ttft_s.Add(value);
    }
    if (track_classes) {
      ServeClassMetrics& pc = metrics.per_class[static_cast<size_t>(class_of(req))];
      if (stream_ttft) {
        pc.ttft_hist.Add(value);
      } else {
        pc.ttft_s.Add(value);
      }
    }
  };

  size_t next_arrival = 0;
  double now = 0.0;
  // Workload progress time: arrivals and completions, NOT autoscaler
  // ticks/ups — the final makespan must not stretch to a trailing decision
  // tick that did no work.
  double progress_now = 0.0;

  // Refresh instance i's ready bit from its status byte. Called after every
  // status mutation; the dispatch loops below trust the bits completely.
  auto sync_p_ready = [&](int i) {
    uint64_t bit = 1ull << (static_cast<unsigned>(i) & 63);
    size_t w = static_cast<size_t>(i) >> 6;
    if (S.p_state[static_cast<size_t>(i)] == 0) {
      S.p_ready[w] |= bit;
    } else {
      S.p_ready[w] &= ~bit;
    }
  };
  auto sync_d_ready = [&](int i) {
    uint64_t bit = 1ull << (static_cast<unsigned>(i) & 63);
    size_t w = static_cast<size_t>(i) >> 6;
    if (!(S.d_state[static_cast<size_t>(i)] & (kBusy | kDown | kInactive))) {
      S.d_ready[w] |= bit;
    } else {
      S.d_ready[w] &= ~bit;
    }
  };

  // Close an instance's open throttled window (degrade end, failure, or
  // retirement), banking the degraded instance-seconds.
  auto close_degrade_prefill = [&](int i) {
    if (S.p_degrade_since[i] >= 0.0) {
      metrics.prefill_degraded_instance_s += now - S.p_degrade_since[i];
      S.p_degrade_since[i] = -1.0;
      S.p_degrade_mult[i] = 1.0;
    }
  };
  auto close_degrade_decode = [&](int i) {
    if (S.d_degrade_since[i] >= 0.0) {
      metrics.decode_degraded_instance_s += now - S.d_degrade_since[i];
      S.d_degrade_since[i] = -1.0;
      S.d_degrade_mult[i] = 1.0;
    }
  };

  // Recovery tracking: the largest single failure group (one independent
  // failure or one domain outage's members) by discarded tokens; the loop
  // then watches for the first instant both queues are empty again.
  bool drain_pending = false;
  auto note_outage = [&](double lost) {
    if (lost > metrics.largest_outage_lost_tokens) {
      metrics.largest_outage_lost_tokens = lost;
      metrics.largest_outage_time_s = now;
      metrics.time_to_drain_s = -1.0;
      drain_pending = true;
    }
  };

  auto try_start_prefill = [&](double t) {
    // Set bits scan in ascending instance order — the same order the plain
    // index loop dispatched in. Instances with a nonzero status byte have
    // no side effects in that loop, so skipping them is behavior-identical.
    for (size_t w = 0; w < S.p_ready.size() && !prefill_queue.empty(); ++w) {
      uint64_t bits = S.p_ready[w];
      while (bits != 0 && !prefill_queue.empty()) {
        int i = static_cast<int>((w << 6) +
                                 static_cast<size_t>(__builtin_ctzll(bits)));
        bits &= bits - 1;
        int batch = std::min<int>(stepper.MaxPrefillBatch(),
                                  static_cast<int>(prefill_queue.size()));
        std::vector<int>& slots = S.p_batch[static_cast<size_t>(i)];
        slots.clear();
        for (int b = 0; b < batch; ++b) {
          int req = prefill_queue.front();
          prefill_queue.pop_front();
          slots.push_back(req);
          if (track_qsums) {
            queued_prompt_tokens -= requests.prompt_tokens[static_cast<size_t>(req)];
          }
        }
        double duration = stepper.PrefillTime(batch);
        if (degrade_enabled) {
          // Applied on dispatch only: in-flight passes keep the duration
          // they started with, so busy-time refunds stay exact.
          duration *= S.p_degrade_mult[i];
        }
        S.p_state[i] |= kBusy;
        sync_p_ready(i);
        S.p_busy_time[i] += duration;
        S.p_pass_started[i] = t;
        S.p_pass_duration[i] = duration;
        events.Push({t + duration, ServeEventKind::kPrefillDone, i, S.p_epoch[i]});
      }
    }
  };

  auto try_start_decode_step_at = [&](double t, int i) {
    const int max_batch = stepper.MaxDecodeBatch();
    {
      // Admit waiting sequences at the step boundary (draining instances
      // only finish what they already hold).
      if (!(S.d_state[i] & kDraining)) {
        if (exact_slots) {
          std::vector<int>& remaining = S.d_remaining[static_cast<size_t>(i)];
          std::vector<int>& request_index = S.d_request_index[static_cast<size_t>(i)];
          while (!decode_queue.empty() && static_cast<int>(remaining.size()) < max_batch) {
            int req = decode_queue.front();
            decode_queue.pop_front();
            remaining.push_back(
                std::max(1, requests.output_tokens[static_cast<size_t>(req)]));
            request_index.push_back(req);
            if (track_qsums) {
              queued_output_tokens -= requests.output_tokens[static_cast<size_t>(req)];
            }
          }
        } else {
          std::vector<uint64_t>& heap = S.d_heap[static_cast<size_t>(i)];
          while (!decode_queue.empty() && S.d_active_count[i] < max_batch) {
            int req = decode_queue.front();
            decode_queue.pop_front();
            uint64_t left = static_cast<uint64_t>(
                std::max(1, requests.output_tokens[static_cast<size_t>(req)]));
            uint64_t cls = 0;
            if (track_classes) {
              cls = static_cast<uint64_t>(class_of(req));
              ++S.class_active[static_cast<size_t>(i) * ncls + cls];
            }
            heap.push_back(((S.d_step_count[i] + left) << kCompletionClassBits) | cls);
            std::push_heap(heap.begin(), heap.end(), std::greater<uint64_t>());
            ++S.d_active_count[i];
            if (track_qsums) {
              queued_output_tokens -= requests.output_tokens[static_cast<size_t>(req)];
            }
          }
        }
      }
      int batch = exact_slots ? static_cast<int>(S.d_remaining[static_cast<size_t>(i)].size())
                              : S.d_active_count[i];
      if (batch == 0) {
        return;
      }
      double duration = stepper.DecodeStepTime(batch);
      if (degrade_enabled) {
        duration *= S.d_degrade_mult[i];
      }
      S.d_state[i] |= kBusy;
      sync_d_ready(i);
      S.d_step_started[i] = t;
      S.d_step_duration[i] = duration;
      S.d_busy_time[i] += duration;
      S.d_batch_time_product[i] += batch * duration;
      events.Push({t + duration, ServeEventKind::kDecodeStepDone, i, S.d_epoch[i]});
    }
  };

  auto try_start_decode_step = [&](double t) {
    // Ascending-bit scan = the plain loop's ascending index order; skipped
    // instances (busy, down, or inactive) were pure no-ops there.
    for (size_t w = 0; w < S.d_ready.size(); ++w) {
      uint64_t bits = S.d_ready[w];
      while (bits != 0) {
        int i = static_cast<int>((w << 6) +
                                 static_cast<size_t>(__builtin_ctzll(bits)));
        bits &= bits - 1;
        try_start_decode_step_at(t, i);
      }
    }
  };

  // --- autoscaler actions ---
  auto retire_prefill = [&](int i, const char* reason) {
    if (degrade_enabled) {
      close_degrade_prefill(i);
    }
    S.p_state[i] = static_cast<uint8_t>((S.p_state[i] & ~kDraining) | kInactive);
    sync_p_ready(i);
    S.p_down_time[i] = now;
    --active_prefill;
    metrics.scale_events.push_back({now, ScalePool::kPrefill, -1, active_prefill, reason});
  };
  auto retire_decode = [&](int i, const char* reason) {
    if (degrade_enabled) {
      close_degrade_decode(i);
    }
    S.d_state[i] = static_cast<uint8_t>((S.d_state[i] & ~kDraining) | kInactive);
    sync_d_ready(i);
    S.d_down_time[i] = now;
    --active_decode;
    metrics.scale_events.push_back({now, ScalePool::kDecode, -1, active_decode, reason});
  };
  auto decode_idle_empty = [&](int i) {
    bool no_work = exact_slots ? S.d_remaining[static_cast<size_t>(i)].empty()
                               : S.d_active_count[i] == 0;
    return no_work && !(S.d_state[i] & kBusy);
  };
  // Pick the highest-index live instance: the most recently provisioned
  // capacity leaves first, keeping the initial pool stable.
  auto drain_one_prefill = [&](const char* reason) {
    for (int i = static_cast<int>(S.p_state.size()) - 1; i >= 0; --i) {
      if (!(S.p_state[i] & (kInactive | kDraining | kDown))) {
        if (!(S.p_state[i] & kBusy)) {
          retire_prefill(i, reason);
        } else {
          S.p_state[i] |= kDraining;
          sync_p_ready(i);
          S.p_drain_reason[i] = reason;
        }
        return;
      }
    }
  };
  auto drain_one_decode = [&](const char* reason) {
    for (int i = static_cast<int>(S.d_state.size()) - 1; i >= 0; --i) {
      if (!(S.d_state[i] & (kInactive | kDraining | kDown))) {
        if (decode_idle_empty(i)) {
          retire_decode(i, reason);
        } else {
          S.d_state[i] |= kDraining;
          sync_d_ready(i);
          S.d_drain_reason[i] = reason;
        }
        return;
      }
    }
  };

  // --- fault actions ---
  // What happens to a request whose instance died under it.
  auto requeue_or_drop = [&](int req) {
    bool retry = faults.retry_policy == FaultRetryPolicy::kRetry;
    if (faults.retry_policy == FaultRetryPolicy::kRetryWithBudget) {
      if (S.retry_counts.empty()) {
        S.retry_counts.assign(nreq, 0);
      }
      retry = S.retry_counts[static_cast<size_t>(req)] < faults.retry_budget;
      if (retry) {
        ++S.retry_counts[static_cast<size_t>(req)];
      }
    }
    if (retry) {
      // The KV cache died with the instance: back of the prefill queue.
      prefill_queue.push_back(req);
      if (track_qsums) {
        queued_prompt_tokens += requests.prompt_tokens[static_cast<size_t>(req)];
      }
      ++metrics.retried_requests;
    } else {
      ++metrics.dropped_requests;
    }
  };

  // An instance failure kills its in-flight work (refunding the busy time
  // the unfinished pass/step had claimed up front), requeues or drops the
  // victims per the retry policy, and takes the instance down for the
  // spare-activation delay (consuming a free spare whose repaired device
  // returns later) or the full repair. A draining instance that fails
  // simply retires — the autoscaler wanted it gone anyway. domain >= 0
  // marks a member of a correlated domain outage: it bypasses hot spares
  // (a rack outage is not maskable by a spare device) and waits out the
  // domain repair instead of the instance repair.
  auto fail_prefill = [&](int i, int domain) {
    if (degrade_enabled) {
      close_degrade_prefill(i);
    }
    ++S.p_epoch[i];
    int killed = 0;
    double lost = 0.0;
    std::vector<int>& slots = S.p_batch[static_cast<size_t>(i)];
    if (S.p_state[i] & kBusy) {
      S.p_busy_time[i] -= S.p_pass_started[i] + S.p_pass_duration[i] - now;
      killed = static_cast<int>(slots.size());
      for (int req : slots) {
        lost += requests.prompt_tokens[static_cast<size_t>(req)];
        requeue_or_drop(req);
      }
      slots.clear();
      S.p_state[i] &= static_cast<uint8_t>(~kBusy);
    }
    metrics.lost_tokens += lost;
    if (S.p_state[i] & kDraining) {
      metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kPrefill,
                                      i, killed, lost, prefill_spares_free, domain});
      retire_prefill(i, S.p_drain_reason[i]);
      return;
    }
    S.p_state[i] |= kDown;
    sync_p_ready(i);
    S.p_via_spare[i] = 0;
    double delay = faults.repair_s;
    if (domain >= 0) {
      delay = domains.repair_s;
    } else if (prefill_spares_free > 0) {
      --prefill_spares_free;
      S.p_via_spare[i] = 1;
      delay = faults.spare_activation_s;
      events.Push({now + faults.repair_s, ServeEventKind::kPrefillSpareReturn, i});
    }
    metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kPrefill, i,
                                    killed, lost, prefill_spares_free, domain});
    events.Push({now + delay, ServeEventKind::kPrefillRecover, i, S.p_epoch[i]});
  };

  auto fail_decode = [&](int i, int domain) {
    if (degrade_enabled) {
      close_degrade_decode(i);
    }
    ++S.d_epoch[i];
    std::vector<int>& remaining = S.d_remaining[static_cast<size_t>(i)];
    std::vector<int>& request_index = S.d_request_index[static_cast<size_t>(i)];
    int killed = static_cast<int>(remaining.size());
    double lost = 0.0;
    if (S.d_state[i] & kBusy) {
      double unfinished = S.d_step_started[i] + S.d_step_duration[i] - now;
      S.d_busy_time[i] -= unfinished;
      S.d_batch_time_product[i] -= static_cast<double>(remaining.size()) * unfinished;
      S.d_state[i] &= static_cast<uint8_t>(~kBusy);
    }
    for (size_t s = 0; s < remaining.size(); ++s) {
      int req = request_index[s];
      // Generated-so-far tokens die with the KV cache: they are not
      // horizon goodput, so back them out of the token counts.
      double generated = static_cast<double>(
          std::max(1, requests.output_tokens[static_cast<size_t>(req)]) - remaining[s]);
      lost += generated;
      metrics.output_tokens -= generated;
      if (track_classes) {
        metrics.per_class[static_cast<size_t>(class_of(req))].output_tokens -= generated;
      }
      requeue_or_drop(req);
    }
    remaining.clear();
    request_index.clear();
    metrics.lost_tokens += lost;
    if (S.d_state[i] & kDraining) {
      metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kDecode,
                                      i, killed, lost, decode_spares_free, domain});
      retire_decode(i, S.d_drain_reason[i]);
      return;
    }
    S.d_state[i] |= kDown;
    sync_d_ready(i);
    S.d_via_spare[i] = 0;
    double delay = faults.repair_s;
    if (domain >= 0) {
      delay = domains.repair_s;
    } else if (decode_spares_free > 0) {
      --decode_spares_free;
      S.d_via_spare[i] = 1;
      delay = faults.spare_activation_s;
      events.Push({now + faults.repair_s, ServeEventKind::kDecodeSpareReturn, i});
    }
    metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kDecode, i,
                                    killed, lost, decode_spares_free, domain});
    events.Push({now + delay, ServeEventKind::kDecodeRecover, i, S.d_epoch[i]});
  };

  // One autoscaler decision: reactive thresholds on backlog/utilization, or
  // a per-class demand forecast (predictive) with the backlog trigger kept
  // as a safety net. Applied per pool, at most one scale-down per tick.
  auto autoscale_tick = [&]() {
    double window = now - prev_tick_time;
    int live_prefill = 0;
    int live_decode = 0;
    double prefill_busy = 0.0;
    double decode_busy = 0.0;
    // Down (failed) instances are not live: the autoscaler sees the
    // reduced pool and can provision replacements while repairs run.
    for (size_t i = 0; i < S.p_state.size(); ++i) {
      if (!(S.p_state[i] & (kInactive | kDraining | kDown))) {
        ++live_prefill;
      }
      prefill_busy += S.p_busy_time[i];
    }
    for (size_t i = 0; i < S.d_state.size(); ++i) {
      if (!(S.d_state[i] & (kInactive | kDraining | kDown))) {
        ++live_decode;
      }
      decode_busy += S.d_busy_time[i];
    }

    // Predictive forecast: per-class token demand over two half-windows,
    // linearly extrapolated half a window ahead, clamped at zero per class
    // so one collapsing class does not mask another's growth.
    double forecast_prompt_rate = 0.0;
    double forecast_output_rate = 0.0;
    if (scaler.predictive) {
      double half = scaler.forecast_window_s / 2.0;
      while (!demand_history.empty() &&
             demand_history.front().t < now - scaler.forecast_window_s) {
        demand_history.pop_front();
      }
      size_t fcls = static_cast<size_t>(std::max(1, config.num_classes));
      std::vector<double> recent_prompt(fcls, 0.0), old_prompt(fcls, 0.0);
      std::vector<double> recent_output(fcls, 0.0), old_output(fcls, 0.0);
      for (const Demand& d : demand_history) {
        size_t c = (d.cls >= 0 && d.cls < static_cast<int>(fcls))
                       ? static_cast<size_t>(d.cls)
                       : 0;
        if (d.t >= now - half) {
          recent_prompt[c] += d.prompt_tokens;
          recent_output[c] += d.output_tokens;
        } else {
          old_prompt[c] += d.prompt_tokens;
          old_output[c] += d.output_tokens;
        }
      }
      for (size_t c = 0; c < fcls; ++c) {
        forecast_prompt_rate += std::max(0.0, 2.0 * recent_prompt[c] - old_prompt[c]) / half;
        forecast_output_rate += std::max(0.0, 2.0 * recent_output[c] - old_output[c]) / half;
      }
    }

    auto plan_pool = [&](ScalePool pool) {
      bool is_prefill = pool == ScalePool::kPrefill;
      int live = is_prefill ? live_prefill : live_decode;
      int& pending = is_prefill ? pending_prefill_ups : pending_decode_ups;
      auto& up_reasons = is_prefill ? prefill_up_reasons : decode_up_reasons;
      double per_instance = is_prefill ? scaler.prefill_tokens_per_s : scaler.decode_tokens_per_s;
      double queued_tokens = is_prefill ? queued_prompt_tokens : queued_output_tokens;
      double busy_delta =
          is_prefill ? prefill_busy - prev_prefill_busy : decode_busy - prev_decode_busy;
      int min_n = is_prefill ? scaler.min_prefill_instances : scaler.min_decode_instances;
      int max_n = is_prefill ? scaler.max_prefill_instances : scaler.max_decode_instances;
      double utilization =
          (window > 0.0 && live > 0) ? busy_delta / (live * window) : 0.0;
      double backlog_s = per_instance > 0.0
                             ? queued_tokens / (std::max(1, live) * per_instance)
                             : 0.0;
      int target = live + pending;

      auto schedule_up = [&](const char* reason) {
        events.Push({now + scaler.delay_s,
                     is_prefill ? ServeEventKind::kPrefillUp : ServeEventKind::kDecodeUp,
                     up_seq++});
        up_reasons.push_back(reason);
        ++pending;
        ++target;
      };

      if (scaler.predictive) {
        double forecast_rate = is_prefill ? forecast_prompt_rate : forecast_output_rate;
        int desired = live;
        if (per_instance > 0.0) {
          desired = static_cast<int>(std::ceil(scaler.headroom * forecast_rate / per_instance));
        }
        desired = std::min(std::max(desired, min_n), max_n);
        while (target < desired) {
          schedule_up("forecast");
        }
        if (backlog_s > scaler.scale_up_backlog_s && target < max_n) {
          schedule_up("backlog");  // reactive safety net under forecast misses
        }
        if (pending == 0 && target > desired && queued_tokens <= 0.0 && target > min_n) {
          if (is_prefill) {
            drain_one_prefill("forecast");
          } else {
            drain_one_decode("forecast");
          }
        }
        return;
      }

      const char* up_reason = nullptr;
      if (backlog_s > scaler.scale_up_backlog_s) {
        up_reason = "backlog";
      } else if (utilization > scaler.scale_up_utilization) {
        up_reason = "utilization";
      }
      if (up_reason != nullptr) {
        if (target < max_n) {
          schedule_up(up_reason);
        }
      } else if (pending == 0 && target > min_n &&
                 utilization < scaler.scale_down_utilization && queued_tokens <= 0.0) {
        if (is_prefill) {
          drain_one_prefill("utilization");
        } else {
          drain_one_decode("utilization");
        }
      }
    };
    plan_pool(ScalePool::kPrefill);
    plan_pool(ScalePool::kDecode);

    prev_tick_time = now;
    prev_prefill_busy = prefill_busy;
    prev_decode_busy = decode_busy;

    // Keep ticking only while there is anything left to manage; otherwise
    // the tick stream would keep the event loop alive forever (the default
    // horizon is effectively infinite).
    bool work_left = next_arrival < nreq || !prefill_queue.empty() ||
                     !decode_queue.empty() || pending_prefill_ups > 0 ||
                     pending_decode_ups > 0;
    if (!work_left) {
      for (size_t i = 0; i < S.p_state.size(); ++i) {
        if (S.p_state[i] & kBusy) {
          work_left = true;
          break;
        }
      }
    }
    if (!work_left) {
      for (size_t i = 0; i < S.d_state.size(); ++i) {
        bool has_work = exact_slots ? !S.d_remaining[i].empty() : S.d_active_count[i] > 0;
        if ((S.d_state[i] & kBusy) || has_work) {
          work_left = true;
          break;
        }
      }
    }
    if (work_left) {
      events.Push({now + scaler.interval_s, ServeEventKind::kAutoscaleTick, tick_seq++});
    }
  };

  for (;;) {
    // First instant both queues are empty after the largest outage: the
    // check runs at the top of every iteration (after the previous item
    // fully processed), gated on drain_pending so fault-free runs never
    // pay it.
    if (drain_pending && prefill_queue.empty() && decode_queue.empty()) {
      metrics.time_to_drain_s = now - metrics.largest_outage_time_s;
      drain_pending = false;
    }
    double arrival_t = next_arrival < nreq ? requests.arrival_s[next_arrival]
                                           : std::numeric_limits<double>::max();
    double event_t =
        events.empty() ? std::numeric_limits<double>::max() : events.PeekTime();
    if (arrival_t == std::numeric_limits<double>::max() &&
        event_t == std::numeric_limits<double>::max()) {
      break;
    }

    if (arrival_t <= event_t) {
      now = arrival_t;
      progress_now = now;
      if (now <= config.horizon_s) {
        // Admission control: a shed request reached the cluster (it counts
        // as admitted, globally and per class) but never enters the
        // prefill queue, so admitted = completed + dropped + shed once the
        // run drains.
        bool shed = false;
        ShedReason shed_reason = ShedReason::kQueueDepth;
        if (shed_enabled) {
          if (shedding.max_queue_depth > 0 &&
              static_cast<int>(prefill_queue.size()) >= shedding.max_queue_depth) {
            shed = true;
          } else if (shedding.ttft_deadline_s > 0.0) {
            int live = 0;
            for (size_t i = 0; i < S.p_state.size(); ++i) {
              if (!(S.p_state[i] & (kInactive | kDraining | kDown))) {
                ++live;
              }
            }
            if (live == 0) {
              shed = true;
              shed_reason = ShedReason::kDeadline;
            } else {
              if (shed_pass_s < 0.0) {
                shed_pass_s = stepper.PrefillTime(stepper.MaxPrefillBatch());
              }
              double waves = std::ceil(
                  (static_cast<double>(prefill_queue.size()) + 1.0) /
                  (static_cast<double>(stepper.MaxPrefillBatch()) * live));
              if (waves * shed_pass_s > shedding.ttft_deadline_s) {
                shed = true;
                shed_reason = ShedReason::kDeadline;
              }
            }
          }
        }
        ++metrics.admitted_requests;
        if (track_classes) {
          ++metrics.per_class[static_cast<size_t>(class_of(static_cast<int>(next_arrival)))]
                .admitted_requests;
        }
        if (shed) {
          ++metrics.shed_requests;
          metrics.shed_events.push_back(
              {now, static_cast<int>(next_arrival), shed_reason});
        } else {
          prefill_queue.push_back(static_cast<int>(next_arrival));
          if (track_qsums) {
            queued_prompt_tokens += requests.prompt_tokens[next_arrival];
          }
          if (scaler.enabled && scaler.predictive) {
            while (!demand_history.empty() &&
                   demand_history.front().t < now - scaler.forecast_window_s) {
              demand_history.pop_front();
            }
            demand_history.push_back(
                {now, static_cast<double>(requests.prompt_tokens[next_arrival]),
                 static_cast<double>(requests.output_tokens[next_arrival]),
                 requests.class_id[next_arrival]});
            peak_demand_entries = std::max(peak_demand_entries, demand_history.size());
          }
        }
      }
      ++next_arrival;
      try_start_prefill(now);
      continue;
    }

    ServeEvent event = events.Pop();
    now = event.time_s;

    // Hot kinds first: completions are the vast majority of a long
    // horizon's stream, so their dispatch pays at most two compares. The
    // test order is pure branch economy — each pop matches exactly one
    // kind, so it cannot affect processing order.
    if (event.kind == ServeEventKind::kDecodeStepDone) {
      int i = event.instance;
      if (faults_enabled && event.epoch != S.d_epoch[i]) {
        continue;  // the step was killed by a failure before it finished
      }
      progress_now = now;
      metrics.tbt_s.Add(S.d_step_duration[i]);
      S.d_state[i] &= static_cast<uint8_t>(~kBusy);
      sync_d_ready(i);
      if (exact_slots) {
        std::vector<int>& remaining = S.d_remaining[static_cast<size_t>(i)];
        std::vector<int>& request_index = S.d_request_index[static_cast<size_t>(i)];
        // Every active sequence emitted one token this step.
        metrics.output_tokens += static_cast<double>(remaining.size());
        if (degrade_enabled && S.d_degrade_since[i] >= 0.0) {
          metrics.degraded_output_tokens += static_cast<double>(remaining.size());
        }
        if (track_classes) {
          // Each active sequence of a class experienced this step's duration
          // as one inter-token gap: one weighted histogram add per class.
          std::fill(S.step_class_counts.begin(), S.step_class_counts.end(), 0);
          for (int req : request_index) {
            ++S.step_class_counts[static_cast<size_t>(class_of(req))];
          }
          for (size_t c = 0; c < S.step_class_counts.size(); ++c) {
            if (S.step_class_counts[c] > 0) {
              metrics.per_class[c].tbt_s.Add(S.d_step_duration[i],
                                             S.step_class_counts[c]);
              metrics.per_class[c].output_tokens +=
                  static_cast<double>(S.step_class_counts[c]);
            }
          }
        }
        for (size_t s = 0; s < remaining.size();) {
          if (--remaining[s] == 0) {
            ++metrics.completed_requests;
            if (track_classes) {
              ++metrics.per_class[static_cast<size_t>(class_of(request_index[s]))]
                    .completed_requests;
            }
            if (now > config.horizon_s) {
              // Admitted before the horizon, finished after it: the request
              // drains but its tail tokens are not horizon goodput.
              ++metrics.in_flight_at_horizon;
              if (track_classes) {
                ++metrics.per_class[static_cast<size_t>(class_of(request_index[s]))]
                      .in_flight_at_horizon;
              }
            }
            metrics.makespan_s = now;
            remaining[s] = remaining.back();
            remaining.pop_back();
            request_index[s] = request_index.back();
            request_index.pop_back();
          } else {
            ++s;
          }
        }
        if ((S.d_state[i] & kDraining) && remaining.empty()) {
          retire_decode(i, S.d_drain_reason[i]);
        }
      } else {
        metrics.output_tokens += static_cast<double>(S.d_active_count[i]);
        if (track_classes) {
          const int* active = &S.class_active[static_cast<size_t>(i) * ncls];
          for (size_t c = 0; c < ncls; ++c) {
            if (active[c] > 0) {
              metrics.per_class[c].tbt_s.Add(S.d_step_duration[i],
                                             static_cast<size_t>(active[c]));
              metrics.per_class[c].output_tokens += static_cast<double>(active[c]);
            }
          }
        }
        // Sequences whose remaining count just hit zero are exactly the
        // completion-heap entries at the new step count.
        uint64_t done_step = ++S.d_step_count[i];
        std::vector<uint64_t>& heap = S.d_heap[static_cast<size_t>(i)];
        while (!heap.empty() && (heap.front() >> kCompletionClassBits) == done_step) {
          std::pop_heap(heap.begin(), heap.end(), std::greater<uint64_t>());
          uint64_t entry = heap.back();
          heap.pop_back();
          size_t cls = static_cast<size_t>(entry & kCompletionClassMask);
          ++metrics.completed_requests;
          if (track_classes) {
            ++metrics.per_class[cls].completed_requests;
            --S.class_active[static_cast<size_t>(i) * ncls + cls];
          }
          if (now > config.horizon_s) {
            ++metrics.in_flight_at_horizon;
            if (track_classes) {
              ++metrics.per_class[cls].in_flight_at_horizon;
            }
          }
          metrics.makespan_s = now;
          --S.d_active_count[i];
        }
        if ((S.d_state[i] & kDraining) && S.d_active_count[i] == 0) {
          retire_decode(i, S.d_drain_reason[i]);
        }
      }
      try_start_decode_step(now);
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillDone) {
      int i = event.instance;
      if (faults_enabled && event.epoch != S.p_epoch[i]) {
        continue;  // the pass was killed by a failure before it finished
      }
      progress_now = now;
      std::vector<int>& slots = S.p_batch[static_cast<size_t>(i)];
      for (int req : slots) {
        // A retried request's first token was delivered by its first
        // successful prefill; later re-prefills don't re-record TTFT.
        if (!faults_enabled || !S.ttft_recorded[static_cast<size_t>(req)]) {
          record_ttft(req, now - requests.arrival_s[static_cast<size_t>(req)]);
          if (faults_enabled) {
            S.ttft_recorded[static_cast<size_t>(req)] = 1;
          }
        }
        decode_queue.push_back(req);
        if (track_qsums) {
          queued_output_tokens += requests.output_tokens[static_cast<size_t>(req)];
        }
      }
      slots.clear();
      S.p_state[i] &= static_cast<uint8_t>(~kBusy);
      sync_p_ready(i);
      if (S.p_state[i] & kDraining) {
        retire_prefill(i, S.p_drain_reason[i]);
      }
      try_start_prefill(now);
      try_start_decode_step(now);
      continue;
    }

    if (event.kind == ServeEventKind::kAutoscaleTick) {
      autoscale_tick();
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillFail ||
        event.kind == ServeEventKind::kDecodeFail) {
      bool is_prefill = event.kind == ServeEventKind::kPrefillFail;
      bool live = is_prefill ? (!(S.p_state[event.instance] & kInactive) &&
                                event.epoch == S.p_epoch[event.instance])
                             : (!(S.d_state[event.instance] & kInactive) &&
                                event.epoch == S.d_epoch[event.instance]);
      if (live) {
        double lost_before = metrics.lost_tokens;
        if (is_prefill) {
          fail_prefill(event.instance, /*domain=*/-1);
        } else {
          fail_decode(event.instance, /*domain=*/-1);
        }
        note_outage(metrics.lost_tokens - lost_before);
        // Retried victims queue for prefill; surviving instances pick
        // them up immediately.
        try_start_prefill(now);
      }
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillDomainFail ||
        event.kind == ServeEventKind::kDecodeDomainFail) {
      // One domain outage downs every live member at this timestamp, in
      // ascending instance order; the whole group is one outage for the
      // blast-radius / drain accounting.
      bool is_prefill = event.kind == ServeEventKind::kPrefillDomainFail;
      int d = event.instance;
      int ipd = is_prefill ? domains.prefill_instances_per_domain
                           : domains.decode_instances_per_domain;
      int n = static_cast<int>(is_prefill ? S.p_state.size() : S.d_state.size());
      int lo = d * ipd;
      int hi = std::min(n, lo + ipd);
      double lost_before = metrics.lost_tokens;
      for (int i = lo; i < hi; ++i) {
        uint8_t state = is_prefill ? S.p_state[i] : S.d_state[i];
        if (state & (kInactive | kDown)) {
          continue;  // retired or already down: nothing left to kill
        }
        if (is_prefill) {
          fail_prefill(i, d);
        } else {
          fail_decode(i, d);
        }
      }
      note_outage(metrics.lost_tokens - lost_before);
      schedule_next_domain_failure(is_prefill ? ScalePool::kPrefill : ScalePool::kDecode,
                                   d, now);
      try_start_prefill(now);
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillDegradeStart ||
        event.kind == ServeEventKind::kDecodeDegradeStart) {
      bool is_prefill = event.kind == ServeEventKind::kPrefillDegradeStart;
      int i = event.instance;
      bool live = is_prefill ? (!(S.p_state[i] & kInactive) && event.epoch == S.p_epoch[i])
                             : (!(S.d_state[i] & kInactive) && event.epoch == S.d_epoch[i]);
      if (!live) {
        continue;
      }
      ScalePool pool = is_prefill ? ScalePool::kPrefill : ScalePool::kDecode;
      // The slot's stream yields gap, duration, gap, duration, ... in event
      // order; failures stale pending windows via the epoch (the recovery
      // reschedules the stream), so every draw happens at a deterministic
      // simulated time regardless of thread count.
      double duration = fault_streams->NextDegradeDuration(pool, i, degraded.mean_duration_s);
      if (is_prefill) {
        S.p_degrade_mult[i] = degraded.multiplier;
        S.p_degrade_since[i] = now;
      } else {
        S.d_degrade_mult[i] = degraded.multiplier;
        S.d_degrade_since[i] = now;
      }
      ++metrics.degrade_windows;
      metrics.fault_events.push_back({now, FaultEventKind::kDegradeStart, pool, i, 0, 0.0,
                                      is_prefill ? prefill_spares_free : decode_spares_free});
      events.Push({now + duration,
                   is_prefill ? ServeEventKind::kPrefillDegradeEnd
                              : ServeEventKind::kDecodeDegradeEnd,
                   i, event.epoch});
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillDegradeEnd ||
        event.kind == ServeEventKind::kDecodeDegradeEnd) {
      bool is_prefill = event.kind == ServeEventKind::kPrefillDegradeEnd;
      int i = event.instance;
      bool live = is_prefill ? (!(S.p_state[i] & kInactive) && event.epoch == S.p_epoch[i])
                             : (!(S.d_state[i] & kInactive) && event.epoch == S.d_epoch[i]);
      if (!live) {
        continue;  // a failure already cleared the window
      }
      if (is_prefill) {
        close_degrade_prefill(i);
      } else {
        close_degrade_decode(i);
      }
      ScalePool pool = is_prefill ? ScalePool::kPrefill : ScalePool::kDecode;
      metrics.fault_events.push_back({now, FaultEventKind::kDegradeEnd, pool, i, 0, 0.0,
                                      is_prefill ? prefill_spares_free : decode_spares_free});
      schedule_next_degrade(pool, i, now, event.epoch);
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillRecover ||
        event.kind == ServeEventKind::kDecodeRecover) {
      if (event.kind == ServeEventKind::kPrefillRecover) {
        int i = event.instance;
        if ((S.p_state[i] & kInactive) || event.epoch != S.p_epoch[i]) {
          continue;  // retired while down
        }
        S.p_state[i] &= static_cast<uint8_t>(~kDown);
        sync_p_ready(i);
        metrics.fault_events.push_back({now,
                                        S.p_via_spare[i] ? FaultEventKind::kSpareActivation
                                                         : FaultEventKind::kRepair,
                                        ScalePool::kPrefill, i, 0, 0.0,
                                        prefill_spares_free});
        schedule_next_failure(ScalePool::kPrefill, i, now, S.p_epoch[i]);
        schedule_next_degrade(ScalePool::kPrefill, i, now, S.p_epoch[i]);
        try_start_prefill(now);
      } else {
        int i = event.instance;
        if ((S.d_state[i] & kInactive) || event.epoch != S.d_epoch[i]) {
          continue;
        }
        S.d_state[i] &= static_cast<uint8_t>(~kDown);
        sync_d_ready(i);
        metrics.fault_events.push_back({now,
                                        S.d_via_spare[i] ? FaultEventKind::kSpareActivation
                                                         : FaultEventKind::kRepair,
                                        ScalePool::kDecode, i, 0, 0.0,
                                        decode_spares_free});
        schedule_next_failure(ScalePool::kDecode, i, now, S.d_epoch[i]);
        schedule_next_degrade(ScalePool::kDecode, i, now, S.d_epoch[i]);
        try_start_decode_step(now);
      }
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillSpareReturn ||
        event.kind == ServeEventKind::kDecodeSpareReturn) {
      bool is_prefill = event.kind == ServeEventKind::kPrefillSpareReturn;
      int& spares_free = is_prefill ? prefill_spares_free : decode_spares_free;
      ++spares_free;
      metrics.fault_events.push_back({now, FaultEventKind::kSpareReturn,
                                      is_prefill ? ScalePool::kPrefill : ScalePool::kDecode,
                                      event.instance, 0, 0.0, spares_free});
      continue;
    }
    if (event.kind == ServeEventKind::kPrefillUp ||
        event.kind == ServeEventKind::kDecodeUp) {
      if (event.kind == ServeEventKind::kPrefillUp) {
        S.AddPrefill(now);
        --pending_prefill_ups;
        ++active_prefill;
        metrics.peak_prefill_instances =
            std::max(metrics.peak_prefill_instances, active_prefill);
        const char* reason = prefill_up_reasons.front();
        prefill_up_reasons.pop_front();
        metrics.scale_events.push_back(
            {now, ScalePool::kPrefill, +1, active_prefill, reason});
        if (faults_enabled) {
          int slot = static_cast<int>(S.p_state.size()) - 1;
          schedule_next_failure(ScalePool::kPrefill, slot, now, 0);
          schedule_new_domains(ScalePool::kPrefill, now);
          schedule_next_degrade(ScalePool::kPrefill, slot, now, 0);
        }
        try_start_prefill(now);
      } else {
        S.AddDecode(now, config.num_classes);
        --pending_decode_ups;
        ++active_decode;
        metrics.peak_decode_instances =
            std::max(metrics.peak_decode_instances, active_decode);
        const char* reason = decode_up_reasons.front();
        decode_up_reasons.pop_front();
        metrics.scale_events.push_back(
            {now, ScalePool::kDecode, +1, active_decode, reason});
        if (faults_enabled) {
          int slot = static_cast<int>(S.d_state.size()) - 1;
          schedule_next_failure(ScalePool::kDecode, slot, now, 0);
          schedule_new_domains(ScalePool::kDecode, now);
          schedule_next_degrade(ScalePool::kDecode, slot, now, 0);
        }
        try_start_decode_step(now);
      }
      continue;
    }

  }

  metrics.makespan_s = std::max(metrics.makespan_s, progress_now);
  metrics.peak_demand_entries = peak_demand_entries;
  if (metrics.makespan_s > 0.0) {
    metrics.decode_tokens_per_s = metrics.output_tokens / metrics.makespan_s;
    double prefill_busy = 0.0;
    for (double b : S.p_busy_time) {
      prefill_busy += b;
    }
    double decode_busy = 0.0;
    double batch_product = 0.0;
    for (size_t i = 0; i < S.d_state.size(); ++i) {
      decode_busy += S.d_busy_time[i];
      batch_product += S.d_batch_time_product[i];
    }
    if (scaler.enabled || faults_enabled) {
      // Provisioned instance-seconds over [0, makespan]: each instance
      // contributes its up..down (or up..end) lifetime, clamped so retires
      // recorded by trailing decision ticks don't overrun the makespan.
      // Fault runs fill these even with a fixed pool, so measured
      // availability has its 1 - downtime / provisioned denominator.
      for (size_t i = 0; i < S.p_state.size(); ++i) {
        double end = S.p_down_time[i] >= 0.0
                         ? std::min(S.p_down_time[i], metrics.makespan_s)
                         : metrics.makespan_s;
        metrics.prefill_instance_seconds += std::max(0.0, end - S.p_up_time[i]);
      }
      for (size_t i = 0; i < S.d_state.size(); ++i) {
        double end = S.d_down_time[i] >= 0.0
                         ? std::min(S.d_down_time[i], metrics.makespan_s)
                         : metrics.makespan_s;
        metrics.decode_instance_seconds += std::max(0.0, end - S.d_up_time[i]);
      }
      metrics.prefill_utilization = metrics.prefill_instance_seconds > 0.0
                                        ? prefill_busy / metrics.prefill_instance_seconds
                                        : 0.0;
      metrics.decode_utilization = metrics.decode_instance_seconds > 0.0
                                       ? decode_busy / metrics.decode_instance_seconds
                                       : 0.0;
      metrics.final_prefill_instances = active_prefill;
      metrics.final_decode_instances = active_decode;
    } else {
      metrics.prefill_utilization =
          prefill_busy / (config.prefill_instances * metrics.makespan_s);
      metrics.decode_utilization =
          decode_busy / (config.decode_instances * metrics.makespan_s);
    }
    metrics.mean_decode_batch = decode_busy > 0.0 ? batch_product / decode_busy : 0.0;
    metrics.prefill_busy_s = prefill_busy;
    metrics.decode_busy_s = decode_busy;
    metrics.decode_batch_time_product = batch_product;
    if (faults_enabled) {
      // Per-pool downtime over [0, makespan], replayed from the event log:
      // each failure opens an interval its spare-activation/repair closes.
      // An interval left open by a retired-while-draining instance (no
      // recovery was scheduled) contributes nothing — the retirement is
      // already accounted in the instance-seconds integral.
      std::vector<double> down_since_prefill(S.p_state.size(), -1.0);
      std::vector<double> down_since_decode(S.d_state.size(), -1.0);
      for (const FaultEvent& e : metrics.fault_events) {
        bool is_prefill = e.pool == ScalePool::kPrefill;
        std::vector<double>& down_since =
            is_prefill ? down_since_prefill : down_since_decode;
        double& downtime = is_prefill ? metrics.prefill_fault_downtime_s
                                      : metrics.decode_fault_downtime_s;
        size_t i = static_cast<size_t>(e.instance);
        if (e.kind == FaultEventKind::kFailure) {
          down_since[i] = e.time_s;
        } else if (e.kind == FaultEventKind::kSpareActivation ||
                   e.kind == FaultEventKind::kRepair) {
          downtime += std::min(e.time_s, metrics.makespan_s) -
                      std::min(down_since[i], metrics.makespan_s);
          down_since[i] = -1.0;
        }
      }
      for (size_t i = 0; i < down_since_prefill.size(); ++i) {
        if (down_since_prefill[i] >= 0.0 && !(S.p_state[i] & kInactive)) {
          metrics.prefill_fault_downtime_s +=
              metrics.makespan_s - std::min(down_since_prefill[i], metrics.makespan_s);
        }
      }
      for (size_t i = 0; i < down_since_decode.size(); ++i) {
        if (down_since_decode[i] >= 0.0 && !(S.d_state[i] & kInactive)) {
          metrics.decode_fault_downtime_s +=
              metrics.makespan_s - std::min(down_since_decode[i], metrics.makespan_s);
        }
      }
    }
  }
  if (degrade_enabled) {
    // Close windows still open at the end of the run, clipped to makespan.
    for (size_t i = 0; i < S.p_state.size(); ++i) {
      if (S.p_degrade_since[i] >= 0.0) {
        metrics.prefill_degraded_instance_s +=
            std::max(0.0, metrics.makespan_s - S.p_degrade_since[i]);
      }
    }
    for (size_t i = 0; i < S.d_state.size(); ++i) {
      if (S.d_degrade_since[i] >= 0.0) {
        metrics.decode_degraded_instance_s +=
            std::max(0.0, metrics.makespan_s - S.d_degrade_since[i]);
      }
    }
  }
  if (drain_pending) {
    // The queues never emptied again after the largest outage: the drain
    // took the rest of the run.
    metrics.time_to_drain_s =
        std::max(0.0, metrics.makespan_s - metrics.largest_outage_time_s);
  }
  return metrics;
}

}  // namespace

ServeMetrics RunServeSimulation(const RequestSoA& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks) {
  return RunSimulation(requests, config, CallbackStepper{callbacks});
}

ServeMetrics RunServeSimulation(const RequestSoA& requests,
                                const ServeClusterConfig& config,
                                const StepTimeTable& table) {
  return RunSimulation(requests, config, TableStepper{table});
}

ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const ServeCallbacks& callbacks) {
  return RunSimulation(RequestSoA::FromRequests(requests), config,
                       CallbackStepper{callbacks});
}

ServeMetrics RunServeSimulation(const std::vector<Request>& requests,
                                const ServeClusterConfig& config,
                                const StepTimeTable& table) {
  return RunSimulation(RequestSoA::FromRequests(requests), config, TableStepper{table});
}

ServeMetrics MergeServeShardMetrics(const ServeClusterConfig& config,
                                    const std::vector<ServeMetrics>& shards) {
  ServeMetrics merged;
  if (shards.empty()) {
    return merged;
  }
  merged.ttft_streamed = shards.front().ttft_streamed;
  if (merged.ttft_streamed) {
    merged.ttft_hist = LatencyHistogram(config.ttft_hist_hi_s);
  }
  if (config.num_classes > 0) {
    merged.per_class.resize(static_cast<size_t>(config.num_classes));
    if (merged.ttft_streamed) {
      for (ServeClassMetrics& pc : merged.per_class) {
        pc.ttft_hist = LatencyHistogram(config.ttft_hist_hi_s);
      }
    }
  }
  // Fold in shard-index order — deterministic regardless of which thread
  // finished which shard first.
  for (const ServeMetrics& m : shards) {
    if (merged.ttft_streamed) {
      merged.ttft_hist.Merge(m.ttft_hist);
    } else {
      for (double v : m.ttft_s.samples()) {
        merged.ttft_s.Add(v);
      }
    }
    merged.tbt_s.Merge(m.tbt_s);
    merged.completed_requests += m.completed_requests;
    merged.admitted_requests += m.admitted_requests;
    merged.in_flight_at_horizon += m.in_flight_at_horizon;
    merged.output_tokens += m.output_tokens;
    // Sub-horizons run back to back conceptually: the merged makespan is
    // the summed wall of the shards, which keeps rate and utilization
    // denominators consistent with the summed numerators.
    merged.makespan_s += m.makespan_s;
    merged.prefill_busy_s += m.prefill_busy_s;
    merged.decode_busy_s += m.decode_busy_s;
    merged.decode_batch_time_product += m.decode_batch_time_product;
    // Fault/degrade/shed counters are additive; the logs and the
    // largest-outage tracking are not merged (the Runner rejects sharding
    // combined with faults or shedding).
    merged.shed_requests += m.shed_requests;
    merged.degrade_windows += m.degrade_windows;
    merged.prefill_degraded_instance_s += m.prefill_degraded_instance_s;
    merged.decode_degraded_instance_s += m.decode_degraded_instance_s;
    merged.degraded_output_tokens += m.degraded_output_tokens;
    for (size_t c = 0; c < merged.per_class.size() && c < m.per_class.size(); ++c) {
      ServeClassMetrics& out = merged.per_class[c];
      const ServeClassMetrics& in = m.per_class[c];
      if (merged.ttft_streamed) {
        out.ttft_hist.Merge(in.ttft_hist);
      } else {
        for (double v : in.ttft_s.samples()) {
          out.ttft_s.Add(v);
        }
      }
      out.tbt_s.Merge(in.tbt_s);
      out.admitted_requests += in.admitted_requests;
      out.completed_requests += in.completed_requests;
      out.in_flight_at_horizon += in.in_flight_at_horizon;
      out.output_tokens += in.output_tokens;
    }
  }
  if (merged.makespan_s > 0.0) {
    merged.decode_tokens_per_s = merged.output_tokens / merged.makespan_s;
    merged.prefill_utilization =
        merged.prefill_busy_s / (config.prefill_instances * merged.makespan_s);
    merged.decode_utilization =
        merged.decode_busy_s / (config.decode_instances * merged.makespan_s);
  }
  merged.mean_decode_batch = merged.decode_busy_s > 0.0
                                 ? merged.decode_batch_time_product / merged.decode_busy_s
                                 : 0.0;
  return merged;
}

}  // namespace litegpu
