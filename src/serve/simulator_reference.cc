#include "src/serve/simulator_reference.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

namespace litegpu {

namespace {

// Simultaneous events process in a fully specified order: domain outages
// first (they expand to member failures at one timestamp), then independent
// failures (a completion at the same instant loses the race and is killed),
// then degrade transitions (a dispatch at the same instant sees the new
// multiplier), then completions, then instances coming up
// (autoscaler-provisioned capacity, fault recoveries, spare returns), then
// autoscaler decision ticks — so a decision at time T sees every completion
// and recovery at T, and results never depend on the event heap's internal
// layout. With faults disabled no fault kinds are ever scheduled, so the
// relative order of the pre-fault kinds (and every metric) is unchanged.
// Must match ServeEventKind's order exactly: the two paths are
// element-wise-compared on their fault and shed logs.
enum class EventKind {
  kPrefillDomainFail,
  kDecodeDomainFail,
  kPrefillFail,
  kDecodeFail,
  kPrefillDegradeStart,
  kDecodeDegradeStart,
  kPrefillDegradeEnd,
  kDecodeDegradeEnd,
  kPrefillDone,
  kDecodeStepDone,
  kPrefillUp,
  kDecodeUp,
  kPrefillRecover,
  kDecodeRecover,
  kPrefillSpareReturn,
  kDecodeSpareReturn,
  kAutoscaleTick,
};

struct Event {
  double time_s = 0.0;
  EventKind kind = EventKind::kPrefillDone;
  int instance = 0;
  // Instance lifecycle epoch at scheduling time (fault runs only): a
  // failure bumps its instance's epoch, so completion and failure events
  // scheduled before it are discarded as stale on pop. Always 0 with
  // faults disabled; deliberately not part of the ordering.
  int epoch = 0;
  // Full ordering so simultaneous events pop in a specified order —
  // (time, kind, instance/sequence) — instead of the heap's internal
  // layout (which standard libraries are free to differ on).
  bool operator>(const Event& other) const {
    if (time_s != other.time_s) {
      return time_s > other.time_s;
    }
    if (kind != other.kind) {
      return kind > other.kind;
    }
    return instance > other.instance;
  }
};

// Instance lifecycle (only the autoscaler moves instances out of the
// initial active state): active+!draining take new work; draining finish
// their in-flight work and retire; retired (!active) instances stay in the
// vector so indices in scheduled events remain stable.
struct PrefillInstance {
  bool busy = false;
  std::vector<int> batch;  // request indices being prefilled
  double busy_time = 0.0;
  bool active = true;
  bool draining = false;
  double up_time = 0.0;
  double down_time = -1.0;  // < 0 while provisioned
  const char* drain_reason = "";
  // Fault state (ServeFaultConfig::enabled runs only).
  bool down = false;       // failed, waiting on spare activation / repair
  bool via_spare = false;  // current outage is masked by a hot spare
  int epoch = 0;           // bumped per failure; stale events are discarded
  double pass_started = 0.0;  // for refunding a killed pass's busy time
  double pass_duration = 0.0;
  // Degraded-state window (applies to new dispatches only).
  double degrade_mult = 1.0;
  double degrade_since = -1.0;  // < 0 while healthy
};

struct DecodeInstance {
  std::vector<int> remaining;      // output tokens left per active sequence
  std::vector<int> request_index;  // parallel array for bookkeeping
  double current_step_started = 0.0;
  double current_step_duration = 0.0;
  bool stepping = false;
  double busy_time = 0.0;
  double batch_time_product = 0.0;  // integral of batch over busy time
  bool active = true;
  bool draining = false;
  double up_time = 0.0;
  double down_time = -1.0;
  const char* drain_reason = "";
  // Fault state (ServeFaultConfig::enabled runs only).
  bool down = false;
  bool via_spare = false;
  int epoch = 0;
  // Degraded-state window (applies to new dispatches only).
  double degrade_mult = 1.0;
  double degrade_since = -1.0;  // < 0 while healthy
};

// Step-time providers for the shared event loop. Both answer the same two
// questions; the table one compiles down to an array load, the callback one
// pays std::function dispatch (and whatever the callback itself does).
struct TableStepper {
  const StepTimeTable& table;
  double PrefillTime(int batch) const { return table.PrefillTime(batch); }
  double DecodeStepTime(int batch) const { return table.DecodeStepTime(batch); }
  int MaxPrefillBatch() const { return table.max_prefill_batch(); }
  int MaxDecodeBatch() const { return table.max_decode_batch(); }
  bool Valid() const { return !table.empty(); }
};

struct CallbackStepper {
  const ServeCallbacks& callbacks;
  double PrefillTime(int batch) const { return callbacks.prefill_time(batch); }
  double DecodeStepTime(int batch) const { return callbacks.decode_step_time(batch); }
  int MaxPrefillBatch() const { return callbacks.max_prefill_batch; }
  int MaxDecodeBatch() const { return callbacks.max_decode_batch; }
  bool Valid() const {
    return static_cast<bool>(callbacks.prefill_time) &&
           static_cast<bool>(callbacks.decode_step_time);
  }
};

template <typename Stepper>
ServeMetrics RunSimulation(const std::vector<Request>& requests,
                           const ServeClusterConfig& config, const Stepper& stepper) {
  ServeMetrics metrics;
  if (!stepper.Valid() || config.prefill_instances <= 0 || config.decode_instances <= 0) {
    return metrics;
  }

  std::vector<PrefillInstance> prefill(config.prefill_instances);
  std::vector<DecodeInstance> decode(config.decode_instances);
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::deque<int> prefill_queue;  // request indices
  std::deque<int> decode_queue;   // request indices (prefilled, awaiting decode)

  // --- autoscaler state (dormant unless cfg.enabled) ---
  const ServeAutoscalerConfig& scaler = config.autoscaler;
  int active_prefill = config.prefill_instances;  // provisioned (incl. draining)
  int active_decode = config.decode_instances;
  int pending_prefill_ups = 0;
  int pending_decode_ups = 0;
  std::deque<const char*> prefill_up_reasons;  // FIFO-matched to up events
  std::deque<const char*> decode_up_reasons;
  int up_seq = 0;    // ordering sequence for simultaneous up events
  int tick_seq = 0;  // and for ticks
  double prev_tick_time = 0.0;
  double prev_prefill_busy = 0.0;
  double prev_decode_busy = 0.0;
  // Admitted demand for the predictive forecast: (time, class, tokens).
  struct Demand {
    double t;
    double prompt_tokens;
    double output_tokens;
    int cls;
  };
  std::deque<Demand> demand_history;
  if (scaler.enabled) {
    metrics.peak_prefill_instances = active_prefill;
    metrics.peak_decode_instances = active_decode;
    events.push({scaler.interval_s, EventKind::kAutoscaleTick, tick_seq++});
  }

  // --- fault-injection state (dormant unless faults.enabled) ---
  const ServeFaultConfig& faults = config.faults;
  const bool faults_enabled = faults.enabled;
  const FaultDomainConfig& domains = faults.domains;
  const bool domains_enabled = faults_enabled && domains.enabled();
  const DegradedStateConfig& degraded = faults.degraded;
  const bool degrade_enabled = faults_enabled && degraded.enabled();
  const SheddingPolicy& shedding = config.shedding;
  const bool shed_enabled = shedding.enabled();
  double shed_pass_s = -1.0;  // lazily probed full-batch prefill time
  std::optional<FaultStreams> fault_streams;
  int prefill_spares_free = faults.prefill_spares;
  int decode_spares_free = faults.decode_spares;
  std::vector<uint8_t> ttft_recorded;  // first prefill completion per request
  std::vector<int> retry_counts;       // kRetryWithBudget kills per request
  auto schedule_next_failure = [&](ScalePool pool, int slot, double from_t, int epoch) {
    double rate = pool == ScalePool::kPrefill ? faults.prefill_failure_rate_per_s
                                              : faults.decode_failure_rate_per_s;
    if (rate <= 0.0) {
      return;
    }
    // Failures are injected over the admission horizon only; the drain
    // tail past it runs fault-free, which also bounds the event stream.
    double t = from_t + fault_streams->NextFailureGap(pool, slot, rate);
    if (t <= config.horizon_s) {
      events.push({t,
                   pool == ScalePool::kPrefill ? EventKind::kPrefillFail
                                               : EventKind::kDecodeFail,
                   slot, epoch});
    }
  };
  // Domain outage streams: one per failure domain, keyed by (seed, pool,
  // domain), injected over the admission horizon like instance failures.
  // Domains are discovered as the pool grows — domain d covers instances
  // [d*ipd, (d+1)*ipd) — and each domain's gap sequence depends only on its
  // id, never on when its first member appeared.
  int prefill_domains_scheduled = 0;
  int decode_domains_scheduled = 0;
  auto schedule_next_domain_failure = [&](ScalePool pool, int domain, double from_t) {
    double t =
        from_t + fault_streams->NextDomainFailureGap(pool, domain, domains.failure_rate_per_s);
    if (t <= config.horizon_s) {
      events.push({t,
                   pool == ScalePool::kPrefill ? EventKind::kPrefillDomainFail
                                               : EventKind::kDecodeDomainFail,
                   domain});
    }
  };
  auto schedule_new_domains = [&](ScalePool pool, double from_t) {
    if (!domains_enabled) {
      return;
    }
    bool is_prefill = pool == ScalePool::kPrefill;
    int ipd = is_prefill ? domains.prefill_instances_per_domain
                         : domains.decode_instances_per_domain;
    if (ipd <= 0) {
      return;
    }
    int n = static_cast<int>(is_prefill ? prefill.size() : decode.size());
    int want = (n + ipd - 1) / ipd;
    int& scheduled = is_prefill ? prefill_domains_scheduled : decode_domains_scheduled;
    while (scheduled < want) {
      schedule_next_domain_failure(pool, scheduled++, from_t);
    }
  };
  // Degrade streams: per (pool, slot) like failures; a failure clears the
  // degraded state (epoch bump stales the pending end event) and the
  // recovery reschedules the slot's stream.
  auto schedule_next_degrade = [&](ScalePool pool, int slot, double from_t, int epoch) {
    double rate = pool == ScalePool::kPrefill ? degraded.prefill_rate_per_s
                                              : degraded.decode_rate_per_s;
    if (rate <= 0.0) {
      return;
    }
    double t = from_t + fault_streams->NextDegradeGap(pool, slot, rate);
    if (t <= config.horizon_s) {
      events.push({t,
                   pool == ScalePool::kPrefill ? EventKind::kPrefillDegradeStart
                                               : EventKind::kDecodeDegradeStart,
                   slot, epoch});
    }
  };
  if (faults_enabled) {
    fault_streams.emplace(faults.seed);
    for (int i = 0; i < static_cast<int>(prefill.size()); ++i) {
      schedule_next_failure(ScalePool::kPrefill, i, 0.0, 0);
    }
    for (int i = 0; i < static_cast<int>(decode.size()); ++i) {
      schedule_next_failure(ScalePool::kDecode, i, 0.0, 0);
    }
    schedule_new_domains(ScalePool::kPrefill, 0.0);
    schedule_new_domains(ScalePool::kDecode, 0.0);
    if (degrade_enabled) {
      for (int i = 0; i < static_cast<int>(prefill.size()); ++i) {
        schedule_next_degrade(ScalePool::kPrefill, i, 0.0, 0);
      }
      for (int i = 0; i < static_cast<int>(decode.size()); ++i) {
        schedule_next_degrade(ScalePool::kDecode, i, 0.0, 0);
      }
    }
    ttft_recorded.assign(requests.size(), 0);
  }

  // Per-class bookkeeping only exists when the caller asked for it, so
  // single-class runs pay nothing and stay bit-identical to the pre-class
  // simulator. Out-of-range class ids fold into class 0 rather than
  // indexing out of bounds (the Runner validates them upstream).
  const bool track_classes = config.num_classes > 0;
  if (track_classes) {
    metrics.per_class.resize(static_cast<size_t>(config.num_classes));
  }
  std::vector<size_t> step_class_counts(track_classes ? config.num_classes : 0, 0);
  auto class_of = [&](int req) {
    int cid = requests[static_cast<size_t>(req)].class_id;
    return (cid >= 0 && cid < config.num_classes) ? cid : 0;
  };

  size_t next_arrival = 0;
  double now = 0.0;
  // Workload progress time: arrivals and completions, NOT autoscaler
  // ticks/ups — the final makespan must not stretch to a trailing decision
  // tick that did no work.
  double progress_now = 0.0;

  // Close an instance's open throttled window (degrade end, failure, or
  // retirement), banking the degraded instance-seconds.
  auto close_degrade_prefill = [&](int i) {
    if (prefill[i].degrade_since >= 0.0) {
      metrics.prefill_degraded_instance_s += now - prefill[i].degrade_since;
      prefill[i].degrade_since = -1.0;
      prefill[i].degrade_mult = 1.0;
    }
  };
  auto close_degrade_decode = [&](int i) {
    if (decode[i].degrade_since >= 0.0) {
      metrics.decode_degraded_instance_s += now - decode[i].degrade_since;
      decode[i].degrade_since = -1.0;
      decode[i].degrade_mult = 1.0;
    }
  };

  // Recovery tracking: the largest single failure group (one independent
  // failure or one domain outage's members) by discarded tokens; the loop
  // then watches for the first instant both queues are empty again.
  bool drain_pending = false;
  auto note_outage = [&](double lost) {
    if (lost > metrics.largest_outage_lost_tokens) {
      metrics.largest_outage_lost_tokens = lost;
      metrics.largest_outage_time_s = now;
      metrics.time_to_drain_s = -1.0;
      drain_pending = true;
    }
  };

  auto try_start_prefill = [&](double t) {
    for (int i = 0; i < static_cast<int>(prefill.size()); ++i) {
      if (!prefill[i].active || prefill[i].draining || prefill[i].down ||
          prefill[i].busy || prefill_queue.empty()) {
        continue;
      }
      int batch = std::min<int>(stepper.MaxPrefillBatch(),
                                static_cast<int>(prefill_queue.size()));
      prefill[i].batch.clear();
      for (int b = 0; b < batch; ++b) {
        prefill[i].batch.push_back(prefill_queue.front());
        prefill_queue.pop_front();
      }
      double duration = stepper.PrefillTime(batch);
      if (degrade_enabled) {
        // Dispatch-only throttling: a pass keeps the duration it started
        // with even if the window closes mid-pass.
        duration *= prefill[i].degrade_mult;
      }
      prefill[i].busy = true;
      prefill[i].busy_time += duration;
      prefill[i].pass_started = t;
      prefill[i].pass_duration = duration;
      events.push({t + duration, EventKind::kPrefillDone, i, prefill[i].epoch});
    }
  };

  auto try_start_decode_step = [&](double t) {
    for (int i = 0; i < static_cast<int>(decode.size()); ++i) {
      DecodeInstance& inst = decode[i];
      if (inst.stepping || !inst.active || inst.down) {
        continue;
      }
      // Admit waiting sequences at the step boundary (draining instances
      // only finish what they already hold).
      if (!inst.draining) {
        while (!decode_queue.empty() &&
               static_cast<int>(inst.remaining.size()) < stepper.MaxDecodeBatch()) {
          int req = decode_queue.front();
          decode_queue.pop_front();
          inst.remaining.push_back(std::max(1, requests[req].output_tokens));
          inst.request_index.push_back(req);
        }
      }
      if (inst.remaining.empty()) {
        continue;
      }
      int batch = static_cast<int>(inst.remaining.size());
      double duration = stepper.DecodeStepTime(batch);
      if (degrade_enabled) {
        duration *= inst.degrade_mult;
      }
      inst.stepping = true;
      inst.current_step_started = t;
      inst.current_step_duration = duration;
      inst.busy_time += duration;
      inst.batch_time_product += batch * duration;
      events.push({t + duration, EventKind::kDecodeStepDone, i, inst.epoch});
    }
  };

  // --- autoscaler actions ---
  auto retire_prefill = [&](int i, const char* reason) {
    if (degrade_enabled) {
      close_degrade_prefill(i);
    }
    prefill[i].active = false;
    prefill[i].draining = false;
    prefill[i].down_time = now;
    --active_prefill;
    metrics.scale_events.push_back({now, ScalePool::kPrefill, -1, active_prefill, reason});
  };
  auto retire_decode = [&](int i, const char* reason) {
    if (degrade_enabled) {
      close_degrade_decode(i);
    }
    decode[i].active = false;
    decode[i].draining = false;
    decode[i].down_time = now;
    --active_decode;
    metrics.scale_events.push_back({now, ScalePool::kDecode, -1, active_decode, reason});
  };
  // Pick the highest-index live instance: the most recently provisioned
  // capacity leaves first, keeping the initial pool stable.
  auto drain_one_prefill = [&](const char* reason) {
    for (int i = static_cast<int>(prefill.size()) - 1; i >= 0; --i) {
      if (prefill[i].active && !prefill[i].draining && !prefill[i].down) {
        if (!prefill[i].busy) {
          retire_prefill(i, reason);
        } else {
          prefill[i].draining = true;
          prefill[i].drain_reason = reason;
        }
        return;
      }
    }
  };
  auto drain_one_decode = [&](const char* reason) {
    for (int i = static_cast<int>(decode.size()) - 1; i >= 0; --i) {
      if (decode[i].active && !decode[i].draining && !decode[i].down) {
        if (decode[i].remaining.empty() && !decode[i].stepping) {
          retire_decode(i, reason);
        } else {
          decode[i].draining = true;
          decode[i].drain_reason = reason;
        }
        return;
      }
    }
  };

  // --- fault actions ---
  // What happens to a request whose instance died under it.
  auto requeue_or_drop = [&](int req) {
    bool retry = faults.retry_policy == FaultRetryPolicy::kRetry;
    if (faults.retry_policy == FaultRetryPolicy::kRetryWithBudget) {
      if (retry_counts.empty()) {
        retry_counts.assign(requests.size(), 0);
      }
      retry = retry_counts[static_cast<size_t>(req)] < faults.retry_budget;
      if (retry) {
        ++retry_counts[static_cast<size_t>(req)];
      }
    }
    if (retry) {
      // The KV cache died with the instance: back of the prefill queue.
      prefill_queue.push_back(req);
      ++metrics.retried_requests;
    } else {
      ++metrics.dropped_requests;
    }
  };

  // An instance failure kills its in-flight work (refunding the busy time
  // the unfinished pass/step had claimed up front), requeues or drops the
  // victims per the retry policy, and takes the instance down for the
  // spare-activation delay (consuming a free spare whose repaired device
  // returns later) or the full repair. A draining instance that fails
  // simply retires — the autoscaler wanted it gone anyway. domain >= 0
  // marks a member of a correlated domain outage: it bypasses hot spares
  // (a rack outage is not maskable by a spare device) and waits out the
  // domain repair instead of the instance repair.
  auto fail_prefill = [&](int i, int domain) {
    PrefillInstance& inst = prefill[i];
    if (degrade_enabled) {
      close_degrade_prefill(i);
    }
    ++inst.epoch;
    int killed = 0;
    double lost = 0.0;
    if (inst.busy) {
      inst.busy_time -= inst.pass_started + inst.pass_duration - now;
      killed = static_cast<int>(inst.batch.size());
      for (int req : inst.batch) {
        lost += requests[static_cast<size_t>(req)].prompt_tokens;
        requeue_or_drop(req);
      }
      inst.batch.clear();
      inst.busy = false;
    }
    metrics.lost_tokens += lost;
    if (inst.draining) {
      metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kPrefill,
                                      i, killed, lost, prefill_spares_free, domain});
      retire_prefill(i, inst.drain_reason);
      return;
    }
    inst.down = true;
    inst.via_spare = false;
    double delay = faults.repair_s;
    if (domain >= 0) {
      delay = domains.repair_s;
    } else if (prefill_spares_free > 0) {
      --prefill_spares_free;
      inst.via_spare = true;
      delay = faults.spare_activation_s;
      events.push({now + faults.repair_s, EventKind::kPrefillSpareReturn, i});
    }
    metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kPrefill, i,
                                    killed, lost, prefill_spares_free, domain});
    events.push({now + delay, EventKind::kPrefillRecover, i, inst.epoch});
  };

  auto fail_decode = [&](int i, int domain) {
    DecodeInstance& inst = decode[i];
    if (degrade_enabled) {
      close_degrade_decode(i);
    }
    ++inst.epoch;
    int killed = static_cast<int>(inst.remaining.size());
    double lost = 0.0;
    if (inst.stepping) {
      double unfinished = inst.current_step_started + inst.current_step_duration - now;
      inst.busy_time -= unfinished;
      inst.batch_time_product -=
          static_cast<double>(inst.remaining.size()) * unfinished;
      inst.stepping = false;
    }
    for (size_t s = 0; s < inst.remaining.size(); ++s) {
      int req = inst.request_index[s];
      // Generated-so-far tokens die with the KV cache: they are not
      // horizon goodput, so back them out of the token counts.
      double generated = static_cast<double>(
          std::max(1, requests[static_cast<size_t>(req)].output_tokens) -
          inst.remaining[s]);
      lost += generated;
      metrics.output_tokens -= generated;
      if (track_classes) {
        metrics.per_class[static_cast<size_t>(class_of(req))].output_tokens -= generated;
      }
      requeue_or_drop(req);
    }
    inst.remaining.clear();
    inst.request_index.clear();
    metrics.lost_tokens += lost;
    if (inst.draining) {
      metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kDecode,
                                      i, killed, lost, decode_spares_free, domain});
      retire_decode(i, inst.drain_reason);
      return;
    }
    inst.down = true;
    inst.via_spare = false;
    double delay = faults.repair_s;
    if (domain >= 0) {
      delay = domains.repair_s;
    } else if (decode_spares_free > 0) {
      --decode_spares_free;
      inst.via_spare = true;
      delay = faults.spare_activation_s;
      events.push({now + faults.repair_s, EventKind::kDecodeSpareReturn, i});
    }
    metrics.fault_events.push_back({now, FaultEventKind::kFailure, ScalePool::kDecode, i,
                                    killed, lost, decode_spares_free, domain});
    events.push({now + delay, EventKind::kDecodeRecover, i, inst.epoch});
  };

  // One autoscaler decision: reactive thresholds on backlog/utilization, or
  // a per-class demand forecast (predictive) with the backlog trigger kept
  // as a safety net. Applied per pool, at most one scale-down per tick.
  auto autoscale_tick = [&]() {
    double window = now - prev_tick_time;
    int live_prefill = 0;
    int live_decode = 0;
    double prefill_busy = 0.0;
    double decode_busy = 0.0;
    // Down (failed) instances are not live: the autoscaler sees the
    // reduced pool and can provision replacements while repairs run.
    for (const auto& p : prefill) {
      if (p.active && !p.draining && !p.down) {
        ++live_prefill;
      }
      prefill_busy += p.busy_time;
    }
    for (const auto& d : decode) {
      if (d.active && !d.draining && !d.down) {
        ++live_decode;
      }
      decode_busy += d.busy_time;
    }
    double queued_prompt_tokens = 0.0;
    for (int req : prefill_queue) {
      queued_prompt_tokens += requests[static_cast<size_t>(req)].prompt_tokens;
    }
    double queued_output_tokens = 0.0;
    for (int req : decode_queue) {
      queued_output_tokens += requests[static_cast<size_t>(req)].output_tokens;
    }

    // Predictive forecast: per-class token demand over two half-windows,
    // linearly extrapolated half a window ahead, clamped at zero per class
    // so one collapsing class does not mask another's growth.
    double forecast_prompt_rate = 0.0;
    double forecast_output_rate = 0.0;
    if (scaler.predictive) {
      double half = scaler.forecast_window_s / 2.0;
      while (!demand_history.empty() &&
             demand_history.front().t < now - scaler.forecast_window_s) {
        demand_history.pop_front();
      }
      size_t ncls = static_cast<size_t>(std::max(1, config.num_classes));
      std::vector<double> recent_prompt(ncls, 0.0), old_prompt(ncls, 0.0);
      std::vector<double> recent_output(ncls, 0.0), old_output(ncls, 0.0);
      for (const Demand& d : demand_history) {
        size_t c = (d.cls >= 0 && d.cls < static_cast<int>(ncls))
                       ? static_cast<size_t>(d.cls)
                       : 0;
        if (d.t >= now - half) {
          recent_prompt[c] += d.prompt_tokens;
          recent_output[c] += d.output_tokens;
        } else {
          old_prompt[c] += d.prompt_tokens;
          old_output[c] += d.output_tokens;
        }
      }
      for (size_t c = 0; c < ncls; ++c) {
        forecast_prompt_rate += std::max(0.0, 2.0 * recent_prompt[c] - old_prompt[c]) / half;
        forecast_output_rate += std::max(0.0, 2.0 * recent_output[c] - old_output[c]) / half;
      }
    }

    auto plan_pool = [&](ScalePool pool) {
      bool is_prefill = pool == ScalePool::kPrefill;
      int live = is_prefill ? live_prefill : live_decode;
      int& pending = is_prefill ? pending_prefill_ups : pending_decode_ups;
      auto& up_reasons = is_prefill ? prefill_up_reasons : decode_up_reasons;
      double per_instance = is_prefill ? scaler.prefill_tokens_per_s : scaler.decode_tokens_per_s;
      double queued_tokens = is_prefill ? queued_prompt_tokens : queued_output_tokens;
      double busy_delta =
          is_prefill ? prefill_busy - prev_prefill_busy : decode_busy - prev_decode_busy;
      int min_n = is_prefill ? scaler.min_prefill_instances : scaler.min_decode_instances;
      int max_n = is_prefill ? scaler.max_prefill_instances : scaler.max_decode_instances;
      double utilization =
          (window > 0.0 && live > 0) ? busy_delta / (live * window) : 0.0;
      double backlog_s = per_instance > 0.0
                             ? queued_tokens / (std::max(1, live) * per_instance)
                             : 0.0;
      int target = live + pending;

      auto schedule_up = [&](const char* reason) {
        events.push({now + scaler.delay_s, is_prefill ? EventKind::kPrefillUp : EventKind::kDecodeUp,
                     up_seq++});
        up_reasons.push_back(reason);
        ++pending;
        ++target;
      };

      if (scaler.predictive) {
        double forecast_rate = is_prefill ? forecast_prompt_rate : forecast_output_rate;
        int desired = live;
        if (per_instance > 0.0) {
          desired = static_cast<int>(std::ceil(scaler.headroom * forecast_rate / per_instance));
        }
        desired = std::min(std::max(desired, min_n), max_n);
        while (target < desired) {
          schedule_up("forecast");
        }
        if (backlog_s > scaler.scale_up_backlog_s && target < max_n) {
          schedule_up("backlog");  // reactive safety net under forecast misses
        }
        if (pending == 0 && target > desired && queued_tokens <= 0.0 && target > min_n) {
          if (is_prefill) {
            drain_one_prefill("forecast");
          } else {
            drain_one_decode("forecast");
          }
        }
        return;
      }

      const char* up_reason = nullptr;
      if (backlog_s > scaler.scale_up_backlog_s) {
        up_reason = "backlog";
      } else if (utilization > scaler.scale_up_utilization) {
        up_reason = "utilization";
      }
      if (up_reason != nullptr) {
        if (target < max_n) {
          schedule_up(up_reason);
        }
      } else if (pending == 0 && target > min_n &&
                 utilization < scaler.scale_down_utilization && queued_tokens <= 0.0) {
        if (is_prefill) {
          drain_one_prefill("utilization");
        } else {
          drain_one_decode("utilization");
        }
      }
    };
    plan_pool(ScalePool::kPrefill);
    plan_pool(ScalePool::kDecode);

    prev_tick_time = now;
    prev_prefill_busy = prefill_busy;
    prev_decode_busy = decode_busy;

    // Keep ticking only while there is anything left to manage; otherwise
    // the tick stream would keep the event loop alive forever (the default
    // horizon is effectively infinite).
    bool work_left = next_arrival < requests.size() || !prefill_queue.empty() ||
                     !decode_queue.empty() || pending_prefill_ups > 0 ||
                     pending_decode_ups > 0;
    if (!work_left) {
      for (const auto& p : prefill) {
        if (p.busy) {
          work_left = true;
          break;
        }
      }
    }
    if (!work_left) {
      for (const auto& d : decode) {
        if (d.stepping || !d.remaining.empty()) {
          work_left = true;
          break;
        }
      }
    }
    if (work_left) {
      events.push({now + scaler.interval_s, EventKind::kAutoscaleTick, tick_seq++});
    }
  };

  for (;;) {
    // First instant both queues are empty after the largest outage: the
    // check runs at the top of every iteration (after the previous item
    // fully processed), gated on drain_pending so fault-free runs never
    // pay it.
    if (drain_pending && prefill_queue.empty() && decode_queue.empty()) {
      metrics.time_to_drain_s = now - metrics.largest_outage_time_s;
      drain_pending = false;
    }
    double arrival_t = next_arrival < requests.size() ? requests[next_arrival].arrival_s
                                                      : std::numeric_limits<double>::max();
    double event_t =
        events.empty() ? std::numeric_limits<double>::max() : events.top().time_s;
    if (arrival_t == std::numeric_limits<double>::max() &&
        event_t == std::numeric_limits<double>::max()) {
      break;
    }

    if (arrival_t <= event_t) {
      now = arrival_t;
      progress_now = now;
      if (now <= config.horizon_s) {
        // Admission control: a shed request reached the cluster (it counts
        // as admitted, globally and per class) but never enters the
        // prefill queue, so admitted = completed + dropped + shed once the
        // run drains.
        bool shed = false;
        ShedReason shed_reason = ShedReason::kQueueDepth;
        if (shed_enabled) {
          if (shedding.max_queue_depth > 0 &&
              static_cast<int>(prefill_queue.size()) >= shedding.max_queue_depth) {
            shed = true;
          } else if (shedding.ttft_deadline_s > 0.0) {
            int live = 0;
            for (const auto& p : prefill) {
              if (p.active && !p.draining && !p.down) {
                ++live;
              }
            }
            if (live == 0) {
              shed = true;
              shed_reason = ShedReason::kDeadline;
            } else {
              if (shed_pass_s < 0.0) {
                shed_pass_s = stepper.PrefillTime(stepper.MaxPrefillBatch());
              }
              double waves = std::ceil(
                  (static_cast<double>(prefill_queue.size()) + 1.0) /
                  (static_cast<double>(stepper.MaxPrefillBatch()) * live));
              if (waves * shed_pass_s > shedding.ttft_deadline_s) {
                shed = true;
                shed_reason = ShedReason::kDeadline;
              }
            }
          }
        }
        ++metrics.admitted_requests;
        if (track_classes) {
          ++metrics.per_class[static_cast<size_t>(class_of(static_cast<int>(next_arrival)))]
                .admitted_requests;
        }
        if (shed) {
          ++metrics.shed_requests;
          metrics.shed_events.push_back(
              {now, static_cast<int>(next_arrival), shed_reason});
        } else {
          prefill_queue.push_back(static_cast<int>(next_arrival));
          if (scaler.enabled && scaler.predictive) {
            const Request& r = requests[next_arrival];
            demand_history.push_back({now, static_cast<double>(r.prompt_tokens),
                                      static_cast<double>(r.output_tokens), r.class_id});
          }
        }
      }
      ++next_arrival;
      try_start_prefill(now);
      continue;
    }

    Event event = events.top();
    events.pop();
    now = event.time_s;

    if (event.kind == EventKind::kAutoscaleTick) {
      autoscale_tick();
      continue;
    }
    if (event.kind == EventKind::kPrefillFail || event.kind == EventKind::kDecodeFail) {
      bool is_prefill = event.kind == EventKind::kPrefillFail;
      bool live = is_prefill ? (prefill[event.instance].active &&
                                event.epoch == prefill[event.instance].epoch)
                             : (decode[event.instance].active &&
                                event.epoch == decode[event.instance].epoch);
      if (live) {
        double lost_before = metrics.lost_tokens;
        if (is_prefill) {
          fail_prefill(event.instance, /*domain=*/-1);
        } else {
          fail_decode(event.instance, /*domain=*/-1);
        }
        note_outage(metrics.lost_tokens - lost_before);
        // Retried victims queue for prefill; surviving instances pick
        // them up immediately.
        try_start_prefill(now);
      }
      continue;
    }
    if (event.kind == EventKind::kPrefillDomainFail ||
        event.kind == EventKind::kDecodeDomainFail) {
      // One domain outage downs every live member at this timestamp, in
      // ascending instance order; the whole group is one outage for the
      // blast-radius / drain accounting.
      bool is_prefill = event.kind == EventKind::kPrefillDomainFail;
      int d = event.instance;
      int ipd = is_prefill ? domains.prefill_instances_per_domain
                           : domains.decode_instances_per_domain;
      int n = static_cast<int>(is_prefill ? prefill.size() : decode.size());
      int lo = d * ipd;
      int hi = std::min(n, lo + ipd);
      double lost_before = metrics.lost_tokens;
      for (int i = lo; i < hi; ++i) {
        bool up = is_prefill ? (prefill[i].active && !prefill[i].down)
                             : (decode[i].active && !decode[i].down);
        if (!up) {
          continue;  // retired or already down: nothing left to kill
        }
        if (is_prefill) {
          fail_prefill(i, d);
        } else {
          fail_decode(i, d);
        }
      }
      note_outage(metrics.lost_tokens - lost_before);
      schedule_next_domain_failure(is_prefill ? ScalePool::kPrefill : ScalePool::kDecode,
                                   d, now);
      try_start_prefill(now);
      continue;
    }
    if (event.kind == EventKind::kPrefillDegradeStart ||
        event.kind == EventKind::kDecodeDegradeStart) {
      bool is_prefill = event.kind == EventKind::kPrefillDegradeStart;
      int i = event.instance;
      bool live = is_prefill ? (prefill[i].active && event.epoch == prefill[i].epoch)
                             : (decode[i].active && event.epoch == decode[i].epoch);
      if (!live) {
        continue;
      }
      ScalePool pool = is_prefill ? ScalePool::kPrefill : ScalePool::kDecode;
      // The slot's stream yields gap, duration, gap, duration, ... in event
      // order; failures stale pending windows via the epoch (the recovery
      // reschedules the stream), so every draw happens at a deterministic
      // simulated time regardless of thread count.
      double duration = fault_streams->NextDegradeDuration(pool, i, degraded.mean_duration_s);
      if (is_prefill) {
        prefill[i].degrade_mult = degraded.multiplier;
        prefill[i].degrade_since = now;
      } else {
        decode[i].degrade_mult = degraded.multiplier;
        decode[i].degrade_since = now;
      }
      ++metrics.degrade_windows;
      metrics.fault_events.push_back({now, FaultEventKind::kDegradeStart, pool, i, 0, 0.0,
                                      is_prefill ? prefill_spares_free : decode_spares_free});
      events.push({now + duration,
                   is_prefill ? EventKind::kPrefillDegradeEnd
                              : EventKind::kDecodeDegradeEnd,
                   i, event.epoch});
      continue;
    }
    if (event.kind == EventKind::kPrefillDegradeEnd ||
        event.kind == EventKind::kDecodeDegradeEnd) {
      bool is_prefill = event.kind == EventKind::kPrefillDegradeEnd;
      int i = event.instance;
      bool live = is_prefill ? (prefill[i].active && event.epoch == prefill[i].epoch)
                             : (decode[i].active && event.epoch == decode[i].epoch);
      if (!live) {
        continue;  // a failure already cleared the window
      }
      if (is_prefill) {
        close_degrade_prefill(i);
      } else {
        close_degrade_decode(i);
      }
      ScalePool pool = is_prefill ? ScalePool::kPrefill : ScalePool::kDecode;
      metrics.fault_events.push_back({now, FaultEventKind::kDegradeEnd, pool, i, 0, 0.0,
                                      is_prefill ? prefill_spares_free : decode_spares_free});
      schedule_next_degrade(pool, i, now, event.epoch);
      continue;
    }
    if (event.kind == EventKind::kPrefillRecover || event.kind == EventKind::kDecodeRecover) {
      if (event.kind == EventKind::kPrefillRecover) {
        PrefillInstance& inst = prefill[event.instance];
        if (!inst.active || event.epoch != inst.epoch) {
          continue;  // retired while down
        }
        inst.down = false;
        metrics.fault_events.push_back({now,
                                        inst.via_spare ? FaultEventKind::kSpareActivation
                                                       : FaultEventKind::kRepair,
                                        ScalePool::kPrefill, event.instance, 0, 0.0,
                                        prefill_spares_free});
        schedule_next_failure(ScalePool::kPrefill, event.instance, now, inst.epoch);
        schedule_next_degrade(ScalePool::kPrefill, event.instance, now, inst.epoch);
        try_start_prefill(now);
      } else {
        DecodeInstance& inst = decode[event.instance];
        if (!inst.active || event.epoch != inst.epoch) {
          continue;
        }
        inst.down = false;
        metrics.fault_events.push_back({now,
                                        inst.via_spare ? FaultEventKind::kSpareActivation
                                                       : FaultEventKind::kRepair,
                                        ScalePool::kDecode, event.instance, 0, 0.0,
                                        decode_spares_free});
        schedule_next_failure(ScalePool::kDecode, event.instance, now, inst.epoch);
        schedule_next_degrade(ScalePool::kDecode, event.instance, now, inst.epoch);
        try_start_decode_step(now);
      }
      continue;
    }
    if (event.kind == EventKind::kPrefillSpareReturn ||
        event.kind == EventKind::kDecodeSpareReturn) {
      bool is_prefill = event.kind == EventKind::kPrefillSpareReturn;
      int& spares_free = is_prefill ? prefill_spares_free : decode_spares_free;
      ++spares_free;
      metrics.fault_events.push_back({now, FaultEventKind::kSpareReturn,
                                      is_prefill ? ScalePool::kPrefill : ScalePool::kDecode,
                                      event.instance, 0, 0.0, spares_free});
      continue;
    }
    if (event.kind == EventKind::kPrefillUp || event.kind == EventKind::kDecodeUp) {
      if (event.kind == EventKind::kPrefillUp) {
        PrefillInstance fresh;
        fresh.up_time = now;
        prefill.push_back(std::move(fresh));
        --pending_prefill_ups;
        ++active_prefill;
        metrics.peak_prefill_instances =
            std::max(metrics.peak_prefill_instances, active_prefill);
        const char* reason = prefill_up_reasons.front();
        prefill_up_reasons.pop_front();
        metrics.scale_events.push_back(
            {now, ScalePool::kPrefill, +1, active_prefill, reason});
        if (faults_enabled) {
          int slot = static_cast<int>(prefill.size()) - 1;
          schedule_next_failure(ScalePool::kPrefill, slot, now, 0);
          schedule_new_domains(ScalePool::kPrefill, now);
          schedule_next_degrade(ScalePool::kPrefill, slot, now, 0);
        }
        try_start_prefill(now);
      } else {
        DecodeInstance fresh;
        fresh.up_time = now;
        decode.push_back(std::move(fresh));
        --pending_decode_ups;
        ++active_decode;
        metrics.peak_decode_instances =
            std::max(metrics.peak_decode_instances, active_decode);
        const char* reason = decode_up_reasons.front();
        decode_up_reasons.pop_front();
        metrics.scale_events.push_back(
            {now, ScalePool::kDecode, +1, active_decode, reason});
        if (faults_enabled) {
          int slot = static_cast<int>(decode.size()) - 1;
          schedule_next_failure(ScalePool::kDecode, slot, now, 0);
          schedule_new_domains(ScalePool::kDecode, now);
          schedule_next_degrade(ScalePool::kDecode, slot, now, 0);
        }
        try_start_decode_step(now);
      }
      continue;
    }

    if (event.kind == EventKind::kPrefillDone) {
      PrefillInstance& inst = prefill[event.instance];
      if (faults_enabled && event.epoch != inst.epoch) {
        continue;  // the pass was killed by a failure before it finished
      }
      progress_now = now;
      for (int req : inst.batch) {
        // A retried request's first token was delivered by its first
        // successful prefill; later re-prefills don't re-record TTFT.
        if (!faults_enabled || !ttft_recorded[static_cast<size_t>(req)]) {
          metrics.ttft_s.Add(now - requests[req].arrival_s);
          if (track_classes) {
            metrics.per_class[static_cast<size_t>(class_of(req))].ttft_s.Add(
                now - requests[req].arrival_s);
          }
          if (faults_enabled) {
            ttft_recorded[static_cast<size_t>(req)] = 1;
          }
        }
        decode_queue.push_back(req);
      }
      inst.batch.clear();
      inst.busy = false;
      if (inst.draining) {
        retire_prefill(event.instance, inst.drain_reason);
      }
      try_start_prefill(now);
      try_start_decode_step(now);
    } else {
      DecodeInstance& inst = decode[event.instance];
      if (faults_enabled && event.epoch != inst.epoch) {
        continue;  // the step was killed by a failure before it finished
      }
      progress_now = now;
      metrics.tbt_s.Add(inst.current_step_duration);
      inst.stepping = false;
      // Every active sequence emitted one token this step.
      metrics.output_tokens += static_cast<double>(inst.remaining.size());
      if (degrade_enabled && inst.degrade_since >= 0.0) {
        metrics.degraded_output_tokens += static_cast<double>(inst.remaining.size());
      }
      if (track_classes) {
        // Each active sequence of a class experienced this step's duration
        // as one inter-token gap: one weighted histogram add per class.
        std::fill(step_class_counts.begin(), step_class_counts.end(), 0);
        for (int req : inst.request_index) {
          ++step_class_counts[static_cast<size_t>(class_of(req))];
        }
        for (size_t c = 0; c < step_class_counts.size(); ++c) {
          if (step_class_counts[c] > 0) {
            metrics.per_class[c].tbt_s.Add(inst.current_step_duration,
                                           step_class_counts[c]);
            metrics.per_class[c].output_tokens +=
                static_cast<double>(step_class_counts[c]);
          }
        }
      }
      for (size_t s = 0; s < inst.remaining.size();) {
        if (--inst.remaining[s] == 0) {
          ++metrics.completed_requests;
          if (track_classes) {
            ++metrics.per_class[static_cast<size_t>(class_of(inst.request_index[s]))]
                  .completed_requests;
          }
          if (now > config.horizon_s) {
            // Admitted before the horizon, finished after it: the request
            // drains but its tail tokens are not horizon goodput.
            ++metrics.in_flight_at_horizon;
            if (track_classes) {
              ++metrics.per_class[static_cast<size_t>(class_of(inst.request_index[s]))]
                    .in_flight_at_horizon;
            }
          }
          metrics.makespan_s = now;
          inst.remaining[s] = inst.remaining.back();
          inst.remaining.pop_back();
          inst.request_index[s] = inst.request_index.back();
          inst.request_index.pop_back();
        } else {
          ++s;
        }
      }
      if (inst.draining && inst.remaining.empty()) {
        retire_decode(event.instance, inst.drain_reason);
      }
      try_start_decode_step(now);
    }
  }

  metrics.makespan_s = std::max(metrics.makespan_s, progress_now);
  if (metrics.makespan_s > 0.0) {
    metrics.decode_tokens_per_s = metrics.output_tokens / metrics.makespan_s;
    double prefill_busy = 0.0;
    for (const auto& p : prefill) {
      prefill_busy += p.busy_time;
    }
    double decode_busy = 0.0;
    double batch_product = 0.0;
    for (const auto& d : decode) {
      decode_busy += d.busy_time;
      batch_product += d.batch_time_product;
    }
    if (scaler.enabled || faults_enabled) {
      // Provisioned instance-seconds over [0, makespan]: each instance
      // contributes its up..down (or up..end) lifetime, clamped so retires
      // recorded by trailing decision ticks don't overrun the makespan.
      // Fault runs fill these even with a fixed pool, so measured
      // availability has its 1 - downtime / provisioned denominator.
      for (const auto& p : prefill) {
        double end = p.down_time >= 0.0 ? std::min(p.down_time, metrics.makespan_s)
                                        : metrics.makespan_s;
        metrics.prefill_instance_seconds += std::max(0.0, end - p.up_time);
      }
      for (const auto& d : decode) {
        double end = d.down_time >= 0.0 ? std::min(d.down_time, metrics.makespan_s)
                                        : metrics.makespan_s;
        metrics.decode_instance_seconds += std::max(0.0, end - d.up_time);
      }
      metrics.prefill_utilization = metrics.prefill_instance_seconds > 0.0
                                        ? prefill_busy / metrics.prefill_instance_seconds
                                        : 0.0;
      metrics.decode_utilization = metrics.decode_instance_seconds > 0.0
                                       ? decode_busy / metrics.decode_instance_seconds
                                       : 0.0;
      metrics.final_prefill_instances = active_prefill;
      metrics.final_decode_instances = active_decode;
    } else {
      metrics.prefill_utilization =
          prefill_busy / (config.prefill_instances * metrics.makespan_s);
      metrics.decode_utilization =
          decode_busy / (config.decode_instances * metrics.makespan_s);
    }
    metrics.mean_decode_batch = decode_busy > 0.0 ? batch_product / decode_busy : 0.0;
    metrics.prefill_busy_s = prefill_busy;
    metrics.decode_busy_s = decode_busy;
    metrics.decode_batch_time_product = batch_product;
    if (faults_enabled) {
      // Per-pool downtime over [0, makespan], replayed from the event log:
      // each failure opens an interval its spare-activation/repair closes.
      // An interval left open by a retired-while-draining instance (no
      // recovery was scheduled) contributes nothing — the retirement is
      // already accounted in the instance-seconds integral.
      std::vector<double> down_since_prefill(prefill.size(), -1.0);
      std::vector<double> down_since_decode(decode.size(), -1.0);
      for (const FaultEvent& e : metrics.fault_events) {
        bool is_prefill = e.pool == ScalePool::kPrefill;
        std::vector<double>& down_since =
            is_prefill ? down_since_prefill : down_since_decode;
        double& downtime = is_prefill ? metrics.prefill_fault_downtime_s
                                      : metrics.decode_fault_downtime_s;
        size_t i = static_cast<size_t>(e.instance);
        if (e.kind == FaultEventKind::kFailure) {
          down_since[i] = e.time_s;
        } else if (e.kind == FaultEventKind::kSpareActivation ||
                   e.kind == FaultEventKind::kRepair) {
          downtime += std::min(e.time_s, metrics.makespan_s) -
                      std::min(down_since[i], metrics.makespan_s);
          down_since[i] = -1.0;
        }
      }
      for (size_t i = 0; i < down_since_prefill.size(); ++i) {
        if (down_since_prefill[i] >= 0.0 && prefill[i].active) {
          metrics.prefill_fault_downtime_s +=
              metrics.makespan_s - std::min(down_since_prefill[i], metrics.makespan_s);
        }
      }
      for (size_t i = 0; i < down_since_decode.size(); ++i) {
        if (down_since_decode[i] >= 0.0 && decode[i].active) {
          metrics.decode_fault_downtime_s +=
              metrics.makespan_s - std::min(down_since_decode[i], metrics.makespan_s);
        }
      }
    }
  }
  if (degrade_enabled) {
    // Close windows still open at the end of the run, clipped to makespan.
    for (const auto& p : prefill) {
      if (p.degrade_since >= 0.0) {
        metrics.prefill_degraded_instance_s +=
            std::max(0.0, metrics.makespan_s - p.degrade_since);
      }
    }
    for (const auto& d : decode) {
      if (d.degrade_since >= 0.0) {
        metrics.decode_degraded_instance_s +=
            std::max(0.0, metrics.makespan_s - d.degrade_since);
      }
    }
  }
  if (drain_pending) {
    // The queues never emptied again after the largest outage: the drain
    // took the rest of the run.
    metrics.time_to_drain_s =
        std::max(0.0, metrics.makespan_s - metrics.largest_outage_time_s);
  }
  return metrics;
}

}  // namespace

ServeMetrics RunServeSimulationReference(const std::vector<Request>& requests,
                                         const ServeClusterConfig& config,
                                         const ServeCallbacks& callbacks) {
  return RunSimulation(requests, config, CallbackStepper{callbacks});
}

ServeMetrics RunServeSimulationReference(const std::vector<Request>& requests,
                                         const ServeClusterConfig& config,
                                         const StepTimeTable& table) {
  return RunSimulation(requests, config, TableStepper{table});
}

}  // namespace litegpu
