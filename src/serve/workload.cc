#include "src/serve/workload.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace litegpu {

namespace {

int SampleLength(Rng& rng, int median, double sigma) {
  if (sigma <= 0.0) {
    return median;
  }
  double value = rng.LogNormal(std::log(static_cast<double>(median)), sigma);
  return std::max(1, static_cast<int>(std::lround(value)));
}

}  // namespace

std::vector<Request> GenerateWorkload(const WorkloadSpec& spec) {
  std::vector<Request> requests;
  Rng rng(spec.seed);
  double t = 0.0;
  int id = 0;
  if (spec.arrival_rate_per_s <= 0.0) {
    return requests;
  }
  for (;;) {
    t += rng.Exponential(spec.arrival_rate_per_s);
    if (t >= spec.duration_s) {
      break;
    }
    Request r;
    r.id = id++;
    r.arrival_s = t;
    r.prompt_tokens = SampleLength(rng, spec.median_prompt_tokens, spec.prompt_sigma);
    r.output_tokens = SampleLength(rng, spec.median_output_tokens, spec.output_sigma);
    requests.push_back(r);
  }
  return requests;
}

double TotalPromptTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.prompt_tokens;
  }
  return total;
}

double TotalOutputTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.output_tokens;
  }
  return total;
}

}  // namespace litegpu
