#include "src/serve/workload.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace litegpu {

void RequestSoA::Reserve(size_t n) {
  arrival_s.reserve(n);
  prompt_tokens.reserve(n);
  output_tokens.reserve(n);
  class_id.reserve(n);
}

void RequestSoA::Clear() {
  arrival_s.clear();
  prompt_tokens.clear();
  output_tokens.clear();
  class_id.clear();
}

void RequestSoA::PushBack(double arrival, int prompt, int output, int cls) {
  arrival_s.push_back(arrival);
  prompt_tokens.push_back(prompt);
  output_tokens.push_back(output);
  class_id.push_back(cls);
}

RequestSoA RequestSoA::FromRequests(const std::vector<Request>& requests) {
  RequestSoA soa;
  soa.Reserve(requests.size());
  for (const Request& r : requests) {
    soa.PushBack(r.arrival_s, r.prompt_tokens, r.output_tokens, r.class_id);
  }
  return soa;
}

double ArrivalRateMultiplier(const ArrivalProcess& process, double duration_s, double t) {
  if (process.kind != ArrivalKind::kDiurnal || process.multipliers.empty()) {
    return 1.0;
  }
  double period = process.period_s > 0.0 ? process.period_s : duration_s;
  if (period <= 0.0) {
    return process.multipliers.front();
  }
  double phase = std::fmod(t, period);
  if (phase < 0.0) {
    phase = 0.0;
  }
  size_t n = process.multipliers.size();
  double pos = phase / period * static_cast<double>(n);
  size_t i = static_cast<size_t>(pos);
  if (i >= n) {
    i = n - 1;
  }
  double frac = pos - static_cast<double>(i);
  double a = process.multipliers[i];
  double b = process.multipliers[(i + 1) % n];  // the curve wraps
  return a + frac * (b - a);
}

double PeakRateMultiplier(const ArrivalProcess& process) {
  switch (process.kind) {
    case ArrivalKind::kDiurnal: {
      // Piecewise-linear, so the max sits on a control point.
      double peak = 0.0;
      for (double m : process.multipliers) {
        peak = std::max(peak, m);
      }
      return peak;
    }
    case ArrivalKind::kOnOff:
      return std::max(process.on_multiplier, process.off_multiplier);
    case ArrivalKind::kPoisson:
    case ArrivalKind::kTrace:
      return 1.0;
  }
  return 1.0;
}

double MeanTraceRatePerS(const ArrivalProcess& process, double horizon_s) {
  if (process.kind != ArrivalKind::kTrace || horizon_s <= 0.0) {
    return 0.0;
  }
  size_t count = 0;
  for (double t : process.times_s) {
    if (t < horizon_s) {
      ++count;
    }
  }
  return static_cast<double>(count) / horizon_s;
}

namespace {

int SampleLength(Rng& rng, int median, double sigma) {
  if (sigma <= 0.0) {
    return median;
  }
  double value = rng.LogNormal(std::log(static_cast<double>(median)), sigma);
  return std::max(1, static_cast<int>(std::lround(value)));
}

// One class's arrival substream. The stationary Poisson path keeps the
// exact legacy sampling order (inter-arrival, prompt, output per request),
// so a single-class mix reproduces the legacy generator bit-for-bit and a
// scenario without an `arrival` block is unchanged. The non-stationary
// kinds draw from the same per-class RNG:
//   diurnal — Lewis thinning against the peak-rate envelope, which keeps
//     each class's stream independent of every other class.
//   onoff   — walks on/off phases sequentially; overshooting a phase
//     boundary discards the inter-arrival draw and redraws at the new
//     phase's rate (memorylessness makes that exact).
//   trace   — replays the recorded times; `trace_share` is this class's
//     rate share, applied by thinning (share 1.0 skips the draw so a
//     one-class mix replays the trace exactly).
// Expected arrival count for one class, used to pre-size the output vector
// so million-request streams append without reallocating. Overshooting a
// little is fine (the extra capacity is freed with the vector); a few sigma
// of Poisson headroom covers nearly every draw.
size_t ExpectedArrivals(const ClassWorkload& cls, double duration_s,
                        const ArrivalProcess& arrival) {
  if (arrival.kind == ArrivalKind::kTrace) {
    return arrival.times_s.size();
  }
  double rate = std::max(0.0, cls.arrival_rate_per_s);
  double mean_mult = 1.0;
  if (arrival.kind == ArrivalKind::kDiurnal && !arrival.multipliers.empty()) {
    // Piecewise-linear and wrapping, so the mean over a full period is the
    // mean of the control points; horizons covering partial periods still
    // land near it.
    double sum = 0.0;
    for (double m : arrival.multipliers) {
      sum += m;
    }
    mean_mult = sum / static_cast<double>(arrival.multipliers.size());
  } else if (arrival.kind == ArrivalKind::kOnOff) {
    double span = arrival.on_mean_s + arrival.off_mean_s;
    mean_mult = span > 0.0 ? (arrival.on_mean_s * arrival.on_multiplier +
                              arrival.off_mean_s * arrival.off_multiplier) /
                                 span
                           : 1.0;
  }
  double expected = rate * std::max(0.0, duration_s) * std::max(0.0, mean_mult);
  return static_cast<size_t>(expected + 4.0 * std::sqrt(expected) + 16.0);
}

std::vector<Request> GenerateClassStream(const ClassWorkload& cls, int class_id,
                                         double duration_s, uint64_t seed,
                                         const ArrivalProcess& arrival,
                                         double trace_share) {
  std::vector<Request> requests;
  requests.reserve(ExpectedArrivals(cls, duration_s, arrival));
  Rng rng(seed);
  auto emit = [&](double t) {
    Request r;
    r.class_id = class_id;
    r.arrival_s = t;
    r.prompt_tokens = SampleLength(rng, cls.median_prompt_tokens, cls.prompt_sigma);
    r.output_tokens = SampleLength(rng, cls.median_output_tokens, cls.output_sigma);
    requests.push_back(r);
  };
  if (arrival.kind == ArrivalKind::kTrace) {
    if (trace_share <= 0.0) {
      return requests;
    }
    for (double t : arrival.times_s) {
      if (t >= duration_s) {
        break;  // validated ascending
      }
      if (trace_share < 1.0 && !(rng.NextDouble() < trace_share)) {
        continue;
      }
      emit(t);
    }
    return requests;
  }
  if (cls.arrival_rate_per_s <= 0.0) {
    return requests;
  }
  double t = 0.0;
  switch (arrival.kind) {
    case ArrivalKind::kPoisson: {
      for (;;) {
        t += rng.Exponential(cls.arrival_rate_per_s);
        if (t >= duration_s) {
          break;
        }
        emit(t);
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      double peak = PeakRateMultiplier(arrival);
      if (peak <= 0.0) {
        break;  // validation rejects all-zero curves; belt and braces
      }
      for (;;) {
        t += rng.Exponential(cls.arrival_rate_per_s * peak);
        if (t >= duration_s) {
          break;
        }
        // Accept with probability mult(t)/peak. One uniform per candidate
        // keeps the draw count independent of the curve shape.
        double u = rng.NextDouble();
        if (u * peak < ArrivalRateMultiplier(arrival, duration_s, t)) {
          emit(t);
        }
      }
      break;
    }
    case ArrivalKind::kOnOff: {
      bool on = true;
      double phase_end = rng.Exponential(1.0 / arrival.on_mean_s);
      for (;;) {
        double mult = on ? arrival.on_multiplier : arrival.off_multiplier;
        double dt = mult > 0.0 ? rng.Exponential(cls.arrival_rate_per_s * mult) : -1.0;
        if (dt >= 0.0 && t + dt < phase_end) {
          t += dt;
          if (t >= duration_s) {
            break;
          }
          emit(t);
          continue;
        }
        t = phase_end;
        if (t >= duration_s) {
          break;
        }
        on = !on;
        phase_end = t + rng.Exponential(1.0 / (on ? arrival.on_mean_s : arrival.off_mean_s));
      }
      break;
    }
    case ArrivalKind::kTrace:
      break;  // handled above
  }
  return requests;
}

}  // namespace

std::vector<Request> GenerateWorkload(const WorkloadSpec& spec) {
  ClassWorkload cls;
  cls.arrival_rate_per_s = spec.arrival_rate_per_s;
  cls.median_prompt_tokens = spec.median_prompt_tokens;
  cls.prompt_sigma = spec.prompt_sigma;
  cls.median_output_tokens = spec.median_output_tokens;
  cls.output_sigma = spec.output_sigma;
  std::vector<Request> requests = GenerateClassStream(
      cls, /*class_id=*/0, spec.duration_s, spec.seed, spec.arrival, /*trace_share=*/1.0);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<int>(i);
  }
  return requests;
}

uint64_t ClassSubstreamSeed(uint64_t seed, size_t index) {
  if (index == 0) {
    return seed;
  }
  SplitMix64 stream(seed);
  uint64_t derived = 0;
  for (size_t i = 0; i < index; ++i) {
    derived = stream.Next();
  }
  return derived;
}

std::vector<Request> GenerateMultiClassWorkload(const MultiClassWorkloadSpec& spec) {
  // Generate every substream independently, concatenate in class order, and
  // stable-sort by arrival time once. Each substream is arrival-sorted and
  // concatenated in class order, so stable_sort resolves ties to class
  // order, then per-class order — the same fully-specified order the old
  // repeated stable std::merge produced, but O(N log N) total instead of
  // O(N · classes) copies.
  double total_rate = 0.0;
  for (const ClassWorkload& cls : spec.classes) {
    total_rate += std::max(0.0, cls.arrival_rate_per_s);
  }
  std::vector<Request> merged;
  for (size_t c = 0; c < spec.classes.size(); ++c) {
    double share = total_rate > 0.0
                       ? std::max(0.0, spec.classes[c].arrival_rate_per_s) / total_rate
                       : 0.0;
    if (spec.classes.size() == 1) {
      share = 1.0;  // one-class mixes replay a trace exactly, like classless
    }
    std::vector<Request> stream =
        GenerateClassStream(spec.classes[c], static_cast<int>(c), spec.duration_s,
                            ClassSubstreamSeed(spec.seed, c), spec.arrival, share);
    if (merged.empty()) {
      merged = std::move(stream);
    } else {
      merged.insert(merged.end(), stream.begin(), stream.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });
  for (size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<int>(i);
  }
  return merged;
}

uint64_t ShardSubstreamSeed(uint64_t seed, size_t shard) {
  if (shard == 0) {
    return seed;
  }
  // A tagged XOR before the SplitMix64 walk keeps the shard stream away
  // from ClassSubstreamSeed's (consecutive values of SplitMix64(seed)) and
  // FaultSubstreamSeed's (a differently-tagged walk), so shard workloads
  // never collide with class or fault draws.
  SplitMix64 stream(seed ^ 0x5A4D5A4DC0DE5EEDULL);
  uint64_t derived = 0;
  for (size_t i = 0; i < shard; ++i) {
    derived = stream.Next();
  }
  return derived;
}

double TotalPromptTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.prompt_tokens;
  }
  return total;
}

double TotalOutputTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.output_tokens;
  }
  return total;
}

}  // namespace litegpu
