#include "src/serve/workload.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace litegpu {

namespace {

int SampleLength(Rng& rng, int median, double sigma) {
  if (sigma <= 0.0) {
    return median;
  }
  double value = rng.LogNormal(std::log(static_cast<double>(median)), sigma);
  return std::max(1, static_cast<int>(std::lround(value)));
}

// One class's Poisson substream: the same sampling order as
// GenerateWorkload (inter-arrival, prompt, output per request), so a
// single-class mix reproduces the legacy generator bit-for-bit.
std::vector<Request> GenerateClassStream(const ClassWorkload& cls, int class_id,
                                         double duration_s, uint64_t seed) {
  std::vector<Request> requests;
  if (cls.arrival_rate_per_s <= 0.0) {
    return requests;
  }
  Rng rng(seed);
  double t = 0.0;
  for (;;) {
    t += rng.Exponential(cls.arrival_rate_per_s);
    if (t >= duration_s) {
      break;
    }
    Request r;
    r.class_id = class_id;
    r.arrival_s = t;
    r.prompt_tokens = SampleLength(rng, cls.median_prompt_tokens, cls.prompt_sigma);
    r.output_tokens = SampleLength(rng, cls.median_output_tokens, cls.output_sigma);
    requests.push_back(r);
  }
  return requests;
}

}  // namespace

std::vector<Request> GenerateWorkload(const WorkloadSpec& spec) {
  ClassWorkload cls;
  cls.arrival_rate_per_s = spec.arrival_rate_per_s;
  cls.median_prompt_tokens = spec.median_prompt_tokens;
  cls.prompt_sigma = spec.prompt_sigma;
  cls.median_output_tokens = spec.median_output_tokens;
  cls.output_sigma = spec.output_sigma;
  std::vector<Request> requests =
      GenerateClassStream(cls, /*class_id=*/0, spec.duration_s, spec.seed);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<int>(i);
  }
  return requests;
}

uint64_t ClassSubstreamSeed(uint64_t seed, size_t index) {
  if (index == 0) {
    return seed;
  }
  SplitMix64 stream(seed);
  uint64_t derived = 0;
  for (size_t i = 0; i < index; ++i) {
    derived = stream.Next();
  }
  return derived;
}

std::vector<Request> GenerateMultiClassWorkload(const MultiClassWorkloadSpec& spec) {
  // Generate every substream independently, then merge. std::merge is
  // stable and each substream is arrival-sorted, so ties land in class
  // order, then per-class order — fully specified, no heap dependence.
  std::vector<Request> merged;
  for (size_t c = 0; c < spec.classes.size(); ++c) {
    std::vector<Request> stream =
        GenerateClassStream(spec.classes[c], static_cast<int>(c), spec.duration_s,
                            ClassSubstreamSeed(spec.seed, c));
    std::vector<Request> next;
    next.reserve(merged.size() + stream.size());
    std::merge(merged.begin(), merged.end(), stream.begin(), stream.end(),
               std::back_inserter(next),
               [](const Request& a, const Request& b) { return a.arrival_s < b.arrival_s; });
    merged = std::move(next);
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<int>(i);
  }
  return merged;
}

double TotalPromptTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.prompt_tokens;
  }
  return total;
}

double TotalOutputTokens(const std::vector<Request>& requests) {
  double total = 0.0;
  for (const auto& r : requests) {
    total += r.output_tokens;
  }
  return total;
}

}  // namespace litegpu
