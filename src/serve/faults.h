// Fault-injection engine for the serving simulator (paper Section 3,
// "Fault-tolerance"): derives per-instance failure / repair / hot-spare
// event streams from the reliability model's area-scaled AFR and injects
// them into the deterministic serve event loop, so blast radius is measured
// on live traffic instead of in isolation. H100-sized and Lite-sized pools
// naturally get different churn — the per-instance hazard is the per-GPU
// rate times the instance's GPU count.
//
// Determinism: every failure gap comes from a dedicated per-(pool, slot)
// xoshiro substream seeded by SplitMix64 over (fault seed, pool, slot).
// A slot's stream depends only on those three values — never on when the
// slot was first asked or what other slots drew — so fault schedules are
// bit-identical at any thread count and never perturb the workload
// substreams (the fault seed itself is derived from the scenario seed via a
// distinct SplitMix64 mix in the Runner).
//
// Spares are GPU-level, per pool: a failure consumes a free spare when one
// is available (the instance returns after the activation delay and the
// failed device rejoins the spare pool once repaired) and otherwise waits
// out the full repair. This matches InstanceAvailabilityWithSpares'
// Erlang-loss approximation, which SimulateFaultAvailability cross-checks.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace litegpu {

// Which serving pool an event touched (shared with the autoscaler's
// ScaleEvent; defined here so the fault types don't depend on simulator.h).
enum class ScalePool { kPrefill, kDecode };
const char* ToString(ScalePool pool);

// What happens to a failed instance's in-flight requests.
//   kRetry           — requeue at the back of the prefill queue (the KV
//                      cache died with the instance, so they restart).
//   kDrop            — discard them; they count as dropped, not completed.
//   kRetryWithBudget — retry until a request has been killed retry_budget
//                      times, then drop it.
enum class FaultRetryPolicy { kRetry, kDrop, kRetryWithBudget };
const char* ToString(FaultRetryPolicy policy);
// Parses "retry" | "drop" | "retry_with_budget". Returns false on unknown.
bool ParseFaultRetryPolicy(const std::string& text, FaultRetryPolicy* out);

enum class FaultEventKind {
  kFailure,          // instance went down (in-flight work killed)
  kSpareActivation,  // instance back up on a hot spare after the delay
  kRepair,           // instance back up after a full repair (no spare free)
  kSpareReturn,      // a repaired device rejoined the pool's spare set
  kDegradeStart,     // instance entered a throttled (slowed) state
  kDegradeEnd,       // instance left the throttled state
};
const char* ToString(FaultEventKind kind);

// One entry of the fault event log, in simulated-time order. The log is
// part of the bit-identity contract: table and callback paths must produce
// element-wise identical logs at any thread count.
struct FaultEvent {
  double time_s = 0.0;
  FaultEventKind kind = FaultEventKind::kFailure;
  ScalePool pool = ScalePool::kPrefill;
  int instance = 0;
  // kFailure only: in-flight requests killed and tokens of work discarded
  // (generated-so-far tokens for decode, prompt tokens for prefill).
  int killed_requests = 0;
  double lost_tokens = 0.0;
  // Free spares in the pool after this event took effect.
  int spares_free = 0;
  // Failure-domain id when this failure was part of a correlated domain
  // outage; -1 (the default) for independent per-instance events. A domain
  // outage at time T appears as one kFailure entry per live member, all at
  // time T with the same domain id (see FaultDomainConfig).
  int domain = -1;
};

// Correlated failure domains (rack power, ToR switch, firmware rollout):
// each pool's instances are mapped onto domains by index —
// domain(i) = i / instances_per_domain — and a domain-level failure stream
// downs every live member at one timestamp. Domain outages bypass hot
// spares (a rack outage is not maskable by a spare device) and every
// member waits out the full domain repair. The per-pool member counts are
// resolved by the Runner from one silicon-normalized domain size, so H100
// and Lite pools pack the same silicon into different domain shapes.
struct FaultDomainConfig {
  int prefill_instances_per_domain = 0;  // 0 = no domains for the pool
  int decode_instances_per_domain = 0;
  double failure_rate_per_s = 0.0;  // per-domain outage hazard
  double repair_s = 0.0;            // domain outage duration (no spares)
  bool enabled() const {
    return failure_rate_per_s > 0.0 && (prefill_instances_per_domain > 0 ||
                                        decode_instances_per_domain > 0);
  }
};

// Transient degraded states (ECC storms, thermal throttling): instead of
// killing an instance, a degrade event multiplies its step/pass times by
// `multiplier` for an exponentially-distributed window. In-flight steps
// keep the duration they were dispatched with; the multiplier applies on
// dispatch only, so completion-heap accounting stays exact. A failure
// clears the degraded state (the repaired/replaced instance comes back
// fresh).
struct DegradedStateConfig {
  double prefill_rate_per_s = 0.0;  // per-instance degrade-event hazard
  double decode_rate_per_s = 0.0;
  double multiplier = 1.0;       // step-time multiplier while degraded
  double mean_duration_s = 0.0;  // mean throttled-window length
  bool enabled() const {
    return (prefill_rate_per_s > 0.0 || decode_rate_per_s > 0.0) &&
           multiplier > 1.0 && mean_duration_s > 0.0;
  }
};

// Overload protection / admission control: arrivals are shed at the door
// instead of queuing without bound, so failure-triggered retry storms
// cannot go metastable. Shed requests count as admitted (they reached the
// cluster) but never enter the prefill queue:
//   admitted = completed + dropped + shed  once a run fully drains.
struct SheddingPolicy {
  // Shed an arrival when the prefill queue already holds this many
  // requests. 0 = no depth cap.
  int max_queue_depth = 0;
  // Shed an arrival whose estimated TTFT exceeds this deadline. The
  // estimate is ceil((depth + 1) / (max_prefill_batch * live_instances))
  // full-batch prefill passes, where live excludes down/draining/inactive
  // instances (zero live instances sheds unconditionally). 0 = no deadline.
  double ttft_deadline_s = 0.0;
  bool enabled() const { return max_queue_depth > 0 || ttft_deadline_s > 0.0; }
};

enum class ShedReason { kQueueDepth, kDeadline };
const char* ToString(ShedReason reason);

// One shed arrival, in simulated-time order. Like the fault log, the shed
// log is part of the bit-identity contract: table and callback paths must
// produce element-wise identical logs at any thread count.
struct ShedEvent {
  double time_s = 0.0;
  int request = 0;  // request id (index in arrival order)
  ShedReason reason = ShedReason::kQueueDepth;
};

// Resolved fault-injection parameters for one simulation, produced from the
// scenario's FaultKnobs + the planned deployment's GPU counts by the Runner
// (rates = GpuAfr x GPUs-per-instance / seconds-per-year). Disabled (the
// default) runs none of the fault code: metrics stay bit-identical to the
// pre-fault simulator.
struct ServeFaultConfig {
  bool enabled = false;
  // Whole-instance failure rates: any member GPU failing downs the instance.
  double prefill_failure_rate_per_s = 0.0;
  double decode_failure_rate_per_s = 0.0;
  double repair_s = 24.0 * 3600.0;
  double spare_activation_s = 300.0;
  // Hot-spare GPUs per pool (each failure consumes/returns one device).
  int prefill_spares = 0;
  int decode_spares = 0;
  FaultRetryPolicy retry_policy = FaultRetryPolicy::kRetry;
  int retry_budget = 3;
  // Correlated failure domains and transient degraded states; both default
  // to disabled so pre-domain fault runs stay bit-identical.
  FaultDomainConfig domains;
  DegradedStateConfig degraded;
  // Dedicated substream seed (derive from the scenario seed with a distinct
  // mix; see FaultSubstreamSeed).
  uint64_t seed = 0;
};

// The fault-injection RNG seed for scenario seed `seed`: a SplitMix64 mix
// disjoint from ClassSubstreamSeed's stream, so enabling faults never
// perturbs arrivals or request lengths.
uint64_t FaultSubstreamSeed(uint64_t seed);

// Per-(pool, slot) exponential failure-gap streams. Slots are instance
// indices within a pool; streams are created lazily but seeded only by
// (seed, pool, slot), so autoscaled instances appearing mid-run draw the
// same schedule regardless of when they appear. Domain outages and degrade
// windows draw from their own tagged substream families — keyed by
// (seed, pool, domain) and (seed, pool, slot) respectively — so enabling
// one axis never perturbs another axis's schedule.
class FaultStreams {
 public:
  explicit FaultStreams(uint64_t seed) : seed_(seed) {}

  // Seconds from "now" until `slot`'s next failure, exponential with the
  // given per-second rate. rate_per_s must be > 0.
  double NextFailureGap(ScalePool pool, int slot, double rate_per_s);
  // Seconds from "now" until failure domain `domain`'s next outage.
  double NextDomainFailureGap(ScalePool pool, int domain, double rate_per_s);
  // Seconds from "now" until `slot`'s next degrade window, and the length
  // of a window once entered. Both draw from the slot's one degrade
  // stream, in the order the event loop consumes them.
  double NextDegradeGap(ScalePool pool, int slot, double rate_per_s);
  double NextDegradeDuration(ScalePool pool, int slot, double mean_s);

 private:
  Rng& Slot(std::vector<Rng>& slots, uint64_t tag, int slot);

  uint64_t seed_;
  std::vector<Rng> prefill_slots_;
  std::vector<Rng> decode_slots_;
  std::vector<Rng> prefill_domains_;
  std::vector<Rng> decode_domains_;
  std::vector<Rng> prefill_degrade_;
  std::vector<Rng> decode_degrade_;
};

// Steady-state outcome of a no-traffic fault run (SimulateFaultAvailability).
struct FaultAvailabilityStats {
  // 1 - instance downtime / (num_instances * duration).
  double availability = 0.0;
  int failures = 0;
  int spare_masked = 0;  // failures that found a free spare
};

// Runs the fault engine alone — no requests, one pool of `num_instances`
// identical instances sharing `num_spares` hot-spare devices — and measures
// steady-state availability. This is the serve-path cross-check against the
// closed forms in src/reliability/failure_model.h: the same event semantics
// the serve loop injects, so agreement here validates the integration the
// way StepTimeTable is golden-checked against PerfModel.
FaultAvailabilityStats SimulateFaultAvailability(double failure_rate_per_s,
                                                 double repair_s,
                                                 double spare_activation_s,
                                                 int num_spares, int num_instances,
                                                 double duration_s, uint64_t seed);

}  // namespace litegpu
