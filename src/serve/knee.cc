#include "src/serve/knee.h"

#include <cstddef>

namespace litegpu {

KneeSelection SelectKneeAndCheapest(const std::vector<KneePoint>& points,
                                    bool autoscaled) {
  KneeSelection out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const KneePoint& p = points[i];
    if (!p.slo_ok) {
      continue;
    }
    if (out.knee_index < 0) {
      out.knee_index = static_cast<int>(i);
      continue;
    }
    const KneePoint& best = points[static_cast<std::size_t>(out.knee_index)];
    // Strictly-higher rate wins; a rate tie goes to the lower load (the
    // same offered demand met with less provisioned headroom), and a full
    // tie keeps the earliest point.
    if (p.arrival_rate_per_s > best.arrival_rate_per_s ||
        (p.arrival_rate_per_s == best.arrival_rate_per_s && p.load < best.load)) {
      out.knee_index = static_cast<int>(i);
    }
  }
  if (out.knee_index >= 0) {
    const KneePoint& knee = points[static_cast<std::size_t>(out.knee_index)];
    out.knee_load = knee.load;
    out.knee_goodput_tokens_per_s = knee.goodput_tokens_per_s;
  }
  if (autoscaled) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const KneePoint& p = points[i];
      if (!p.slo_ok || p.gpu_hours <= 0.0) {
        continue;
      }
      double tokens_per_gpu_hour =
          p.goodput_tokens_per_s * p.makespan_s / p.gpu_hours;
      if (out.cheapest_index < 0 ||
          tokens_per_gpu_hour > out.cheapest_tokens_per_gpu_hour) {
        out.cheapest_index = static_cast<int>(i);
        out.cheapest_tokens_per_gpu_hour = tokens_per_gpu_hour;
      }
    }
  }
  return out;
}

}  // namespace litegpu
