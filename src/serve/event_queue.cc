#include "src/serve/event_queue.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace litegpu {

CalendarEventQueue::CalendarEventQueue(double bucket_width, size_t buckets)
    : width_(bucket_width > 0.0 ? bucket_width : 1e-3),
      buckets_(buckets == 0 ? 1 : buckets) {}

void CalendarEventQueue::Reset(double bucket_width) {
  assert(size_ == 0 && "Reset on a non-empty CalendarEventQueue");
  width_ = bucket_width > 0.0 ? bucket_width : 1e-3;
  window_start_ = 0.0;
  cursor_ = 0;
  min_valid_ = false;
  // Bucket capacity survives (the scratch arena reuses the queue across
  // sweep points); the run left every bucket empty.
}

void CalendarEventQueue::PushOverflow(const ServeEvent& e) {
  // Beyond the window: overflow min-heap. Overflow times are >= the
  // window end, so they can never beat a bucketed minimum — the cached
  // minimum (if any) stays valid.
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), std::greater<ServeEvent>());
}

size_t CalendarEventQueue::MinInBucket(size_t b) const {
  const std::vector<ServeEvent>& bucket = buckets_[b];
  size_t best = 0;
  for (size_t i = 1; i < bucket.size(); ++i) {
    if (bucket[i] < bucket[best]) {
      best = i;
    }
  }
  return best;
}

void CalendarEventQueue::AdvanceCursor() {
  if (in_window_ == 0) {
    // The window drained; rotate it to the overflow minimum and re-bucket
    // every overflow event the new window covers. Amortized O(1) per event:
    // each event overflows at most once per rotation it lands in, and
    // rotations only move the window forward.
    assert(!overflow_.empty());
    window_start_ = overflow_.front().time_s;
    cursor_ = 0;
    size_t kept = 0;
    for (size_t i = 0; i < overflow_.size(); ++i) {
      size_t idx = BucketIndex(overflow_[i].time_s);
      if (idx < buckets_.size()) {
        buckets_[idx].push_back(overflow_[i]);
        ++in_window_;
      } else {
        overflow_[kept++] = overflow_[i];
      }
    }
    overflow_.resize(kept);
    std::make_heap(overflow_.begin(), overflow_.end(), std::greater<ServeEvent>());
  }
  while (buckets_[cursor_].empty()) {
    ++cursor_;
  }
}

void HeapEventQueue::Push(const ServeEvent& e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<ServeEvent>());
}

ServeEvent HeapEventQueue::Pop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<ServeEvent>());
  ServeEvent e = heap_.back();
  heap_.pop_back();
  return e;
}

}  // namespace litegpu
