// The PR 7 serving simulator core, kept verbatim as a golden reference.
//
// The production core (simulator.cc) was rebuilt around a calendar event
// queue, SoA hot state, and an O(completions)-per-step decode scheduler.
// This file preserves the previous std::priority_queue + array-of-structs
// implementation so the bench and tests can (a) assert the new core's
// metrics are bit-identical on every scenario shape, and (b) measure the
// speedup against the real old code rather than a synthetic stand-in —
// the same discipline PR 4 used for StepTimeTable vs raw callbacks. Not
// used by any production path; only bench_serve_scale and tests link it.

#pragma once

#include "src/serve/simulator.h"

namespace litegpu {

ServeMetrics RunServeSimulationReference(const std::vector<Request>& requests,
                                         const ServeClusterConfig& config,
                                         const ServeCallbacks& callbacks);

ServeMetrics RunServeSimulationReference(const std::vector<Request>& requests,
                                         const ServeClusterConfig& config,
                                         const StepTimeTable& table);

}  // namespace litegpu
