// Section-2 claims, swept across yield models and defect densities:
//   "the yield rate can be increased by 1.8x when a H100-like compute die
//    area is reduced by 1/4th, corresponding to almost 50% reduction in
//    manufacturing cost"

#include <cstdio>

#include "src/silicon/cost.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  constexpr double kH100DieMm2 = 814.0;
  WaferSpec wafer;

  std::printf("=== Section 2: yield gain & cost reduction from quartering an "
              "H100-class die ===\n\n");

  const YieldModel kModels[] = {YieldModel::kPoisson, YieldModel::kMurphy, YieldModel::kSeeds,
                                YieldModel::kNegativeBinomial};

  Table table({"Defect d0 (/cm^2)", "Model", "Y(814mm^2)", "Y(203.5mm^2)", "Yield gain",
               "KGD cost ratio (4xLite / H100)"});
  for (double d0 : {0.05, 0.08, 0.10, 0.15, 0.20}) {
    for (YieldModel model : kModels) {
      DefectSpec defects;
      defects.density_per_cm2 = d0;
      double y_big = DieYield(model, defects, kH100DieMm2);
      double y_small = DieYield(model, defects, kH100DieMm2 / 4.0);
      double big_cost = KnownGoodDieCost(wafer, model, defects, kH100DieMm2);
      double small_cost = KnownGoodDieCost(wafer, model, defects, kH100DieMm2 / 4.0);
      table.AddRow({FormatDouble(d0, 2), ToString(model), FormatDouble(y_big, 3),
                    FormatDouble(y_small, 3), FormatDouble(y_small / y_big, 2) + "x",
                    FormatDouble(4.0 * small_cost / big_cost, 3)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToText().c_str());

  DefectSpec defects;  // d0 = 0.10
  std::printf("Paper calibration point (Murphy, d0=0.10/cm^2):\n");
  std::printf("  yield gain %.2fx (paper: 1.8x), cost ratio %.2f (paper: ~0.5)\n\n",
              YieldGainFromSplit(YieldModel::kMurphy, defects, kH100DieMm2, 4),
              4.0 * KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2 / 4.0) /
                  KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2));

  std::printf("Split sweep (Murphy, d0=0.10/cm^2):\n");
  Table split_table({"Split", "Die mm^2", "Yield", "Gain", "Dies/wafer",
                     "KGD cost ratio vs monolithic"});
  double base_cost = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, kH100DieMm2);
  for (int split : {1, 2, 4, 8, 16}) {
    double area = kH100DieMm2 / split;
    double cost = KnownGoodDieCost(wafer, YieldModel::kMurphy, defects, area);
    split_table.AddRow(
        {std::to_string(split), FormatDouble(area, 1),
         FormatDouble(DieYield(YieldModel::kMurphy, defects, area), 3),
         FormatDouble(YieldGainFromSplit(YieldModel::kMurphy, defects, kH100DieMm2, split), 2) +
             "x",
         std::to_string(DiesPerWaferSquare(wafer, area)),
         FormatDouble(split * cost / base_cost, 3)});
  }
  std::printf("%s", split_table.ToText().c_str());
  return 0;
}
