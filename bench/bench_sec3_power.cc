// Section-3 power management study:
//  (1) down-clocking granularity: a diurnal load served by 8 H100s vs 32
//      Lite-GPUs under three policies — per-GPU DVFS, powering devices off,
//      and hybrid. Lite's finer quantum should waste less energy.
//  (2) peak serving: overclock Lite-GPUs vs activating more of them.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/power/cluster_energy.h"
#include "src/sched/power_sched.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Section 3: power management with Lite-GPUs ===\n\n");

  struct TraceCase {
    const char* name;
    double scale;
  };
  const TraceCase kTraces[] = {{"busy day (peak 100%)", 1.0},
                               {"quiet day (peak 30%)", 0.3}};
  struct Cluster {
    GpuSpec gpu;
    int devices;
  };
  const Cluster clusters[] = {{H100(), 8}, {Lite(), 32}};
  const PowerPolicy kPolicies[] = {PowerPolicy::kAllDvfs, PowerPolicy::kPowerOffIdle,
                                   PowerPolicy::kHybrid};

  for (const auto& trace_case : kTraces) {
    auto trace = DiurnalLoadTrace(96);  // 15-minute intervals
    double mean_load = 0.0;
    for (double& l : trace) {
      l *= trace_case.scale;
      mean_load += l;
    }
    mean_load /= trace.size();
    std::printf("Load trace: %s, mean load %.1f%%\n", trace_case.name, mean_load * 100.0);

    Table table({"Cluster", "Policy", "Avg power", "Peak power", "Energy/day (kWh)",
                 "Service level", "vs H100 DVFS"});
    double baseline = 0.0;
    for (const auto& cluster : clusters) {
      DvfsModel dvfs;
      dvfs.nominal_power_watts = cluster.gpu.tdp_watts;
      for (PowerPolicy policy : kPolicies) {
        // Lite clusters shut down in quanta of 1/32 of the fleet; H100 in
        // quanta of 1/8. Both keep one resident model replica alive: one
        // H100 (1/8 of the fleet) vs four Lites (also 1/8) -- but Lite can
        // then scale UP in 3x smaller steps.
        double min_active = cluster.gpu.name == "H100" ? 1.0 / 8.0 : 4.0 / 32.0;
        PowerScheduleResult r = RunPowerSchedule(cluster.gpu, cluster.devices, trace, policy,
                                                 dvfs, min_active);
        if (baseline == 0.0) {
          baseline = r.energy_per_day_joules;
        }
        table.AddRow({cluster.gpu.name + " x" + std::to_string(cluster.devices),
                      ToString(policy), HumanPower(r.average_power_watts),
                      HumanPower(r.peak_power_watts),
                      FormatDouble(r.energy_per_day_joules / 3.6e6, 1),
                      FormatDouble(r.service_level * 100.0, 1) + "%",
                      FormatDouble(r.energy_per_day_joules / baseline, 3)});
      }
      table.AddSeparator();
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  std::printf("Peak serving: +25%% load on a 32-Lite cluster\n");
  DvfsModel lite_dvfs;
  lite_dvfs.nominal_power_watts = Lite().tdp_watts;
  // Activating extra Lite-GPUs costs extra networking power (Section 3:
  // "additional power overhead due to increased networking").
  PeakServingComparison peak = ComparePeakServing(Lite(), 32, 1.25, lite_dvfs, 12.0);
  std::printf("  overclock all 32 to 1.25x: %s%s\n",
              peak.overclock_feasible ? HumanPower(peak.overclock_power_watts).c_str()
                                      : "infeasible",
              peak.overclock_feasible ? " (within cooling headroom)" : "");
  std::printf("  activate 8 more (40 total): %s (incl. +12 W networking each)\n",
              HumanPower(peak.extra_devices_power_watts).c_str());
  std::printf("  -> %s wins at this peak ratio\n",
              peak.overclock_feasible &&
                      peak.overclock_power_watts < peak.extra_devices_power_watts
                  ? "overclocking"
                  : "adding devices");

  std::printf("\nCooling context (Section 2/3):\n");
  for (const auto& g : {H100(), Lite(), B200()}) {
    std::printf("  %-6s TDP %4.0f W -> %s%s\n", g.name.c_str(), g.tdp_watts,
                ToString(RequiredRegime(g)).c_str(),
                RackStaysOnAir(g, g.name == "Lite" ? 32 : 8) ? ", rack stays on air" : "");
  }
  return 0;
}
