// Regenerates Figure 3a: prompt-prefill throughput efficiency
// (normalized tokens/s/SM) for Llama3-70B, GPT3-175B, Llama3-405B on
// {H100, Lite, Lite+NetBW, Lite+NetBW+FLOPS} clusters.
//
// Search per the paper: TTFT <= 1 s, prompt = 1500 tokens, sweep batch and
// GPU count, keep the configuration with the highest tokens/s/SM, normalize
// to the H100 cluster per model.

#include <cstdio>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"

int main() {
  using namespace litegpu;

  std::vector<GpuSpec> gpus = {H100(), Lite(), LiteNetBw(), LiteNetBwFlops()};
  SearchOptions options;

  auto entries = RunPrefillStudy(CaseStudyModels(), gpus, options);
  std::printf("%s\n",
              Fig3ToText(entries, "=== Figure 3a: prefill, normalized tokens/s/SM ===")
                  .c_str());

  // The bar series exactly as plotted (models on the x axis, one series per
  // GPU type).
  std::printf("Bar series (normalized to H100 per model):\n");
  for (const auto& gpu : gpus) {
    std::printf("  %-18s", gpu.name.c_str());
    for (const auto& e : entries) {
      if (e.gpu_name == gpu.name) {
        std::printf("  %s=%s", e.model_name.c_str(),
                    FormatDouble(e.normalized_vs_h100, 3).c_str());
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper caption checks:\n"
      "  - all configurations similar for the smaller model\n"
      "  - plain Lite degrades as models grow (collectives -> network bound)\n"
      "  - +NetBW compensates; +FLOPS overclock improves further\n");
  return 0;
}
