// Regenerates Figure 2: "An example Lite-GPU deployment. Each NVIDIA H100
// GPU is replaced with four Lite-GPUs, featuring better hardware yield and
// higher bandwidth-to-compute." — as the quantitative comparison the diagram
// illustrates.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/silicon/cost.h"
#include "src/silicon/shoreline.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Figure 2: one H100 -> four Lite-GPUs ===\n\n");

  GpuSpec h100 = H100();
  GpuSpec lite = Lite();
  WaferSpec wafer;
  DefectSpec defects;

  Table table({"Property", "1x H100", "4x Lite", "Ratio"});
  auto row = [&](const std::string& name, double h, double l, int digits = 2) {
    table.AddRow({name, FormatDouble(h, digits), FormatDouble(l, digits),
                  FormatDouble(h > 0 ? l / h : 0.0, 2)});
  };

  row("TFLOPS total", h100.flops / kTFLOPS, 4.0 * lite.flops / kTFLOPS, 0);
  row("HBM capacity (GB)", h100.mem_capacity_bytes / kGB, 4.0 * lite.mem_capacity_bytes / kGB,
      0);
  row("HBM bandwidth (GB/s)", h100.mem_bw_bytes_per_s / kGBps,
      4.0 * lite.mem_bw_bytes_per_s / kGBps, 0);
  row("Net bandwidth (GB/s)", h100.net_bw_bytes_per_s / kGBps,
      4.0 * lite.net_bw_bytes_per_s / kGBps, 1);
  row("Die area (mm^2)", h100.die_area_mm2, 4.0 * lite.die_area_mm2, 1);
  row("Shoreline (mm)", DiePerimeterMm(h100.die_area_mm2),
      4.0 * DiePerimeterMm(lite.die_area_mm2), 1);
  row("Die yield (Murphy)", DieYield(YieldModel::kMurphy, defects, h100.die_area_mm2),
      DieYield(YieldModel::kMurphy, defects, lite.die_area_mm2), 3);
  row("Power density (W/mm^2)", h100.PowerDensityWPerMm2(), lite.PowerDensityWPerMm2(), 2);
  std::printf("%s\n", table.ToText().c_str());

  SplitCostReport cost = CompareSplitCost(wafer, YieldModel::kMurphy, defects,
                                          GpuBillOfMaterials{}, 4);
  std::printf("Economics (Murphy yield, d0=%.2f/cm^2, $%.0f wafer):\n",
              defects.density_per_cm2, wafer.wafer_cost_usd);
  std::printf("  dies/wafer:        %llu (H100-class) vs %llu (Lite)\n",
              static_cast<unsigned long long>(cost.big_dies_per_wafer),
              static_cast<unsigned long long>(cost.lite_dies_per_wafer));
  std::printf("  die yield:         %.3f vs %.3f  -> gain %.2fx (paper: ~1.8x)\n",
              cost.big_die_yield, cost.lite_die_yield, cost.yield_gain);
  std::printf("  packaged GPU cost: $%.0f vs 4 x $%.0f = $%.0f  -> ratio %.2f "
              "(paper: ~50%% cheaper silicon)\n",
              cost.big_gpu_usd, cost.lite_gpu_usd, cost.lite_total_usd, cost.cost_ratio);
  std::printf("  shoreline per FLOP: %.2fx (quartering doubles aggregate perimeter)\n",
              ShorelineGain(4));
  return 0;
}
