// Ablation A6: tensor vs pipeline parallelism on Lite clusters.
//
// The paper's case study is TP-only, and its 405B/Lite decode point is the
// weakest bar in Figure 3b: the weights force TP=32 and the collective bill
// grows with the degree. Pipelining is the standard remedy the paper leaves
// to future work — shard layers into stages, shrinking both per-GPU weights
// and the collective group. This bench sweeps the TP x PP grid.

#include <cstdio>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/roofline/pipeline.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A6: TP vs TP x PP decode on Lite clusters ===\n\n");

  WorkloadParams workload;
  EngineParams engine;

  for (const auto& model : CaseStudyModels()) {
    for (const GpuSpec& gpu : {H100(), Lite(), LiteMemBw()}) {
      // Pure-TP baseline from the paper's search.
      SearchOptions options;
      DecodeSearchResult tp_only = SearchDecode(model, gpu, options);
      PipelineSearchResult grid =
          SearchPipelineDecode(model, gpu, workload, engine);

      std::printf("--- %s on %s ---\n", model.name.c_str(), gpu.name.c_str());
      Table table({"Plan", "GPUs", "Batch", "TBT", "Tokens/s", "Tok/s/SM"});
      if (tp_only.found) {
        table.AddRow({"TP=" + std::to_string(tp_only.best.tp_degree) + " (paper)",
                      std::to_string(tp_only.best.tp_degree),
                      std::to_string(tp_only.best.batch),
                      HumanTime(tp_only.best.result.tbt_s),
                      FormatDouble(tp_only.best.result.tokens_per_s, 0),
                      FormatDouble(tp_only.best.result.tokens_per_s_per_sm, 2)});
      } else {
        table.AddRow({"TP-only (paper)", "-", "-", "infeasible", "-", "-"});
      }
      if (grid.found) {
        table.AddRow({"TP=" + std::to_string(grid.plan.tp.degree) +
                          " x PP=" + std::to_string(grid.plan.pp_degree) + " (best grid)",
                      std::to_string(grid.plan.TotalGpus()), std::to_string(grid.batch),
                      HumanTime(grid.result.tbt_s),
                      FormatDouble(grid.result.tokens_per_s, 0),
                      FormatDouble(grid.result.tokens_per_s_per_sm, 2)});
      } else {
        table.AddRow({"TP x PP grid", "-", "-", "infeasible", "-", "-"});
      }
      std::printf("%s\n", table.ToText().c_str());
    }
  }

  std::printf("Reading: pipelining pays exactly where the paper's TP-only Lite story\n"
              "struggles -- the biggest model on the smallest GPU -- by shrinking the\n"
              "per-GPU weights (smaller TP fits) and cutting collective degree, at the\n"
              "price of pipeline latency multiplying the per-stage step.\n");
  return 0;
}
