// Ablation A4: how small should a Lite-GPU be? The paper studies the 1/4
// point; this sweep derives 1/2, 1/4, 1/8, 1/16-scale Lite-GPUs (scaling the
// max cluster size to keep total SMs constant) and reports the Figure-3
// metric plus silicon economics at each ratio.

#include <cstdio>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/silicon/cost.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A4: Lite-GPU scale ratio sweep ===\n\n");

  SearchOptions options;
  WaferSpec wafer;
  DefectSpec defects;

  for (const auto& model : CaseStudyModels()) {
    double h100_decode = 0.0;
    double h100_prefill = 0.0;
    {
      DecodeSearchResult d = SearchDecode(model, H100(), options);
      PrefillSearchResult p = SearchPrefill(model, H100(), options);
      if (d.found) {
        h100_decode = d.best.result.tokens_per_s_per_sm;
      }
      if (p.found) {
        h100_prefill = p.best.result.tokens_per_s_per_sm;
      }
    }

    std::printf("--- %s ---\n", model.name.c_str());
    Table table({"Split", "SMs/GPU", "Max GPUs", "Yield gain", "Silicon cost ratio",
                 "Decode norm", "Decode TP", "Prefill norm", "Prefill TP"});
    for (int split : {1, 2, 4, 8, 16}) {
      LiteDeriveOptions derive;
      derive.split = split;
      derive.max_gpus_multiplier = split;
      LiteDeriveResult lite = DeriveLite(H100(), derive);

      SplitCostReport cost =
          CompareSplitCost(wafer, YieldModel::kMurphy, defects, GpuBillOfMaterials{}, split);

      DecodeSearchResult d = SearchDecode(model, lite.gpu, options);
      PrefillSearchResult p = SearchPrefill(model, lite.gpu, options);
      table.AddRow(
          {"1/" + std::to_string(split), std::to_string(lite.gpu.sm_count),
           std::to_string(lite.gpu.max_gpus), FormatDouble(cost.yield_gain, 2) + "x",
           FormatDouble(cost.cost_ratio, 3),
           d.found && h100_decode > 0.0
               ? FormatDouble(d.best.result.tokens_per_s_per_sm / h100_decode, 3)
               : "infeasible",
           d.found ? std::to_string(d.best.tp_degree) : "-",
           p.found && h100_prefill > 0.0
               ? FormatDouble(p.best.result.tokens_per_s_per_sm / h100_prefill, 3)
               : "infeasible",
           p.found ? std::to_string(p.best.tp_degree) : "-"});
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  std::printf("Takeaway: yield/cost keep improving with smaller dies, but performance\n"
              "efficiency falls off once per-GPU memory shrinks below the working set\n"
              "or the TP degree forces latency-bound collectives -- the 1/4 point the\n"
              "paper studies sits near the knee.\n");
  return 0;
}
