// Section-3 memory-management study: Lite-GPUs with disaggregated memory.
//
// "Disaggregated memory can be used to provide a larger memory pool for
// Lite-GPUs... though it introduces additional complexity" — this bench
// quantifies the trade on decode serving: sweep the KV-cache placement
// (local HBM fraction), report batch ceiling, TBT, and throughput per SM,
// on a dedicated pool port vs sharing the NIC.

#include <algorithm>
#include <cstdio>

#include "src/hw/catalog.h"
#include "src/memory/disagg.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Section 3: disaggregated memory for Lite-GPU decode ===\n\n");

  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = Lite();
  TpPlan plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  EngineParams engine;

  MemoryPoolSpec pool;
  pool.capacity_per_gpu_bytes = 80.0 * kGB;
  pool.bw_bytes_per_s = 50.0 * kGBps;
  pool.latency_s = 2e-6;

  std::printf("%s on %d x %s; pool: %s per GPU at %s, %.1f us\n\n", model.name.c_str(),
              plan.degree, gpu.name.c_str(), HumanBytes(pool.capacity_per_gpu_bytes).c_str(),
              HumanBandwidth(pool.bw_bytes_per_s).c_str(), pool.latency_s * 1e6);

  Table table({"Local KV fraction", "Max batch", "TBT @max", "Meets 50ms", "Tokens/s/SM",
               "Local HBM", "Pool bytes"});
  int max_context = workload.prompt_tokens + workload.output_tokens;
  for (double f : {1.0, 0.9, 0.75, 0.5, 0.25}) {
    DisaggPlacement placement;
    placement.local_fraction = f;
    int max_batch = MaxBatchWithPool(model, plan, gpu, pool, placement, max_context);
    // Back off until the SLO holds (placement fixed).
    int batch = max_batch;
    DisaggDecodeResult r;
    while (batch > 0) {
      r = EvaluateDisaggDecode(model, gpu, plan, batch, pool, placement, workload, engine);
      if (r.feasible && r.meets_slo) {
        break;
      }
      batch = batch * 9 / 10 - 1;
    }
    if (batch <= 0) {
      table.AddRow({FormatDouble(f, 2), std::to_string(max_batch), "-", "no", "-", "-", "-"});
      continue;
    }
    table.AddRow({FormatDouble(f, 2), std::to_string(max_batch) + " (SLO: " +
                      std::to_string(batch) + ")",
                  HumanTime(r.tbt_s), r.meets_slo ? "yes" : "no",
                  FormatDouble(r.tokens_per_s_per_sm, 2), HumanBytes(r.local_bytes_per_gpu, 1),
                  HumanBytes(r.remote_bytes_per_gpu, 1)});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Pool bandwidth sweep (local fraction 0.5, batch 256):\n");
  Table bw_table({"Pool BW", "NIC", "TBT", "vs all-local batch 161"});
  DisaggPlacement half;
  half.local_fraction = 0.5;
  DisaggDecodeResult local_best =
      EvaluateDisaggDecode(model, gpu, plan, 161, pool, DisaggPlacement{1.0}, workload, engine);
  for (double bw : {25.0, 50.0, 100.0, 200.0}) {
    for (bool shared : {false, true}) {
      MemoryPoolSpec p = pool;
      p.bw_bytes_per_s = bw * kGBps;
      p.shares_nic = shared;
      DisaggDecodeResult r =
          EvaluateDisaggDecode(model, gpu, plan, 256, p, half, workload, engine);
      bw_table.AddRow({HumanBandwidth(p.bw_bytes_per_s, 0), shared ? "shared" : "dedicated",
                       r.feasible ? HumanTime(r.tbt_s) : "infeasible",
                       r.feasible && local_best.feasible
                           ? FormatDouble(r.tokens_per_s / local_best.tokens_per_s, 2) + "x tput"
                           : "-"});
    }
  }
  std::printf("%s\n", bw_table.ToText().c_str());

  std::printf("Reading: the pool relieves Lite's 20 GB ceiling (bigger batches, more\n"
              "throughput) as long as the remote stream rides a dedicated port with\n"
              "enough bandwidth to hide behind the local scan -- the paper's\n"
              "'load/store GPU-to-memory network' question in Section 3.\n");
  return 0;
}
