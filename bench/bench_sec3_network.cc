// Section-3 network management study: the fabric options the paper lists for
// a Lite-GPU cluster — direct-connect groups, flat packet-switched,
// leaf-spine, and flat circuit-switched — compared on component count, cost,
// power, latency, and flexibility; across link technologies.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/net/topology.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Section 3: network options for a 32-GPU Lite cluster ===\n\n");

  FabricRequirements req;
  req.num_gpus = 32;
  req.per_gpu_bw_bytes_per_s = Lite().net_bw_bytes_per_s;  // 112.5 GB/s
  req.avg_utilization = 0.3;

  LinkTechSpec cpo = CpoLink();
  std::vector<TopologyReport> reports = {
      BuildDirectConnectGroups(req, 4, cpo),
      BuildTorus2D(req, cpo),
      BuildFlatSwitched(req, PacketSwitch(), cpo),
      BuildLeafSpine(req, PacketSwitch(), cpo),
      BuildFlatCircuitSwitched(req, CircuitSwitch(), cpo),
  };
  std::printf("%s\n", TopologyComparisonToText(reports).c_str());

  std::printf("Link technology sweep (flat circuit-switched, 32 GPUs):\n");
  Table link_table({"Link tech", "Reach", "pJ/bit", "Capex $", "Power"});
  for (const auto& link : {CopperLink(), PluggableLink(), CpoLink()}) {
    TopologyReport r = BuildFlatCircuitSwitched(req, CircuitSwitch(), link);
    link_table.AddRow({ToString(link.tech), FormatDouble(link.max_reach_m, 0) + " m",
                       FormatDouble(link.pj_per_bit, 0), FormatDouble(r.capex_usd, 0),
                       HumanPower(r.power_watts)});
  }
  std::printf("%s\n", link_table.ToText().c_str());

  std::printf("Circuit vs packet switching at cluster scale (paper ref [6]):\n");
  Table scale_table({"GPUs", "Packet: power / capex", "Circuit: power / capex",
                     "Circuit energy savings"});
  for (int gpus : {32, 128, 512, 2048}) {
    FabricRequirements r = req;
    r.num_gpus = gpus;
    TopologyReport packet = BuildLeafSpine(r, PacketSwitch(), cpo);
    TopologyReport circuit = BuildFlatCircuitSwitched(r, CircuitSwitch(), cpo);
    double savings = 1.0 - circuit.power_watts / packet.power_watts;
    scale_table.AddRow({std::to_string(gpus),
                        HumanPower(packet.power_watts) + " / $" +
                            FormatDouble(packet.capex_usd, 0),
                        HumanPower(circuit.power_watts) + " / $" +
                            FormatDouble(circuit.capex_usd, 0),
                        HumanPercent(savings, 1)});
  }
  std::printf("%s\n", scale_table.ToText().c_str());

  std::printf(
      "Takeaways (paper Section 3):\n"
      "  - direct-connect groups are cheapest but give up any-to-any flexibility\n"
      "    and reintroduce a 4-GPU network blast radius;\n"
      "  - circuit switching delivers the paper's claimed >50%% energy savings over\n"
      "    packet switching and single-hop latency, at high radix;\n"
      "  - co-packaged optics cuts link energy ~3.5x vs pluggables, which is what\n"
      "    makes the network-heavy Lite design affordable.\n");
  return 0;
}
