// Roofline diagnostics behind Figure 3: per-stage operational intensity,
// attainable vs achieved FLOPS, and bound classification for prefill and
// decode on H100 and the Lite variants. This is the "why" view of the
// headline bars.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/roofline/report.h"
#include "src/util/format.h"

int main() {
  using namespace litegpu;

  TransformerSpec model = Llama3_70B();
  EngineParams params;

  struct Case {
    const char* title;
    GpuSpec gpu;
    int degree;
    Phase phase;
    PassShape shape;
  };
  const Case cases[] = {
      {"H100 x4, decode (batch 256, ctx 1756)", H100(), 4, Phase::kDecode, {256, 1, 1755}},
      {"Lite+MemBW x8, decode (batch 256, ctx 1756)", LiteMemBw(), 8, Phase::kDecode,
       {256, 1, 1755}},
      {"H100 x4, prefill (batch 8, 1500 tokens)", H100(), 4, Phase::kPrefill, {8, 1500, 0}},
      {"Lite+NetBW+FLOPS x16, prefill (batch 8)", LiteNetBwFlops(), 16, Phase::kPrefill,
       {8, 1500, 0}},
  };

  for (const auto& c : cases) {
    auto plan = MakeTpPlan(model, c.degree);
    if (!plan) {
      continue;
    }
    std::printf("=== %s on %s ===\n", c.title, model.name.c_str());
    ModelWork work = BuildModelWork(model, *plan, c.phase, c.shape);
    auto points = AnalyzePass(work, c.gpu, c.degree, params);
    std::printf("%s\n", RooflineReportToText(points, c.gpu, params).c_str());
  }

  std::printf("Reading: decode stages sit far left of the ridge (memory-bound; the\n"
              "Lite+MemBW ridge moves LEFT because bandwidth doubled), while prefill\n"
              "GEMMs sit right of it (compute-bound; the +FLOPS ridge moves right).\n"
              "This is exactly the shoreline-allocation logic of Table 1.\n");
  return 0;
}
