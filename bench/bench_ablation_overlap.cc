// Ablation A2: the overlap assumption. The paper assumes compute, memory
// I/O, and network I/O fully overlap within each stage (stage time = max).
// This bench re-runs Figure 3 with fully serialized stages (time = sum) to
// show how much of the Lite story depends on overlap.

#include <cstdio>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A2: overlap (max) vs serialized (sum) stage timing ===\n\n");

  std::vector<GpuSpec> decode_gpus = {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()};
  std::vector<GpuSpec> prefill_gpus = {H100(), Lite(), LiteNetBw(), LiteNetBwFlops()};

  for (OverlapScope scope :
       {OverlapScope::kLayer, OverlapScope::kStage, OverlapScope::kNone}) {
    SearchOptions options;
    options.engine.overlap = scope;
    auto prefill = RunPrefillStudy(CaseStudyModels(), prefill_gpus, options);
    auto decode = RunDecodeStudy(CaseStudyModels(), decode_gpus, options);

    std::printf("--- overlap scope: %s ---\n", ToString(scope).c_str());
    Table table({"Model", "GPU", "Prefill norm", "Decode norm"});
    for (const auto& model : CaseStudyModels()) {
      for (size_t i = 0; i < decode_gpus.size(); ++i) {
        double p = 0.0;
        double d = 0.0;
        for (const auto& e : prefill) {
          if (e.model_name == model.name && e.gpu_name == prefill_gpus[i].name) {
            p = e.normalized_vs_h100;
          }
        }
        for (const auto& e : decode) {
          if (e.model_name == model.name && e.gpu_name == decode_gpus[i].name) {
            d = e.normalized_vs_h100;
          }
        }
        table.AddRow({model.name, prefill_gpus[i].name + " / " + decode_gpus[i].name,
                      FormatDouble(p, 3), FormatDouble(d, 3)});
      }
      table.AddSeparator();
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  std::printf("Takeaway: without overlap, the network time of Lite clusters adds to\n"
              "(rather than hides behind) the memory scan, so plain Lite degrades\n"
              "further -- quantifying how much the paper's conclusion leans on\n"
              "prefetching/pipelining (its Section 3 'workload management').\n");
  return 0;
}
