// Ablation A5: chunked prefill (SARATHI [4]) on Lite clusters — the paper's
// workload-management claim that pipelined, predictable inference lets Lite
// clusters mask overheads. Can a DECODE-optimized Lite+MemBW pool absorb
// prefill work without breaking its TBT SLO, and at what rate?

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/roofline/chunked_prefill.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A5: chunked prefill piggybacked on decode ===\n\n");

  TransformerSpec model = Llama3_70B();
  WorkloadParams workload;
  EngineParams engine;

  for (const GpuSpec& gpu : {H100(), LiteMemBw()}) {
    int degree = gpu.name == "H100" ? 4 : 8;
    TpPlan plan = MakeTpPlan(model, degree).value();
    std::printf("--- %s x%d serving %s ---\n", gpu.name.c_str(), degree, model.name.c_str());

    Table table({"Decode batch", "Max chunk under 50ms", "Fused step", "TBT inflation",
                 "Free prefill tok/s", "Full prompt in"});
    for (int batch : {16, 64, 128, 256}) {
      int chunk = MaxChunkForSlo(model, gpu, plan, batch, workload, engine);
      if (chunk == 0) {
        table.AddRow({std::to_string(batch), "0 (SLO busted)", "-", "-", "-", "-"});
        continue;
      }
      ChunkedPrefillConfig config;
      config.chunk_tokens = chunk;
      config.decode_batch = batch;
      FusedStepResult step = EvaluateFusedStep(model, gpu, plan, config,
                                               workload.prompt_tokens, workload, engine);
      double full = ChunkedPrefillLatency(model, gpu, plan, batch, workload, engine);
      table.AddRow({std::to_string(batch), std::to_string(chunk) + " tok",
                    HumanTime(step.step_s), FormatDouble(step.tbt_inflation, 2) + "x",
                    FormatDouble(step.prefill_tokens_per_s, 0),
                    full > 0.0 ? HumanTime(full) : "-"});
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  std::printf("Reading: decode steps are memory-bound with idle FLOPs; chunked prefill\n"
              "converts that headroom into prefill throughput at a bounded TBT cost,\n"
              "on Lite clusters just as on H100 (per-SM free-prefill rates are within\n"
              "~15%%). This is the paper's workload-management thesis in action: the\n"
              "predictable, pipelined structure of inference lets a Lite cluster fill\n"
              "its bubbles instead of buying dedicated prefill capacity.\n");
  return 0;
}
