// Ablation A1: collective-algorithm choice. The paper's Lite clusters run
// 2 all-reduces per layer across up to 32 GPUs; whether the fabric runs
// ring or recursive halving-doubling (tree) materially changes the Figure-3
// outcome at high TP degrees. This bench quantifies that.

#include <cstdio>

#include "src/collectives/cost.h"
#include "src/collectives/hierarchical.h"
#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A1: collective algorithm (ring vs tree vs auto) ===\n\n");

  // Raw collective costs at decode-typical payloads on the Lite fabric.
  LinkModel lite_link{112.5 * kGBps, 1.5e-6};
  Table raw({"Payload", "GPUs", "Ring", "Halving-doubling", "Auto picks"});
  for (double payload : {16.0 * kKB, 256.0 * kKB, 4.0 * kMB, 64.0 * kMB}) {
    for (int n : {8, 32}) {
      double ring = AllReduceTime(payload, n, lite_link, CollectiveAlgo::kRing);
      double tree =
          AllReduceTime(payload, n, lite_link, CollectiveAlgo::kRecursiveHalvingDoubling);
      raw.AddRow({HumanBytes(payload, 0), std::to_string(n), HumanTime(ring),
                  HumanTime(tree), ring < tree ? "ring" : "tree"});
    }
  }
  std::printf("%s\n", raw.ToText().c_str());

  // End-to-end effect on the Figure-3 metric.
  std::vector<GpuSpec> gpus = {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()};
  const CollectiveAlgo kAlgos[] = {CollectiveAlgo::kRing,
                                   CollectiveAlgo::kRecursiveHalvingDoubling,
                                   CollectiveAlgo::kAuto};
  Table summary({"Algorithm", "Decode 70B Lite", "Decode 405B Lite", "Prefill 405B Lite"});
  for (CollectiveAlgo algo : kAlgos) {
    SearchOptions options;
    options.engine.collective_algo = algo;
    auto decode = RunDecodeStudy(CaseStudyModels(), gpus, options);
    std::vector<GpuSpec> prefill_gpus = {H100(), Lite(), LiteNetBw(), LiteNetBwFlops()};
    auto prefill = RunPrefillStudy(CaseStudyModels(), prefill_gpus, options);
    auto find = [](const std::vector<Fig3Entry>& entries, const std::string& model,
                   const std::string& gpu) {
      for (const auto& e : entries) {
        if (e.model_name == model && e.gpu_name == gpu) {
          return e.normalized_vs_h100;
        }
      }
      return 0.0;
    };
    summary.AddRow({ToString(algo),
                    FormatDouble(find(decode, "Llama3-70B", "Lite"), 3),
                    FormatDouble(find(decode, "Llama3-405B", "Lite"), 3),
                    FormatDouble(find(prefill, "Llama3-405B", "Lite"), 3)});
  }
  std::printf("%s\n", summary.ToText().c_str());

  // Direct-connect groups (Section 3's cheap fabric) want hierarchical
  // collectives: reduce-scatter in-group, all-reduce across group leaders.
  HierarchicalFabric fabric;
  fabric.group_size = 4;
  fabric.local_link = {300.0 * kGBps, 0.3e-6};
  fabric.global_link = {112.5 * kGBps, 1.5e-6};
  Table hier({"Payload", "Flat (global links)", "Hierarchical", "Winner"});
  for (double payload : {64.0 * kKB, 1.0 * kMB, 16.0 * kMB, 256.0 * kMB}) {
    double flat = AllReduceTime(payload, 32, fabric.global_link);
    double h = HierarchicalAllReduceTime(payload, 32, fabric);
    hier.AddRow({HumanBytes(payload, 0), HumanTime(flat), HumanTime(h),
                 h < flat ? "hierarchical" : "flat"});
  }
  std::printf("Hierarchical all-reduce on 8 direct-connect groups of 4 (32 GPUs):\n%s\n",
              hier.ToText().c_str());

  std::printf("Takeaways: latency-dominated decode all-reduces at TP=32 need the\n"
              "logarithmic algorithm; bandwidth-dominated prefill is algorithm-neutral;\n"
              "grouped fabrics recover most of the switched fabric's collective\n"
              "performance for large payloads via hierarchical reduction.\n");
  return 0;
}
