// Ablation A7: sensitivity of the Figure-3b conclusions to the workload's
// context length. The paper fixes the prompt at 1500 tokens (the Splitwise
// coding median); production mixes range from chat (short) to long-document
// workloads. Does the Lite-GPU story survive across that range?

#include <cstdio>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A7: Figure-3b vs context length ===\n\n");

  std::vector<GpuSpec> gpus = {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()};

  for (const auto& model : {Llama3_70B(), Llama3_405B()}) {
    std::printf("--- %s (decode, normalized tokens/s/SM vs H100) ---\n", model.name.c_str());
    Table table({"Prompt+output tokens", "Lite", "Lite+MemBW", "Lite+MemBW+NetBW",
                 "H100 best TP/batch"});
    for (int prompt : {512, 1500, 4096, 8192}) {
      SearchOptions options;
      options.workload.prompt_tokens = prompt;
      options.workload.output_tokens = 256;
      auto entries = RunDecodeStudy({model}, gpus, options);
      auto find = [&](const std::string& gpu) -> const Fig3Entry* {
        for (const auto& e : entries) {
          if (e.gpu_name == gpu) {
            return &e;
          }
        }
        return nullptr;
      };
      const Fig3Entry* h100 = find("H100");
      auto cell = [&](const char* name) {
        const Fig3Entry* e = find(name);
        return (e != nullptr && e->found) ? FormatDouble(e->normalized_vs_h100, 3)
                                          : std::string("infeasible");
      };
      table.AddRow({std::to_string(prompt) + "+256", cell("Lite"), cell("Lite+MemBW"),
                    cell("Lite+MemBW+NetBW"),
                    (h100 != nullptr && h100->found)
                        ? "TP" + std::to_string(h100->tp_degree) + " b" +
                              std::to_string(h100->batch)
                        : "infeasible"});
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  std::printf("Reading: longer contexts make decode MORE memory-bound (bigger KV scans\n"
              "per token), which strengthens Lite+MemBW's bandwidth advantage -- but\n"
              "they also squeeze Lite's 20 GB capacity harder, so plain Lite falls\n"
              "away faster. The paper's 1500-token point is representative of the\n"
              "middle of the range, not a cherry-pick.\n");
  return 0;
}
