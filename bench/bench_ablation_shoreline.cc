// Ablation A3: how should a Lite-GPU spend its extra shoreline?
// Sweep the split of the freed beachfront between HBM and network bandwidth
// and evaluate the Figure-3 metric at each point — the quantitative version
// of the paper's Table-1 design points (MemBW vs NetBW vs both).

#include <cstdio>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Ablation A3: shoreline allocation sweep (Lite-GPU design space) ===\n\n");
  std::printf("A quarter-H100 die has 2x shoreline per FLOP. We sweep the fraction of\n"
              "the *extra* shoreline budget given to HBM (rest to the NIC), deriving a\n"
              "custom Lite-GPU at each point, and report decode/prefill efficiency\n"
              "(tokens/s/SM normalized to the H100 best) for Llama3-70B.\n\n");

  TransformerSpec model = Llama3_70B();

  // H100 baselines.
  SearchOptions options;
  double h100_decode = 0.0;
  double h100_prefill = 0.0;
  {
    DecodeSearchResult d = SearchDecode(model, H100(), options);
    PrefillSearchResult p = SearchPrefill(model, H100(), options);
    if (d.found) {
      h100_decode = d.best.result.tokens_per_s_per_sm;
    }
    if (p.found) {
      h100_prefill = p.best.result.tokens_per_s_per_sm;
    }
  }

  Table table({"HBM share of extra shoreline", "Mem BW GB/s", "Net BW GB/s", "Feasible",
               "Decode norm", "Prefill norm"});
  for (double hbm_share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Baseline Lite has 838 mem / 112.5 net; one extra "unit" of shoreline
    // supports up to another 838 GB/s of HBM or 112.5*8 GB/s of net at our
    // technology densities -- expressed here as multipliers on each.
    LiteDeriveOptions derive;
    derive.mem_bw_multiplier = 1.0 + hbm_share;
    derive.net_bw_multiplier = 1.0 + (1.0 - hbm_share);
    LiteDeriveResult lite = DeriveLite(H100(), derive);

    DecodeSearchResult d = SearchDecode(model, lite.gpu, options);
    PrefillSearchResult p = SearchPrefill(model, lite.gpu, options);
    table.AddRow({FormatDouble(hbm_share * 100.0, 0) + "%",
                  FormatDouble(lite.gpu.mem_bw_bytes_per_s / kGBps, 0),
                  FormatDouble(lite.gpu.net_bw_bytes_per_s / kGBps, 1),
                  lite.shoreline_feasible ? "yes" : "NO",
                  d.found && h100_decode > 0.0
                      ? FormatDouble(d.best.result.tokens_per_s_per_sm / h100_decode, 3)
                      : "-",
                  p.found && h100_prefill > 0.0
                      ? FormatDouble(p.best.result.tokens_per_s_per_sm / h100_prefill, 3)
                      : "-"});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Takeaway: decode wants the shoreline spent on HBM (the paper's\n"
              "Lite+MemBW), prefill wants the NIC (Lite+NetBW); no single split wins\n"
              "both, which is the paper's argument for phase-customized Lite-GPUs.\n");
  return 0;
}
