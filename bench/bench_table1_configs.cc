// Regenerates Table 1: GPU configurations.
//
// Paper values (changed parameters relative to plain Lite highlighted by the
// paper in color; here spelled out in the derivation notes column).

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Table 1: GPU configurations ===\n\n");
  Table table({"GPU type", "TFLOPS", "Cap. GB", "Mem BW GB/s", "Net BW GB/s", "#Max GPUs",
               "SMs", "Die mm^2", "TDP W"});
  for (const auto& g : Table1Configs()) {
    table.AddRow({g.name, FormatDouble(g.flops / kTFLOPS, 0),
                  FormatDouble(g.mem_capacity_bytes / kGB, 0),
                  FormatDouble(g.mem_bw_bytes_per_s / kGBps, 0),
                  FormatDouble(g.net_bw_bytes_per_s / kGBps, 1), std::to_string(g.max_gpus),
                  std::to_string(g.sm_count), FormatDouble(g.die_area_mm2, 1),
                  FormatDouble(g.tdp_watts, 0)});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Derivation notes:\n");
  std::printf("  Lite               = H100 / 4 on every axis (die, FLOPS, HBM, net)\n");
  std::printf("  Lite+NetBW         = Lite with network 112.5 -> 225 GB/s (shoreline)\n");
  std::printf("  Lite+NetBW+FLOPS   = +10%% clock (easier cooling); HBM shoreline traded\n");
  std::printf("                       to the NIC: mem BW 838 -> 419 GB/s\n");
  std::printf("  Lite+MemBW         = Lite with HBM 838 -> 1675 GB/s (2x shoreline)\n");
  std::printf("  Lite+MemBW+NetBW   = both upgrades\n");

  std::printf("\nDerived ratios (per paper Section 2):\n");
  Table ratios({"GPU type", "FLOPS/SM (G)", "MemBW/FLOP (B)", "NetBW/FLOP (B)",
                "W/mm^2"});
  for (const auto& g : Table1Configs()) {
    ratios.AddRow({g.name, FormatDouble(g.FlopsPerSm() / 1e9, 2),
                   FormatDouble(g.MemBwPerFlop(), 5), FormatDouble(g.NetBwPerFlop(), 5),
                   FormatDouble(g.PowerDensityWPerMm2(), 3)});
  }
  std::printf("%s", ratios.ToText().c_str());
  return 0;
}
