// Section-3 resource-management study: allocation granularity.
//
// "With Lite-GPUs, we can allocate and access smaller units of compute and
// memory, leading to greater flexibility" — packs synthetic multi-tenant
// job streams into equal-capacity clusters whose allocation quantum is one
// H100 vs one quarter-H100 Lite-GPU, and reports rounding waste and packing.

#include <cstdio>

#include "src/sched/allocator.h"
#include "src/util/format.h"
#include "src/util/rng.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Section 3: allocation granularity (H100 quantum vs Lite quantum) ===\n\n");

  struct Mix {
    const char* name;
    double lo;
    double hi;
  };
  // Job demands in H100-equivalents.
  const Mix mixes[] = {
      {"small models (0.1-0.8 H100)", 0.1, 0.8},
      {"mixed tenants (0.2-2.5 H100)", 0.2, 2.5},
      {"large jobs (1-6 H100)", 1.0, 6.0},
  };

  Table table({"Job mix", "Split", "Jobs packed (coarse/fine)", "Alloc efficiency coarse",
               "Alloc efficiency fine", "Capacity reclaimed"});
  for (const auto& mix : mixes) {
    for (int split : {2, 4, 8}) {
      Rng rng(1234);
      std::vector<AllocationRequest> requests;
      for (int i = 0; i < 200; ++i) {
        requests.push_back({i, rng.Uniform(mix.lo, mix.hi)});
      }
      GranularityComparison cmp = CompareGranularity(requests, 64, split);
      table.AddRow({mix.name, "1/" + std::to_string(split),
                    std::to_string(cmp.coarse_jobs_packed) + " / " +
                        std::to_string(cmp.fine_jobs_packed),
                    HumanPercent(cmp.coarse_efficiency, 1),
                    HumanPercent(cmp.fine_efficiency, 1),
                    HumanPercent(cmp.fine_efficiency - cmp.coarse_efficiency, 1)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf("Reading: rounding waste is worst for sub-GPU jobs (the paper's 'small\n"
              "models previously served by a single GPU'); quarter-granularity\n"
              "reclaims 10-30%% of the fleet there, and the benefit shrinks once jobs\n"
              "are much larger than the quantum.\n");
  return 0;
}
