// Engine micro-benchmarks (google-benchmark): how fast the modeling library
// itself is. A full Figure-3 study runs thousands of roofline evaluations;
// these benchmarks keep the cost of one evaluation and one search visible.

#include <benchmark/benchmark.h>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/llm/stages.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"

namespace {

using namespace litegpu;

void BM_BuildModelWork(benchmark::State& state) {
  TransformerSpec model = Llama3_405B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  PassShape shape{64, 1, 1755};
  for (auto _ : state) {
    ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
    benchmark::DoNotOptimize(work.TotalFlops());
  }
}
BENCHMARK(BM_BuildModelWork);

void BM_EvaluatePassDecode(benchmark::State& state) {
  TransformerSpec model = Llama3_405B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1755});
  EngineParams params;
  GpuSpec gpu = H100();
  for (auto _ : state) {
    PassTiming timing = EvaluatePass(work, gpu, plan.degree, params);
    benchmark::DoNotOptimize(timing.total_s);
  }
}
BENCHMARK(BM_EvaluatePassDecode);

void BM_EvaluateDecodeEndToEnd(benchmark::State& state) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  EngineParams engine;
  GpuSpec gpu = H100();
  for (auto _ : state) {
    DecodeResult r = EvaluateDecode(model, gpu, plan, 128, workload, engine);
    benchmark::DoNotOptimize(r.tokens_per_s_per_sm);
  }
}
BENCHMARK(BM_EvaluateDecodeEndToEnd);

void BM_SearchDecode(benchmark::State& state) {
  TransformerSpec model = CaseStudyModels()[state.range(0)];
  SearchOptions options;
  GpuSpec gpu = Lite();
  for (auto _ : state) {
    DecodeSearchResult r = SearchDecode(model, gpu, options);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchDecode)->DenseRange(0, 2);

void BM_SearchPrefill(benchmark::State& state) {
  TransformerSpec model = CaseStudyModels()[state.range(0)];
  SearchOptions options;
  GpuSpec gpu = Lite();
  for (auto _ : state) {
    PrefillSearchResult r = SearchPrefill(model, gpu, options);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchPrefill)->DenseRange(0, 2);

}  // namespace

BENCHMARK_MAIN();
