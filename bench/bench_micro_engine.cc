// Engine micro-benchmarks (google-benchmark): how fast the modeling library
// itself is. A full Figure-3 study runs thousands of roofline evaluations;
// these benchmarks keep the cost of one evaluation and one search visible,
// and the PerfModel pair quantifies what its memoization buys on the hot
// path.
//
// `bench_micro_engine --json` skips the harness and emits one JSON object
// with the PerfModel cache counters observed while running the searches the
// studies run; it exits nonzero when the hot path stops hitting the cache
// (CI's cache-effectiveness smoke check).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/llm/stages.h"
#include "src/perf/model.h"
#include "src/roofline/engine.h"
#include "src/roofline/inference.h"

namespace {

using namespace litegpu;

void BM_BuildModelWork(benchmark::State& state) {
  TransformerSpec model = Llama3_405B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  PassShape shape{64, 1, 1755};
  for (auto _ : state) {
    ModelWork work = BuildModelWork(model, plan, Phase::kDecode, shape);
    benchmark::DoNotOptimize(work.TotalFlops());
  }
}
BENCHMARK(BM_BuildModelWork);

void BM_EvaluatePassDecode(benchmark::State& state) {
  TransformerSpec model = Llama3_405B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  ModelWork work = BuildModelWork(model, plan, Phase::kDecode, {64, 1, 1755});
  EngineParams params;
  GpuSpec gpu = H100();
  for (auto _ : state) {
    PassTiming timing = EvaluatePass(work, gpu, plan.degree, params);
    benchmark::DoNotOptimize(timing.total_s);
  }
}
BENCHMARK(BM_EvaluatePassDecode);

void BM_EvaluateDecodeEndToEnd(benchmark::State& state) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  EngineParams engine;
  GpuSpec gpu = H100();
  for (auto _ : state) {
    DecodeResult r = EvaluateDecode(model, gpu, plan, 128, workload, engine);
    benchmark::DoNotOptimize(r.tokens_per_s_per_sm);
  }
}
BENCHMARK(BM_EvaluateDecodeEndToEnd);

void BM_SearchDecode(benchmark::State& state) {
  TransformerSpec model = CaseStudyModels()[state.range(0)];
  SearchOptions options;
  GpuSpec gpu = Lite();
  for (auto _ : state) {
    DecodeSearchResult r = SearchDecode(model, gpu, options);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchDecode)->DenseRange(0, 2);

void BM_SearchPrefill(benchmark::State& state) {
  TransformerSpec model = CaseStudyModels()[state.range(0)];
  SearchOptions options;
  GpuSpec gpu = Lite();
  for (auto _ : state) {
    PrefillSearchResult r = SearchPrefill(model, gpu, options);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_SearchPrefill)->DenseRange(0, 2);

// The memoization pair: a cold PerfModel pays the full roofline evaluation,
// a warm one answers the same decode query from its cache. The ratio is the
// hot-path speedup the serve simulator and the search's final re-evaluation
// see on repeated (batch, context) queries.
void BM_PerfModelDecodeCold(benchmark::State& state) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  GpuSpec gpu = H100();
  for (auto _ : state) {
    PerfModel perf(model, gpu, plan, workload);
    DecodeResult r = perf.Decode(128);
    benchmark::DoNotOptimize(r.tokens_per_s_per_sm);
  }
}
BENCHMARK(BM_PerfModelDecodeCold);

void BM_PerfModelDecodeWarm(benchmark::State& state) {
  TransformerSpec model = Llama3_70B();
  TpPlan plan = MakeTpPlan(model, 8).value();
  WorkloadParams workload;
  GpuSpec gpu = H100();
  PerfModel perf(model, gpu, plan, workload);
  benchmark::DoNotOptimize(perf.Decode(128).tokens_per_s_per_sm);  // populate
  for (auto _ : state) {
    DecodeResult r = perf.Decode(128);
    benchmark::DoNotOptimize(r.tokens_per_s_per_sm);
  }
}
BENCHMARK(BM_PerfModelDecodeWarm);

// --json: cache-effectiveness smoke check (no gbench harness). Runs the
// same searches the studies run and reports the process-wide PerfModel
// cache counters; exit 1 when nothing hits the cache.
int CacheSmokeJson() {
  ResetGlobalPerfCacheStats();
  SearchOptions options;
  for (const TransformerSpec& model : CaseStudyModels()) {
    benchmark::DoNotOptimize(SearchDecode(model, Lite(), options).found);
    benchmark::DoNotOptimize(SearchPrefill(model, Lite(), options).found);
  }
  PerfCacheStats stats = GlobalPerfCacheStats();
  std::printf("{\n"
              "  \"evaluations\": %llu,\n"
              "  \"cache_hits\": %llu,\n"
              "  \"cache_misses\": %llu,\n"
              "  \"cache_hit_rate\": %.6f\n"
              "}\n",
              static_cast<unsigned long long>(stats.hits + stats.misses),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), stats.HitRate());
  return stats.HitRate() > 0.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return CacheSmokeJson();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
