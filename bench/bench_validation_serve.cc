// Validation V1: the analytic Figure-3 capacities vs the discrete-event
// serving simulator. We take the search's best decode/prefill configurations
// for H100 and Lite+MemBW, build a phase-split cluster from them through the
// PerfModel-backed callbacks (the same path the `serve` study uses), drive
// it with a Poisson workload at increasing fractions of the predicted
// capacity, and check that (a) measured throughput tracks the analytic
// number and (b) latency SLOs hold below capacity and collapse above it.

#include <cmath>
#include <cstdio>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/perf/model.h"
#include "src/perf/step_table.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Validation: analytic search vs discrete-event serving ===\n\n");

  TransformerSpec model = Llama3_70B();
  SearchOptions options;

  for (const GpuSpec& gpu : {H100(), LiteMemBw()}) {
    DecodeSearchResult decode = SearchDecode(model, gpu, options);
    PrefillSearchResult prefill = SearchPrefill(model, gpu, options);
    if (!decode.found || !prefill.found) {
      std::printf("%s: no feasible configuration\n", gpu.name.c_str());
      continue;
    }
    TpPlan decode_plan = MakeTpPlan(model, decode.best.tp_degree).value();
    TpPlan prefill_plan = MakeTpPlan(model, prefill.best.tp_degree).value();

    // Analytic per-instance capacities.
    double decode_cap = decode.best.result.tokens_per_s;
    double prefill_cap = prefill.best.result.tokens_per_s;
    std::printf("--- %s: decode TP=%d batch<=%d (%.0f tok/s), prefill TP=%d batch<=%d "
                "(%.0f tok/s) ---\n",
                gpu.name.c_str(), decode.best.tp_degree, decode.best.batch, decode_cap,
                prefill.best.tp_degree, prefill.best.batch, prefill_cap);

    PerfModel prefill_model(model, gpu, prefill_plan, options.workload, options.engine);
    PerfModel decode_model(model, gpu, decode_plan, options.workload, options.engine);
    // The production fast path: dense per-batch step times copied out of
    // the models once, then a flat array load per simulated step.
    StepTimeTable step_table = StepTimeTable::Build(prefill_model, decode_model,
                                                    prefill.best.batch, decode.best.batch);

    // Request rate that saturates decode: capacity / output tokens.
    WorkloadSpec base;
    base.median_output_tokens = 256;
    double saturating_rate = decode_cap / base.median_output_tokens;

    Table table({"Load", "Req/s", "TTFT p50", "TTFT p99", "TBT p99", "Decode tok/s",
                 "Analytic tok/s", "Ratio", "Mean batch"});
    for (double load : {0.5, 0.8, 0.95}) {
      WorkloadSpec spec = base;
      spec.arrival_rate_per_s = load * saturating_rate;
      spec.duration_s = 120.0;
      auto requests = GenerateWorkload(spec);

      ServeClusterConfig cluster;
      // Size the prefill pool for its own token demand (rate * prompt),
      // with headroom so decode stays the bottleneck under test.
      double prefill_demand = spec.arrival_rate_per_s * spec.median_prompt_tokens;
      cluster.prefill_instances =
          std::max(1, static_cast<int>(std::ceil(1.25 * prefill_demand / prefill_cap)));
      cluster.decode_instances = 1;
      ServeMetrics metrics = RunServeSimulation(requests, cluster, step_table);

      double expected = load * decode_cap;
      table.AddRow({HumanPercent(load, 0), FormatDouble(spec.arrival_rate_per_s, 1),
                    HumanTime(metrics.ttft_s.Median()), HumanTime(metrics.ttft_s.P99()),
                    HumanTime(metrics.tbt_s.P99()),
                    FormatDouble(metrics.decode_tokens_per_s, 0), FormatDouble(expected, 0),
                    FormatDouble(metrics.decode_tokens_per_s / expected, 3),
                    FormatDouble(metrics.mean_decode_batch, 0)});
    }
    std::printf("%s\n", table.ToText().c_str());
  }

  PerfCacheStats cache = GlobalPerfCacheStats();
  std::printf("Expectation: ratio ~1.0 at every load below saturation (the simulator\n"
              "reproduces the analytic capacity), TBT p99 <= 50 ms, and TTFT well under\n"
              "1 s until the prefill pool saturates.\n");
  std::printf("PerfModel cache: %llu hits / %llu misses (%.1f%% hit rate) — the\n"
              "step-time table build prices each distinct batch with one roofline\n"
              "evaluation; the simulator then reads flat arrays, never the models.\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), 100.0 * cache.HitRate());
  return 0;
}
