// Regenerates Figure 1 ("Evolution of GPUs in AI clusters") as a data table:
// the growth in per-package transistors, dies, power, and the packaging era
// each generation represents — ending with the Lite-GPU alternative.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/silicon/yield.h"
#include "src/util/format.h"
#include "src/util/table.h"
#include "src/util/units.h"

int main() {
  using namespace litegpu;

  std::printf("=== Figure 1: evolution of GPUs in AI clusters ===\n\n");

  Table table({"GPU", "Year", "Dies/pkg", "Transistors (B)", "Die mm^2", "TDP W", "W/mm^2",
               "Mem BW/FLOP (mB)", "Murphy yield", "Era"});
  DefectSpec defects;
  auto era = [](const GpuSpec& g) -> std::string {
    if (g.dies_per_package > 1) {
      return "multi-die advanced packaging";
    }
    if (g.die_area_mm2 > 700.0) {
      return "reticle-limit monolithic";
    }
    return "single small die";
  };

  auto add_row = [&](const GpuSpec& g) {
    double per_die_area = g.die_area_mm2 / g.dies_per_package;
    table.AddRow({g.name, g.year ? std::to_string(g.year) : "(hypothetical)",
                  std::to_string(g.dies_per_package),
                  FormatDouble(g.transistors_billion, 1), FormatDouble(g.die_area_mm2, 0),
                  FormatDouble(g.tdp_watts, 0), FormatDouble(g.PowerDensityWPerMm2(), 2),
                  FormatDouble(g.MemBwPerFlop() * 1e3, 2),
                  FormatDouble(DieYield(YieldModel::kMurphy, defects, per_die_area), 3),
                  era(g)});
  };

  for (const auto& g : HistoricalGenerations()) {
    add_row(g);
  }
  table.AddSeparator();
  add_row(Lite());
  std::printf("%s\n", table.ToText().c_str());

  std::printf(
      "Trend: per-package transistors grew %.1fx from V100 to B200 while die area\n"
      "hit the reticle limit, forcing multi-die packaging; the Lite-GPU row shows\n"
      "the alternative direction this paper proposes (smaller single dies, higher\n"
      "yield, lower power density, more shoreline per FLOP).\n",
      B200().transistors_billion / V100().transistors_billion);
  return 0;
}
