// Regenerates Figure 3b: decode throughput efficiency (normalized
// tokens/s/SM) for Llama3-70B, GPT3-175B, Llama3-405B on
// {H100, Lite, Lite+MemBW, Lite+MemBW+NetBW} clusters.
//
// Search per the paper: TBT <= 50 ms at the worst-case context
// (1500-token prompt + generated output), sweep batch and GPU count,
// keep the best tokens/s/SM, normalize to H100 per model.
//
// Printed twice: with the physical HBM-capacity constraint (deployable
// configurations) and with idealized capacity (the paper's roofline
// abstraction; see EXPERIMENTS.md).

#include <cstdio>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/util/format.h"

namespace {

void PrintSeries(const std::vector<litegpu::GpuSpec>& gpus,
                 const std::vector<litegpu::Fig3Entry>& entries) {
  std::printf("Bar series (normalized to H100 per model):\n");
  for (const auto& gpu : gpus) {
    std::printf("  %-18s", gpu.name.c_str());
    for (const auto& e : entries) {
      if (e.gpu_name == gpu.name) {
        std::printf("  %s=%s", e.model_name.c_str(),
                    litegpu::FormatDouble(e.normalized_vs_h100, 3).c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace litegpu;

  std::vector<GpuSpec> gpus = {H100(), Lite(), LiteMemBw(), LiteMemBwNetBw()};

  {
    SearchOptions options;  // capacity enforced (physical deployments)
    auto entries = RunDecodeStudy(CaseStudyModels(), gpus, options);
    std::printf("%s\n", Fig3ToText(entries,
                                   "=== Figure 3b: decode, normalized tokens/s/SM "
                                   "(HBM capacity enforced) ===")
                            .c_str());
    PrintSeries(gpus, entries);
  }

  {
    SearchOptions options;
    options.workload.enforce_memory_capacity = false;
    auto entries = RunDecodeStudy(CaseStudyModels(), gpus, options);
    std::printf("\n%s\n", Fig3ToText(entries,
                                     "=== Figure 3b variant: idealized capacity "
                                     "(paper's roofline abstraction) ===")
                              .c_str());
    PrintSeries(gpus, entries);
  }

  std::printf(
      "\nPaper caption checks:\n"
      "  - Lite underperforms; degradation grows with model size / GPU count\n"
      "  - GPT3-175B suffers from its MHA KV cache (long memory-bound stages)\n"
      "  - Lite+MemBW uses the shoreline for 2x HBM bandwidth and recovers,\n"
      "    exceeding H100; +NetBW helps at high TP degrees\n");
  return 0;
}
