// Serve-scale benchmark: how fast the serving simulator's hot path is, and
// what the StepTimeTable fast path buys over the callback path.
//
// Three measurements on the Llama3-70B / H100 validation deployment:
//   1. Inner loop: N decode-step-time queries through the PerfModel-backed
//      callbacks (std::function -> mutex -> std::map) vs the flat table
//      (bounds-checked array load). This is the per-event cost the
//      simulator pays millions of times.
//   2. Full simulation at the high-load validation point (95% of analytic
//      decode capacity): wall clock on both paths, plus the metric-identity
//      check — TTFT percentiles, goodput, and utilization must be
//      bit-identical; TBT percentiles within one histogram bin.
//   3. A 20-point load sweep through the serve-sweep study, reported
//      against the single old-path point for the perf trajectory.
//   4. A non-stationary autoscaled point (on/off bursts + reactive
//      policy): both paths must agree on the scale-event sequence and the
//      instance-second integrals, covering the new event kinds the
//      autoscaler adds to the loop.
//   5. A fault-injected point (accelerated churn, hot spares, retries):
//      both paths must produce element-wise identical fault event logs and
//      identical kill/retry accounting. The zero-AFR table path is also
//      gated on an absolute ns-per-decode-step budget, so the disabled
//      fault branch staying off the hot path is enforced, not assumed.
//   6. Reference-core identity: the pre-rewrite simulator is kept verbatim
//      (RunServeSimulationReference) and the rewritten core — calendar
//      event queue, SoA hot state, completion-heap decode scheduling —
//      must match it exactly on the high-load, autoscaled, and
//      fault-injected points (metrics, scale-event and fault-event logs).
//   7. A million-request point (32 decode instances at 95% load): workload
//      generation wall time, then reference core vs new core on the table
//      path with exact metric identity. The speedup must be > 1 (hard
//      gate); the target is >= 5x. Also times the same point sharded 8
//      ways through the merge path.
//   8. The checked-in 19-point load grid (10%..100%, 30 s horizon), each
//      point run on both cores: summed reference wall vs summed new wall,
//      exact per-point identity, speedup > 1 gated, target >= 2x.
//   9. A fleet-compare catalog where candidates share resolved parts: the
//      study must build exactly one ServePlatform (search + StepTimeTable)
//      per distinct (model, GPU) pair — `platform_builds` equals the
//      distinct part count, gated — and a candidate that only widens the
//      pool must see exactly proportional analytic capacity.
//
// `--json` emits one JSON object (CI tees it into BENCH_serve_scale.json)
// and the exit code gates regressions: nonzero when any speedup gate is
// not > 1, any identity check fails, or the zero-AFR step budget blows.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/perf/model.h"
#include "src/perf/step_table.h"
#include "src/serve/simulator.h"
#include "src/serve/simulator_reference.h"
#include "src/serve/workload.h"
#include "src/util/json.h"
#include "src/util/thread_pool.h"

namespace {

using namespace litegpu;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Exact equality on every summary metric two fault-free runs of the same
// workload must share — the reference-vs-new gates ride on this.
bool MetricsIdentical(const ServeMetrics& a, const ServeMetrics& b) {
  return a.completed_requests == b.completed_requests &&
         a.admitted_requests == b.admitted_requests &&
         a.in_flight_at_horizon == b.in_flight_at_horizon &&
         a.output_tokens == b.output_tokens &&
         a.decode_tokens_per_s == b.decode_tokens_per_s &&
         a.makespan_s == b.makespan_s &&
         a.prefill_utilization == b.prefill_utilization &&
         a.decode_utilization == b.decode_utilization &&
         a.mean_decode_batch == b.mean_decode_batch &&
         a.ttft_s.count() == b.ttft_s.count() &&
         a.ttft_s.Median() == b.ttft_s.Median() &&
         a.ttft_s.P95() == b.ttft_s.P95() &&
         a.ttft_s.P99() == b.ttft_s.P99() &&
         a.tbt_s.count() == b.tbt_s.count() &&
         a.tbt_s.Median() == b.tbt_s.Median() &&
         a.tbt_s.P99() == b.tbt_s.P99();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: bench_serve_scale [--json]\n");
      return 64;
    }
  }

  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  SearchOptions options;
  PrefillSearchResult prefill = SearchPrefill(model, gpu, options);
  DecodeSearchResult decode = SearchDecode(model, gpu, options);
  if (!prefill.found || !decode.found) {
    std::fprintf(stderr, "bench_serve_scale: no feasible configuration\n");
    return 1;
  }
  TpPlan prefill_plan = MakeTpPlan(model, prefill.best.tp_degree).value();
  TpPlan decode_plan = MakeTpPlan(model, decode.best.tp_degree).value();
  PerfModel prefill_model(model, gpu, prefill_plan, options.workload, options.engine);
  PerfModel decode_model(model, gpu, decode_plan, options.workload, options.engine);
  ServeCallbacks callbacks = MakePerfModelCallbacks(prefill_model, decode_model,
                                                    prefill.best.batch, decode.best.batch);
  StepTimeTable table = StepTimeTable::Build(prefill_model, decode_model,
                                             prefill.best.batch, decode.best.batch);

  // --- 1. inner loop: per-query cost, callbacks vs table -------------------
  // The table build above already priced every batch, so the callback loop
  // measures warm cache lookups (mutex + map::find), not roofline math —
  // exactly what the old simulator paid per event.
  const int kQueries = 2'000'000;
  const int max_batch = table.max_decode_batch();
  double callback_sum = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueries; ++i) {
    callback_sum += callbacks.decode_step_time(1 + i % max_batch);
  }
  double callback_loop_s = SecondsSince(t0);
  double table_sum = 0.0;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kQueries; ++i) {
    table_sum += table.DecodeStepTime(1 + i % max_batch);
  }
  double table_loop_s = SecondsSince(t0);
  // Both loops sum the same values in the same order, so equal sums mean
  // bit-identical step times (and the accumulators keep the loops live).
  bool inner_identical = callback_sum == table_sum;
  double inner_speedup = table_loop_s > 0.0 ? callback_loop_s / table_loop_s : 0.0;

  // --- 2. full simulation at the high-load validation point ----------------
  WorkloadSpec spec;
  spec.arrival_rate_per_s =
      0.95 * decode.best.result.tokens_per_s / spec.median_output_tokens;
  spec.duration_s = 60.0;
  std::vector<Request> requests = GenerateWorkload(spec);
  ServeClusterConfig cluster;
  double prefill_demand = spec.arrival_rate_per_s * spec.median_prompt_tokens;
  cluster.prefill_instances = std::max(
      1, static_cast<int>(std::ceil(1.25 * prefill_demand / prefill.best.result.tokens_per_s)));
  cluster.decode_instances = 1;

  t0 = std::chrono::steady_clock::now();
  ServeMetrics old_path = RunServeSimulation(requests, cluster, callbacks);
  double old_sim_s = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();
  ServeMetrics fast_path = RunServeSimulation(requests, cluster, table);
  double fast_sim_s = SecondsSince(t0);
  double sim_speedup = fast_sim_s > 0.0 ? old_sim_s / fast_sim_s : 0.0;

  bool ttft_identical = old_path.ttft_s.Median() == fast_path.ttft_s.Median() &&
                        old_path.ttft_s.P95() == fast_path.ttft_s.P95() &&
                        old_path.ttft_s.P99() == fast_path.ttft_s.P99();
  bool goodput_identical =
      old_path.decode_tokens_per_s == fast_path.decode_tokens_per_s &&
      old_path.completed_requests == fast_path.completed_requests;
  bool utilization_identical =
      old_path.prefill_utilization == fast_path.prefill_utilization &&
      old_path.decode_utilization == fast_path.decode_utilization;
  double bin = old_path.tbt_s.bin_width();
  bool tbt_within_bin = std::abs(old_path.tbt_s.Median() - fast_path.tbt_s.Median()) <= bin &&
                        std::abs(old_path.tbt_s.P99() - fast_path.tbt_s.P99()) <= bin;
  bool identical =
      inner_identical && ttft_identical && goodput_identical && utilization_identical &&
      tbt_within_bin;

  // --- 3. the 20-point sweep study -----------------------------------------
  ServeSweepKnobs knobs;
  knobs.load_lo = 0.05;
  knobs.load_hi = 1.00;
  knobs.load_step = 0.05;
  knobs.horizon_s = 60.0;
  Scenario sweep_scenario = *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build();
  t0 = std::chrono::steady_clock::now();
  RunReport sweep_report = Runner().Run(sweep_scenario);
  double sweep_s = SecondsSince(t0);
  int sweep_points =
      sweep_report.ok
          ? static_cast<int>(std::get<ServeSweepReport>(sweep_report.payload).points.size())
          : 0;

  // --- 4. autoscaled non-stationary point, callback vs table ---------------
  WorkloadSpec bursty = spec;
  bursty.arrival_rate_per_s = 0.7 * decode.best.result.tokens_per_s /
                              static_cast<double>(spec.median_output_tokens);
  bursty.duration_s = 30.0;
  bursty.arrival.kind = ArrivalKind::kOnOff;
  bursty.arrival.on_mean_s = 6.0;
  bursty.arrival.off_mean_s = 6.0;
  bursty.arrival.on_multiplier = 2.0;
  bursty.arrival.off_multiplier = 0.2;
  std::vector<Request> bursty_requests = GenerateWorkload(bursty);
  ServeClusterConfig scaled = cluster;
  scaled.autoscaler.enabled = true;
  scaled.autoscaler.interval_s = 2.0;
  scaled.autoscaler.delay_s = 4.0;
  scaled.autoscaler.prefill_tokens_per_s = prefill.best.result.tokens_per_s;
  scaled.autoscaler.decode_tokens_per_s = decode.best.result.tokens_per_s;
  ServeMetrics scaled_old = RunServeSimulation(bursty_requests, scaled, callbacks);
  ServeMetrics scaled_fast = RunServeSimulation(bursty_requests, scaled, table);
  bool scale_events_identical =
      scaled_old.scale_events.size() == scaled_fast.scale_events.size();
  for (size_t i = 0; scale_events_identical && i < scaled_old.scale_events.size(); ++i) {
    const ScaleEvent& a = scaled_old.scale_events[i];
    const ScaleEvent& b = scaled_fast.scale_events[i];
    scale_events_identical = a.time_s == b.time_s && a.pool == b.pool &&
                             a.delta == b.delta &&
                             a.instances_after == b.instances_after &&
                             a.reason == b.reason;
  }
  bool autoscale_identical =
      scale_events_identical &&
      scaled_old.prefill_instance_seconds == scaled_fast.prefill_instance_seconds &&
      scaled_old.decode_instance_seconds == scaled_fast.decode_instance_seconds &&
      scaled_old.peak_decode_instances == scaled_fast.peak_decode_instances &&
      scaled_old.completed_requests == scaled_fast.completed_requests &&
      scaled_old.decode_tokens_per_s == scaled_fast.decode_tokens_per_s;

  // --- 5. fault-injected point, callback vs table --------------------------
  // Accelerated churn (the serve_faulty.json regime): several failures per
  // pool over the minute, hot spares masking some, killed batches retried.
  ServeClusterConfig faulty = cluster;
  // Failures inject over the admission horizon only; leaving the default
  // (effectively infinite) horizon would reschedule failures forever.
  faulty.horizon_s = spec.duration_s;
  faulty.faults.enabled = true;
  faulty.faults.prefill_failure_rate_per_s = 0.05;
  faulty.faults.decode_failure_rate_per_s = 0.1;
  faulty.faults.repair_s = 10.0;
  faulty.faults.spare_activation_s = 1.0;
  faulty.faults.prefill_spares = 1;
  faulty.faults.decode_spares = 1;
  faulty.faults.seed = FaultSubstreamSeed(0xC0FFEE);
  ServeMetrics faulty_old = RunServeSimulation(requests, faulty, callbacks);
  ServeMetrics faulty_fast = RunServeSimulation(requests, faulty, table);
  bool fault_log_identical =
      faulty_old.fault_events.size() == faulty_fast.fault_events.size() &&
      !faulty_fast.fault_events.empty();
  for (size_t i = 0; fault_log_identical && i < faulty_old.fault_events.size(); ++i) {
    const FaultEvent& a = faulty_old.fault_events[i];
    const FaultEvent& b = faulty_fast.fault_events[i];
    fault_log_identical = a.time_s == b.time_s && a.kind == b.kind &&
                          a.pool == b.pool && a.instance == b.instance &&
                          a.killed_requests == b.killed_requests &&
                          a.lost_tokens == b.lost_tokens &&
                          a.spares_free == b.spares_free;
  }
  bool fault_identical =
      fault_log_identical &&
      faulty_old.retried_requests == faulty_fast.retried_requests &&
      faulty_old.dropped_requests == faulty_fast.dropped_requests &&
      faulty_old.lost_tokens == faulty_fast.lost_tokens &&
      faulty_old.prefill_fault_downtime_s == faulty_fast.prefill_fault_downtime_s &&
      faulty_old.decode_fault_downtime_s == faulty_fast.decode_fault_downtime_s &&
      faulty_old.completed_requests == faulty_fast.completed_requests &&
      faulty_old.decode_tokens_per_s == faulty_fast.decode_tokens_per_s;
  // Zero-AFR overhead gate: the section-2 table-path run has faults
  // compiled in but disabled; its per-decode-step cost must stay inside a
  // generous absolute budget (~10x the expected cost) so fault bookkeeping
  // creeping onto the disabled hot path fails CI instead of rotting.
  const double kZeroAfrStepBudgetNs = 2000.0;
  double zero_afr_ns_per_step =
      fast_path.tbt_s.count() > 0
          ? 1e9 * fast_sim_s / static_cast<double>(fast_path.tbt_s.count())
          : 0.0;
  bool zero_afr_within_budget =
      zero_afr_ns_per_step > 0.0 && zero_afr_ns_per_step <= kZeroAfrStepBudgetNs;

  // --- 6. reference core vs new core on the sections above -----------------
  // The pre-rewrite simulator is kept verbatim; the rewritten core must be
  // indistinguishable on every regime the earlier sections exercise.
  ServeMetrics ref_plain = RunServeSimulationReference(requests, cluster, table);
  bool ref_plain_identical = MetricsIdentical(ref_plain, fast_path);
  ServeMetrics ref_scaled = RunServeSimulationReference(bursty_requests, scaled, table);
  bool ref_scale_events_identical =
      ref_scaled.scale_events.size() == scaled_fast.scale_events.size();
  for (size_t i = 0; ref_scale_events_identical && i < ref_scaled.scale_events.size();
       ++i) {
    const ScaleEvent& a = ref_scaled.scale_events[i];
    const ScaleEvent& b = scaled_fast.scale_events[i];
    ref_scale_events_identical = a.time_s == b.time_s && a.pool == b.pool &&
                                 a.delta == b.delta &&
                                 a.instances_after == b.instances_after &&
                                 a.reason == b.reason;
  }
  bool ref_scaled_identical =
      ref_scale_events_identical && MetricsIdentical(ref_scaled, scaled_fast) &&
      ref_scaled.prefill_instance_seconds == scaled_fast.prefill_instance_seconds &&
      ref_scaled.decode_instance_seconds == scaled_fast.decode_instance_seconds;
  ServeMetrics ref_faulty = RunServeSimulationReference(requests, faulty, table);
  bool ref_fault_log_identical =
      ref_faulty.fault_events.size() == faulty_fast.fault_events.size();
  for (size_t i = 0; ref_fault_log_identical && i < ref_faulty.fault_events.size(); ++i) {
    const FaultEvent& a = ref_faulty.fault_events[i];
    const FaultEvent& b = faulty_fast.fault_events[i];
    ref_fault_log_identical = a.time_s == b.time_s && a.kind == b.kind &&
                              a.pool == b.pool && a.instance == b.instance &&
                              a.killed_requests == b.killed_requests &&
                              a.lost_tokens == b.lost_tokens &&
                              a.spares_free == b.spares_free;
  }
  bool ref_faulty_identical =
      ref_fault_log_identical && MetricsIdentical(ref_faulty, faulty_fast) &&
      ref_faulty.retried_requests == faulty_fast.retried_requests &&
      ref_faulty.dropped_requests == faulty_fast.dropped_requests &&
      ref_faulty.lost_tokens == faulty_fast.lost_tokens;
  bool reference_identical =
      ref_plain_identical && ref_scaled_identical && ref_faulty_identical;

  // --- 7. the million-request point ----------------------------------------
  // 32 decode instances at 95% of their summed analytic capacity; the
  // horizon is whatever makes the expected arrival count one million. This
  // is the regime the rewrite targets: the reference core walks every
  // active slot every step (cost ~ total generated tokens, ~256M here);
  // the new core pays per step plus a heap push/pop per request.
  const int kMillionDecode = 32;
  const double kMillionRequests = 1e6;
  WorkloadSpec mspec;
  mspec.arrival_rate_per_s = 0.95 * kMillionDecode * decode.best.result.tokens_per_s /
                             static_cast<double>(mspec.median_output_tokens);
  mspec.duration_s = kMillionRequests / mspec.arrival_rate_per_s;
  t0 = std::chrono::steady_clock::now();
  std::vector<Request> million_requests = GenerateWorkload(mspec);
  double million_gen_s = SecondsSince(t0);
  // Each core gets its native input form: the reference keeps the AoS
  // vector it always took; the new core takes the SoA layout directly.
  RequestSoA million_soa = RequestSoA::FromRequests(million_requests);
  ServeClusterConfig mcluster;
  mcluster.prefill_instances = std::max(
      1, static_cast<int>(std::ceil(1.25 * mspec.arrival_rate_per_s *
                                    mspec.median_prompt_tokens /
                                    prefill.best.result.tokens_per_s)));
  mcluster.decode_instances = kMillionDecode;
  t0 = std::chrono::steady_clock::now();
  ServeMetrics million_ref = RunServeSimulationReference(million_requests, mcluster, table);
  double million_ref_s = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();
  ServeMetrics million_new = RunServeSimulation(million_soa, mcluster, table);
  double million_new_s = SecondsSince(t0);
  bool million_identical = MetricsIdentical(million_ref, million_new);
  double million_speedup = million_new_s > 0.0 ? million_ref_s / million_new_s : 0.0;
  // The same point sharded 8 ways through the runner's merge semantics:
  // sub-horizon replications on SplitMix64 substreams, TTFTs streamed,
  // merged in shard order.
  const int kMillionShards = 8;
  ServeClusterConfig shard_cluster = mcluster;
  shard_cluster.horizon_s = mspec.duration_s / kMillionShards;
  shard_cluster.stream_ttft = true;
  t0 = std::chrono::steady_clock::now();
  std::vector<ServeMetrics> shard_runs = ParallelMap<ServeMetrics>(
      0, kMillionShards, [&](int i) {
        WorkloadSpec shard_spec = mspec;
        shard_spec.duration_s = shard_cluster.horizon_s;
        shard_spec.seed = ShardSubstreamSeed(mspec.seed, static_cast<size_t>(i));
        std::vector<Request> shard_requests = GenerateWorkload(shard_spec);
        return RunServeSimulation(shard_requests, shard_cluster, table);
      });
  ServeMetrics million_sharded = MergeServeShardMetrics(shard_cluster, shard_runs);
  double million_shard_s = SecondsSince(t0);
  // Sanity, not identity: shards draw different substreams, so only the
  // scale of the merged run is checkable.
  bool shard_sane =
      million_sharded.completed_requests > 0.9 * million_new.completed_requests &&
      million_sharded.completed_requests < 1.1 * million_new.completed_requests;

  // --- 8. the 19-point load grid, reference core vs new core ---------------
  // The checked-in sweep grid (10%..100% in 5% steps, 30 s horizon, one
  // decode instance), every point run on both cores back to back.
  double grid_ref_s = 0.0;
  double grid_new_s = 0.0;
  int grid_points = 0;
  bool grid_identical = true;
  for (int i = 0; i <= 18; ++i) {
    double load = 0.10 + 0.05 * i;
    WorkloadSpec gspec;
    gspec.arrival_rate_per_s = load * decode.best.result.tokens_per_s /
                               static_cast<double>(gspec.median_output_tokens);
    gspec.duration_s = 30.0;
    gspec.seed = 1000 + static_cast<uint64_t>(i);
    std::vector<Request> grid_requests = GenerateWorkload(gspec);
    RequestSoA grid_soa = RequestSoA::FromRequests(grid_requests);
    ServeClusterConfig gcluster;
    gcluster.prefill_instances = std::max(
        1, static_cast<int>(std::ceil(1.25 * gspec.arrival_rate_per_s *
                                      gspec.median_prompt_tokens /
                                      prefill.best.result.tokens_per_s)));
    gcluster.decode_instances = 1;
    t0 = std::chrono::steady_clock::now();
    ServeMetrics g_ref = RunServeSimulationReference(grid_requests, gcluster, table);
    grid_ref_s += SecondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    ServeMetrics g_new = RunServeSimulation(grid_soa, gcluster, table);
    grid_new_s += SecondsSince(t0);
    grid_identical = grid_identical && MetricsIdentical(g_ref, g_new);
    ++grid_points;
  }
  double grid_speedup = grid_new_s > 0.0 ? grid_ref_s / grid_new_s : 0.0;

  // --- 9. the three-axis robustness point ----------------------------------
  // (a) axes-off null effect: with domains, degradation, and shedding all
  // left at defaults, the section-2 and section-5 runs above already
  // exercised the three-axis build — the new metrics fields must be exactly
  // zero (nothing leaked onto the disabled paths; the zero-AFR step budget
  // above gates the timing side).
  bool axes_off_zeroed =
      fast_path.shed_requests == 0 && fast_path.shed_events.empty() &&
      fast_path.degrade_windows == 0 &&
      fast_path.prefill_degraded_instance_s == 0.0 &&
      fast_path.decode_degraded_instance_s == 0.0 &&
      fast_path.time_to_drain_s == -1.0 && faulty_fast.shed_requests == 0 &&
      faulty_fast.degrade_windows == 0;
  // (b) a correlated point: domains + degradation + shedding on top of the
  // section-5 churn. Fault and shed logs must be element-wise identical
  // (domain ids included) across the callback, table, and reference paths.
  ServeClusterConfig chaos = faulty;
  chaos.faults.domains.prefill_instances_per_domain = 2;
  chaos.faults.domains.decode_instances_per_domain = 1;
  chaos.faults.domains.failure_rate_per_s = 0.05;
  chaos.faults.domains.repair_s = 5.0;
  chaos.faults.degraded.prefill_rate_per_s = 0.05;
  chaos.faults.degraded.decode_rate_per_s = 0.1;
  chaos.faults.degraded.multiplier = 2.0;
  chaos.faults.degraded.mean_duration_s = 2.0;
  chaos.shedding.max_queue_depth = 128;
  ServeMetrics chaos_old = RunServeSimulation(requests, chaos, callbacks);
  ServeMetrics chaos_fast = RunServeSimulation(requests, chaos, table);
  ServeMetrics chaos_ref = RunServeSimulationReference(requests, chaos, table);
  auto fault_logs_match = [](const ServeMetrics& a, const ServeMetrics& b) {
    if (a.fault_events.size() != b.fault_events.size() ||
        a.shed_events.size() != b.shed_events.size()) {
      return false;
    }
    for (size_t i = 0; i < a.fault_events.size(); ++i) {
      const FaultEvent& x = a.fault_events[i];
      const FaultEvent& y = b.fault_events[i];
      if (x.time_s != y.time_s || x.kind != y.kind || x.pool != y.pool ||
          x.instance != y.instance || x.domain != y.domain ||
          x.killed_requests != y.killed_requests ||
          x.lost_tokens != y.lost_tokens || x.spares_free != y.spares_free) {
        return false;
      }
    }
    for (size_t i = 0; i < a.shed_events.size(); ++i) {
      if (a.shed_events[i].time_s != b.shed_events[i].time_s ||
          a.shed_events[i].request != b.shed_events[i].request ||
          a.shed_events[i].reason != b.shed_events[i].reason) {
        return false;
      }
    }
    return a.shed_requests == b.shed_requests &&
           a.degrade_windows == b.degrade_windows &&
           a.prefill_degraded_instance_s == b.prefill_degraded_instance_s &&
           a.decode_degraded_instance_s == b.decode_degraded_instance_s &&
           a.degraded_output_tokens == b.degraded_output_tokens &&
           a.time_to_drain_s == b.time_to_drain_s;
  };
  bool chaos_has_domains = false;
  for (const FaultEvent& e : chaos_fast.fault_events) {
    if (e.domain >= 0) {
      chaos_has_domains = true;
      break;
    }
  }
  bool chaos_identical = !chaos_fast.fault_events.empty() && chaos_has_domains &&
                         chaos_fast.degrade_windows > 0 &&
                         fault_logs_match(chaos_old, chaos_fast) &&
                         fault_logs_match(chaos_ref, chaos_fast) &&
                         MetricsIdentical(chaos_old, chaos_fast) &&
                         MetricsIdentical(chaos_ref, chaos_fast);

  // --- 10. fleet-compare catalog: one platform build per distinct part ----
  // Four candidates over two distinct resolved parts: the H100 base and its
  // split-4 Lite derivative, each with 1- and 2-instance decode pools. The
  // fleet study must amortize the expensive part of the sweep — the config
  // search plus the StepTimeTable build — across candidates that share a
  // part (platform_builds == 2, not 4), and a candidate that only widens
  // the pool must see exactly 2x the analytic decode capacity.
  FleetKnobs fleet_knobs;
  fleet_knobs.load_lo = 0.25;
  fleet_knobs.load_hi = 1.0;
  fleet_knobs.load_step = 0.25;
  fleet_knobs.horizon_s = 15.0;
  auto fleet_candidate = [](const char* name, int split, int decode_instances) {
    FleetCandidate c;
    c.name = name;
    c.split = split;
    c.decode_instances = decode_instances;
    return c;
  };
  fleet_knobs.candidates = {
      fleet_candidate("H100-pool1", 1, 1), fleet_candidate("H100-pool2", 1, 2),
      fleet_candidate("Lite4-pool1", 4, 1), fleet_candidate("Lite4-pool2", 4, 2)};
  Scenario fleet_scenario =
      *ScenarioBuilder(StudyKind::kFleetCompare).Fleet(fleet_knobs).Build();
  t0 = std::chrono::steady_clock::now();
  RunReport fleet_run = Runner().Run(fleet_scenario);
  double fleet_s = SecondsSince(t0);
  int fleet_platform_builds = 0;
  int fleet_feasible = 0;
  bool fleet_shared_builds = false;
  bool fleet_capacity_scales = false;
  if (fleet_run.ok) {
    const auto& fleet = std::get<FleetCompareReport>(fleet_run.payload);
    fleet_platform_builds = fleet.platform_builds;
    for (const FleetCompareReport::Candidate& c : fleet.candidates) {
      if (c.feasible) ++fleet_feasible;
    }
    fleet_shared_builds = fleet.platform_builds == 2;
    fleet_capacity_scales =
        fleet.candidates.size() == 4 &&
        fleet.candidates[1].analytic_capacity_tok_s ==
            2.0 * fleet.candidates[0].analytic_capacity_tok_s &&
        fleet.candidates[3].analytic_capacity_tok_s ==
            2.0 * fleet.candidates[2].analytic_capacity_tok_s;
  }
  bool fleet_ok = fleet_run.ok && fleet_feasible == 4 && fleet_shared_builds &&
                  fleet_capacity_scales;

  bool pass = inner_speedup > 1.0 && identical && autoscale_identical &&
              fault_identical && zero_afr_within_budget && sweep_report.ok &&
              reference_identical && million_identical && million_speedup > 1.0 &&
              shard_sane && grid_identical && grid_speedup > 1.0 &&
              axes_off_zeroed && chaos_identical && fleet_ok;

  if (json) {
    Json inner = Json::Object();
    inner.Set("queries", kQueries)
        .Set("callback_ns_per_query", 1e9 * callback_loop_s / kQueries)
        .Set("table_ns_per_query", 1e9 * table_loop_s / kQueries)
        .Set("speedup", inner_speedup);
    Json identity = Json::Object();
    identity.Set("step_times_identical", inner_identical)
        .Set("ttft_identical", ttft_identical)
        .Set("goodput_identical", goodput_identical)
        .Set("utilization_identical", utilization_identical)
        .Set("tbt_within_one_bin", tbt_within_bin);
    Json sim = Json::Object();
    sim.Set("load", 0.95)
        .Set("horizon_s", spec.duration_s)
        .Set("decode_steps", static_cast<uint64_t>(fast_path.tbt_s.count()))
        .Set("callback_path_s", old_sim_s)
        .Set("table_path_s", fast_sim_s)
        .Set("speedup", sim_speedup)
        .Set("identity", std::move(identity));
    Json sweep = Json::Object();
    sweep.Set("points", sweep_points)
        .Set("wall_s", sweep_s)
        .Set("callback_single_point_s", old_sim_s)
        .Set("sweep_vs_callback_point", old_sim_s > 0.0 ? sweep_s / old_sim_s : 0.0);
    Json autoscale = Json::Object();
    autoscale.Set("scale_events", static_cast<int>(scaled_fast.scale_events.size()))
        .Set("peak_decode_instances", scaled_fast.peak_decode_instances)
        .Set("decode_instance_seconds", scaled_fast.decode_instance_seconds)
        .Set("events_identical", scale_events_identical)
        .Set("metrics_identical", autoscale_identical);
    Json faults_json = Json::Object();
    faults_json.Set("fault_events", static_cast<int>(faulty_fast.fault_events.size()))
        .Set("retried_requests", faulty_fast.retried_requests)
        .Set("lost_tokens", faulty_fast.lost_tokens)
        .Set("event_log_identical", fault_log_identical)
        .Set("metrics_identical", fault_identical)
        .Set("zero_afr_ns_per_step", zero_afr_ns_per_step)
        .Set("zero_afr_step_budget_ns", kZeroAfrStepBudgetNs)
        .Set("zero_afr_within_budget", zero_afr_within_budget);
    Json reference = Json::Object();
    reference.Set("plain_identical", ref_plain_identical)
        .Set("autoscaled_identical", ref_scaled_identical)
        .Set("faulty_identical", ref_faulty_identical);
    Json workload_gen = Json::Object();
    workload_gen.Set("requests", static_cast<uint64_t>(million_requests.size()))
        .Set("wall_s", million_gen_s)
        .Set("requests_per_s",
             million_gen_s > 0.0 ? million_requests.size() / million_gen_s : 0.0);
    Json million = Json::Object();
    million.Set("requests", static_cast<uint64_t>(million_requests.size()))
        .Set("decode_instances", kMillionDecode)
        .Set("horizon_s", mspec.duration_s)
        .Set("reference_core_s", million_ref_s)
        .Set("new_core_s", million_new_s)
        .Set("speedup", million_speedup)
        .Set("speedup_target", 5.0)
        .Set("identity", million_identical)
        .Set("shards", kMillionShards)
        .Set("sharded_s", million_shard_s)
        .Set("sharded_completed_sane", shard_sane);
    Json robustness = Json::Object();
    robustness.Set("fault_events", static_cast<int>(chaos_fast.fault_events.size()))
        .Set("shed_requests", chaos_fast.shed_requests)
        .Set("degrade_windows", chaos_fast.degrade_windows)
        .Set("axes_off_zeroed", axes_off_zeroed)
        .Set("correlated_logs_identical", chaos_identical);
    Json fleet_json = Json::Object();
    fleet_json.Set("candidates", static_cast<int>(fleet_knobs.candidates.size()))
        .Set("distinct_parts", 2)
        .Set("platform_builds", fleet_platform_builds)
        .Set("feasible", fleet_feasible)
        .Set("shared_builds", fleet_shared_builds)
        .Set("capacity_scales_with_pool", fleet_capacity_scales)
        .Set("wall_s", fleet_s);
    Json sweep_core = Json::Object();
    sweep_core.Set("points", grid_points)
        .Set("reference_core_s", grid_ref_s)
        .Set("new_core_s", grid_new_s)
        .Set("speedup", grid_speedup)
        .Set("speedup_target", 2.0)
        .Set("identity", grid_identical);
    Json j = Json::Object();
    j.Set("inner_loop", std::move(inner))
        .Set("full_sim", std::move(sim))
        .Set("sweep", std::move(sweep))
        .Set("autoscale", std::move(autoscale))
        .Set("faults", std::move(faults_json))
        .Set("reference_identity", std::move(reference))
        .Set("workload_gen", std::move(workload_gen))
        .Set("million_point", std::move(million))
        .Set("robustness", std::move(robustness))
        .Set("fleet", std::move(fleet_json))
        .Set("sweep_core", std::move(sweep_core))
        .Set("pass", pass);
    std::printf("%s\n", j.Dump().c_str());
  } else {
    std::printf("=== Serve-scale: StepTimeTable fast path vs callback path ===\n\n");
    std::printf("inner loop (%d warm decode-step queries):\n"
                "  callbacks: %7.1f ns/query   table: %6.1f ns/query   speedup: %.1fx\n\n",
                kQueries, 1e9 * callback_loop_s / kQueries, 1e9 * table_loop_s / kQueries,
                inner_speedup);
    std::printf("full simulation (load 0.95, %.0f s horizon, %zu decode steps):\n"
                "  callback path: %.3f s   table path: %.3f s   speedup: %.2fx\n"
                "  metric identity: %s (TTFT/goodput/utilization exact, TBT within one bin)\n\n",
                spec.duration_s, fast_path.tbt_s.count(), old_sim_s, fast_sim_s, sim_speedup,
                identical ? "OK" : "FAILED");
    std::printf("serve-sweep study (%d points, %.0f s horizon each): %.3f s wall\n"
                "  (one callback-path point at high load: %.3f s)\n\n",
                sweep_points, knobs.horizon_s, sweep_s, old_sim_s);
    std::printf("autoscaled on/off point (%zu scale events, peak %d decode inst):\n"
                "  callback-vs-table identity: %s (events, instance-seconds, goodput)\n\n",
                scaled_fast.scale_events.size(), scaled_fast.peak_decode_instances,
                autoscale_identical ? "OK" : "FAILED");
    std::printf("fault-injected point (%zu fault events, %d retried):\n"
                "  callback-vs-table identity: %s (event log element-wise, kill accounting)\n"
                "  zero-AFR table path: %.0f ns/decode-step (budget %.0f): %s\n\n",
                faulty_fast.fault_events.size(), faulty_fast.retried_requests,
                fault_identical ? "OK" : "FAILED", zero_afr_ns_per_step,
                kZeroAfrStepBudgetNs, zero_afr_within_budget ? "OK" : "FAILED");
    std::printf("reference core vs new core identity:\n"
                "  plain: %s   autoscaled: %s   fault-injected: %s\n\n",
                ref_plain_identical ? "OK" : "FAILED",
                ref_scaled_identical ? "OK" : "FAILED",
                ref_faulty_identical ? "OK" : "FAILED");
    std::printf("million-request point (%zu requests, %d decode inst, %.0f s horizon):\n"
                "  workload generation: %.3f s (%.1fM req/s)\n"
                "  reference core: %.3f s   new core: %.3f s   speedup: %.2fx "
                "(target 5x)   identity: %s\n"
                "  sharded x%d (merged): %.3f s\n\n",
                million_requests.size(), kMillionDecode, mspec.duration_s,
                million_gen_s,
                million_gen_s > 0.0 ? million_requests.size() / million_gen_s / 1e6 : 0.0,
                million_ref_s, million_new_s, million_speedup,
                million_identical ? "OK" : "FAILED", kMillionShards, million_shard_s);
    std::printf("three-axis robustness point (%zu fault events, %d shed, %d degrade windows):\n"
                "  axes-off fields zeroed: %s   correlated-log identity "
                "(callback/table/reference): %s\n\n",
                chaos_fast.fault_events.size(), chaos_fast.shed_requests,
                chaos_fast.degrade_windows, axes_off_zeroed ? "OK" : "FAILED",
                chaos_identical ? "OK" : "FAILED");
    std::printf("fleet-compare catalog (%zu candidates over 2 distinct parts): %.3f s wall\n"
                "  platform builds: %d (expect 2): %s   feasible: %d/4   "
                "pool capacity scaling: %s\n\n",
                fleet_knobs.candidates.size(), fleet_s, fleet_platform_builds,
                fleet_shared_builds ? "OK" : "FAILED", fleet_feasible,
                fleet_capacity_scales ? "OK" : "FAILED");
    std::printf("19-point load grid, reference vs new core:\n"
                "  reference: %.3f s   new: %.3f s   speedup: %.2fx (target 2x)   "
                "identity: %s\n",
                grid_ref_s, grid_new_s, grid_speedup,
                grid_identical ? "OK" : "FAILED");
  }
  return pass ? 0 : 1;
}
