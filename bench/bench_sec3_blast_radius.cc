// Section-3 fault-tolerance study: blast radius and hot-spare economics of
// H100 vs Lite clusters serving the same capacity, via closed forms and the
// Monte-Carlo availability simulator.

#include <cstdio>

#include "src/hw/catalog.h"
#include "src/reliability/failure_model.h"
#include "src/reliability/mc_sim.h"
#include "src/util/format.h"
#include "src/util/table.h"

int main() {
  using namespace litegpu;

  std::printf("=== Section 3: fault tolerance — blast radius & hot spares ===\n\n");

  FailureParams failure;

  // One serving fleet: 4 instances of Llama3-70B-class capacity; an H100
  // instance spans 8 GPUs, the Lite equivalent spans 32.
  struct Fleet {
    GpuSpec gpu;
    int gpus_per_instance;
    int num_instances;
  };
  const Fleet fleets[] = {{H100(), 8, 4}, {Lite(), 32, 4}};

  std::printf("Per-device failure characteristics:\n");
  Table device_table({"GPU", "Die mm^2", "AFR", "Failures/yr (fleet)",
                      "Blast radius (FLOPS lost per failure)"});
  for (const auto& f : fleets) {
    int fleet_gpus = f.gpus_per_instance * f.num_instances;
    device_table.AddRow(
        {f.gpu.name, FormatDouble(f.gpu.die_area_mm2, 1),
         HumanPercent(GpuAfr(f.gpu, failure)),
         FormatDouble(ClusterFailuresPerYear(f.gpu, fleet_gpus, failure), 2),
         HumanPercent(BlastRadiusFraction(fleet_gpus))});
  }
  std::printf("%s\n", device_table.ToText().c_str());

  std::printf("Instance availability vs hot spares (closed form + Monte-Carlo, 200 sim-years):\n");
  Table table({"Fleet", "Spares", "Spare cost share", "Closed-form avail",
               "MC avail", "MC failures/yr", "Unmasked"});
  for (const auto& f : fleets) {
    for (int spares : {0, 1, 2, 4}) {
      double closed = InstanceAvailabilityWithSpares(f.gpu, f.gpus_per_instance,
                                                     f.num_instances, spares, failure);
      McSimConfig config;
      config.gpus_per_instance = f.gpus_per_instance;
      config.num_instances = f.num_instances;
      config.num_spares = spares;
      config.sim_years = 200.0;
      config.failure = failure;
      McSimResult mc = SimulateAvailability(f.gpu, config);
      double fleet_gpus = f.gpus_per_instance * f.num_instances;
      table.AddRow({f.gpu.name + " " + std::to_string(f.num_instances) + "x" +
                        std::to_string(f.gpus_per_instance),
                    std::to_string(spares), HumanPercent(spares / fleet_gpus),
                    FormatDouble(closed, 5), FormatDouble(mc.instance_availability, 5),
                    FormatDouble(mc.failures_per_year, 2),
                    std::to_string(mc.unmasked_failures)});
    }
    table.AddSeparator();
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf(
      "Takeaways (paper Section 3):\n"
      "  - one Lite failure removes 4x less capacity (smaller blast radius), but\n"
      "    the software blast radius (whole instance down) dominates either way;\n"
      "  - a Lite spare costs 1/4 of an H100 spare, so equal-budget sparing buys\n"
      "    4x more spares -> higher availability per spare dollar;\n"
      "  - more devices => more failure events: the Lite fleet must rely on its\n"
      "    cheap spares and fast activation to win.\n");
  return 0;
}
