// Parallel sweep microbenchmark: times a design-space exploration over the
// Table-1 catalog (a grid of prompt-length x TBT-SLO scenarios, each running
// the full case-study-model x Table-1-GPU decode study) and a sharded
// Monte-Carlo availability run at 1 vs N worker threads, verifies results
// are bit-identical, and reports the speedup.
//
//   bench_parallel_sweep [--threads N] [--prompts P] [--slos S]
//                        [--trials T] [--years Y] [--reps R]
//
// Defaults: N = hardware concurrency (at least 4), an 8x8 scenario grid,
// 32 trials x 200 years of Monte-Carlo, R = 3 repetitions (best kept).

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/hw/catalog.h"
#include "src/reliability/mc_sim.h"
#include "src/util/flags.h"
#include "src/util/thread_pool.h"

namespace litegpu {
namespace {

double BestSeconds(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best) {
      best = elapsed.count();
    }
  }
  return best;
}

bool SameEntries(const std::vector<Fig3Entry>& a, const std::vector<Fig3Entry>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].found != b[i].found || a[i].tp_degree != b[i].tp_degree ||
        a[i].batch != b[i].batch ||
        a[i].tokens_per_s_per_sm != b[i].tokens_per_s_per_sm ||
        a[i].normalized_vs_h100 != b[i].normalized_vs_h100) {
      return false;
    }
  }
  return true;
}

// The whole design space: one full catalog study per (prompt, slo) scenario,
// fanned out across `threads` workers. Entries concatenate in scenario
// order, so the result is deterministic at any thread count.
std::vector<Fig3Entry> SweepScenarioGrid(const std::vector<TransformerSpec>& models,
                                         const std::vector<GpuSpec>& gpus,
                                         const std::vector<int>& prompts,
                                         const std::vector<double>& slos, int threads) {
  int n = static_cast<int>(prompts.size() * slos.size());
  auto per_scenario = ParallelMap<std::vector<Fig3Entry>>(threads, n, [&](int i) {
    ExperimentOptions options;
    options.search.workload.prompt_tokens = prompts[static_cast<size_t>(i) / slos.size()];
    options.search.workload.tbt_slo_s = slos[static_cast<size_t>(i) % slos.size()];
    options.exec.threads = 1;  // inner studies serial; the grid is the fan-out
    return RunDecodeStudy(models, gpus, options);
  });
  std::vector<Fig3Entry> all;
  for (const auto& entries : per_scenario) {
    all.insert(all.end(), entries.begin(), entries.end());
  }
  return all;
}

int Main(int argc, const char* const* argv) {
  Flags flags = Flags::Parse(argc, argv);
  int threads = flags.GetInt("threads", 0);
  if (threads <= 0) {
    threads = ResolveThreads(0) < 4 ? 4 : ResolveThreads(0);
  }
  int num_prompts = flags.GetInt("prompts", 8);
  int num_slos = flags.GetInt("slos", 8);
  int trials = flags.GetInt("trials", 32);
  double years = flags.GetDouble("years", 200.0);
  int reps = flags.GetInt("reps", 3);

  std::printf("=== Parallel sweep benchmark (%d threads vs serial) ===\n\n", threads);

  // --- design-space grid over the Table-1 catalog ---
  std::vector<TransformerSpec> models = CaseStudyModels();
  std::vector<GpuSpec> gpus = Table1Configs();
  std::vector<int> prompts;
  for (int i = 0; i < num_prompts; ++i) {
    prompts.push_back(512 + 512 * i);
  }
  std::vector<double> slos;
  for (int i = 0; i < num_slos; ++i) {
    slos.push_back(0.020 + 0.010 * i);
  }

  std::vector<Fig3Entry> serial_entries;
  std::vector<Fig3Entry> parallel_entries;
  double serial_s = BestSeconds(reps, [&] {
    serial_entries = SweepScenarioGrid(models, gpus, prompts, slos, 1);
  });
  double parallel_s = BestSeconds(reps, [&] {
    parallel_entries = SweepScenarioGrid(models, gpus, prompts, slos, threads);
  });
  bool identical = SameEntries(serial_entries, parallel_entries);
  std::printf("catalog design sweep (%zu scenarios x %zu models x %zu GPUs = %zu searches)\n",
              prompts.size() * slos.size(), models.size(), gpus.size(),
              serial_entries.size());
  std::printf("  serial:     %8.1f ms\n", serial_s * 1e3);
  std::printf("  threads=%d:  %7.1f ms   speedup %.2fx   results %s\n\n", threads,
              parallel_s * 1e3, parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
              identical ? "bit-identical" : "MISMATCH");

  // --- Monte-Carlo availability, sharded trials ---
  McSimConfig config;
  config.gpus_per_instance = 32;
  config.num_instances = 4;
  config.num_spares = 2;
  config.sim_years = years;
  config.num_trials = trials;
  config.exec.threads = 1;
  McSimConfig sharded = config;
  sharded.exec.threads = threads;

  McSimResult serial_mc;
  McSimResult parallel_mc;
  double mc_serial_s =
      BestSeconds(reps, [&] { serial_mc = SimulateAvailability(Lite(), config); });
  double mc_parallel_s =
      BestSeconds(reps, [&] { parallel_mc = SimulateAvailability(Lite(), sharded); });
  bool mc_identical = serial_mc.num_failures == parallel_mc.num_failures &&
                      serial_mc.instance_availability == parallel_mc.instance_availability;
  std::printf("mc availability (%d trials x %.0f years, 128 Lite GPUs)\n", trials,
              config.sim_years);
  std::printf("  serial:     %8.1f ms\n", mc_serial_s * 1e3);
  std::printf("  threads=%d:  %7.1f ms   speedup %.2fx   results %s\n", threads,
              mc_parallel_s * 1e3,
              mc_parallel_s > 0.0 ? mc_serial_s / mc_parallel_s : 0.0,
              mc_identical ? "bit-identical" : "MISMATCH");

  return identical && mc_identical ? 0 : 1;
}

}  // namespace
}  // namespace litegpu

int main(int argc, char** argv) { return litegpu::Main(argc, argv); }
