#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/scenario.h"
#include "src/hw/catalog.h"

namespace litegpu {
namespace {

TEST(StudyKind, RoundTripsThroughNames) {
  for (StudyKind kind : {StudyKind::kSearch, StudyKind::kFig3a, StudyKind::kFig3b,
                         StudyKind::kDesign, StudyKind::kMcSim, StudyKind::kYield,
                         StudyKind::kDerive, StudyKind::kServe, StudyKind::kServeSweep,
                         StudyKind::kFleetCompare}) {
    auto parsed = ParseStudyKind(ToString(kind));
    ASSERT_TRUE(parsed.has_value()) << ToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseStudyKind("fig3c").has_value());
}

TEST(ScenarioBuilder, BuildsValidDefaultScenarios) {
  for (StudyKind kind : {StudyKind::kSearch, StudyKind::kFig3a, StudyKind::kFig3b,
                         StudyKind::kDesign, StudyKind::kMcSim, StudyKind::kYield,
                         StudyKind::kDerive, StudyKind::kServe, StudyKind::kServeSweep}) {
    std::string error;
    auto scenario = ScenarioBuilder(kind).Build(&error);
    EXPECT_TRUE(scenario.has_value()) << ToString(kind) << ": " << error;
  }
}

TEST(ScenarioBuilder, RejectsUnknownModel) {
  std::string error;
  auto scenario = ScenarioBuilder(StudyKind::kSearch).Model("NotAModel").Build(&error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_NE(error.find("unknown model"), std::string::npos);
}

TEST(ScenarioBuilder, RejectsUnknownGpu) {
  std::string error;
  auto scenario = ScenarioBuilder(StudyKind::kFig3b).Gpu("H100").Gpu("H1000").Build(&error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_NE(error.find("unknown GPU"), std::string::npos);
}

TEST(ScenarioBuilder, RejectsNonPositiveSlos) {
  std::string error;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kSearch).TbtSlo(0.0).Build(&error).has_value());
  EXPECT_NE(error.find("tbt_slo_s"), std::string::npos);
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kFig3a).TtftSlo(-1.0).Build(&error).has_value());
  EXPECT_NE(error.find("ttft_slo_s"), std::string::npos);
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kSearch).PromptTokens(0).Build(&error).has_value());
}

TEST(ScenarioBuilder, RejectsBaselineOutsideGpuList) {
  std::string error;
  auto scenario =
      ScenarioBuilder(StudyKind::kFig3a).Gpu("Lite").Baseline("H100").Build(&error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_NE(error.find("baseline_gpu"), std::string::npos);
}

TEST(ScenarioBuilder, RejectsBadStudyKnobs) {
  std::string error;
  McSimKnobs mcsim;
  mcsim.num_trials = 0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kMcSim).McSim(mcsim).Build(&error).has_value());
  EXPECT_NE(error.find("num_trials"), std::string::npos);

  DeriveKnobs derive;
  derive.base_gpu = "Nope";
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kDerive).Derive(derive).Build(&error).has_value());
  EXPECT_NE(error.find("base_gpu"), std::string::npos);

  YieldKnobs yield;
  yield.die_area_mm2 = -5.0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kYield).Yield(yield).Build(&error).has_value());
  EXPECT_NE(error.find("die_area_mm2"), std::string::npos);
}

TEST(Scenario, ResolvedListsApplyStudyDefaults) {
  Scenario fig3a = ScenarioBuilder(StudyKind::kFig3a).Peek();
  EXPECT_EQ(fig3a.ResolvedModels().size(), CaseStudyModels().size());
  EXPECT_EQ(fig3a.ResolvedGpus().size(), 4u);
  EXPECT_EQ(fig3a.ResolvedGpus().front(), "H100");

  Scenario design = ScenarioBuilder(StudyKind::kDesign).Peek();
  EXPECT_EQ(design.ResolvedGpus().size(), Table1Configs().size());

  Scenario search = ScenarioBuilder(StudyKind::kSearch).Gpu("Lite").Peek();
  ASSERT_EQ(search.ResolvedGpus().size(), 1u);
  EXPECT_EQ(search.ResolvedGpus().front(), "Lite");
}

TEST(Scenario, JsonRoundTripPreservesEquality) {
  McSimKnobs mcsim;
  mcsim.gpus_per_instance = 32;
  mcsim.num_trials = 7;
  mcsim.seed = 0xDEADBEEFull;
  for (const Scenario& original :
       {*ScenarioBuilder(StudyKind::kFig3a).Name("a").PromptTokens(2048).Build(),
        *ScenarioBuilder(StudyKind::kSearch)
             .Model("Llama3-70B")
             .Gpu("Lite+MemBW")
             .KvPolicy(KvShardPolicy::kIdealShard)
             .TbtSlo(0.025)
             .Threads(4)
             .Build(),
        *ScenarioBuilder(StudyKind::kMcSim).Gpu("Lite").McSim(mcsim).Build(),
        *ScenarioBuilder(StudyKind::kYield).Build(),
        *ScenarioBuilder(StudyKind::kDerive).Build(),
        *ScenarioBuilder(StudyKind::kDesign).Model("GPT3-175B").Build(),
        *ScenarioBuilder(StudyKind::kServe)
             .Model("Llama3-70B")
             .Gpu("Lite+MemBW")
             .Serve([] {
               ServeKnobs knobs;
               knobs.load = 0.6;
               knobs.horizon_s = 30.0;
               knobs.prefill_instances = 2;
               knobs.decode_instances = 3;
               knobs.prompt_sigma = 0.5;
               knobs.seed = 0xFEED;
               return knobs;
             }())
             .Build(),
        *ScenarioBuilder(StudyKind::kServeSweep)
             .ServeSweep([] {
               ServeSweepKnobs knobs;
               knobs.loads = {0.4, 0.8};
               knobs.horizon_s = 12.0;
               knobs.decode_instances = 2;
               knobs.seed = 0xBEEF;
               return knobs;
             }())
             .Build()}) {
    Json j = ScenarioToJson(original);
    std::string error;
    auto restored = ScenarioFromJson(j, &error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_TRUE(*restored == original) << ScenarioToJson(*restored).Dump();
    // And through the text form too.
    auto reparsed = Json::Parse(j.Dump());
    ASSERT_TRUE(reparsed.has_value());
    auto restored2 = ScenarioFromJson(*reparsed, &error);
    ASSERT_TRUE(restored2.has_value()) << error;
    EXPECT_TRUE(*restored2 == original);
  }
}

TEST(Scenario, FromJsonRejectsUnknownKeysAndBadEnums) {
  std::string error;
  auto bad_key = Json::Parse(R"({"study": "search", "modles": ["Llama3-70B"]})");
  ASSERT_TRUE(bad_key.has_value());
  EXPECT_FALSE(ScenarioFromJson(*bad_key, &error).has_value());
  EXPECT_NE(error.find("modles"), std::string::npos);

  auto bad_study = Json::Parse(R"({"study": "fig4"})");
  EXPECT_FALSE(ScenarioFromJson(*bad_study, &error).has_value());
  EXPECT_NE(error.find("unknown study"), std::string::npos);

  auto no_study = Json::Parse(R"({"name": "x"})");
  EXPECT_FALSE(ScenarioFromJson(*no_study, &error).has_value());
  EXPECT_NE(error.find("study"), std::string::npos);

  auto bad_policy = Json::Parse(R"({"study": "search", "kv_policy": "mirror"})");
  EXPECT_FALSE(ScenarioFromJson(*bad_policy, &error).has_value());
  EXPECT_NE(error.find("kv_policy"), std::string::npos);

  auto bad_nested =
      Json::Parse(R"({"study": "yield", "yield": {"defect_densty": 0.2}})");
  EXPECT_FALSE(ScenarioFromJson(*bad_nested, &error).has_value());
  EXPECT_NE(error.find("defect_densty"), std::string::npos);
}

TEST(Scenario, FromJsonRejectsMistypedValues) {
  std::string error;
  // A string where a number is expected must not silently fall back to the
  // default workload.
  auto str_num =
      Json::Parse(R"({"study": "fig3a", "workload": {"prompt_tokens": "3000"}})");
  ASSERT_TRUE(str_num.has_value());
  EXPECT_FALSE(ScenarioFromJson(*str_num, &error).has_value());
  EXPECT_NE(error.find("prompt_tokens"), std::string::npos);
  EXPECT_NE(error.find("number"), std::string::npos);

  auto num_bool = Json::Parse(
      R"({"study": "search", "workload": {"enforce_memory_capacity": 1}})");
  EXPECT_FALSE(ScenarioFromJson(*num_bool, &error).has_value());
  EXPECT_NE(error.find("enforce_memory_capacity"), std::string::npos);

  auto num_name = Json::Parse(R"({"study": "search", "name": 7})");
  EXPECT_FALSE(ScenarioFromJson(*num_name, &error).has_value());

  auto str_threads = Json::Parse(R"({"study": "yield", "exec": {"threads": "four"}})");
  EXPECT_FALSE(ScenarioFromJson(*str_threads, &error).has_value());
  EXPECT_NE(error.find("threads"), std::string::npos);
}

TEST(ScenarioBuilder, RejectsListsTheStudyWouldIgnore) {
  std::string error;
  // mcsim simulates one GPU type and no models.
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kMcSim)
                   .Gpu("H100")
                   .Gpu("Lite")
                   .Build(&error)
                   .has_value());
  EXPECT_NE(error.find("exactly one GPU"), std::string::npos);
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kMcSim).Model("Llama3-70B").Build(&error).has_value());
  // yield/derive read their own knob blocks, not the model/GPU lists.
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kYield).Gpu("Lite").Build(&error).has_value());
  EXPECT_NE(error.find("does not take"), std::string::npos);
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kDerive).Model("Llama3-70B").Build(&error).has_value());
}

TEST(Scenario, FromJsonDefaultsMissingFields) {
  auto minimal = Json::Parse(R"({"study": "fig3b"})");
  ASSERT_TRUE(minimal.has_value());
  auto scenario = ScenarioFromJson(*minimal);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->workload.prompt_tokens, 1500);
  EXPECT_DOUBLE_EQ(scenario->workload.tbt_slo_s, 0.050);
  EXPECT_EQ(scenario->baseline_gpu, "H100");
  EXPECT_EQ(scenario->exec.threads, 0);
  EXPECT_TRUE(scenario->Validate().empty());
}

TEST(Scenario, ParseScenariosAcceptsSingleArrayAndWrappedForms) {
  auto single = ParseScenarios(R"({"study": "yield"})");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->size(), 1u);

  auto array = ParseScenarios(R"([{"study": "yield"}, {"study": "derive"}])");
  ASSERT_TRUE(array.has_value());
  EXPECT_EQ(array->size(), 2u);

  auto wrapped = ParseScenarios(R"({"scenarios": [{"study": "fig3a"}]})");
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(wrapped->size(), 1u);
  EXPECT_EQ(wrapped->front().study, StudyKind::kFig3a);

  std::string error;
  EXPECT_FALSE(ParseScenarios(R"({"scenarios": []})", &error).has_value());
  EXPECT_FALSE(ParseScenarios("not json", &error).has_value());
}

TEST(Scenario, ServeValidationRejectsBadShapes) {
  std::string error;
  // Serve simulates exactly one (model, GPU) pair.
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe)
                   .Gpu("H100")
                   .Gpu("Lite")
                   .Build(&error)
                   .has_value());
  EXPECT_NE(error.find("exactly one GPU"), std::string::npos);
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe)
                   .Model("Llama3-8B")
                   .Model("Llama3-70B")
                   .Build(&error)
                   .has_value());
  EXPECT_NE(error.find("exactly one model"), std::string::npos);

  ServeKnobs knobs;
  knobs.horizon_s = 0.0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("horizon_s"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.decode_instances = 0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("decode_instances"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.load = 0.0;  // and no explicit rate
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("load"), std::string::npos);
}

TEST(Scenario, ServeDefaultsAndStrictKeys) {
  // Defaults: Llama3-70B on one H100-backed deployment.
  Scenario serve = ScenarioBuilder(StudyKind::kServe).Peek();
  EXPECT_EQ(serve.ResolvedModels(), std::vector<std::string>{"Llama3-70B"});
  EXPECT_EQ(serve.ResolvedGpus(), std::vector<std::string>{"H100"});

  auto minimal = Json::Parse(R"({"study": "serve"})");
  ASSERT_TRUE(minimal.has_value());
  auto scenario = ScenarioFromJson(*minimal);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_DOUBLE_EQ(scenario->serve.load, 0.8);
  EXPECT_DOUBLE_EQ(scenario->serve.horizon_s, 60.0);
  EXPECT_TRUE(scenario->Validate().empty());

  // Typos inside the serve block fail loudly, like every other block.
  std::string error;
  auto typo = Json::Parse(R"({"study": "serve", "serve": {"horizon": 30}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("horizon"), std::string::npos);
}

std::vector<RequestClass> TwoClassMix() {
  RequestClass chat;
  chat.name = "chat";
  chat.weight = 0.7;
  RequestClass batch;
  batch.name = "batch";
  batch.weight = 0.3;
  batch.prompt_tokens = 4000;
  batch.prompt_sigma = 0.4;
  batch.output_tokens = 900;
  batch.ttft_slo_s = 5.0;
  batch.tbt_slo_s = 0.2;
  return {chat, batch};
}

TEST(Scenario, RequestClassesRoundTripThroughJson) {
  ServeKnobs serve;
  serve.classes = TwoClassMix();
  ServeSweepKnobs sweep;
  sweep.loads = {0.4, 0.8};
  sweep.classes = TwoClassMix();
  for (const Scenario& original :
       {*ScenarioBuilder(StudyKind::kServe).Serve(serve).Build(),
        *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(sweep).Build()}) {
    Json j = ScenarioToJson(original);
    std::string error;
    auto reparsed = Json::Parse(j.Dump());
    ASSERT_TRUE(reparsed.has_value());
    auto restored = ScenarioFromJson(*reparsed, &error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_TRUE(*restored == original) << ScenarioToJson(*restored).Dump();
  }
  // Classless scenarios serialize without a classes key at all, so
  // pre-class scenario files and reports are byte-compatible.
  Json j = ScenarioToJson(*ScenarioBuilder(StudyKind::kServe).Build());
  EXPECT_EQ(j.Dump().find("classes"), std::string::npos);
}

TEST(Scenario, RequestClassValidationRejectsBadMixes) {
  std::string error;
  // Duplicate names.
  ServeKnobs knobs;
  knobs.classes = TwoClassMix();
  knobs.classes[1].name = "chat";
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("duplicate name 'chat'"), std::string::npos);

  // Non-positive weight.
  knobs.classes = TwoClassMix();
  knobs.classes[0].weight = 0.0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("weight must be positive"), std::string::npos);

  // Empty name.
  knobs.classes = TwoClassMix();
  knobs.classes[1].name = "";
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("non-empty name"), std::string::npos);

  // Negative SLO / sigma / length.
  knobs.classes = TwoClassMix();
  knobs.classes[0].tbt_slo_s = -0.1;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("SLOs must be >= 0"), std::string::npos);
  knobs.classes = TwoClassMix();
  knobs.classes[0].prompt_sigma = -1.0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  knobs.classes = TwoClassMix();
  knobs.classes[0].output_tokens = 0;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());

  // The same mix rules guard the sweep block.
  ServeSweepKnobs sweep;
  sweep.classes = TwoClassMix();
  sweep.classes[0].weight = -2.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(sweep).Build(&error).has_value());
  EXPECT_NE(error.find("sweep.classes"), std::string::npos);
}

TEST(Scenario, RequestClassJsonIsStrict) {
  std::string error;
  auto typo = Json::Parse(
      R"({"study": "serve", "serve": {"classes": [{"name": "chat", "wieght": 2}]}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("wieght"), std::string::npos);

  auto mistyped = Json::Parse(
      R"({"study": "serve", "serve": {"classes": [{"name": "chat", "weight": "heavy"}]}})");
  ASSERT_TRUE(mistyped.has_value());
  EXPECT_FALSE(ScenarioFromJson(*mistyped, &error).has_value());
  EXPECT_NE(error.find("weight"), std::string::npos);

  auto not_object = Json::Parse(R"({"study": "serve", "serve": {"classes": [7]}})");
  ASSERT_TRUE(not_object.has_value());
  EXPECT_FALSE(ScenarioFromJson(*not_object, &error).has_value());
  EXPECT_NE(error.find("must be an object"), std::string::npos);
}

TEST(Scenario, SummarizeClassMixNormalizesWeights) {
  auto mix = SummarizeClassMix(TwoClassMix());
  ASSERT_EQ(mix.shares.size(), 2u);
  EXPECT_DOUBLE_EQ(mix.shares[0] + mix.shares[1], 1.0);
  EXPECT_DOUBLE_EQ(mix.shares[0], 0.7);
  EXPECT_DOUBLE_EQ(mix.mean_prompt_tokens, 0.7 * 1500 + 0.3 * 4000);
  EXPECT_DOUBLE_EQ(mix.mean_output_tokens, 0.7 * 256 + 0.3 * 900);
  EXPECT_TRUE(SummarizeClassMix({}).shares.empty());
}

FaultKnobs ChurnyFaultKnobs() {
  FaultKnobs faults;
  faults.afr = 0.09;
  faults.mttr_hours = 6.0;
  faults.spare_activation_minutes = 2.0;
  faults.hot_spares = 2;
  faults.retry_policy = FaultRetryPolicy::kRetryWithBudget;
  faults.retry_budget = 2;
  faults.target_attainment = 0.95;
  return faults;
}

TEST(Scenario, FaultKnobsRoundTripThroughJson) {
  ServeKnobs serve;
  serve.faults = ChurnyFaultKnobs();
  ServeSweepKnobs sweep;
  sweep.loads = {0.4, 0.8};
  sweep.faults = ChurnyFaultKnobs();
  for (const Scenario& original :
       {*ScenarioBuilder(StudyKind::kServe).Serve(serve).Build(),
        *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(sweep).Build()}) {
    Json j = ScenarioToJson(original);
    std::string error;
    auto reparsed = Json::Parse(j.Dump());
    ASSERT_TRUE(reparsed.has_value());
    auto restored = ScenarioFromJson(*reparsed, &error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_TRUE(*restored == original) << ScenarioToJson(*restored).Dump();
  }
  // A default faults block serializes to nothing at all, so fault-free
  // scenario files and reports stay byte-identical to the pre-fault engine.
  Json j = ScenarioToJson(*ScenarioBuilder(StudyKind::kServe).Build());
  EXPECT_EQ(j.Dump().find("faults"), std::string::npos);
  EXPECT_TRUE(FaultKnobsAreDefault(FaultKnobs{}));
  // The gate is field-by-field, not enabled(): an afr-0 block with spares
  // set still round-trips.
  ServeKnobs tweaked;
  tweaked.faults.hot_spares = 1;
  EXPECT_FALSE(FaultKnobsAreDefault(tweaked.faults));
  Json k = ScenarioToJson(*ScenarioBuilder(StudyKind::kServe).Serve(tweaked).Build());
  EXPECT_NE(k.Dump().find("hot_spares"), std::string::npos);
}

FleetKnobs FancyFleetKnobs() {
  FleetKnobs fleet;
  FleetCandidate big;
  big.name = "baseline";
  big.gpu = "H100";
  FleetCandidate lite;
  lite.name = "lite-fed";
  lite.gpu = "H100";
  lite.split = 4;
  lite.mem_bw_multiplier = 2.0;
  lite.net_bw_multiplier = 1.5;
  lite.overclock = 1.1;
  lite.prefill_instances = 2;
  lite.decode_instances = 3;
  fleet.candidates = {big, lite};
  fleet.loads = {0.4, 0.8};
  fleet.horizon_s = 25.0;
  fleet.prompt_sigma = 0.3;
  fleet.output_sigma = 0.2;
  fleet.seed = 0xF1EE7;  // any non-default value
  fleet.hbm_usd_per_gb = 10.0;
  fleet.gpu_price_multiplier = 6.0;
  fleet.depreciation_months = 36.0;
  fleet.electricity_usd_per_kwh = 0.11;
  fleet.gpu_utilization = 0.6;
  return fleet;
}

TEST(Scenario, FleetKnobsRoundTripThroughJson) {
  Scenario original =
      *ScenarioBuilder(StudyKind::kFleetCompare).Fleet(FancyFleetKnobs()).Build();
  Json j = ScenarioToJson(original);
  std::string error;
  auto reparsed = Json::Parse(j.Dump());
  ASSERT_TRUE(reparsed.has_value());
  auto restored = ScenarioFromJson(*reparsed, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original) << ScenarioToJson(*restored).Dump();
  // The explicit loads list survives, and the range fields still emit.
  EXPECT_EQ(restored->fleet.loads, original.fleet.loads);
  EXPECT_EQ(restored->fleet.candidates.size(), 2u);
  EXPECT_EQ(restored->fleet.candidates[1].overclock, 1.1);
}

TEST(Scenario, FleetBlockOnlySerializesForFleetStudies) {
  // The fleet block is study-specific: no other study's serialized form
  // grows a "fleet" key, so every pre-fleet scenario file and report stays
  // byte-identical.
  for (StudyKind kind : {StudyKind::kSearch, StudyKind::kFig3a, StudyKind::kFig3b,
                         StudyKind::kDesign, StudyKind::kMcSim, StudyKind::kYield,
                         StudyKind::kDerive, StudyKind::kServe, StudyKind::kServeSweep}) {
    Json j = ScenarioToJson(*ScenarioBuilder(kind).Build());
    EXPECT_EQ(j.Dump().find("fleet"), std::string::npos) << ToString(kind);
  }
}

TEST(Scenario, FleetValidationRejectsBadCatalogs) {
  std::string error;
  // An empty catalog is the fleet study's "no GPUs".
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kFleetCompare).Build(&error).has_value());
  EXPECT_NE(error.find("fleet.candidates"), std::string::npos);

  FleetKnobs fleet = FancyFleetKnobs();
  fleet.candidates[1].name = "baseline";  // duplicate names would alias RNG streams
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kFleetCompare).Fleet(fleet).Build(&error).has_value());
  EXPECT_NE(error.find("duplicate fleet candidate name"), std::string::npos);

  fleet = FancyFleetKnobs();
  fleet.candidates[0].split = 0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kFleetCompare).Fleet(fleet).Build(&error).has_value());
  EXPECT_NE(error.find("split"), std::string::npos);

  fleet = FancyFleetKnobs();
  fleet.gpu_utilization = 1.5;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kFleetCompare).Fleet(fleet).Build(&error).has_value());
  EXPECT_NE(error.find("gpu_utilization"), std::string::npos);

  // The explicit gpus list belongs to the other studies.
  fleet = FancyFleetKnobs();
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kFleetCompare)
                   .Gpu("H100")
                   .Fleet(fleet)
                   .Build(&error)
                   .has_value());
  EXPECT_NE(error.find("fleet.candidates"), std::string::npos);
}

TEST(Scenario, FleetReaderSuggestsClosestKey) {
  std::string error;
  auto typo = Json::Parse(
      R"({"study": "fleet-compare",
          "fleet": {"candidates": [{"name": "a", "splt": 4}]}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("splt"), std::string::npos);
  EXPECT_NE(error.find("did you mean 'split'?"), std::string::npos);

  auto knob_typo = Json::Parse(
      R"({"study": "fleet-compare",
          "fleet": {"candidates": [{"name": "a"}], "horizons_s": 10}})");
  ASSERT_TRUE(knob_typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*knob_typo, &error).has_value());
  EXPECT_NE(error.find("did you mean 'horizon_s'?"), std::string::npos);
}

TEST(Scenario, FaultKnobsValidationRejectsBadValues) {
  // Every field is checked even when the block is disabled: a latent
  // nonsense value should fail now, not when someone flips afr on.
  FaultKnobs knobs;
  knobs.mttr_hours = -1.0;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("mttr_hours"),
            std::string::npos);
  knobs = FaultKnobs{};
  knobs.afr = -0.1;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("afr"),
            std::string::npos);
  knobs = FaultKnobs{};
  knobs.target_attainment = 1.5;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("target_attainment"),
            std::string::npos);
  knobs = FaultKnobs{};
  knobs.retry_policy = FaultRetryPolicy::kRetryWithBudget;
  knobs.retry_budget = 0;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("retry_budget"),
            std::string::npos);
  // The scenario validator runs the same checks on the embedded block.
  std::string error;
  ServeKnobs serve;
  serve.faults.spare_activation_minutes = -5.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServe).Serve(serve).Build(&error).has_value());
  EXPECT_NE(error.find("serve.faults"), std::string::npos);
}

TEST(Scenario, RobustnessKnobsRoundTripAndEmitNoKeysAtDefaults) {
  // The three-axis knobs (domains, degradation, shedding) round-trip like
  // the original block...
  ServeKnobs serve;
  serve.faults = ChurnyFaultKnobs();
  serve.faults.domain_gpus = 16.0;
  serve.faults.domain_afr = 40000.0;
  serve.faults.domain_mttr_hours = 0.01;
  serve.faults.degrade_afr = 30000.0;
  serve.faults.degrade_multiplier = 1.8;
  serve.faults.degrade_minutes = 0.5;
  serve.faults.shed_queue_depth = 8;
  serve.faults.shed_ttft_deadline_s = 2.0;
  Scenario original = *ScenarioBuilder(StudyKind::kServe).Serve(serve).Build();
  Json j = ScenarioToJson(original);
  std::string error;
  auto reparsed = Json::Parse(j.Dump());
  ASSERT_TRUE(reparsed.has_value());
  auto restored = ScenarioFromJson(*reparsed, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original) << ScenarioToJson(*restored).Dump();
  // ...but a pre-domain faults block serializes to exactly the pre-domain
  // keys: none of the new fields emit at their defaults, so every existing
  // scenario file and report stays byte-identical.
  ServeKnobs old_style;
  old_style.faults = ChurnyFaultKnobs();
  Json old_json = ScenarioToJson(*ScenarioBuilder(StudyKind::kServe).Serve(old_style).Build());
  std::string dump = old_json.Dump();
  for (const char* key : {"domain_gpus", "domain_afr", "domain_mttr_hours",
                          "degrade_afr", "degrade_multiplier", "degrade_minutes",
                          "shed_queue_depth", "shed_ttft_deadline_s"}) {
    EXPECT_EQ(dump.find(key), std::string::npos) << key;
  }
  EXPECT_FALSE(FaultKnobsAreDefault(serve.faults));
  // A block that differs from defaults only in a new knob still serializes.
  FaultKnobs shed_only;
  shed_only.shed_queue_depth = 4;
  EXPECT_FALSE(FaultKnobsAreDefault(shed_only));
}

TEST(Scenario, RobustnessKnobValidationRejectsBadValues) {
  // Negative retry budget is rejected even under policies that ignore it.
  FaultKnobs knobs;
  knobs.retry_budget = -1;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("retry_budget"),
            std::string::npos);
  // A spare that activates slower than the repair itself never activates:
  // rejected whenever hot spares are configured.
  knobs = FaultKnobs{};
  knobs.hot_spares = 1;
  knobs.mttr_hours = 0.02;
  knobs.spare_activation_minutes = 1.2;  // == repair time; must be strictly less
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("spare_activation_minutes"),
            std::string::npos);
  knobs.spare_activation_minutes = 1.1;
  EXPECT_EQ(ValidateFaultKnobs(knobs, "serve.faults"), "");
  // Domain churn needs a domain size to map instances onto.
  knobs = FaultKnobs{};
  knobs.domain_afr = 100.0;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("domain_gpus"),
            std::string::npos);
  knobs.domain_gpus = 16.0;
  EXPECT_EQ(ValidateFaultKnobs(knobs, "serve.faults"), "");
  // Degradation must slow things down, and must have a window length.
  knobs = FaultKnobs{};
  knobs.degrade_multiplier = 0.5;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("degrade_multiplier"),
            std::string::npos);
  knobs = FaultKnobs{};
  knobs.degrade_afr = 10.0;
  knobs.degrade_minutes = 0.5;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("degrade_multiplier"),
            std::string::npos);
  knobs.degrade_multiplier = 2.0;
  EXPECT_EQ(ValidateFaultKnobs(knobs, "serve.faults"), "");
  // Shedding knobs must be non-negative.
  knobs = FaultKnobs{};
  knobs.shed_queue_depth = -3;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("shed_queue_depth"),
            std::string::npos);
  knobs = FaultKnobs{};
  knobs.shed_ttft_deadline_s = -1.0;
  EXPECT_NE(ValidateFaultKnobs(knobs, "serve.faults").find("shed_ttft_deadline_s"),
            std::string::npos);
  // The new keys parse from JSON and typos are caught.
  std::string error;
  auto parsed = Json::Parse(
      R"({"study": "serve", "serve": {"faults": {"afr": 100, "domain_gpus": 16,
          "domain_afr": 200, "degrade_afr": 50, "degrade_multiplier": 2,
          "degrade_minutes": 1, "shed_queue_depth": 8}}})");
  ASSERT_TRUE(parsed.has_value());
  auto scenario = ScenarioFromJson(*parsed, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_DOUBLE_EQ(scenario->serve.faults.domain_gpus, 16.0);
  EXPECT_EQ(scenario->serve.faults.shed_queue_depth, 8);
  auto typo = Json::Parse(
      R"({"study": "serve", "serve": {"faults": {"domain_gpu": 16}}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("domain_gpu"), std::string::npos);
}

TEST(Scenario, FaultJsonIsStrictWithSuggestions) {
  std::string error;
  auto typo = Json::Parse(
      R"({"study": "serve", "serve": {"faults": {"afrr": 0.09}}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("afrr"), std::string::npos);

  auto bad_policy = Json::Parse(
      R"({"study": "serve", "serve": {"faults": {"retry_policy": "rety"}}})");
  ASSERT_TRUE(bad_policy.has_value());
  EXPECT_FALSE(ScenarioFromJson(*bad_policy, &error).has_value());
  EXPECT_NE(error.find("unknown retry policy"), std::string::npos);
  EXPECT_NE(error.find("did you mean 'retry'"), std::string::npos);

  auto mistyped = Json::Parse(
      R"({"study": "serve", "serve": {"faults": {"hot_spares": "two"}}})");
  ASSERT_TRUE(mistyped.has_value());
  EXPECT_FALSE(ScenarioFromJson(*mistyped, &error).has_value());
  EXPECT_NE(error.find("hot_spares"), std::string::npos);
}

TEST(Scenario, ParseFaultKnobsAcceptsBareAndWrappedForms) {
  std::string error;
  auto bare = Json::Parse(R"({"afr": 0.09, "hot_spares": 1})");
  ASSERT_TRUE(bare.has_value());
  auto knobs = ParseFaultKnobs(*bare, &error);
  ASSERT_TRUE(knobs.has_value()) << error;
  EXPECT_DOUBLE_EQ(knobs->afr, 0.09);
  EXPECT_EQ(knobs->hot_spares, 1);

  auto wrapped = Json::Parse(R"({"faults": {"retry_policy": "drop"}})");
  ASSERT_TRUE(wrapped.has_value());
  auto wrapped_knobs = ParseFaultKnobs(*wrapped, &error);
  ASSERT_TRUE(wrapped_knobs.has_value()) << error;
  EXPECT_EQ(wrapped_knobs->retry_policy, FaultRetryPolicy::kDrop);

  auto bad = Json::Parse(R"(["not", "a", "faults", "block"])");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParseFaultKnobs(*bad, &error).has_value());
}

TEST(Scenario, ParseRequestClassesAcceptsArrayAndWrappedForms) {
  std::string error;
  auto arr = Json::Parse(R"([{"name": "a"}, {"name": "b", "weight": 2}])");
  ASSERT_TRUE(arr.has_value());
  auto classes = ParseRequestClasses(*arr, &error);
  ASSERT_TRUE(classes.has_value()) << error;
  ASSERT_EQ(classes->size(), 2u);
  EXPECT_EQ((*classes)[1].name, "b");
  EXPECT_DOUBLE_EQ((*classes)[1].weight, 2.0);

  auto wrapped = Json::Parse(R"({"classes": [{"name": "a"}]})");
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_TRUE(ParseRequestClasses(*wrapped, &error).has_value()) << error;

  auto bad = Json::Parse(R"("not a mix")");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParseRequestClasses(*bad, &error).has_value());
}

#ifdef LITEGPU_SCENARIO_DIR
TEST(Scenario, EveryCheckedInExampleLoadsValidatesAndRoundTrips) {
  // The docs cross-check: every scenario file the repo ships must load,
  // validate, and survive a JSON round trip — so docs/scenarios.md can't
  // document fields the parser rejects, and examples can't rot. The CI
  // docs checker (tools/check_docs.sh) covers the reverse direction (every
  // example and knob field is mentioned in the docs).
  size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::string(LITEGPU_SCENARIO_DIR))) {
    if (entry.path().extension() != ".json") {
      continue;
    }
    ++seen;
    std::string error;
    auto scenarios = LoadScenarioFile(entry.path().string(), &error);
    ASSERT_TRUE(scenarios.has_value()) << entry.path() << ": " << error;
    for (const Scenario& s : *scenarios) {
      EXPECT_EQ(s.Validate(), "") << entry.path();
      auto reparsed = Json::Parse(ScenarioToJson(s).Dump(), &error);
      ASSERT_TRUE(reparsed.has_value()) << entry.path() << ": " << error;
      auto restored = ScenarioFromJson(*reparsed, &error);
      ASSERT_TRUE(restored.has_value()) << entry.path() << ": " << error;
      EXPECT_TRUE(*restored == s) << entry.path();
    }
  }
  EXPECT_GE(seen, 10u);  // one per study kind + the batch suite + multitenant
}
#endif

TEST(Scenario, MakeSearchOptionsCarriesWorkloadAndExec) {
  Scenario s = ScenarioBuilder(StudyKind::kSearch)
                   .PromptTokens(2000)
                   .TbtSlo(0.030)
                   .KvPolicy(KvShardPolicy::kIdealShard)
                   .MaxBatch(128)
                   .Threads(3)
                   .Peek();
  SearchOptions options = s.MakeSearchOptions();
  EXPECT_EQ(options.workload.prompt_tokens, 2000);
  EXPECT_DOUBLE_EQ(options.workload.tbt_slo_s, 0.030);
  EXPECT_EQ(options.kv_policy, KvShardPolicy::kIdealShard);
  EXPECT_EQ(options.max_batch, 128);
  EXPECT_EQ(options.exec.threads, 3);
}

}  // namespace
}  // namespace litegpu
