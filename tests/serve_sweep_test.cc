#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/perf/model.h"
#include "src/perf/step_table.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

// --- grid expansion ---

TEST(ServeSweepKnobs, DefaultGridIsTenLoadPoints) {
  ServeSweepKnobs knobs;
  std::vector<double> grid = knobs.GridPoints();
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.1);
  EXPECT_NEAR(grid.back(), 1.0, 1e-9);
  EXPECT_FALSE(knobs.IsRateGrid());
}

TEST(ServeSweepKnobs, ExplicitListsOverrideTheRange) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.5, 0.9};
  EXPECT_EQ(knobs.GridPoints(), (std::vector<double>{0.5, 0.9}));
  knobs.rates = {10.0, 20.0, 30.0};
  EXPECT_TRUE(knobs.IsRateGrid());
  EXPECT_EQ(knobs.GridPoints(), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(ServeSweepKnobs, RangeIncludesTheEndpoint) {
  ServeSweepKnobs knobs;
  knobs.load_lo = 0.1;
  knobs.load_hi = 1.0;
  knobs.load_step = 0.05;
  EXPECT_EQ(knobs.GridPoints().size(), 19u);
  knobs.load_hi = knobs.load_lo;  // degenerate range: one point
  EXPECT_EQ(knobs.GridPoints().size(), 1u);
}

// --- scenario plumbing ---

TEST(Scenario, ServeSweepRoundTripsThroughJson) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.25, 0.75};
  knobs.horizon_s = 15.0;
  knobs.prefill_instances = 2;
  knobs.decode_instances = 3;
  knobs.seed = 0xFEEDF00D;
  Scenario original = *ScenarioBuilder(StudyKind::kServeSweep)
                           .Model("Llama3-70B")
                           .Gpu("Lite+MemBW")
                           .ServeSweep(knobs)
                           .Build();
  std::string error;
  auto restored = ScenarioFromJson(ScenarioToJson(original), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original);
  EXPECT_EQ(restored->sweep.GridPoints(), knobs.loads);
}

TEST(Scenario, ServeSweepValidationRejectsBadGrids) {
  std::string error;
  ServeSweepKnobs knobs;
  knobs.load_step = 0.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("load_step"), std::string::npos);

  knobs = ServeSweepKnobs{};
  knobs.loads = {0.5, -0.1};
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("positive"), std::string::npos);

  knobs = ServeSweepKnobs{};
  knobs.horizon_s = 0.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("horizon_s"), std::string::npos);

  // Absurd ranges must not expand: past the 1e6-point cap the grid comes
  // back empty and validation rejects it instead of the int cast
  // overflowing or the vector allocation aborting the process.
  knobs = ServeSweepKnobs{};
  knobs.load_lo = 1e-6;
  knobs.load_hi = 1e9;
  knobs.load_step = 1e-6;
  EXPECT_TRUE(knobs.GridPoints().empty());
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("grid is empty"), std::string::npos);

  // Non-finite grid points must be rejected: an inf/NaN arrival rate would
  // spin the workload generator forever.
  knobs = ServeSweepKnobs{};
  knobs.loads = {0.5, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("finite"), std::string::npos);
  knobs.loads = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());

  // Typos inside the sweep block fail loudly, like every other block.
  auto typo = Json::Parse(R"({"study": "serve-sweep", "sweep": {"laods": [0.5]}})");
  ASSERT_TRUE(typo.has_value());
  EXPECT_FALSE(ScenarioFromJson(*typo, &error).has_value());
  EXPECT_NE(error.find("laods"), std::string::npos);
}

// --- the study ---

TEST(Runner, ServeSweepRunsEveryPointAndFindsTheKnee) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.5, 0.9};
  knobs.horizon_s = 10.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& sweep = std::get<ServeSweepReport>(report.payload);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep.points[0].load, 0.5);
  EXPECT_DOUBLE_EQ(sweep.points[1].load, 0.9);
  EXPECT_LT(sweep.points[0].arrival_rate_per_s, sweep.points[1].arrival_rate_per_s);
  for (const auto& p : sweep.points) {
    EXPECT_GT(p.admitted_requests, 0);
    EXPECT_EQ(p.completed_requests, p.admitted_requests);  // drains
    EXPECT_GT(p.goodput_tokens_per_s, 0.0);
    EXPECT_GT(p.capacity_agreement, 0.5);
    EXPECT_GT(p.prefill_instances, 0);
  }
  // Each point owns a distinct RNG stream derived from the sweep seed, and
  // the reported value survives JSON's double-backed numbers exactly so
  // `litegpu serve --seed <reported>` reproduces the point.
  EXPECT_NE(sweep.points[0].seed, sweep.points[1].seed);
  for (const auto& p : sweep.points) {
    EXPECT_LT(p.seed, uint64_t{1} << 53);
    EXPECT_EQ(Json(p.seed).AsUint64(), p.seed);
  }
  // The knee is the highest-rate point meeting both SLOs (if any); below
  // saturation both points should qualify here.
  ASSERT_GE(sweep.knee_index, 0);
  EXPECT_EQ(sweep.knee_index, 1);
  EXPECT_TRUE(sweep.points[1].slo_ok);
  // Rendering covers the sweep payload.
  EXPECT_NE(report.ToText().find("Serve sweep"), std::string::npos);
  EXPECT_NE(report.ToJson().Dump().find("knee"), std::string::npos);
}

TEST(Runner, ServeSweepEmptyPointNeverMeetsSlosOrBecomesTheKnee) {
  // A rate so low the Poisson workload generates nothing: zero percentiles
  // must not vacuously satisfy the SLOs, and the knee must stay unset
  // rather than reporting an empty point as the capacity answer.
  ServeSweepKnobs knobs;
  knobs.rates = {0.001};
  knobs.horizon_s = 5.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& sweep = std::get<ServeSweepReport>(report.payload);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_EQ(sweep.points[0].completed_requests, 0);
  EXPECT_FALSE(sweep.points[0].slo_ok);
  EXPECT_EQ(sweep.knee_index, -1);
  EXPECT_NE(report.ToText().find("no load point meets the SLOs"), std::string::npos);
}

TEST(Runner, ServeSweepReportIsBitIdenticalAtAnyThreadCount) {
  ServeSweepKnobs knobs;
  knobs.load_lo = 0.3;
  knobs.load_hi = 0.9;
  knobs.load_step = 0.2;
  knobs.horizon_s = 8.0;
  Scenario serial = *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Threads(1).Build();
  RunReport reference = Runner().Run(serial);
  ASSERT_TRUE(reference.ok) << reference.error;
  for (int threads : {0, 2, 4}) {  // 0 = hardware concurrency
    Scenario parallel = serial;
    parallel.exec.threads = threads;
    RunReport report = Runner().Run(parallel);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.ToJson().Dump(), reference.ToJson().Dump()) << threads;
  }
}

// The tentpole identity claim on the production deployment: the table-
// driven fast path and the PerfModel-backed callback path agree — TTFT,
// goodput, and utilization bit-identical, TBT percentiles within one
// histogram bin — across load levels.
TEST(ServeSweep, FastPathMatchesCallbackPathAcrossLoads) {
  TransformerSpec model = Llama3_70B();
  GpuSpec gpu = H100();
  SearchOptions options;
  PrefillSearchResult prefill = SearchPrefill(model, gpu, options);
  DecodeSearchResult decode = SearchDecode(model, gpu, options);
  ASSERT_TRUE(prefill.found);
  ASSERT_TRUE(decode.found);
  PerfModel prefill_model(model, gpu, MakeTpPlan(model, prefill.best.tp_degree).value(),
                          options.workload, options.engine);
  PerfModel decode_model(model, gpu, MakeTpPlan(model, decode.best.tp_degree).value(),
                         options.workload, options.engine);
  ServeCallbacks callbacks = MakePerfModelCallbacks(prefill_model, decode_model,
                                                    prefill.best.batch, decode.best.batch);
  StepTimeTable table = StepTimeTable::Build(prefill_model, decode_model,
                                             prefill.best.batch, decode.best.batch);

  for (double load : {0.5, 0.95}) {
    WorkloadSpec spec;
    spec.arrival_rate_per_s =
        load * decode.best.result.tokens_per_s / spec.median_output_tokens;
    spec.duration_s = 10.0;
    auto requests = GenerateWorkload(spec);
    ServeClusterConfig cluster;
    cluster.prefill_instances = 4;
    cluster.decode_instances = 1;
    ServeMetrics slow = RunServeSimulation(requests, cluster, callbacks);
    ServeMetrics fast = RunServeSimulation(requests, cluster, table);
    EXPECT_EQ(slow.ttft_s.Median(), fast.ttft_s.Median()) << load;
    EXPECT_EQ(slow.ttft_s.P99(), fast.ttft_s.P99()) << load;
    EXPECT_EQ(slow.decode_tokens_per_s, fast.decode_tokens_per_s) << load;
    EXPECT_EQ(slow.prefill_utilization, fast.prefill_utilization) << load;
    EXPECT_EQ(slow.decode_utilization, fast.decode_utilization) << load;
    double bin = slow.tbt_s.bin_width();
    EXPECT_NEAR(slow.tbt_s.Median(), fast.tbt_s.Median(), bin) << load;
    EXPECT_NEAR(slow.tbt_s.P95(), fast.tbt_s.P95(), bin) << load;
    EXPECT_NEAR(slow.tbt_s.P99(), fast.tbt_s.P99(), bin) << load;
  }
}

}  // namespace
}  // namespace litegpu
