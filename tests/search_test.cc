#include <gtest/gtest.h>

#include "src/core/search.h"
#include "src/hw/catalog.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

SearchOptions FastOptions() {
  SearchOptions options;
  options.max_batch = 8192;
  return options;
}

TEST(Search, PrefillFindsConfigForAllCaseStudyModelsOnH100) {
  for (const auto& model : CaseStudyModels()) {
    PrefillSearchResult r = SearchPrefill(model, H100(), FastOptions());
    EXPECT_TRUE(r.found) << model.name;
    EXPECT_GE(r.best.tp_degree, 1);
    EXPECT_LE(r.best.tp_degree, H100().max_gpus);
    EXPECT_TRUE(r.best.result.meets_slo);
  }
}

TEST(Search, DecodeFindsConfigForAllCaseStudyModelsOnH100) {
  for (const auto& model : CaseStudyModels()) {
    DecodeSearchResult r = SearchDecode(model, H100(), FastOptions());
    EXPECT_TRUE(r.found) << model.name;
    EXPECT_TRUE(r.best.result.meets_slo) << model.name;
    EXPECT_LE(r.best.result.tbt_s, 0.050) << model.name;
  }
}

TEST(Search, BestBatchIsSloOrCapacityBoundary) {
  TransformerSpec model = Llama3_70B();
  DecodeSearchResult r = SearchDecode(model, H100(), FastOptions());
  ASSERT_TRUE(r.found);
  // One more sequence must violate either the SLO or the memory capacity.
  auto plan = MakeTpPlan(model, r.best.tp_degree).value();
  SearchOptions options = FastOptions();
  DecodeResult next = EvaluateDecode(model, H100(), plan, r.best.batch + 1, options.workload,
                                     options.engine);
  EXPECT_TRUE(!next.feasible || !next.meets_slo);
}

TEST(Search, MatchesBruteForceSmallGrid) {
  // Shrink the problem so brute force is cheap: Llama3-8B with tight SLOs.
  TransformerSpec model = Llama3_8B();
  SearchOptions options;
  options.workload.tbt_slo_s = 0.004;  // forces a small batch
  options.max_batch = 256;
  DecodeSearchResult fast = SearchDecode(model, H100(), options);
  auto brute = BruteForceDecodeBest(model, H100(), options, 256);
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(fast.best.tp_degree, brute->tp_degree);
  EXPECT_EQ(fast.best.batch, brute->batch);
  EXPECT_DOUBLE_EQ(fast.best.result.tokens_per_s_per_sm,
                   brute->result.tokens_per_s_per_sm);
}

TEST(Search, PrefillMatchesBruteForceSmallGrid) {
  TransformerSpec model = Llama3_8B();
  SearchOptions options;
  options.workload.ttft_slo_s = 0.1;
  options.max_batch = 64;
  PrefillSearchResult fast = SearchPrefill(model, H100(), options);
  auto brute = BruteForcePrefillBest(model, H100(), options, 64);
  ASSERT_TRUE(fast.found);
  ASSERT_TRUE(brute.has_value());
  EXPECT_EQ(fast.best.tp_degree, brute->tp_degree);
  EXPECT_EQ(fast.best.batch, brute->batch);
}

TEST(Search, InfeasibleWhenSloImpossiblyTight) {
  TransformerSpec model = Llama3_405B();
  SearchOptions options;
  options.workload.tbt_slo_s = 1e-6;
  DecodeSearchResult r = SearchDecode(model, H100(), options);
  EXPECT_FALSE(r.found);
}

TEST(Search, PerDegreeResultsCoverFeasibleDegrees) {
  TransformerSpec model = Llama3_70B();
  DecodeSearchResult r = SearchDecode(model, H100(), FastOptions());
  // H100 max 8: degrees 1,2,4,8 all fit Llama3-70B weights except degree 1
  // (70 GB weights + KV > 76 GB usable): at least 2,4,8 appear.
  EXPECT_GE(r.per_degree.size(), 3u);
  for (const auto& p : r.per_degree) {
    EXPECT_TRUE(p.result.meets_slo);
    EXPECT_GT(p.batch, 0);
  }
}

TEST(Search, LiteUsesMoreGpusThanH100For405B) {
  TransformerSpec model = Llama3_405B();
  DecodeSearchResult h100 = SearchDecode(model, H100(), FastOptions());
  DecodeSearchResult lite = SearchDecode(model, Lite(), FastOptions());
  ASSERT_TRUE(h100.found);
  ASSERT_TRUE(lite.found);
  // 405B weights only fit 32 Lite GPUs (20 GB each).
  EXPECT_EQ(lite.best.tp_degree, 32);
  EXPECT_LE(h100.best.tp_degree, 8);
}

TEST(Search, IdealShardPolicyNeverWorseForDecode) {
  TransformerSpec model = Llama3_405B();
  SearchOptions replicate = FastOptions();
  SearchOptions ideal = FastOptions();
  ideal.kv_policy = KvShardPolicy::kIdealShard;
  DecodeSearchResult a = SearchDecode(model, Lite(), replicate);
  DecodeSearchResult b = SearchDecode(model, Lite(), ideal);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_GE(b.best.result.tokens_per_s_per_sm, a.best.result.tokens_per_s_per_sm);
}

TEST(Search, MultiThreadedSweepIsBitIdenticalToSerial) {
  for (const auto& model : CaseStudyModels()) {
    SearchOptions serial = FastOptions();
    serial.exec.threads = 1;
    SearchOptions parallel = FastOptions();
    parallel.exec.threads = 4;
    DecodeSearchResult a = SearchDecode(model, Lite(), serial);
    DecodeSearchResult b = SearchDecode(model, Lite(), parallel);
    ASSERT_EQ(a.found, b.found) << model.name;
    ASSERT_EQ(a.per_degree.size(), b.per_degree.size()) << model.name;
    for (size_t i = 0; i < a.per_degree.size(); ++i) {
      EXPECT_EQ(a.per_degree[i].tp_degree, b.per_degree[i].tp_degree);
      EXPECT_EQ(a.per_degree[i].batch, b.per_degree[i].batch);
      EXPECT_EQ(a.per_degree[i].result.tokens_per_s_per_sm,
                b.per_degree[i].result.tokens_per_s_per_sm);  // bitwise
    }
    EXPECT_EQ(a.best.tp_degree, b.best.tp_degree) << model.name;
    EXPECT_EQ(a.best.batch, b.best.batch) << model.name;
    EXPECT_EQ(a.best.result.tokens_per_s_per_sm, b.best.result.tokens_per_s_per_sm);

    PrefillSearchResult pa = SearchPrefill(model, Lite(), serial);
    PrefillSearchResult pb = SearchPrefill(model, Lite(), parallel);
    ASSERT_EQ(pa.found, pb.found) << model.name;
    EXPECT_EQ(pa.best.tp_degree, pb.best.tp_degree) << model.name;
    EXPECT_EQ(pa.best.batch, pb.best.batch) << model.name;
    EXPECT_EQ(pa.best.result.tokens_per_s_per_sm, pb.best.result.tokens_per_s_per_sm);
  }
}

TEST(Search, MultiThreadedBruteForceMatchesSerial) {
  TransformerSpec model = Llama3_8B();
  SearchOptions serial;
  serial.workload.tbt_slo_s = 0.004;
  serial.max_batch = 256;
  serial.exec.threads = 1;
  SearchOptions parallel = serial;
  parallel.exec.threads = 4;
  auto a = BruteForceDecodeBest(model, H100(), serial, 256);
  auto b = BruteForceDecodeBest(model, H100(), parallel, 256);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->tp_degree, b->tp_degree);
  EXPECT_EQ(a->batch, b->batch);
  EXPECT_EQ(a->result.tokens_per_s_per_sm, b->result.tokens_per_s_per_sm);
}

TEST(Search, CapacityOffAllowsLargerBatches) {
  TransformerSpec model = Llama3_70B();
  SearchOptions on = FastOptions();
  SearchOptions off = FastOptions();
  off.workload.enforce_memory_capacity = false;
  DecodeSearchResult a = SearchDecode(model, Lite(), on);
  DecodeSearchResult b = SearchDecode(model, Lite(), off);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_GE(b.best.result.tokens_per_s_per_sm, a.best.result.tokens_per_s_per_sm);
}

}  // namespace
}  // namespace litegpu
