#include <gtest/gtest.h>

#include "src/util/json.h"

namespace litegpu {
namespace {

TEST(Json, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_EQ(Json(true).AsBool(false), true);
  EXPECT_DOUBLE_EQ(Json(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Json(42).AsInt(), 42);
  EXPECT_EQ(Json("hi").AsString(), "hi");
  // Type mismatches fall back.
  EXPECT_EQ(Json("hi").AsInt(-1), -1);
  EXPECT_EQ(Json(1.0).AsString("dflt"), "dflt");
}

TEST(Json, ObjectKeysKeepInsertionOrderAndSetReplaces) {
  Json j = Json::Object();
  j.Set("z", 1).Set("a", 2).Set("z", 3);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.members()[0].first, "z");
  EXPECT_EQ(j.members()[1].first, "a");
  EXPECT_EQ(j.GetInt("z", 0), 3);
  EXPECT_EQ(j.Dump(0), "{\"z\":3,\"a\":2}");
}

TEST(Json, TolerantGetters) {
  Json j = Json::Object();
  j.Set("n", 1.5).Set("s", "x").Set("b", true);
  EXPECT_DOUBLE_EQ(j.GetDouble("n", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(j.GetDouble("absent", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(j.GetDouble("s", 7.0), 7.0);  // type mismatch -> fallback
  EXPECT_EQ(j.GetString("b", "dflt"), "dflt");
  EXPECT_TRUE(j.GetBool("b", false));
}

TEST(Json, DumpParseRoundTripExact) {
  Json j = Json::Object();
  Json arr = Json::Array();
  arr.Append(1).Append(0.05).Append("text").Append(false).Append(Json());
  j.Set("values", std::move(arr))
      .Set("nested", Json::Object().Set("pi", 3.141592653589793))
      .Set("neg", -1234567.25)
      .Set("escaped", "line\nbreak \"quoted\" back\\slash");
  for (int indent : {0, 2, 4}) {
    auto parsed = Json::Parse(j.Dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent " << indent;
    EXPECT_TRUE(*parsed == j) << "indent " << indent;
  }
}

TEST(Json, NumbersPrintShortestRoundTrip) {
  EXPECT_EQ(Json(0.05).Dump(0), "0.05");
  EXPECT_EQ(Json(1500).Dump(0), "1500");
  EXPECT_EQ(Json(2e15).Dump(0), "2000000000000000");
  EXPECT_EQ(Json(-0.5).Dump(0), "-0.5");
  // A value with no short decimal form still round-trips exactly.
  double ugly = 0.1 + 0.2;
  auto parsed = Json::Parse(Json(ugly).Dump(0));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsDouble(), ugly);
}

TEST(Json, ParserToleratesCommentsAndTrailingCommas) {
  const char* text = R"({
    // a line comment
    "a": 1,  /* a block comment */
    "b": [1, 2, 3,],
  })";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->GetInt("a", 0), 1);
  ASSERT_NE(parsed->Find("b"), nullptr);
  EXPECT_EQ(parsed->Find("b")->size(), 3u);
}

TEST(Json, ParserRejectsMalformedInputWithLineNumbers) {
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(Json::Parse("{\n\"a\": 1\n\"b\": 2}", &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos);
  EXPECT_FALSE(Json::Parse("", &error).has_value());
  EXPECT_FALSE(Json::Parse("[1, 2] trailing", &error).has_value());
  EXPECT_FALSE(Json::Parse("{\"unterminated\": \"str", &error).has_value());
  EXPECT_FALSE(Json::Parse("12abc", &error).has_value());
}

TEST(Json, StringEscapes) {
  auto parsed = Json::Parse(R"("tab\there A\n")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "tab\there A\n");
}

TEST(Json, EqualityIsStructural) {
  Json a = Json::Object();
  a.Set("x", 1);
  Json b = Json::Object();
  b.Set("x", 1);
  EXPECT_TRUE(a == b);
  b.Set("x", 2);
  EXPECT_TRUE(a != b);
  // Key order matters (serialization identity).
  Json c = Json::Object();
  c.Set("x", 1).Set("y", 2);
  Json d = Json::Object();
  d.Set("y", 2).Set("x", 1);
  EXPECT_TRUE(c != d);
}

TEST(Json, ParseFileReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(Json::ParseFile("/nonexistent/path.json", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace litegpu
