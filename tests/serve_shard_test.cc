// Sharded serve points: a long single-point horizon split into independent
// sub-horizon replications, merged deterministically. Covers the merge
// algebra at the simulator level, the runner's determinism contract
// (shards <= 1 is byte-identical to serial; shards >= 2 is identical at
// any thread count), the validation fence around time-inhomogeneous
// features, and the scenario JSON round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

ServeCallbacks ConstantCallbacks() {
  ServeCallbacks cb;
  cb.prefill_time = [](int batch) { return 0.05 * batch; };
  cb.decode_step_time = [](int) { return 0.01; };
  cb.max_prefill_batch = 8;
  cb.max_decode_batch = 64;
  return cb;
}

ServeMetrics RunShard(double horizon_s, uint64_t seed) {
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 20.0;
  spec.duration_s = horizon_s;
  spec.median_prompt_tokens = 200;
  spec.median_output_tokens = 32;
  spec.seed = seed;
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = horizon_s;
  config.stream_ttft = true;  // shard mode always streams TTFT
  config.ttft_hist_hi_s = 60.0;
  return RunServeSimulation(GenerateWorkload(spec), config, ConstantCallbacks());
}

// --- substream seeds ---

TEST(ShardSubstreamSeed, ShardZeroInheritsTheBaseSeedAndLaterShardsDiverge) {
  const uint64_t seed = 0xC0FFEE;
  EXPECT_EQ(ShardSubstreamSeed(seed, 0), seed);
  std::vector<uint64_t> seen;
  for (size_t shard = 0; shard < 16; ++shard) {
    uint64_t s = ShardSubstreamSeed(seed, shard);
    EXPECT_EQ(s, ShardSubstreamSeed(seed, shard));  // pure in (seed, shard)
    for (uint64_t prev : seen) {
      EXPECT_NE(s, prev) << "shard " << shard;
    }
    // Shard substreams must not collide with class substreams of the same
    // base seed — a sharded multi-class point uses both families at once.
    for (size_t cls = 0; cls < 8; ++cls) {
      if (shard == 0 && cls == 0) {
        continue;  // both families anchor substream 0 at the base seed
      }
      EXPECT_NE(s, ClassSubstreamSeed(seed, cls));
    }
    seen.push_back(s);
  }
}

// --- merge algebra ---

TEST(MergeServeShardMetrics, MergeOfASingleShardIsThatShard) {
  ServeMetrics shard = RunShard(10.0, 0xC0FFEE);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.stream_ttft = true;
  ServeMetrics merged = MergeServeShardMetrics(config, {shard});
  EXPECT_EQ(merged.completed_requests, shard.completed_requests);
  EXPECT_EQ(merged.admitted_requests, shard.admitted_requests);
  EXPECT_EQ(merged.in_flight_at_horizon, shard.in_flight_at_horizon);
  EXPECT_EQ(merged.output_tokens, shard.output_tokens);
  EXPECT_EQ(merged.makespan_s, shard.makespan_s);
  EXPECT_EQ(merged.decode_tokens_per_s, shard.decode_tokens_per_s);
  EXPECT_EQ(merged.prefill_utilization, shard.prefill_utilization);
  EXPECT_EQ(merged.decode_utilization, shard.decode_utilization);
  EXPECT_EQ(merged.mean_decode_batch, shard.mean_decode_batch);
  EXPECT_TRUE(merged.ttft_streamed);
  EXPECT_EQ(merged.ttft_hist.count(), shard.ttft_hist.count());
  EXPECT_EQ(merged.ttft_hist.Quantile(0.5), shard.ttft_hist.Quantile(0.5));
  EXPECT_EQ(merged.tbt_s.count(), shard.tbt_s.count());
  EXPECT_EQ(merged.tbt_s.Quantile(0.99), shard.tbt_s.Quantile(0.99));
}

TEST(MergeServeShardMetrics, CountsSumAndRatiosRecomputeFromSummedAggregates) {
  ServeMetrics a = RunShard(10.0, ShardSubstreamSeed(1234, 0));
  ServeMetrics b = RunShard(10.0, ShardSubstreamSeed(1234, 1));
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.stream_ttft = true;
  ServeMetrics merged = MergeServeShardMetrics(config, {a, b});
  EXPECT_EQ(merged.completed_requests, a.completed_requests + b.completed_requests);
  EXPECT_EQ(merged.admitted_requests, a.admitted_requests + b.admitted_requests);
  EXPECT_EQ(merged.in_flight_at_horizon,
            a.in_flight_at_horizon + b.in_flight_at_horizon);
  EXPECT_DOUBLE_EQ(merged.output_tokens, a.output_tokens + b.output_tokens);
  // Sub-horizons run back to back in merged time: the makespan is the sum.
  EXPECT_DOUBLE_EQ(merged.makespan_s, a.makespan_s + b.makespan_s);
  // Ratios come from summed numerators and denominators, not averaged
  // per-shard ratios.
  EXPECT_DOUBLE_EQ(merged.decode_tokens_per_s,
                   (a.output_tokens + b.output_tokens) / merged.makespan_s);
  EXPECT_DOUBLE_EQ(merged.prefill_utilization,
                   (a.prefill_busy_s + b.prefill_busy_s) /
                       (2.0 * merged.makespan_s));
  EXPECT_DOUBLE_EQ(merged.mean_decode_batch,
                   (a.decode_batch_time_product + b.decode_batch_time_product) /
                       (a.decode_busy_s + b.decode_busy_s));
  // Histograms merge bin-wise: counts add, and the merged quantile is
  // bracketed by the shard quantiles.
  EXPECT_EQ(merged.ttft_hist.count(), a.ttft_hist.count() + b.ttft_hist.count());
  EXPECT_EQ(merged.tbt_s.count(), a.tbt_s.count() + b.tbt_s.count());
  double lo = std::min(a.ttft_hist.Quantile(0.5), b.ttft_hist.Quantile(0.5));
  double hi = std::max(a.ttft_hist.Quantile(0.5), b.ttft_hist.Quantile(0.5));
  EXPECT_GE(merged.ttft_hist.Quantile(0.5), lo);
  EXPECT_LE(merged.ttft_hist.Quantile(0.5), hi);
  // Merge order is shard-index order, so the merge itself is reproducible.
  ServeMetrics again = MergeServeShardMetrics(config, {a, b});
  EXPECT_EQ(again.ttft_hist.Quantile(0.99), merged.ttft_hist.Quantile(0.99));
  EXPECT_EQ(again.decode_tokens_per_s, merged.decode_tokens_per_s);
}

// --- runner determinism contract ---

TEST(Runner, ShardsOffAndOneAreByteIdentical) {
  ServeKnobs knobs;
  knobs.horizon_s = 20.0;
  Scenario off = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  knobs.shards = 1;
  Scenario one = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport a = Runner().Run(off);
  RunReport b = Runner().Run(one);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(Runner, ShardedServePointIsIdenticalAtAnyThreadCount) {
  for (int shards : {2, 8}) {
    ServeKnobs knobs;
    knobs.horizon_s = 24.0;
    knobs.shards = shards;
    Scenario serial =
        *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Threads(1).Build();
    Scenario parallel = serial;
    parallel.exec.threads = 0;  // hardware concurrency
    Scenario oversubscribed = serial;
    oversubscribed.exec.threads = 13;  // more threads than shards
    RunReport a = Runner().Run(serial);
    RunReport b = Runner().Run(parallel);
    RunReport c = Runner().Run(oversubscribed);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump()) << shards << " shards";
    EXPECT_EQ(a.ToJson().Dump(), c.ToJson().Dump()) << shards << " shards";
  }
}

TEST(Runner, ShardedServePointApproximatesTheSerialPoint) {
  // Shards replicate the same stationary process over shorter horizons:
  // the merged point is a statistical replica, not a bit-identical one.
  ServeKnobs knobs;
  knobs.horizon_s = 40.0;
  Scenario serial = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  knobs.shards = 4;
  Scenario sharded = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport a = Runner().Run(serial);
  RunReport b = Runner().Run(sharded);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  const auto& sa = std::get<ServeStudyReport>(a.payload);
  const auto& sb = std::get<ServeStudyReport>(b.payload);
  ASSERT_GT(sa.completed_requests, 0);
  ASSERT_GT(sb.completed_requests, 0);
  double ratio = static_cast<double>(sb.completed_requests) /
                 static_cast<double>(sa.completed_requests);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
  // TTFT streams into fixed bins under sharding; the median still has to
  // land in the same regime as the exact serial percentile.
  EXPECT_NEAR(sb.ttft_p50_s, sa.ttft_p50_s, std::max(0.05, sa.ttft_p50_s));
}

TEST(Runner, ShardedSweepIsIdenticalAtAnyThreadCount) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.5, 0.9};
  knobs.horizon_s = 16.0;
  knobs.shards = 2;
  Scenario serial =
      *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Threads(1).Build();
  Scenario parallel = serial;
  parallel.exec.threads = 0;
  RunReport a = Runner().Run(serial);
  RunReport b = Runner().Run(parallel);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

// --- validation fence ---

TEST(Scenario, ShardsRejectTimeInhomogeneousFeatures) {
  std::string error;

  ServeKnobs knobs;
  knobs.shards = 2000;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("shards must be in [0, 1024]"), std::string::npos);
  knobs.shards = -1;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("shards must be in [0, 1024]"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.shards = 2;
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("autoscaler to be disabled"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.shards = 2;
  knobs.faults.afr = 0.1;
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("faults to be disabled"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.shards = 2;
  knobs.arrival.kind = ArrivalKind::kDiurnal;
  knobs.arrival.multipliers = {0.5, 2.0};
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("stationary arrival process"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.shards = 2;
  knobs.arrival.kind = ArrivalKind::kTrace;
  knobs.arrival.times_s = {0.5, 1.0, 1.5};
  EXPECT_FALSE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("stationary arrival process"), std::string::npos);

  // The on/off burst process is stationary in distribution; shards allow it.
  knobs = ServeKnobs{};
  knobs.shards = 2;
  knobs.arrival.kind = ArrivalKind::kOnOff;
  EXPECT_TRUE(ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value())
      << error;

  // Same fence for the sweep block.
  ServeSweepKnobs sweep;
  sweep.shards = 2;
  sweep.faults.afr = 0.1;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(sweep).Build(&error).has_value());
  EXPECT_NE(error.find("faults to be disabled"), std::string::npos);
}

// --- scenario JSON ---

TEST(Scenario, ShardsRoundTripThroughJsonAndDefaultSerializesToNothing) {
  ServeKnobs knobs;
  knobs.horizon_s = 12.0;
  knobs.shards = 4;
  Scenario original = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  std::string error;
  auto restored = ScenarioFromJson(ScenarioToJson(original), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original);
  EXPECT_EQ(restored->serve.shards, 4);

  // shards <= 1 is the serial default: it must not appear in the JSON, so
  // pre-existing scenarios and reports stay byte-identical.
  knobs.shards = 0;
  Scenario serial = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  EXPECT_EQ(ScenarioToJson(serial).Dump().find("shards"), std::string::npos);
  knobs.shards = 1;
  Scenario one = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  EXPECT_EQ(ScenarioToJson(one).Dump(), ScenarioToJson(serial).Dump());
}

}  // namespace
}  // namespace litegpu
