#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

// --- Table 1 verbatim checks ---

TEST(Catalog, H100MatchesTable1) {
  GpuSpec g = H100();
  EXPECT_DOUBLE_EQ(g.flops, 2000.0 * kTFLOPS);
  EXPECT_DOUBLE_EQ(g.mem_capacity_bytes, 80.0 * kGB);
  EXPECT_DOUBLE_EQ(g.mem_bw_bytes_per_s, 3352.0 * kGBps);
  EXPECT_DOUBLE_EQ(g.net_bw_bytes_per_s, 450.0 * kGBps);
  EXPECT_EQ(g.max_gpus, 8);
  EXPECT_EQ(g.sm_count, 132);
}

TEST(Catalog, LiteMatchesTable1) {
  GpuSpec g = Lite();
  EXPECT_DOUBLE_EQ(g.flops, 500.0 * kTFLOPS);
  EXPECT_DOUBLE_EQ(g.mem_capacity_bytes, 20.0 * kGB);
  EXPECT_DOUBLE_EQ(g.mem_bw_bytes_per_s, 838.0 * kGBps);
  EXPECT_DOUBLE_EQ(g.net_bw_bytes_per_s, 112.5 * kGBps);
  EXPECT_EQ(g.max_gpus, 32);
  EXPECT_EQ(g.sm_count, 33);
}

TEST(Catalog, LiteVariantsMatchTable1) {
  EXPECT_DOUBLE_EQ(LiteNetBw().net_bw_bytes_per_s, 225.0 * kGBps);
  EXPECT_DOUBLE_EQ(LiteNetBw().mem_bw_bytes_per_s, 838.0 * kGBps);

  EXPECT_DOUBLE_EQ(LiteNetBwFlops().flops, 550.0 * kTFLOPS);
  EXPECT_DOUBLE_EQ(LiteNetBwFlops().mem_bw_bytes_per_s, 419.0 * kGBps);
  EXPECT_DOUBLE_EQ(LiteNetBwFlops().net_bw_bytes_per_s, 225.0 * kGBps);

  EXPECT_DOUBLE_EQ(LiteMemBw().mem_bw_bytes_per_s, 1675.0 * kGBps);
  EXPECT_DOUBLE_EQ(LiteMemBw().net_bw_bytes_per_s, 112.5 * kGBps);

  EXPECT_DOUBLE_EQ(LiteMemBwNetBw().mem_bw_bytes_per_s, 1675.0 * kGBps);
  EXPECT_DOUBLE_EQ(LiteMemBwNetBw().net_bw_bytes_per_s, 225.0 * kGBps);
}

TEST(Catalog, Table1HasSixRowsInPaperOrder) {
  auto configs = Table1Configs();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0].name, "H100");
  EXPECT_EQ(configs[1].name, "Lite");
  EXPECT_EQ(configs[2].name, "Lite+NetBW");
  EXPECT_EQ(configs[3].name, "Lite+NetBW+FLOPS");
  EXPECT_EQ(configs[4].name, "Lite+MemBW");
  EXPECT_EQ(configs[5].name, "Lite+MemBW+NetBW");
}

TEST(Catalog, AllEntriesValidate) {
  for (const auto& g : Table1Configs()) {
    EXPECT_EQ(g.Validate(), "") << g.name;
  }
  for (const auto& g : HistoricalGenerations()) {
    EXPECT_EQ(g.Validate(), "") << g.name;
  }
}

TEST(Catalog, MaxClusterSmCountsMatch) {
  // 8 H100s and 32 Lites expose the same total SM count (paper Section 4).
  EXPECT_EQ(H100().sm_count * H100().max_gpus, Lite().sm_count * Lite().max_gpus + 0);
}

TEST(Catalog, FindGpuWorks) {
  EXPECT_TRUE(FindGpu("H100").has_value());
  EXPECT_TRUE(FindGpu("Lite+MemBW").has_value());
  EXPECT_TRUE(FindGpu("V100").has_value());
  EXPECT_FALSE(FindGpu("H200").has_value());
}

TEST(Catalog, HistoricalGenerationsChronological) {
  auto gens = HistoricalGenerations();
  ASSERT_EQ(gens.size(), 4u);
  for (size_t i = 1; i < gens.size(); ++i) {
    EXPECT_GT(gens[i].year, gens[i - 1].year);
    EXPECT_GT(gens[i].transistors_billion, gens[i - 1].transistors_billion);
  }
}

// --- derived ratios ---

TEST(GpuSpec, LiteHasSameFlopsPerSmAsH100) {
  EXPECT_NEAR(Lite().FlopsPerSm(), H100().FlopsPerSm(), 0.01 * H100().FlopsPerSm());
}

TEST(GpuSpec, LiteMemBwDoublesBandwidthToCompute) {
  // Section 2: "yielding a cluster with 2x the bandwidth-to-compute ratio".
  // Table 1 rounds 2x838 to 1675 GB/s, so allow the rounding error.
  EXPECT_NEAR(LiteMemBw().MemBwPerFlop() / H100().MemBwPerFlop(), 2.0, 0.01);
}

TEST(GpuSpec, LitePowerDensityLowerThanH100) {
  EXPECT_LT(Lite().PowerDensityWPerMm2(), H100().PowerDensityWPerMm2());
}

TEST(GpuSpec, ValidateRejectsBadSpecs) {
  GpuSpec g = H100();
  g.flops = 0.0;
  EXPECT_NE(g.Validate(), "");
  g = H100();
  g.name.clear();
  EXPECT_NE(g.Validate(), "");
  g = H100();
  g.sm_count = -1;
  EXPECT_NE(g.Validate(), "");
}

// --- Lite derivation ---

TEST(LiteDerive, QuarterScaleMatchesTable1Lite) {
  LiteDeriveOptions options;  // split 4, no multipliers
  LiteDeriveResult r = DeriveLite(H100(), options);
  EXPECT_DOUBLE_EQ(r.gpu.flops, 500.0 * kTFLOPS);
  EXPECT_DOUBLE_EQ(r.gpu.mem_capacity_bytes, 20.0 * kGB);
  EXPECT_DOUBLE_EQ(r.gpu.mem_bw_bytes_per_s, 838.0 * kGBps);
  EXPECT_DOUBLE_EQ(r.gpu.net_bw_bytes_per_s, 112.5 * kGBps);
  EXPECT_EQ(r.gpu.sm_count, 33);
  EXPECT_EQ(r.gpu.max_gpus, 32);
  EXPECT_TRUE(r.shoreline_feasible);
}

TEST(LiteDerive, MemBwVariantFeasible) {
  LiteDeriveOptions options;
  options.mem_bw_multiplier = 2.0;
  LiteDeriveResult r = DeriveLite(H100(), options);
  EXPECT_DOUBLE_EQ(r.gpu.mem_bw_bytes_per_s, 1676.0 * kGBps);
  EXPECT_TRUE(r.shoreline_feasible);
}

TEST(LiteDerive, ExtremeBandwidthInfeasible) {
  LiteDeriveOptions options;
  options.mem_bw_multiplier = 20.0;
  options.net_bw_multiplier = 20.0;
  LiteDeriveResult r = DeriveLite(H100(), options);
  EXPECT_FALSE(r.shoreline_feasible);
}

TEST(LiteDerive, OverclockRaisesPowerSuperlinearly) {
  LiteDeriveOptions base;
  LiteDeriveOptions oc = base;
  oc.overclock = 1.1;
  double p0 = DeriveLite(H100(), base).gpu.tdp_watts;
  double p1 = DeriveLite(H100(), oc).gpu.tdp_watts;
  EXPECT_GT(p1 / p0, 1.1);  // superlinear in frequency
  EXPECT_LT(p1 / p0, 1.4);
}

TEST(LiteDerive, SplitTwoGivesHalfScale) {
  LiteDeriveOptions options;
  options.split = 2;
  options.max_gpus_multiplier = 2;
  LiteDeriveResult r = DeriveLite(H100(), options);
  EXPECT_DOUBLE_EQ(r.gpu.flops, 1000.0 * kTFLOPS);
  EXPECT_EQ(r.gpu.sm_count, 66);
  EXPECT_EQ(r.gpu.max_gpus, 16);
}

TEST(LiteDerive, FourLitesMatchOneH100Aggregate) {
  LiteDeriveOptions options;
  LiteDeriveResult r = DeriveLite(H100(), options);
  GpuSpec h = H100();
  EXPECT_NEAR(4.0 * r.gpu.flops, h.flops, 1e-3);
  EXPECT_NEAR(4.0 * r.gpu.mem_capacity_bytes, h.mem_capacity_bytes, 1e-3);
  EXPECT_NEAR(4.0 * r.gpu.mem_bw_bytes_per_s, h.mem_bw_bytes_per_s, 1e-3);
}

}  // namespace
}  // namespace litegpu
