// Monte-Carlo defect-map simulation vs the analytic yield models — the
// key Section-2 numbers must hold under simulated wafers, not just formulas.

#include <gtest/gtest.h>

#include <cmath>

#include "src/silicon/defect_sim.h"
#include "src/silicon/wafer.h"
#include "src/silicon/yield.h"

namespace litegpu {
namespace {

constexpr double kH100DieMm2 = 814.0;

DefectSimConfig BaseConfig() {
  DefectSimConfig config;
  config.num_wafers = 48;
  return config;
}

TEST(DefectSim, UniformFieldMatchesPoissonYield) {
  DefectSimConfig config = BaseConfig();
  for (double area : {100.0, 200.0, 400.0, kH100DieMm2}) {
    DefectSimResult r = SimulateWaferYield(config, area);
    DefectSpec defects;
    defects.density_per_cm2 = config.defect_density_per_cm2;
    double analytic = DieYield(YieldModel::kPoisson, defects, area);
    EXPECT_NEAR(r.yield, analytic, 0.05) << "area " << area;
  }
}

TEST(DefectSim, DefectCountMatchesDensity) {
  DefectSimConfig config = BaseConfig();
  DefectSimResult r = SimulateWaferYield(config, 400.0);
  double wafer_cm2 = M_PI * 150.0 * 150.0 / 100.0;
  EXPECT_NEAR(r.defects_per_wafer_mean, 0.1 * wafer_cm2, 0.1 * 0.1 * wafer_cm2);
}

TEST(DefectSim, DieCountConsistentWithAnalyticFormula) {
  DefectSimConfig config = BaseConfig();
  DefectSimResult r = SimulateWaferYield(config, kH100DieMm2);
  uint64_t per_wafer = r.total_dies / config.num_wafers;
  uint64_t analytic = DiesPerWaferSquare(config.wafer, kH100DieMm2);
  EXPECT_NEAR(static_cast<double>(per_wafer), static_cast<double>(analytic),
              0.25 * analytic + 3.0);
}

TEST(DefectSim, PaperClaimYieldGainUnderSimulation) {
  // Section 2's 1.8x claim should reproduce on simulated uniform-defect
  // wafers (Poisson gain at these parameters is ~1.84).
  DefectSimConfig config = BaseConfig();
  double gain = SimulatedSplitYieldGain(config, kH100DieMm2, 4);
  EXPECT_NEAR(gain, 1.8, 0.25);
}

TEST(DefectSim, ClusteringRaisesYieldAbovePoisson) {
  // Clustered defects concentrate damage in fewer dies: yield must exceed
  // the Poisson prediction (the reason Murphy/NB models exist).
  DefectSimConfig clustered = BaseConfig();
  clustered.cluster_mean_size = 5.0;
  clustered.cluster_radius_mm = 3.0;
  DefectSimResult r = SimulateWaferYield(clustered, kH100DieMm2);
  DefectSpec defects;
  defects.density_per_cm2 = clustered.defect_density_per_cm2;
  double poisson = DieYield(YieldModel::kPoisson, defects, kH100DieMm2);
  EXPECT_GT(r.yield, poisson);
}

TEST(DefectSim, Deterministic) {
  DefectSimConfig config = BaseConfig();
  config.num_wafers = 8;
  DefectSimResult a = SimulateWaferYield(config, 400.0);
  DefectSimResult b = SimulateWaferYield(config, 400.0);
  EXPECT_EQ(a.good_dies, b.good_dies);
  EXPECT_EQ(a.total_dies, b.total_dies);
}

TEST(DefectSim, HigherDensityLowersYield) {
  DefectSimConfig low = BaseConfig();
  low.defect_density_per_cm2 = 0.05;
  DefectSimConfig high = BaseConfig();
  high.defect_density_per_cm2 = 0.3;
  EXPECT_GT(SimulateWaferYield(low, kH100DieMm2).yield,
            SimulateWaferYield(high, kH100DieMm2).yield);
}

TEST(DefectSim, PerWaferYieldsPopulated) {
  DefectSimConfig config = BaseConfig();
  config.num_wafers = 10;
  DefectSimResult r = SimulateWaferYield(config, 400.0);
  ASSERT_EQ(r.per_wafer_yield.size(), 10u);
  for (double y : r.per_wafer_yield) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

}  // namespace
}  // namespace litegpu
