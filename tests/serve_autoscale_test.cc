// Time-varying arrival processes and mid-horizon autoscaling: the
// generator-level contracts (diurnal thinning, on/off bursts, exact trace
// replay, substream stability), the scenario-level JSON round trips and
// validation, and the runner-level determinism/report guarantees.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/core/runner.h"
#include "src/core/scenario.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

// --- generator: diurnal ---

TEST(ArrivalProcess, DiurnalCurveModulatesTheArrivalRate) {
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 40.0;
  spec.duration_s = 100.0;
  spec.arrival.kind = ArrivalKind::kDiurnal;
  // Quiet first half, busy second half (period 0 = one period per horizon).
  spec.arrival.multipliers = {0.1, 0.1, 2.0, 2.0};
  auto requests = GenerateWorkload(spec);
  ASSERT_FALSE(requests.empty());
  size_t first_half = 0;
  for (const Request& r : requests) {
    EXPECT_GE(r.arrival_s, 0.0);
    EXPECT_LT(r.arrival_s, spec.duration_s);
    if (r.arrival_s < spec.duration_s / 2) {
      ++first_half;
    }
  }
  // The busy half carries a multiple of the quiet half's arrivals (the
  // interpolated curve integrates to ~2.7x between the halves).
  EXPECT_GT(requests.size() - first_half, 2 * first_half);
  EXPECT_TRUE(std::is_sorted(requests.begin(), requests.end(),
                             [](const Request& a, const Request& b) {
                               return a.arrival_s < b.arrival_s;
                             }));
}

TEST(ArrivalProcess, DiurnalMultiplierInterpolatesAndWraps) {
  ArrivalProcess process;
  process.kind = ArrivalKind::kDiurnal;
  process.period_s = 100.0;
  process.multipliers = {1.0, 3.0};
  // Control points at 0 and 50, wrapping back to 1.0 at 100.
  EXPECT_DOUBLE_EQ(ArrivalRateMultiplier(process, 500.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ArrivalRateMultiplier(process, 500.0, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(ArrivalRateMultiplier(process, 500.0, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(ArrivalRateMultiplier(process, 500.0, 75.0), 2.0);
  EXPECT_DOUBLE_EQ(ArrivalRateMultiplier(process, 500.0, 125.0), 2.0);  // wraps
  EXPECT_DOUBLE_EQ(PeakRateMultiplier(process), 3.0);
}

// --- generator: on/off bursts ---

TEST(ArrivalProcess, OnOffAlternatesBurstsAndLulls) {
  WorkloadSpec spec;
  spec.arrival_rate_per_s = 30.0;
  spec.duration_s = 120.0;
  spec.arrival.kind = ArrivalKind::kOnOff;
  spec.arrival.on_mean_s = 5.0;
  spec.arrival.off_mean_s = 5.0;
  spec.arrival.on_multiplier = 2.0;
  spec.arrival.off_multiplier = 0.0;  // silent off phases
  auto requests = GenerateWorkload(spec);
  ASSERT_FALSE(requests.empty());
  EXPECT_TRUE(std::is_sorted(requests.begin(), requests.end(),
                             [](const Request& a, const Request& b) {
                               return a.arrival_s < b.arrival_s;
                             }));
  // On half the time at 2x, off half the time at 0x: the mean offered rate
  // is about the base rate, so the count should be well under a constant
  // 2x process and well over a constant 0.25x one.
  size_t count = requests.size();
  EXPECT_GT(count, spec.duration_s * spec.arrival_rate_per_s * 0.4);
  EXPECT_LT(count, spec.duration_s * spec.arrival_rate_per_s * 1.8);
}

// --- generator: trace replay ---

TEST(ArrivalProcess, TraceReplaysExactTimesWithinTheHorizon) {
  WorkloadSpec spec;
  spec.duration_s = 5.0;
  spec.arrival_rate_per_s = 0.0;  // ignored for traces
  spec.arrival.kind = ArrivalKind::kTrace;
  spec.arrival.times_s = {0.5, 1.0, 2.5, 9.9};  // 9.9 is past the horizon
  auto requests = GenerateWorkload(spec);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_DOUBLE_EQ(requests[0].arrival_s, 0.5);
  EXPECT_DOUBLE_EQ(requests[1].arrival_s, 1.0);
  EXPECT_DOUBLE_EQ(requests[2].arrival_s, 2.5);
  for (const Request& r : requests) {
    EXPECT_EQ(r.prompt_tokens, spec.median_prompt_tokens);  // sigma 0
    EXPECT_EQ(r.output_tokens, spec.median_output_tokens);
  }
  EXPECT_DOUBLE_EQ(MeanTraceRatePerS(spec.arrival, 5.0), 3.0 / 5.0);
}

TEST(ArrivalProcess, OneClassTraceMixMatchesClasslessReplay) {
  ArrivalProcess trace;
  trace.kind = ArrivalKind::kTrace;
  trace.times_s = {0.25, 1.5, 3.0, 4.75};
  WorkloadSpec single;
  single.duration_s = 10.0;
  single.seed = 77;
  single.arrival = trace;
  MultiClassWorkloadSpec mix;
  mix.duration_s = 10.0;
  mix.seed = 77;
  mix.arrival = trace;
  mix.classes.push_back(ClassWorkload{});  // same lengths as the default spec
  auto classless = GenerateWorkload(single);
  auto one_class = GenerateMultiClassWorkload(mix);
  ASSERT_EQ(classless.size(), one_class.size());
  for (size_t i = 0; i < classless.size(); ++i) {
    EXPECT_DOUBLE_EQ(classless[i].arrival_s, one_class[i].arrival_s);
    EXPECT_EQ(classless[i].prompt_tokens, one_class[i].prompt_tokens);
    EXPECT_EQ(classless[i].output_tokens, one_class[i].output_tokens);
  }
}

// --- generator: substream stability ---

TEST(ArrivalProcess, ExplicitPoissonKindIsBitIdenticalToTheDefault) {
  WorkloadSpec legacy;
  legacy.arrival_rate_per_s = 20.0;
  legacy.duration_s = 30.0;
  legacy.prompt_sigma = 0.3;
  legacy.output_sigma = 0.2;
  WorkloadSpec explicit_kind = legacy;
  explicit_kind.arrival.kind = ArrivalKind::kPoisson;
  // Unused per-kind fields must not leak into the Poisson path.
  explicit_kind.arrival.multipliers = {9.0};
  explicit_kind.arrival.on_mean_s = 0.001;
  auto a = GenerateWorkload(legacy);
  auto b = GenerateWorkload(explicit_kind);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
}

// Appending a class must not perturb existing classes' substreams for the
// independent-substream kinds (trace is excluded by design: its rate-share
// split couples classes — see MultiClassWorkloadSpec::arrival).
void ExpectAppendStability(const ArrivalProcess& arrival) {
  MultiClassWorkloadSpec spec;
  spec.duration_s = 40.0;
  spec.seed = 1234;
  spec.arrival = arrival;
  ClassWorkload chat;
  chat.arrival_rate_per_s = 8.0;
  ClassWorkload batch;
  batch.arrival_rate_per_s = 3.0;
  batch.median_output_tokens = 900;
  spec.classes = {chat, batch};
  auto before = GenerateMultiClassWorkload(spec);
  ClassWorkload extra;
  extra.arrival_rate_per_s = 5.0;
  spec.classes.push_back(extra);
  auto after = GenerateMultiClassWorkload(spec);
  for (int cls : {0, 1}) {
    std::vector<Request> lhs, rhs;
    for (const Request& r : before) {
      if (r.class_id == cls) lhs.push_back(r);
    }
    for (const Request& r : after) {
      if (r.class_id == cls) rhs.push_back(r);
    }
    ASSERT_EQ(lhs.size(), rhs.size()) << "class " << cls;
    ASSERT_FALSE(lhs.empty()) << "class " << cls;
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_DOUBLE_EQ(lhs[i].arrival_s, rhs[i].arrival_s) << "class " << cls;
      EXPECT_EQ(lhs[i].prompt_tokens, rhs[i].prompt_tokens) << "class " << cls;
      EXPECT_EQ(lhs[i].output_tokens, rhs[i].output_tokens) << "class " << cls;
    }
  }
}

TEST(ArrivalProcess, AppendingAClassKeepsDiurnalSubstreamsStable) {
  ArrivalProcess arrival;
  arrival.kind = ArrivalKind::kDiurnal;
  arrival.multipliers = {0.5, 1.5, 1.0};
  ExpectAppendStability(arrival);
}

TEST(ArrivalProcess, AppendingAClassKeepsOnOffSubstreamsStable) {
  ArrivalProcess arrival;
  arrival.kind = ArrivalKind::kOnOff;
  arrival.on_mean_s = 4.0;
  arrival.off_mean_s = 6.0;
  ExpectAppendStability(arrival);
}

// --- scenario plumbing ---

TEST(Scenario, ArrivalAndAutoscalerRoundTripThroughJson) {
  ServeKnobs knobs;
  knobs.load = 0.6;
  knobs.horizon_s = 30.0;
  knobs.arrival.kind = ArrivalKind::kDiurnal;
  knobs.arrival.period_s = 120.0;
  knobs.arrival.multipliers = {0.4, 1.6, 0.9};
  knobs.autoscaler.policy = AutoscalerPolicy::kPredictive;
  knobs.autoscaler.delay_s = 12.0;
  knobs.autoscaler.max_decode_instances = 24;
  Scenario original =
      *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  std::string error;
  auto restored = ScenarioFromJson(ScenarioToJson(original), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original);
  EXPECT_EQ(restored->serve.arrival.kind, ArrivalKind::kDiurnal);
  EXPECT_EQ(restored->serve.arrival.multipliers, knobs.arrival.multipliers);
  EXPECT_EQ(restored->serve.autoscaler.policy, AutoscalerPolicy::kPredictive);
  EXPECT_DOUBLE_EQ(restored->serve.autoscaler.delay_s, 12.0);
}

TEST(Scenario, TraceArrivalRoundTripsThroughJson) {
  ServeKnobs knobs;
  knobs.arrival.kind = ArrivalKind::kTrace;
  knobs.arrival.times_s = {0.5, 1.25, 2.0};
  Scenario original = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  std::string error;
  auto restored = ScenarioFromJson(ScenarioToJson(original), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_TRUE(*restored == original);
  EXPECT_EQ(restored->serve.arrival.times_s, knobs.arrival.times_s);
}

TEST(Scenario, OmittedArrivalAndAutoscalerEmitNoKeys) {
  // Default (stationary Poisson, no autoscaler) scenarios serialize without
  // the new keys at all — the byte-identity guarantee for existing files.
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(ServeKnobs{}).Build();
  std::string dump = ScenarioToJson(s).Dump();
  EXPECT_EQ(dump.find("\"arrival\""), std::string::npos);
  EXPECT_EQ(dump.find("\"autoscaler\""), std::string::npos);
}

TEST(Scenario, UnknownArrivalKindGetsADidYouMeanHint) {
  std::string error;
  auto bad = Json::Parse(
      R"({"study": "serve", "serve": {"arrival": {"kind": "diurnall"}}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ScenarioFromJson(*bad, &error).has_value());
  EXPECT_NE(error.find("diurnall"), std::string::npos);
  EXPECT_NE(error.find("did you mean 'diurnal'"), std::string::npos);
}

TEST(Scenario, UnknownAutoscalerPolicyGetsADidYouMeanHint) {
  std::string error;
  auto bad = Json::Parse(
      R"({"study": "serve", "serve": {"autoscaler": {"policy": "reactve"}}})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ScenarioFromJson(*bad, &error).has_value());
  EXPECT_NE(error.find("did you mean 'reactive'"), std::string::npos);
}

TEST(Scenario, AutoscalerValidationRejectsBadThresholdsAndDelays) {
  std::string error;
  ServeKnobs knobs;
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.interval_s = 0.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("interval_s"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.delay_s = -1.0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("delay_s"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.max_decode_instances = 0;
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("max >= min"), std::string::npos);

  knobs = ServeKnobs{};
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.scale_down_utilization = 0.95;  // above the up threshold
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("scale_down_utilization"), std::string::npos);

  // A disabled block never validates its thresholds — kNone means "no
  // autoscaler", whatever stale values ride along.
  knobs = ServeKnobs{};
  knobs.autoscaler.policy = AutoscalerPolicy::kNone;
  knobs.autoscaler.interval_s = -5.0;
  EXPECT_TRUE(
      ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build(&error).has_value());
}

TEST(Scenario, SweepRejectsTraceArrivals) {
  std::string error;
  ServeSweepKnobs knobs;
  knobs.arrival.kind = ArrivalKind::kTrace;
  knobs.arrival.times_s = {1.0};
  EXPECT_FALSE(
      ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build(&error).has_value());
  EXPECT_NE(error.find("trace"), std::string::npos);
}

TEST(Scenario, StandaloneArrivalAndAutoscalerBlocksRoundTrip) {
  // The --arrival / --autoscaler file format: bare object or wrapped.
  ArrivalProcess arrival;
  arrival.kind = ArrivalKind::kOnOff;
  arrival.on_mean_s = 7.0;
  arrival.off_multiplier = 0.1;
  std::string error;
  auto parsed = ParseArrivalProcess(ArrivalProcessToJson(arrival), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(ArrivalProcessToJson(*parsed).Dump(), ArrivalProcessToJson(arrival).Dump());

  AutoscalerKnobs knobs;
  knobs.policy = AutoscalerPolicy::kReactive;
  knobs.headroom = 1.4;
  auto restored = ParseAutoscalerKnobs(AutoscalerKnobsToJson(knobs), &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(AutoscalerKnobsToJson(*restored).Dump(), AutoscalerKnobsToJson(knobs).Dump());

  Json wrapped = Json::Object();
  wrapped.Set("autoscaler", AutoscalerKnobsToJson(knobs));
  auto unwrapped = ParseAutoscalerKnobs(wrapped, &error);
  ASSERT_TRUE(unwrapped.has_value()) << error;
  EXPECT_EQ(unwrapped->policy, AutoscalerPolicy::kReactive);
}

// --- the runner ---

TEST(Runner, ReactiveAutoscalerScalesUpUnderABurstyDay) {
  ServeKnobs knobs;
  knobs.load = 0.7;
  knobs.horizon_s = 40.0;
  knobs.arrival.kind = ArrivalKind::kOnOff;
  knobs.arrival.on_mean_s = 8.0;
  knobs.arrival.off_mean_s = 8.0;
  knobs.arrival.on_multiplier = 2.5;
  knobs.arrival.off_multiplier = 0.1;
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.interval_s = 2.0;
  knobs.autoscaler.delay_s = 4.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  ASSERT_TRUE(serve.scale.enabled);
  EXPECT_EQ(serve.scale.policy, "reactive");
  EXPECT_GT(serve.scale.scale_ups, 0);
  EXPECT_FALSE(serve.scale.events.empty());
  EXPECT_GT(serve.scale.peak_decode_instances, 0);
  EXPECT_GT(serve.scale.decode_instance_hours, 0.0);
  EXPECT_GT(serve.scale.gpu_hours, 0.0);
  EXPECT_GT(serve.scale.ttft_attainment, 0.0);
  // Every recorded event carries a reason and a consistent pool size.
  for (const ScaleEvent& event : serve.scale.events) {
    EXPECT_FALSE(event.reason.empty());
    EXPECT_NE(event.delta, 0);
    EXPECT_GE(event.instances_after, 1);
    EXPECT_GE(event.time_s, 0.0);
  }
  // The report surfaces the block in both renderings.
  EXPECT_NE(report.ToText().find("autoscaler ("), std::string::npos);
  EXPECT_NE(report.ToJson().Dump().find("\"gpu_hours\""), std::string::npos);
}

TEST(Runner, PredictiveAutoscalerRunsAndReportsPolicy) {
  ServeKnobs knobs;
  knobs.load = 0.6;
  knobs.horizon_s = 25.0;
  knobs.arrival.kind = ArrivalKind::kDiurnal;
  knobs.arrival.multipliers = {0.3, 1.7};
  knobs.autoscaler.policy = AutoscalerPolicy::kPredictive;
  knobs.autoscaler.interval_s = 2.0;
  knobs.autoscaler.delay_s = 3.0;
  knobs.autoscaler.forecast_window_s = 8.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  ASSERT_TRUE(serve.scale.enabled);
  EXPECT_EQ(serve.scale.policy, "predictive");
  EXPECT_GT(serve.scale.gpu_hours, 0.0);
}

TEST(Runner, FixedPoolServeReportHasNoAutoscalerBlock) {
  ServeKnobs knobs;
  knobs.horizon_s = 10.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  EXPECT_FALSE(serve.scale.enabled);
  EXPECT_TRUE(serve.scale.events.empty());
  std::string dump = report.ToJson().Dump();
  EXPECT_EQ(dump.find("\"autoscaler\""), std::string::npos);
  EXPECT_EQ(dump.find("\"gpu_hours\""), std::string::npos);
}

TEST(Runner, AutoscaledSweepIsBitIdenticalAtAnyThreadCount) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.4, 0.8};
  knobs.horizon_s = 8.0;
  knobs.arrival.kind = ArrivalKind::kDiurnal;
  knobs.arrival.multipliers = {0.5, 1.5};
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.interval_s = 2.0;
  knobs.autoscaler.delay_s = 3.0;
  Scenario serial =
      *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Threads(1).Build();
  RunReport reference = Runner().Run(serial);
  ASSERT_TRUE(reference.ok) << reference.error;
  for (int threads : {0, 2, 4}) {
    Scenario parallel = serial;
    parallel.exec.threads = threads;
    RunReport report = Runner().Run(parallel);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.ToJson().Dump(), reference.ToJson().Dump()) << threads;
  }
}

TEST(Runner, AutoscaledSweepReportsTheCheapestSloMeetingPoint) {
  ServeSweepKnobs knobs;
  knobs.loads = {0.3, 0.6};
  knobs.horizon_s = 8.0;
  knobs.autoscaler.policy = AutoscalerPolicy::kReactive;
  knobs.autoscaler.interval_s = 2.0;
  knobs.autoscaler.delay_s = 3.0;
  Scenario s = *ScenarioBuilder(StudyKind::kServeSweep).ServeSweep(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& sweep = std::get<ServeSweepReport>(report.payload);
  for (const auto& p : sweep.points) {
    EXPECT_TRUE(p.scale.enabled);
    EXPECT_GT(p.scale.gpu_hours, 0.0);
  }
  // The cheapest point (if any point meets the SLOs) must itself be an
  // SLO-meeting point with the best tokens-per-GPU-hour among them.
  if (sweep.cheapest_index >= 0) {
    const auto& cheapest = sweep.points[static_cast<size_t>(sweep.cheapest_index)];
    EXPECT_TRUE(cheapest.slo_ok);
    EXPECT_GT(sweep.cheapest_tokens_per_gpu_hour, 0.0);
    for (const auto& p : sweep.points) {
      if (!p.slo_ok || p.scale.gpu_hours <= 0.0) continue;
      EXPECT_GE(sweep.cheapest_tokens_per_gpu_hour,
                p.goodput_tokens_per_s * p.makespan_s / p.scale.gpu_hours - 1e-9);
    }
  } else {
    EXPECT_EQ(sweep.cheapest_tokens_per_gpu_hour, 0.0);
  }
  // The JSON carries the cheapest block (gated on the autoscaler).
  EXPECT_NE(report.ToJson().Dump().find("\"cheapest\""), std::string::npos);
  EXPECT_NE(report.ToText().find("cheapest"), std::string::npos);
}

TEST(Runner, TraceServeStudyDerivesItsRateFromTheTrace) {
  ServeKnobs knobs;
  knobs.horizon_s = 10.0;
  knobs.load = 0.0;  // trace scenarios need neither load nor rate
  knobs.arrival.kind = ArrivalKind::kTrace;
  for (int i = 0; i < 200; ++i) {
    knobs.arrival.times_s.push_back(i * 0.05);  // 20 req/s over 10 s
  }
  Scenario s = *ScenarioBuilder(StudyKind::kServe).Serve(knobs).Build();
  RunReport report = Runner().Run(s);
  ASSERT_TRUE(report.ok) << report.error;
  const auto& serve = std::get<ServeStudyReport>(report.payload);
  EXPECT_NEAR(serve.arrival_rate_per_s, 20.0, 1e-9);
  EXPECT_EQ(serve.admitted_requests, 200);
}

TEST(Simulator, PredictiveDemandHistoryStaysBoundedByTheForecastWindow) {
  // Regression: the predictive autoscaler's demand history used to grow
  // with every admitted request. It is now pruned to the forecast window
  // as arrivals are processed, so its peak size tracks rate * window and
  // stays flat as the horizon grows.
  auto peak_entries = [](double horizon_s) {
    WorkloadSpec spec;
    spec.arrival_rate_per_s = 40.0;
    spec.duration_s = horizon_s;
    spec.median_prompt_tokens = 200;
    spec.median_output_tokens = 16;
    ServeCallbacks cb;
    cb.prefill_time = [](int batch) { return 0.01 * batch; };
    cb.decode_step_time = [](int) { return 0.005; };
    ServeClusterConfig config;
    config.prefill_instances = 2;
    config.decode_instances = 2;
    config.horizon_s = horizon_s;
    config.autoscaler.enabled = true;
    config.autoscaler.predictive = true;
    config.autoscaler.interval_s = 2.0;
    config.autoscaler.delay_s = 3.0;
    config.autoscaler.forecast_window_s = 5.0;
    config.autoscaler.prefill_tokens_per_s = 40000.0;
    config.autoscaler.decode_tokens_per_s = 4000.0;
    ServeMetrics m = RunServeSimulation(GenerateWorkload(spec), config, cb);
    EXPECT_GT(m.peak_demand_entries, 0u) << "predictive path never ran";
    return m.peak_demand_entries;
  };
  size_t short_run = peak_entries(30.0);
  size_t long_run = peak_entries(120.0);
  // ~200 entries fit a 5 s window at 40 req/s; a 4x horizon must not grow
  // the peak beyond sampling noise (the old behavior would be ~4x).
  EXPECT_LE(long_run, short_run * 3 / 2);
  EXPECT_LE(long_run, size_t{400});
}

}  // namespace
}  // namespace litegpu
