// Coverage for the smaller public surfaces not exercised elsewhere:
// string renderers, enum names, and formatting paths that bench binaries
// rely on for stable output.

#include <gtest/gtest.h>

#include "src/hw/catalog.h"
#include "src/hw/lite_derive.h"
#include "src/llm/parallel.h"
#include "src/roofline/engine.h"
#include "src/sched/pools.h"
#include "src/silicon/yield.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace litegpu {
namespace {

TEST(ApiSurface, EnumToStringNames) {
  EXPECT_EQ(ToString(YieldModel::kMurphy), "murphy");
  EXPECT_EQ(ToString(YieldModel::kNegativeBinomial), "negative-binomial");
  EXPECT_EQ(ToString(Phase::kPrefill), "prefill");
  EXPECT_EQ(ToString(Phase::kDecode), "decode");
  EXPECT_EQ(ToString(Bound::kCompute), "compute");
  EXPECT_EQ(ToString(Bound::kMemory), "memory");
  EXPECT_EQ(ToString(Bound::kNetwork), "network");
  EXPECT_EQ(ToString(Bound::kOverhead), "overhead");
  EXPECT_EQ(ToString(OverlapScope::kNone), "serialized");
  EXPECT_EQ(ToString(OverlapScope::kStage), "stage-overlap");
  EXPECT_EQ(ToString(OverlapScope::kLayer), "layer-overlap");
  EXPECT_EQ(ToString(CollectiveAlgo::kRing), "ring");
  EXPECT_EQ(ToString(CollectiveAlgo::kAuto), "auto");
}

TEST(ApiSurface, TpPlanToStringMentionsPolicyAndDegree) {
  auto plan = MakeTpPlan(Llama3_70B(), 16).value();
  std::string s = plan.ToString();
  EXPECT_NE(s.find("tp16"), std::string::npos);
  EXPECT_NE(s.find("rep=2"), std::string::npos);
  EXPECT_NE(s.find("replicate"), std::string::npos);
}

TEST(ApiSurface, LiteDeriveToStringMentionsFeasibility) {
  LiteDeriveOptions options;
  std::string s = DeriveLite(H100(), options).ToString();
  EXPECT_NE(s.find("feasible"), std::string::npos);
  EXPECT_NE(s.find("TFLOPS"), std::string::npos);
}

TEST(ApiSurface, PoolPlanToStringContainsCounts) {
  PoolDemand demand;
  InstanceCapacity capacity;
  capacity.prefill_tokens_per_s = 10000.0;
  capacity.decode_tokens_per_s = 10000.0;
  capacity.prefill_gpus = 2;
  capacity.decode_gpus = 4;
  std::string s = SizePools(demand, capacity).ToString();
  EXPECT_NE(s.find("prefill"), std::string::npos);
  EXPECT_NE(s.find("decode"), std::string::npos);
  EXPECT_NE(s.find("GPUs"), std::string::npos);
}

TEST(ApiSurface, TableAlignmentControlsPadding) {
  Table t({"col"});
  t.SetAlign(0, Align::kRight);
  t.AddRow({"x"});
  t.AddRow({"wider"});
  std::string text = t.ToText();
  // Right-aligned: "x" is padded on the left within its cell.
  EXPECT_NE(text.find("|     x |"), std::string::npos);
  t.SetAlign(0, Align::kLeft);
  text = t.ToText();
  EXPECT_NE(text.find("| x     |"), std::string::npos);
  // Out-of-range column index is ignored, not UB.
  t.SetAlign(99, Align::kRight);
}

TEST(ApiSurface, TableSeparatorRendersRule) {
  Table t({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string text = t.ToText();
  // header rule + top + separator + bottom = 4 rules.
  size_t rules = 0;
  for (size_t pos = text.find("+-"); pos != std::string::npos;
       pos = text.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(ApiSurface, HistogramAsciiHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 1.6, 2.5, 3.5, 3.6, 3.7}) {
    h.Add(x);
  }
  std::string art = h.ToAscii(10);
  size_t lines = 0;
  for (char c : art) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(ApiSurface, RunningStatSumAndSampleAccess) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 3.0);
  SampleSet set;
  set.Reserve(4);
  set.Add(3.0);
  set.Add(1.0);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 3.0);
  EXPECT_DOUBLE_EQ(set.mean(), 2.0);
}

TEST(ApiSurface, GpuSpecRatiosOnDegenerateInputs) {
  GpuSpec g;
  EXPECT_DOUBLE_EQ(g.FlopsPerSm(), 0.0);
  EXPECT_DOUBLE_EQ(g.MemBwPerFlop(), 0.0);
  EXPECT_DOUBLE_EQ(g.NetBwPerFlop(), 0.0);
  EXPECT_DOUBLE_EQ(g.PowerDensityWPerMm2(), 0.0);
}

}  // namespace
}  // namespace litegpu
