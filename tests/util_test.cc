#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/util/format.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace litegpu {
namespace {

// --- format ---

TEST(Format, FormatDoubleBasic) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(Format, FormatDoubleTrimsNegativeZero) {
  EXPECT_EQ(FormatDouble(-0.0001, 2), "0.00");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(HumanBytes(3.352e12), "3.35 TB");
  EXPECT_EQ(HumanBytes(80e9), "80.00 GB");
  EXPECT_EQ(HumanBytes(512), "512.00 B");
}

TEST(Format, HumanBandwidth) { EXPECT_EQ(HumanBandwidth(450e9), "450.00 GB/s"); }

TEST(Format, HumanFlops) { EXPECT_EQ(HumanFlops(2e15), "2.00 PFLOPS"); }

TEST(Format, HumanTimePicksUnits) {
  EXPECT_EQ(HumanTime(1.5), "1.50 s");
  EXPECT_EQ(HumanTime(0.05), "50.00 ms");
  EXPECT_EQ(HumanTime(31e-6), "31.00 us");
  EXPECT_EQ(HumanTime(2e-9), "2.00 ns");
}

TEST(Format, HumanPower) { EXPECT_EQ(HumanPower(35000), "35.00 kW"); }

TEST(Format, HumanPercent) { EXPECT_EQ(HumanPercent(0.1234), "12.34%"); }

TEST(Units, Consistency) {
  EXPECT_DOUBLE_EQ(kTFLOPS, 1000.0 * kGFLOPS);
  EXPECT_DOUBLE_EQ(kGB, 1e9);
  EXPECT_DOUBLE_EQ(kGiB, 1073741824.0);
  EXPECT_DOUBLE_EQ(kHour, 60.0 * kMinute);
  EXPECT_DOUBLE_EQ(kGbps * 8.0, kGB);
}

// --- table ---

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.row(0).size(), 3u);
  EXPECT_EQ(t.row(0)[1], "");
}

TEST(Table, CsvEscaping) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, ToCsvRoundTrip) {
  Table t({"k", "v"});
  t.AddRow({"x,y", "1"});
  std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "k,v\n\"x,y\",1\n");
}

// --- stats ---

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-6);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Median(), 50.5);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
}

TEST(SampleSet, QuantileClampsOutOfRange) {
  SampleSet s;
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), 5.0);
}

TEST(LatencyHistogram, ExactScalarStatsAndStreamingQuantiles) {
  LatencyHistogram h(/*hi=*/1.0, /*bins=*/1000);
  SampleSet exact;
  for (int i = 1; i <= 500; ++i) {
    double x = 0.001 * i;  // 1 ms .. 500 ms
    h.Add(x);
    exact.Add(x);
  }
  EXPECT_EQ(h.count(), 500u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.500);
  EXPECT_NEAR(h.mean(), exact.mean(), 1e-12);
  // Percentiles land within one bin width of the exact sample quantiles.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_NEAR(h.Quantile(q), exact.Quantile(q), h.bin_width()) << q;
  }
}

TEST(LatencyHistogram, BimodalQuantileStraddlingAGapStaysWithinOneBin) {
  // 99 samples at 5 ms plus one at 500 ms: the exact p99 interpolates into
  // the empty gap between the modes (9.95 ms). The histogram must follow
  // the same rank-interpolation convention, not snap to the lower mode.
  LatencyHistogram h;  // default 16384 bins over [0, 1s)
  SampleSet exact;
  for (int i = 0; i < 99; ++i) {
    h.Add(0.005);
    exact.Add(0.005);
  }
  h.Add(0.500);
  exact.Add(0.500);
  EXPECT_NEAR(h.P99(), exact.P99(), h.bin_width());
  EXPECT_NEAR(h.Median(), exact.Median(), h.bin_width());
  EXPECT_NEAR(h.Quantile(1.0), 0.500, 1e-12);
}

TEST(LatencyHistogram, OverflowSamplesReportExactMax) {
  LatencyHistogram h(/*hi=*/0.010, /*bins=*/10);
  h.Add(0.001);
  h.Add(2.5);  // way past the binned range
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.5);
  // Quantiles never escape the observed [min, max].
  EXPECT_GE(h.Quantile(0.0), 0.001);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, CountAtOrBelowInterpolatesAndIsExactAtBoundaries) {
  LatencyHistogram h(/*hi=*/1.0, /*bins=*/10);  // bin width 0.1
  for (int i = 0; i < 4; ++i) {
    h.Add(0.05);  // bin 0
  }
  h.Add(0.25);  // bin 2
  h.Add(1.7);   // overflow
  // Bin boundaries count whole bins (to within rounding of the bin index).
  EXPECT_NEAR(h.CountAtOrBelow(0.1), 4.0, 1e-9);
  EXPECT_NEAR(h.CountAtOrBelow(0.2), 4.0, 1e-9);
  EXPECT_NEAR(h.CountAtOrBelow(0.3), 5.0, 1e-9);
  // Mid-bin thresholds interpolate within the containing bin.
  EXPECT_NEAR(h.CountAtOrBelow(0.05), 2.0, 1e-9);
  EXPECT_NEAR(h.CountAtOrBelow(0.25), 4.5, 1e-9);
  // Everything at or past the range end includes the overflow bucket.
  EXPECT_DOUBLE_EQ(h.CountAtOrBelow(5.0), 6.0);
  EXPECT_DOUBLE_EQ(h.CountAtOrBelow(0.0), 0.0);
}

TEST(LatencyHistogram, MergeMatchesStreamingEverySampleThroughOne) {
  // The shard merge contract: bin-wise merge of per-shard histograms is
  // indistinguishable from one histogram that saw every sample.
  LatencyHistogram a(/*hi=*/1.0, /*bins=*/256);
  LatencyHistogram b(/*hi=*/1.0, /*bins=*/256);
  LatencyHistogram all(/*hi=*/1.0, /*bins=*/256);
  for (int i = 0; i < 500; ++i) {
    double x = 0.002 * static_cast<double>(i % 300);  // some overflow >= 1.0
    LatencyHistogram& shard = (i % 2 == 0) ? a : b;
    shard.Add(x);
    all.Add(x);
  }
  a.Add(0.5, 25);  // weighted adds merge too
  all.Add(0.5, 25);
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(a.CountAtOrBelow(0.35), all.CountAtOrBelow(0.35));
  // Merging an empty histogram is the identity.
  LatencyHistogram empty(/*hi=*/1.0, /*bins=*/256);
  double before = a.Quantile(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), before);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(-5.0);   // clamps to first
  h.Add(100.0);  // clamps to last
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 10.0);
}

// --- rng ---

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToCenter) {
  Rng rng(3);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) {
    s.Add(rng.Uniform(10.0, 20.0));
  }
  EXPECT_NEAR(s.mean(), 15.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) {
    s.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) {
    s.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.03);
  EXPECT_NEAR(s.stddev(), 2.0, 0.03);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 50000; ++i) {
    small.Add(static_cast<double>(rng.Poisson(3.0)));
    large.Add(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
}

TEST(Rng, NextBelowUnbiasedCoverage) {
  Rng rng(19);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace litegpu
