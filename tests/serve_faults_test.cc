// Fault-injection engine tests: substream stability, the no-traffic
// availability cross-check against the closed forms in
// src/reliability/failure_model.h (satellite of the serve-path fault work,
// mirroring how McSim is validated), and the serve-loop integration —
// conservation under kill/retry/drop, table-vs-callback fault-log identity,
// and the disabled path staying inert.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "src/hw/catalog.h"
#include "src/reliability/failure_model.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

constexpr double kSecondsPerYear = 8766.0 * 3600.0;

// --- names and substreams ---

TEST(Faults, RetryPolicyRoundTripsThroughNames) {
  for (FaultRetryPolicy policy :
       {FaultRetryPolicy::kRetry, FaultRetryPolicy::kDrop,
        FaultRetryPolicy::kRetryWithBudget}) {
    FaultRetryPolicy parsed;
    ASSERT_TRUE(ParseFaultRetryPolicy(ToString(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  FaultRetryPolicy unused;
  EXPECT_FALSE(ParseFaultRetryPolicy("rety", &unused));
  EXPECT_FALSE(ParseFaultRetryPolicy("", &unused));
}

TEST(Faults, SubstreamSeedDisjointFromWorkloadStreams) {
  // Enabling faults must never perturb arrivals or request lengths: the
  // fault seed is a distinct mix of the scenario seed, not the seed itself
  // or any class substream.
  uint64_t fault_seed = FaultSubstreamSeed(42);
  EXPECT_NE(fault_seed, 42u);
  for (int cls = 0; cls < 8; ++cls) {
    EXPECT_NE(fault_seed, ClassSubstreamSeed(42, cls)) << cls;
  }
  EXPECT_EQ(fault_seed, FaultSubstreamSeed(42));  // deterministic
  EXPECT_NE(fault_seed, FaultSubstreamSeed(43));
}

TEST(Faults, SlotStreamsDependOnlyOnPoolAndSlot) {
  // A slot's gap sequence must not depend on when the slot is first asked
  // or what other slots drew — that is what makes autoscaled instances
  // appearing mid-run deterministic.
  FaultStreams a(7);
  FaultStreams b(7);
  // Interrogate b's slots in a scrambled order with extra draws elsewhere.
  (void)b.NextFailureGap(ScalePool::kDecode, 3, 1.0);
  (void)b.NextFailureGap(ScalePool::kPrefill, 1, 1.0);
  (void)b.NextFailureGap(ScalePool::kDecode, 0, 1.0);
  FaultStreams c(7);
  double a0 = a.NextFailureGap(ScalePool::kPrefill, 0, 0.5);
  double c0 = c.NextFailureGap(ScalePool::kPrefill, 0, 0.5);
  EXPECT_EQ(a0, c0);
  // b already consumed prefill slot 1's first draw; slot 0 is untouched.
  EXPECT_EQ(b.NextFailureGap(ScalePool::kPrefill, 0, 0.5), a0);
  // Pools draw from different streams even at the same slot index.
  FaultStreams d(7);
  FaultStreams e(7);
  EXPECT_NE(d.NextFailureGap(ScalePool::kPrefill, 0, 1.0),
            e.NextFailureGap(ScalePool::kDecode, 0, 1.0));
}

// --- no-traffic availability cross-check against the closed forms ---

TEST(FaultAvailability, MatchesClosedFormNoSpares) {
  FailureParams params;
  double rate = InstanceFailureRatePerSecond(H100(), 8, params);
  FaultAvailabilityStats stats = SimulateFaultAvailability(
      rate, params.mttr_hours * 3600.0, params.spare_activation_minutes * 60.0,
      /*num_spares=*/0, /*num_instances=*/4,
      /*duration_s=*/500.0 * kSecondsPerYear, /*seed=*/1);
  EXPECT_GT(stats.failures, 100);
  EXPECT_EQ(stats.spare_masked, 0);
  double expected = InstanceAvailabilityWithSpares(H100(), 8, 4, 0, params);
  EXPECT_NEAR(stats.availability, expected, 0.002);
}

TEST(FaultAvailability, MatchesClosedFormWithSpares) {
  FailureParams params;
  double rate = InstanceFailureRatePerSecond(Lite(), 32, params);
  FaultAvailabilityStats stats = SimulateFaultAvailability(
      rate, params.mttr_hours * 3600.0, params.spare_activation_minutes * 60.0,
      /*num_spares=*/2, /*num_instances=*/4,
      /*duration_s=*/500.0 * kSecondsPerYear, /*seed=*/1);
  EXPECT_GT(stats.failures, 100);
  EXPECT_GT(stats.spare_masked, stats.failures / 2);
  double expected = InstanceAvailabilityWithSpares(Lite(), 32, 4, 2, params);
  EXPECT_NEAR(stats.availability, expected, 0.002);
  // ExpectedCapacityFraction is the same steady state seen cluster-wide.
  EXPECT_NEAR(stats.availability,
              ExpectedCapacityFraction(Lite(), 32, 4, 2, params), 0.002);
}

TEST(FaultAvailability, DeterministicAndSeedSensitive) {
  FaultAvailabilityStats a =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 9);
  FaultAvailabilityStats b =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 9);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.spare_masked, b.spare_masked);
  EXPECT_EQ(a.availability, b.availability);
  FaultAvailabilityStats c =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 10);
  EXPECT_NE(a.availability, c.availability);
}

TEST(FaultAvailability, SparesMaskFailures) {
  FaultAvailabilityStats none =
      SimulateFaultAvailability(1e-5, 7200.0, 60.0, 0, 8, 1e8, 3);
  FaultAvailabilityStats spared =
      SimulateFaultAvailability(1e-5, 7200.0, 60.0, 4, 8, 1e8, 3);
  EXPECT_EQ(none.spare_masked, 0);
  EXPECT_GT(spared.spare_masked, 0);
  EXPECT_GT(spared.availability, none.availability);
}

// --- serve-loop integration ---

ServeCallbacks SimpleCallbacks() {
  ServeCallbacks cb;
  cb.prefill_time = [](int batch) { return 0.05 * std::sqrt(batch); };
  cb.decode_step_time = [](int batch) { return 5e-3 + 1e-4 * batch; };
  cb.max_prefill_batch = 8;
  cb.max_decode_batch = 64;
  return cb;
}

std::vector<Request> FixedRequests(int n, double spacing_s, int output_tokens = 32) {
  std::vector<Request> requests;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = i * spacing_s;
    r.prompt_tokens = 1500;
    r.output_tokens = output_tokens;
    requests.push_back(r);
  }
  return requests;
}

ServeFaultConfig ChurnyFaults(FaultRetryPolicy policy) {
  // Rates high enough that a few-second run sees multiple failures per
  // pool — this is the accelerated-churn regime the checked-in faulty
  // example also uses.
  ServeFaultConfig faults;
  faults.enabled = true;
  faults.prefill_failure_rate_per_s = 0.5;
  faults.decode_failure_rate_per_s = 1.0;
  faults.repair_s = 0.5;
  faults.spare_activation_s = 0.1;
  faults.prefill_spares = 1;
  faults.decode_spares = 1;
  faults.retry_policy = policy;
  faults.seed = FaultSubstreamSeed(42);
  return faults;
}

TEST(SimulatorFaults, DisabledFaultsStayInert) {
  auto requests = FixedRequests(100, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_TRUE(m.fault_events.empty());
  EXPECT_EQ(m.retried_requests, 0);
  EXPECT_EQ(m.dropped_requests, 0);
  EXPECT_DOUBLE_EQ(m.lost_tokens, 0.0);
  EXPECT_DOUBLE_EQ(m.prefill_fault_downtime_s, 0.0);
  EXPECT_DOUBLE_EQ(m.decode_fault_downtime_s, 0.0);
}

TEST(SimulatorFaults, RetryPolicyConservesRequests) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  // Retried work always re-serves: nothing is dropped, everything admitted
  // eventually completes.
  EXPECT_EQ(m.completed_requests, m.admitted_requests);
  EXPECT_EQ(m.dropped_requests, 0);
  EXPECT_GT(m.retried_requests, 0);
  // The log saw real churn, in simulated-time order, with consistent
  // aggregate accounting.
  ASSERT_FALSE(m.fault_events.empty());
  int failures = 0;
  int killed = 0;
  double lost = 0.0;
  for (size_t i = 0; i < m.fault_events.size(); ++i) {
    const FaultEvent& ev = m.fault_events[i];
    if (i > 0) {
      EXPECT_GE(ev.time_s, m.fault_events[i - 1].time_s);
    }
    EXPECT_GE(ev.spares_free, 0);
    if (ev.kind == FaultEventKind::kFailure) {
      ++failures;
      killed += ev.killed_requests;
      lost += ev.lost_tokens;
    } else {
      EXPECT_EQ(ev.killed_requests, 0);
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_EQ(m.retried_requests, killed);
  EXPECT_DOUBLE_EQ(m.lost_tokens, lost);
  EXPECT_GT(m.prefill_fault_downtime_s + m.decode_fault_downtime_s, 0.0);
  // Killed decode tokens were subtracted from goodput: the total is below
  // the fault-free total of sum(output_tokens).
  EXPECT_LE(m.output_tokens, 300.0 * 32.0);
}

TEST(SimulatorFaults, DropPolicyDropsKilledRequests) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kDrop);
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_GT(m.dropped_requests, 0);
  EXPECT_EQ(m.retried_requests, 0);
  EXPECT_EQ(m.completed_requests + m.dropped_requests, m.admitted_requests);
  EXPECT_LT(m.output_tokens, 300.0 * 32.0);
}

TEST(SimulatorFaults, RetryBudgetFallsBetweenRetryAndDrop) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetryWithBudget);
  config.faults.retry_budget = 1;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  // Every admitted request either completes or exhausts its budget.
  EXPECT_EQ(m.completed_requests + m.dropped_requests, m.admitted_requests);
  EXPECT_GT(m.retried_requests, 0);
  // With budget 0 the policy degenerates to drop-on-first-kill.
  ServeClusterConfig no_budget = config;
  no_budget.faults.retry_budget = 0;
  ServeMetrics z = RunServeSimulation(requests, no_budget, SimpleCallbacks());
  EXPECT_EQ(z.retried_requests, 0);
  EXPECT_EQ(z.completed_requests + z.dropped_requests, z.admitted_requests);
}

TEST(SimulatorFaults, FaultLogBitIdenticalOnTableAndCallbackPaths) {
  ServeCallbacks cb = SimpleCallbacks();
  std::vector<double> prefill_s, decode_s;
  for (int b = 1; b <= cb.max_prefill_batch; ++b) {
    prefill_s.push_back(cb.prefill_time(b));
  }
  for (int b = 1; b <= cb.max_decode_batch; ++b) {
    decode_s.push_back(cb.decode_step_time(b));
  }
  StepTimeTable table(std::move(prefill_s), std::move(decode_s));

  auto requests = FixedRequests(400, 0.01, 32);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 5.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics a = RunServeSimulation(requests, config, cb);
  ServeMetrics b = RunServeSimulation(requests, config, table);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.lost_tokens, b.lost_tokens);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.prefill_fault_downtime_s, b.prefill_fault_downtime_s);
  EXPECT_EQ(a.decode_fault_downtime_s, b.decode_fault_downtime_s);
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (size_t i = 0; i < a.fault_events.size(); ++i) {
    const FaultEvent& x = a.fault_events[i];
    const FaultEvent& y = b.fault_events[i];
    EXPECT_EQ(x.time_s, y.time_s) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.pool, y.pool) << i;
    EXPECT_EQ(x.instance, y.instance) << i;
    EXPECT_EQ(x.killed_requests, y.killed_requests) << i;
    EXPECT_EQ(x.lost_tokens, y.lost_tokens) << i;
    EXPECT_EQ(x.spares_free, y.spares_free) << i;
  }
}

// --- correlated failure domains ---

ServeFaultConfig DomainFaults(uint64_t scenario_seed) {
  // Domain outages only: independent per-instance churn off, so every
  // kFailure in the log carries a domain id.
  ServeFaultConfig faults;
  faults.enabled = true;
  faults.repair_s = 0.5;
  faults.domains.prefill_instances_per_domain = 2;
  faults.domains.decode_instances_per_domain = 3;
  faults.domains.failure_rate_per_s = 0.4;
  faults.domains.repair_s = 0.6;
  faults.seed = FaultSubstreamSeed(scenario_seed);
  return faults;
}

TEST(SimulatorFaults, DomainFailureKillsExactlyItsLiveMembers) {
  // Property test over seeds: replaying the fault log with a down-set per
  // pool, every domain outage must kill exactly the members of its domain
  // that were up — no outsiders, no double-kills, no survivors.
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    auto requests = FixedRequests(400, 0.01);
    ServeClusterConfig config;
    config.prefill_instances = 5;  // domains of 2 -> last domain has 1 member
    config.decode_instances = 8;   // domains of 3 -> last domain has 2
    config.horizon_s = 8.0;
    config.faults = DomainFaults(seed);
    ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
    ASSERT_FALSE(m.fault_events.empty()) << seed;
    std::set<int> down[2];
    int outages = 0;
    for (size_t i = 0; i < m.fault_events.size();) {
      const FaultEvent& e = m.fault_events[i];
      int pool = e.pool == ScalePool::kPrefill ? 0 : 1;
      if (e.kind != FaultEventKind::kFailure) {
        if (e.kind == FaultEventKind::kRepair ||
            e.kind == FaultEventKind::kSpareActivation) {
          down[pool].erase(e.instance);
        }
        ++i;
        continue;
      }
      ASSERT_GE(e.domain, 0) << "independent failure with domain churn only";
      // Collect the whole outage group: same time, pool, and domain.
      std::set<int> killed;
      size_t j = i;
      while (j < m.fault_events.size() &&
             m.fault_events[j].kind == FaultEventKind::kFailure &&
             m.fault_events[j].time_s == e.time_s &&
             m.fault_events[j].pool == e.pool &&
             m.fault_events[j].domain == e.domain) {
        EXPECT_TRUE(killed.insert(m.fault_events[j].instance).second)
            << "instance killed twice in one outage";
        ++j;
      }
      int per_domain = pool == 0 ? config.faults.domains.prefill_instances_per_domain
                                 : config.faults.domains.decode_instances_per_domain;
      int n = pool == 0 ? config.prefill_instances : config.decode_instances;
      std::set<int> expected;
      for (int k = e.domain * per_domain;
           k < std::min(n, (e.domain + 1) * per_domain); ++k) {
        if (down[pool].count(k) == 0) {
          expected.insert(k);
        }
      }
      EXPECT_EQ(killed, expected)
          << "seed " << seed << " outage at t=" << e.time_s << " domain "
          << e.domain;
      down[pool].insert(killed.begin(), killed.end());
      ++outages;
      i = j;
    }
    EXPECT_GT(outages, 0) << seed;
  }
}

TEST(SimulatorFaults, ThreeAxisLogsBitIdenticalOnTableAndCallbackPaths) {
  // Domains + degradation + shedding all on: fault and shed logs must stay
  // element-wise identical between the dense-table and callback paths.
  ServeCallbacks cb = SimpleCallbacks();
  std::vector<double> prefill_s, decode_s;
  for (int b = 1; b <= cb.max_prefill_batch; ++b) {
    prefill_s.push_back(cb.prefill_time(b));
  }
  for (int b = 1; b <= cb.max_decode_batch; ++b) {
    decode_s.push_back(cb.decode_step_time(b));
  }
  StepTimeTable table(std::move(prefill_s), std::move(decode_s));

  auto requests = FixedRequests(400, 0.005, 32);
  ServeClusterConfig config;
  config.prefill_instances = 4;
  config.decode_instances = 6;
  config.horizon_s = 5.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  config.faults.domains.prefill_instances_per_domain = 2;
  config.faults.domains.decode_instances_per_domain = 3;
  config.faults.domains.failure_rate_per_s = 0.3;
  config.faults.domains.repair_s = 0.4;
  config.faults.degraded.prefill_rate_per_s = 0.2;
  config.faults.degraded.decode_rate_per_s = 0.2;
  config.faults.degraded.multiplier = 2.0;
  config.faults.degraded.mean_duration_s = 0.5;
  config.shedding.max_queue_depth = 8;
  ServeMetrics a = RunServeSimulation(requests, config, cb);
  ServeMetrics b = RunServeSimulation(requests, config, table);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.prefill_degraded_instance_s, b.prefill_degraded_instance_s);
  EXPECT_EQ(a.decode_degraded_instance_s, b.decode_degraded_instance_s);
  EXPECT_EQ(a.degrade_windows, b.degrade_windows);
  EXPECT_EQ(a.degraded_output_tokens, b.degraded_output_tokens);
  EXPECT_EQ(a.largest_outage_time_s, b.largest_outage_time_s);
  EXPECT_EQ(a.time_to_drain_s, b.time_to_drain_s);
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (size_t i = 0; i < a.fault_events.size(); ++i) {
    const FaultEvent& x = a.fault_events[i];
    const FaultEvent& y = b.fault_events[i];
    EXPECT_EQ(x.time_s, y.time_s) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.pool, y.pool) << i;
    EXPECT_EQ(x.instance, y.instance) << i;
    EXPECT_EQ(x.domain, y.domain) << i;
    EXPECT_EQ(x.killed_requests, y.killed_requests) << i;
    EXPECT_EQ(x.lost_tokens, y.lost_tokens) << i;
    EXPECT_EQ(x.spares_free, y.spares_free) << i;
  }
  ASSERT_EQ(a.shed_events.size(), b.shed_events.size());
  for (size_t i = 0; i < a.shed_events.size(); ++i) {
    EXPECT_EQ(a.shed_events[i].time_s, b.shed_events[i].time_s) << i;
    EXPECT_EQ(a.shed_events[i].request, b.shed_events[i].request) << i;
    EXPECT_EQ(a.shed_events[i].reason, b.shed_events[i].reason) << i;
  }
}

// --- degraded states ---

TEST(SimulatorFaults, DegradedStepTimesMatchHandComputedSchedule) {
  // One request on one decode instance: every step dispatches sequentially,
  // so the makespan is exactly the sum of per-step durations. Replicate the
  // engine's degrade stream with a second FaultStreams and hand-compute the
  // schedule, applying the multiplier to steps dispatched inside a window
  // (half-open [start, end): the end event fires before a step dispatched
  // at the same timestamp).
  constexpr int kTokens = 64;
  constexpr double kRate = 0.8;
  constexpr double kMult = 3.0;
  constexpr double kMean = 0.2;
  ServeCallbacks cb = SimpleCallbacks();
  std::vector<Request> requests = FixedRequests(1, 0.0, kTokens);
  ServeClusterConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  config.horizon_s = 100.0;
  config.faults.enabled = true;
  config.faults.degraded.decode_rate_per_s = kRate;
  config.faults.degraded.multiplier = kMult;
  config.faults.degraded.mean_duration_s = kMean;
  config.faults.seed = FaultSubstreamSeed(42);
  ServeMetrics m = RunServeSimulation(requests, config, cb);
  EXPECT_EQ(m.completed_requests, 1);

  FaultStreams replica(config.faults.seed);
  std::vector<std::pair<double, double>> windows;  // [start, end)
  double cursor = 0.0;
  while (cursor < 100.0) {
    double start = cursor + replica.NextDegradeGap(ScalePool::kDecode, 0, kRate);
    double duration = replica.NextDegradeDuration(ScalePool::kDecode, 0, kMean);
    windows.emplace_back(start, start + duration);
    cursor = start + duration;
  }
  auto throttled = [&](double t) {
    for (const auto& w : windows) {
      if (w.first <= t && t < w.second) {
        return true;
      }
    }
    return false;
  };
  double t = cb.prefill_time(1);  // prefill dispatched at arrival 0
  double base = cb.decode_step_time(1);
  double degraded_tokens = 0.0;
  for (int k = 0; k < kTokens; ++k) {
    double step = base;
    if (throttled(t)) {
      step *= kMult;
    }
    t += step;
    if (throttled(t)) {  // token counted if degraded at step completion
      degraded_tokens += 1.0;
    }
  }
  EXPECT_DOUBLE_EQ(m.makespan_s, t);
  EXPECT_DOUBLE_EQ(m.degraded_output_tokens, degraded_tokens);
  // Degraded instance-seconds integrate every window whose start falls
  // inside the admission horizon, busy or idle: starts are horizon-gated
  // like failure injection, but an entered window always runs its course.
  double expected_s = 0.0;
  for (const auto& w : windows) {
    if (w.first <= config.horizon_s) {
      expected_s += w.second - w.first;
    }
  }
  EXPECT_DOUBLE_EQ(m.decode_degraded_instance_s, expected_s);
  EXPECT_DOUBLE_EQ(m.prefill_degraded_instance_s, 0.0);
  EXPECT_GT(m.degrade_windows, 0);
}

// --- overload protection ---

TEST(SimulatorShedding, QueueDepthCapConservesRequests) {
  // A burst far beyond capacity with a tight depth cap: once the run
  // drains, every admitted request either completed or was shed (no faults,
  // so nothing drops), and the shed log is time-ordered with one entry per
  // shed request.
  auto requests = FixedRequests(500, 0.001);
  ServeClusterConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  config.horizon_s = 30.0;
  config.shedding.max_queue_depth = 16;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_GT(m.shed_requests, 0);
  EXPECT_EQ(m.dropped_requests, 0);
  EXPECT_EQ(m.admitted_requests, m.completed_requests + m.shed_requests);
  ASSERT_EQ(m.shed_events.size(), static_cast<size_t>(m.shed_requests));
  for (size_t i = 0; i < m.shed_events.size(); ++i) {
    EXPECT_EQ(m.shed_events[i].reason, ShedReason::kQueueDepth) << i;
    if (i > 0) {
      EXPECT_GE(m.shed_events[i].time_s, m.shed_events[i - 1].time_s);
    }
  }
  // Shedding with faults on still conserves: admitted = completed +
  // dropped + shed.
  ServeClusterConfig faulty = config;
  faulty.faults = ChurnyFaults(FaultRetryPolicy::kDrop);
  ServeMetrics fm = RunServeSimulation(requests, faulty, SimpleCallbacks());
  EXPECT_GT(fm.shed_requests, 0);
  EXPECT_EQ(fm.admitted_requests,
            fm.completed_requests + fm.dropped_requests + fm.shed_requests);
}

TEST(SimulatorShedding, TtftDeadlineBelowOnePassShedsEverything) {
  // The TTFT estimate is at least one full-batch prefill pass, so a
  // deadline below that sheds every arrival with the deadline reason.
  ServeCallbacks cb = SimpleCallbacks();
  auto requests = FixedRequests(50, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.shedding.ttft_deadline_s = 0.5 * cb.prefill_time(cb.max_prefill_batch);
  ServeMetrics m = RunServeSimulation(requests, config, cb);
  EXPECT_EQ(m.shed_requests, 50);
  EXPECT_EQ(m.completed_requests, 0);
  for (const ShedEvent& e : m.shed_events) {
    EXPECT_EQ(e.reason, ShedReason::kDeadline);
  }
}

TEST(SimulatorShedding, DisabledSheddingMatchesBaseline) {
  // The shedding checks must cost nothing when off: metrics are identical
  // to a pre-shedding run of the same config.
  auto requests = FixedRequests(300, 0.002);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  ServeMetrics off = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_EQ(off.shed_requests, 0);
  EXPECT_TRUE(off.shed_events.empty());
  ServeClusterConfig loose = config;
  loose.shedding.max_queue_depth = 1 << 30;  // enabled but never trips
  ServeMetrics on = RunServeSimulation(requests, loose, SimpleCallbacks());
  EXPECT_EQ(on.shed_requests, 0);
  EXPECT_EQ(off.makespan_s, on.makespan_s);
  EXPECT_EQ(off.output_tokens, on.output_tokens);
  EXPECT_EQ(off.completed_requests, on.completed_requests);
}

TEST(SimulatorFaults, RerunsAreDeterministic) {
  auto requests = FixedRequests(200, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 5.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics a = RunServeSimulation(requests, config, SimpleCallbacks());
  ServeMetrics b = RunServeSimulation(requests, config, SimpleCallbacks());
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
}

}  // namespace
}  // namespace litegpu
