// Fault-injection engine tests: substream stability, the no-traffic
// availability cross-check against the closed forms in
// src/reliability/failure_model.h (satellite of the serve-path fault work,
// mirroring how McSim is validated), and the serve-loop integration —
// conservation under kill/retry/drop, table-vs-callback fault-log identity,
// and the disabled path staying inert.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/hw/catalog.h"
#include "src/reliability/failure_model.h"
#include "src/serve/simulator.h"
#include "src/serve/workload.h"

namespace litegpu {
namespace {

constexpr double kSecondsPerYear = 8766.0 * 3600.0;

// --- names and substreams ---

TEST(Faults, RetryPolicyRoundTripsThroughNames) {
  for (FaultRetryPolicy policy :
       {FaultRetryPolicy::kRetry, FaultRetryPolicy::kDrop,
        FaultRetryPolicy::kRetryWithBudget}) {
    FaultRetryPolicy parsed;
    ASSERT_TRUE(ParseFaultRetryPolicy(ToString(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  FaultRetryPolicy unused;
  EXPECT_FALSE(ParseFaultRetryPolicy("rety", &unused));
  EXPECT_FALSE(ParseFaultRetryPolicy("", &unused));
}

TEST(Faults, SubstreamSeedDisjointFromWorkloadStreams) {
  // Enabling faults must never perturb arrivals or request lengths: the
  // fault seed is a distinct mix of the scenario seed, not the seed itself
  // or any class substream.
  uint64_t fault_seed = FaultSubstreamSeed(42);
  EXPECT_NE(fault_seed, 42u);
  for (int cls = 0; cls < 8; ++cls) {
    EXPECT_NE(fault_seed, ClassSubstreamSeed(42, cls)) << cls;
  }
  EXPECT_EQ(fault_seed, FaultSubstreamSeed(42));  // deterministic
  EXPECT_NE(fault_seed, FaultSubstreamSeed(43));
}

TEST(Faults, SlotStreamsDependOnlyOnPoolAndSlot) {
  // A slot's gap sequence must not depend on when the slot is first asked
  // or what other slots drew — that is what makes autoscaled instances
  // appearing mid-run deterministic.
  FaultStreams a(7);
  FaultStreams b(7);
  // Interrogate b's slots in a scrambled order with extra draws elsewhere.
  (void)b.NextFailureGap(ScalePool::kDecode, 3, 1.0);
  (void)b.NextFailureGap(ScalePool::kPrefill, 1, 1.0);
  (void)b.NextFailureGap(ScalePool::kDecode, 0, 1.0);
  FaultStreams c(7);
  double a0 = a.NextFailureGap(ScalePool::kPrefill, 0, 0.5);
  double c0 = c.NextFailureGap(ScalePool::kPrefill, 0, 0.5);
  EXPECT_EQ(a0, c0);
  // b already consumed prefill slot 1's first draw; slot 0 is untouched.
  EXPECT_EQ(b.NextFailureGap(ScalePool::kPrefill, 0, 0.5), a0);
  // Pools draw from different streams even at the same slot index.
  FaultStreams d(7);
  FaultStreams e(7);
  EXPECT_NE(d.NextFailureGap(ScalePool::kPrefill, 0, 1.0),
            e.NextFailureGap(ScalePool::kDecode, 0, 1.0));
}

// --- no-traffic availability cross-check against the closed forms ---

TEST(FaultAvailability, MatchesClosedFormNoSpares) {
  FailureParams params;
  double rate = InstanceFailureRatePerSecond(H100(), 8, params);
  FaultAvailabilityStats stats = SimulateFaultAvailability(
      rate, params.mttr_hours * 3600.0, params.spare_activation_minutes * 60.0,
      /*num_spares=*/0, /*num_instances=*/4,
      /*duration_s=*/500.0 * kSecondsPerYear, /*seed=*/1);
  EXPECT_GT(stats.failures, 100);
  EXPECT_EQ(stats.spare_masked, 0);
  double expected = InstanceAvailabilityWithSpares(H100(), 8, 4, 0, params);
  EXPECT_NEAR(stats.availability, expected, 0.002);
}

TEST(FaultAvailability, MatchesClosedFormWithSpares) {
  FailureParams params;
  double rate = InstanceFailureRatePerSecond(Lite(), 32, params);
  FaultAvailabilityStats stats = SimulateFaultAvailability(
      rate, params.mttr_hours * 3600.0, params.spare_activation_minutes * 60.0,
      /*num_spares=*/2, /*num_instances=*/4,
      /*duration_s=*/500.0 * kSecondsPerYear, /*seed=*/1);
  EXPECT_GT(stats.failures, 100);
  EXPECT_GT(stats.spare_masked, stats.failures / 2);
  double expected = InstanceAvailabilityWithSpares(Lite(), 32, 4, 2, params);
  EXPECT_NEAR(stats.availability, expected, 0.002);
  // ExpectedCapacityFraction is the same steady state seen cluster-wide.
  EXPECT_NEAR(stats.availability,
              ExpectedCapacityFraction(Lite(), 32, 4, 2, params), 0.002);
}

TEST(FaultAvailability, DeterministicAndSeedSensitive) {
  FaultAvailabilityStats a =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 9);
  FaultAvailabilityStats b =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 9);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.spare_masked, b.spare_masked);
  EXPECT_EQ(a.availability, b.availability);
  FaultAvailabilityStats c =
      SimulateFaultAvailability(1e-6, 3600.0, 60.0, 1, 4, 1e8, 10);
  EXPECT_NE(a.availability, c.availability);
}

TEST(FaultAvailability, SparesMaskFailures) {
  FaultAvailabilityStats none =
      SimulateFaultAvailability(1e-5, 7200.0, 60.0, 0, 8, 1e8, 3);
  FaultAvailabilityStats spared =
      SimulateFaultAvailability(1e-5, 7200.0, 60.0, 4, 8, 1e8, 3);
  EXPECT_EQ(none.spare_masked, 0);
  EXPECT_GT(spared.spare_masked, 0);
  EXPECT_GT(spared.availability, none.availability);
}

// --- serve-loop integration ---

ServeCallbacks SimpleCallbacks() {
  ServeCallbacks cb;
  cb.prefill_time = [](int batch) { return 0.05 * std::sqrt(batch); };
  cb.decode_step_time = [](int batch) { return 5e-3 + 1e-4 * batch; };
  cb.max_prefill_batch = 8;
  cb.max_decode_batch = 64;
  return cb;
}

std::vector<Request> FixedRequests(int n, double spacing_s, int output_tokens = 32) {
  std::vector<Request> requests;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = i * spacing_s;
    r.prompt_tokens = 1500;
    r.output_tokens = output_tokens;
    requests.push_back(r);
  }
  return requests;
}

ServeFaultConfig ChurnyFaults(FaultRetryPolicy policy) {
  // Rates high enough that a few-second run sees multiple failures per
  // pool — this is the accelerated-churn regime the checked-in faulty
  // example also uses.
  ServeFaultConfig faults;
  faults.enabled = true;
  faults.prefill_failure_rate_per_s = 0.5;
  faults.decode_failure_rate_per_s = 1.0;
  faults.repair_s = 0.5;
  faults.spare_activation_s = 0.1;
  faults.prefill_spares = 1;
  faults.decode_spares = 1;
  faults.retry_policy = policy;
  faults.seed = FaultSubstreamSeed(42);
  return faults;
}

TEST(SimulatorFaults, DisabledFaultsStayInert) {
  auto requests = FixedRequests(100, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_TRUE(m.fault_events.empty());
  EXPECT_EQ(m.retried_requests, 0);
  EXPECT_EQ(m.dropped_requests, 0);
  EXPECT_DOUBLE_EQ(m.lost_tokens, 0.0);
  EXPECT_DOUBLE_EQ(m.prefill_fault_downtime_s, 0.0);
  EXPECT_DOUBLE_EQ(m.decode_fault_downtime_s, 0.0);
}

TEST(SimulatorFaults, RetryPolicyConservesRequests) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  // Retried work always re-serves: nothing is dropped, everything admitted
  // eventually completes.
  EXPECT_EQ(m.completed_requests, m.admitted_requests);
  EXPECT_EQ(m.dropped_requests, 0);
  EXPECT_GT(m.retried_requests, 0);
  // The log saw real churn, in simulated-time order, with consistent
  // aggregate accounting.
  ASSERT_FALSE(m.fault_events.empty());
  int failures = 0;
  int killed = 0;
  double lost = 0.0;
  for (size_t i = 0; i < m.fault_events.size(); ++i) {
    const FaultEvent& ev = m.fault_events[i];
    if (i > 0) {
      EXPECT_GE(ev.time_s, m.fault_events[i - 1].time_s);
    }
    EXPECT_GE(ev.spares_free, 0);
    if (ev.kind == FaultEventKind::kFailure) {
      ++failures;
      killed += ev.killed_requests;
      lost += ev.lost_tokens;
    } else {
      EXPECT_EQ(ev.killed_requests, 0);
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_EQ(m.retried_requests, killed);
  EXPECT_DOUBLE_EQ(m.lost_tokens, lost);
  EXPECT_GT(m.prefill_fault_downtime_s + m.decode_fault_downtime_s, 0.0);
  // Killed decode tokens were subtracted from goodput: the total is below
  // the fault-free total of sum(output_tokens).
  EXPECT_LE(m.output_tokens, 300.0 * 32.0);
}

TEST(SimulatorFaults, DropPolicyDropsKilledRequests) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kDrop);
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  EXPECT_GT(m.dropped_requests, 0);
  EXPECT_EQ(m.retried_requests, 0);
  EXPECT_EQ(m.completed_requests + m.dropped_requests, m.admitted_requests);
  EXPECT_LT(m.output_tokens, 300.0 * 32.0);
}

TEST(SimulatorFaults, RetryBudgetFallsBetweenRetryAndDrop) {
  auto requests = FixedRequests(300, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 10.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetryWithBudget);
  config.faults.retry_budget = 1;
  ServeMetrics m = RunServeSimulation(requests, config, SimpleCallbacks());
  // Every admitted request either completes or exhausts its budget.
  EXPECT_EQ(m.completed_requests + m.dropped_requests, m.admitted_requests);
  EXPECT_GT(m.retried_requests, 0);
  // With budget 0 the policy degenerates to drop-on-first-kill.
  ServeClusterConfig no_budget = config;
  no_budget.faults.retry_budget = 0;
  ServeMetrics z = RunServeSimulation(requests, no_budget, SimpleCallbacks());
  EXPECT_EQ(z.retried_requests, 0);
  EXPECT_EQ(z.completed_requests + z.dropped_requests, z.admitted_requests);
}

TEST(SimulatorFaults, FaultLogBitIdenticalOnTableAndCallbackPaths) {
  ServeCallbacks cb = SimpleCallbacks();
  std::vector<double> prefill_s, decode_s;
  for (int b = 1; b <= cb.max_prefill_batch; ++b) {
    prefill_s.push_back(cb.prefill_time(b));
  }
  for (int b = 1; b <= cb.max_decode_batch; ++b) {
    decode_s.push_back(cb.decode_step_time(b));
  }
  StepTimeTable table(std::move(prefill_s), std::move(decode_s));

  auto requests = FixedRequests(400, 0.01, 32);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 5.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics a = RunServeSimulation(requests, config, cb);
  ServeMetrics b = RunServeSimulation(requests, config, table);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.lost_tokens, b.lost_tokens);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.prefill_fault_downtime_s, b.prefill_fault_downtime_s);
  EXPECT_EQ(a.decode_fault_downtime_s, b.decode_fault_downtime_s);
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (size_t i = 0; i < a.fault_events.size(); ++i) {
    const FaultEvent& x = a.fault_events[i];
    const FaultEvent& y = b.fault_events[i];
    EXPECT_EQ(x.time_s, y.time_s) << i;
    EXPECT_EQ(x.kind, y.kind) << i;
    EXPECT_EQ(x.pool, y.pool) << i;
    EXPECT_EQ(x.instance, y.instance) << i;
    EXPECT_EQ(x.killed_requests, y.killed_requests) << i;
    EXPECT_EQ(x.lost_tokens, y.lost_tokens) << i;
    EXPECT_EQ(x.spares_free, y.spares_free) << i;
  }
}

TEST(SimulatorFaults, RerunsAreDeterministic) {
  auto requests = FixedRequests(200, 0.01);
  ServeClusterConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.horizon_s = 5.0;
  config.faults = ChurnyFaults(FaultRetryPolicy::kRetry);
  ServeMetrics a = RunServeSimulation(requests, config, SimpleCallbacks());
  ServeMetrics b = RunServeSimulation(requests, config, SimpleCallbacks());
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
}

}  // namespace
}  // namespace litegpu
